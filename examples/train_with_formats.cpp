// train_with_formats — quantisation-aware training via emulation (§V-B):
// backpropagation runs with activations quantised by hooks (straight-
// through estimator), while the optimizer keeps FP32 master weights.
// Compares FP32 training against training under FP16 and INT8 emulation.
//
//   ./train_with_formats [epochs]
#include <cstdio>
#include <cstdlib>

#include "core/emulator.hpp"
#include "data/dataloader.hpp"
#include "models/model_factory.hpp"

int main(int argc, char** argv) {
  using namespace ge;
  const int64_t epochs = argc > 1 ? std::strtoll(argv[1], nullptr, 10) : 6;

  data::SyntheticVisionConfig cfg;
  cfg.train_count = 1024;
  cfg.test_count = 256;
  data::SyntheticVision data(cfg);

  std::printf("training mlp for %lld epochs under different emulated"
              " formats\n", (long long)epochs);
  std::printf("%-14s %12s %16s\n", "training fmt", "final loss",
              "test acc (fp32)");

  for (const char* spec : {"native", "fp_e5m10", "int8", "fp_e4m3"}) {
    auto model = models::make_model("mlp", cfg, /*seed=*/42);
    models::TrainConfig tc;
    tc.epochs = epochs;

    models::TrainResult r;
    if (std::string(spec) == "native") {
      r = models::train_model(*model, data, tc);
    } else {
      core::EmulatorConfig ecfg;
      ecfg.format_spec = spec;
      // keep FP32 master weights; only activations are quantised in the
      // forward pass, gradients flow straight through (STE)
      ecfg.quantize_weights = false;
      core::Emulator emu(*model, ecfg);
      r = models::train_model(*model, data, tc);
      // emulator detaches here; evaluation below is plain FP32
    }
    const float acc = models::evaluate_accuracy(*model, data.test());
    std::printf("%-14s %12.4f %16.4f\n", spec, r.final_train_loss, acc);
  }
  std::printf("\n(expected: low-precision-trained models stay close to the"
              "\n FP32-trained baseline at these widths — emulated QAT works)\n");
  return 0;
}
