// resiliency_study — a full dependability workflow on one model:
// per-layer value and metadata campaigns, the sign-bit analysis from
// §IV-C, and the range detector as a software protection (§V-B).
//
//   ./resiliency_study [model] [format] [injections-per-layer]
//   defaults: simple_cnn bfp_e5m5_b16 50
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/campaign.hpp"
#include "core/range_detector.hpp"
#include "data/dataloader.hpp"
#include "models/model_factory.hpp"

int main(int argc, char** argv) {
  using namespace ge;
  const std::string model_name = argc > 1 ? argv[1] : "simple_cnn";
  const std::string spec = argc > 2 ? argv[2] : "bfp_e5m5_b16";
  const int64_t n_inj = argc > 3 ? std::strtoll(argv[3], nullptr, 10) : 50;

  data::SyntheticVision data{data::SyntheticVisionConfig{}};
  models::TrainConfig tc;
  tc.epochs = 6;
  std::printf("preparing model '%s' ...\n", model_name.c_str());
  auto tm = models::ensure_trained(model_name, data,
                                   "/tmp/goldeneye_model_cache", tc);
  tm.model->eval();
  const auto batch = data::take(data.test(), 0, 16);

  // --- value vs metadata campaigns -----------------------------------------
  core::CampaignConfig vcfg;
  vcfg.format_spec = spec;
  vcfg.injections_per_layer = n_inj;
  const auto value_r = core::run_campaign(*tm.model, batch, vcfg);

  core::CampaignConfig mcfg = vcfg;
  mcfg.site = core::InjectionSite::kMetadata;
  const auto meta_r = core::run_campaign(*tm.model, batch, mcfg);

  std::printf("\n=== %s under %s (%lld injections/layer) ===\n",
              model_name.c_str(), spec.c_str(), (long long)n_inj);
  std::printf("%-28s %14s %14s\n", "layer", "dLoss(value)", "dLoss(meta)");
  for (size_t i = 0; i < value_r.layers.size(); ++i) {
    std::printf("%-28s %14.5f %14.5f\n", value_r.layers[i].layer.c_str(),
                value_r.layers[i].mean_delta_loss,
                i < meta_r.layers.size() ? meta_r.layers[i].mean_delta_loss
                                         : 0.0);
  }

  // --- sign-bit study (§IV-C: BFP magnifies the sign bit) -------------------
  // Flip exactly the sign bit (MSB of the value coding) at every layer and
  // compare with flipping the LSB.
  {
    core::EmulatorConfig ecfg;
    ecfg.format_spec = spec;
    core::Emulator emu(*tm.model, ecfg);
    const auto golden = core::run_golden(*tm.model, batch);
    const int width = emu.sites()[0].act_format->bit_width();
    double sign_dl = 0.0, lsb_dl = 0.0;
    int64_t trials = 0;
    for (auto& site : emu.sites()) {
      for (int t = 0; t < 10; ++t) {
        for (int which = 0; which < 2; ++which) {
          core::Injector inj(emu, 500 + t);
          core::InjectionSpec ispec;
          ispec.layer_path = site.path;
          ispec.bit = which == 0 ? width - 1 : 0;
          inj.arm(ispec);
          const Tensor faulty = (*tm.model)(batch.images);
          const auto out =
              core::compare_to_golden(golden, faulty, batch.labels);
          (which == 0 ? sign_dl : lsb_dl) += out.delta_loss;
        }
        ++trials;
      }
    }
    std::printf("\nsign-bit flip mean dLoss: %.6f   LSB flip: %.6f"
                "  (x%.1f)\n", sign_dl / double(trials),
                lsb_dl / double(trials),
                sign_dl / std::max(1e-12, lsb_dl));
  }

  // --- range detector as protection -----------------------------------------
  {
    core::RangeDetector det(*tm.model);
    det.profile(batch.images);
    core::EmulatorConfig ecfg;
    ecfg.format_spec = spec;
    core::Emulator emu(*tm.model, ecfg);
    const auto golden = core::run_golden(*tm.model, batch);
    double unprot = 0.0, prot = 0.0;
    for (int t = 0; t < 20; ++t) {
      core::Injector inj(emu, 900 + t);
      core::InjectionSpec ispec;
      ispec.layer_path = emu.sites()[0].path;
      inj.arm(ispec);
      unprot += core::compare_to_golden(golden, (*tm.model)(batch.images),
                                        batch.labels)
                    .delta_loss;
    }
    det.enable();
    for (int t = 0; t < 20; ++t) {
      core::Injector inj(emu, 900 + t);
      core::InjectionSpec ispec;
      ispec.layer_path = emu.sites()[0].path;
      inj.arm(ispec);
      prot += core::compare_to_golden(golden, (*tm.model)(batch.images),
                                      batch.labels)
                  .delta_loss;
    }
    std::printf("range detector: mean dLoss %.6f -> %.6f"
                " (%lld values clamped)\n", unprot / 20.0, prot / 20.0,
                (long long)det.clamp_events());
  }
  return 0;
}
