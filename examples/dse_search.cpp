// dse_search — run the binary-tree design-space exploration (§IV-B) for
// one model across all five format families and print the winner per
// family, including the accuracy trace of every node the heuristic
// visited.
//
//   ./dse_search [model] [max-accuracy-drop]
//   defaults: tiny_deit 0.01
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/dse.hpp"
#include "data/dataloader.hpp"
#include "models/model_factory.hpp"

int main(int argc, char** argv) {
  using namespace ge;
  const std::string model_name = argc > 1 ? argv[1] : "tiny_deit";
  const float threshold =
      argc > 2 ? std::strtof(argv[2], nullptr) : 0.01f;

  data::SyntheticVision data{data::SyntheticVisionConfig{}};
  models::TrainConfig tc;
  tc.epochs = 6;
  std::printf("preparing model '%s' ...\n", model_name.c_str());
  auto tm = models::ensure_trained(model_name, data,
                                   "/tmp/goldeneye_model_cache", tc);
  tm.model->eval();
  const auto batch = data::take(data.test(), 0, 256);

  std::printf("\nDSE for %s (allowed accuracy drop %.1f%%)\n",
              model_name.c_str(), threshold * 100.0f);
  struct Winner {
    std::string family;
    std::string spec;
    int width;
    float acc;
  };
  std::vector<Winner> winners;
  for (const char* family : {"fp", "fxp", "int", "bfp", "afp"}) {
    core::DseConfig cfg;
    cfg.family = family;
    cfg.accuracy_drop_threshold = threshold;
    const auto r = core::run_dse(*tm.model, batch, cfg);
    std::printf("\nfamily %s (baseline %.4f):\n", family,
                r.baseline_accuracy);
    for (const auto& n : r.nodes) {
      std::printf("  #%2d %-16s acc=%.4f %s\n", n.id, n.spec.c_str(),
                  n.accuracy, n.pass ? "PASS" : "fail");
    }
    if (!r.best_spec.empty()) {
      winners.push_back({family, r.best_spec, r.best_bitwidth,
                         r.best_accuracy});
    }
  }
  std::printf("\n=== winners ===\n");
  for (const auto& w : winners) {
    std::printf("%-4s -> %-16s (%d bits, acc %.4f)\n", w.family.c_str(),
                w.spec.c_str(), w.width, w.acc);
  }
  return 0;
}
