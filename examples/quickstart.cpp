// Quickstart — the 60-second tour of the GoldenEye API:
//   1. build a dataset and train a small model,
//   2. evaluate it under several emulated number formats,
//   3. run one error-injection campaign and read the per-layer results.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/goldeneye.hpp"
#include "data/synthetic.hpp"
#include "models/model_factory.hpp"

int main() {
  using namespace ge;

  // 1. Data + model. SyntheticVision is a deterministic, procedurally
  //    generated 10-class image task; train_model runs Adam with backprop
  //    through the whole stack (conv / batchnorm / attention / ...).
  data::SyntheticVisionConfig data_cfg;
  data_cfg.train_count = 1024;
  data_cfg.test_count = 256;
  data::SyntheticVision data(data_cfg);

  auto model = models::make_model("simple_cnn", data_cfg, /*seed=*/42);
  models::TrainConfig train_cfg;
  train_cfg.epochs = 5;
  std::printf("training simple_cnn ...\n");
  const auto train_result = models::train_model(*model, data, train_cfg);
  std::printf("test accuracy (native FP32): %.4f\n\n",
              train_result.test_accuracy);

  // 2. Number-format emulation. One facade call instruments every CONV
  //    and LINEAR layer with hooks that quantise weights (offline) and
  //    activations (online) into the requested format, then removes all
  //    instrumentation afterwards.
  core::GoldenEye ge(*model, data);
  std::printf("%-16s %s\n", "format", "accuracy");
  for (const char* spec : {"fp_e8m23", "fp16", "bfloat16", "fxp_1_3_12",
                           "int8", "bfp_e5m5_b16", "afp_e4m3", "fp_e2m1"}) {
    std::printf("%-16s %.4f\n", spec, ge.format_accuracy(spec, 256));
  }

  // 3. Fault injection. 20 random single-bit flips per layer into BFP
  //    activation values, measured with mismatch and dLoss against the
  //    fault-free (but format-quantised) golden run.
  core::CampaignConfig campaign;
  campaign.format_spec = "bfp_e5m5_b16";
  campaign.injections_per_layer = 20;
  const auto result = ge.campaign(campaign, /*batch_size=*/16);
  std::printf("\nBFP e5m5 value-injection campaign:\n");
  for (const auto& layer : result.layers) {
    std::printf("  %-24s dLoss=%.5f sdc=%lld/%lld\n", layer.layer.c_str(),
                layer.mean_delta_loss, (long long)layer.sdc_count,
                (long long)layer.injections);
  }
  std::printf("network mean dLoss: %.5f\n",
              result.network_mean_delta_loss());
  return 0;
}
