// format_explorer — inspect any number format from the command line:
// dynamic range, example encodings, round-trip behaviour, and (optionally)
// its accuracy on a trained model.
//
//   ./format_explorer fp_e4m3
//   ./format_explorer bfp_e5m5_b16 --model tiny_deit
//
// Spec grammar: see formats/format_registry.hpp (fp_eXmY[_nodn][_sat],
// fxp_1_I_F, intN, bfp_eXmY_bB, afp_eXmY[_dn], plus aliases fp32/fp16/...).
#include <cstdio>
#include <cstring>
#include <string>

#include "core/emulator.hpp"
#include "data/dataloader.hpp"
#include "formats/format_registry.hpp"
#include "models/model_factory.hpp"

int main(int argc, char** argv) {
  using namespace ge;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <format-spec> [--model <name>]\n",
                 argv[0]);
    std::fprintf(stderr, "known aliases:");
    for (const auto& a : fmt::known_aliases()) {
      std::fprintf(stderr, " %s", a.c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }
  const std::string spec = argv[1];
  if (!fmt::is_valid_spec(spec)) {
    std::fprintf(stderr, "unknown format spec '%s'\n", spec.c_str());
    return 2;
  }
  auto format = fmt::make_format(spec);

  std::printf("format:        %s\n", format->name().c_str());
  std::printf("bit width:     %d (per value)\n", format->bit_width());
  std::printf("abs max:       %.6g\n", format->abs_max());
  std::printf("abs min:       %.6g\n", format->abs_min());
  std::printf("range:         %.2f dB\n", format->dynamic_range_db());
  std::printf("has metadata:  %s\n", format->has_metadata() ? "yes" : "no");

  // show quantisation + bit patterns for a few sample values
  Tensor samples = Tensor::of({0.0f, 1.0f, -1.5f, 0.1f, 3.14159f, 100.0f,
                               1e-4f, -42.0f});
  Tensor q = format->real_to_format_tensor(samples);
  std::printf("\n%12s %14s %-20s\n", "value", "quantised", "bits");
  for (int64_t i = 0; i < samples.numel(); ++i) {
    const auto bits = format->real_to_format_at(q[i], i);
    std::printf("%12g %14g %-20s\n", samples[i], q[i],
                bits.to_string().c_str());
  }
  if (format->has_metadata()) {
    std::printf("\nmetadata captured from those samples:\n");
    for (const auto& field : format->metadata_fields()) {
      std::printf("  %s: %lld register(s) x %d bits", field.name.c_str(),
                  (long long)field.count, field.bit_width);
      if (field.count > 0) {
        std::printf("  [0] = %s",
                    format->read_metadata(field.name, 0).to_string().c_str());
      }
      std::printf("\n");
    }
  }

  // optional model accuracy
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--model") == 0) {
      const std::string name = argv[i + 1];
      data::SyntheticVision data{data::SyntheticVisionConfig{}};
      models::TrainConfig tc;
      tc.epochs = 6;
      std::printf("\npreparing model '%s' ...\n", name.c_str());
      auto tm = models::ensure_trained(name, data,
                                       "/tmp/goldeneye_model_cache", tc);
      tm.model->eval();
      const auto batch = data::take(data.test(), 0, 256);
      const float native = core::emulated_accuracy(
          *tm.model, batch.images, batch.labels, "native");
      const float emulated = core::emulated_accuracy(
          *tm.model, batch.images, batch.labels, spec);
      std::printf("%s accuracy: native %.4f -> %s %.4f\n", name.c_str(),
                  native, spec.c_str(), emulated);
    }
  }
  return 0;
}
