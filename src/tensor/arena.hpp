// ge::arena — per-thread recycling allocator for tensor storage blocks.
//
// Every Tensor storage block is a std::vector<float> owned by a
// shared_ptr whose deleter returns the block to the *releasing* thread's
// freelist instead of freeing it. The next allocation on that thread
// reuses the block's capacity (std::vector::assign never shrinks), so a
// steady-state forward pass — where each layer frees its input while
// allocating its output of a similar size — runs with zero heap traffic.
//
// Contract (see DESIGN.md §"Memory model"):
//  - Blocks are plain vectors; recycling only preserves *capacity*. Every
//    alloc() re-assigns contents, so a recycled block is indistinguishable
//    from a fresh one — determinism cannot depend on reuse.
//  - The freelist is thread-local and bounded: blocks are grouped into
//    power-of-two size classes, each class keeps at most a handful of
//    blocks (LRU within the class), the whole freelist holds at most
//    kMaxCachedBlocks blocks (globally LRU), and oversized blocks
//    (> kMaxCachedElems floats) are always freed eagerly. Long DSE sweeps
//    over many shapes therefore cannot grow a thread's cache without
//    bound; cap-driven frees are counted as `arena_evictions` in ge::obs.
//  - Thread teardown is safe: the cache registers itself through a raw
//    thread_local pointer that its destructor nulls, so a deleter running
//    after teardown (a block outliving its allocating thread) falls back
//    to operator delete.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace ge::arena {

using Block = std::vector<float>;

/// A recycled (or fresh) block of exactly `n` elements, all set to `fill`.
std::shared_ptr<Block> alloc(size_t n, float fill = 0.0f);

/// A recycled (or fresh) block holding a copy of [src, src + n).
std::shared_ptr<Block> alloc_copy(const float* src, size_t n);

/// Wrap an existing vector (no copy) so its storage joins the recycling
/// pool when released.
std::shared_ptr<Block> adopt(Block&& v);

/// Bytes currently checked out of the arena (capacity of every block a
/// shared_ptr owns, across all threads; freelist blocks excluded). Feeds
/// the obs memory watermarks; always accounted, metrics on or off.
uint64_t live_bytes();

/// High-water mark of live_bytes() since process start (or the last
/// reset_peak_live_bytes()).
uint64_t peak_live_bytes();

/// Re-arm the peak at the current live value (tests; per-phase peaks).
void reset_peak_live_bytes();

/// Free every block cached by the calling thread (tests; memory pressure).
void clear_thread_cache();

/// Number of blocks currently cached by the calling thread (tests).
size_t thread_cache_blocks();

}  // namespace ge::arena
