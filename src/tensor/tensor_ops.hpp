// Free-function kernels over Tensor — the arithmetic substrate the NN
// framework is built from. All kernels are pure (inputs by const ref, new
// tensor out) except the explicitly `_inplace` variants used on hot paths.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "tensor/tensor.hpp"
#include "tensor/tensor_view.hpp"

namespace ge::ops {

/// --- elementwise binary (shapes must match exactly) ---------------------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);
void add_inplace(Tensor& a, const Tensor& b);

/// --- elementwise with scalar --------------------------------------------
Tensor add_scalar(const Tensor& a, float s);
Tensor mul_scalar(const Tensor& a, float s);
void mul_scalar_inplace(Tensor& a, float s);

/// --- elementwise unary ---------------------------------------------------
Tensor neg(const Tensor& a);
Tensor exp(const Tensor& a);
Tensor abs(const Tensor& a);
Tensor sqrt(const Tensor& a);
Tensor tanh(const Tensor& a);
Tensor clamp(const Tensor& a, float lo, float hi);
/// Apply an arbitrary scalar function elementwise (slow path; used by the
/// scalar number-format API and in tests).
Tensor map(const Tensor& a, const std::function<float(float)>& f);
void map_inplace(Tensor& a, const std::function<float(float)>& f);

/// --- reductions -----------------------------------------------------------
float sum(const Tensor& a);
float mean(const Tensor& a);
float max_abs(const Tensor& a);
/// Strided-view reductions: same element-order combine as the dense
/// kernels, so a view and its materialized copy reduce bitwise equally.
float sum(const ConstTensorView& v);
float max_abs(const ConstTensorView& v);
/// Strided elementwise map, in place through a mutable view (the COW
/// detach fires once, before the parallel loop). Elements outside the
/// view are untouched.
void map_view_inplace(TensorView& v, const std::function<float(float)>& f);
float min_value(const Tensor& a);
float max_value(const Tensor& a);
/// Row-wise argmax over the last dimension; returns indices, one per row.
std::vector<int64_t> argmax_rows(const Tensor& a);

/// --- linear algebra --------------------------------------------------------
/// 2-D matrix product: (M,K) x (K,N) -> (M,N).
Tensor matmul(const Tensor& a, const Tensor& b);
/// 2-D product with the *second* operand transposed: (M,K) x (N,K)^T -> (M,N).
/// Row-major friendly; this is the kernel Linear layers use.
Tensor matmul_bt(const Tensor& a, const Tensor& b_t);
/// 2-D product with the *first* operand transposed: (K,M)^T x (K,N) -> (M,N).
Tensor matmul_at(const Tensor& a_t, const Tensor& b);
/// 2-D transpose.
Tensor transpose2d(const Tensor& a);

/// --- softmax family ---------------------------------------------------------
/// Numerically-stable softmax over the last dimension.
Tensor softmax_lastdim(const Tensor& a);
/// Numerically-stable log-softmax over the last dimension.
Tensor log_softmax_lastdim(const Tensor& a);

/// --- convolution helpers ------------------------------------------------------
/// Parameters of a 2-D convolution / pooling window.
struct Conv2dSpec {
  int64_t kernel_h = 3, kernel_w = 3;
  int64_t stride_h = 1, stride_w = 1;
  int64_t pad_h = 0, pad_w = 0;

  int64_t out_h(int64_t in_h) const {
    return (in_h + 2 * pad_h - kernel_h) / stride_h + 1;
  }
  int64_t out_w(int64_t in_w) const {
    return (in_w + 2 * pad_w - kernel_w) / stride_w + 1;
  }
};

/// Unfold an NCHW input into an im2col matrix of shape
/// (N*OH*OW, C*KH*KW); conv2d then reduces to a matmul with the
/// (C*KH*KW, OC) reshaped weight.
Tensor im2col(const Tensor& input, const Conv2dSpec& spec);
/// Fold an im2col-shaped gradient back onto the NCHW input (adjoint of
/// im2col); used by Conv2d::backward.
Tensor col2im(const Tensor& cols, const Shape& input_shape,
              const Conv2dSpec& spec);

/// --- pooling -----------------------------------------------------------------
/// Max-pool NCHW input; `argmax_out`, if non-null, receives the flat input
/// index of each pooled maximum (needed for the backward pass).
Tensor maxpool2d(const Tensor& input, const Conv2dSpec& spec,
                 std::vector<int64_t>* argmax_out = nullptr);
/// Average over each window.
Tensor avgpool2d(const Tensor& input, const Conv2dSpec& spec);
/// Global average pool: NCHW -> (N, C).
Tensor global_avgpool(const Tensor& input);

}  // namespace ge::ops
