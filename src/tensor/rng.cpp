#include "tensor/rng.hpp"

#include <cmath>

namespace ge {

float Rng::uniform(float lo, float hi) {
  std::uniform_real_distribution<float> d(lo, hi);
  return d(engine_);
}

float Rng::normal(float mean, float stddev) {
  std::normal_distribution<float> d(mean, stddev);
  return d(engine_);
}

int64_t Rng::randint(int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> d(lo, hi);
  return d(engine_);
}

Tensor Rng::uniform_tensor(Shape shape, float lo, float hi) {
  Tensor t(std::move(shape));
  std::uniform_real_distribution<float> d(lo, hi);
  for (float& v : t.flat()) v = d(engine_);
  return t;
}

Tensor Rng::normal_tensor(Shape shape, float mean, float stddev) {
  Tensor t(std::move(shape));
  std::normal_distribution<float> d(mean, stddev);
  for (float& v : t.flat()) v = d(engine_);
  return t;
}

Tensor Rng::kaiming_normal(Shape shape, int64_t fan_in) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return normal_tensor(std::move(shape), 0.0f, stddev);
}

Tensor Rng::xavier_uniform(Shape shape, int64_t fan_in, int64_t fan_out) {
  const float bound = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return uniform_tensor(std::move(shape), -bound, bound);
}

Rng Rng::fork() {
  // Two draws decorrelate the child stream from subsequent parent draws.
  const uint64_t a = engine_();
  const uint64_t b = engine_();
  return Rng(a ^ (b << 1));
}

Rng Rng::child(uint64_t stream) const {
  // splitmix64 finalizer over (seed, stream): well-mixed, stateless, and
  // cheap. Distinct streams give decorrelated mt19937_64 seeds.
  uint64_t z = seed_ + 0x9e3779b97f4a7c15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return Rng(z ^ (z >> 31));
}

}  // namespace ge
