// Tensor: the float32 "compute fabric" substrate.
//
// GoldenEye (DSN'22) emulates arbitrary number formats *on top of* the
// number format natively supported by the hardware (the paper uses FP32 on
// a GPU). This class is our equivalent of that fabric: a contiguous,
// row-major, CPU float32 N-dimensional array with value semantics.
//
// Design notes (C++ Core Guidelines):
//  - value semantics; copying copies the buffer (explicit, predictable),
//  - the class owns exactly one invariant: shape_ product == data_.size(),
//  - no raw new/delete; storage is a std::vector<float>.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace ge {

/// Shape of a tensor: one extent per dimension, row-major layout.
using Shape = std::vector<int64_t>;

/// Number of elements a shape describes (product of extents; 1 for rank-0).
int64_t shape_numel(const Shape& shape);

/// Human-readable "[2, 3, 4]" form, used in error messages.
std::string shape_to_string(const Shape& shape);

/// Contiguous row-major float32 tensor.
class Tensor {
 public:
  /// Empty rank-1 tensor with zero elements.
  Tensor() = default;

  /// Zero-filled tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor of the given shape with explicit contents.
  /// Throws std::invalid_argument if sizes disagree.
  Tensor(Shape shape, std::vector<float> data);

  /// --- factories -------------------------------------------------------
  /// Rank-1 tensor from a braced list of values. A named factory (not a
  /// constructor) so it can never collide with the Shape constructor.
  static Tensor of(std::initializer_list<float> values);
  static Tensor zeros(Shape shape);
  static Tensor ones(Shape shape);
  static Tensor full(Shape shape, float value);
  /// 0, 1, 2, ... n-1 as a rank-1 tensor (useful in tests).
  static Tensor arange(int64_t n);

  /// --- shape queries ---------------------------------------------------
  const Shape& shape() const noexcept { return shape_; }
  int64_t dim() const noexcept { return static_cast<int64_t>(shape_.size()); }
  /// Extent of dimension `d`; negative `d` counts from the back.
  int64_t size(int64_t d) const;
  int64_t numel() const noexcept { return static_cast<int64_t>(data_.size()); }
  bool empty() const noexcept { return data_.empty(); }

  /// --- element access --------------------------------------------------
  float* data() noexcept { return data_.data(); }
  const float* data() const noexcept { return data_.data(); }
  std::span<float> flat() noexcept { return {data_.data(), data_.size()}; }
  std::span<const float> flat() const noexcept {
    return {data_.data(), data_.size()};
  }
  /// Flat (linearised) element access, bounds-checked in debug builds.
  float& operator[](int64_t i) { return data_[static_cast<size_t>(i)]; }
  float operator[](int64_t i) const { return data_[static_cast<size_t>(i)]; }
  /// Multi-dimensional access; index count must equal rank.
  float& at(std::initializer_list<int64_t> idx);
  float at(std::initializer_list<int64_t> idx) const;

  /// Flat offset of a multi-dimensional index (row-major).
  int64_t offset_of(std::span<const int64_t> idx) const;

  /// --- shape manipulation ----------------------------------------------
  /// Same data, new shape; one extent may be -1 (inferred). Throws on
  /// element-count mismatch.
  Tensor reshape(Shape new_shape) const;
  /// Deep copy (alias for the copy constructor, for call-site clarity).
  Tensor clone() const { return *this; }

  /// --- in-place fill ----------------------------------------------------
  void fill(float value);

  /// True if shapes and all elements are exactly equal.
  bool equals(const Tensor& other) const;
  /// True if shapes match and elements differ by at most `atol`.
  bool allclose(const Tensor& other, float atol = 1e-6f) const;

 private:
  Shape shape_{0};
  std::vector<float> data_;
};

}  // namespace ge
