// Tensor: the float32 "compute fabric" substrate.
//
// GoldenEye (DSN'22) emulates arbitrary number formats *on top of* the
// number format natively supported by the hardware (the paper uses FP32 on
// a GPU). This class is our equivalent of that fabric: a contiguous,
// row-major, CPU float32 N-dimensional array with value semantics.
//
// Memory model (see DESIGN.md §"Memory model"):
//  - storage is a shared, reference-counted block; copying a Tensor shares
//    the block in O(1) and copy-on-write fires on the first mutable access
//    while the block is shared,
//  - observable behaviour is plain value semantics: a copy never sees its
//    source's later writes, and vice versa — sharing is an optimisation,
//    not an aliasing feature,
//  - blocks come from a per-thread recycling arena (src/tensor/arena.hpp),
//    so steady-state forward passes allocate nothing,
//  - the class owns exactly one invariant: shape_ product == numel().
#pragma once

#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace ge {

/// Shape of a tensor: one extent per dimension, row-major layout.
using Shape = std::vector<int64_t>;

/// Number of elements a shape describes (product of extents; 1 for rank-0).
int64_t shape_numel(const Shape& shape);

/// Human-readable "[2, 3, 4]" form, used in error messages.
std::string shape_to_string(const Shape& shape);

/// Contiguous row-major float32 tensor.
class Tensor {
 public:
  /// Empty rank-1 tensor with zero elements.
  Tensor() = default;

  /// Zero-filled tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor of the given shape with explicit contents.
  /// Throws std::invalid_argument if sizes disagree.
  Tensor(Shape shape, std::vector<float> data);

  /// Copies share storage in O(1); the buffer is duplicated lazily on the
  /// first mutable access while shared (copy-on-write).
  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&&) noexcept = default;
  Tensor& operator=(Tensor&&) noexcept = default;
  ~Tensor() = default;

  /// --- factories -------------------------------------------------------
  /// Rank-1 tensor from a braced list of values. A named factory (not a
  /// constructor) so it can never collide with the Shape constructor.
  static Tensor of(std::initializer_list<float> values);
  static Tensor zeros(Shape shape);
  static Tensor ones(Shape shape);
  static Tensor full(Shape shape, float value);
  /// 0, 1, 2, ... n-1 as a rank-1 tensor (useful in tests).
  static Tensor arange(int64_t n);

  /// --- shape queries ---------------------------------------------------
  const Shape& shape() const noexcept { return shape_; }
  int64_t dim() const noexcept { return static_cast<int64_t>(shape_.size()); }
  /// Extent of dimension `d`; negative `d` counts from the back.
  int64_t size(int64_t d) const;
  int64_t numel() const noexcept {
    return data_ ? static_cast<int64_t>(data_->size()) : 0;
  }
  bool empty() const noexcept { return numel() == 0; }

  /// --- element access --------------------------------------------------
  /// Mutable access detaches shared storage first (may allocate), so the
  /// mutable overloads are not noexcept.
  float* data() {
    ensure_unique();
    return data_ ? data_->data() : nullptr;
  }
  const float* data() const noexcept {
    return data_ ? data_->data() : nullptr;
  }
  /// Read-only pointer regardless of the object's constness. Use at read
  /// sites on non-const tensors so a shared buffer is never detached by a
  /// read (a non-const lvalue resolves to the mutable data() overload).
  const float* cdata() const noexcept {
    return data_ ? data_->data() : nullptr;
  }
  std::span<float> flat() {
    ensure_unique();
    return data_ ? std::span<float>{data_->data(), data_->size()}
                 : std::span<float>{};
  }
  std::span<const float> flat() const noexcept { return cflat(); }
  /// Read-only span counterpart of cdata().
  std::span<const float> cflat() const noexcept {
    return data_ ? std::span<const float>{data_->data(), data_->size()}
                 : std::span<const float>{};
  }
  /// Flat (linearised) element access, bounds-checked in debug builds.
  float& operator[](int64_t i) {
    assert(i >= 0 && i < numel() && "Tensor::operator[] index out of range");
    ensure_unique();
    return (*data_)[static_cast<size_t>(i)];
  }
  float operator[](int64_t i) const {
    assert(i >= 0 && i < numel() && "Tensor::operator[] index out of range");
    return (*data_)[static_cast<size_t>(i)];
  }
  /// Multi-dimensional access; index count must equal rank.
  float& at(std::initializer_list<int64_t> idx);
  float at(std::initializer_list<int64_t> idx) const;

  /// Flat offset of a multi-dimensional index (row-major).
  int64_t offset_of(std::span<const int64_t> idx) const;

  /// --- shape manipulation ----------------------------------------------
  /// Same data, new shape; one extent may be -1 (inferred). Throws on
  /// element-count mismatch. O(1): the result shares this tensor's storage.
  Tensor reshape(Shape new_shape) const;
  /// Value copy (alias for the copy constructor, for call-site clarity).
  /// O(1) until one of the two tensors is written.
  Tensor clone() const { return *this; }

  /// --- in-place fill ----------------------------------------------------
  void fill(float value);

  /// True if shapes and all elements are exactly equal.
  bool equals(const Tensor& other) const;
  /// True if shapes match and elements differ by at most `atol`.
  bool allclose(const Tensor& other, float atol = 1e-6f) const;

  /// True if both tensors currently share one storage block (tests /
  /// assertions; never needed for correctness).
  bool shares_storage_with(const Tensor& other) const noexcept {
    return data_ != nullptr && data_ == other.data_;
  }

  /// Opaque identity of the current storage block (nullptr when empty);
  /// equal keys mean shared storage. Diagnostics and accounting only
  /// (e.g. counting the unique bytes a set of shares keeps alive) — the
  /// key is invalidated by any mutable access that detaches.
  const void* storage_key() const noexcept { return data_.get(); }

 private:
  /// Detach from shared storage before a write. Fast path: one use_count
  /// load. The copy (detach_storage) lives in tensor.cpp.
  void ensure_unique() {
    if (data_ && data_.use_count() > 1) detach_storage();
  }
  void detach_storage();

  /// ConstTensorView pins the storage block (a shared_ptr share) so a view
  /// outlives any rebinding of the tensor it was taken from; it never
  /// detaches. Mutable views go through the public data() path instead.
  friend class ConstTensorView;

  Shape shape_{0};
  std::shared_ptr<std::vector<float>> data_;
};

}  // namespace ge
