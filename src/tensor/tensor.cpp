#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "obs/telemetry.hpp"
#include "tensor/arena.hpp"

namespace ge {

int64_t shape_numel(const Shape& shape) {
  int64_t n = 1;
  for (int64_t e : shape) {
    if (e < 0) throw std::invalid_argument("negative extent in shape");
    n *= e;
  }
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
  const int64_t n = shape_numel(shape_);
  if (n > 0) data_ = arena::alloc(static_cast<size_t>(n));
}

Tensor::Tensor(Shape shape, std::vector<float> data) : shape_(std::move(shape)) {
  if (shape_numel(shape_) != static_cast<int64_t>(data.size())) {
    throw std::invalid_argument("Tensor: shape " + shape_to_string(shape_) +
                                " does not match data size " +
                                std::to_string(data.size()));
  }
  if (!data.empty()) data_ = arena::adopt(std::move(data));
}

Tensor::Tensor(const Tensor& other)
    : shape_(other.shape_), data_(other.data_) {
  if (data_) obs::add(obs::Counter::kAllocationsAvoided);
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this != &other) {
    shape_ = other.shape_;
    data_ = other.data_;
    if (data_) obs::add(obs::Counter::kAllocationsAvoided);
  }
  return *this;
}

void Tensor::detach_storage() {
  obs::add(obs::Counter::kCowCopies);
  obs::add(obs::Counter::kCowBytes, data_->size() * sizeof(float));
  data_ = arena::alloc_copy(data_->data(), data_->size());
}

Tensor Tensor::of(std::initializer_list<float> values) {
  return Tensor({static_cast<int64_t>(values.size())},
                std::vector<float>(values));
}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::ones(Shape shape) { return full(std::move(shape), 1.0f); }

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::arange(int64_t n) {
  Tensor t({n});
  float* p = t.data();
  for (int64_t i = 0; i < n; ++i) p[i] = static_cast<float>(i);
  return t;
}

int64_t Tensor::size(int64_t d) const {
  const int64_t rank = dim();
  if (d < 0) d += rank;
  if (d < 0 || d >= rank) {
    throw std::out_of_range("Tensor::size: dim " + std::to_string(d) +
                            " out of range for shape " +
                            shape_to_string(shape_));
  }
  return shape_[static_cast<size_t>(d)];
}

int64_t Tensor::offset_of(std::span<const int64_t> idx) const {
  if (static_cast<int64_t>(idx.size()) != dim()) {
    throw std::invalid_argument("Tensor: index rank mismatch");
  }
  int64_t off = 0;
  for (size_t d = 0; d < idx.size(); ++d) {
    if (idx[d] < 0 || idx[d] >= shape_[d]) {
      throw std::out_of_range("Tensor: index out of range in dim " +
                              std::to_string(d));
    }
    off = off * shape_[d] + idx[d];
  }
  return off;
}

float& Tensor::at(std::initializer_list<int64_t> idx) {
  const int64_t off =
      offset_of(std::span<const int64_t>(idx.begin(), idx.size()));
  ensure_unique();
  return (*data_)[static_cast<size_t>(off)];
}

float Tensor::at(std::initializer_list<int64_t> idx) const {
  return (*data_)[static_cast<size_t>(
      offset_of(std::span<const int64_t>(idx.begin(), idx.size())))];
}

Tensor Tensor::reshape(Shape new_shape) const {
  int64_t inferred = -1;
  int64_t known = 1;
  for (size_t i = 0; i < new_shape.size(); ++i) {
    if (new_shape[i] == -1) {
      if (inferred >= 0) {
        throw std::invalid_argument("reshape: more than one -1 extent");
      }
      inferred = static_cast<int64_t>(i);
    } else {
      known *= new_shape[i];
    }
  }
  if (inferred >= 0) {
    if (known == 0 || numel() % known != 0) {
      throw std::invalid_argument("reshape: cannot infer extent");
    }
    new_shape[static_cast<size_t>(inferred)] = numel() / known;
  }
  if (shape_numel(new_shape) != numel()) {
    throw std::invalid_argument("reshape: element count mismatch (" +
                                shape_to_string(shape_) + " -> " +
                                shape_to_string(new_shape) + ")");
  }
  Tensor out;
  out.shape_ = std::move(new_shape);
  out.data_ = data_;
  if (out.data_) obs::add(obs::Counter::kAllocationsAvoided);
  return out;
}

void Tensor::fill(float value) {
  if (!data_) return;
  if (data_.use_count() > 1) {
    // The old contents are about to be overwritten entirely: allocate a
    // fresh block instead of COW-copying data we would immediately clobber.
    data_ = arena::alloc(data_->size(), value);
    return;
  }
  std::fill(data_->begin(), data_->end(), value);
}

bool Tensor::equals(const Tensor& other) const {
  if (shape_ != other.shape_) return false;
  if (data_ == other.data_) return true;  // shared storage, trivially equal
  const auto a = cflat();
  const auto b = other.cflat();
  if (a.size() != b.size()) return false;
  return std::equal(a.begin(), a.end(), b.begin());
}

bool Tensor::allclose(const Tensor& other, float atol) const {
  if (shape_ != other.shape_) return false;
  const auto a = cflat();
  const auto b = other.cflat();
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::fabs(a[i] - b[i]) > atol) return false;
  }
  return true;
}

}  // namespace ge
