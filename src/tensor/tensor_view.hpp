// TensorView: non-owning, strided windows onto a Tensor's COW storage.
//
// A view is (offset, shape, strides) over the flat storage block of a
// Tensor, in row-major view order: view-linear index i maps to storage
// index offset + dot(unravel(i, shape), strides). Views make channel/row/
// block-granular access (fault-injection regions, conv patch slicing,
// embedding row gathers) expressible without gather copies.
//
// Two flavors (DESIGN.md §5):
//  - ConstTensorView is read-only and *pins* the storage block: it holds a
//    shared_ptr share, so the data stays alive (and, per the COW rules,
//    any later write to the owner detaches the owner, not the view — a
//    const view always observes the values at capture time).
//  - TensorView is mutable and holds a pointer to the owning Tensor: the
//    first mutable access triggers the owner's copy-on-write (exactly once
//    while the storage is shared); reads never detach. A mutable view does
//    NOT pin storage — the owner must outlive it.
//
// Strides must be non-negative and every reachable storage index must be
// in range; both are validated at construction.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/tensor.hpp"

namespace ge {

/// Row-major (dense) strides of a shape: {..., d2*d3, d3, 1}.
std::vector<int64_t> dense_strides(const Shape& shape);

class ConstTensorView {
 public:
  /// Empty view over nothing.
  ConstTensorView() = default;
  /// Whole-tensor view (dense, offset 0).
  explicit ConstTensorView(const Tensor& t);
  /// Strided window. Throws std::invalid_argument on rank mismatch,
  /// negative offset/strides, or an out-of-range reachable index.
  ConstTensorView(const Tensor& t, int64_t offset, Shape shape,
                  std::vector<int64_t> strides);

  const Shape& shape() const noexcept { return shape_; }
  int64_t dim() const noexcept { return static_cast<int64_t>(shape_.size()); }
  int64_t size(int64_t d) const;
  int64_t numel() const noexcept { return numel_; }
  const std::vector<int64_t>& strides() const noexcept { return strides_; }
  int64_t offset() const noexcept { return offset_; }
  /// True when the strides are exactly the dense row-major strides of the
  /// shape — the view walks one contiguous run starting at offset().
  bool contiguous() const noexcept { return contiguous_; }

  /// Storage index of view-linear element `i` (row-major view order).
  int64_t flat_offset(int64_t i) const;
  /// Base pointer of the pinned storage block (not of the view's first
  /// element — index it with flat_offset).
  const float* storage() const noexcept { return base_; }
  float operator[](int64_t i) const { return base_[flat_offset(i)]; }

  /// Gather the view into a dense Tensor of shape().
  Tensor materialize() const;
  /// Gather into caller storage (numel() floats, row-major view order).
  void materialize_into(float* dst) const;

 private:
  friend class TensorView;
  std::shared_ptr<const std::vector<float>> pin_;
  const float* base_ = nullptr;
  int64_t offset_ = 0;
  int64_t numel_ = 0;
  bool contiguous_ = true;
  Shape shape_{0};
  std::vector<int64_t> strides_{1};
};

class TensorView {
 public:
  TensorView() = default;
  /// Whole-tensor mutable view (dense, offset 0).
  explicit TensorView(Tensor& t);
  /// Strided mutable window; validation as for ConstTensorView.
  TensorView(Tensor& t, int64_t offset, Shape shape,
             std::vector<int64_t> strides);

  const Shape& shape() const noexcept { return shape_; }
  int64_t dim() const noexcept { return static_cast<int64_t>(shape_.size()); }
  int64_t size(int64_t d) const;
  int64_t numel() const noexcept { return numel_; }
  const std::vector<int64_t>& strides() const noexcept { return strides_; }
  int64_t offset() const noexcept { return offset_; }
  bool contiguous() const noexcept { return contiguous_; }
  /// True when the view covers the owner's storage exactly, in layout
  /// order (contiguous, offset 0, every element) — the dense fast path:
  /// code holding such a view may operate on the owner Tensor directly.
  bool dense_full() const noexcept;

  Tensor& owner() noexcept { return *owner_; }
  const Tensor& owner() const noexcept { return *owner_; }

  int64_t flat_offset(int64_t i) const;
  /// Mutable base pointer; triggers the owner's copy-on-write (once while
  /// the storage is shared). Hoist this out of loops: the per-call cost
  /// after the detach is one use_count load.
  float* storage() { return owner_->data(); }
  /// Read-only base pointer; never detaches.
  const float* cstorage() const noexcept { return owner_->cdata(); }
  float read(int64_t i) const { return cstorage()[flat_offset(i)]; }
  float& operator[](int64_t i) { return storage()[flat_offset(i)]; }

  /// Gather the view into a dense Tensor of shape().
  Tensor materialize() const;
  /// Scatter a dense tensor (shape must equal shape()) back through the
  /// view. COWs the owner once; elements outside the view are untouched.
  void assign_from(const Tensor& src);
  ConstTensorView as_const() const;

 private:
  void init(Tensor& t, int64_t offset, Shape shape,
            std::vector<int64_t> strides);

  Tensor* owner_ = nullptr;
  int64_t offset_ = 0;
  int64_t numel_ = 0;
  bool contiguous_ = true;
  Shape shape_{0};
  std::vector<int64_t> strides_{1};
};

/// --- injection region factories (error-model zoo) -------------------------
//
// Spatially-correlated fault models address a "channel" or "row" of an
// activation tensor; the mapping per rank mirrors the layouts the nn
// layers produce:
//   rank 4 (N,C,H,W): channel c = all N*H*W elements of feature map c;
//                     row r = one contiguous W run (fixed n, c, h).
//   rank 3 (B,T,D):   channel d = embedding lane d across all tokens;
//                     row r = one token's D-vector.
//   rank 2 (B,F):     channel f = feature f across the batch;
//                     row r = one sample's F-vector.
//   rank <= 1:        one channel / one row: the whole tensor.

/// Number of distinct channel regions of `t` under the mapping above.
int64_t channel_count(const Tensor& t);
/// Number of distinct row regions of `t` under the mapping above.
int64_t row_count(const Tensor& t);
/// Strided view of channel `c`; throws std::invalid_argument out of range.
TensorView channel_view(Tensor& t, int64_t c);
/// Contiguous view of row `r`; throws std::invalid_argument out of range.
TensorView row_view(Tensor& t, int64_t r);

}  // namespace ge
