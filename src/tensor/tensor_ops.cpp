#include "tensor/tensor_ops.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "parallel/thread_pool.hpp"

namespace ge::ops {

namespace {

/// Elementwise kernels fall back to one chunk below this size; above it
/// they split into fixed 32k-element chunks (boundaries independent of the
/// thread count, so results are bitwise identical at any GE_NUM_THREADS).
constexpr int64_t kElementGrain = 32 * 1024;

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                                shape_to_string(a.shape()) + " vs " +
                                shape_to_string(b.shape()));
  }
}

template <typename F>
Tensor binary(const Tensor& a, const Tensor& b, const char* op, F f) {
  check_same_shape(a, b, op);
  Tensor out(a.shape());
  const float* pa = a.cdata();
  const float* pb = b.cdata();
  float* po = out.data();
  parallel::parallel_for(0, a.numel(), kElementGrain,
                         [&](int64_t lo, int64_t hi) {
                           for (int64_t i = lo; i < hi; ++i) {
                             po[i] = f(pa[i], pb[i]);
                           }
                         });
  return out;
}

template <typename F>
Tensor unary(const Tensor& a, F f) {
  Tensor out(a.shape());
  const float* pa = a.cdata();
  float* po = out.data();
  parallel::parallel_for(0, a.numel(), kElementGrain,
                         [&](int64_t lo, int64_t hi) {
                           for (int64_t i = lo; i < hi; ++i) po[i] = f(pa[i]);
                         });
  return out;
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return binary(a, b, "add", [](float x, float y) { return x + y; });
}
Tensor sub(const Tensor& a, const Tensor& b) {
  return binary(a, b, "sub", [](float x, float y) { return x - y; });
}
Tensor mul(const Tensor& a, const Tensor& b) {
  return binary(a, b, "mul", [](float x, float y) { return x * y; });
}
Tensor div(const Tensor& a, const Tensor& b) {
  return binary(a, b, "div", [](float x, float y) { return x / y; });
}

void add_inplace(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add_inplace");
  float* pa = a.data();
  const float* pb = b.cdata();
  parallel::parallel_for(0, a.numel(), kElementGrain,
                         [&](int64_t lo, int64_t hi) {
                           for (int64_t i = lo; i < hi; ++i) pa[i] += pb[i];
                         });
}

Tensor add_scalar(const Tensor& a, float s) {
  return unary(a, [s](float x) { return x + s; });
}
Tensor mul_scalar(const Tensor& a, float s) {
  return unary(a, [s](float x) { return x * s; });
}
void mul_scalar_inplace(Tensor& a, float s) {
  for (float& v : a.flat()) v *= s;
}

Tensor neg(const Tensor& a) {
  return unary(a, [](float x) { return -x; });
}
Tensor exp(const Tensor& a) {
  return unary(a, [](float x) { return std::exp(x); });
}
Tensor abs(const Tensor& a) {
  return unary(a, [](float x) { return std::fabs(x); });
}
Tensor sqrt(const Tensor& a) {
  return unary(a, [](float x) { return std::sqrt(x); });
}
Tensor tanh(const Tensor& a) {
  return unary(a, [](float x) { return std::tanh(x); });
}
Tensor clamp(const Tensor& a, float lo, float hi) {
  return unary(a, [lo, hi](float x) { return std::clamp(x, lo, hi); });
}

Tensor map(const Tensor& a, const std::function<float(float)>& f) {
  return unary(a, [&f](float x) { return f(x); });
}
void map_inplace(Tensor& a, const std::function<float(float)>& f) {
  for (float& v : a.flat()) v = f(v);
}

float sum(const Tensor& a) {
  double s = 0.0;  // double accumulator: stable for large tensors
  for (float v : a.flat()) s += v;
  return static_cast<float>(s);
}

float mean(const Tensor& a) {
  if (a.numel() == 0) throw std::invalid_argument("mean of empty tensor");
  return sum(a) / static_cast<float>(a.numel());
}

float max_abs(const Tensor& a) {
  float m = 0.0f;
  for (float v : a.flat()) m = std::max(m, std::fabs(v));
  return m;
}

float sum(const ConstTensorView& v) {
  double s = 0.0;  // double accumulator, view order: matches sum(Tensor)
  const float* p = v.storage();
  const int64_t n = v.numel();
  for (int64_t i = 0; i < n; ++i) s += p[v.flat_offset(i)];
  return static_cast<float>(s);
}

float max_abs(const ConstTensorView& v) {
  float m = 0.0f;
  const float* p = v.storage();
  const int64_t n = v.numel();
  for (int64_t i = 0; i < n; ++i) {
    m = std::max(m, std::fabs(p[v.flat_offset(i)]));
  }
  return m;
}

void map_view_inplace(TensorView& v, const std::function<float(float)>& f) {
  float* p = v.storage();  // COW detach happens here, single-threaded
  parallel::parallel_for(0, v.numel(), kElementGrain,
                         [&](int64_t lo, int64_t hi) {
                           for (int64_t i = lo; i < hi; ++i) {
                             const int64_t s = v.flat_offset(i);
                             p[s] = f(p[s]);
                           }
                         });
}

float min_value(const Tensor& a) {
  if (a.numel() == 0) throw std::invalid_argument("min of empty tensor");
  float m = std::numeric_limits<float>::infinity();
  for (float v : a.flat()) m = std::min(m, v);
  return m;
}

float max_value(const Tensor& a) {
  if (a.numel() == 0) throw std::invalid_argument("max of empty tensor");
  float m = -std::numeric_limits<float>::infinity();
  for (float v : a.flat()) m = std::max(m, v);
  return m;
}

std::vector<int64_t> argmax_rows(const Tensor& a) {
  if (a.dim() < 1) throw std::invalid_argument("argmax_rows: rank-0 tensor");
  const int64_t cols = a.size(-1);
  if (cols == 0) throw std::invalid_argument("argmax_rows: empty rows");
  const int64_t rows = a.numel() / cols;
  std::vector<int64_t> out(static_cast<size_t>(rows));
  const float* p = a.cdata();
  parallel::parallel_for(
      0, rows, parallel::grain_for(cols), [&](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          const float* row = p + r * cols;
          int64_t best = 0;
          for (int64_t c = 1; c < cols; ++c) {
            if (row[c] > row[best]) best = c;
          }
          out[static_cast<size_t>(r)] = best;
        }
      });
  return out;
}

// Accumulation policy (all matmul variants): float32 multiply-accumulate
// in ascending-k order. This matches the emulated accelerator's native
// FP32 MAC fabric (DESIGN.md §1: "native" = the hardware's own format) and
// makes the three variants agree bitwise on the same logical product —
// each output element sees the identical sequence of FP32 additions — so
// layers are free to pick whichever operand layout is cache-friendly.
// Rows of the output are independent, which is also the parallel axis.

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.dim() != 2 || b.dim() != 2 || a.size(1) != b.size(0)) {
    throw std::invalid_argument("matmul: bad shapes " +
                                shape_to_string(a.shape()) + " x " +
                                shape_to_string(b.shape()));
  }
  const int64_t M = a.size(0), K = a.size(1), N = b.size(1);
  Tensor out({M, N});
  const float* pa = a.cdata();
  const float* pb = b.cdata();
  float* po = out.data();
  // ikj loop order: unit-stride inner loops on both B and C.
  parallel::parallel_for(
      0, M, parallel::grain_for(K * N), [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          float* crow = po + i * N;
          for (int64_t k = 0; k < K; ++k) {
            const float aval = pa[i * K + k];
            if (aval == 0.0f) continue;
            const float* brow = pb + k * N;
            for (int64_t j = 0; j < N; ++j) crow[j] += aval * brow[j];
          }
        }
      });
  return out;
}

Tensor matmul_bt(const Tensor& a, const Tensor& b_t) {
  if (a.dim() != 2 || b_t.dim() != 2 || a.size(1) != b_t.size(1)) {
    throw std::invalid_argument("matmul_bt: bad shapes " +
                                shape_to_string(a.shape()) + " x " +
                                shape_to_string(b_t.shape()) + "^T");
  }
  const int64_t M = a.size(0), K = a.size(1), N = b_t.size(0);
  Tensor out({M, N});
  const float* pa = a.cdata();
  const float* pb = b_t.cdata();
  float* po = out.data();
  parallel::parallel_for(
      0, M, parallel::grain_for(K * N), [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          const float* arow = pa + i * K;
          for (int64_t j = 0; j < N; ++j) {
            const float* brow = pb + j * K;
            float acc = 0.0f;  // FP32 MAC, ascending k (see policy above)
            for (int64_t k = 0; k < K; ++k) acc += arow[k] * brow[k];
            po[i * N + j] = acc;
          }
        }
      });
  return out;
}

Tensor matmul_at(const Tensor& a_t, const Tensor& b) {
  if (a_t.dim() != 2 || b.dim() != 2 || a_t.size(0) != b.size(0)) {
    throw std::invalid_argument("matmul_at: bad shapes " +
                                shape_to_string(a_t.shape()) + "^T x " +
                                shape_to_string(b.shape()));
  }
  const int64_t K = a_t.size(0), M = a_t.size(1), N = b.size(1);
  Tensor out({M, N});
  const float* pa = a_t.cdata();
  const float* pb = b.cdata();
  float* po = out.data();
  // Row-parallel: each output row i accumulates over k independently (A
  // reads are strided, but rows stay disjoint and the k-order is the same
  // FP32 MAC sequence as the other variants).
  parallel::parallel_for(
      0, M, parallel::grain_for(K * N), [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          float* crow = po + i * N;
          for (int64_t k = 0; k < K; ++k) {
            const float aval = pa[k * M + i];
            if (aval == 0.0f) continue;
            const float* brow = pb + k * N;
            for (int64_t j = 0; j < N; ++j) crow[j] += aval * brow[j];
          }
        }
      });
  return out;
}

Tensor transpose2d(const Tensor& a) {
  if (a.dim() != 2) throw std::invalid_argument("transpose2d: need rank 2");
  const int64_t M = a.size(0), N = a.size(1);
  Tensor out({N, M});
  const float* pa = a.cdata();
  float* po = out.data();
  for (int64_t i = 0; i < M; ++i) {
    for (int64_t j = 0; j < N; ++j) po[j * M + i] = pa[i * N + j];
  }
  return out;
}

Tensor softmax_lastdim(const Tensor& a) {
  const int64_t cols = a.size(-1);
  const int64_t rows = a.numel() / cols;
  Tensor out(a.shape());
  const float* p = a.cdata();
  float* po = out.data();
  parallel::parallel_for(
      0, rows, parallel::grain_for(4 * cols), [&](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          const float* row = p + r * cols;
          float* orow = po + r * cols;
          float mx = row[0];
          for (int64_t c = 1; c < cols; ++c) mx = std::max(mx, row[c]);
          double s = 0.0;
          for (int64_t c = 0; c < cols; ++c) {
            orow[c] = std::exp(row[c] - mx);
            s += orow[c];
          }
          const float inv = static_cast<float>(1.0 / s);
          for (int64_t c = 0; c < cols; ++c) orow[c] *= inv;
        }
      });
  return out;
}

Tensor log_softmax_lastdim(const Tensor& a) {
  const int64_t cols = a.size(-1);
  const int64_t rows = a.numel() / cols;
  Tensor out(a.shape());
  const float* p = a.cdata();
  float* po = out.data();
  parallel::parallel_for(
      0, rows, parallel::grain_for(4 * cols), [&](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          const float* row = p + r * cols;
          float* orow = po + r * cols;
          float mx = row[0];
          for (int64_t c = 1; c < cols; ++c) mx = std::max(mx, row[c]);
          double s = 0.0;
          for (int64_t c = 0; c < cols; ++c) {
            s += std::exp(double(row[c]) - mx);
          }
          const float lse = mx + static_cast<float>(std::log(s));
          for (int64_t c = 0; c < cols; ++c) orow[c] = row[c] - lse;
        }
      });
  return out;
}

Tensor im2col(const Tensor& input, const Conv2dSpec& s) {
  if (input.dim() != 4) throw std::invalid_argument("im2col: need NCHW");
  const int64_t N = input.size(0), C = input.size(1), H = input.size(2),
                W = input.size(3);
  const int64_t OH = s.out_h(H), OW = s.out_w(W);
  if (OH <= 0 || OW <= 0) {
    throw std::invalid_argument("im2col: empty output window");
  }
  const int64_t patch = C * s.kernel_h * s.kernel_w;
  Tensor cols({N * OH * OW, patch});
  const float* pin = input.cdata();
  float* pc = cols.data();
  // Parallel over output rows r = (n*OH + oh)*OW + ow; each row writes a
  // disjoint `patch`-sized slice of `cols`.
  parallel::parallel_for(
      0, N * OH * OW, parallel::grain_for(patch), [&](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          const int64_t ow = r % OW;
          const int64_t oh = (r / OW) % OH;
          const int64_t n = r / (OW * OH);
          float* dst = pc + r * patch;
          for (int64_t c = 0; c < C; ++c) {
            for (int64_t kh = 0; kh < s.kernel_h; ++kh) {
              const int64_t ih = oh * s.stride_h - s.pad_h + kh;
              for (int64_t kw = 0; kw < s.kernel_w; ++kw) {
                const int64_t iw = ow * s.stride_w - s.pad_w + kw;
                float v = 0.0f;
                if (ih >= 0 && ih < H && iw >= 0 && iw < W) {
                  v = pin[((n * C + c) * H + ih) * W + iw];
                }
                *dst++ = v;
              }
            }
          }
        }
      });
  return cols;
}

Tensor col2im(const Tensor& cols, const Shape& input_shape,
              const Conv2dSpec& s) {
  if (input_shape.size() != 4) {
    throw std::invalid_argument("col2im: need NCHW target shape");
  }
  const int64_t N = input_shape[0], C = input_shape[1], H = input_shape[2],
                W = input_shape[3];
  const int64_t OH = s.out_h(H), OW = s.out_w(W);
  const int64_t patch = C * s.kernel_h * s.kernel_w;
  if (cols.dim() != 2 || cols.size(0) != N * OH * OW ||
      cols.size(1) != patch) {
    throw std::invalid_argument("col2im: cols shape mismatch");
  }
  Tensor out(input_shape);
  const float* pc = cols.cdata();
  float* pout = out.data();
  // Serial on purpose: overlapping windows scatter-add into the same input
  // cells, so a parallel version would race (or need per-thread partials
  // whose merge order breaks bitwise determinism).
  for (int64_t n = 0; n < N; ++n) {
    for (int64_t oh = 0; oh < OH; ++oh) {
      for (int64_t ow = 0; ow < OW; ++ow) {
        const float* src = pc + ((n * OH + oh) * OW + ow) * patch;
        for (int64_t c = 0; c < C; ++c) {
          for (int64_t kh = 0; kh < s.kernel_h; ++kh) {
            const int64_t ih = oh * s.stride_h - s.pad_h + kh;
            for (int64_t kw = 0; kw < s.kernel_w; ++kw) {
              const int64_t iw = ow * s.stride_w - s.pad_w + kw;
              const float v = *src++;
              if (ih >= 0 && ih < H && iw >= 0 && iw < W) {
                pout[((n * C + c) * H + ih) * W + iw] += v;
              }
            }
          }
        }
      }
    }
  }
  return out;
}

Tensor maxpool2d(const Tensor& input, const Conv2dSpec& s,
                 std::vector<int64_t>* argmax_out) {
  if (input.dim() != 4) throw std::invalid_argument("maxpool2d: need NCHW");
  const int64_t N = input.size(0), C = input.size(1), H = input.size(2),
                W = input.size(3);
  const int64_t OH = s.out_h(H), OW = s.out_w(W);
  Tensor out({N, C, OH, OW});
  if (argmax_out) argmax_out->assign(static_cast<size_t>(out.numel()), -1);
  const float* pin = input.cdata();
  float* po = out.data();
  // Parallel over (n, c) planes; each plane owns a disjoint OH*OW output
  // slice, so `oidx` is computed from the plane index rather than carried
  // as a running counter.
  parallel::parallel_for(
      0, N * C, parallel::grain_for(OH * OW * s.kernel_h * s.kernel_w),
      [&](int64_t lo, int64_t hi) {
        for (int64_t nc = lo; nc < hi; ++nc) {
          const int64_t n = nc / C;
          const int64_t c = nc % C;
          const float* plane = pin + nc * H * W;
          int64_t oidx = nc * OH * OW;
          for (int64_t oh = 0; oh < OH; ++oh) {
            for (int64_t ow = 0; ow < OW; ++ow, ++oidx) {
              float best = -std::numeric_limits<float>::infinity();
              int64_t best_idx = -1;
              for (int64_t kh = 0; kh < s.kernel_h; ++kh) {
                const int64_t ih = oh * s.stride_h - s.pad_h + kh;
                if (ih < 0 || ih >= H) continue;
                for (int64_t kw = 0; kw < s.kernel_w; ++kw) {
                  const int64_t iw = ow * s.stride_w - s.pad_w + kw;
                  if (iw < 0 || iw >= W) continue;
                  const float v = plane[ih * W + iw];
                  if (v > best) {
                    best = v;
                    best_idx = (n * C + c) * H * W + ih * W + iw;
                  }
                }
              }
              po[oidx] = best;
              if (argmax_out) {
                (*argmax_out)[static_cast<size_t>(oidx)] = best_idx;
              }
            }
          }
        }
      });
  return out;
}

Tensor avgpool2d(const Tensor& input, const Conv2dSpec& s) {
  if (input.dim() != 4) throw std::invalid_argument("avgpool2d: need NCHW");
  const int64_t N = input.size(0), C = input.size(1), H = input.size(2),
                W = input.size(3);
  const int64_t OH = s.out_h(H), OW = s.out_w(W);
  Tensor out({N, C, OH, OW});
  const float window = static_cast<float>(s.kernel_h * s.kernel_w);
  const float* pin = input.cdata();
  float* po = out.data();
  parallel::parallel_for(
      0, N * C, parallel::grain_for(OH * OW * s.kernel_h * s.kernel_w),
      [&](int64_t lo, int64_t hi) {
        for (int64_t nc = lo; nc < hi; ++nc) {
          const float* plane = pin + nc * H * W;
          int64_t oidx = nc * OH * OW;
          for (int64_t oh = 0; oh < OH; ++oh) {
            for (int64_t ow = 0; ow < OW; ++ow, ++oidx) {
              double acc = 0.0;
              for (int64_t kh = 0; kh < s.kernel_h; ++kh) {
                const int64_t ih = oh * s.stride_h - s.pad_h + kh;
                if (ih < 0 || ih >= H) continue;
                for (int64_t kw = 0; kw < s.kernel_w; ++kw) {
                  const int64_t iw = ow * s.stride_w - s.pad_w + kw;
                  if (iw < 0 || iw >= W) continue;
                  acc += plane[ih * W + iw];
                }
              }
              po[oidx] = static_cast<float>(acc) / window;
            }
          }
        }
      });
  return out;
}

Tensor global_avgpool(const Tensor& input) {
  if (input.dim() != 4) {
    throw std::invalid_argument("global_avgpool: need NCHW");
  }
  const int64_t N = input.size(0), C = input.size(1),
                HW = input.size(2) * input.size(3);
  // 1x1 spatial: the mean of one element is the element (double-roundtrip
  // exact), so the pool is a reshape — share the storage, skip the copy.
  if (HW == 1) return input.reshape({N, C});
  Tensor out({N, C});
  const float* pin = input.cdata();
  float* po = out.data();
  parallel::parallel_for(
      0, N * C, parallel::grain_for(HW), [&](int64_t lo, int64_t hi) {
        for (int64_t nc = lo; nc < hi; ++nc) {
          const float* plane = pin + nc * HW;
          double acc = 0.0;
          for (int64_t i = 0; i < HW; ++i) acc += plane[i];
          po[nc] = static_cast<float>(acc / double(HW));
        }
      });
  return out;
}

}  // namespace ge::ops
