#include "tensor/tensor_view.hpp"

#include <algorithm>
#include <stdexcept>

namespace ge {

namespace {

/// Shared construction-time validation; returns the element count.
int64_t validate_view(int64_t storage_numel, int64_t offset, const Shape& shape,
                      const std::vector<int64_t>& strides) {
  if (shape.size() != strides.size()) {
    throw std::invalid_argument("TensorView: rank mismatch (" +
                                std::to_string(shape.size()) + " extents, " +
                                std::to_string(strides.size()) + " strides)");
  }
  if (offset < 0) {
    throw std::invalid_argument("TensorView: negative offset");
  }
  int64_t numel = 1;  // rank-0: one element at `offset`
  for (size_t d = 0; d < shape.size(); ++d) {
    if (shape[d] < 0 || strides[d] < 0) {
      throw std::invalid_argument(
          "TensorView: extents and strides must be non-negative");
    }
    numel *= shape[d];
  }
  if (numel > 0) {
    int64_t last = offset;  // highest reachable storage index
    for (size_t d = 0; d < shape.size(); ++d) {
      last += (shape[d] - 1) * strides[d];
    }
    if (last >= storage_numel) {
      throw std::invalid_argument(
          "TensorView: view reaches storage index " + std::to_string(last) +
          " but the block holds " + std::to_string(storage_numel) +
          " elements");
    }
  }
  return numel;
}

bool is_dense(const Shape& shape, const std::vector<int64_t>& strides) {
  return strides == dense_strides(shape);
}

int64_t unravel_dot(int64_t i, const Shape& shape,
                    const std::vector<int64_t>& strides) {
  int64_t acc = 0;
  for (size_t d = shape.size(); d-- > 0;) {
    const int64_t extent = shape[d];
    acc += (i % extent) * strides[d];
    i /= extent;
  }
  return acc;
}

/// Gather `numel` elements of a validated view layout into `dst`. Runs
/// along the last dimension are copied as blocks when unit-strided.
void gather(const float* base, int64_t offset, const Shape& shape,
            const std::vector<int64_t>& strides, bool contiguous,
            int64_t numel, float* dst) {
  if (numel == 0) return;
  if (contiguous) {
    std::copy(base + offset, base + offset + numel, dst);
    return;
  }
  const int64_t run =
      (!shape.empty() && strides.back() == 1) ? shape.back() : 1;
  const int64_t rows = numel / run;
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t src = offset + unravel_dot(r * run, shape, strides);
    if (run > 1) {
      std::copy(base + src, base + src + run, dst + r * run);
    } else {
      dst[r] = base[src];
    }
  }
}

/// Scatter: the inverse of gather (dst strided, src dense).
void scatter(float* base, int64_t offset, const Shape& shape,
             const std::vector<int64_t>& strides, bool contiguous,
             int64_t numel, const float* src) {
  if (numel == 0) return;
  if (contiguous) {
    std::copy(src, src + numel, base + offset);
    return;
  }
  const int64_t run =
      (!shape.empty() && strides.back() == 1) ? shape.back() : 1;
  const int64_t rows = numel / run;
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t dst = offset + unravel_dot(r * run, shape, strides);
    if (run > 1) {
      std::copy(src + r * run, src + (r + 1) * run, base + dst);
    } else {
      base[dst] = src[r];
    }
  }
}

}  // namespace

std::vector<int64_t> dense_strides(const Shape& shape) {
  std::vector<int64_t> s(shape.size(), 1);
  for (size_t d = shape.size(); d-- > 1;) {
    s[d - 1] = s[d] * (shape[d] == 0 ? 1 : shape[d]);
  }
  return s;
}

// --- ConstTensorView -------------------------------------------------------

ConstTensorView::ConstTensorView(const Tensor& t)
    : ConstTensorView(t, 0, t.shape(), dense_strides(t.shape())) {}

ConstTensorView::ConstTensorView(const Tensor& t, int64_t offset, Shape shape,
                                 std::vector<int64_t> strides)
    : pin_(t.data_),
      base_(t.cdata()),
      offset_(offset),
      shape_(std::move(shape)),
      strides_(std::move(strides)) {
  numel_ = validate_view(t.numel(), offset_, shape_, strides_);
  contiguous_ = is_dense(shape_, strides_);
}

int64_t ConstTensorView::size(int64_t d) const {
  const int64_t rank = dim();
  if (d < 0) d += rank;
  if (d < 0 || d >= rank) {
    throw std::out_of_range("ConstTensorView::size: bad dimension");
  }
  return shape_[static_cast<size_t>(d)];
}

int64_t ConstTensorView::flat_offset(int64_t i) const {
  if (contiguous_) return offset_ + i;
  return offset_ + unravel_dot(i, shape_, strides_);
}

Tensor ConstTensorView::materialize() const {
  Tensor out(shape_);
  materialize_into(out.data());
  return out;
}

void ConstTensorView::materialize_into(float* dst) const {
  gather(base_, offset_, shape_, strides_, contiguous_, numel_, dst);
}

// --- TensorView ------------------------------------------------------------

TensorView::TensorView(Tensor& t) {
  init(t, 0, t.shape(), dense_strides(t.shape()));
}

TensorView::TensorView(Tensor& t, int64_t offset, Shape shape,
                       std::vector<int64_t> strides) {
  init(t, offset, std::move(shape), std::move(strides));
}

void TensorView::init(Tensor& t, int64_t offset, Shape shape,
                      std::vector<int64_t> strides) {
  owner_ = &t;
  offset_ = offset;
  shape_ = std::move(shape);
  strides_ = std::move(strides);
  numel_ = validate_view(t.numel(), offset_, shape_, strides_);
  contiguous_ = is_dense(shape_, strides_);
}

int64_t TensorView::size(int64_t d) const {
  const int64_t rank = dim();
  if (d < 0) d += rank;
  if (d < 0 || d >= rank) {
    throw std::out_of_range("TensorView::size: bad dimension");
  }
  return shape_[static_cast<size_t>(d)];
}

bool TensorView::dense_full() const noexcept {
  return owner_ != nullptr && contiguous_ && offset_ == 0 &&
         numel_ == owner_->numel();
}

int64_t TensorView::flat_offset(int64_t i) const {
  if (contiguous_) return offset_ + i;
  return offset_ + unravel_dot(i, shape_, strides_);
}

Tensor TensorView::materialize() const {
  Tensor out(shape_);
  gather(cstorage(), offset_, shape_, strides_, contiguous_, numel_,
         out.data());
  return out;
}

void TensorView::assign_from(const Tensor& src) {
  if (src.shape() != shape_) {
    throw std::invalid_argument("TensorView::assign_from: shape mismatch " +
                                shape_to_string(src.shape()) + " vs " +
                                shape_to_string(shape_));
  }
  scatter(storage(), offset_, shape_, strides_, contiguous_, numel_,
          src.cdata());
}

ConstTensorView TensorView::as_const() const {
  return ConstTensorView(*owner_, offset_, shape_, strides_);
}

// --- injection region factories --------------------------------------------

int64_t channel_count(const Tensor& t) {
  switch (t.dim()) {
    case 4: return t.size(1);            // NCHW feature maps
    case 3: return t.size(2);            // (B,T,D) embedding lanes
    case 2: return t.size(1);            // (B,F) features
    default: return t.numel() > 0 ? 1 : 0;
  }
}

int64_t row_count(const Tensor& t) {
  if (t.numel() == 0) return 0;
  if (t.dim() < 2) return 1;
  return t.numel() / t.size(-1);
}

TensorView channel_view(Tensor& t, int64_t c) {
  const int64_t nc = channel_count(t);
  if (c < 0 || c >= nc) {
    throw std::invalid_argument("channel_view: channel " + std::to_string(c) +
                                " out of range [0, " + std::to_string(nc) +
                                ")");
  }
  switch (t.dim()) {
    case 4: {
      const int64_t N = t.size(0), C = t.size(1), HW = t.size(2) * t.size(3);
      return TensorView(t, c * HW, {N, HW}, {C * HW, 1});
    }
    case 3: {
      const int64_t BT = t.size(0) * t.size(1), D = t.size(2);
      return TensorView(t, c, {BT}, {D});
    }
    case 2: {
      const int64_t B = t.size(0), F = t.size(1);
      return TensorView(t, c, {B}, {F});
    }
    default:
      return TensorView(t);
  }
}

TensorView row_view(Tensor& t, int64_t r) {
  const int64_t nr = row_count(t);
  if (r < 0 || r >= nr) {
    throw std::invalid_argument("row_view: row " + std::to_string(r) +
                                " out of range [0, " + std::to_string(nr) +
                                ")");
  }
  if (t.dim() < 2) return TensorView(t);
  const int64_t last = t.size(-1);
  return TensorView(t, r * last, {last}, {1});
}

}  // namespace ge
