// Seeded random number generation for reproducible experiments.
//
// Every stochastic component in the repository (dataset synthesis, weight
// init, fault-site sampling) draws from an explicitly seeded Rng instance;
// there is no global random state, so every experiment in EXPERIMENTS.md
// is reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <random>

#include "tensor/tensor.hpp"

namespace ge {

/// Thin wrapper around std::mt19937_64 with tensor-filling helpers.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed), seed_(seed) {}

  /// Uniform float in [lo, hi).
  float uniform(float lo = 0.0f, float hi = 1.0f);
  /// Standard-normal (or scaled) float.
  float normal(float mean = 0.0f, float stddev = 1.0f);
  /// Uniform integer in [lo, hi] inclusive.
  int64_t randint(int64_t lo, int64_t hi);

  /// Tensor factories.
  Tensor uniform_tensor(Shape shape, float lo = 0.0f, float hi = 1.0f);
  Tensor normal_tensor(Shape shape, float mean = 0.0f, float stddev = 1.0f);

  /// Kaiming/He-normal init for a weight tensor with `fan_in` inputs.
  Tensor kaiming_normal(Shape shape, int64_t fan_in);
  /// Xavier/Glorot-uniform init.
  Tensor xavier_uniform(Shape shape, int64_t fan_in, int64_t fan_out);

  /// Derive an independent child generator (for per-component streams).
  /// Mutates this generator; the child depends on how many draws preceded
  /// the call. Prefer child() when the derivation must not depend on
  /// execution order.
  Rng fork();

  /// Derive an independent child stream from the *construction seed* and a
  /// stream id only — const, so the result is identical no matter how many
  /// values were drawn before, in what order, or from which thread. This
  /// is what makes parallel campaigns bitwise-reproducible: trial t of
  /// layer l always gets child(l * trials_per_layer + t).
  Rng child(uint64_t stream) const;

  /// The seed this generator was constructed with.
  uint64_t seed() const noexcept { return seed_; }

  std::mt19937_64& engine() noexcept { return engine_; }
  /// Read-only engine access (ge::io serialises the stream position).
  const std::mt19937_64& engine() const noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
  uint64_t seed_;
};

}  // namespace ge
