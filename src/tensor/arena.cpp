#include "tensor/arena.hpp"

#include <utility>

#include "obs/telemetry.hpp"

namespace ge::arena {
namespace {

constexpr size_t kMaxCachedBlocks = 32;
constexpr size_t kMaxCachedElems = size_t{1} << 24;  // 64 MiB of floats

struct Cache;

// Raw pointer, not the Cache itself: a trivially-destructible thread_local
// stays readable during thread teardown, after the Cache destructor has
// already nulled it. Deleters that fire later fall back to delete.
thread_local Cache* tl_cache = nullptr;

struct Cache {
  std::vector<Block*> free;

  Cache() { tl_cache = this; }
  ~Cache() {
    tl_cache = nullptr;
    for (Block* b : free) delete b;
  }

  Block* take(size_t n) {
    // Prefer a block that already has room for n; otherwise any block
    // (assign will grow it, still saving the control-block allocation).
    for (size_t i = 0; i < free.size(); ++i) {
      if (free[i]->capacity() >= n) {
        Block* b = free[i];
        free[i] = free.back();
        free.pop_back();
        return b;
      }
    }
    if (free.empty()) return nullptr;
    Block* b = free.back();
    free.pop_back();
    return b;
  }

  void put(Block* b) {
    if (free.size() >= kMaxCachedBlocks || b->capacity() > kMaxCachedElems) {
      delete b;
      return;
    }
    free.push_back(b);
  }
};

Cache& cache() {
  thread_local Cache c;
  return c;
}

struct Recycle {
  void operator()(Block* b) const noexcept {
    if (tl_cache != nullptr) {
      tl_cache->put(b);
    } else {
      delete b;
    }
  }
};

Block* take_or_new(size_t n) {
  Block* b = cache().take(n);
  if (b != nullptr) {
    obs::add(obs::Counter::kArenaReuses);
    return b;
  }
  return new Block();
}

}  // namespace

std::shared_ptr<Block> alloc(size_t n, float fill) {
  Block* b = take_or_new(n);
  b->assign(n, fill);
  return std::shared_ptr<Block>(b, Recycle{});
}

std::shared_ptr<Block> alloc_copy(const float* src, size_t n) {
  Block* b = take_or_new(n);
  b->assign(src, src + n);
  return std::shared_ptr<Block>(b, Recycle{});
}

std::shared_ptr<Block> adopt(Block&& v) {
  return std::shared_ptr<Block>(new Block(std::move(v)), Recycle{});
}

void clear_thread_cache() {
  Cache& c = cache();
  for (Block* b : c.free) delete b;
  c.free.clear();
}

size_t thread_cache_blocks() { return cache().free.size(); }

}  // namespace ge::arena
