#include "tensor/arena.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <utility>

#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"

namespace ge::arena {
namespace {

// Live-byte accounting for the memory watermarks (obs/profiler.hpp).
// Unlike the obs counters these are *ungated* relaxed atomics: the +/-
// pair must stay balanced across metrics toggles or live_bytes() would
// drift. One add per alloc and one sub per release is noise next to the
// freelist work both paths already do.
std::atomic<uint64_t> g_live_bytes{0};
std::atomic<uint64_t> g_peak_bytes{0};

void track_alloc(size_t capacity) {
  const uint64_t bytes = static_cast<uint64_t>(capacity) * sizeof(float);
  const uint64_t live =
      g_live_bytes.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  uint64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (live > peak && !g_peak_bytes.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
}

void track_free(size_t capacity) {
  g_live_bytes.fetch_sub(static_cast<uint64_t>(capacity) * sizeof(float),
                         std::memory_order_relaxed);
}

// Freelist sizing policy. Blocks are grouped into power-of-two size
// classes so a long DSE sweep over many distinct shapes cannot pin one
// cached block per shape ever seen: each class keeps at most
// kMaxBlocksPerBucket blocks (LRU-evicted within the class) and the whole
// freelist at most kMaxCachedBlocks (globally-LRU-evicted), so per-thread
// cache memory is bounded by ~kMaxCachedBlocks * largest-class capacity
// regardless of how many shapes a sweep touches.
constexpr size_t kMaxBlocksPerBucket = 6;
constexpr size_t kMaxCachedBlocks = 32;
constexpr size_t kMaxCachedElems = size_t{1} << 24;  // 64 MiB of floats
// capacity <= 2^kBucketCount-1 always classifies; oversize is freed eagerly
constexpr size_t kBucketCount = 25;  // 2^24 == kMaxCachedElems

/// Size class of a capacity: smallest c with n <= 2^c (0 for n <= 1).
size_t size_class(size_t n) {
  return n <= 1 ? 0 : static_cast<size_t>(std::bit_width(n - 1));
}

struct Cache;

// Raw pointer, not the Cache itself: a trivially-destructible thread_local
// stays readable during thread teardown, after the Cache destructor has
// already nulled it. Deleters that fire later fall back to delete.
thread_local Cache* tl_cache = nullptr;

struct Cache {
  struct Entry {
    uint64_t stamp = 0;  ///< insertion order, for LRU decisions
    Block* block = nullptr;
  };
  // One LRU list per size class, oldest first (put() appends).
  std::vector<Entry> buckets[kBucketCount];
  size_t total = 0;
  uint64_t clock = 0;

  Cache() { tl_cache = this; }
  ~Cache() {
    tl_cache = nullptr;
    for (auto& bucket : buckets) {
      for (const Entry& e : bucket) delete e.block;
    }
  }

  Block* pop_back(std::vector<Entry>& bucket) {
    Block* b = bucket.back().block;
    bucket.pop_back();
    --total;
    return b;
  }

  Block* take(size_t n) {
    // Prefer the most-recently-used block whose class already fits n (warm
    // and large enough); otherwise any cached block — assign() grows it,
    // still saving the control-block allocation. Oversize requests clamp to
    // kBucketCount: no bucket can fit them, so only the grow path applies.
    const size_t c = std::min(size_class(n), kBucketCount);
    for (size_t i = c; i < kBucketCount; ++i) {
      if (!buckets[i].empty()) return pop_back(buckets[i]);
    }
    for (size_t i = c; i-- > 0;) {
      if (!buckets[i].empty()) return pop_back(buckets[i]);
    }
    return nullptr;
  }

  void evict_oldest() {
    std::vector<Entry>* oldest = nullptr;
    for (auto& bucket : buckets) {
      if (bucket.empty()) continue;
      if (oldest == nullptr || bucket.front().stamp < oldest->front().stamp) {
        oldest = &bucket;
      }
    }
    if (oldest == nullptr) return;
    delete oldest->front().block;
    oldest->erase(oldest->begin());
    --total;
    obs::add(obs::Counter::kArenaEvictions);
  }

  void put(Block* b) {
    if (b->capacity() > kMaxCachedElems) {
      delete b;  // oversize: never cached, so not an eviction
      return;
    }
    auto& bucket = buckets[size_class(b->capacity())];
    if (bucket.size() >= kMaxBlocksPerBucket) {
      delete bucket.front().block;  // LRU within the class
      bucket.erase(bucket.begin());
      --total;
      obs::add(obs::Counter::kArenaEvictions);
    }
    bucket.push_back(Entry{clock++, b});
    ++total;
    if (total > kMaxCachedBlocks) evict_oldest();
  }
};

Cache& cache() {
  thread_local Cache c;
  return c;
}

struct Recycle {
  void operator()(Block* b) const noexcept {
    track_free(b->capacity());
    if (tl_cache != nullptr) {
      tl_cache->put(b);
    } else {
      delete b;
    }
  }
};

Block* take_or_new(size_t n) {
  Block* b = cache().take(n);
  if (b != nullptr) {
    obs::add(obs::Counter::kArenaReuses);
    return b;
  }
  return new Block();
}

/// Installs live_bytes/peak_live_bytes into the obs profiler at static
/// init, so obs::sample_memory() can report arena watermarks without an
/// obs -> tensor dependency (ge_tensor already links ge_obs).
struct RegisterArenaStats {
  RegisterArenaStats() {
    obs::detail::set_arena_stats_source(&live_bytes, &peak_live_bytes);
  }
} g_register_arena_stats;

}  // namespace

std::shared_ptr<Block> alloc(size_t n, float fill) {
  Block* b = take_or_new(n);
  b->assign(n, fill);
  track_alloc(b->capacity());  // after assign: reused blocks may grow
  return std::shared_ptr<Block>(b, Recycle{});
}

std::shared_ptr<Block> alloc_copy(const float* src, size_t n) {
  Block* b = take_or_new(n);
  b->assign(src, src + n);
  track_alloc(b->capacity());
  return std::shared_ptr<Block>(b, Recycle{});
}

std::shared_ptr<Block> adopt(Block&& v) {
  auto* b = new Block(std::move(v));
  track_alloc(b->capacity());
  return std::shared_ptr<Block>(b, Recycle{});
}

uint64_t live_bytes() { return g_live_bytes.load(std::memory_order_relaxed); }

uint64_t peak_live_bytes() {
  return g_peak_bytes.load(std::memory_order_relaxed);
}

void reset_peak_live_bytes() {
  g_peak_bytes.store(g_live_bytes.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
}

void clear_thread_cache() {
  Cache& c = cache();
  for (auto& bucket : c.buckets) {
    for (const Cache::Entry& e : bucket) delete e.block;
    bucket.clear();
  }
  c.total = 0;
}

size_t thread_cache_blocks() { return cache().total; }

}  // namespace ge::arena
