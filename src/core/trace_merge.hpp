// ge::core::trace_merge — fold per-process Chrome trace files into one
// cross-process timeline.
//
// Every --trace file written by obs::write_chrome_trace opens with a
// metadata event carrying the process label and epoch_unix_ns — the
// steady-clock→wall-clock offset sampled at export. The merger uses those
// anchors to place each process's events on one shared wall-clock axis,
// groups spans by the trace_id the wire protocol propagated, and renders:
//
//   * a merged Chrome trace_event JSON (one pid per input process),
//   * a per-trace attribution table (queue wait / execute / worker lease /
//     stream-back shares of the submit root span),
//   * flamegraph collapsed stacks over the merged events (threads remapped
//     to process-unique ids, reusing obs::collapsed_stacks).
//
// Determinism: output is a pure function of the *set* of input files.
// Processes are ordered by (label, epoch, content hash) and events by a
// total order on every field, so `goldeneye trace --merge` produces
// byte-identical bytes no matter how the files are listed.
#pragma once

#include <string>
#include <vector>

namespace ge::core {

/// One input process after parsing (exposed for tests).
struct TraceProcess {
  std::string label;          ///< meta process_label ("submit", "serve", ...)
  int64_t epoch_unix_ns = 0;  ///< wall-clock ns at steady-clock zero
  uint64_t content_hash = 0;  ///< FNV-1a of the file bytes (tie-breaker)
  int64_t event_count = 0;
};

struct TraceMergeResult {
  std::string chrome_json;  ///< merged timeline, Chrome trace_event format
  std::string attribution;  ///< per-trace phase table (text)
  std::string collapsed;    ///< flamegraph collapsed stacks
  std::vector<TraceProcess> processes;  ///< merge order (= assigned pid - 1)
  int64_t event_count = 0;              ///< duration events merged
  int64_t trace_count = 0;              ///< distinct nonzero trace ids
};

/// Merge `paths` (each a --trace output). Throws std::runtime_error when a
/// file cannot be read or holds no trace metadata line.
TraceMergeResult merge_trace_files(const std::vector<std::string>& paths);

}  // namespace ge::core
