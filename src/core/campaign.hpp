// Campaign: per-layer error-injection campaigns (§IV-C / Fig. 7).
//
// For every instrumented layer, run N independent single-bit injections
// (value or metadata site), each against the same evaluation batch, and
// aggregate mismatch and ΔLoss statistics per layer. Weights are restored
// and hooks removed between campaigns; a campaign never perturbs the
// persistent model.
// Trials parallelize across pool workers when CampaignConfig::make_replica
// is set: each worker instruments its own replica model, and every trial
// draws from a child RNG stream derived solely from (seed, layer index,
// trial index). Results are therefore bitwise identical to the serial
// path at any GE_NUM_THREADS.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/emulator.hpp"
#include "core/injector.hpp"
#include "core/metrics.hpp"

namespace ge::obs {
class RunLog;
}  // namespace ge::obs

namespace ge::core {

struct CampaignConfig {
  std::string format_spec;  ///< e.g. "bfp_e5m5_b16"
  InjectionSite site = InjectionSite::kActivationValue;
  ErrorModel model = ErrorModel::kBitFlip;
  int64_t injections_per_layer = 100;
  int num_bits = 1;
  uint64_t seed = 1234;
  /// Restrict to these layer paths (empty = all instrumented layers).
  std::vector<std::string> layers;
  /// Optional factory for architecturally-identical fresh models. When set,
  /// run_campaign builds one replica per pool worker (weights are copied
  /// from the primary model before instrumentation, so the factory's own
  /// init seed is irrelevant) and fans trials out across workers. When
  /// null, trials run serially on the primary model. Either way the
  /// results are bitwise identical — parallelism only changes wall-clock.
  std::function<std::unique_ptr<nn::Module>()> make_replica;
  /// Golden-prefix cache (DESIGN.md §10): record the golden forward's
  /// activations and run each trial as a suffix replay from its injection
  /// site, skipping every layer that completed before the site entered.
  /// Bitwise identical to full forwards — a fault cannot perturb state
  /// that was computed before it fired — so this is purely a speed knob.
  /// Ignored (full forwards) when the model reuses a module instance
  /// within one forward, or when a trial's companion faults land outside
  /// the replayed suffix.
  bool use_prefix_cache = true;
  /// Multi-point trials (MRFI-style): each trial arms the campaigned site
  /// plus (sites_per_trial - 1) companion faults at distinct strictly
  /// later instrumented sites, drawn from the trial's own RNG stream, all
  /// carried by one forward. 1 = classic single-fault campaigns (bitwise
  /// unchanged). Layers with fewer later sites arm as many as exist.
  int sites_per_trial = 1;
  /// Error-model-zoo knobs, forwarded into every trial's InjectionSpec
  /// (see ErrorModel / InjectionSpec docs). Ignored by classic models.
  double ber = 0.0;
  int burst_len = 2;
};

struct LayerCampaignResult {
  std::string layer;
  int64_t injections = 0;
  int64_t sdc_count = 0;           ///< injections causing any mismatch
  double mean_mismatch_rate = 0.0; ///< mean fraction of batch mismatched
  double mean_delta_loss = 0.0;
  double max_delta_loss = 0.0;
  double ci95_delta_loss = 0.0;    ///< 95% CI half-width of mean ΔLoss
  std::vector<float> delta_losses; ///< per-injection (convergence studies)
  std::vector<uint8_t> sdc_flags;  ///< per-injection mismatch outcome
};

struct CampaignResult {
  std::vector<LayerCampaignResult> layers;
  float golden_accuracy = 0.0f;    ///< emulated-but-fault-free accuracy
  /// Mean ΔLoss over all layers (the paper's Fig. 9 resilience summary).
  double network_mean_delta_loss() const;
};

/// Run a campaign on `model` over `batch`. The model is instrumented with
/// `cfg.format_spec` for the duration and restored afterwards.
CampaignResult run_campaign(nn::Module& model, const data::Batch& batch,
                            const CampaignConfig& cfg);

// --- persistent / sharded campaigns (ge::io, DESIGN.md §9) -----------------
//
// Every trial outcome is a pure function of (seed, site index, trial
// index), so the trial index space can be cut up arbitrarily — across
// checkpoint/resume boundaries, shards, or both — and the reassembled
// outcome set aggregates to statistics bitwise identical to one
// uninterrupted single-process run.

/// Per-trial outcomes of one campaigned layer, resumable mid-layer.
struct LayerProgress {
  uint64_t site_index = 0;  ///< index into Emulator::sites() — the RNG
                            ///< stream base, stable under layer filtering
  std::string path;
  std::vector<uint8_t> done;        ///< 1 = outcome computed, per trial
  std::vector<FaultOutcome> outcomes;  ///< size = injections; valid if done
};

/// The campaign's full persistent state: a config echo (validated on
/// resume and merge), the golden accuracy, and per-layer partial outcome
/// accumulators. ge::io serialises this into "CAMP" container sections.
struct CampaignProgress {
  std::string format_spec;
  InjectionSite site = InjectionSite::kActivationValue;
  ErrorModel model = ErrorModel::kBitFlip;
  int64_t injections_per_layer = 0;
  int num_bits = 1;
  uint64_t seed = 0;
  int shards = 1;       ///< trial-space partition this state was run under
  int shard_index = 0;  ///< which partition slice (0 when unsharded)
  int sites_per_trial = 1;  ///< faults armed per trial (config echo)
  double ber = 0.0;         ///< zoo config echo (0 for classic models)
  int burst_len = 2;        ///< zoo config echo
  std::string model_name;    ///< CLI echo (empty for library callers)
  int64_t eval_samples = 0;  ///< CLI echo of the evaluation batch size
  float golden_accuracy = 0.0f;
  /// FNV-1a over the golden (fault-free emulated) logit bytes: the bitwise
  /// tripwire that resume/merge see the same model, batch, and kernels.
  /// Accuracy alone is too coarse — two different models can tie on a
  /// small batch.
  uint64_t golden_digest = 0;
  std::vector<LayerProgress> layers;

  int64_t completed_trials() const;
  int64_t total_trials() const;
  /// True when every trial of every layer is done (merge of all shards,
  /// or an unsharded run that ran to the end).
  bool complete() const { return completed_trials() == total_trials(); }
};

/// Execution options for run_campaign_trials.
struct CampaignRunOptions {
  /// Write a checkpoint to `checkpoint_path` after every this-many newly
  /// executed trials (0 = never checkpoint).
  int64_t checkpoint_every = 0;
  std::string checkpoint_path;
  /// Continue from previously saved progress (validated against the
  /// config; a mismatch throws io::IoError). Borrowed, may be null.
  const CampaignProgress* resume_from = nullptr;
  /// Deterministic trial-space partition: this run executes only trials
  /// with trial_index % shards == shard_index.
  int shards = 1;
  int shard_index = 0;
  /// Echoed into CampaignProgress (and so into the checkpoint's config
  /// block) for resume/merge validation. Empty/0 for library callers.
  std::string model_name;
  int64_t eval_samples = 0;
  /// Fault-tolerance drill: stop (after writing a final checkpoint) once
  /// this many trials were executed in this run (0 = run to completion).
  /// The returned progress is simply incomplete, exactly as if the
  /// process had been killed after the last checkpoint.
  int64_t abort_after = 0;
  /// Work-stealing lease (the service daemon's partition): execute only
  /// trials whose global index — campaign position order, i.e.
  /// layer_position_in_campaign * injections_per_layer + trial_index —
  /// falls in [lease_lo, lease_hi). lease_hi < 0 disables leasing. Like
  /// shards, a lease just selects a subset of the pure (seed, site, trial)
  /// function space, so lease parts merge bitwise-identically via
  /// merge_campaign_progress (relabel each part with a distinct
  /// shard_index first — merge requires parts to be distinguishable).
  int64_t lease_lo = 0;
  int64_t lease_hi = -1;
  /// Stream a schema-v2 "trial" record per executed trial (plus periodic
  /// "heartbeat" records) into this report. Borrowed, may be null. Records
  /// are emitted from the sequential post-block section in ascending trial
  /// order, so the stream is deterministic at any thread count; telemetry
  /// only reads outcomes and never perturbs them (DESIGN.md §8).
  obs::RunLog* run_log = nullptr;
};

/// Run (part of) a campaign and return its persistent state. Covers the
/// whole checkpoint/resume/shard space; run_campaign is the simple
/// wrapper `finalize_campaign(run_campaign_trials(m, b, cfg, {}))`.
CampaignProgress run_campaign_trials(nn::Module& model,
                                     const data::Batch& batch,
                                     const CampaignConfig& cfg,
                                     const CampaignRunOptions& opts);

/// Trials owned by (progress.shards, progress.shard_index) not yet done.
int64_t owned_trials_remaining(const CampaignProgress& progress);

/// Number of layers a campaign over (model, cfg) would run: instruments
/// the model (restored on return, like run_campaign) and applies the same
/// site-enumeration filters. The service daemon uses this to size a
/// campaign's lease table (total trials = layers * injections_per_layer)
/// without executing anything.
int64_t count_campaign_layers(nn::Module& model, const CampaignConfig& cfg);

/// Aggregate a complete progress into per-layer statistics. The
/// aggregation order is trial order, so the result is bitwise identical
/// no matter how the trials were scheduled, sharded, or resumed. Throws
/// std::invalid_argument when progress is incomplete.
CampaignResult finalize_campaign(const CampaignProgress& progress);

/// Fold shard partial results into one progress. All parts must carry the
/// same config echo and layer structure, distinct shard indices, and
/// disjoint done sets (io::IoError otherwise). The merged progress is
/// re-labelled shards=1 so it can be finalized or even resumed.
CampaignProgress merge_campaign_progress(
    const std::vector<CampaignProgress>& parts);

/// FNV-1a digest over the full campaign statistics — the cross-process
/// bitwise-equality check pinned in tests/test_determinism.cpp and
/// printed by the CLI. Do not change the field order.
uint64_t campaign_digest(const CampaignResult& result);

}  // namespace ge::core
