// Campaign: per-layer error-injection campaigns (§IV-C / Fig. 7).
//
// For every instrumented layer, run N independent single-bit injections
// (value or metadata site), each against the same evaluation batch, and
// aggregate mismatch and ΔLoss statistics per layer. Weights are restored
// and hooks removed between campaigns; a campaign never perturbs the
// persistent model.
// Trials parallelize across pool workers when CampaignConfig::make_replica
// is set: each worker instruments its own replica model, and every trial
// draws from a child RNG stream derived solely from (seed, layer index,
// trial index). Results are therefore bitwise identical to the serial
// path at any GE_NUM_THREADS.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/emulator.hpp"
#include "core/injector.hpp"
#include "core/metrics.hpp"

namespace ge::core {

struct CampaignConfig {
  std::string format_spec;  ///< e.g. "bfp_e5m5_b16"
  InjectionSite site = InjectionSite::kActivationValue;
  ErrorModel model = ErrorModel::kBitFlip;
  int64_t injections_per_layer = 100;
  int num_bits = 1;
  uint64_t seed = 1234;
  /// Restrict to these layer paths (empty = all instrumented layers).
  std::vector<std::string> layers;
  /// Optional factory for architecturally-identical fresh models. When set,
  /// run_campaign builds one replica per pool worker (weights are copied
  /// from the primary model before instrumentation, so the factory's own
  /// init seed is irrelevant) and fans trials out across workers. When
  /// null, trials run serially on the primary model. Either way the
  /// results are bitwise identical — parallelism only changes wall-clock.
  std::function<std::unique_ptr<nn::Module>()> make_replica;
};

struct LayerCampaignResult {
  std::string layer;
  int64_t injections = 0;
  int64_t sdc_count = 0;           ///< injections causing any mismatch
  double mean_mismatch_rate = 0.0; ///< mean fraction of batch mismatched
  double mean_delta_loss = 0.0;
  double max_delta_loss = 0.0;
  double ci95_delta_loss = 0.0;    ///< 95% CI half-width of mean ΔLoss
  std::vector<float> delta_losses; ///< per-injection (convergence studies)
  std::vector<uint8_t> sdc_flags;  ///< per-injection mismatch outcome
};

struct CampaignResult {
  std::vector<LayerCampaignResult> layers;
  float golden_accuracy = 0.0f;    ///< emulated-but-fault-free accuracy
  /// Mean ΔLoss over all layers (the paper's Fig. 9 resilience summary).
  double network_mean_delta_loss() const;
};

/// Run a campaign on `model` over `batch`. The model is instrumented with
/// `cfg.format_spec` for the duration and restored afterwards.
CampaignResult run_campaign(nn::Module& model, const data::Batch& batch,
                            const CampaignConfig& cfg);

}  // namespace ge::core
