#include "core/campaign.hpp"

#include <algorithm>
#include <stdexcept>

#include "nn/loss.hpp"
#include "obs/telemetry.hpp"
#include "parallel/thread_pool.hpp"

namespace ge::core {

double CampaignResult::network_mean_delta_loss() const {
  if (layers.empty()) return 0.0;
  double s = 0.0;
  for (const auto& l : layers) s += l.mean_delta_loss;
  return s / static_cast<double>(layers.size());
}

namespace {

/// One instrumented model a worker slot runs trials on. Slot 0 wraps the
/// caller's model; other slots own a replica.
struct WorkerCtx {
  std::unique_ptr<nn::Module> owned;  ///< replicas only; null for slot 0
  nn::Module* model = nullptr;
  std::unique_ptr<Emulator> emu;
  std::unique_ptr<Injector> inj;
};

/// Copy parameter and buffer values from `src` into `dst` positionally
/// (both trees enumerate depth-first in registration order).
void copy_state(nn::Module& src, nn::Module& dst) {
  const auto sp = src.parameters();
  const auto dp = dst.parameters();
  const auto sb = src.buffers();
  const auto db = dst.buffers();
  if (sp.size() != dp.size() || sb.size() != db.size()) {
    throw std::invalid_argument(
        "run_campaign: make_replica produced a model with a different "
        "parameter/buffer count than the primary");
  }
  for (size_t i = 0; i < sp.size(); ++i) {
    if (sp[i]->value.shape() != dp[i]->value.shape()) {
      throw std::invalid_argument(
          "run_campaign: replica parameter shape mismatch at '" +
          sp[i]->name + "'");
    }
    dp[i]->value = sp[i]->value;
  }
  for (size_t i = 0; i < sb.size(); ++i) {
    db[i]->value = sb[i]->value;
  }
}

}  // namespace

CampaignResult run_campaign(nn::Module& model, const data::Batch& batch,
                            const CampaignConfig& cfg) {
  obs::Span campaign_span("campaign", "run_campaign", cfg.format_spec);
  model.eval();
  EmulatorConfig ecfg;
  ecfg.format_spec = cfg.format_spec;

  // Worker contexts. Replicas must be built and given the primary's weights
  // BEFORE the primary is instrumented: quantisation is not idempotent (an
  // int8 scale recomputed from already-quantised data differs), so copying
  // after attach would double-quantise the replicas.
  const int64_t nT = cfg.injections_per_layer;
  int nctx = 1;
  if (cfg.make_replica) {
    nctx = std::clamp<int64_t>(
        std::min<int64_t>(parallel::num_threads(), nT), 1, 64);
  }
  std::vector<WorkerCtx> ctxs(static_cast<size_t>(nctx));
  ctxs[0].model = &model;
  for (int w = 1; w < nctx; ++w) {
    ctxs[static_cast<size_t>(w)].owned = cfg.make_replica();
    ctxs[static_cast<size_t>(w)].model =
        ctxs[static_cast<size_t>(w)].owned.get();
    ctxs[static_cast<size_t>(w)].model->eval();
    copy_state(model, *ctxs[static_cast<size_t>(w)].model);
  }
  ctxs[0].emu = std::make_unique<Emulator>(*ctxs[0].model, ecfg);
  ctxs[0].inj = std::make_unique<Injector>(*ctxs[0].emu, cfg.seed);
  // Replicas share the primary's post-quantisation weight tensors instead
  // of re-quantising their own copies: attach becomes O(1) per parameter
  // and the quantised weights exist once, however many workers run. A
  // trial that corrupts a weight detaches a private copy via COW.
  EmulatorConfig rcfg = ecfg;
  rcfg.weight_source = &model;
  for (int w = 1; w < nctx; ++w) {
    ctxs[static_cast<size_t>(w)].emu =
        std::make_unique<Emulator>(*ctxs[static_cast<size_t>(w)].model, rcfg);
    ctxs[static_cast<size_t>(w)].inj =
        std::make_unique<Injector>(*ctxs[static_cast<size_t>(w)].emu,
                                   cfg.seed);
  }
  Emulator& emu = *ctxs[0].emu;

  CampaignResult result;

  // Golden reference *under emulation* (fault-free but format-quantised):
  // faults are measured against the format's own clean behaviour. The
  // replicas share it — identical weights and deterministic kernels make
  // their fault-free logits bitwise equal to the primary's.
  const GoldenRun golden = [&] {
    obs::Span golden_span("campaign", "golden_run");
    return run_golden(model, batch);
  }();
  result.golden_accuracy = nn::accuracy(golden.logits, batch.labels);

  // Every random choice of trial ti at site li draws from the child stream
  // (seed, li * nT + ti): outcomes are a pure function of the trial id, so
  // any worker may run any trial in any order and the aggregate matches
  // the serial path bitwise. Skipped sites still advance li, keeping each
  // layer's streams stable under cfg.layers filtering.
  const Rng base(cfg.seed);
  std::vector<FaultOutcome> outcomes(static_cast<size_t>(nT));

  for (size_t li = 0; li < emu.sites().size(); ++li) {
    LayerSite& site = emu.sites()[li];
    if (!cfg.layers.empty() &&
        std::find(cfg.layers.begin(), cfg.layers.end(), site.path) ==
            cfg.layers.end()) {
      continue;
    }
    if (cfg.site == InjectionSite::kMetadata &&
        !site.act_format->has_metadata()) {
      continue;  // value-only formats have no metadata campaign
    }

    obs::Span layer_span("campaign", "layer", site.path);
    const int64_t layer_t0 = obs::metrics_enabled() ? obs::now_ns() : 0;

    parallel::parallel_for_workers(
        0, nT, /*grain=*/1, nctx, [&](int slot, int64_t lo, int64_t hi) {
          WorkerCtx& ctx = ctxs[static_cast<size_t>(slot)];
          for (int64_t ti = lo; ti < hi; ++ti) {
            obs::Span trial_span("campaign", "trial");
            InjectionSpec spec;
            spec.layer_path = site.path;
            spec.site = cfg.site;
            spec.model = cfg.model;
            spec.num_bits = cfg.num_bits;
            ctx.inj->arm(spec, base.child(static_cast<uint64_t>(li) *
                                              static_cast<uint64_t>(nT) +
                                          static_cast<uint64_t>(ti)));
            Tensor logits = (*ctx.model)(batch.images);
            outcomes[static_cast<size_t>(ti)] =
                compare_to_golden(golden, logits, batch.labels);
            ctx.inj->disarm();
          }
        });

    obs::add(obs::Counter::kTrials, static_cast<uint64_t>(nT));
    if (obs::metrics_enabled()) {
      const double secs =
          static_cast<double>(obs::now_ns() - layer_t0) / 1e9;
      const double rate = secs > 0.0 ? static_cast<double>(nT) / secs : 0.0;
      obs::set_gauge("campaign.trials_per_sec", rate);
      obs::log(1, "campaign layer " + site.path + ": " + std::to_string(nT) +
                      " trials, " + std::to_string(rate) + " trials/s");
    }

    // Serial aggregation in trial order keeps the statistics (and their
    // floating-point rounding) independent of the execution schedule.
    LayerCampaignResult lr;
    lr.layer = site.path;
    ConvergenceTracker tracker;
    for (int64_t ti = 0; ti < nT; ++ti) {
      const FaultOutcome& out = outcomes[static_cast<size_t>(ti)];
      ++lr.injections;
      if (out.sdc) ++lr.sdc_count;
      lr.mean_mismatch_rate += out.mismatch_rate;
      lr.max_delta_loss =
          std::max(lr.max_delta_loss, double(out.max_delta_loss));
      lr.delta_losses.push_back(out.delta_loss);
      lr.sdc_flags.push_back(out.sdc ? 1 : 0);
      tracker.add(out.delta_loss);
    }
    if (lr.injections > 0) {
      lr.mean_mismatch_rate /= static_cast<double>(lr.injections);
      lr.mean_delta_loss = tracker.mean();
      lr.ci95_delta_loss = tracker.ci95_halfwidth();
    }
    result.layers.push_back(std::move(lr));
  }
  return result;
}

}  // namespace ge::core
