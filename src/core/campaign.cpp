#include "core/campaign.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "io/campaign_state.hpp"
#include "nn/loss.hpp"
#include "obs/histogram.hpp"
#include "obs/profiler.hpp"
#include "obs/run_log.hpp"
#include "obs/telemetry.hpp"
#include "parallel/thread_pool.hpp"

namespace ge::core {

double CampaignResult::network_mean_delta_loss() const {
  if (layers.empty()) return 0.0;
  double s = 0.0;
  for (const auto& l : layers) s += l.mean_delta_loss;
  return s / static_cast<double>(layers.size());
}

int64_t CampaignProgress::completed_trials() const {
  int64_t n = 0;
  for (const auto& l : layers) {
    for (uint8_t d : l.done) n += d;
  }
  return n;
}

int64_t CampaignProgress::total_trials() const {
  int64_t n = 0;
  for (const auto& l : layers) n += static_cast<int64_t>(l.done.size());
  return n;
}

namespace {

/// One instrumented model a worker slot runs trials on. Slot 0 wraps the
/// caller's model; other slots own a replica.
struct WorkerCtx {
  std::unique_ptr<nn::Module> owned;  ///< replicas only; null for slot 0
  nn::Module* model = nullptr;
  std::unique_ptr<Emulator> emu;
  std::unique_ptr<Injector> inj;
  /// This slot's golden-prefix replay plan (keyed to its own module tree);
  /// null when the cache is off or unusable.
  const nn::ReplayPlan* plan = nullptr;
};

/// Copy parameter and buffer values from `src` into `dst` positionally
/// (both trees enumerate depth-first in registration order).
void copy_state(nn::Module& src, nn::Module& dst) {
  const auto sp = src.parameters();
  const auto dp = dst.parameters();
  const auto sb = src.buffers();
  const auto db = dst.buffers();
  if (sp.size() != dp.size() || sb.size() != db.size()) {
    throw std::invalid_argument(
        "run_campaign: make_replica produced a model with a different "
        "parameter/buffer count than the primary");
  }
  for (size_t i = 0; i < sp.size(); ++i) {
    if (sp[i]->value.shape() != dp[i]->value.shape()) {
      throw std::invalid_argument(
          "run_campaign: replica parameter shape mismatch at '" +
          sp[i]->name + "'");
    }
    dp[i]->value = sp[i]->value;
  }
  for (size_t i = 0; i < sb.size(); ++i) {
    db[i]->value = sb[i]->value;
  }
}

bool shard_owns(int64_t ti, int shards, int shard_index) {
  return shards <= 1 || ti % shards == shard_index;
}

/// Per-trial observations captured by the worker that ran the trial.
/// Workers write disjoint slots; the sequential post-block section turns
/// them into "trial" records and histogram samples in ascending trial
/// order, so the analytics stream is deterministic at any thread count.
struct TrialMeta {
  int64_t element = -1;
  int bit = -1;  ///< first perturbed bit position (LSB = 0)
  int64_t affected = 0;  ///< elements the primary fault perturbed
  std::string metadata_field;
  int64_t metadata_index = -1;
  float value_before = 0.0f;
  float value_after = 0.0f;
  int64_t golden_top1 = -1;
  int64_t faulty_top1 = -1;
  int64_t latency_ns = 0;  ///< arm -> disarm, one full faulty inference
  bool fired = false;
};

/// Top-1 class of sample 0 in a [batch, classes] logits tensor. First
/// maximum wins, matching ops::argmax_rows.
int64_t sample0_top1(const Tensor& logits, size_t n_samples) {
  if (n_samples == 0) return -1;
  const int64_t classes =
      logits.numel() / static_cast<int64_t>(n_samples);
  const float* row = logits.cdata();
  int64_t best = 0;
  for (int64_t c = 1; c < classes; ++c) {
    if (row[c] > row[best]) best = c;
  }
  return best;
}

/// Validate a loaded checkpoint against the state a fresh run of this
/// campaign would produce, then splice its completed trials into `fresh`.
/// Any disagreement means the file belongs to a different campaign (or a
/// different model/batch) and resuming would silently mix statistics, so
/// it is a hard IoError.
void apply_resume(CampaignProgress& fresh, const CampaignProgress& saved) {
  const auto fail = [](const std::string& what) {
    throw io::IoError(
        "resume: checkpoint does not match this campaign (different " +
        what + ")");
  };
  if (saved.format_spec != fresh.format_spec) fail("format");
  if (saved.site != fresh.site) fail("injection site");
  if (saved.model != fresh.model) fail("error model");
  if (saved.injections_per_layer != fresh.injections_per_layer) {
    fail("injections per layer");
  }
  if (saved.num_bits != fresh.num_bits) fail("bits per injection");
  if (saved.seed != fresh.seed) fail("seed");
  if (saved.shards != fresh.shards || saved.shard_index != fresh.shard_index) {
    fail("shard partition");
  }
  if (saved.sites_per_trial != fresh.sites_per_trial) {
    fail("sites per trial");
  }
  if (!(saved.ber == fresh.ber)) fail("bit error rate");
  if (saved.burst_len != fresh.burst_len) fail("burst length");
  if (saved.model_name != fresh.model_name) fail("model");
  if (saved.eval_samples != fresh.eval_samples) fail("sample count");
  // Bitwise: any change to weights, batch, or kernels shows up here. The
  // logit digest is the real tripwire — accuracy over a small batch is
  // quantised coarsely enough for two different models to tie.
  if (!(saved.golden_accuracy == fresh.golden_accuracy) ||
      saved.golden_digest != fresh.golden_digest) {
    fail("golden reference — model weights or evaluation batch changed");
  }
  if (saved.layers.size() != fresh.layers.size()) fail("layer set");
  for (size_t i = 0; i < fresh.layers.size(); ++i) {
    const LayerProgress& sl = saved.layers[i];
    LayerProgress& fl = fresh.layers[i];
    if (sl.site_index != fl.site_index || sl.path != fl.path ||
        sl.done.size() != fl.done.size() ||
        sl.outcomes.size() != sl.done.size()) {
      fail("layer '" + fl.path + "'");
    }
    fl.done = sl.done;
    fl.outcomes = sl.outcomes;
  }
  obs::add(obs::Counter::kCampaignResumes);
  obs::log(1, "campaign: resumed from checkpoint with " +
                  std::to_string(fresh.completed_trials()) + "/" +
                  std::to_string(fresh.total_trials()) + " trials done");
}

}  // namespace

CampaignProgress run_campaign_trials(nn::Module& model,
                                     const data::Batch& batch,
                                     const CampaignConfig& cfg,
                                     const CampaignRunOptions& opts) {
  obs::AttrScope campaign_attr(cfg.format_spec, "");
  obs::Span campaign_span("campaign", "run_campaign", cfg.format_spec);
  if (opts.shards < 1 || opts.shard_index < 0 ||
      opts.shard_index >= opts.shards) {
    throw std::invalid_argument(
        "run_campaign_trials: shard_index must be in [0, shards)");
  }
  if (opts.checkpoint_every < 0 || opts.abort_after < 0) {
    throw std::invalid_argument(
        "run_campaign_trials: checkpoint_every/abort_after must be >= 0");
  }
  if ((opts.checkpoint_every > 0 || opts.abort_after > 0) &&
      opts.checkpoint_path.empty()) {
    throw std::invalid_argument(
        "run_campaign_trials: checkpointing requires a checkpoint_path");
  }
  if (cfg.sites_per_trial < 1) {
    throw std::invalid_argument(
        "run_campaign_trials: sites_per_trial must be >= 1");
  }
  if (opts.lease_hi >= 0 && (opts.lease_lo < 0 || opts.lease_lo > opts.lease_hi)) {
    throw std::invalid_argument(
        "run_campaign_trials: lease range must satisfy 0 <= lease_lo <= "
        "lease_hi");
  }
  model.eval();
  EmulatorConfig ecfg;
  ecfg.format_spec = cfg.format_spec;

  // Worker contexts. Replicas must be built and given the primary's weights
  // BEFORE the primary is instrumented: quantisation is not idempotent (an
  // int8 scale recomputed from already-quantised data differs), so copying
  // after attach would double-quantise the replicas.
  const int64_t nT = cfg.injections_per_layer;
  int nctx = 1;
  if (cfg.make_replica) {
    nctx = std::clamp<int64_t>(
        std::min<int64_t>(parallel::num_threads(), nT), 1, 64);
  }
  std::vector<WorkerCtx> ctxs(static_cast<size_t>(nctx));
  ctxs[0].model = &model;
  for (int w = 1; w < nctx; ++w) {
    ctxs[static_cast<size_t>(w)].owned = cfg.make_replica();
    ctxs[static_cast<size_t>(w)].model =
        ctxs[static_cast<size_t>(w)].owned.get();
    ctxs[static_cast<size_t>(w)].model->eval();
    copy_state(model, *ctxs[static_cast<size_t>(w)].model);
  }
  ctxs[0].emu = std::make_unique<Emulator>(*ctxs[0].model, ecfg);
  ctxs[0].inj = std::make_unique<Injector>(*ctxs[0].emu, cfg.seed);
  // Replicas share the primary's post-quantisation weight tensors instead
  // of re-quantising their own copies: attach becomes O(1) per parameter
  // and the quantised weights exist once, however many workers run. A
  // trial that corrupts a weight detaches a private copy via COW.
  EmulatorConfig rcfg = ecfg;
  rcfg.weight_source = &model;
  for (int w = 1; w < nctx; ++w) {
    ctxs[static_cast<size_t>(w)].emu =
        std::make_unique<Emulator>(*ctxs[static_cast<size_t>(w)].model, rcfg);
    ctxs[static_cast<size_t>(w)].inj =
        std::make_unique<Injector>(*ctxs[static_cast<size_t>(w)].emu,
                                   cfg.seed);
  }
  Emulator& emu = *ctxs[0].emu;

  // Golden reference *under emulation* (fault-free but format-quantised):
  // faults are measured against the format's own clean behaviour. The
  // replicas share it — identical weights and deterministic kernels make
  // their fault-free logits bitwise equal to the primary's.
  //
  // With the prefix cache on, the same pass also records every module's
  // post-hook output into a ReplayPlan (O(1) COW shares — the plan adds no
  // forward cost), so trials can replay only the suffix from their
  // injection site. The cached tensors are golden state: any in-place
  // write during a trial detaches via copy-on-write because the plan holds
  // a share, so the cache can never be corrupted.
  nn::ReplayPlan plan0;
  const GoldenRun golden = [&] {
    obs::Span golden_span("campaign", "golden_run");
    return run_golden(model, batch, cfg.use_prefix_cache ? &plan0 : nullptr);
  }();
  const bool cache_on = cfg.use_prefix_cache && plan0.usable();
  if (cfg.use_prefix_cache && !cache_on) {
    obs::log(1,
             "campaign: prefix cache unusable (a module ran more than once "
             "in the golden forward); falling back to full forwards");
  }
  std::vector<nn::ReplayPlan> rplans;
  if (cache_on) {
    obs::add(obs::Counter::kPrefixCacheBytes,
             static_cast<uint64_t>(plan0.cache_bytes()));
    ctxs[0].plan = &plan0;
    // Replica plans re-key the primary's records onto each replica's
    // module tree; the cached tensors themselves are shared, not copied.
    rplans.reserve(static_cast<size_t>(nctx - 1));
    for (int w = 1; w < nctx; ++w) {
      rplans.push_back(plan0.translate(model, *ctxs[static_cast<size_t>(w)]
                                                   .model));
    }
    for (int w = 1; w < nctx; ++w) {
      ctxs[static_cast<size_t>(w)].plan = &rplans[static_cast<size_t>(w - 1)];
    }
  }

  CampaignProgress prog;
  prog.format_spec = cfg.format_spec;
  prog.site = cfg.site;
  prog.model = cfg.model;
  prog.injections_per_layer = nT;
  prog.num_bits = cfg.num_bits;
  prog.seed = cfg.seed;
  prog.shards = opts.shards;
  prog.shard_index = opts.shard_index;
  prog.sites_per_trial = cfg.sites_per_trial;
  prog.ber = cfg.ber;
  prog.burst_len = cfg.burst_len;
  prog.model_name = opts.model_name;
  prog.eval_samples = opts.eval_samples;
  prog.golden_accuracy = nn::accuracy(golden.logits, batch.labels);
  prog.golden_digest =
      fnv1a(kFnv1aBasis, golden.logits.cdata(),
            static_cast<size_t>(golden.logits.numel()) * sizeof(float));

  // Enumerate the campaigned sites. Skipped sites still advance the site
  // index, keeping each layer's RNG streams stable under cfg.layers
  // filtering — and stable across save/resume/shard boundaries, since the
  // index is persisted per layer.
  for (size_t li = 0; li < emu.sites().size(); ++li) {
    const LayerSite& site = emu.sites()[li];
    if (!cfg.layers.empty() &&
        std::find(cfg.layers.begin(), cfg.layers.end(), site.path) ==
            cfg.layers.end()) {
      continue;
    }
    if (cfg.site == InjectionSite::kMetadata &&
        !site.act_format->has_metadata()) {
      continue;  // value-only formats have no metadata campaign
    }
    LayerProgress lp;
    lp.site_index = li;
    lp.path = site.path;
    lp.done.assign(static_cast<size_t>(nT), 0);
    lp.outcomes.assign(static_cast<size_t>(nT), FaultOutcome{});
    prog.layers.push_back(std::move(lp));
  }

  if (opts.resume_from != nullptr) apply_resume(prog, *opts.resume_from);

  // Lease filter over the global trial index (campaign position order).
  // A lease ending past the campaign means the lessor sized the trial
  // space against a different model or layer set — reject loudly rather
  // than silently running a truncated lease.
  const bool leased = opts.lease_hi >= 0;
  if (leased &&
      opts.lease_hi > static_cast<int64_t>(prog.layers.size()) * nT) {
    throw std::invalid_argument(
        "run_campaign_trials: lease_hi " + std::to_string(opts.lease_hi) +
        " exceeds the campaign's " +
        std::to_string(static_cast<int64_t>(prog.layers.size()) * nT) +
        " trials");
  }
  const auto lease_owns = [&](int64_t layer_pos, int64_t ti) {
    if (!leased) return true;
    const int64_t g = layer_pos * nT + ti;
    return g >= opts.lease_lo && g < opts.lease_hi;
  };

  // Analytics are capture-gated: with no report stream and metrics off the
  // trial loop does no clock reads, no meta copies, and no histogram
  // lookups. When on, workers record into disjoint TrialMeta slots and the
  // sequential post-block section emits everything in ascending trial
  // order — observation only, never an input to any trial.
  const bool capture = opts.run_log != nullptr || obs::metrics_enabled();
  const bool heartbeat_on =
      opts.run_log != nullptr || obs::metrics_enabled() || obs::log_level() >= 1;
  int64_t hb_total = 0;
  for (size_t lpos = 0; lpos < prog.layers.size(); ++lpos) {
    const LayerProgress& lp = prog.layers[lpos];
    for (int64_t ti = 0; ti < nT; ++ti) {
      if (shard_owns(ti, opts.shards, opts.shard_index) &&
          lease_owns(static_cast<int64_t>(lpos), ti) &&
          lp.done[static_cast<size_t>(ti)] == 0) {
        ++hb_total;
      }
    }
  }
  const int64_t run_t0 = heartbeat_on ? obs::now_ns() : 0;
  obs::Histogram* h_latency = nullptr;
  obs::Histogram* h_delta = nullptr;
  obs::Histogram* h_bits = nullptr;
  obs::Histogram* h_bit_sdc = nullptr;
  if (capture) {
    h_latency = &obs::histogram("campaign.trial_latency_us");
    h_delta = &obs::histogram("campaign.trial_delta_loss");
    h_bits = &obs::histogram("campaign.bit_flips");
    h_bit_sdc = &obs::histogram("campaign.bit_sdc");
  }

  // Every random choice of trial ti at site li draws from the child stream
  // (seed, li * nT + ti): outcomes are a pure function of the trial id, so
  // any worker may run any trial in any order — across threads, process
  // restarts, and shards — and the aggregate matches the serial path
  // bitwise.
  const Rng base(cfg.seed);
  int64_t executed = 0;
  bool aborted = false;

  for (LayerProgress& lp : prog.layers) {
    const int64_t layer_pos = &lp - prog.layers.data();
    LayerSite& site = emu.sites()[static_cast<size_t>(lp.site_index)];
    std::vector<int64_t> pending;
    pending.reserve(static_cast<size_t>(nT));
    for (int64_t ti = 0; ti < nT; ++ti) {
      if (shard_owns(ti, opts.shards, opts.shard_index) &&
          lease_owns(layer_pos, ti) && !lp.done[ti]) {
        pending.push_back(ti);
      }
    }
    if (pending.empty()) continue;

    // Companion pool for multi-point trials: instrumented sites strictly
    // after the campaigned one (disjoint suffix segments — a companion
    // never perturbs state the primary fault's own layer consumes).
    // Metadata campaigns keep only metadata-capable formats, mirroring the
    // primary-site filter above.
    std::vector<size_t> companions;
    if (cfg.sites_per_trial > 1) {
      companions.reserve(emu.sites().size());
      for (size_t lj = static_cast<size_t>(lp.site_index) + 1;
           lj < emu.sites().size(); ++lj) {
        if (cfg.site == InjectionSite::kMetadata &&
            !emu.sites()[lj].act_format->has_metadata()) {
          continue;
        }
        companions.push_back(lj);
      }
    }
    const int64_t want_comp = std::min<int64_t>(
        cfg.sites_per_trial - 1, static_cast<int64_t>(companions.size()));

    // Suffix replay is exact only if every fault of the trial re-executes:
    // a companion the plan would serve from cache (possible only if
    // site-registration order diverges from execution order) silently
    // drops its fault, so such layers run full forwards instead. The
    // companion pool itself never depends on the cache mode — cache on and
    // off stay bitwise identical.
    bool layer_cache_on = cache_on;
    if (layer_cache_on) {
      for (size_t lj : companions) {
        if (plan0.skipped_for(*site.module, *emu.sites()[lj].module)) {
          layer_cache_on = false;
          break;
        }
      }
    }

    obs::Span layer_span("campaign", "layer", site.path);
    const int64_t layer_t0 = obs::metrics_enabled() ? obs::now_ns() : 0;
    int64_t layer_done = 0;

    const int64_t block = opts.checkpoint_every > 0
                              ? opts.checkpoint_every
                              : static_cast<int64_t>(pending.size());
    for (size_t start = 0; start < pending.size() && !aborted;
         start += static_cast<size_t>(block)) {
      const int64_t cnt = std::min<int64_t>(
          block, static_cast<int64_t>(pending.size() - start));
      std::vector<TrialMeta> metas;
      if (capture) metas.assign(static_cast<size_t>(cnt), TrialMeta{});
      parallel::parallel_for_workers(
          0, cnt, /*grain=*/1, nctx, [&](int slot, int64_t lo, int64_t hi) {
            WorkerCtx& ctx = ctxs[static_cast<size_t>(slot)];
            for (int64_t k = lo; k < hi; ++k) {
              const int64_t ti = pending[start + static_cast<size_t>(k)];
              // Worker threads don't inherit the campaign's AttrScope
              // (attribution is thread-local): re-establish it per trial.
              obs::AttrScope trial_attr(cfg.format_spec, site.path);
              obs::Span trial_span("campaign", "trial");
              const int64_t trial_t0 = capture ? obs::now_ns() : 0;
              InjectionSpec spec;
              spec.layer_path = site.path;
              spec.site = cfg.site;
              spec.model = cfg.model;
              spec.num_bits = cfg.num_bits;
              spec.ber = cfg.ber;
              spec.burst_len = cfg.burst_len;
              Rng trial_rng =
                  base.child(lp.site_index * static_cast<uint64_t>(nT) +
                             static_cast<uint64_t>(ti));
              if (want_comp == 0) {
                ctx.inj->arm(spec, trial_rng);
              } else {
                // Companion selection draws from the trial stream before
                // the injector copies it, so every random choice of the
                // trial — selection included — is a pure function of
                // (seed, site index, trial index).
                std::vector<size_t> chosen;
                chosen.reserve(static_cast<size_t>(want_comp));
                while (static_cast<int64_t>(chosen.size()) < want_comp) {
                  const size_t pick = companions[static_cast<size_t>(
                      trial_rng.randint(
                          0, static_cast<int64_t>(companions.size()) - 1))];
                  if (std::find(chosen.begin(), chosen.end(), pick) ==
                      chosen.end()) {
                    chosen.push_back(pick);
                  }
                }
                std::sort(chosen.begin(), chosen.end());
                std::vector<InjectionSpec> specs;
                specs.reserve(1 + static_cast<size_t>(want_comp));
                specs.push_back(spec);
                for (size_t lj : chosen) {
                  InjectionSpec cspec = spec;
                  cspec.layer_path = emu.sites()[lj].path;
                  specs.push_back(std::move(cspec));
                }
                ctx.inj->arm_multi(specs, trial_rng);
              }
              Tensor logits;
              if (layer_cache_on) {
                // Suffix replay: the prefix is served from the recorded
                // golden activations; only the site, its ancestors, and
                // the layers after it recompute.
                obs::Span replay_span("campaign", "suffix_replay");
                int64_t served = 0;
                logits = ctx.model->forward_from(
                    *ctx.plan,
                    *ctx.emu->sites()[static_cast<size_t>(lp.site_index)]
                         .module,
                    batch.images, &served);
                obs::add(obs::Counter::kPrefixCacheHits);
                obs::add(obs::Counter::kSuffixLayersSkipped,
                         static_cast<uint64_t>(served));
              } else {
                logits = (*ctx.model)(batch.images);
              }
              lp.outcomes[static_cast<size_t>(ti)] =
                  compare_to_golden(golden, logits, batch.labels);
              ctx.inj->disarm();
              if (capture) {
                // disarm() keeps last_record(): read the resolved random
                // choices after timing the full arm -> disarm trial.
                TrialMeta& m = metas[static_cast<size_t>(k)];
                m.latency_ns = obs::now_ns() - trial_t0;
                if (const auto& rec = ctx.inj->last_record()) {
                  m.fired = true;
                  m.element = rec->element;
                  m.bit = rec->bits.empty() ? -1 : rec->bits.front();
                  m.affected = rec->affected;
                  m.metadata_field = rec->metadata_field;
                  m.metadata_index = rec->metadata_index;
                  m.value_before = rec->value_before;
                  m.value_after = rec->value_after;
                }
                m.golden_top1 = golden.predictions.empty()
                                    ? -1
                                    : golden.predictions.front();
                m.faulty_top1 = sample0_top1(logits, batch.labels.size());
              }
            }
          });
      for (int64_t k = 0; k < cnt; ++k) {
        lp.done[static_cast<size_t>(pending[start + static_cast<size_t>(k)])] =
            1;
      }
      executed += cnt;
      layer_done += cnt;
      obs::add(obs::Counter::kTrials, static_cast<uint64_t>(cnt));
      if (capture) {
        for (int64_t k = 0; k < cnt; ++k) {
          const int64_t ti = pending[start + static_cast<size_t>(k)];
          const FaultOutcome& o = lp.outcomes[static_cast<size_t>(ti)];
          const TrialMeta& m = metas[static_cast<size_t>(k)];
          h_latency->record(static_cast<double>(m.latency_ns) / 1000.0);
          h_delta->record(static_cast<double>(o.delta_loss));
          if (m.bit >= 0) {
            h_bits->record(static_cast<double>(m.bit));
            if (o.sdc) h_bit_sdc->record(static_cast<double>(m.bit));
          }
          if (opts.run_log != nullptr) {
            obs::JsonObject row;
            row.str("layer", lp.path)
                .num("site_index", lp.site_index)
                .num("trial", ti)
                .str("site", to_string(cfg.site))
                .str("error_model", to_string(cfg.model))
                .num("element", m.element)
                .num("bit", static_cast<int64_t>(m.bit))
                .num("affected", m.affected);
            if (!m.metadata_field.empty()) {
              row.str("metadata_field", m.metadata_field)
                  .num("metadata_index", m.metadata_index);
            }
            row.num("value_before", static_cast<double>(m.value_before))
                .num("value_after", static_cast<double>(m.value_after))
                .num("golden_top1", m.golden_top1)
                .num("faulty_top1", m.faulty_top1)
                .num("mismatched", o.mismatched_samples)
                .num("mismatch_rate", static_cast<double>(o.mismatch_rate))
                .num("delta_loss", static_cast<double>(o.delta_loss))
                .num("max_delta_loss",
                     static_cast<double>(o.max_delta_loss))
                .str("class", outcome_class(o));
            opts.run_log->event("trial", row);
          }
        }
      }
      if (heartbeat_on) {
        const double secs =
            static_cast<double>(obs::now_ns() - run_t0) / 1e9;
        const double rate =
            secs > 0.0 ? static_cast<double>(executed) / secs : 0.0;
        const double eta =
            rate > 0.0 ? static_cast<double>(hb_total - executed) / rate
                       : 0.0;
        obs::set_gauge("campaign.trials_done",
                       static_cast<double>(executed));
        obs::set_gauge("campaign.trials_total",
                       static_cast<double>(hb_total));
        obs::set_gauge("campaign.eta_seconds", eta);
        // Memory watermarks ride the heartbeat: a pure read of allocator
        // and /proc state (never a perturbation), published as mem.*
        // gauges and as additive schema-v2 heartbeat fields the report
        // scanner tolerates being absent.
        const obs::MemoryWatermarks mem = obs::sample_memory();
        char hb[160];
        std::snprintf(hb, sizeof(hb),
                      "campaign: %lld/%lld trials, %.1f trials/s, eta %.1fs",
                      static_cast<long long>(executed),
                      static_cast<long long>(hb_total), rate, eta);
        obs::log(1, hb);
        if (opts.run_log != nullptr) {
          obs::JsonObject row;
          row.num("done", executed)
              .num("total", hb_total)
              .num("trials_per_sec", rate)
              .num("eta_seconds", eta)
              .num("rss_bytes", mem.rss_bytes)
              .num("arena_bytes", mem.arena_live_bytes);
          opts.run_log->event("heartbeat", row);
        }
      }
      if (opts.checkpoint_every > 0) {
        io::save_campaign_progress(opts.checkpoint_path, prog);
      }
      if (opts.abort_after > 0 && executed >= opts.abort_after) {
        aborted = true;
      }
    }

    if (obs::metrics_enabled()) {
      const double secs =
          static_cast<double>(obs::now_ns() - layer_t0) / 1e9;
      const double rate =
          secs > 0.0 ? static_cast<double>(layer_done) / secs : 0.0;
      obs::set_gauge("campaign.trials_per_sec", rate);
      obs::log(1, "campaign layer " + site.path + ": " +
                      std::to_string(layer_done) + " trials, " +
                      std::to_string(rate) + " trials/s");
    }
    if (aborted) break;
  }

  if (aborted && !opts.checkpoint_path.empty()) {
    // Final checkpoint at the abort point, so the drill behaves exactly
    // like a kill right after the last periodic write.
    io::save_campaign_progress(opts.checkpoint_path, prog);
  }
  return prog;
}

int64_t owned_trials_remaining(const CampaignProgress& progress) {
  int64_t n = 0;
  for (const LayerProgress& l : progress.layers) {
    for (size_t ti = 0; ti < l.done.size(); ++ti) {
      if (shard_owns(static_cast<int64_t>(ti), progress.shards,
                     progress.shard_index) &&
          !l.done[ti]) {
        ++n;
      }
    }
  }
  return n;
}

int64_t count_campaign_layers(nn::Module& model, const CampaignConfig& cfg) {
  model.eval();
  EmulatorConfig ecfg;
  ecfg.format_spec = cfg.format_spec;
  // Same enumeration filters as run_campaign_trials; the Emulator restores
  // the model on destruction, so this is a read-only probe.
  Emulator emu(model, ecfg);
  int64_t n = 0;
  for (const LayerSite& site : emu.sites()) {
    if (!cfg.layers.empty() &&
        std::find(cfg.layers.begin(), cfg.layers.end(), site.path) ==
            cfg.layers.end()) {
      continue;
    }
    if (cfg.site == InjectionSite::kMetadata &&
        !site.act_format->has_metadata()) {
      continue;
    }
    ++n;
  }
  return n;
}

CampaignResult finalize_campaign(const CampaignProgress& progress) {
  if (!progress.complete()) {
    throw std::invalid_argument(
        "finalize_campaign: campaign progress is incomplete (" +
        std::to_string(progress.completed_trials()) + "/" +
        std::to_string(progress.total_trials()) + " trials done)");
  }
  CampaignResult result;
  result.golden_accuracy = progress.golden_accuracy;
  // Serial aggregation in trial order keeps the statistics (and their
  // floating-point rounding) independent of how the trials were scheduled,
  // sharded, or resumed.
  for (const LayerProgress& lp : progress.layers) {
    LayerCampaignResult lr;
    lr.layer = lp.path;
    // One exact reservation per vector: the trial count is known up front,
    // so the per-trial push_backs below never reallocate.
    lr.delta_losses.reserve(lp.outcomes.size());
    lr.sdc_flags.reserve(lp.outcomes.size());
    ConvergenceTracker tracker;
    for (const FaultOutcome& out : lp.outcomes) {
      ++lr.injections;
      if (out.sdc) ++lr.sdc_count;
      lr.mean_mismatch_rate += out.mismatch_rate;
      lr.max_delta_loss =
          std::max(lr.max_delta_loss, double(out.max_delta_loss));
      lr.delta_losses.push_back(out.delta_loss);
      lr.sdc_flags.push_back(out.sdc ? 1 : 0);
      tracker.add(out.delta_loss);
    }
    if (lr.injections > 0) {
      lr.mean_mismatch_rate /= static_cast<double>(lr.injections);
      lr.mean_delta_loss = tracker.mean();
      lr.ci95_delta_loss = tracker.ci95_halfwidth();
    }
    result.layers.push_back(std::move(lr));
  }
  return result;
}

CampaignProgress merge_campaign_progress(
    const std::vector<CampaignProgress>& parts) {
  if (parts.empty()) {
    throw std::invalid_argument("merge_campaign_progress: no inputs");
  }
  CampaignProgress merged = parts[0];
  std::vector<int> seen;
  seen.reserve(parts.size());
  seen.push_back(parts[0].shard_index);
  for (size_t i = 1; i < parts.size(); ++i) {
    const CampaignProgress& p = parts[i];
    const auto fail = [i](const std::string& what) {
      throw io::IoError("merge: input " + std::to_string(i) +
                        " does not match input 0 (different " + what + ")");
    };
    if (p.format_spec != merged.format_spec) fail("format");
    if (p.site != merged.site) fail("injection site");
    if (p.model != merged.model) fail("error model");
    if (p.injections_per_layer != merged.injections_per_layer) {
      fail("injections per layer");
    }
    if (p.num_bits != merged.num_bits) fail("bits per injection");
    if (p.seed != merged.seed) fail("seed");
    if (p.shards != parts[0].shards) fail("shard count");
    if (p.sites_per_trial != merged.sites_per_trial) {
      fail("sites per trial");
    }
    if (!(p.ber == merged.ber)) fail("bit error rate");
    if (p.burst_len != merged.burst_len) fail("burst length");
    if (p.model_name != merged.model_name) fail("model");
    if (p.eval_samples != merged.eval_samples) fail("sample count");
    if (!(p.golden_accuracy == merged.golden_accuracy) ||
        p.golden_digest != merged.golden_digest) {
      fail("golden reference — shards ran different models or batches");
    }
    if (p.layers.size() != merged.layers.size()) fail("layer set");
    if (std::find(seen.begin(), seen.end(), p.shard_index) != seen.end()) {
      throw io::IoError("merge: duplicate shard index " +
                        std::to_string(p.shard_index));
    }
    seen.push_back(p.shard_index);
    for (size_t j = 0; j < merged.layers.size(); ++j) {
      const LayerProgress& pl = p.layers[j];
      LayerProgress& ml = merged.layers[j];
      if (pl.site_index != ml.site_index || pl.path != ml.path ||
          pl.done.size() != ml.done.size()) {
        fail("layer '" + ml.path + "'");
      }
      for (size_t ti = 0; ti < pl.done.size(); ++ti) {
        if (!pl.done[ti]) continue;
        if (ml.done[ti]) {
          throw io::IoError("merge: trial " + std::to_string(ti) +
                            " of layer '" + ml.path +
                            "' appears in more than one input");
        }
        ml.done[ti] = 1;
        ml.outcomes[ti] = pl.outcomes[ti];
      }
    }
  }
  // The merged state represents the whole campaign again: re-label it
  // unsharded so it can be finalized — or resumed, if shards are missing.
  merged.shards = 1;
  merged.shard_index = 0;
  return merged;
}

uint64_t campaign_digest(const CampaignResult& r) {
  uint64_t h = kFnv1aBasis;
  h = fnv1a(h, &r.golden_accuracy, sizeof(r.golden_accuracy));
  for (const auto& l : r.layers) {
    h = fnv1a(h, l.layer.data(), l.layer.size());
    h = fnv1a(h, &l.injections, sizeof(l.injections));
    h = fnv1a(h, &l.sdc_count, sizeof(l.sdc_count));
    h = fnv1a(h, &l.mean_mismatch_rate, sizeof(l.mean_mismatch_rate));
    h = fnv1a(h, &l.mean_delta_loss, sizeof(l.mean_delta_loss));
    h = fnv1a(h, &l.max_delta_loss, sizeof(l.max_delta_loss));
    h = fnv1a(h, &l.ci95_delta_loss, sizeof(l.ci95_delta_loss));
    if (!l.delta_losses.empty()) {
      h = fnv1a(h, l.delta_losses.data(),
                l.delta_losses.size() * sizeof(float));
    }
    if (!l.sdc_flags.empty()) {
      h = fnv1a(h, l.sdc_flags.data(), l.sdc_flags.size());
    }
  }
  return h;
}

CampaignResult run_campaign(nn::Module& model, const data::Batch& batch,
                            const CampaignConfig& cfg) {
  return finalize_campaign(run_campaign_trials(model, batch, cfg, {}));
}

}  // namespace ge::core
