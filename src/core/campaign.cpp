#include "core/campaign.hpp"

#include <algorithm>

#include "nn/loss.hpp"

namespace ge::core {

double CampaignResult::network_mean_delta_loss() const {
  if (layers.empty()) return 0.0;
  double s = 0.0;
  for (const auto& l : layers) s += l.mean_delta_loss;
  return s / static_cast<double>(layers.size());
}

CampaignResult run_campaign(nn::Module& model, const data::Batch& batch,
                            const CampaignConfig& cfg) {
  model.eval();
  EmulatorConfig ecfg;
  ecfg.format_spec = cfg.format_spec;
  Emulator emu(model, ecfg);
  Injector inj(emu, cfg.seed);

  CampaignResult result;

  // Golden reference *under emulation* (fault-free but format-quantised):
  // faults are measured against the format's own clean behaviour.
  const GoldenRun golden = run_golden(model, batch);
  result.golden_accuracy = nn::accuracy(golden.logits, batch.labels);

  for (LayerSite& site : emu.sites()) {
    if (!cfg.layers.empty() &&
        std::find(cfg.layers.begin(), cfg.layers.end(), site.path) ==
            cfg.layers.end()) {
      continue;
    }
    if (cfg.site == InjectionSite::kMetadata &&
        !site.act_format->has_metadata()) {
      continue;  // value-only formats have no metadata campaign
    }
    LayerCampaignResult lr;
    lr.layer = site.path;
    ConvergenceTracker tracker;
    for (int64_t i = 0; i < cfg.injections_per_layer; ++i) {
      InjectionSpec spec;
      spec.layer_path = site.path;
      spec.site = cfg.site;
      spec.model = cfg.model;
      spec.num_bits = cfg.num_bits;
      inj.arm(spec);
      Tensor logits = model(batch.images);
      const FaultOutcome out =
          compare_to_golden(golden, logits, batch.labels);
      inj.disarm();

      ++lr.injections;
      if (out.sdc) ++lr.sdc_count;
      lr.mean_mismatch_rate += out.mismatch_rate;
      lr.max_delta_loss =
          std::max(lr.max_delta_loss, double(out.max_delta_loss));
      lr.delta_losses.push_back(out.delta_loss);
      lr.sdc_flags.push_back(out.sdc ? 1 : 0);
      tracker.add(out.delta_loss);
    }
    if (lr.injections > 0) {
      lr.mean_mismatch_rate /= static_cast<double>(lr.injections);
      lr.mean_delta_loss = tracker.mean();
      lr.ci95_delta_loss = tracker.ci95_halfwidth();
    }
    result.layers.push_back(std::move(lr));
  }
  return result;
}

}  // namespace ge::core
