// ge::core::perf_gate — the CI perf-regression gate's comparison engine.
//
// Inputs are two BENCH_<name>.json files as written by bench/harness.hpp's
// BenchReport ({"bench": ..., "rows": [...]}, one row object per line): a
// checked-in baseline (bench/baselines/) and a fresh run. The gate
// compares every metric column present in both files row-by-row (rows
// matched on their "name" field) and fails when the median ratio
// current/baseline across compared metrics exceeds 1 + threshold.
//
// The median — not the max — is the gate statistic: a single noisy bench
// case on a shared CI runner should not fail the build, but a real
// regression moves most rows together. Rows present on only one side are
// reported but never fail the gate (bench sets grow across PRs).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace ge::core::perf_gate {

/// One bench case: its name plus every numeric field of its row.
struct BenchRow {
  std::string name;
  std::map<std::string, double> metrics;
};

/// A parsed BENCH_<name>.json file.
struct BenchFile {
  std::string bench;            ///< the "bench" field ("fig3_runtime", ...)
  std::vector<BenchRow> rows;   ///< file order
};

/// Parse a BenchReport JSON file. Throws std::runtime_error on missing or
/// malformed input (a gate that silently passes on bad data is worse than
/// one that errors).
BenchFile load_bench_json(const std::string& path);

/// One compared (row, metric) cell.
struct Comparison {
  std::string row;       ///< bench-case name
  std::string metric;    ///< metric column ("wall_ms", ...)
  double baseline = 0.0;
  double current = 0.0;
  double ratio = 0.0;    ///< current / baseline (1.0 when baseline == 0)
};

struct GateResult {
  std::vector<Comparison> rows;      ///< every compared cell, file order
  std::vector<std::string> missing;  ///< names on one side only (informative)
  double median_ratio = 1.0;         ///< median of rows[].ratio
  double worst_ratio = 1.0;          ///< max of rows[].ratio
  bool pass = true;                  ///< median_ratio <= 1 + threshold
};

/// Compare `current` against `baseline` over the named metrics (for each
/// metric, only rows where both sides carry it numerically participate).
/// `threshold` is fractional: 0.15 fails on a >15% median regression.
GateResult compare_bench(const BenchFile& baseline, const BenchFile& current,
                         const std::vector<std::string>& metrics,
                         double threshold);

}  // namespace ge::core::perf_gate
