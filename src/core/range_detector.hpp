// RangeDetector: the paper's toggleable activation-range guard (§V-B),
// modeled off Ranger-style fault detection — profile each instrumented
// layer's output range on clean data, then clamp (and count) out-of-range
// activations during faulty runs.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "nn/module.hpp"

namespace ge::core {

class RangeDetector {
 public:
  /// Instruments layers of the given kinds on `model` (profiling hooks are
  /// installed lazily by profile(); protection hooks by enable()).
  RangeDetector(nn::Module& model,
                std::vector<std::string> layer_kinds = {"Conv2d", "Linear"});
  ~RangeDetector();

  RangeDetector(const RangeDetector&) = delete;
  RangeDetector& operator=(const RangeDetector&) = delete;

  /// Run the model on clean inputs, recording each layer's [min, max].
  /// Call as many times as desired; ranges accumulate.
  void profile(const Tensor& inputs);

  /// Install clamping hooks using the profiled ranges.
  void enable();
  /// Remove clamping hooks.
  void disable();
  bool enabled() const noexcept { return enabled_; }

  /// Number of clamped scalar values since the last reset.
  int64_t clamp_events() const noexcept { return clamp_events_; }
  void reset_clamp_events() noexcept { clamp_events_ = 0; }

  const std::map<std::string, std::pair<float, float>>& ranges() const {
    return ranges_;
  }

 private:
  std::vector<std::pair<std::string, nn::Module*>> targets_;
  std::map<std::string, std::pair<float, float>> ranges_;
  std::vector<std::pair<nn::Module*, nn::Module::HookHandle>> hooks_;
  nn::Module* model_;
  bool enabled_ = false;
  int64_t clamp_events_ = 0;
};

}  // namespace ge::core
