// Command-line front end: the paper drives GoldenEye "with a set of
// command line arguments for hyperparameter tuning, extended with wrapper
// scripts" (§IV-B). run_cli() is the whole tool behind the goldeneye_cli
// binary, kept in the library so the argument handling is unit-testable.
//
// Commands:
//   accuracy  --model M --format F [--samples N]        emulated accuracy
//   campaign  --model M --format F [--site value|weight|metadata]
//             [--error-model flip|sa0|sa1] [--injections N] [--seed S]
//   dse       --model M --family fp|fxp|int|bfp|afp [--threshold X]
//   range     --format F                                Table-I row
//   features                                            Table II matrix
//   formats                                             spec grammar help
// Common: --cache DIR (trained-weight cache), --epochs N (training).
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace ge::core {

/// Run one CLI invocation. `args` excludes the program name. Returns the
/// process exit code (0 = success, 2 = usage error).
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace ge::core
