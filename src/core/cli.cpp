#include "core/cli.hpp"

#include <charconv>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>

#include "core/campaign.hpp"
#include "core/dse.hpp"
#include "core/emulator.hpp"
#include "core/goldeneye.hpp"
#include "core/report.hpp"
#include "core/trace_merge.hpp"
#include "data/dataloader.hpp"
#include "formats/format_registry.hpp"
#include "io/campaign_state.hpp"
#include "io/model_io.hpp"
#include "models/model_factory.hpp"
#include "net/client.hpp"
#include "net/frame.hpp"
#include "net/server.hpp"
#include "nn/loss.hpp"
#include "obs/metrics_server.hpp"
#include "obs/perf_counters.hpp"
#include "obs/profiler.hpp"
#include "obs/run_log.hpp"
#include "obs/telemetry.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/arena.hpp"

namespace ge::core {

namespace {

/// Bad command-line input: message printed to stderr, exit code 2. Keeps
/// user errors distinct from internal failures (exit 1).
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct ParsedArgs {
  std::string command;
  std::map<std::string, std::string> options;
};

/// "--key value" pairs after the command word; returns nullopt on
/// malformed input (a --key without a value, or a stray positional).
std::optional<ParsedArgs> parse(const std::vector<std::string>& args) {
  if (args.empty()) return std::nullopt;
  ParsedArgs out;
  out.command = args[0];
  for (size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a.rfind("--", 0) != 0 || a.size() <= 2) return std::nullopt;
    if (i + 1 >= args.size()) return std::nullopt;
    out.options[a.substr(2)] = args[++i];
  }
  return out;
}

std::string get(const ParsedArgs& p, const std::string& key,
                const std::string& fallback) {
  const auto it = p.options.find(key);
  return it != p.options.end() ? it->second : fallback;
}

/// Integer option with full-string validation: "--samples abc" and
/// "--samples 12x" are usage errors, not crashes or silent truncation.
int64_t get_int(const ParsedArgs& p, const std::string& key,
                int64_t fallback) {
  const auto it = p.options.find(key);
  if (it == p.options.end()) return fallback;
  const std::string& s = it->second;
  int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw UsageError("invalid value '" + s + "' for --" + key +
                     " (expected an integer)");
  }
  return value;
}

/// As get_int for real-valued options (e.g. --threshold).
double get_num(const ParsedArgs& p, const std::string& key, double fallback) {
  const auto it = p.options.find(key);
  if (it == p.options.end()) return fallback;
  const std::string& s = it->second;
  char* end = nullptr;
  const double value = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    throw UsageError("invalid value '" + s + "' for --" + key +
                     " (expected a number)");
  }
  return value;
}

// --- one table for dispatch, validation and usage() ------------------------
// Every command, option and help line lives here; usage() renders it, and
// option validation walks it, so the docs cannot drift from the code.

struct OptionDesc {
  const char* flag;   ///< option name without the leading "--"
  const char* value;  ///< value placeholder for the usage line
  const char* help;
};

struct CommandDesc {
  const char* name;
  const char* summary;
  std::vector<OptionDesc> options;
  bool model_command;  ///< accepts the common model/training options
};

const std::vector<OptionDesc>& common_options() {
  static const std::vector<OptionDesc> kCommon = {
      {"model", "M", "model name (mlp|simple_cnn|tiny_resnet|tiny_deit)"},
      {"cache", "DIR", "trained-weight cache directory"},
      {"epochs", "N", "training epochs when the cache is cold"},
      {"samples", "N", "evaluation samples"},
  };
  return kCommon;
}

const std::vector<OptionDesc>& global_options() {
  static const std::vector<OptionDesc> kGlobal = {
      {"trace", "FILE", "write a Chrome trace_event JSON timeline"},
      {"report", "FILE", "write a JSONL structured run report"},
      {"metrics-port", "N", "serve Prometheus /metrics on 127.0.0.1:N "
                            "(0 = ephemeral port, printed to stderr)"},
      {"log-level", "N", "stderr verbosity: 0 silent, 1 progress, 2 debug"},
      {"threads", "N", "worker threads (overrides GE_NUM_THREADS)"},
  };
  return kGlobal;
}

const std::vector<CommandDesc>& command_table() {
  static const std::vector<CommandDesc> kCommands = {
      {"accuracy",
       "baseline vs format-emulated accuracy",
       {{"format", "F", "format spec or 'native'"}},
       true},
      {"campaign",
       "per-layer fault-injection campaign",
       {{"format", "F", "format spec (see 'formats')"},
        {"site", "S", "injection site: value|weight|metadata"},
        {"error-model", "E", "flip|sa0|sa1|ber|burst"},
        {"inject-scope", "S", "layer (classic single-element) | channel | "
                              "row: hit a whole activation channel/row"},
        {"ber", "X", "bit error rate in (0,1]: required for --error-model "
                     "ber, optional thinning for channel/row scopes"},
        {"burst-len", "N", "contiguous bits flipped by --error-model burst "
                           "(default 2)"},
        {"injections", "N", "injections per layer"},
        {"seed", "S", "campaign RNG seed"},
        {"checkpoint", "FILE", "progress .gec file (written atomically)"},
        {"checkpoint-every", "N", "checkpoint after every N trials (N >= 1)"},
        {"resume", "FILE", "continue from a progress .gec file"},
        {"shards", "N", "partition the trial space into N shards"},
        {"shard-index", "I", "which shard this process runs (0-based)"},
        {"abort-after", "N", "stop after N trials (fault-tolerance drill)"},
        {"prefix-cache", "on|off", "golden-prefix suffix-replay cache "
                                   "(default on; bitwise-identical results)"},
        {"sites-per-trial", "K", "faults per trial: 1 classic, >1 adds "
                                 "companion faults at later layers"}},
       true},
      {"train",
       "train (or load) a model; save/restore .gec checkpoints",
       {{"save", "FILE", "write the weights to a .gec model checkpoint"},
        {"load", "FILE", "load weights from a .gec instead of training"}},
       true},
      {"merge",
       "fold sharded campaign .gec files into one result",
       {{"inputs", "A,B,..", "comma-separated campaign .gec files"},
        {"output", "FILE", "write the merged progress as a .gec file"}},
       false},
      {"report",
       "render analytics tables from JSONL run reports",
       {{"inputs", "A,B,..", "comma-separated --report JSONL files "
                             "(shards of one campaign merge)"}},
       false},
      {"dse",
       "binary-tree design-space exploration",
       {{"family", "F", "format family: fp|fxp|int|bfp|afp|posit"},
        {"threshold", "X", "allowed accuracy drop vs baseline"}},
       true},
      {"profile",
       "self-profile an emulated forward pass (span attribution)",
       {{"format", "F", "format spec or 'native' (default native)"},
        {"iterations", "N", "timed forward passes (default 8)"},
        {"flame", "FILE", "write flamegraph collapsed stacks"},
        {"perf", "on|off", "hardware counters via perf_event_open "
                           "(default on; degrades gracefully)"}},
       true},
      {"serve",
       "multi-tenant campaign daemon (submit/worker clients connect)",
       {{"port", "N", "bind 127.0.0.1:N (0 = ephemeral, printed to stderr)"},
        {"cache", "DIR", "trained-weight cache directory"},
        {"checkpoint-dir", "DIR", "where drained campaigns checkpoint "
                                  "(campaign_<id>.gec)"},
        {"chunk", "N", "trials per worker lease (0 = auto: total/8)"},
        {"lease-timeout", "MS", "reclaim a lease not heartbeat within MS"},
        {"drain-timeout", "MS", "on SIGINT/SIGTERM checkpoint the active "
                                "campaign after MS (0 = drain fully)"},
        {"max-campaigns", "N", "exit after N campaigns (tests; 0 = forever)"},
        {"straggler-fraction", "X", "flag live leases below X x the fleet "
                                    "median throughput (0 = off; default 0.5)"}},
       false},
      {"submit",
       "send a campaign to a serve daemon; stream rows, print the digest",
       {{"host", "H", "server address (default 127.0.0.1)"},
        {"port", "N", "server port (required)"},
        {"model", "M", "model name (mlp|simple_cnn|tiny_resnet|tiny_deit)"},
        {"epochs", "N", "training epochs the server uses on a cold cache"},
        {"samples", "N", "evaluation samples"},
        {"format", "F", "format spec (see 'formats')"},
        {"site", "S", "injection site: value|weight|metadata"},
        {"error-model", "E", "flip|sa0|sa1|ber|burst"},
        {"inject-scope", "S", "layer | channel | row"},
        {"ber", "X", "bit error rate (as for 'campaign')"},
        {"burst-len", "N", "contiguous bits for --error-model burst"},
        {"injections", "N", "injections per layer"},
        {"seed", "S", "campaign RNG seed"},
        {"prefix-cache", "on|off", "golden-prefix suffix-replay cache"},
        {"sites-per-trial", "K", "faults per trial"}},
       false},
      {"worker",
       "lease trial ranges from a serve daemon and execute them",
       {{"host", "H", "server address (default 127.0.0.1)"},
        {"port", "N", "server port (required)"},
        {"cache", "DIR", "trained-weight cache directory"},
        {"max-leases", "N", "exit 0 after N leases (0 = keep going)"},
        {"idle-timeout", "MS", "exit 0 after MS with no work (0 = wait)"},
        {"poll", "MS", "idle poll interval (default 200)"},
        {"drop-leases", "N", "fault drill: accept N grants, run none, "
                             "drop the connection"},
        {"stall-leases", "N", "fault drill: accept N grants, run none, "
                              "hang without heartbeating until shutdown"}},
       false},
      {"trace",
       "merge per-process --trace files into one cross-process timeline",
       {{"merge", "A,B,..", "comma-separated --trace JSON files (any order)"},
        {"out", "FILE", "write the merged Chrome trace_event JSON"},
        {"flame", "FILE", "write merged flamegraph collapsed stacks"}},
       false},
      {"range",
       "Table-I dynamic range of one format",
       {{"format", "F", "format spec"}},
       false},
      {"features", "Table-II feature matrix", {}, false},
      {"formats", "format spec grammar and aliases", {}, false},
  };
  return kCommands;
}

const CommandDesc* find_command(const std::string& name) {
  for (const auto& c : command_table()) {
    if (name == c.name) return &c;
  }
  return nullptr;
}

void render_option(std::ostream& err, const OptionDesc& o) {
  std::string flag = "--" + std::string(o.flag) + " " + o.value;
  err << "    " << std::left << std::setw(22) << flag << o.help << "\n";
}

int usage(std::ostream& err) {
  err << "usage: goldeneye <command> [--key value ...]\n";
  for (const auto& c : command_table()) {
    err << "  " << std::left << std::setw(10) << c.name << c.summary << "\n";
    for (const auto& o : c.options) render_option(err, o);
  }
  err << "common (model commands):\n";
  for (const auto& o : common_options()) render_option(err, o);
  err << "telemetry (all commands; GE_TRACE/GE_REPORT env fallbacks):\n";
  for (const auto& o : global_options()) render_option(err, o);
  return 2;
}

/// Reject options the command table does not list — the same table that
/// renders usage(), so an undocumented option cannot exist.
void validate_options(const CommandDesc& cmd, const ParsedArgs& p) {
  auto known = [&](const std::string& key) {
    for (const auto& o : cmd.options) {
      if (key == o.flag) return true;
    }
    if (cmd.model_command) {
      for (const auto& o : common_options()) {
        if (key == o.flag) return true;
      }
    }
    for (const auto& o : global_options()) {
      if (key == o.flag) return true;
    }
    return false;
  };
  for (const auto& [key, value] : p.options) {
    if (!known(key)) {
      throw UsageError("unknown option '--" + key + "' (see usage)");
    }
  }
}

std::string env_or(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? v : fallback;
}

/// "A,B,C" -> {"A","B","C"}; empty segments are dropped.
std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  for (size_t pos = 0; pos <= s.size();) {
    const size_t comma = std::min(s.find(',', pos), s.size());
    if (comma > pos) out.push_back(s.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

models::TrainedModel prepare_model(const ParsedArgs& p,
                                   const data::SyntheticVision& data) {
  models::TrainConfig tc;
  tc.epochs = get_int(p, "epochs", 6);
  return models::ensure_trained(get(p, "model", "simple_cnn"), data,
                                get(p, "cache", "/tmp/goldeneye_model_cache"),
                                tc);
}

/// Standard first report row: what ran, with what inputs, on how many
/// threads — enough to reproduce the run.
void write_run_header(obs::RunLog* log, const ParsedArgs& p,
                      const std::string& format_or_family, int64_t samples,
                      bool resumed = false) {
  if (log == nullptr) return;
  obs::JsonObject row;
  row.str("command", p.command)
      .str("model", get(p, "model", "simple_cnn"))
      .str("format", format_or_family)
      .num("seed", get_int(p, "seed", 1234))
      .num("threads", static_cast<int64_t>(parallel::num_threads()))
      .num("samples", samples);
  // Only resumed runs carry the marker, so pre-v2 report consumers (and
  // fresh-run byte layouts) are unchanged.
  if (resumed) row.boolean("resumed", true);
  log->event("run_header", row);
}

int cmd_accuracy(const ParsedArgs& p, std::ostream& out, std::ostream& err,
                 obs::RunLog* log) {
  const std::string spec = get(p, "format", "");
  if (spec != "native" && !fmt::is_valid_spec(spec)) {
    err << "accuracy: bad or missing --format '" << spec << "'\n";
    return 2;
  }
  const int64_t samples = get_int(p, "samples", 256);
  write_run_header(log, p, spec, samples);
  data::SyntheticVision data{data::SyntheticVisionConfig{}};
  auto tm = prepare_model(p, data);
  GoldenEye eye(*tm.model, data);
  const float baseline = eye.baseline_accuracy(samples);
  const float accuracy = eye.format_accuracy(spec, samples);
  out << "model:    " << get(p, "model", "simple_cnn") << "\n"
      << "baseline: " << baseline << "\n"
      << "format:   " << spec << "\n"
      << "accuracy: " << accuracy << "\n";
  if (log != nullptr) {
    obs::JsonObject row;
    row.str("format", spec)
        .num("baseline", static_cast<double>(baseline))
        .num("accuracy", static_cast<double>(accuracy))
        .num("samples", samples);
    log->event("accuracy_result", row);
  }
  return 0;
}

int cmd_campaign(const ParsedArgs& p, std::ostream& out, std::ostream& err,
                 obs::RunLog* log) {
  CampaignConfig cfg;
  cfg.format_spec = get(p, "format", "");
  if (!fmt::is_valid_spec(cfg.format_spec)) {
    err << "campaign: bad or missing --format\n";
    return 2;
  }
  const std::string site = get(p, "site", "value");
  if (site == "value") {
    cfg.site = InjectionSite::kActivationValue;
  } else if (site == "weight") {
    cfg.site = InjectionSite::kWeightValue;
  } else if (site == "metadata") {
    cfg.site = InjectionSite::kMetadata;
  } else {
    err << "campaign: unknown --site '" << site << "'\n";
    return 2;
  }
  const std::string em = get(p, "error-model", "flip");
  if (em == "flip") {
    cfg.model = ErrorModel::kBitFlip;
  } else if (em == "sa0") {
    cfg.model = ErrorModel::kStuckAt0;
  } else if (em == "sa1") {
    cfg.model = ErrorModel::kStuckAt1;
  } else if (em == "ber") {
    cfg.model = ErrorModel::kBerUniform;
  } else if (em == "burst") {
    cfg.model = ErrorModel::kBurst;
  } else {
    err << "campaign: unknown --error-model '" << em << "'\n";
    return 2;
  }
  // Spatial scopes are error models of their own: a channel/row fault
  // perturbs the same bits in every element of one region. They own the
  // error-model slot, so only the default 'flip' may be combined.
  const std::string scope = get(p, "inject-scope", "layer");
  std::string em_label = em;
  if (scope == "channel" || scope == "row") {
    if (em != "flip") {
      throw UsageError("--inject-scope " + scope +
                       " selects its own error model; drop --error-model");
    }
    cfg.model = scope == "channel" ? ErrorModel::kChannel
                                   : ErrorModel::kRowBurst;
    em_label = to_string(cfg.model);
  } else if (scope != "layer") {
    err << "campaign: unknown --inject-scope '" << scope << "'\n";
    return 2;
  }
  cfg.ber = get_num(p, "ber", 0.0);
  cfg.burst_len = static_cast<int>(get_int(p, "burst-len", 2));
  if (cfg.model == ErrorModel::kBerUniform) {
    if (!(cfg.ber > 0.0 && cfg.ber <= 1.0)) {
      throw UsageError("--error-model ber requires --ber in (0, 1]");
    }
  } else if (cfg.model == ErrorModel::kChannel ||
             cfg.model == ErrorModel::kRowBurst) {
    if (cfg.ber < 0.0 || cfg.ber > 1.0) {
      throw UsageError("--ber must be in [0, 1]");
    }
  } else if (p.options.count("ber") != 0) {
    throw UsageError("--ber applies only to --error-model ber or "
                     "--inject-scope channel|row");
  }
  if (p.options.count("burst-len") != 0 &&
      cfg.model != ErrorModel::kBurst) {
    throw UsageError("--burst-len applies only to --error-model burst");
  }
  if (cfg.burst_len < 1) {
    throw UsageError("--burst-len must be >= 1");
  }
  if (is_zoo_model(cfg.model) &&
      cfg.site != InjectionSite::kActivationValue) {
    throw UsageError("error model '" + em_label +
                     "' requires --site value (activations only)");
  }
  cfg.injections_per_layer = get_int(p, "injections", 50);
  cfg.seed = static_cast<uint64_t>(get_int(p, "seed", 1234));
  const std::string prefix_cache = get(p, "prefix-cache", "on");
  if (prefix_cache == "on") {
    cfg.use_prefix_cache = true;
  } else if (prefix_cache == "off") {
    cfg.use_prefix_cache = false;
  } else {
    throw UsageError("--prefix-cache must be 'on' or 'off'");
  }
  cfg.sites_per_trial = static_cast<int>(get_int(p, "sites-per-trial", 1));
  if (cfg.sites_per_trial < 1) {
    throw UsageError("--sites-per-trial must be >= 1");
  }
  const int64_t samples = get_int(p, "samples", 16);

  // Persistence / sharding options (DESIGN.md §9). All misuse is a
  // UsageError so scripts can rely on exit 2 for their own mistakes.
  CampaignRunOptions ropts;
  ropts.shards = static_cast<int>(get_int(p, "shards", 1));
  ropts.shard_index = static_cast<int>(get_int(p, "shard-index", 0));
  if (ropts.shards < 1) {
    throw UsageError("--shards must be >= 1");
  }
  if (ropts.shard_index < 0 || ropts.shard_index >= ropts.shards) {
    throw UsageError("--shard-index must be in [0, --shards)");
  }
  ropts.checkpoint_path = get(p, "checkpoint", "");
  if (p.options.count("checkpoint-every") != 0) {
    ropts.checkpoint_every = get_int(p, "checkpoint-every", 0);
    if (ropts.checkpoint_every < 1) {
      throw UsageError("--checkpoint-every must be >= 1");
    }
    if (ropts.checkpoint_path.empty()) {
      throw UsageError("--checkpoint-every requires --checkpoint FILE");
    }
  }
  ropts.abort_after = get_int(p, "abort-after", 0);
  if (ropts.abort_after < 0) {
    throw UsageError("--abort-after must be >= 0");
  }
  if (ropts.abort_after > 0 && ropts.checkpoint_path.empty()) {
    throw UsageError("--abort-after requires --checkpoint FILE");
  }
  if (ropts.shards > 1 && ropts.checkpoint_path.empty()) {
    throw UsageError(
        "--shards > 1 requires --checkpoint FILE (shard results are "
        "merged from their .gec files)");
  }
  write_run_header(log, p, cfg.format_spec, samples,
                   p.options.count("resume") != 0);

  data::SyntheticVision data{data::SyntheticVisionConfig{}};
  auto tm = prepare_model(p, data);
  const auto batch = data::take(data.test(), 0, samples);
  // Replica factory lets trials fan out across pool workers; weights are
  // copied from the trained primary, so the init seed here is irrelevant.
  const std::string model_name = get(p, "model", "simple_cnn");
  cfg.make_replica = [model_name]() {
    return models::make_model(model_name, data::SyntheticVisionConfig{}, 0);
  };
  ropts.model_name = model_name;
  ropts.eval_samples = samples;
  ropts.run_log = log;  // per-trial "trial" + "heartbeat" records
  // Loading the resume file can throw io::IoError (missing, corrupt,
  // wrong campaign) — run_cli maps that to exit 2.
  std::optional<CampaignProgress> resumed;
  const std::string resume_path = get(p, "resume", "");
  if (!resume_path.empty()) {
    resumed = io::load_campaign_progress(resume_path);
    ropts.resume_from = &*resumed;
  }

  const CampaignProgress prog = run_campaign_trials(*tm.model, batch, cfg, ropts);
  if (!ropts.checkpoint_path.empty()) {
    io::save_campaign_progress(ropts.checkpoint_path, prog);
  }
  if (!prog.complete()) {
    // A shard (or an aborted drill): no statistics yet — they only exist
    // once every shard's trials are merged.
    out << "campaign progress: " << prog.completed_trials() << "/"
        << prog.total_trials() << " trials";
    if (ropts.shards > 1) {
      out << " (shard " << ropts.shard_index << " of " << ropts.shards << ")";
    }
    out << "\n";
    out << "progress saved: " << ropts.checkpoint_path << "\n";
    if (log != nullptr) {
      obs::JsonObject row;
      row.str("format", cfg.format_spec)
          .num("completed_trials", prog.completed_trials())
          .num("total_trials", prog.total_trials())
          .num("shards", static_cast<int64_t>(ropts.shards))
          .num("shard_index", static_cast<int64_t>(ropts.shard_index));
      log->event("campaign_progress", row);
    }
    return 0;
  }
  const auto r = finalize_campaign(prog);
  out << "campaign: " << cfg.format_spec << " site=" << site
      << " error-model=" << em_label << " injections/layer="
      << cfg.injections_per_layer << "\n";
  out << "clean emulated accuracy: " << r.golden_accuracy << "\n";
  out << std::left << std::setw(28) << "layer" << std::right << std::setw(12)
      << "mean dLoss" << std::setw(10) << "SDC" << "\n";
  for (const auto& l : r.layers) {
    out << std::left << std::setw(28) << l.layer << std::right
        << std::setw(12) << std::fixed << std::setprecision(5)
        << l.mean_delta_loss << std::setw(9) << l.sdc_count << "/"
        << l.injections << "\n";
    if (log != nullptr) {
      obs::JsonObject row;
      row.str("layer", l.layer)
          .num("injections", l.injections)
          .num("sdc", l.sdc_count)
          .num("mean_delta_loss", l.mean_delta_loss)
          .num("max_delta_loss", l.max_delta_loss)
          .num("ci95_delta_loss", l.ci95_delta_loss)
          .num("mean_mismatch_rate", l.mean_mismatch_rate);
      log->event("campaign_layer", row);
    }
  }
  out << "network mean dLoss: " << r.network_mean_delta_loss() << "\n";
  out << "campaign digest: 0x" << std::hex << campaign_digest(r) << std::dec
      << "\n";
  if (log != nullptr) {
    obs::JsonObject row;
    row.str("format", cfg.format_spec)
        .str("site", site)
        .str("error_model", em_label)
        .num("golden_accuracy", static_cast<double>(r.golden_accuracy))
        .num("network_mean_delta_loss", r.network_mean_delta_loss());
    log->event("campaign_summary", row);
  }
  return 0;
}

/// FNV-1a over raw logit bytes: the cross-process witness that a loaded
/// model evaluates bitwise-identically to the one that was saved.
uint64_t eval_digest(const Tensor& logits) {
  return fnv1a(kFnv1aBasis, logits.data(),
               static_cast<size_t>(logits.numel()) * sizeof(float));
}

int cmd_train(const ParsedArgs& p, std::ostream& out, std::ostream& err,
              obs::RunLog* log) {
  const std::string save_path = get(p, "save", "");
  const std::string load_path = get(p, "load", "");
  const int64_t samples = get_int(p, "samples", 256);
  std::string model_name = get(p, "model", "simple_cnn");
  write_run_header(log, p, "native", samples);
  data::SyntheticVision data{data::SyntheticVisionConfig{}};

  std::unique_ptr<nn::Module> model;
  if (!load_path.empty()) {
    // The checkpoint names its own architecture; an explicit --model must
    // agree (load_model would reject the graft anyway, but say it plainly).
    const io::ModelMeta meta = io::read_model_meta(load_path);
    if (p.options.count("model") != 0 && model_name != meta.model_name) {
      err << "train: checkpoint '" << load_path << "' holds a '"
          << meta.model_name << "', not a '" << model_name << "'\n";
      return 2;
    }
    model_name = meta.model_name;
    model = models::make_model(model_name, data::SyntheticVisionConfig{}, 0);
    io::load_model(load_path, *model);
    out << "loaded: " << load_path << " (" << model_name << ", "
        << meta.parameter_count << " parameters)\n";
  } else {
    models::TrainConfig tc;
    tc.epochs = get_int(p, "epochs", 6);
    auto tm = models::ensure_trained(
        model_name, data, get(p, "cache", "/tmp/goldeneye_model_cache"), tc);
    model = std::move(tm.model);
    out << "trained: " << model_name << " (test accuracy "
        << tm.test_accuracy << ")\n";
  }

  model->eval();
  const auto batch = data::take(data.test(), 0, samples);
  const Tensor logits = (*model)(batch.images);
  const float acc = nn::accuracy(logits, batch.labels);
  const uint64_t digest = eval_digest(logits);
  out << "eval accuracy: " << acc << "\n";
  out << "eval digest: 0x" << std::hex << digest << std::dec << "\n";
  if (!save_path.empty()) {
    io::save_model(save_path, *model, model_name);
    out << "saved: " << save_path << "\n";
  }
  if (log != nullptr) {
    obs::JsonObject row;
    row.str("model", model_name)
        .num("eval_accuracy", static_cast<double>(acc))
        .num("samples", samples)
        .boolean("loaded", !load_path.empty())
        .boolean("saved", !save_path.empty());
    log->event("train_result", row);
  }
  return 0;
}

int cmd_merge(const ParsedArgs& p, std::ostream& out, std::ostream& err,
              obs::RunLog* log) {
  const std::string inputs = get(p, "inputs", "");
  if (inputs.empty()) {
    throw UsageError("--inputs A.gec,B.gec,... is required");
  }
  const std::vector<std::string> paths = split_csv(inputs);
  if (paths.empty()) {
    throw UsageError("--inputs names no files");
  }
  std::vector<CampaignProgress> parts;
  parts.reserve(paths.size());
  for (const std::string& path : paths) {
    parts.push_back(io::load_campaign_progress(path));
  }
  const CampaignProgress merged = merge_campaign_progress(parts);
  const std::string output = get(p, "output", "");
  if (!output.empty()) {
    io::save_campaign_progress(output, merged);
    out << "merged " << parts.size() << " file(s) -> " << output << "\n";
  }
  if (!merged.complete()) {
    err << "merge: merged progress is incomplete ("
        << merged.completed_trials() << "/" << merged.total_trials()
        << " trials; a shard file is missing)\n";
    // Written --output (if any) is still a valid partial state others can
    // resume or re-merge; the missing statistics make this a failure.
    return output.empty() ? 2 : 0;
  }
  const CampaignResult r = finalize_campaign(merged);
  out << "campaign: " << merged.format_spec
      << " injections/layer=" << merged.injections_per_layer << "\n";
  out << "clean emulated accuracy: " << r.golden_accuracy << "\n";
  out << "network mean dLoss: " << r.network_mean_delta_loss() << "\n";
  out << "campaign digest: 0x" << std::hex << campaign_digest(r) << std::dec
      << "\n";
  if (log != nullptr) {
    obs::JsonObject row;
    row.str("format", merged.format_spec)
        .num("inputs", static_cast<int64_t>(parts.size()))
        .num("golden_accuracy", static_cast<double>(r.golden_accuracy))
        .num("network_mean_delta_loss", r.network_mean_delta_loss());
    log->event("merge_summary", row);
  }
  return 0;
}

int cmd_report(const ParsedArgs& p, std::ostream& out, std::ostream& err) {
  const std::string inputs = get(p, "inputs", "");
  if (inputs.empty()) {
    throw UsageError("--inputs A.jsonl,B.jsonl,... is required");
  }
  const std::vector<std::string> paths = split_csv(inputs);
  if (paths.empty()) {
    throw UsageError("--inputs names no files");
  }
  // Unreadable files / mismatched headers are io::IoError — bad input,
  // exit 2 via run_cli, same class as a bad .gec file. A log with zero
  // trial rows renders an explicit "no trials" note and exits 0.
  render_campaign_report(paths, out, err);
  return 0;
}

int cmd_dse(const ParsedArgs& p, std::ostream& out, std::ostream& err,
            obs::RunLog* log) {
  DseConfig cfg;
  cfg.family = get(p, "family", "fp");
  cfg.accuracy_drop_threshold =
      static_cast<float>(get_num(p, "threshold", 0.01));
  const int64_t samples = get_int(p, "samples", 256);
  write_run_header(log, p, cfg.family, samples);
  data::SyntheticVision data{data::SyntheticVisionConfig{}};
  auto tm = prepare_model(p, data);
  const auto batch = data::take(data.test(), 0, samples);
  DseResult r;
  try {
    r = run_dse(*tm.model, batch, cfg);
  } catch (const std::invalid_argument& e) {
    err << "dse: " << e.what() << "\n";
    return 2;
  }
  out << "baseline accuracy: " << r.baseline_accuracy << "\n";
  for (const auto& n : r.nodes) {
    out << "node " << n.id << " " << n.spec << " acc=" << n.accuracy << " "
        << (n.pass ? "PASS" : "fail") << "\n";
    if (log != nullptr) {
      obs::JsonObject row;
      row.num("id", static_cast<int64_t>(n.id))
          .str("spec", n.spec)
          .num("bitwidth", static_cast<int64_t>(n.bitwidth))
          .str("phase", n.phase)
          .num("accuracy", static_cast<double>(n.accuracy))
          .boolean("pass", n.pass);
      log->event("dse_node", row);
    }
  }
  if (r.best_spec.empty()) {
    out << "no configuration met the threshold\n";
  } else {
    out << "selected: " << r.best_spec << " (" << r.best_bitwidth
        << " bits, acc " << r.best_accuracy << ")\n";
  }
  if (log != nullptr) {
    obs::JsonObject row;
    row.str("family", cfg.family)
        .num("baseline_accuracy", static_cast<double>(r.baseline_accuracy))
        .str("best_spec", r.best_spec)
        .num("best_bitwidth", static_cast<int64_t>(r.best_bitwidth))
        .num("best_accuracy", static_cast<double>(r.best_accuracy))
        .num("nodes", static_cast<int64_t>(r.nodes.size()));
    log->event("dse_summary", row);
  }
  return 0;
}

/// Human-readable byte count for the watermark section.
std::string fmt_bytes(uint64_t b) {
  char buf[64];
  if (b >= 1024ull * 1024ull) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB",
                  static_cast<double>(b) / (1024.0 * 1024.0));
  } else if (b >= 1024ull) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB", static_cast<double>(b) / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(b));
  }
  return buf;
}

int cmd_profile(const ParsedArgs& p, std::ostream& out, std::ostream& err,
                obs::RunLog* log) {
  const std::string spec = get(p, "format", "native");
  if (spec != "native" && !fmt::is_valid_spec(spec)) {
    err << "profile: bad --format '" << spec << "'\n";
    return 2;
  }
  const int64_t iterations = get_int(p, "iterations", 8);
  if (iterations < 1) {
    throw UsageError("--iterations must be >= 1");
  }
  const std::string perf_opt = get(p, "perf", "on");
  if (perf_opt != "on" && perf_opt != "off") {
    throw UsageError("--perf must be 'on' or 'off'");
  }
  // Restore the process-wide default on exit: other commands profile too
  // (whenever metrics are on), and must not inherit a stale opt-out.
  struct PerfToggle {
    explicit PerfToggle(bool on) { obs::perf::set_enabled(on); }
    ~PerfToggle() { obs::perf::set_enabled(true); }
  } perf_toggle(perf_opt == "on");
  const int64_t samples = get_int(p, "samples", 64);
  write_run_header(log, p, spec, samples);

  data::SyntheticVision data{data::SyntheticVisionConfig{}};
  auto tm = prepare_model(p, data);
  tm.model->eval();
  const auto batch = data::take(data.test(), 0, samples);

  std::optional<Emulator> emu;
  if (spec != "native") {
    EmulatorConfig cfg;
    cfg.format_spec = spec;
    emu.emplace(*tm.model, cfg);
  }

  // Warmup pass: trains the arena freelists and faults pages in so the
  // timed loop measures steady state; the reset below discards its spans
  // (and the model-preparation ones) from the attribution.
  (void)(*tm.model)(batch.images);
  obs::reset_all();
  arena::reset_peak_live_bytes();

  const auto t0 = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < iterations; ++i) {
    obs::AttrScope attr(spec, "");
    obs::Span span("profile", "forward");
    (void)(*tm.model)(batch.images);
  }
  const double wall_ns = std::chrono::duration<double, std::nano>(
                             std::chrono::steady_clock::now() - t0)
                             .count();

  const std::vector<obs::SpanStats> stats = obs::profile_snapshot();
  // The root "profile/forward" span brackets each iteration's work on the
  // calling thread, so its total over the loop is the wall time the
  // profiler can attribute; everything beneath partitions it as self time.
  uint64_t root_total_ns = 0;
  uint64_t sum_self_ns = 0;
  for (const auto& s : stats) {
    sum_self_ns += s.self_ns;
    if (s.category == "profile" && s.name == "forward") {
      root_total_ns += s.total_ns;
    }
  }
  const double attributed_pct =
      wall_ns > 0.0 ? 100.0 * static_cast<double>(root_total_ns) / wall_ns
                    : 0.0;

  char buf[256];
  out << "profile: " << get(p, "model", "simple_cnn") << " format=" << spec
      << " iterations=" << iterations << " samples=" << samples
      << " threads=" << parallel::num_threads() << "\n";
  std::snprintf(buf, sizeof(buf),
                "wall: %.3f ms (%.3f ms/iteration)\n"
                "attributed: %.3f ms in root spans (%.1f%% of wall)\n\n",
                wall_ns * 1e-6,
                wall_ns * 1e-6 / static_cast<double>(iterations),
                static_cast<double>(root_total_ns) * 1e-6, attributed_pct);
  out << buf;

  out << "span attribution (self time, all threads)\n";
  std::snprintf(buf, sizeof(buf), "%-9s %-22s %-14s %-14s %7s %10s %6s %10s %9s %9s\n",
                "category", "span", "format", "layer", "count", "self ms",
                "self%", "total ms", "p50 us", "p99 us");
  out << buf;
  for (const auto& s : stats) {
    const double self_pct =
        sum_self_ns > 0 ? 100.0 * static_cast<double>(s.self_ns) /
                              static_cast<double>(sum_self_ns)
                        : 0.0;
    std::snprintf(buf, sizeof(buf),
                  "%-9s %-22s %-14s %-14s %7llu %10.3f %5.1f%% %10.3f %9.1f %9.1f\n",
                  s.category.c_str(), s.name.c_str(), s.format.c_str(),
                  s.layer.c_str(), static_cast<unsigned long long>(s.count),
                  static_cast<double>(s.self_ns) * 1e-6, self_pct,
                  static_cast<double>(s.total_ns) * 1e-6, s.p50_us, s.p99_us);
    out << buf;
  }
  out << "\n";

  out << "hardware counters (perf_event_open): "
      << obs::perf::availability_note() << "\n";
  if (obs::perf::available()) {
    std::snprintf(buf, sizeof(buf), "%-9s %-22s %8s %14s %14s %6s %12s\n",
                  "category", "span", "samples", "cycles", "instructions",
                  "IPC", "cache-miss");
    out << buf;
    for (const auto& s : stats) {
      if (s.perf_samples == 0) continue;
      const double ipc = s.cycles > 0 ? static_cast<double>(s.instructions) /
                                            static_cast<double>(s.cycles)
                                      : 0.0;
      std::snprintf(buf, sizeof(buf),
                    "%-9s %-22s %8llu %14llu %14llu %6.2f %12llu\n",
                    s.category.c_str(), s.name.c_str(),
                    static_cast<unsigned long long>(s.perf_samples),
                    static_cast<unsigned long long>(s.cycles),
                    static_cast<unsigned long long>(s.instructions), ipc,
                    static_cast<unsigned long long>(s.cache_misses));
      out << buf;
    }
  }
  out << "\n";

  const obs::MemoryWatermarks mem = obs::sample_memory();
  out << "memory watermarks\n"
      << "  rss:          " << fmt_bytes(mem.rss_bytes)
      << "  (peak " << fmt_bytes(mem.peak_rss_bytes) << ")\n"
      << "  arena live:   " << fmt_bytes(mem.arena_live_bytes)
      << "  (peak " << fmt_bytes(mem.arena_peak_bytes) << ")\n"
      << "  cow copies:   " << fmt_bytes(mem.cow_bytes) << "\n"
      << "  prefix cache: " << fmt_bytes(mem.prefix_cache_bytes) << "\n";

  const std::string flame_path = get(p, "flame", "");
  if (!flame_path.empty()) {
    // run_cli turned tracing on for --flame, so the timed loop's spans are
    // in the trace buffers; fold them into collapsed stacks.
    std::ofstream f(flame_path, std::ios::trunc);
    if (f) f << obs::collapsed_stacks(obs::collect_trace());
    if (!f) {
      err << "profile: cannot write --flame file '" << flame_path << "'\n";
      return 1;
    }
    out << "flamegraph stacks: " << flame_path
        << " (flamegraph.pl or speedscope)\n";
  }

  if (log != nullptr) {
    obs::JsonObject row;
    row.str("format", spec)
        .num("iterations", iterations)
        .num("samples", samples)
        .num("wall_ms", wall_ns * 1e-6)
        .num("attributed_pct", attributed_pct)
        .num("rss_bytes", mem.rss_bytes)
        .num("arena_peak_bytes", mem.arena_peak_bytes)
        .boolean("perf_available", obs::perf::available());
    log->event("profile_summary", row);
  }
  return 0;
}

int cmd_range(const ParsedArgs& p, std::ostream& out, std::ostream& err,
              obs::RunLog* log) {
  const std::string spec = get(p, "format", "");
  if (!fmt::is_valid_spec(spec)) {
    err << "range: bad or missing --format\n";
    return 2;
  }
  const auto row = dynamic_range_row(spec, spec);
  out << "format:  " << row.label << "\n"
      << "abs max: " << row.abs_max << "\n"
      << "abs min: " << row.abs_min << "\n"
      << "range:   " << row.range_db << " dB\n";
  if (log != nullptr) {
    obs::JsonObject jrow;
    jrow.str("format", spec)
        .num("abs_max", row.abs_max)
        .num("abs_min", row.abs_min)
        .num("range_db", row.range_db);
    log->event("range_row", jrow);
  }
  return 0;
}

int cmd_features(std::ostream& out) {
  for (const auto& f : table2_features()) {
    out << (f.goldeneye ? "[x] " : "[ ] ") << f.feature << "\n";
  }
  return 0;
}

int cmd_formats(std::ostream& out) {
  out << "spec grammar:\n"
         "  fp_e<E>m<M>[_nodn][_sat]   parameterised float\n"
         "  fxp_1_<I>_<F>              fixed point\n"
         "  int<N>                     symmetric integer quantisation\n"
         "  bfp_e<E>m<M>_b<B|tensor>   block floating point\n"
         "  afp_e<E>m<M>[_dn]          AdaptivFloat\n"
         "  posit_<N>_<ES>             posit\n"
         "aliases:";
  for (const auto& a : fmt::known_aliases()) out << " " << a;
  out << "\n";
  return 0;
}

// --- service layer (serve / submit / worker) -------------------------------

/// Validated TCP port. `required` distinguishes clients (must name their
/// server) from the daemon (0 = ephemeral is the test-friendly default).
int parse_port(const ParsedArgs& p, bool required) {
  if (required && p.options.count("port") == 0) {
    throw UsageError("--port is required (the serve daemon's port)");
  }
  const int64_t port = get_int(p, "port", 0);
  if (port < (required ? 1 : 0) || port > 65535) {
    throw UsageError("--port must be in [" +
                     std::string(required ? "1" : "0") + ", 65535]");
  }
  return static_cast<int>(port);
}

/// The submit command's half of cmd_campaign's option parsing: the same
/// flags, mapped onto the wire spec instead of a local CampaignConfig.
/// Validation here catches typos before a round-trip; the server's
/// prepare_campaign re-validates with the same rules (a lying client is
/// answered with kError, not trusted).
net::CampaignSpecMsg parse_campaign_spec(const ParsedArgs& p) {
  net::CampaignSpecMsg spec;
  spec.model_name = get(p, "model", "simple_cnn");
  spec.epochs = get_int(p, "epochs", 6);
  spec.samples = get_int(p, "samples", 16);
  spec.format_spec = get(p, "format", "");
  if (!fmt::is_valid_spec(spec.format_spec)) {
    throw UsageError("bad or missing --format");
  }
  const std::string site = get(p, "site", "value");
  InjectionSite site_e = InjectionSite::kActivationValue;
  if (site == "value") {
    site_e = InjectionSite::kActivationValue;
  } else if (site == "weight") {
    site_e = InjectionSite::kWeightValue;
  } else if (site == "metadata") {
    site_e = InjectionSite::kMetadata;
  } else {
    throw UsageError("unknown --site '" + site + "'");
  }
  const std::string em = get(p, "error-model", "flip");
  ErrorModel model_e = ErrorModel::kBitFlip;
  if (em == "flip") {
    model_e = ErrorModel::kBitFlip;
  } else if (em == "sa0") {
    model_e = ErrorModel::kStuckAt0;
  } else if (em == "sa1") {
    model_e = ErrorModel::kStuckAt1;
  } else if (em == "ber") {
    model_e = ErrorModel::kBerUniform;
  } else if (em == "burst") {
    model_e = ErrorModel::kBurst;
  } else {
    throw UsageError("unknown --error-model '" + em + "'");
  }
  const std::string scope = get(p, "inject-scope", "layer");
  if (scope == "channel" || scope == "row") {
    if (em != "flip") {
      throw UsageError("--inject-scope " + scope +
                       " selects its own error model; drop --error-model");
    }
    model_e = scope == "channel" ? ErrorModel::kChannel
                                 : ErrorModel::kRowBurst;
  } else if (scope != "layer") {
    throw UsageError("unknown --inject-scope '" + scope + "'");
  }
  spec.site = static_cast<uint8_t>(site_e);
  spec.error_model = static_cast<uint8_t>(model_e);
  spec.ber = get_num(p, "ber", 0.0);
  spec.burst_len = static_cast<int32_t>(get_int(p, "burst-len", 2));
  if (model_e == ErrorModel::kBerUniform &&
      !(spec.ber > 0.0 && spec.ber <= 1.0)) {
    throw UsageError("--error-model ber requires --ber in (0, 1]");
  }
  spec.injections_per_layer = get_int(p, "injections", 50);
  spec.seed = static_cast<uint64_t>(get_int(p, "seed", 1234));
  const std::string prefix_cache = get(p, "prefix-cache", "on");
  if (prefix_cache != "on" && prefix_cache != "off") {
    throw UsageError("--prefix-cache must be 'on' or 'off'");
  }
  spec.prefix_cache = prefix_cache == "on" ? 1 : 0;
  spec.sites_per_trial =
      static_cast<int32_t>(get_int(p, "sites-per-trial", 1));
  return spec;
}

int cmd_serve(const ParsedArgs& p, std::ostream& err, obs::RunLog* log) {
  net::ServeOptions so;
  so.port = parse_port(p, /*required=*/false);
  so.cache_dir = get(p, "cache", "/tmp/goldeneye_model_cache");
  so.checkpoint_dir = get(p, "checkpoint-dir", "/tmp");
  so.lease_chunk = get_int(p, "chunk", 0);
  if (so.lease_chunk < 0) {
    throw UsageError("--chunk must be >= 0 (0 = auto)");
  }
  so.lease_timeout_ms = static_cast<int>(get_int(p, "lease-timeout", 5000));
  if (so.lease_timeout_ms < 1) {
    throw UsageError("--lease-timeout must be >= 1 ms");
  }
  so.drain_timeout_ms = static_cast<int>(get_int(p, "drain-timeout", 0));
  if (so.drain_timeout_ms < 0) {
    throw UsageError("--drain-timeout must be >= 0 (0 = drain fully)");
  }
  so.max_campaigns = get_int(p, "max-campaigns", 0);
  if (so.max_campaigns < 0) {
    throw UsageError("--max-campaigns must be >= 0 (0 = forever)");
  }
  so.straggler_fraction = get_num(p, "straggler-fraction", 0.5);
  if (so.straggler_fraction > 1.0) {
    throw UsageError("--straggler-fraction must be <= 1 (a lease at the "
                     "median is not a straggler)");
  }
  return net::run_serve(so, log, err);
}

int cmd_submit(const ParsedArgs& p, std::ostream& out, std::ostream& err,
               obs::RunLog* log) {
  net::SubmitOptions so;
  so.host = get(p, "host", "127.0.0.1");
  so.port = parse_port(p, /*required=*/true);
  so.spec = parse_campaign_spec(p);
  write_run_header(log, p, so.spec.format_spec, so.spec.samples);
  return net::run_submit(so, log, out, err);
}

int cmd_worker(const ParsedArgs& p, std::ostream& out, std::ostream& err) {
  net::WorkerOptions wo;
  wo.host = get(p, "host", "127.0.0.1");
  wo.port = parse_port(p, /*required=*/true);
  wo.cache_dir = get(p, "cache", "/tmp/goldeneye_model_cache");
  wo.max_leases = get_int(p, "max-leases", 0);
  if (wo.max_leases < 0) {
    throw UsageError("--max-leases must be >= 0 (0 = keep going)");
  }
  wo.drop_leases = get_int(p, "drop-leases", 0);
  if (wo.drop_leases < 0) {
    throw UsageError("--drop-leases must be >= 0");
  }
  wo.stall_leases = get_int(p, "stall-leases", 0);
  if (wo.stall_leases < 0) {
    throw UsageError("--stall-leases must be >= 0");
  }
  wo.idle_timeout_ms = static_cast<int>(get_int(p, "idle-timeout", 0));
  if (wo.idle_timeout_ms < 0) {
    throw UsageError("--idle-timeout must be >= 0 (0 = wait forever)");
  }
  wo.poll_ms = static_cast<int>(get_int(p, "poll", 200));
  if (wo.poll_ms < 1) {
    throw UsageError("--poll must be >= 1 ms");
  }
  return net::run_worker(wo, out, err);
}

int cmd_trace(const ParsedArgs& p, std::ostream& out, std::ostream& err) {
  const std::string inputs = get(p, "merge", "");
  if (inputs.empty()) {
    throw UsageError("--merge A.json,B.json,... is required");
  }
  const std::vector<std::string> paths = split_csv(inputs);
  if (paths.empty()) {
    throw UsageError("--merge names no files");
  }
  TraceMergeResult r;
  try {
    r = merge_trace_files(paths);
  } catch (const std::runtime_error& e) {
    // Unreadable or non-trace inputs are bad *input*, same exit class as a
    // bad .gec file.
    err << e.what() << "\n";
    return 2;
  }
  out << "merged " << r.processes.size() << " process(es), " << r.event_count
      << " event(s), " << r.trace_count << " trace(s)\n";
  for (size_t i = 0; i < r.processes.size(); ++i) {
    out << "  pid " << i + 1 << "  " << r.processes[i].label << "  ("
        << r.processes[i].event_count << " events)\n";
  }
  out << r.attribution;
  const std::string out_path = get(p, "out", "");
  if (!out_path.empty()) {
    std::ofstream f(out_path, std::ios::trunc);
    if (f) f << r.chrome_json << '\n';
    if (!f) {
      err << "trace: cannot write --out file '" << out_path << "'\n";
      return 1;
    }
    out << "merged trace: " << out_path << "\n";
  }
  const std::string flame_path = get(p, "flame", "");
  if (!flame_path.empty()) {
    std::ofstream f(flame_path, std::ios::trunc);
    if (f) f << r.collapsed;
    if (!f) {
      err << "trace: cannot write --flame file '" << flame_path << "'\n";
      return 1;
    }
    out << "flamegraph stacks: " << flame_path << "\n";
  }
  return 0;
}

/// Restores the global log level when a CLI invocation ends (run_cli is
/// re-entrant in tests; telemetry flags get the same treatment from
/// obs::TelemetryScope).
struct LogLevelGuard {
  int saved = obs::log_level();
  ~LogLevelGuard() { obs::set_log_level(saved); }
};

/// Restores the pool worker count likewise: --threads is per-invocation
/// state, not a process-wide setting an embedding caller has to undo.
struct ThreadCountGuard {
  int saved = parallel::num_threads();
  ~ThreadCountGuard() { parallel::set_num_threads(saved); }
};

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  const auto parsed = parse(args);
  if (!parsed) return usage(err);
  const CommandDesc* cmd = find_command(parsed->command);
  if (cmd == nullptr) {
    err << "unknown command '" << parsed->command << "'\n";
    return usage(err);
  }
  try {
    validate_options(*cmd, *parsed);

    // Telemetry wiring: flags win, GE_TRACE/GE_REPORT env fall back, and
    // everything is restored on return so embedding callers (and tests)
    // see no global-state leakage.
    const std::string trace_path = get(*parsed, "trace", env_or("GE_TRACE", ""));
    const std::string report_path =
        get(*parsed, "report", env_or("GE_REPORT", ""));
    LogLevelGuard log_guard;
    obs::set_log_level(static_cast<int>(get_int(*parsed, "log-level", 0)));
    ThreadCountGuard thread_guard;
    if (parsed->options.count("threads") != 0) {
      const int64_t threads = get_int(*parsed, "threads", 0);
      if (threads < 1 || threads > 256) {
        throw UsageError("invalid value '" + parsed->options.at("threads") +
                         "' for --threads (expected an integer in [1, 256])");
      }
      parallel::set_num_threads(static_cast<int>(threads));
    }
    int64_t metrics_port = -1;
    if (parsed->options.count("metrics-port") != 0) {
      metrics_port = get_int(*parsed, "metrics-port", 0);
      if (metrics_port < 0 || metrics_port > 65535) {
        throw UsageError("--metrics-port must be in [0, 65535] (0 = "
                         "ephemeral)");
      }
    }
    // `profile` needs the trace buffers for its --flame export, and the
    // aggregator is on whenever metrics are: every --report run gets
    // span_stat rows, and /metrics grows the ge_span_* series for free.
    const bool profile_cmd = parsed->command == "profile";
    const bool flame = profile_cmd && parsed->options.count("flame") != 0;
    const bool tracing = !trace_path.empty() || flame;
    const bool metrics =
        tracing || !report_path.empty() || metrics_port >= 0 || profile_cmd;
    obs::TelemetryScope scope(tracing, metrics);
    obs::ProfilingScope pscope(metrics);
    if (metrics) obs::reset_all();
    // The trace file's metadata names this process by its command, so a
    // `trace --merge` of submit/serve/worker files labels each timeline row.
    if (tracing) obs::set_trace_process_label(parsed->command);

    // The /metrics endpoint lives for the whole invocation: it reads the
    // same counters/gauges/histograms the report snapshot does, so a
    // long campaign can be watched live with curl or Prometheus.
    std::unique_ptr<obs::MetricsServer> server;
    if (metrics_port >= 0) {
      server =
          std::make_unique<obs::MetricsServer>(static_cast<int>(metrics_port));
      if (!server->ok()) {
        err << parsed->command << ": cannot serve --metrics-port "
            << metrics_port << ": " << server->last_error() << "\n";
        return 2;
      }
      err << "[ge] metrics: http://127.0.0.1:" << server->port()
          << "/metrics\n";
    }

    std::unique_ptr<obs::RunLog> log;
    if (!report_path.empty()) {
      // A resumed campaign continues its report stream instead of
      // clobbering the rows the interrupted run already paid for.
      const bool append = parsed->command == "campaign" &&
                          parsed->options.count("resume") != 0;
      log = std::make_unique<obs::RunLog>(
          report_path, append ? obs::RunLog::OpenMode::kAppend
                              : obs::RunLog::OpenMode::kTruncate);
      if (!log->ok()) {
        err << parsed->command << ": cannot open --report file '"
            << report_path << "'\n";
        return 2;
      }
    }

    int code = 0;
    if (parsed->command == "accuracy") {
      code = cmd_accuracy(*parsed, out, err, log.get());
    } else if (parsed->command == "campaign") {
      code = cmd_campaign(*parsed, out, err, log.get());
    } else if (parsed->command == "train") {
      code = cmd_train(*parsed, out, err, log.get());
    } else if (parsed->command == "merge") {
      code = cmd_merge(*parsed, out, err, log.get());
    } else if (parsed->command == "report") {
      code = cmd_report(*parsed, out, err);
    } else if (parsed->command == "dse") {
      code = cmd_dse(*parsed, out, err, log.get());
    } else if (parsed->command == "profile") {
      code = cmd_profile(*parsed, out, err, log.get());
    } else if (parsed->command == "serve") {
      code = cmd_serve(*parsed, err, log.get());
    } else if (parsed->command == "submit") {
      code = cmd_submit(*parsed, out, err, log.get());
    } else if (parsed->command == "worker") {
      code = cmd_worker(*parsed, out, err);
    } else if (parsed->command == "trace") {
      code = cmd_trace(*parsed, out, err);
    } else if (parsed->command == "range") {
      code = cmd_range(*parsed, out, err, log.get());
    } else if (parsed->command == "features") {
      code = cmd_features(out);
    } else {
      code = cmd_formats(out);
    }

    if (code == 0 && log) log->metrics_snapshot();
    if (code == 0 && !trace_path.empty() &&
        !obs::write_chrome_trace(trace_path)) {
      err << parsed->command << ": cannot write --trace file '" << trace_path
          << "'\n";
      return 1;
    }
    return code;
  } catch (const UsageError& e) {
    err << parsed->command << ": " << e.what() << "\n";
    return 2;
  } catch (const io::IoError& e) {
    // Missing/corrupt/mismatched .gec files are bad *input*, same class
    // as a bad flag value — never an internal failure.
    err << parsed->command << ": " << e.what() << "\n";
    return 2;
  } catch (const net::NetError& e) {
    // An unreachable server or a protocol violation is likewise a
    // diagnosed environment error, not an internal crash.
    err << parsed->command << ": " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    err << parsed->command << ": " << e.what() << "\n";
    return 1;
  }
}

}  // namespace ge::core
