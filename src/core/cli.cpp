#include "core/cli.hpp"

#include <iomanip>
#include <map>
#include <optional>

#include "core/campaign.hpp"
#include "core/dse.hpp"
#include "core/goldeneye.hpp"
#include "data/dataloader.hpp"
#include "formats/format_registry.hpp"
#include "models/model_factory.hpp"

namespace ge::core {

namespace {

struct ParsedArgs {
  std::string command;
  std::map<std::string, std::string> options;
};

/// "--key value" pairs after the command word; returns nullopt on
/// malformed input (a --key without a value, or a stray positional).
std::optional<ParsedArgs> parse(const std::vector<std::string>& args) {
  if (args.empty()) return std::nullopt;
  ParsedArgs out;
  out.command = args[0];
  for (size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a.rfind("--", 0) != 0 || a.size() <= 2) return std::nullopt;
    if (i + 1 >= args.size()) return std::nullopt;
    out.options[a.substr(2)] = args[++i];
  }
  return out;
}

std::string get(const ParsedArgs& p, const std::string& key,
                const std::string& fallback) {
  const auto it = p.options.find(key);
  return it != p.options.end() ? it->second : fallback;
}

int usage(std::ostream& err) {
  err << "usage: goldeneye <command> [--key value ...]\n"
         "  accuracy  --model M --format F [--samples N]\n"
         "  campaign  --model M --format F [--site value|weight|metadata]\n"
         "            [--error-model flip|sa0|sa1] [--injections N]"
         " [--seed S]\n"
         "  dse       --model M --family fp|fxp|int|bfp|afp"
         " [--threshold X]\n"
         "  range     --format F\n"
         "  features\n"
         "  formats\n"
         "common: --cache DIR --epochs N --samples N\n";
  return 2;
}

models::TrainedModel prepare_model(const ParsedArgs& p,
                                   const data::SyntheticVision& data) {
  models::TrainConfig tc;
  tc.epochs = std::stoll(get(p, "epochs", "6"));
  return models::ensure_trained(get(p, "model", "simple_cnn"), data,
                                get(p, "cache", "/tmp/goldeneye_model_cache"),
                                tc);
}

int cmd_accuracy(const ParsedArgs& p, std::ostream& out, std::ostream& err) {
  const std::string spec = get(p, "format", "");
  if (spec != "native" && !fmt::is_valid_spec(spec)) {
    err << "accuracy: bad or missing --format '" << spec << "'\n";
    return 2;
  }
  data::SyntheticVision data{data::SyntheticVisionConfig{}};
  auto tm = prepare_model(p, data);
  GoldenEye eye(*tm.model, data);
  const int64_t samples = std::stoll(get(p, "samples", "256"));
  out << "model:    " << get(p, "model", "simple_cnn") << "\n"
      << "baseline: " << eye.baseline_accuracy(samples) << "\n"
      << "format:   " << spec << "\n"
      << "accuracy: " << eye.format_accuracy(spec, samples) << "\n";
  return 0;
}

int cmd_campaign(const ParsedArgs& p, std::ostream& out, std::ostream& err) {
  CampaignConfig cfg;
  cfg.format_spec = get(p, "format", "");
  if (!fmt::is_valid_spec(cfg.format_spec)) {
    err << "campaign: bad or missing --format\n";
    return 2;
  }
  const std::string site = get(p, "site", "value");
  if (site == "value") {
    cfg.site = InjectionSite::kActivationValue;
  } else if (site == "weight") {
    cfg.site = InjectionSite::kWeightValue;
  } else if (site == "metadata") {
    cfg.site = InjectionSite::kMetadata;
  } else {
    err << "campaign: unknown --site '" << site << "'\n";
    return 2;
  }
  const std::string em = get(p, "error-model", "flip");
  if (em == "flip") {
    cfg.model = ErrorModel::kBitFlip;
  } else if (em == "sa0") {
    cfg.model = ErrorModel::kStuckAt0;
  } else if (em == "sa1") {
    cfg.model = ErrorModel::kStuckAt1;
  } else {
    err << "campaign: unknown --error-model '" << em << "'\n";
    return 2;
  }
  cfg.injections_per_layer = std::stoll(get(p, "injections", "50"));
  cfg.seed = std::stoull(get(p, "seed", "1234"));

  data::SyntheticVision data{data::SyntheticVisionConfig{}};
  auto tm = prepare_model(p, data);
  const auto batch =
      data::take(data.test(), 0, std::stoll(get(p, "samples", "16")));
  // Replica factory lets trials fan out across pool workers; weights are
  // copied from the trained primary, so the init seed here is irrelevant.
  const std::string model_name = get(p, "model", "simple_cnn");
  cfg.make_replica = [model_name]() {
    return models::make_model(model_name, data::SyntheticVisionConfig{}, 0);
  };
  const auto r = run_campaign(*tm.model, batch, cfg);
  out << "campaign: " << cfg.format_spec << " site=" << site
      << " error-model=" << em << " injections/layer="
      << cfg.injections_per_layer << "\n";
  out << "clean emulated accuracy: " << r.golden_accuracy << "\n";
  out << std::left << std::setw(28) << "layer" << std::right << std::setw(12)
      << "mean dLoss" << std::setw(10) << "SDC" << "\n";
  for (const auto& l : r.layers) {
    out << std::left << std::setw(28) << l.layer << std::right
        << std::setw(12) << std::fixed << std::setprecision(5)
        << l.mean_delta_loss << std::setw(9) << l.sdc_count << "/"
        << l.injections << "\n";
  }
  out << "network mean dLoss: " << r.network_mean_delta_loss() << "\n";
  return 0;
}

int cmd_dse(const ParsedArgs& p, std::ostream& out, std::ostream& err) {
  DseConfig cfg;
  cfg.family = get(p, "family", "fp");
  cfg.accuracy_drop_threshold = std::stof(get(p, "threshold", "0.01"));
  data::SyntheticVision data{data::SyntheticVisionConfig{}};
  auto tm = prepare_model(p, data);
  const auto batch =
      data::take(data.test(), 0, std::stoll(get(p, "samples", "256")));
  DseResult r;
  try {
    r = run_dse(*tm.model, batch, cfg);
  } catch (const std::invalid_argument& e) {
    err << "dse: " << e.what() << "\n";
    return 2;
  }
  out << "baseline accuracy: " << r.baseline_accuracy << "\n";
  for (const auto& n : r.nodes) {
    out << "node " << n.id << " " << n.spec << " acc=" << n.accuracy << " "
        << (n.pass ? "PASS" : "fail") << "\n";
  }
  if (r.best_spec.empty()) {
    out << "no configuration met the threshold\n";
  } else {
    out << "selected: " << r.best_spec << " (" << r.best_bitwidth
        << " bits, acc " << r.best_accuracy << ")\n";
  }
  return 0;
}

int cmd_range(const ParsedArgs& p, std::ostream& out, std::ostream& err) {
  const std::string spec = get(p, "format", "");
  if (!fmt::is_valid_spec(spec)) {
    err << "range: bad or missing --format\n";
    return 2;
  }
  const auto row = dynamic_range_row(spec, spec);
  out << "format:  " << row.label << "\n"
      << "abs max: " << row.abs_max << "\n"
      << "abs min: " << row.abs_min << "\n"
      << "range:   " << row.range_db << " dB\n";
  return 0;
}

int cmd_features(std::ostream& out) {
  for (const auto& f : table2_features()) {
    out << (f.goldeneye ? "[x] " : "[ ] ") << f.feature << "\n";
  }
  return 0;
}

int cmd_formats(std::ostream& out) {
  out << "spec grammar:\n"
         "  fp_e<E>m<M>[_nodn][_sat]   parameterised float\n"
         "  fxp_1_<I>_<F>              fixed point\n"
         "  int<N>                     symmetric integer quantisation\n"
         "  bfp_e<E>m<M>_b<B|tensor>   block floating point\n"
         "  afp_e<E>m<M>[_dn]          AdaptivFloat\n"
         "  posit_<N>_<ES>             posit\n"
         "aliases:";
  for (const auto& a : fmt::known_aliases()) out << " " << a;
  out << "\n";
  return 0;
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  const auto parsed = parse(args);
  if (!parsed) return usage(err);
  try {
    if (parsed->command == "accuracy") return cmd_accuracy(*parsed, out, err);
    if (parsed->command == "campaign") return cmd_campaign(*parsed, out, err);
    if (parsed->command == "dse") return cmd_dse(*parsed, out, err);
    if (parsed->command == "range") return cmd_range(*parsed, out, err);
    if (parsed->command == "features") return cmd_features(out);
    if (parsed->command == "formats") return cmd_formats(out);
  } catch (const std::exception& e) {
    err << parsed->command << ": " << e.what() << "\n";
    return 1;
  }
  err << "unknown command '" << parsed->command << "'\n";
  return usage(err);
}

}  // namespace ge::core
