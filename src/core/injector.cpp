#include "core/injector.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "obs/telemetry.hpp"
#include "tensor/tensor_view.hpp"

namespace ge::core {

const char* to_string(InjectionSite site) {
  switch (site) {
    case InjectionSite::kActivationValue: return "activation_value";
    case InjectionSite::kWeightValue: return "weight_value";
    case InjectionSite::kMetadata: return "metadata";
  }
  return "?";
}

const char* to_string(ErrorModel model) {
  switch (model) {
    case ErrorModel::kBitFlip: return "bit_flip";
    case ErrorModel::kStuckAt0: return "stuck_at_0";
    case ErrorModel::kStuckAt1: return "stuck_at_1";
    case ErrorModel::kBerUniform: return "ber_uniform";
    case ErrorModel::kBurst: return "burst";
    case ErrorModel::kRowBurst: return "row_burst";
    case ErrorModel::kChannel: return "channel";
  }
  return "?";
}

Injector::Injector(Emulator& emulator, uint64_t seed)
    : emulator_(&emulator), rng_(seed) {
  emulator_->set_post_quant([this](LayerSite& site, Tensor& y) {
    for (size_t i = 0; i < faults_.size(); ++i) {
      ArmedFault& fault = faults_[i];
      if (fault.fired || site.path != fault.spec.layer_path) continue;
      fire(fault, i, site, &y);
    }
  });
}

Injector::~Injector() {
  disarm();
  emulator_->clear_post_quant();
}

std::vector<int> Injector::choose_bits(int width, int requested_bit,
                                       int count) {
  std::vector<int> bits;
  if (requested_bit >= 0) {
    if (requested_bit >= width) {
      throw std::invalid_argument("Injector: bit " +
                                  std::to_string(requested_bit) +
                                  " out of range for width " +
                                  std::to_string(width));
    }
    bits.push_back(requested_bit);
    --count;
  }
  while (count > 0) {
    const int b = static_cast<int>(draw_rng().randint(0, width - 1));
    if (std::find(bits.begin(), bits.end(), b) == bits.end()) {
      bits.push_back(b);
      --count;
    }
  }
  return bits;
}

void Injector::perturb(fmt::BitString& bits, ErrorModel model,
                       const std::vector<int>& chosen) const {
  for (int b : chosen) {
    switch (model) {
      case ErrorModel::kStuckAt0:
        bits.set_bit(b, false);
        break;
      case ErrorModel::kStuckAt1:
        bits.set_bit(b, true);
        break;
      default:
        // kBitFlip and every zoo model perturb by flipping.
        bits.flip_bit(b);
        break;
    }
  }
}

void Injector::arm(const InjectionSpec& spec) {
  disarm();
  arm_impl({spec});
}

void Injector::arm(const InjectionSpec& spec, const Rng& trial_rng) {
  disarm();
  trial_rng_ = trial_rng;  // after disarm(), which clears any old override
  try {
    arm_impl({spec});
  } catch (...) {
    trial_rng_.reset();
    throw;
  }
}

void Injector::arm_multi(const std::vector<InjectionSpec>& specs,
                         const Rng& trial_rng) {
  disarm();
  trial_rng_ = trial_rng;
  try {
    arm_impl(specs);
  } catch (...) {
    trial_rng_.reset();
    throw;
  }
}

void Injector::arm_impl(std::vector<InjectionSpec> specs) {
  if (specs.empty()) {
    throw std::invalid_argument("Injector: no injection specs");
  }
  std::unordered_set<std::string> layers;
  for (const InjectionSpec& spec : specs) {
    LayerSite* site = emulator_->site(spec.layer_path);
    if (site == nullptr) {
      throw std::invalid_argument("Injector: layer '" + spec.layer_path +
                                  "' is not instrumented");
    }
    if (spec.site == InjectionSite::kMetadata &&
        !site->act_format->has_metadata()) {
      throw std::invalid_argument("Injector: format '" +
                                  site->act_format->name() +
                                  "' exposes no metadata");
    }
    if (spec.num_bits < 1) {
      throw std::invalid_argument("Injector: num_bits must be >= 1");
    }
    if (is_zoo_model(spec.model) &&
        spec.site != InjectionSite::kActivationValue) {
      throw std::invalid_argument(
          std::string("Injector: error model '") + to_string(spec.model) +
          "' applies to the activation site only");
    }
    if (spec.model == ErrorModel::kBerUniform &&
        !(spec.ber > 0.0 && spec.ber <= 1.0)) {
      throw std::invalid_argument(
          "Injector: ber_uniform needs ber in (0, 1]");
    }
    if ((spec.model == ErrorModel::kRowBurst ||
         spec.model == ErrorModel::kChannel) &&
        (spec.ber < 0.0 || spec.ber > 1.0)) {
      throw std::invalid_argument("Injector: ber must be in [0, 1]");
    }
    if (spec.model == ErrorModel::kBurst) {
      const int width = site->act_format->bit_width();
      if (spec.burst_len < 1 || spec.burst_len > width) {
        throw std::invalid_argument(
            "Injector: burst_len must be in [1, " + std::to_string(width) +
            "] for format " + site->act_format->name());
      }
      if (spec.bit >= 0 && spec.bit + spec.burst_len > width) {
        throw std::invalid_argument(
            "Injector: burst at bit " + std::to_string(spec.bit) +
            " of length " + std::to_string(spec.burst_len) +
            " overruns width " + std::to_string(width));
      }
    }
    if (!layers.insert(spec.layer_path).second) {
      throw std::invalid_argument(
          "Injector: duplicate target layer '" + spec.layer_path +
          "' in multi-point arming");
    }
  }
  record_.reset();
  records_.clear();
  faults_.reserve(specs.size());
  for (InjectionSpec& spec : specs) {
    faults_.push_back(ArmedFault{std::move(spec), false});
    obs::add(obs::Counter::kInjections);
  }
  // Weight faults apply offline, in arming order, before any forward runs.
  for (size_t i = 0; i < faults_.size(); ++i) {
    ArmedFault& fault = faults_[i];
    if (fault.spec.site != InjectionSite::kWeightValue) continue;
    LayerSite* site = emulator_->site(fault.spec.layer_path);
    fire(fault, i, *site, nullptr);
  }
}

void Injector::disarm() {
  for (const std::string& path : corrupted_weight_paths_) {
    emulator_->restore_weights(path);
  }
  corrupted_weight_paths_.clear();
  faults_.clear();
  trial_rng_.reset();
}

void Injector::fire(ArmedFault& fault, size_t index, LayerSite& site,
                    Tensor* y) {
  InjectionRecord rec;
  switch (fault.spec.site) {
    case InjectionSite::kActivationValue:
      rec = apply_activation(fault.spec, site, *y);
      break;
    case InjectionSite::kMetadata:
      rec = apply_metadata(fault.spec, site, *y);
      break;
    case InjectionSite::kWeightValue:
      rec = apply_weight(fault.spec, site);
      break;
  }
  fault.fired = true;
  if (index == 0) record_ = rec;
  records_.push_back(std::move(rec));
}

InjectionRecord Injector::apply_activation(const InjectionSpec& spec,
                                           LayerSite& site, Tensor& y) {
  switch (spec.model) {
    case ErrorModel::kBerUniform: return apply_ber(spec, site, y);
    case ErrorModel::kBurst: return apply_burst(spec, site, y);
    case ErrorModel::kRowBurst:
    case ErrorModel::kChannel: return apply_region(spec, site, y);
    default: break;  // classic single-element models below
  }
  fmt::NumberFormat& f = *site.act_format;
  const int64_t element =
      spec.element >= 0 ? spec.element : draw_rng().randint(0, y.numel() - 1);
  if (element >= y.numel()) {
    throw std::invalid_argument("Injector: element index out of range");
  }
  InjectionRecord rec;
  rec.layer_path = site.path;
  rec.site = InjectionSite::kActivationValue;
  rec.model = spec.model;
  rec.error_model = to_string(spec.model);
  rec.element = element;
  rec.value_before = y[element];

  fmt::BitString bits = f.real_to_format_at(y[element], element);
  rec.bits = choose_bits(bits.width(), spec.bit, spec.num_bits);
  perturb(bits, spec.model, rec.bits);
  y[element] = f.format_to_real_at(bits, element);
  rec.value_after = y[element];
  rec.affected = 1;
  return rec;
}

InjectionRecord Injector::apply_ber(const InjectionSpec& spec,
                                    LayerSite& site, Tensor& y) {
  fmt::NumberFormat& f = *site.act_format;
  InjectionRecord rec;
  rec.layer_path = site.path;
  rec.site = InjectionSite::kActivationValue;
  rec.model = spec.model;
  rec.error_model = to_string(spec.model);

  // Serial element-major, bit-minor Bernoulli sweep: the draw sequence is
  // fixed by (numel, width) alone, so a trial reproduces bitwise no matter
  // which thread runs it. Encode/decode only touches hit elements.
  const int width = f.bit_width();
  const int64_t n = y.numel();
  const auto ber = static_cast<float>(spec.ber);
  Rng& rng = draw_rng();
  std::vector<int> hit;
  for (int64_t i = 0; i < n; ++i) {
    hit.clear();
    for (int b = 0; b < width; ++b) {
      if (rng.uniform() < ber) hit.push_back(b);
    }
    if (hit.empty()) continue;
    fmt::BitString bits = f.real_to_format_at(y[i], i);
    perturb(bits, spec.model, hit);
    const float before = y[i];
    y[i] = f.format_to_real_at(bits, i);
    if (rec.affected == 0) {
      rec.element = i;
      rec.bits = hit;
      rec.value_before = before;
      rec.value_after = y[i];
    }
    ++rec.affected;
  }
  return rec;
}

InjectionRecord Injector::apply_burst(const InjectionSpec& spec,
                                      LayerSite& site, Tensor& y) {
  fmt::NumberFormat& f = *site.act_format;
  const int64_t element =
      spec.element >= 0 ? spec.element : draw_rng().randint(0, y.numel() - 1);
  if (element >= y.numel()) {
    throw std::invalid_argument("Injector: element index out of range");
  }
  const int width = f.bit_width();
  const int start = spec.bit >= 0
                        ? spec.bit
                        : static_cast<int>(
                              draw_rng().randint(0, width - spec.burst_len));
  InjectionRecord rec;
  rec.layer_path = site.path;
  rec.site = InjectionSite::kActivationValue;
  rec.model = spec.model;
  rec.error_model = to_string(spec.model);
  rec.element = element;
  rec.value_before = y[element];
  rec.bits.reserve(static_cast<size_t>(spec.burst_len));
  for (int b = start; b < start + spec.burst_len; ++b) rec.bits.push_back(b);

  fmt::BitString bits = f.real_to_format_at(y[element], element);
  perturb(bits, spec.model, rec.bits);
  y[element] = f.format_to_real_at(bits, element);
  rec.value_after = y[element];
  rec.affected = 1;
  return rec;
}

InjectionRecord Injector::apply_region(const InjectionSpec& spec,
                                       LayerSite& site, Tensor& y) {
  fmt::NumberFormat& f = *site.act_format;
  const bool channel = spec.model == ErrorModel::kChannel;
  const int64_t regions = channel ? channel_count(y) : row_count(y);
  const int64_t r =
      spec.element >= 0 ? spec.element : draw_rng().randint(0, regions - 1);
  if (r >= regions) {
    throw std::invalid_argument("Injector: region index out of range");
  }
  // The view supplies geometry only: writes go through y's own element
  // accessor at true storage indices, so block-context formats (BFP)
  // encode/decode each element inside its dense-capture block.
  TensorView view = channel ? channel_view(y, r) : row_view(y, r);

  InjectionRecord rec;
  rec.layer_path = site.path;
  rec.site = InjectionSite::kActivationValue;
  rec.model = spec.model;
  rec.error_model = to_string(spec.model);
  // Draw order is fixed: region, then the shared bit set, then the
  // per-element thinning sequence — every element of the region sees the
  // same perturbed bit positions (a channel-wide datapath fault).
  rec.bits = choose_bits(f.bit_width(), spec.bit, spec.num_bits);
  const auto ber = static_cast<float>(spec.ber);
  Rng& rng = draw_rng();
  for (int64_t i = 0; i < view.numel(); ++i) {
    if (ber > 0.0f && !(rng.uniform() < ber)) continue;
    const int64_t s = view.flat_offset(i);
    fmt::BitString bits = f.real_to_format_at(y[s], s);
    perturb(bits, spec.model, rec.bits);
    const float before = y[s];
    y[s] = f.format_to_real_at(bits, s);
    if (rec.affected == 0) {
      rec.element = s;
      rec.value_before = before;
      rec.value_after = y[s];
    }
    ++rec.affected;
  }
  return rec;
}

InjectionRecord Injector::apply_metadata(const InjectionSpec& spec,
                                         LayerSite& site, Tensor& y) {
  fmt::NumberFormat& f = *site.act_format;
  const auto fields = f.metadata_fields();
  if (fields.empty()) {
    throw std::logic_error("Injector: no metadata fields on format");
  }
  const fmt::MetadataField* field = &fields.front();
  if (!spec.metadata_field.empty()) {
    field = nullptr;
    for (const auto& fd : fields) {
      if (fd.name == spec.metadata_field) field = &fd;
    }
    if (field == nullptr) {
      throw std::invalid_argument("Injector: unknown metadata field '" +
                                  spec.metadata_field + "'");
    }
  }
  const int64_t index = spec.metadata_index >= 0
                            ? spec.metadata_index
                            : draw_rng().randint(0, field->count - 1);

  InjectionRecord rec;
  rec.layer_path = site.path;
  rec.site = InjectionSite::kMetadata;
  rec.model = spec.model;
  rec.error_model = to_string(spec.model);
  rec.metadata_field = field->name;
  rec.metadata_index = index;

  fmt::BitString bits = f.read_metadata(field->name, index);
  rec.bits = choose_bits(bits.width(), spec.bit, spec.num_bits);
  perturb(bits, spec.model, rec.bits);
  f.write_metadata(field->name, index, bits);
  // Re-decode the whole tensor under the corrupted register: a single
  // metadata bit flip behaves as a multi-bit flip of the data (§II-B).
  y = f.decode_last_tensor();
  rec.affected = y.numel();  // every element re-decodes under the fault
  return rec;
}

InjectionRecord Injector::apply_weight(const InjectionSpec& spec,
                                       LayerSite& site) {
  nn::Parameter* weight = nullptr;
  for (nn::Parameter* p : site.module->local_parameters()) {
    if (p->name == "weight") weight = p;
  }
  if (weight == nullptr) {
    throw std::invalid_argument("Injector: layer '" + site.path +
                                "' has no weight parameter");
  }
  // A cloned format instance re-captures this weight tensor's metadata so
  // the scalar encode/decode is faithful to the quantised weights. The
  // capture runs on a COW scratch share: the parameter tensor (possibly
  // referenced by every campaign replica) is never written through.
  auto wfmt = site.act_format->clone();
  Tensor scratch = weight->value;
  wfmt->quantize_tensor_inplace(scratch);

  const int64_t element =
      spec.element >= 0 ? spec.element
                        : draw_rng().randint(0, weight->value.numel() - 1);
  InjectionRecord rec;
  rec.layer_path = site.path;
  rec.site = InjectionSite::kWeightValue;
  rec.model = spec.model;
  rec.error_model = to_string(spec.model);
  rec.element = element;
  rec.value_before = weight->value[element];

  fmt::BitString bits =
      wfmt->real_to_format_at(weight->value[element], element);
  rec.bits = choose_bits(bits.width(), spec.bit, spec.num_bits);
  perturb(bits, spec.model, rec.bits);
  weight->value[element] = wfmt->format_to_real_at(bits, element);
  rec.value_after = weight->value[element];
  rec.affected = 1;

  corrupted_weight_paths_.push_back(site.path);
  return rec;
}

}  // namespace ge::core
