#include "core/injector.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/telemetry.hpp"

namespace ge::core {

const char* to_string(InjectionSite site) {
  switch (site) {
    case InjectionSite::kActivationValue: return "activation_value";
    case InjectionSite::kWeightValue: return "weight_value";
    case InjectionSite::kMetadata: return "metadata";
  }
  return "?";
}

const char* to_string(ErrorModel model) {
  switch (model) {
    case ErrorModel::kBitFlip: return "bit_flip";
    case ErrorModel::kStuckAt0: return "stuck_at_0";
    case ErrorModel::kStuckAt1: return "stuck_at_1";
  }
  return "?";
}

Injector::Injector(Emulator& emulator, uint64_t seed)
    : emulator_(&emulator), rng_(seed) {
  emulator_->set_post_quant([this](LayerSite& site, Tensor& y) {
    if (!armed_ || fired_ || site.path != armed_->layer_path) return;
    switch (armed_->site) {
      case InjectionSite::kActivationValue:
        apply_activation(site, y);
        break;
      case InjectionSite::kMetadata:
        apply_metadata(site, y);
        break;
      case InjectionSite::kWeightValue:
        break;  // applied at arm time, not in the hook
    }
  });
}

Injector::~Injector() {
  disarm();
  emulator_->clear_post_quant();
}

std::vector<int> Injector::choose_bits(int width, int requested_bit,
                                       int count) {
  std::vector<int> bits;
  if (requested_bit >= 0) {
    if (requested_bit >= width) {
      throw std::invalid_argument("Injector: bit " +
                                  std::to_string(requested_bit) +
                                  " out of range for width " +
                                  std::to_string(width));
    }
    bits.push_back(requested_bit);
    --count;
  }
  while (count > 0) {
    const int b = static_cast<int>(draw_rng().randint(0, width - 1));
    if (std::find(bits.begin(), bits.end(), b) == bits.end()) {
      bits.push_back(b);
      --count;
    }
  }
  return bits;
}

void Injector::perturb(fmt::BitString& bits,
                       const std::vector<int>& chosen) const {
  for (int b : chosen) {
    switch (armed_->model) {
      case ErrorModel::kBitFlip:
        bits.flip_bit(b);
        break;
      case ErrorModel::kStuckAt0:
        bits.set_bit(b, false);
        break;
      case ErrorModel::kStuckAt1:
        bits.set_bit(b, true);
        break;
    }
  }
}

void Injector::arm(const InjectionSpec& spec) {
  disarm();
  arm_impl(spec);
}

void Injector::arm(const InjectionSpec& spec, const Rng& trial_rng) {
  disarm();
  trial_rng_ = trial_rng;  // after disarm(), which clears any old override
  try {
    arm_impl(spec);
  } catch (...) {
    trial_rng_.reset();
    throw;
  }
}

void Injector::arm_impl(const InjectionSpec& spec) {
  LayerSite* site = emulator_->site(spec.layer_path);
  if (site == nullptr) {
    throw std::invalid_argument("Injector: layer '" + spec.layer_path +
                                "' is not instrumented");
  }
  if (spec.site == InjectionSite::kMetadata &&
      !site->act_format->has_metadata()) {
    throw std::invalid_argument("Injector: format '" +
                                site->act_format->name() +
                                "' exposes no metadata");
  }
  if (spec.num_bits < 1) {
    throw std::invalid_argument("Injector: num_bits must be >= 1");
  }
  armed_ = spec;
  fired_ = false;
  record_.reset();
  obs::add(obs::Counter::kInjections);
  if (spec.site == InjectionSite::kWeightValue) {
    apply_weight(*site);
  }
}

void Injector::disarm() {
  if (weight_corrupted_) {
    emulator_->restore_weights(corrupted_weight_path_);
    weight_corrupted_ = false;
  }
  armed_.reset();
  fired_ = false;
  trial_rng_.reset();
}

void Injector::apply_activation(LayerSite& site, Tensor& y) {
  const InjectionSpec& spec = *armed_;
  fmt::NumberFormat& f = *site.act_format;
  const int64_t element =
      spec.element >= 0 ? spec.element : draw_rng().randint(0, y.numel() - 1);
  if (element >= y.numel()) {
    throw std::invalid_argument("Injector: element index out of range");
  }
  InjectionRecord rec;
  rec.layer_path = site.path;
  rec.site = InjectionSite::kActivationValue;
  rec.model = spec.model;
  rec.element = element;
  rec.value_before = y[element];

  fmt::BitString bits = f.real_to_format_at(y[element], element);
  rec.bits = choose_bits(bits.width(), spec.bit, spec.num_bits);
  perturb(bits, rec.bits);
  y[element] = f.format_to_real_at(bits, element);
  rec.value_after = y[element];

  record_ = std::move(rec);
  fired_ = true;
}

void Injector::apply_metadata(LayerSite& site, Tensor& y) {
  const InjectionSpec& spec = *armed_;
  fmt::NumberFormat& f = *site.act_format;
  const auto fields = f.metadata_fields();
  if (fields.empty()) {
    throw std::logic_error("Injector: no metadata fields on format");
  }
  const fmt::MetadataField* field = &fields.front();
  if (!spec.metadata_field.empty()) {
    field = nullptr;
    for (const auto& fd : fields) {
      if (fd.name == spec.metadata_field) field = &fd;
    }
    if (field == nullptr) {
      throw std::invalid_argument("Injector: unknown metadata field '" +
                                  spec.metadata_field + "'");
    }
  }
  const int64_t index = spec.metadata_index >= 0
                            ? spec.metadata_index
                            : draw_rng().randint(0, field->count - 1);

  InjectionRecord rec;
  rec.layer_path = site.path;
  rec.site = InjectionSite::kMetadata;
  rec.model = spec.model;
  rec.metadata_field = field->name;
  rec.metadata_index = index;

  fmt::BitString bits = f.read_metadata(field->name, index);
  rec.bits = choose_bits(bits.width(), spec.bit, spec.num_bits);
  perturb(bits, rec.bits);
  f.write_metadata(field->name, index, bits);
  // Re-decode the whole tensor under the corrupted register: a single
  // metadata bit flip behaves as a multi-bit flip of the data (§II-B).
  y = f.decode_last_tensor();

  record_ = std::move(rec);
  fired_ = true;
}

void Injector::apply_weight(LayerSite& site) {
  const InjectionSpec& spec = *armed_;
  nn::Parameter* weight = nullptr;
  for (nn::Parameter* p : site.module->local_parameters()) {
    if (p->name == "weight") weight = p;
  }
  if (weight == nullptr) {
    throw std::invalid_argument("Injector: layer '" + site.path +
                                "' has no weight parameter");
  }
  // A cloned format instance re-captures this weight tensor's metadata so
  // the scalar encode/decode is faithful to the quantised weights. The
  // capture runs on a COW scratch share: the parameter tensor (possibly
  // referenced by every campaign replica) is never written through.
  auto wfmt = site.act_format->clone();
  Tensor scratch = weight->value;
  wfmt->quantize_tensor_inplace(scratch);

  const int64_t element =
      spec.element >= 0 ? spec.element
                        : draw_rng().randint(0, weight->value.numel() - 1);
  InjectionRecord rec;
  rec.layer_path = site.path;
  rec.site = InjectionSite::kWeightValue;
  rec.model = spec.model;
  rec.element = element;
  rec.value_before = weight->value[element];

  fmt::BitString bits =
      wfmt->real_to_format_at(weight->value[element], element);
  rec.bits = choose_bits(bits.width(), spec.bit, spec.num_bits);
  perturb(bits, rec.bits);
  weight->value[element] = wfmt->format_to_real_at(bits, element);
  rec.value_after = weight->value[element];

  weight_corrupted_ = true;
  corrupted_weight_path_ = site.path;
  record_ = std::move(rec);
  fired_ = true;
}

}  // namespace ge::core
