#include "core/perf_gate.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "core/json_scan.hpp"

namespace ge::core::perf_gate {

namespace {

using jsonscan::Record;

/// Trim trailing spaces, tabs, carriage returns, and one trailing comma —
/// BenchReport writes every row except the last with a `,` suffix.
std::string trim_row_line(std::string line) {
  while (!line.empty() &&
         (line.back() == ' ' || line.back() == '\t' || line.back() == '\r')) {
    line.pop_back();
  }
  if (!line.empty() && line.back() == ',') line.pop_back();
  return line;
}

}  // namespace

BenchFile load_bench_json(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("perf_gate: cannot open '" + path + "'");
  }
  BenchFile out;
  std::string line;
  bool saw_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (!saw_header) {
      // First line: {"bench":"<name>","rows":[ — close it into a complete
      // object so the flat scanner can extract the bench name.
      const auto header = jsonscan::parse_record(line + "]}");
      if (!header) {
        throw std::runtime_error("perf_gate: '" + path +
                                 "' is not a BenchReport file (bad header)");
      }
      out.bench = jsonscan::get_str(*header, "bench");
      if (out.bench.empty()) {
        throw std::runtime_error("perf_gate: '" + path +
                                 "' has no \"bench\" field");
      }
      saw_header = true;
      continue;
    }
    const std::string trimmed = trim_row_line(line);
    if (trimmed.empty() || trimmed == "]}") continue;
    const auto rec = jsonscan::parse_record(trimmed);
    if (!rec) {
      throw std::runtime_error("perf_gate: '" + path +
                               "' has an unparseable row: " + trimmed);
    }
    BenchRow row;
    row.name = jsonscan::get_str(*rec, "name");
    if (row.name.empty()) continue;  // label-only rows carry no measurements
    for (const auto& field : *rec) {
      if (field.first == "name") continue;
      if (const auto v = jsonscan::get_num(*rec, field.first.c_str())) {
        row.metrics[field.first] = *v;
      }
    }
    out.rows.push_back(std::move(row));
  }
  if (!saw_header) {
    throw std::runtime_error("perf_gate: '" + path + "' is empty");
  }
  return out;
}

GateResult compare_bench(const BenchFile& baseline, const BenchFile& current,
                         const std::vector<std::string>& metrics,
                         double threshold) {
  GateResult out;
  std::map<std::string, const BenchRow*> base_by_name;
  for (const auto& r : baseline.rows) base_by_name[r.name] = &r;
  std::map<std::string, bool> base_seen;
  for (const auto& r : baseline.rows) base_seen[r.name] = false;

  for (const auto& cur : current.rows) {
    const auto it = base_by_name.find(cur.name);
    if (it == base_by_name.end()) {
      out.missing.push_back(cur.name + " (current only)");
      continue;
    }
    base_seen[cur.name] = true;
    const BenchRow& base = *it->second;
    for (const std::string& metric : metrics) {
      const auto bi = base.metrics.find(metric);
      const auto ci = cur.metrics.find(metric);
      if (bi == base.metrics.end() || ci == cur.metrics.end()) continue;
      Comparison c;
      c.row = cur.name;
      c.metric = metric;
      c.baseline = bi->second;
      c.current = ci->second;
      c.ratio = bi->second > 0.0 ? ci->second / bi->second : 1.0;
      out.rows.push_back(std::move(c));
    }
  }
  for (const auto& [name, seen] : base_seen) {
    if (!seen) out.missing.push_back(name + " (baseline only)");
  }

  if (!out.rows.empty()) {
    std::vector<double> ratios;
    ratios.reserve(out.rows.size());
    for (const auto& c : out.rows) ratios.push_back(c.ratio);
    std::sort(ratios.begin(), ratios.end());
    const size_t n = ratios.size();
    out.median_ratio = n % 2 == 1
                           ? ratios[n / 2]
                           : 0.5 * (ratios[n / 2 - 1] + ratios[n / 2]);
    out.worst_ratio = ratios.back();
  }
  out.pass = out.median_ratio <= 1.0 + threshold;
  return out;
}

}  // namespace ge::core::perf_gate
