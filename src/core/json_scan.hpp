// ge::core::jsonscan — a minimal flat-JSON record scanner.
//
// RunLog JSONL lines and bench result files are flat objects apart from a
// few nested values (the "metrics" row's counters/gauges, a bench file's
// rows array); the scanner keeps every top-level field as its raw token
// text (strings unescaped) and skips nested values structurally, so
// unknown trailing fields from future schema versions parse fine. Shared
// by the report renderer (src/core/report.cpp) and the perf-regression
// gate (src/core/perf_gate.cpp, tools/perf_gate.cpp).
#pragma once

#include <map>
#include <optional>
#include <string>

namespace ge::core::jsonscan {

/// One parsed line: top-level field name -> value. String values are
/// unescaped; every other value (numbers, bools, nested objects/arrays)
/// keeps its raw token text.
using Record = std::map<std::string, std::string>;

/// Advance i past spaces and tabs.
void skip_ws(const std::string& s, size_t& i);

/// Parse the JSON string starting at s[i] == '"'. Returns the unescaped
/// text and leaves i one past the closing quote; nullopt on malformed
/// input. Escaped codepoints above 0x7f degrade to '?' — the writer only
/// escapes control characters, so nothing of ours is lost.
std::optional<std::string> parse_string(const std::string& s, size_t& i);

/// Skip one JSON value (scalar, or nested object/array by depth counting,
/// strings quote-aware). Leaves i at the first character after the value.
bool skip_value(const std::string& s, size_t& i);

/// One JSONL line -> top-level fields. Returns nullopt for lines that are
/// not a JSON object.
std::optional<Record> parse_record(const std::string& line);

/// Numeric field accessor; nullopt when absent, null, or non-numeric.
std::optional<double> get_num(const Record& r, const char* key);

/// String field accessor; empty when absent.
std::string get_str(const Record& r, const char* key);

}  // namespace ge::core::jsonscan
