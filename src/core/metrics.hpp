// Resiliency metrics (§IV-C): mismatch counting and ΔLoss.
//
// mismatch — an injected inference whose top-1 prediction differs from
// the golden (fault-free) inference;
// ΔLoss — the absolute difference of the cross-entropy loss between the
// faulty and golden inference (Mahmoud et al.'s metric, which converges
// with far fewer injections because it compares continuous values).
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataloader.hpp"
#include "nn/module.hpp"
#include "tensor/tensor.hpp"

namespace ge::core {

/// Fault-free reference of one evaluation batch.
struct GoldenRun {
  Tensor logits;
  std::vector<int64_t> predictions;
  std::vector<float> per_sample_loss;  // CE against the *labels*
  float mean_loss = 0.0f;
};

/// When `record_plan` is non-null, the golden forward is additionally
/// recorded into it (nn::ReplayPlan — the golden-prefix cache campaigns
/// replay trial suffixes from; recording takes O(1) tensor shares and
/// never changes the computed values).
GoldenRun run_golden(nn::Module& model, const data::Batch& batch,
                     nn::ReplayPlan* record_plan = nullptr);

/// Comparison of one faulty inference against the golden reference.
struct FaultOutcome {
  int64_t mismatched_samples = 0;  ///< top-1 changed vs golden
  float mismatch_rate = 0.0f;      ///< fraction of the batch
  float delta_loss = 0.0f;         ///< mean per-sample |CE_f - CE_g|
  float max_delta_loss = 0.0f;     ///< worst sample
  bool sdc = false;                ///< any mismatch (silent data corruption)
};

FaultOutcome compare_to_golden(const GoldenRun& golden, const Tensor& logits,
                               const std::vector<int64_t>& labels);

/// Triage class of one outcome, the fault-injection taxonomy used by the
/// trial event stream and `goldeneye report`:
///   "sdc"    — a top-1 prediction changed (silent data corruption)
///   "benign" — outputs moved (ΔLoss > 0) but every top-1 held
///   "masked" — the fault had no observable effect at all
const char* outcome_class(const FaultOutcome& outcome);

/// FNV-1a 64-bit running hash over `n` bytes, continuing from `h`. Seed
/// with kFnv1aBasis. Used for the pinned campaign digests
/// (campaign_digest, tests/test_determinism.cpp) and the CLI's cross-
/// process bitwise-equality checks — it is part of the persistence
/// contract, so the constants must never change.
inline constexpr uint64_t kFnv1aBasis = 14695981039346656037ULL;
uint64_t fnv1a(uint64_t h, const void* data, size_t n);

/// Running mean/variance tracker, used to show ΔLoss's faster convergence
/// (the paper's argument for preferring it over mismatch counting).
class ConvergenceTracker {
 public:
  void add(double x);
  int64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const;
  /// Half-width of the 95% normal confidence interval of the mean.
  double ci95_halfwidth() const;

 private:
  int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace ge::core
