#include "core/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "nn/loss.hpp"
#include "tensor/tensor_ops.hpp"

namespace ge::core {

GoldenRun run_golden(nn::Module& model, const data::Batch& batch,
                     nn::ReplayPlan* record_plan) {
  model.eval();
  GoldenRun g;
  g.logits = record_plan != nullptr
                 ? model.record_forward(*record_plan, batch.images)
                 : model(batch.images);
  g.predictions = ops::argmax_rows(g.logits);
  g.per_sample_loss = nn::CrossEntropyLoss::per_sample(g.logits, batch.labels);
  double s = 0.0;
  for (float l : g.per_sample_loss) s += l;
  g.mean_loss = static_cast<float>(s / double(g.per_sample_loss.size()));
  return g;
}

FaultOutcome compare_to_golden(const GoldenRun& golden, const Tensor& logits,
                               const std::vector<int64_t>& labels) {
  FaultOutcome out;
  const auto preds = ops::argmax_rows(logits);
  const auto losses = nn::CrossEntropyLoss::per_sample(logits, labels);
  const auto n = preds.size();
  double sum_delta = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (preds[i] != golden.predictions[i]) ++out.mismatched_samples;
    float d = std::fabs(losses[i] - golden.per_sample_loss[i]);
    if (!std::isfinite(d)) {
      // A fault that drives the loss to inf/NaN is maximally severe; use a
      // large finite sentinel so layer averages stay meaningful.
      d = 100.0f;
    }
    sum_delta += d;
    out.max_delta_loss = std::max(out.max_delta_loss, d);
  }
  out.mismatch_rate =
      static_cast<float>(out.mismatched_samples) / static_cast<float>(n);
  out.delta_loss = static_cast<float>(sum_delta / double(n));
  out.sdc = out.mismatched_samples > 0;
  return out;
}

const char* outcome_class(const FaultOutcome& outcome) {
  if (outcome.sdc) return "sdc";
  if (outcome.delta_loss > 0.0f || outcome.max_delta_loss > 0.0f) {
    return "benign";
  }
  return "masked";
}

void ConvergenceTracker::add(double x) {
  ++n_;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
}

double ConvergenceTracker::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double ConvergenceTracker::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return 1.96 * std::sqrt(variance() / static_cast<double>(n_));
}

uint64_t fnv1a(uint64_t h, const void* data, size_t n) {
  const auto* b = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= b[i];
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace ge::core
