#include "core/range_detector.hpp"

#include <algorithm>
#include <limits>

#include "tensor/tensor_ops.hpp"

namespace ge::core {

RangeDetector::RangeDetector(nn::Module& model,
                             std::vector<std::string> layer_kinds)
    : model_(&model) {
  for (auto& [path, mod] : model.named_modules()) {
    if (std::find(layer_kinds.begin(), layer_kinds.end(), mod->kind()) !=
        layer_kinds.end()) {
      targets_.emplace_back(path, mod);
    }
  }
}

RangeDetector::~RangeDetector() { disable(); }

void RangeDetector::profile(const Tensor& inputs) {
  // Temporary observation hooks, removed before returning.
  std::vector<std::pair<nn::Module*, nn::Module::HookHandle>> tmp;
  for (auto& [path, mod] : targets_) {
    const std::string p = path;
    tmp.emplace_back(
        mod, mod->add_forward_hook([this, p](nn::Module&, Tensor& y) {
          const float lo = ops::min_value(y);
          const float hi = ops::max_value(y);
          auto it = ranges_.find(p);
          if (it == ranges_.end()) {
            ranges_[p] = {lo, hi};
          } else {
            it->second.first = std::min(it->second.first, lo);
            it->second.second = std::max(it->second.second, hi);
          }
        }));
  }
  (*model_)(inputs);
  for (auto& [mod, h] : tmp) mod->remove_hook(h);
}

void RangeDetector::enable() {
  if (enabled_) return;
  for (auto& [path, mod] : targets_) {
    const auto it = ranges_.find(path);
    if (it == ranges_.end()) continue;  // never profiled: nothing to clamp to
    const float lo = it->second.first;
    const float hi = it->second.second;
    hooks_.emplace_back(
        mod, mod->add_forward_hook([this, lo, hi](nn::Module&, Tensor& y) {
          for (float& v : y.flat()) {
            if (v < lo) {
              v = lo;
              ++clamp_events_;
            } else if (v > hi) {
              v = hi;
              ++clamp_events_;
            }
          }
        }));
  }
  enabled_ = true;
}

void RangeDetector::disable() {
  for (auto& [mod, h] : hooks_) mod->remove_hook(h);
  hooks_.clear();
  enabled_ = false;
}

}  // namespace ge::core
