// GoldenEye: the top-level facade tying model, dataset, emulation,
// injection, campaigns and DSE together — the API a downstream user
// programs against (mirrors the paper's command-line surface).
#pragma once

#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/dse.hpp"
#include "data/synthetic.hpp"
#include "nn/module.hpp"

namespace ge::core {

class GoldenEye {
 public:
  /// Non-owning: model and dataset must outlive the facade.
  GoldenEye(nn::Module& model, const data::SyntheticVision& data);

  /// Native FP32 accuracy on the first `max_samples` test images.
  float baseline_accuracy(int64_t max_samples = 256);
  /// Accuracy with `spec` emulation on the same evaluation subset.
  float format_accuracy(const std::string& spec, int64_t max_samples = 256);

  /// Per-layer injection campaign on a fixed evaluation batch.
  CampaignResult campaign(const CampaignConfig& cfg, int64_t batch_size = 32);

  /// Binary-tree format search (Fig. 5/6).
  DseResult dse(const DseConfig& cfg, int64_t max_samples = 256);

  /// Paths of the layers emulation would instrument (CONV/LINEAR).
  std::vector<std::string> instrumented_layers(const std::string& spec);

  nn::Module& model() noexcept { return *model_; }

 private:
  data::Batch eval_batch(int64_t max_samples) const;

  nn::Module* model_;
  const data::SyntheticVision* data_;
};

/// --- Table I: dynamic range of data types -----------------------------------
struct RangeRow {
  std::string label;
  double abs_max = 0.0;
  double abs_min = 0.0;
  double range_db = 0.0;
};
/// Compute the paper's Table I row for one format spec.
RangeRow dynamic_range_row(const std::string& spec, const std::string& label);
/// All rows of the paper's Table I, in paper order.
std::vector<RangeRow> table1_rows();

/// --- Table II: tool feature matrix ------------------------------------------
struct ToolFeature {
  std::string feature;
  bool goldeneye = false;
  bool pytorchfi = false;
  bool qpytorch = false;
};
/// The qualitative comparison of Table II (GoldenEye vs PyTorchFI vs
/// QPyTorch), with this repo's column verified against what the code
/// actually implements.
std::vector<ToolFeature> table2_features();

}  // namespace ge::core
