// DSE: the paper's recursive binary-tree design-space-exploration
// heuristic for number-format selection (§IV-B, Fig. 5/6).
//
// Two phases, each a logarithmic binary descent over an ordered ladder:
//   1. bitwidth  — find the narrowest total width whose accuracy stays
//      within `accuracy_drop_threshold` of the FP32 baseline, probing
//      aggressively toward shorter widths;
//   2. radix     — at the chosen width, find the most aggressive
//      integer/exponent split (fewer range bits) that still passes.
// The heuristic visits at most `max_nodes` nodes (the paper reports <= 16)
// and records every visited node with its measured accuracy, producing
// the Fig. 6 series directly.
#pragma once

#include <string>
#include <vector>

#include "data/dataloader.hpp"
#include "nn/module.hpp"

namespace ge::core {

struct DseConfig {
  /// Format family to search: "fp", "fxp", "int", "bfp", or "afp".
  std::string family = "fp";
  /// Allowed accuracy loss from the FP32 baseline (e.g. 0.01 = 1%).
  float accuracy_drop_threshold = 0.01f;
  int max_nodes = 16;
};

struct DseNode {
  int id = 0;              ///< visit order (1-based, as Fig. 6's x-axis)
  std::string spec;        ///< format probed at this node
  int bitwidth = 0;        ///< total value bitwidth of the spec
  float accuracy = 0.0f;
  bool pass = false;       ///< accuracy >= baseline - threshold
  std::string phase;       ///< "bitwidth" or "radix"
};

struct DseResult {
  float baseline_accuracy = 0.0f;  ///< native FP32 on the same batch
  std::vector<DseNode> nodes;      ///< in visit order
  std::string best_spec;           ///< narrowest passing configuration
  int best_bitwidth = 0;
  float best_accuracy = 0.0f;
  int64_t passing_nodes() const;
};

/// Run the heuristic for `model` on `batch`.
DseResult run_dse(nn::Module& model, const data::Batch& batch,
                  const DseConfig& cfg);

/// The bitwidth ladder (spec per width, widest first) the heuristic
/// searches for a family — exposed for tests and for Fig. 4's sweeps.
std::vector<std::pair<int, std::string>> bitwidth_ladder(
    const std::string& family);

}  // namespace ge::core
