// Emulator: attaches number-format emulation to a model via forward hooks
// (the paper's Fig. 2 pipeline: read FP32 activations, convert to the
// emulated format, write back the nearest FP32 value — capturing hardware
// metadata on the way).
//
// RAII: construction instruments the model (quantises weights offline and
// installs activation hooks); destruction removes all hooks and restores
// the original FP32 weights bit-exactly. A Campaign can therefore
// instrument/restore around every experiment without ever corrupting the
// persistent model.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "formats/number_format.hpp"
#include "nn/module.hpp"

namespace ge::core {

struct EmulatorConfig {
  /// Registry spec (see formats/format_registry.hpp), e.g. "bfp_e5m5_b16".
  std::string format_spec;
  /// Per-layer overrides (module path -> spec): mixed-format emulation,
  /// e.g. a wider format for the classifier head than for the trunk. Any
  /// layer not listed uses `format_spec`.
  std::map<std::string, std::string> per_layer_specs;
  /// Quantise parameters once at attach time ("offline", as the paper
  /// notes weight conversion needs no dynamic runtime support).
  bool quantize_weights = true;
  /// Install output hooks converting activations at every selected layer.
  bool quantize_activations = true;
  /// Layer kinds to instrument; CONV and LINEAR are the paper's defaults
  /// (the computationally intensive layers).
  std::vector<std::string> layer_kinds = {"Conv2d", "Linear"};
  /// When set, attach() does not quantise this model's weights itself:
  /// it shares the already-quantised parameter tensors of the source
  /// model (which must be structurally identical and already
  /// instrumented). Campaign replicas use this so all workers reference
  /// one frozen copy of the quantised weights — a trial that corrupts a
  /// weight materialises a private copy via copy-on-write.
  nn::Module* weight_source = nullptr;
};

/// One instrumented layer: its path, module, and the per-layer format
/// instance whose metadata state belongs to this layer's activations.
struct LayerSite {
  std::string path;
  nn::Module* module = nullptr;
  std::unique_ptr<fmt::NumberFormat> act_format;
  nn::Module::HookHandle hook = 0;
};

class Emulator {
 public:
  /// Post-quantisation callback: runs after a site's activations were
  /// converted, before they continue downstream — the injection point.
  using PostQuant = std::function<void(LayerSite&, Tensor&)>;

  Emulator(nn::Module& model, EmulatorConfig cfg);
  ~Emulator();

  Emulator(const Emulator&) = delete;
  Emulator& operator=(const Emulator&) = delete;

  const EmulatorConfig& config() const noexcept { return cfg_; }
  nn::Module& model() noexcept { return *model_; }

  /// Instrumented sites in network order.
  std::vector<LayerSite>& sites() noexcept { return sites_; }
  /// Find a site by its module path; nullptr when not instrumented.
  LayerSite* site(const std::string& path);

  /// Register/clear the injection callback (at most one).
  void set_post_quant(PostQuant cb) { post_quant_ = std::move(cb); }
  void clear_post_quant() { post_quant_ = nullptr; }

  /// Re-quantise a single site's weights from the saved FP32 originals
  /// (used by the injector to undo weight corruption).
  void restore_weights(const std::string& path);

  /// Saved FP32 original of an instrumented layer's weight parameter.
  const Tensor* original_weight(const std::string& path) const;

 private:
  void attach();
  void detach();

  nn::Module* model_;
  EmulatorConfig cfg_;
  std::vector<LayerSite> sites_;
  PostQuant post_quant_;
  // (parameter pointer, pristine FP32 copy) for exact restore on detach
  std::vector<std::pair<nn::Parameter*, Tensor>> saved_weights_;
  // Post-quantisation snapshot of each saved parameter (O(1) storage
  // shares, aligned with saved_weights_): restore_weights re-shares the
  // frozen tensor instead of re-quantising the FP32 original per trial.
  std::vector<Tensor> frozen_quantized_;
  // O(1) path lookups (campaigns call site()/restore_weights() per trial):
  // path -> index into sites_, and path -> index of the layer's "weight"
  // entry in saved_weights_. Rebuilt by attach(), cleared by detach().
  std::unordered_map<std::string, size_t> site_index_;
  std::unordered_map<std::string, size_t> weight_saved_index_;
};

/// Convenience: top-1 accuracy of `model` on `batch` with `format_spec`
/// emulation attached for the duration of the call ("native" skips
/// emulation entirely and measures the bare FP32 model).
float emulated_accuracy(nn::Module& model, const Tensor& images,
                        const std::vector<int64_t>& labels,
                        const std::string& format_spec);

}  // namespace ge::core
