#include "core/json_scan.hpp"

#include <cstdlib>

namespace ge::core::jsonscan {

void skip_ws(const std::string& s, size_t& i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
}

std::optional<std::string> parse_string(const std::string& s, size_t& i) {
  if (i >= s.size() || s[i] != '"') return std::nullopt;
  std::string out;
  for (++i; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '"') {
      ++i;
      return out;
    }
    if (c != '\\') {
      out += c;
      continue;
    }
    if (++i >= s.size()) return std::nullopt;
    switch (s[i]) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'r': out += '\r'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u': {
        if (i + 4 >= s.size()) return std::nullopt;
        const unsigned cp =
            static_cast<unsigned>(std::strtoul(s.substr(i + 1, 4).c_str(),
                                               nullptr, 16));
        out += cp < 0x80 ? static_cast<char>(cp) : '?';
        i += 4;
        break;
      }
      default: return std::nullopt;
    }
  }
  return std::nullopt;  // unterminated
}

bool skip_value(const std::string& s, size_t& i) {
  skip_ws(s, i);
  if (i >= s.size()) return false;
  if (s[i] == '"') return parse_string(s, i).has_value();
  if (s[i] == '{' || s[i] == '[') {
    int depth = 0;
    for (; i < s.size(); ++i) {
      const char c = s[i];
      if (c == '"') {
        if (!parse_string(s, i)) return false;
        --i;  // the for-loop re-advances
        continue;
      }
      if (c == '{' || c == '[') ++depth;
      if (c == '}' || c == ']') {
        if (--depth == 0) {
          ++i;
          return true;
        }
      }
    }
    return false;
  }
  // Scalar: number / true / false / null.
  const size_t start = i;
  while (i < s.size() && s[i] != ',' && s[i] != '}' && s[i] != ']' &&
         s[i] != ' ' && s[i] != '\t') {
    ++i;
  }
  return i > start;
}

std::optional<Record> parse_record(const std::string& line) {
  size_t i = 0;
  skip_ws(line, i);
  if (i >= line.size() || line[i] != '{') return std::nullopt;
  ++i;
  Record rec;
  skip_ws(line, i);
  if (i < line.size() && line[i] == '}') return rec;  // empty object
  while (true) {
    skip_ws(line, i);
    auto key = parse_string(line, i);
    if (!key) return std::nullopt;
    skip_ws(line, i);
    if (i >= line.size() || line[i] != ':') return std::nullopt;
    ++i;
    skip_ws(line, i);
    const size_t vstart = i;
    if (i < line.size() && line[i] == '"') {
      auto v = parse_string(line, i);
      if (!v) return std::nullopt;
      rec[*key] = *v;
    } else {
      if (!skip_value(line, i)) return std::nullopt;
      rec[*key] = line.substr(vstart, i - vstart);
    }
    skip_ws(line, i);
    if (i >= line.size()) return std::nullopt;
    if (line[i] == ',') {
      ++i;
      continue;
    }
    if (line[i] == '}') return rec;
    return std::nullopt;
  }
}

std::optional<double> get_num(const Record& r, const char* key) {
  const auto it = r.find(key);
  if (it == r.end() || it->second == "null") return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str()) return std::nullopt;
  return v;
}

std::string get_str(const Record& r, const char* key) {
  const auto it = r.find(key);
  return it != r.end() ? it->second : std::string();
}

}  // namespace ge::core::jsonscan
