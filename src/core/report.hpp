// Campaign report analysis: turn one or more schema-v2 JSONL run reports
// (the --report stream, possibly sharded across processes) into per-layer
// vulnerability tables, a ΔLoss distribution, and an SDC heatmap.
//
// Determinism contract: "trial" records are keyed by (site_index, trial)
// and folded into a sorted map — duplicates (a resumed run re-reporting a
// trial) collapse last-wins, and every aggregate is computed in ascending
// key order. The rendered tables are therefore byte-identical whether the
// trials came from one process or from any sharding of the same campaign.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ge::core {

/// Parse the JSONL reports at `paths` (merging shards), render the
/// campaign analytics tables to `out`. Parse diagnostics (file/record
/// counts, skipped lines) go to `err`. Throws io::IoError when a file is
/// unreadable, the run headers describe different campaigns, or no trial
/// records are found.
void render_campaign_report(const std::vector<std::string>& paths,
                            std::ostream& out, std::ostream& err);

}  // namespace ge::core
