#include "core/emulator.hpp"

#include <algorithm>
#include <stdexcept>

#include "formats/format_registry.hpp"
#include "nn/loss.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"
#include "tensor/tensor_view.hpp"

namespace ge::core {

Emulator::Emulator(nn::Module& model, EmulatorConfig cfg)
    : model_(&model), cfg_(std::move(cfg)) {
  if (!fmt::is_valid_spec(cfg_.format_spec)) {
    throw std::invalid_argument("Emulator: unknown format spec '" +
                                cfg_.format_spec + "'");
  }
  for (const auto& [path, spec] : cfg_.per_layer_specs) {
    if (!fmt::is_valid_spec(spec)) {
      throw std::invalid_argument("Emulator: unknown per-layer spec '" +
                                  spec + "' for layer '" + path + "'");
    }
  }
  attach();
}

namespace {
const std::string& spec_for(const EmulatorConfig& cfg,
                            const std::string& path) {
  const auto it = cfg.per_layer_specs.find(path);
  return it != cfg.per_layer_specs.end() ? it->second : cfg.format_spec;
}
}  // namespace

Emulator::~Emulator() { detach(); }

void Emulator::attach() {
  obs::Span span("emulator", "attach", cfg_.format_spec);
  // Path-indexed view of the weight-source tree, built once: find_module
  // walks the whole tree per call, which made sharing-attach O(sites x
  // modules) — campaigns construct one replica emulator per worker.
  std::unordered_map<std::string, nn::Module*> src_by_path;
  if (cfg_.weight_source != nullptr) {
    for (auto& [path, mod] : cfg_.weight_source->named_modules()) {
      src_by_path.emplace(path, mod);
    }
  }
  for (auto& [path, mod] : model_->named_modules()) {
    const bool selected =
        std::find(cfg_.layer_kinds.begin(), cfg_.layer_kinds.end(),
                  mod->kind()) != cfg_.layer_kinds.end();
    if (!selected) continue;

    LayerSite site;
    site.path = path;
    site.module = mod;
    site.act_format = fmt::make_format(spec_for(cfg_, path));

    if (cfg_.quantize_weights) {
      // Offline weight conversion: each parameter gets a fresh format
      // instance (its metadata belongs to that tensor). With a
      // weight_source, the source model's already-quantised tensors are
      // shared instead (O(1) — all replicas then reference one frozen
      // copy of the quantised weights).
      nn::Module* src_mod = nullptr;
      if (cfg_.weight_source != nullptr) {
        const auto it = src_by_path.find(path);
        src_mod = it != src_by_path.end() ? it->second : nullptr;
      }
      for (nn::Parameter* p : mod->local_parameters()) {
        if (p->name == "weight") {
          weight_saved_index_[path] = saved_weights_.size();
        }
        saved_weights_.emplace_back(p, p->value);
        if (src_mod != nullptr) {
          nn::Parameter* src = nullptr;
          for (nn::Parameter* q : src_mod->local_parameters()) {
            if (q->name == p->name) src = q;
          }
          if (src == nullptr || src->value.shape() != p->value.shape()) {
            throw std::invalid_argument(
                "Emulator: weight_source has no matching parameter '" +
                p->name + "' at '" + path + "'");
          }
          p->value = src->value;
        } else {
          // The saved FP32 share above forces the in-place quantiser to
          // detach onto a fresh buffer, so the original stays pristine.
          auto wfmt = fmt::make_format(spec_for(cfg_, path));
          wfmt->quantize_tensor_inplace(p->value);
        }
        frozen_quantized_.push_back(p->value);
      }
    }
    if (cfg_.quantize_activations) {
      // The GoldenEye hook: convert this layer's output tensor in place.
      // Index-based site lookup stays valid across the vector's growth.
      const size_t site_index = sites_.size();
      site.hook = mod->add_forward_hook(
          [this, site_index](nn::Module&, Tensor& y) {
            LayerSite& s = sites_[site_index];
            // Attribution before the span (reverse destruction order keeps
            // it live when the span ends): profiled time inside the hook
            // lands under (format, layer) in the attribution table.
            obs::AttrScope attr(cfg_.format_spec, s.path);
            obs::Span hook_span("emulator", "site", s.path);
            if (obs::metrics_enabled()) {
              // Metrics path: an O(1) shared snapshot keeps the
              // pre-quantisation activations (the in-place write detaches
              // via copy-on-write) so the per-layer error summary can
              // compare. The copy exists only while metrics are on; values
              // are never altered, so results match the plain path bitwise.
              const Tensor before = y;
              s.act_format->quantize_tensor_inplace(y);
              obs::record_layer_quant_error(s.path, before.cdata(),
                                            y.cdata(), y.numel(),
                                            s.act_format->abs_max());
            } else {
              // Addressed as a (whole-tensor) view: dense_full() routes to
              // the tensor kernel, so this is bitwise the classic path —
              // and the same call shape region-granular emulation uses.
              TensorView yview(y);
              s.act_format->quantize_view_inplace(yview);
            }
            if (post_quant_) post_quant_(s, y);
          });
    }
    site_index_[path] = sites_.size();
    sites_.push_back(std::move(site));
  }
}

void Emulator::detach() {
  obs::Span span("emulator", "detach", cfg_.format_spec);
  for (auto& s : sites_) {
    if (s.hook != 0 && s.module != nullptr) s.module->remove_hook(s.hook);
  }
  for (auto& [param, original] : saved_weights_) {
    param->value = original;
  }
  saved_weights_.clear();
  frozen_quantized_.clear();
  sites_.clear();
  site_index_.clear();
  weight_saved_index_.clear();
}

LayerSite* Emulator::site(const std::string& path) {
  const auto it = site_index_.find(path);
  return it != site_index_.end() ? &sites_[it->second] : nullptr;
}

const Tensor* Emulator::original_weight(const std::string& path) const {
  const auto it = weight_saved_index_.find(path);
  return it != weight_saved_index_.end() ? &saved_weights_[it->second].second
                                         : nullptr;
}

void Emulator::restore_weights(const std::string& path) {
  const auto it = weight_saved_index_.find(path);
  if (it == weight_saved_index_.end()) {
    throw std::invalid_argument("Emulator::restore_weights: no weight at '" +
                                path + "'");
  }
  // Re-share the frozen post-quantisation snapshot taken at attach time:
  // O(1), and bitwise identical to re-quantising the FP32 original (the
  // corrupting write detached onto a private copy, leaving it pristine).
  saved_weights_[it->second].first->value = frozen_quantized_[it->second];
}

float emulated_accuracy(nn::Module& model, const Tensor& images,
                        const std::vector<int64_t>& labels,
                        const std::string& format_spec) {
  model.eval();
  if (format_spec == "native") {
    return nn::accuracy(model(images), labels);
  }
  EmulatorConfig cfg;
  cfg.format_spec = format_spec;
  Emulator emu(model, cfg);
  return nn::accuracy(model(images), labels);
}

}  // namespace ge::core
