#include "core/dse.hpp"

#include <stdexcept>

#include "core/emulator.hpp"
#include "obs/telemetry.hpp"

namespace ge::core {

int64_t DseResult::passing_nodes() const {
  int64_t n = 0;
  for (const auto& node : nodes) {
    if (node.pass) ++n;
  }
  return n;
}

std::vector<std::pair<int, std::string>> bitwidth_ladder(
    const std::string& family) {
  if (family == "fp") {
    return {{32, "fp_e8m23"}, {16, "fp_e5m10"}, {12, "fp_e5m6"},
            {8, "fp_e4m3"},   {6, "fp_e3m2"},   {4, "fp_e2m1"}};
  }
  if (family == "afp") {
    return {{32, "afp_e8m23"}, {16, "afp_e5m10"}, {12, "afp_e5m6"},
            {8, "afp_e4m3"},   {6, "afp_e3m2"},   {4, "afp_e2m1"}};
  }
  if (family == "bfp") {
    // Per-element width (1 sign + m mantissa); shared 5-bit exponent per
    // 16-element block amortises to +5/16 bits.
    return {{16, "bfp_e5m15_b16"},
            {12, "bfp_e5m11_b16"},
            {8, "bfp_e5m7_b16"},
            {6, "bfp_e5m5_b16"},
            {4, "bfp_e5m3_b16"}};
  }
  if (family == "fxp") {
    return {{32, "fxp_1_15_16"}, {16, "fxp_1_7_8"}, {12, "fxp_1_5_6"},
            {8, "fxp_1_3_4"},    {6, "fxp_1_2_3"},  {4, "fxp_1_1_2"}};
  }
  if (family == "int") {
    return {{16, "int16"}, {12, "int12"}, {8, "int8"}, {6, "int6"},
            {4, "int4"}};
  }
  if (family == "posit") {
    return {{16, "posit_16_1"},
            {12, "posit_12_1"},
            {8, "posit_8_1"},
            {6, "posit_6_1"},
            {4, "posit_4_1"}};
  }
  throw std::invalid_argument("bitwidth_ladder: unknown family '" + family +
                              "'");
}

namespace {

/// Radix variants at a fixed total width, ordered from most range bits
/// (conservative) to fewest (aggressive). Returns (spec, range_bits).
std::vector<std::pair<std::string, int>> radix_ladder(
    const std::string& family, int width) {
  std::vector<std::pair<std::string, int>> out;
  if (family == "fp" || family == "afp") {
    const int max_e = std::min(8, width - 2);
    for (int e = max_e; e >= 2; --e) {
      const int m = width - 1 - e;
      if (m < 1 || m > 23) continue;
      out.emplace_back(family + "_e" + std::to_string(e) + "m" +
                           std::to_string(m),
                       e);
    }
  } else if (family == "bfp") {
    const int m = width - 1;
    for (int e = 8; e >= 2; --e) {
      out.emplace_back("bfp_e" + std::to_string(e) + "m" + std::to_string(m) +
                           "_b16",
                       e);
    }
  } else if (family == "fxp") {
    const int max_i = std::min(15, width - 2);
    for (int i = max_i; i >= 1; --i) {
      const int f = width - 1 - i;
      if (f < 1) continue;
      out.emplace_back(
          "fxp_1_" + std::to_string(i) + "_" + std::to_string(f), i);
    }
  } else if (family == "posit") {
    // es plays the radix role: more es = more range, less fraction
    for (int es = 3; es >= 0; --es) {
      out.emplace_back(
          "posit_" + std::to_string(width) + "_" + std::to_string(es),
          es + 1);
    }
  }
  // "int" has no radix dimension: empty ladder.
  return out;
}

}  // namespace

DseResult run_dse(nn::Module& model, const data::Batch& batch,
                  const DseConfig& cfg) {
  obs::Span dse_span("dse", "run_dse", cfg.family);
  DseResult result;
  {
    obs::Span baseline_span("dse", "baseline");
    result.baseline_accuracy =
        emulated_accuracy(model, batch.images, batch.labels, "native");
  }
  const float floor = result.baseline_accuracy - cfg.accuracy_drop_threshold;

  int next_id = 1;
  auto probe = [&](const std::string& spec, int width,
                   const std::string& phase) -> bool {
    obs::Span probe_span("dse", "probe", spec);
    DseNode node;
    node.id = next_id++;
    node.spec = spec;
    node.bitwidth = width;
    node.phase = phase;
    node.accuracy =
        emulated_accuracy(model, batch.images, batch.labels, spec);
    node.pass = node.accuracy >= floor;
    result.nodes.push_back(node);
    obs::log(1, "dse probe " + spec + " (" + phase +
                    "): acc=" + std::to_string(node.accuracy) +
                    (node.pass ? " PASS" : " fail"));
    return node.pass;
  };
  auto budget_left = [&] {
    return static_cast<int>(result.nodes.size()) < cfg.max_nodes;
  };

  // Phase 1 — binary descent over the bitwidth ladder.
  const auto ladder = bitwidth_ladder(cfg.family);
  const int K = static_cast<int>(ladder.size());
  // Root: the widest configuration must pass, else the family is rejected.
  if (!probe(ladder[0].second, ladder[0].first, "bitwidth")) {
    return result;  // no passing configuration; nodes record the evidence
  }
  int lo = 0;       // widest known-pass index
  int hi = K - 1;   // narrowest candidate
  while (lo < hi && budget_left()) {
    const int mid = (lo + hi + 1) / 2;  // bias narrow: aggressive descent
    if (probe(ladder[mid].second, ladder[mid].first, "bitwidth")) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  result.best_spec = ladder[static_cast<size_t>(lo)].second;
  result.best_bitwidth = ladder[static_cast<size_t>(lo)].first;

  // Phase 2 — binary descent over the radix ladder at the chosen width
  // (skip index 0: it is the phase-1 winner or its sibling).
  const auto radixes = radix_ladder(cfg.family, result.best_bitwidth);
  if (!radixes.empty()) {
    int rlo = -1;                               // most-aggressive known pass
    int rhi = static_cast<int>(radixes.size()) - 1;
    int known_pass = -1;
    // The ladder is ordered conservative -> aggressive; find the largest
    // index (fewest range bits) that still passes.
    int a = 0, b = rhi;
    while (a <= b && budget_left()) {
      const int mid = (a + b + 1) / 2;
      if (probe(radixes[static_cast<size_t>(mid)].first,
                result.best_bitwidth, "radix")) {
        known_pass = mid;
        a = mid + 1;
      } else {
        b = mid - 1;
      }
    }
    if (known_pass >= 0) {
      result.best_spec = radixes[static_cast<size_t>(known_pass)].first;
    }
    (void)rlo;
  }

  // Final accuracy of the selected spec (reuse a recorded node).
  for (const auto& n : result.nodes) {
    if (n.spec == result.best_spec) result.best_accuracy = n.accuracy;
  }
  return result;
}

}  // namespace ge::core
