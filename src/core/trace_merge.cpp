#include "core/trace_merge.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "core/json_scan.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"

namespace ge::core {

namespace {

struct ParsedEvent {
  std::string name;
  std::string cat;
  int tid = 0;
  double ts_us = 0.0;   ///< file-local (steady clock) microseconds
  double dur_us = 0.0;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
};

struct ParsedFile {
  TraceProcess proc;
  std::vector<ParsedEvent> events;
};

uint64_t fnv1a_bytes(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// Raw token of a top-level field, parsed as an integer (jsonscan keeps
/// numbers as raw text, so 64-bit values survive intact).
int64_t raw_int(const jsonscan::Record& r, const char* key) {
  const auto it = r.find(key);
  if (it == r.end()) return 0;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

uint64_t hex_id(const jsonscan::Record& r, const char* key) {
  const auto it = r.find(key);
  if (it == r.end()) return 0;
  return std::strtoull(it->second.c_str(), nullptr, 16);
}

ParsedFile parse_trace_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    throw std::runtime_error("trace merge: cannot read '" + path + "'");
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  const std::string content = buf.str();

  ParsedFile out;
  out.proc.content_hash = fnv1a_bytes(content);
  bool saw_meta = false;

  size_t pos = 0;
  while (pos <= content.size()) {
    size_t nl = content.find('\n', pos);
    if (nl == std::string::npos) nl = content.size();
    std::string line = content.substr(pos, nl - pos);
    pos = nl + 1;
    while (!line.empty() && (line.back() == ',' || line.back() == '\r')) {
      line.pop_back();
    }
    if (line.empty() || line[0] != '{' || line == "{\"traceEvents\":[") {
      continue;
    }
    const auto rec = jsonscan::parse_record(line);
    if (!rec.has_value()) continue;
    const std::string ph = jsonscan::get_str(*rec, "ph");
    if (ph == "M") {
      const std::string label = jsonscan::get_str(*rec, "process_label");
      if (!label.empty()) {
        out.proc.label = label;
        out.proc.epoch_unix_ns = raw_int(*rec, "epoch_unix_ns");
        saw_meta = true;
      }
      continue;
    }
    if (ph != "X") continue;
    ParsedEvent e;
    e.name = jsonscan::get_str(*rec, "name");
    e.cat = jsonscan::get_str(*rec, "cat");
    e.tid = static_cast<int>(raw_int(*rec, "tid"));
    e.ts_us = jsonscan::get_num(*rec, "ts").value_or(0.0);
    e.dur_us = jsonscan::get_num(*rec, "dur").value_or(0.0);
    e.trace_id = hex_id(*rec, "trace_id");
    e.span_id = hex_id(*rec, "span_id");
    e.parent_span_id = hex_id(*rec, "parent_span_id");
    out.events.push_back(std::move(e));
  }
  if (!saw_meta) {
    throw std::runtime_error("trace merge: '" + path +
                             "' has no goldeneye_trace_meta event (not a "
                             "--trace output?)");
  }
  out.proc.event_count = static_cast<int64_t>(out.events.size());
  return out;
}

/// One event placed on the merged timeline.
struct MergedEvent {
  const ParsedEvent* ev = nullptr;
  int pid = 0;            ///< 1-based process index in merge order
  double ts_us = 0.0;     ///< rebased shared-axis microseconds
};

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char u[8];
          std::snprintf(u, sizeof(u), "\\u%04x", c);
          out += u;
        } else {
          out += c;
        }
    }
  }
}

/// Span names render as "name(detail)"; attribution groups on the base
/// name so "execute(campaign_3)" and "worker_lease(0-25)" aggregate.
bool name_is(const std::string& name, const char* base) {
  const size_t n = std::char_traits<char>::length(base);
  if (name.compare(0, n, base) != 0) return false;
  return name.size() == n || name[n] == '(';
}

std::string fmt_ms(double us) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%10.3f ms", us / 1000.0);
  return buf;
}

}  // namespace

TraceMergeResult merge_trace_files(const std::vector<std::string>& paths) {
  if (paths.empty()) {
    throw std::runtime_error("trace merge: no input files");
  }
  std::vector<ParsedFile> files;
  files.reserve(paths.size());
  for (const std::string& p : paths) files.push_back(parse_trace_file(p));

  // Deterministic process order — a function of file *content* only, so
  // the merged output is byte-identical under any argv ordering.
  std::sort(files.begin(), files.end(),
            [](const ParsedFile& a, const ParsedFile& b) {
              return std::tie(a.proc.label, a.proc.epoch_unix_ns,
                              a.proc.content_hash) <
                     std::tie(b.proc.label, b.proc.epoch_unix_ns,
                              b.proc.content_hash);
            });

  TraceMergeResult result;

  // Shared axis: rebase every event to wall-clock microseconds relative to
  // the earliest process epoch, then shift so the first event lands at 0.
  // Offsets stay small (runs are seconds), so double precision holds.
  int64_t base_epoch = files[0].proc.epoch_unix_ns;
  for (const ParsedFile& f : files) {
    base_epoch = std::min(base_epoch, f.proc.epoch_unix_ns);
  }
  std::vector<MergedEvent> merged;
  for (size_t i = 0; i < files.size(); ++i) {
    result.processes.push_back(files[i].proc);
    const double epoch_off_us =
        static_cast<double>(files[i].proc.epoch_unix_ns - base_epoch) / 1000.0;
    for (const ParsedEvent& e : files[i].events) {
      MergedEvent m;
      m.ev = &e;
      m.pid = static_cast<int>(i) + 1;
      m.ts_us = e.ts_us + epoch_off_us;
      merged.push_back(m);
    }
  }
  double base_ts = merged.empty() ? 0.0 : merged[0].ts_us;
  for (const MergedEvent& m : merged) base_ts = std::min(base_ts, m.ts_us);
  for (MergedEvent& m : merged) m.ts_us -= base_ts;

  // Total order on every field: ties cannot reintroduce input-order
  // dependence.
  std::sort(merged.begin(), merged.end(),
            [](const MergedEvent& a, const MergedEvent& b) {
              return std::tie(a.ts_us, b.ev->dur_us, a.pid, a.ev->tid,
                              a.ev->name, a.ev->span_id) <
                     std::tie(b.ts_us, a.ev->dur_us, b.pid, b.ev->tid,
                              b.ev->name, b.ev->span_id);
            });
  result.event_count = static_cast<int64_t>(merged.size());

  // --- merged Chrome JSON ---------------------------------------------------
  char num[64];
  std::string& json = result.chrome_json;
  json = "{\"traceEvents\":[";
  for (size_t i = 0; i < result.processes.size(); ++i) {
    json += i == 0 ? "\n" : ",\n";
    json += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    std::snprintf(num, sizeof(num), "%d", static_cast<int>(i) + 1);
    json += num;
    json += ",\"tid\":0,\"args\":{\"name\":\"";
    append_escaped(json, result.processes[i].label);
    json += "\"}}";
  }
  for (const MergedEvent& m : merged) {
    json += ",\n{\"name\":\"";
    append_escaped(json, m.ev->name);
    json += "\",\"cat\":\"";
    append_escaped(json, m.ev->cat);
    std::snprintf(num, sizeof(num), "\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d",
                  m.pid, m.ev->tid);
    json += num;
    std::snprintf(num, sizeof(num), ",\"ts\":%.3f,\"dur\":%.3f", m.ts_us,
                  m.ev->dur_us);
    json += num;
    if (m.ev->trace_id != 0) {
      std::snprintf(num, sizeof(num), ",\"trace_id\":\"%016llx\"",
                    static_cast<unsigned long long>(m.ev->trace_id));
      json += num;
      std::snprintf(num, sizeof(num), ",\"span_id\":\"%016llx\"",
                    static_cast<unsigned long long>(m.ev->span_id));
      json += num;
      std::snprintf(num, sizeof(num), ",\"parent_span_id\":\"%016llx\"",
                    static_cast<unsigned long long>(m.ev->parent_span_id));
      json += num;
    }
    json += '}';
  }
  json += "\n],\"displayTimeUnit\":\"ms\"}";

  // --- per-trace attribution ------------------------------------------------
  // For each propagated trace: the submit root span is total wall time; the
  // server's queue_wait and execute spans partition the service side, worker
  // leases overlap execute, and what the root covers beyond queue + execute
  // is protocol/stream-back overhead.
  struct TraceAgg {
    const ParsedEvent* root = nullptr;
    int root_pid = 0;
    double queue_wait_us = 0.0;
    double execute_us = 0.0;
    double worker_lease_us = 0.0;
    int64_t worker_leases = 0;
    int64_t span_count = 0;
  };
  std::map<uint64_t, TraceAgg> traces;
  for (const MergedEvent& m : merged) {
    if (m.ev->trace_id == 0) continue;
    TraceAgg& t = traces[m.ev->trace_id];
    ++t.span_count;
    if (m.ev->parent_span_id == 0 &&
        (t.root == nullptr || m.ev->dur_us > t.root->dur_us)) {
      t.root = m.ev;
      t.root_pid = m.pid;
    }
    if (name_is(m.ev->name, "queue_wait")) t.queue_wait_us += m.ev->dur_us;
    if (name_is(m.ev->name, "execute")) t.execute_us += m.ev->dur_us;
    if (name_is(m.ev->name, "worker_lease") ||
        name_is(m.ev->name, "lease_execute")) {
      t.worker_lease_us += m.ev->dur_us;
      ++t.worker_leases;
    }
  }
  result.trace_count = static_cast<int64_t>(traces.size());

  std::string& attr = result.attribution;
  for (const auto& [id, t] : traces) {
    std::snprintf(num, sizeof(num), "trace %016llx",
                  static_cast<unsigned long long>(id));
    attr += num;
    std::snprintf(num, sizeof(num), "  (%lld spans)\n",
                  static_cast<long long>(t.span_count));
    attr += num;
    if (t.root == nullptr) {
      attr += "  (no root span in the merged set)\n";
      continue;
    }
    const std::string& root_label =
        result.processes[static_cast<size_t>(t.root_pid - 1)].label;
    attr += "  root         " + fmt_ms(t.root->dur_us) + "  " + t.root->name +
            " @" + root_label + "\n";
    attr += "  queue_wait   " + fmt_ms(t.queue_wait_us) + "\n";
    attr += "  execute      " + fmt_ms(t.execute_us) + "\n";
    std::snprintf(num, sizeof(num), "  across %lld lease(s)",
                  static_cast<long long>(t.worker_leases));
    attr += "  leases       " + fmt_ms(t.worker_lease_us) + num + "\n";
    const double stream_back_us = std::max(
        0.0, t.root->dur_us - t.queue_wait_us - t.execute_us);
    attr += "  stream_back  " + fmt_ms(stream_back_us) + "\n";
  }
  if (traces.empty()) {
    attr += "(no propagated trace ids in the merged files)\n";
  }

  // --- collapsed stacks over the merged timeline ----------------------------
  // Threads remapped to process-unique ids so obs::collapsed_stacks never
  // interleaves spans from different processes on one reconstructed stack.
  std::vector<obs::TraceEvent> flat;
  flat.reserve(merged.size());
  for (const MergedEvent& m : merged) {
    obs::TraceEvent e;
    e.name = m.ev->name;
    e.tid = m.pid * 100000 + m.ev->tid;
    e.start_ns = static_cast<int64_t>(std::llround(m.ts_us * 1000.0));
    e.dur_ns = static_cast<int64_t>(std::llround(m.ev->dur_us * 1000.0));
    flat.push_back(std::move(e));
  }
  result.collapsed = obs::collapsed_stacks(flat);
  return result;
}

}  // namespace ge::core
