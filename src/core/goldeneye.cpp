#include "core/goldeneye.hpp"

#include <algorithm>

#include "formats/format_registry.hpp"

namespace ge::core {

GoldenEye::GoldenEye(nn::Module& model, const data::SyntheticVision& data)
    : model_(&model), data_(&data) {}

data::Batch GoldenEye::eval_batch(int64_t max_samples) const {
  const int64_t n = max_samples < 0
                        ? data_->test().size()
                        : std::min<int64_t>(max_samples, data_->test().size());
  return data::take(data_->test(), 0, n);
}

float GoldenEye::baseline_accuracy(int64_t max_samples) {
  const auto b = eval_batch(max_samples);
  return emulated_accuracy(*model_, b.images, b.labels, "native");
}

float GoldenEye::format_accuracy(const std::string& spec,
                                 int64_t max_samples) {
  const auto b = eval_batch(max_samples);
  return emulated_accuracy(*model_, b.images, b.labels, spec);
}

CampaignResult GoldenEye::campaign(const CampaignConfig& cfg,
                                   int64_t batch_size) {
  const auto b = eval_batch(batch_size);
  return run_campaign(*model_, b, cfg);
}

DseResult GoldenEye::dse(const DseConfig& cfg, int64_t max_samples) {
  const auto b = eval_batch(max_samples);
  return run_dse(*model_, b, cfg);
}

std::vector<std::string> GoldenEye::instrumented_layers(
    const std::string& spec) {
  EmulatorConfig cfg;
  cfg.format_spec = spec;
  Emulator emu(*model_, cfg);
  std::vector<std::string> out;
  for (const auto& s : emu.sites()) out.push_back(s.path);
  return out;
}

RangeRow dynamic_range_row(const std::string& spec,
                           const std::string& label) {
  const auto f = fmt::make_format(spec);
  RangeRow r;
  r.label = label.empty() ? spec : label;
  r.abs_max = f->abs_max();
  r.abs_min = f->abs_min();
  r.range_db = f->dynamic_range_db();
  return r;
}

std::vector<RangeRow> table1_rows() {
  // Paper order. INT rows report magnitudes in code units (min nonzero
  // code = 1), matching the paper's dB values; the AFP row sits at the
  // standard bias ("movable range").
  return {
      dynamic_range_row("fp_e8m23", "FP32 w/ DN"),
      dynamic_range_row("fp_e8m23_nodn", "FP32 w/o DN"),
      dynamic_range_row("fxp_1_15_16", "FxP (1,15,16)"),
      dynamic_range_row("fp_e5m10", "FP16 w/ DN"),
      dynamic_range_row("fp_e5m10_nodn", "FP16 w/o DN"),
      dynamic_range_row("fp_e8m7", "BFloat16 w/ DN"),
      dynamic_range_row("fp_e8m7_nodn", "BFloat16 w/o DN"),
      dynamic_range_row("int16", "INT16 (symmetric)"),
      dynamic_range_row("int8", "INT8 (symmetric)"),
      dynamic_range_row("fp_e4m3", "FP8 (e4m3) w/ DN"),
      dynamic_range_row("fp_e4m3_nodn", "FP8 (e4m3) w/o DN"),
      dynamic_range_row("afp_e4m3", "AFP8 (e4m3) w/o DN"),
  };
}

std::vector<ToolFeature> table2_features() {
  return {
      {"Floating Point (FP)", true, true, true},
      {"Fixed Point (FxP)", true, false, true},
      {"Integer Quantization (INT)", true, false, false},
      {"Block Floating Point (BFP)", true, false, true},
      {"Adaptive Float (AFP)", true, false, false},
      {"Future number format support", true, false, false},
      {"Error injections in values", true, true, false},
      {"Error injections in metadata", true, false, false},
      {"Error metric: mismatch", true, true, false},
      {"Error metric: delta-loss", true, false, false},
  };
}

}  // namespace ge::core
