// Injector: single- and multi-bit fault injection into a format-emulated
// model — GoldenEye's dependability engine (§III-B, §IV-C).
//
// Three injection sites:
//  - ActivationValue: flip bit(s) of one activation element's format-domain
//    bit pattern at a chosen layer (encode -> flip -> decode, the paper's
//    Method 3 / flip / Method 4 routine), applied through the emulator's
//    post-quantisation callback during the next forward pass;
//  - WeightValue: the same routine on one (already format-quantised)
//    weight element, applied offline when armed and undone on disarm;
//  - Metadata: flip bit(s) inside a hardware metadata register (INT scale,
//    BFP shared exponent, AFP exponent bias) and re-decode the layer's
//    whole activation tensor under the corrupted register — the paper's
//    headline hardware-aware capability.
#pragma once

#include <optional>
#include <string>

#include "core/emulator.hpp"
#include "tensor/rng.hpp"

namespace ge::core {

enum class InjectionSite { kActivationValue, kWeightValue, kMetadata };

/// Fault model applied to each selected bit (§IV-C "different error
/// models"). The first three are the classic single-element models:
/// transient flip, or a stuck-at fault pinning the bit. The rest form the
/// error-model zoo — activation-site only, all perturbations are flips:
///  - kBerUniform: every bit of every element of the layer's activation
///    tensor flips independently with probability `ber`;
///  - kBurst: a contiguous run of `burst_len` bits flips inside one
///    element's word (SEU upsetting adjacent cells);
///  - kRowBurst / kChannel: every element of one randomly drawn row /
///    channel slice is hit with the same chosen bits (a shared bus or
///    channel-wide datapath fault), optionally thinned per element by
///    `ber` when it is > 0.
/// Enum order is persisted in campaign checkpoints — append only.
enum class ErrorModel {
  kBitFlip,
  kStuckAt0,
  kStuckAt1,
  kBerUniform,
  kBurst,
  kRowBurst,
  kChannel,
};

/// True for the zoo models (everything past the classic stuck-at trio).
constexpr bool is_zoo_model(ErrorModel m) {
  return m >= ErrorModel::kBerUniform;
}

const char* to_string(InjectionSite site);
const char* to_string(ErrorModel model);

struct InjectionSpec {
  std::string layer_path;  ///< instrumented layer to target
  InjectionSite site = InjectionSite::kActivationValue;
  ErrorModel model = ErrorModel::kBitFlip;
  /// Flat tensor index; -1 = uniform random. For kRowBurst/kChannel this
  /// selects the row/channel index instead of an element.
  int64_t element = -1;
  int bit = -1;                ///< bit position (0 = LSB); -1 = random
  int num_bits = 1;            ///< >1 perturbs several distinct random bits
  std::string metadata_field;  ///< empty = the format's first field
  int64_t metadata_index = -1; ///< register index; -1 = random
  /// kBerUniform: per-bit flip probability, required in (0, 1].
  /// kRowBurst/kChannel: optional per-element thinning probability in
  /// [0, 1]; 0 hits every element of the region. Ignored otherwise.
  double ber = 0.0;
  int burst_len = 2;           ///< kBurst: contiguous bits flipped
};

/// What an armed injection actually did (resolved random choices).
struct InjectionRecord {
  std::string layer_path;
  InjectionSite site = InjectionSite::kActivationValue;
  ErrorModel model = ErrorModel::kBitFlip;
  std::string error_model;    ///< to_string(model), ready for run logs
  int64_t element = -1;       ///< first affected element (storage index)
  std::vector<int> bits;      ///< bits perturbed on the first element
  std::string metadata_field;
  int64_t metadata_index = -1;
  float value_before = 0.0f;  ///< corrupted element / register decode
  float value_after = 0.0f;
  int64_t affected = 0;       ///< elements whose value was perturbed
};

class Injector {
 public:
  /// Owns the emulator's post-quant slot while alive.
  Injector(Emulator& emulator, uint64_t seed);
  ~Injector();

  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  /// Schedule one injection: activation/metadata specs fire during the
  /// next forward pass through the target layer; weight specs are applied
  /// immediately. Throws if the layer is not instrumented or the spec is
  /// inconsistent (e.g. metadata on a metadata-less format).
  void arm(const InjectionSpec& spec);

  /// Like arm(), but every random choice this injection makes (element,
  /// bit positions, register index) draws from `trial_rng` instead of the
  /// injector's own stream. Campaigns pass Rng::child(trial_id) here so a
  /// trial's outcome depends only on its id, not on how many trials ran
  /// before it — the property that lets trials run on any thread in any
  /// order and still reproduce the serial results bitwise.
  void arm(const InjectionSpec& spec, const Rng& trial_rng);

  /// Multi-point trial (multi-site batched campaigns): arm `specs[0]` as
  /// the primary fault plus the rest as companions, all drawing their
  /// random choices from `trial_rng` in arming order at fire time. One
  /// forward pass then carries every fault; activation/metadata specs fire
  /// as their layers are reached (network order), weight specs apply
  /// immediately and are all undone on disarm. Specs must target distinct
  /// layers. fired()/last_record() describe the primary; records() lists
  /// every fault applied so far in firing order.
  void arm_multi(const std::vector<InjectionSpec>& specs,
                 const Rng& trial_rng);

  /// Cancel pending injections and undo any weight corruption.
  void disarm();

  /// True once the armed primary injection has been applied.
  bool fired() const noexcept { return !faults_.empty() && faults_[0].fired; }

  /// Details of the last applied primary injection.
  const std::optional<InjectionRecord>& last_record() const noexcept {
    return record_;
  }

  /// Every fault the current arming has applied, in firing order (weight
  /// faults first — they fire at arm time — then hook faults in network
  /// order). Cleared by the next arm()/arm_multi().
  const std::vector<InjectionRecord>& records() const noexcept {
    return records_;
  }

 private:
  /// One armed fault: its spec and whether it has been applied yet.
  struct ArmedFault {
    InjectionSpec spec;
    bool fired = false;
  };

  void arm_impl(std::vector<InjectionSpec> specs);
  InjectionRecord apply_activation(const InjectionSpec& spec,
                                   LayerSite& site, Tensor& y);
  InjectionRecord apply_ber(const InjectionSpec& spec, LayerSite& site,
                            Tensor& y);
  InjectionRecord apply_burst(const InjectionSpec& spec, LayerSite& site,
                              Tensor& y);
  InjectionRecord apply_region(const InjectionSpec& spec, LayerSite& site,
                               Tensor& y);
  InjectionRecord apply_metadata(const InjectionSpec& spec, LayerSite& site,
                                 Tensor& y);
  InjectionRecord apply_weight(const InjectionSpec& spec, LayerSite& site);
  /// Apply one armed fault (y may be null for weight faults, which never
  /// touch an activation tensor) and append its record.
  void fire(ArmedFault& fault, size_t index, LayerSite& site, Tensor* y);
  std::vector<int> choose_bits(int width, int requested_bit, int count);
  /// Apply `model` to the chosen bits of `bits`.
  void perturb(fmt::BitString& bits, ErrorModel model,
               const std::vector<int>& chosen) const;
  /// The stream random choices draw from: the per-trial override when one
  /// was armed, the injector's own stream otherwise.
  Rng& draw_rng() { return trial_rng_ ? *trial_rng_ : rng_; }

  Emulator* emulator_;
  Rng rng_;
  std::optional<Rng> trial_rng_;
  std::vector<ArmedFault> faults_;  ///< [0] is the primary
  std::optional<InjectionRecord> record_;
  std::vector<InjectionRecord> records_;
  std::vector<std::string> corrupted_weight_paths_;
};

}  // namespace ge::core
