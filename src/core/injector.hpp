// Injector: single- and multi-bit fault injection into a format-emulated
// model — GoldenEye's dependability engine (§III-B, §IV-C).
//
// Three injection sites:
//  - ActivationValue: flip bit(s) of one activation element's format-domain
//    bit pattern at a chosen layer (encode -> flip -> decode, the paper's
//    Method 3 / flip / Method 4 routine), applied through the emulator's
//    post-quantisation callback during the next forward pass;
//  - WeightValue: the same routine on one (already format-quantised)
//    weight element, applied offline when armed and undone on disarm;
//  - Metadata: flip bit(s) inside a hardware metadata register (INT scale,
//    BFP shared exponent, AFP exponent bias) and re-decode the layer's
//    whole activation tensor under the corrupted register — the paper's
//    headline hardware-aware capability.
#pragma once

#include <optional>
#include <string>

#include "core/emulator.hpp"
#include "tensor/rng.hpp"

namespace ge::core {

enum class InjectionSite { kActivationValue, kWeightValue, kMetadata };

/// Fault model applied to each selected bit (§IV-C "different error
/// models"): transient flip, or a stuck-at fault pinning the bit.
enum class ErrorModel { kBitFlip, kStuckAt0, kStuckAt1 };

const char* to_string(InjectionSite site);
const char* to_string(ErrorModel model);

struct InjectionSpec {
  std::string layer_path;  ///< instrumented layer to target
  InjectionSite site = InjectionSite::kActivationValue;
  ErrorModel model = ErrorModel::kBitFlip;
  int64_t element = -1;        ///< flat tensor index; -1 = uniform random
  int bit = -1;                ///< bit position (0 = LSB); -1 = random
  int num_bits = 1;            ///< >1 perturbs several distinct random bits
  std::string metadata_field;  ///< empty = the format's first field
  int64_t metadata_index = -1; ///< register index; -1 = random
};

/// What an armed injection actually did (resolved random choices).
struct InjectionRecord {
  std::string layer_path;
  InjectionSite site = InjectionSite::kActivationValue;
  ErrorModel model = ErrorModel::kBitFlip;
  int64_t element = -1;
  std::vector<int> bits;
  std::string metadata_field;
  int64_t metadata_index = -1;
  float value_before = 0.0f;  ///< corrupted element / register decode
  float value_after = 0.0f;
};

class Injector {
 public:
  /// Owns the emulator's post-quant slot while alive.
  Injector(Emulator& emulator, uint64_t seed);
  ~Injector();

  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  /// Schedule one injection: activation/metadata specs fire during the
  /// next forward pass through the target layer; weight specs are applied
  /// immediately. Throws if the layer is not instrumented or the spec is
  /// inconsistent (e.g. metadata on a metadata-less format).
  void arm(const InjectionSpec& spec);

  /// Like arm(), but every random choice this injection makes (element,
  /// bit positions, register index) draws from `trial_rng` instead of the
  /// injector's own stream. Campaigns pass Rng::child(trial_id) here so a
  /// trial's outcome depends only on its id, not on how many trials ran
  /// before it — the property that lets trials run on any thread in any
  /// order and still reproduce the serial results bitwise.
  void arm(const InjectionSpec& spec, const Rng& trial_rng);

  /// Cancel a pending injection and undo any weight corruption.
  void disarm();

  /// True once the armed injection has been applied in a forward pass.
  bool fired() const noexcept { return fired_; }

  /// Details of the last applied injection.
  const std::optional<InjectionRecord>& last_record() const noexcept {
    return record_;
  }

 private:
  void arm_impl(const InjectionSpec& spec);
  void apply_activation(LayerSite& site, Tensor& y);
  void apply_metadata(LayerSite& site, Tensor& y);
  void apply_weight(LayerSite& site);
  std::vector<int> choose_bits(int width, int requested_bit, int count);
  /// Apply the armed error model to the chosen bits of `bits`.
  void perturb(fmt::BitString& bits, const std::vector<int>& chosen) const;
  /// The stream random choices draw from: the per-trial override when one
  /// was armed, the injector's own stream otherwise.
  Rng& draw_rng() { return trial_rng_ ? *trial_rng_ : rng_; }

  Emulator* emulator_;
  Rng rng_;
  std::optional<Rng> trial_rng_;
  std::optional<InjectionSpec> armed_;
  std::optional<InjectionRecord> record_;
  bool fired_ = false;
  bool weight_corrupted_ = false;
  std::string corrupted_weight_path_;
};

}  // namespace ge::core
