#include "core/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <ostream>
#include <tuple>
#include <utility>

#include "core/json_scan.hpp"
#include "io/container.hpp"

namespace ge::core {

namespace {

using jsonscan::Record;
using jsonscan::get_num;
using jsonscan::get_str;
using jsonscan::parse_record;

// --- the merged trial set --------------------------------------------------

struct TrialRow {
  std::string layer;
  std::string error_model;
  int64_t bit = -1;
  int64_t affected = -1;  ///< elements the fault perturbed (-1 = unknown)
  double delta_loss = 0.0;
  double max_delta_loss = 0.0;
  bool sdc = false;
};

/// Config echo from run_header rows: shards of one campaign must agree on
/// these (threads / resumed / command deliberately excluded — they vary
/// between equivalent runs and must not affect the rendered bytes).
struct HeaderEcho {
  std::string format;
  std::string model;
  std::string seed;
  std::string samples;
  bool set = false;
};

/// Nearest-rank percentile of an ascending-sorted vector.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  rank = std::clamp<size_t>(rank, 1, sorted.size());
  return sorted[rank - 1];
}

}  // namespace

void render_campaign_report(const std::vector<std::string>& paths,
                            std::ostream& out, std::ostream& err) {
  // (site_index, trial, error_model) -> row. std::map gives last-wins
  // dedupe AND a deterministic ascending aggregation order, the two
  // properties that make sharded and single-process reports render
  // byte-identically. The error model is part of the key: shards of one
  // campaign carry the same model string (so dedupe still collapses
  // re-runs of a trial), while merged reports over campaigns that differ
  // only in error model keep every trial.
  std::map<std::tuple<uint64_t, int64_t, std::string>, TrialRow> trials;
  HeaderEcho header;
  size_t skipped = 0;
  // Schema-v2 "service" events (server RunLogs only): counted by kind so a
  // served campaign's report surfaces fleet health — stragglers flagged,
  // leases reclaimed — next to the result tables. Offline reports carry no
  // service rows and render exactly as before.
  std::map<std::string, int64_t> service_kinds;

  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) {
      throw io::IoError("report: cannot open '" + path + "'");
    }
    size_t lines = 0, used = 0;
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      ++lines;
      const auto rec = parse_record(line);
      if (!rec) {
        ++skipped;
        continue;
      }
      const std::string type = get_str(*rec, "type");
      if (type == "run_header") {
        HeaderEcho h;
        h.format = get_str(*rec, "format");
        h.model = get_str(*rec, "model");
        h.seed = get_str(*rec, "seed");
        h.samples = get_str(*rec, "samples");
        h.set = true;
        if (!header.set) {
          header = h;
        } else if (h.format != header.format || h.model != header.model ||
                   h.seed != header.seed || h.samples != header.samples) {
          throw io::IoError(
              "report: '" + path +
              "' belongs to a different campaign (run_header disagrees on "
              "format/model/seed/samples)");
        }
        ++used;
        continue;
      }
      if (type == "service") {
        const std::string kind = get_str(*rec, "kind");
        ++service_kinds[kind.empty() ? "?" : kind];
        ++used;
        continue;
      }
      if (type != "trial") continue;
      const auto site_index = get_num(*rec, "site_index");
      const auto trial = get_num(*rec, "trial");
      if (!site_index || !trial) {
        ++skipped;
        continue;
      }
      TrialRow row;
      row.layer = get_str(*rec, "layer");
      row.error_model = get_str(*rec, "error_model");
      row.bit = static_cast<int64_t>(get_num(*rec, "bit").value_or(-1.0));
      row.affected =
          static_cast<int64_t>(get_num(*rec, "affected").value_or(-1.0));
      row.delta_loss = get_num(*rec, "delta_loss").value_or(0.0);
      row.max_delta_loss = get_num(*rec, "max_delta_loss").value_or(0.0);
      row.sdc = get_str(*rec, "class") == "sdc";
      const std::string em = row.error_model;
      trials[{static_cast<uint64_t>(*site_index),
              static_cast<int64_t>(*trial), em}] = std::move(row);
      ++used;
    }
    err << "report: " << path << ": " << used << " of " << lines
        << " records used\n";
  }
  if (skipped > 0) {
    err << "report: skipped " << skipped << " unparseable record(s)\n";
  }
  char buf[256];
  const auto render_service_events = [&] {
    if (service_kinds.empty()) return;
    out << "service events\n";
    for (const auto& [kind, n] : service_kinds) {
      std::snprintf(buf, sizeof(buf), "  %-24s %7lld\n", kind.c_str(),
                    static_cast<long long>(n));
      out << buf;
    }
    out << "\n";
  };

  if (trials.empty()) {
    // An empty campaign (zero trials, or a log holding only headers and
    // heartbeats) is a legitimate input, not an error: render an explicit
    // note and succeed, so `campaign ... && report ...` pipelines don't
    // fail on configurations that select no fault sites. A serve daemon's
    // own --report is the common case here — trial rows stream to the
    // submit clients, but its fleet-health observations still render.
    out << "campaign report\n";
    render_service_events();
    out << "  no trial records found (run the campaign with --report FILE "
           "to produce them)\n";
    return;
  }

  // --- per-layer aggregation (ascending site_index, then trial) ------------
  struct LayerAgg {
    std::string path;
    int64_t count = 0;
    int64_t sdc = 0;
    double sum_delta = 0.0;
    double max_delta = 0.0;
    std::vector<double> deltas;
    std::map<int64_t, std::pair<int64_t, int64_t>> bits;  // bit -> {n, sdc}
  };
  std::map<uint64_t, LayerAgg> layers;
  for (const auto& [key, row] : trials) {
    LayerAgg& a = layers[std::get<0>(key)];
    a.path = row.layer;
    ++a.count;
    if (row.sdc) ++a.sdc;
    a.sum_delta += row.delta_loss;
    a.max_delta = std::max(a.max_delta, row.max_delta_loss);
    a.deltas.push_back(row.delta_loss);
    if (row.bit >= 0) {
      auto& [n, s] = a.bits[row.bit];
      ++n;
      if (row.sdc) ++s;
    }
  }

  out << "campaign report\n";
  if (header.set) {
    out << "  format: " << header.format << "  model: " << header.model
        << "  seed: " << header.seed << "  samples: " << header.samples
        << "\n";
  }
  out << "  trials: " << trials.size() << "  layers: " << layers.size()
      << "\n\n";

  render_service_events();

  // --- layer vulnerability table -------------------------------------------
  out << "layer vulnerability\n";
  std::snprintf(buf, sizeof(buf), "%-28s %7s %6s %7s %12s %10s %10s %10s\n",
                "layer", "trials", "SDC", "SDC%", "mean dLoss", "p50", "p95",
                "max");
  out << buf;
  for (const auto& [si, a] : layers) {
    std::vector<double> sorted = a.deltas;
    std::sort(sorted.begin(), sorted.end());
    const double mean =
        a.count > 0 ? a.sum_delta / static_cast<double>(a.count) : 0.0;
    const double sdc_pct =
        a.count > 0
            ? 100.0 * static_cast<double>(a.sdc) / static_cast<double>(a.count)
            : 0.0;
    std::snprintf(buf, sizeof(buf),
                  "%-28s %7lld %6lld %6.1f%% %12.5f %10.5f %10.5f %10.5f\n",
                  a.path.c_str(), static_cast<long long>(a.count),
                  static_cast<long long>(a.sdc), sdc_pct, mean,
                  percentile(sorted, 0.50), percentile(sorted, 0.95),
                  a.max_delta);
    out << buf;
  }
  out << "\n";

  // --- per-error-model vulnerability ---------------------------------------
  // Splits the same trial set by the error model that produced each trial,
  // so campaigns merged across models (flip vs BER vs channel) render one
  // comparison table. std::map keying gives deterministic model order.
  struct ModelAgg {
    int64_t count = 0;
    int64_t sdc = 0;
    double sum_delta = 0.0;
    double max_delta = 0.0;
    int64_t affected_known = 0;  ///< rows carrying an "affected" field
    double sum_affected = 0.0;
    std::vector<double> deltas;
  };
  std::map<std::string, ModelAgg> by_model;
  for (const auto& [key, row] : trials) {
    (void)key;
    ModelAgg& a = by_model[row.error_model.empty() ? "?" : row.error_model];
    ++a.count;
    if (row.sdc) ++a.sdc;
    a.sum_delta += row.delta_loss;
    a.max_delta = std::max(a.max_delta, row.max_delta_loss);
    a.deltas.push_back(row.delta_loss);
    if (row.affected >= 0) {
      ++a.affected_known;
      a.sum_affected += static_cast<double>(row.affected);
    }
  }
  out << "error-model vulnerability\n";
  std::snprintf(buf, sizeof(buf), "%-14s %7s %6s %7s %10s %12s %10s %10s\n",
                "error model", "trials", "SDC", "SDC%", "mean hit",
                "mean dLoss", "p95", "max");
  out << buf;
  for (const auto& [name, a] : by_model) {
    std::vector<double> sorted = a.deltas;
    std::sort(sorted.begin(), sorted.end());
    const double mean =
        a.count > 0 ? a.sum_delta / static_cast<double>(a.count) : 0.0;
    const double sdc_pct =
        a.count > 0
            ? 100.0 * static_cast<double>(a.sdc) / static_cast<double>(a.count)
            : 0.0;
    const double mean_hit =
        a.affected_known > 0
            ? a.sum_affected / static_cast<double>(a.affected_known)
            : 0.0;
    std::snprintf(buf, sizeof(buf),
                  "%-14s %7lld %6lld %6.1f%% %10.1f %12.5f %10.5f %10.5f\n",
                  name.c_str(), static_cast<long long>(a.count),
                  static_cast<long long>(a.sdc), sdc_pct, mean_hit, mean,
                  percentile(sorted, 0.95), a.max_delta);
    out << buf;
  }
  out << "\n";

  // --- dLoss distribution (log2 octaves) -----------------------------------
  std::map<int, int64_t> octaves;  // floor(log2 v) -> count
  int64_t zero_count = 0;
  for (const auto& [key, row] : trials) {
    (void)key;
    if (!(row.delta_loss > 0.0)) {
      ++zero_count;
      continue;
    }
    int exp = 0;
    std::frexp(row.delta_loss, &exp);
    ++octaves[exp - 1];
  }
  int64_t peak = zero_count;
  for (const auto& [o, n] : octaves) peak = std::max(peak, n);
  const auto bar = [peak](int64_t n) {
    const int width =
        peak > 0 ? static_cast<int>((40 * n + peak - 1) / peak) : 0;
    return std::string(static_cast<size_t>(width), '#');
  };
  out << "dLoss distribution (log2 buckets)\n";
  if (zero_count > 0) {
    std::snprintf(buf, sizeof(buf), "  %-18s %7lld %s\n", "0",
                  static_cast<long long>(zero_count), bar(zero_count).c_str());
    out << buf;
  }
  for (const auto& [o, n] : octaves) {
    char label[64];
    std::snprintf(label, sizeof(label), "[2^%d, 2^%d)", o, o + 1);
    std::snprintf(buf, sizeof(buf), "  %-18s %7lld %s\n", label,
                  static_cast<long long>(n), bar(n).c_str());
    out << buf;
  }
  out << "\n";

  // --- SDC heatmap (layers x bit positions) --------------------------------
  int64_t max_bit = -1;
  for (const auto& [si, a] : layers) {
    if (!a.bits.empty()) max_bit = std::max(max_bit, a.bits.rbegin()->first);
  }
  if (max_bit >= 0) {
    out << "SDC heatmap (bit 0 = LSB; ' ' no trials, '.' none, "
           "':' <=25%, '+' <=50%, '*' <=75%, '#' >75% SDC)\n";
    std::string tens = "                             ";
    std::string ones = "                        bit  ";
    for (int64_t b = 0; b <= max_bit; ++b) {
      tens += b >= 10 ? static_cast<char>('0' + (b / 10) % 10) : ' ';
      ones += static_cast<char>('0' + b % 10);
    }
    if (max_bit >= 10) out << tens << "\n";
    out << ones << "\n";
    for (const auto& [si, a] : layers) {
      std::snprintf(buf, sizeof(buf), "%-28s ", a.path.c_str());
      std::string row = buf;
      for (int64_t b = 0; b <= max_bit; ++b) {
        const auto it = a.bits.find(b);
        if (it == a.bits.end() || it->second.first == 0) {
          row += ' ';
          continue;
        }
        const double f = static_cast<double>(it->second.second) /
                         static_cast<double>(it->second.first);
        row += f <= 0.0 ? '.' : f <= 0.25 ? ':' : f <= 0.5 ? '+'
               : f <= 0.75 ? '*' : '#';
      }
      out << row << "\n";
    }
  }
}

}  // namespace ge::core
