#include "core/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <ostream>
#include <utility>

#include "io/container.hpp"

namespace ge::core {

namespace {

// --- a minimal JSONL record scanner ----------------------------------------
// RunLog lines are flat objects apart from the "metrics" row's nested
// counters/gauges; the scanner keeps every top-level field as its raw
// token text (strings unescaped) and skips nested values structurally, so
// unknown trailing fields from future schema versions parse fine.

void skip_ws(const std::string& s, size_t& i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
}

/// Parse the JSON string starting at s[i] == '"'. Returns the unescaped
/// text and leaves i one past the closing quote; nullopt on malformed
/// input. Escaped codepoints above 0x7f degrade to '?' — the writer only
/// escapes control characters, so nothing of ours is lost.
std::optional<std::string> parse_string(const std::string& s, size_t& i) {
  if (i >= s.size() || s[i] != '"') return std::nullopt;
  std::string out;
  for (++i; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '"') {
      ++i;
      return out;
    }
    if (c != '\\') {
      out += c;
      continue;
    }
    if (++i >= s.size()) return std::nullopt;
    switch (s[i]) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'r': out += '\r'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u': {
        if (i + 4 >= s.size()) return std::nullopt;
        const unsigned cp =
            static_cast<unsigned>(std::strtoul(s.substr(i + 1, 4).c_str(),
                                               nullptr, 16));
        out += cp < 0x80 ? static_cast<char>(cp) : '?';
        i += 4;
        break;
      }
      default: return std::nullopt;
    }
  }
  return std::nullopt;  // unterminated
}

/// Skip one JSON value (scalar, or nested object/array by depth counting,
/// strings quote-aware). Leaves i at the first character after the value.
bool skip_value(const std::string& s, size_t& i) {
  skip_ws(s, i);
  if (i >= s.size()) return false;
  if (s[i] == '"') return parse_string(s, i).has_value();
  if (s[i] == '{' || s[i] == '[') {
    int depth = 0;
    for (; i < s.size(); ++i) {
      const char c = s[i];
      if (c == '"') {
        if (!parse_string(s, i)) return false;
        --i;  // the for-loop re-advances
        continue;
      }
      if (c == '{' || c == '[') ++depth;
      if (c == '}' || c == ']') {
        if (--depth == 0) {
          ++i;
          return true;
        }
      }
    }
    return false;
  }
  // Scalar: number / true / false / null.
  const size_t start = i;
  while (i < s.size() && s[i] != ',' && s[i] != '}' && s[i] != ']' &&
         s[i] != ' ' && s[i] != '\t') {
    ++i;
  }
  return i > start;
}

using Record = std::map<std::string, std::string>;

/// One JSONL line -> top-level fields. String values are unescaped; every
/// other value (numbers, bools, nested objects) keeps its raw token text.
/// Returns nullopt for lines that are not a JSON object.
std::optional<Record> parse_record(const std::string& line) {
  size_t i = 0;
  skip_ws(line, i);
  if (i >= line.size() || line[i] != '{') return std::nullopt;
  ++i;
  Record rec;
  skip_ws(line, i);
  if (i < line.size() && line[i] == '}') return rec;  // empty object
  while (true) {
    skip_ws(line, i);
    auto key = parse_string(line, i);
    if (!key) return std::nullopt;
    skip_ws(line, i);
    if (i >= line.size() || line[i] != ':') return std::nullopt;
    ++i;
    skip_ws(line, i);
    const size_t vstart = i;
    if (i < line.size() && line[i] == '"') {
      auto v = parse_string(line, i);
      if (!v) return std::nullopt;
      rec[*key] = *v;
    } else {
      if (!skip_value(line, i)) return std::nullopt;
      rec[*key] = line.substr(vstart, i - vstart);
    }
    skip_ws(line, i);
    if (i >= line.size()) return std::nullopt;
    if (line[i] == ',') {
      ++i;
      continue;
    }
    if (line[i] == '}') return rec;
    return std::nullopt;
  }
}

std::optional<double> get_num(const Record& r, const char* key) {
  const auto it = r.find(key);
  if (it == r.end() || it->second == "null") return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str()) return std::nullopt;
  return v;
}

std::string get_str(const Record& r, const char* key) {
  const auto it = r.find(key);
  return it != r.end() ? it->second : std::string();
}

// --- the merged trial set --------------------------------------------------

struct TrialRow {
  std::string layer;
  int64_t bit = -1;
  double delta_loss = 0.0;
  double max_delta_loss = 0.0;
  bool sdc = false;
};

/// Config echo from run_header rows: shards of one campaign must agree on
/// these (threads / resumed / command deliberately excluded — they vary
/// between equivalent runs and must not affect the rendered bytes).
struct HeaderEcho {
  std::string format;
  std::string model;
  std::string seed;
  std::string samples;
  bool set = false;
};

/// Nearest-rank percentile of an ascending-sorted vector.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  rank = std::clamp<size_t>(rank, 1, sorted.size());
  return sorted[rank - 1];
}

}  // namespace

void render_campaign_report(const std::vector<std::string>& paths,
                            std::ostream& out, std::ostream& err) {
  // (site_index, trial) -> row. std::map gives last-wins dedupe AND a
  // deterministic ascending aggregation order, the two properties that
  // make sharded and single-process reports render byte-identically.
  std::map<std::pair<uint64_t, int64_t>, TrialRow> trials;
  HeaderEcho header;
  size_t skipped = 0;

  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) {
      throw io::IoError("report: cannot open '" + path + "'");
    }
    size_t lines = 0, used = 0;
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      ++lines;
      const auto rec = parse_record(line);
      if (!rec) {
        ++skipped;
        continue;
      }
      const std::string type = get_str(*rec, "type");
      if (type == "run_header") {
        HeaderEcho h;
        h.format = get_str(*rec, "format");
        h.model = get_str(*rec, "model");
        h.seed = get_str(*rec, "seed");
        h.samples = get_str(*rec, "samples");
        h.set = true;
        if (!header.set) {
          header = h;
        } else if (h.format != header.format || h.model != header.model ||
                   h.seed != header.seed || h.samples != header.samples) {
          throw io::IoError(
              "report: '" + path +
              "' belongs to a different campaign (run_header disagrees on "
              "format/model/seed/samples)");
        }
        ++used;
        continue;
      }
      if (type != "trial") continue;
      const auto site_index = get_num(*rec, "site_index");
      const auto trial = get_num(*rec, "trial");
      if (!site_index || !trial) {
        ++skipped;
        continue;
      }
      TrialRow row;
      row.layer = get_str(*rec, "layer");
      row.bit = static_cast<int64_t>(get_num(*rec, "bit").value_or(-1.0));
      row.delta_loss = get_num(*rec, "delta_loss").value_or(0.0);
      row.max_delta_loss = get_num(*rec, "max_delta_loss").value_or(0.0);
      row.sdc = get_str(*rec, "class") == "sdc";
      trials[{static_cast<uint64_t>(*site_index),
              static_cast<int64_t>(*trial)}] = std::move(row);
      ++used;
    }
    err << "report: " << path << ": " << used << " of " << lines
        << " records used\n";
  }
  if (skipped > 0) {
    err << "report: skipped " << skipped << " unparseable record(s)\n";
  }
  if (trials.empty()) {
    throw io::IoError(
        "report: no trial records found (run the campaign with --report "
        "FILE to produce them)");
  }

  // --- per-layer aggregation (ascending site_index, then trial) ------------
  struct LayerAgg {
    std::string path;
    int64_t count = 0;
    int64_t sdc = 0;
    double sum_delta = 0.0;
    double max_delta = 0.0;
    std::vector<double> deltas;
    std::map<int64_t, std::pair<int64_t, int64_t>> bits;  // bit -> {n, sdc}
  };
  std::map<uint64_t, LayerAgg> layers;
  for (const auto& [key, row] : trials) {
    LayerAgg& a = layers[key.first];
    a.path = row.layer;
    ++a.count;
    if (row.sdc) ++a.sdc;
    a.sum_delta += row.delta_loss;
    a.max_delta = std::max(a.max_delta, row.max_delta_loss);
    a.deltas.push_back(row.delta_loss);
    if (row.bit >= 0) {
      auto& [n, s] = a.bits[row.bit];
      ++n;
      if (row.sdc) ++s;
    }
  }

  char buf[256];
  out << "campaign report\n";
  if (header.set) {
    out << "  format: " << header.format << "  model: " << header.model
        << "  seed: " << header.seed << "  samples: " << header.samples
        << "\n";
  }
  out << "  trials: " << trials.size() << "  layers: " << layers.size()
      << "\n\n";

  // --- layer vulnerability table -------------------------------------------
  out << "layer vulnerability\n";
  std::snprintf(buf, sizeof(buf), "%-28s %7s %6s %7s %12s %10s %10s %10s\n",
                "layer", "trials", "SDC", "SDC%", "mean dLoss", "p50", "p95",
                "max");
  out << buf;
  for (const auto& [si, a] : layers) {
    std::vector<double> sorted = a.deltas;
    std::sort(sorted.begin(), sorted.end());
    const double mean =
        a.count > 0 ? a.sum_delta / static_cast<double>(a.count) : 0.0;
    const double sdc_pct =
        a.count > 0
            ? 100.0 * static_cast<double>(a.sdc) / static_cast<double>(a.count)
            : 0.0;
    std::snprintf(buf, sizeof(buf),
                  "%-28s %7lld %6lld %6.1f%% %12.5f %10.5f %10.5f %10.5f\n",
                  a.path.c_str(), static_cast<long long>(a.count),
                  static_cast<long long>(a.sdc), sdc_pct, mean,
                  percentile(sorted, 0.50), percentile(sorted, 0.95),
                  a.max_delta);
    out << buf;
  }
  out << "\n";

  // --- dLoss distribution (log2 octaves) -----------------------------------
  std::map<int, int64_t> octaves;  // floor(log2 v) -> count
  int64_t zero_count = 0;
  for (const auto& [key, row] : trials) {
    (void)key;
    if (!(row.delta_loss > 0.0)) {
      ++zero_count;
      continue;
    }
    int exp = 0;
    std::frexp(row.delta_loss, &exp);
    ++octaves[exp - 1];
  }
  int64_t peak = zero_count;
  for (const auto& [o, n] : octaves) peak = std::max(peak, n);
  const auto bar = [peak](int64_t n) {
    const int width =
        peak > 0 ? static_cast<int>((40 * n + peak - 1) / peak) : 0;
    return std::string(static_cast<size_t>(width), '#');
  };
  out << "dLoss distribution (log2 buckets)\n";
  if (zero_count > 0) {
    std::snprintf(buf, sizeof(buf), "  %-18s %7lld %s\n", "0",
                  static_cast<long long>(zero_count), bar(zero_count).c_str());
    out << buf;
  }
  for (const auto& [o, n] : octaves) {
    char label[64];
    std::snprintf(label, sizeof(label), "[2^%d, 2^%d)", o, o + 1);
    std::snprintf(buf, sizeof(buf), "  %-18s %7lld %s\n", label,
                  static_cast<long long>(n), bar(n).c_str());
    out << buf;
  }
  out << "\n";

  // --- SDC heatmap (layers x bit positions) --------------------------------
  int64_t max_bit = -1;
  for (const auto& [si, a] : layers) {
    if (!a.bits.empty()) max_bit = std::max(max_bit, a.bits.rbegin()->first);
  }
  if (max_bit >= 0) {
    out << "SDC heatmap (bit 0 = LSB; ' ' no trials, '.' none, "
           "':' <=25%, '+' <=50%, '*' <=75%, '#' >75% SDC)\n";
    std::string tens = "                             ";
    std::string ones = "                        bit  ";
    for (int64_t b = 0; b <= max_bit; ++b) {
      tens += b >= 10 ? static_cast<char>('0' + (b / 10) % 10) : ' ';
      ones += static_cast<char>('0' + b % 10);
    }
    if (max_bit >= 10) out << tens << "\n";
    out << ones << "\n";
    for (const auto& [si, a] : layers) {
      std::snprintf(buf, sizeof(buf), "%-28s ", a.path.c_str());
      std::string row = buf;
      for (int64_t b = 0; b <= max_bit; ++b) {
        const auto it = a.bits.find(b);
        if (it == a.bits.end() || it->second.first == 0) {
          row += ' ';
          continue;
        }
        const double f = static_cast<double>(it->second.second) /
                         static_cast<double>(it->second.first);
        row += f <= 0.0 ? '.' : f <= 0.25 ? ':' : f <= 0.5 ? '+'
               : f <= 0.75 ? '*' : '#';
      }
      out << row << "\n";
    }
  }
}

}  // namespace ge::core
