// SyntheticVision: a deterministic, procedurally-generated image
// classification dataset — this repo's stand-in for the paper's ImageNet
// evaluation data (see DESIGN.md §1 for the substitution argument).
//
// Each class has a smooth random prototype pattern; samples are the
// prototype under additive Gaussian noise, random circular shifts, and
// contrast/brightness jitter. The task is learnable (>90% with the tiny
// models in src/models) but not saturated, so format-induced accuracy
// drops and fault-induced misclassifications are statistically visible.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace ge::data {

struct SyntheticVisionConfig {
  int64_t num_classes = 10;
  int64_t channels = 3;
  int64_t image_size = 16;
  int64_t train_count = 2000;
  int64_t test_count = 512;
  float noise_sigma = 2.5f;  ///< keeps trained accuracy ~90-97%, not saturated
  int64_t max_shift = 3;
  uint64_t seed = 0xC0FFEE;
};

/// A materialised split: images (N, C, H, W) and integer labels.
struct Split {
  Tensor images;
  std::vector<int64_t> labels;

  int64_t size() const noexcept {
    return static_cast<int64_t>(labels.size());
  }
};

class SyntheticVision {
 public:
  explicit SyntheticVision(SyntheticVisionConfig cfg = {});

  const Split& train() const noexcept { return train_; }
  const Split& test() const noexcept { return test_; }
  const SyntheticVisionConfig& config() const noexcept { return cfg_; }

  /// The smooth prototype pattern of one class (C, H, W) — exposed for
  /// tests and visual inspection.
  const Tensor& prototype(int64_t cls) const;

 private:
  Split generate_split(int64_t count, Rng& rng) const;

  SyntheticVisionConfig cfg_;
  std::vector<Tensor> prototypes_;
  Split train_;
  Split test_;
};

}  // namespace ge::data
