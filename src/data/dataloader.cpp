#include "data/dataloader.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace ge::data {

DataLoader::DataLoader(const Split& split, int64_t batch_size, bool shuffle,
                       uint64_t seed)
    : split_(&split), batch_size_(batch_size), shuffle_(shuffle), rng_(seed) {
  if (batch_size <= 0) throw std::invalid_argument("DataLoader: batch <= 0");
  order_.resize(static_cast<size_t>(split.size()));
  std::iota(order_.begin(), order_.end(), 0);
  if (shuffle_) reset();
}

int64_t DataLoader::batch_count() const {
  return (split_->size() + batch_size_ - 1) / batch_size_;
}

void DataLoader::reset() {
  if (!shuffle_) return;
  std::shuffle(order_.begin(), order_.end(), rng_.engine());
}

Batch DataLoader::batch(int64_t i) const {
  if (i < 0 || i >= batch_count()) {
    throw std::out_of_range("DataLoader: batch index out of range");
  }
  const int64_t begin = i * batch_size_;
  const int64_t count = std::min(batch_size_, split_->size() - begin);
  const Shape& s = split_->images.shape();
  const int64_t sample = s[1] * s[2] * s[3];
  Batch b;
  b.images = Tensor({count, s[1], s[2], s[3]});
  b.labels.resize(static_cast<size_t>(count));
  const float* src = split_->images.data();
  float* dst = b.images.data();
  for (int64_t j = 0; j < count; ++j) {
    const int64_t row = order_[static_cast<size_t>(begin + j)];
    std::copy(src + row * sample, src + (row + 1) * sample,
              dst + j * sample);
    b.labels[static_cast<size_t>(j)] =
        split_->labels[static_cast<size_t>(row)];
  }
  return b;
}

Batch take(const Split& split, int64_t begin, int64_t count) {
  if (begin < 0 || begin + count > split.size()) {
    throw std::out_of_range("take: range outside split");
  }
  const Shape& s = split.images.shape();
  const int64_t sample = s[1] * s[2] * s[3];
  Batch b;
  b.images = Tensor({count, s[1], s[2], s[3]});
  b.labels.assign(split.labels.begin() + begin,
                  split.labels.begin() + begin + count);
  std::copy(split.images.data() + begin * sample,
            split.images.data() + (begin + count) * sample, b.images.data());
  return b;
}

}  // namespace ge::data
