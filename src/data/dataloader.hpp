// Mini-batch iteration over a Split, with optional seeded shuffling.
#pragma once

#include <cstdint>
#include <vector>

#include "data/synthetic.hpp"
#include "tensor/rng.hpp"

namespace ge::data {

struct Batch {
  Tensor images;
  std::vector<int64_t> labels;
};

class DataLoader {
 public:
  /// Iterates `split` in batches of `batch_size` (last batch may be
  /// short). When `shuffle`, order is re-drawn from `seed` at each reset.
  DataLoader(const Split& split, int64_t batch_size, bool shuffle = false,
             uint64_t seed = 1);

  /// Number of batches per epoch.
  int64_t batch_count() const;
  /// Fetch batch `i` of the current epoch order.
  Batch batch(int64_t i) const;
  /// Re-shuffle (no-op when shuffle is off).
  void reset();

 private:
  const Split* split_;
  int64_t batch_size_;
  bool shuffle_;
  Rng rng_;
  std::vector<int64_t> order_;
};

/// Copy `count` rows starting at `begin` into a contiguous batch — useful
/// for fixed evaluation subsets.
Batch take(const Split& split, int64_t begin, int64_t count);

}  // namespace ge::data
