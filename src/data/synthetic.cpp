#include "data/synthetic.hpp"

#include <cmath>
#include <stdexcept>

namespace ge::data {

namespace {

/// 3x3 box blur with circular boundary, applied per channel.
Tensor box_blur(const Tensor& img, int64_t C, int64_t S) {
  Tensor out(img.shape());
  const float* pin = img.data();
  float* po = out.data();
  for (int64_t c = 0; c < C; ++c) {
    const float* plane = pin + c * S * S;
    float* oplane = po + c * S * S;
    for (int64_t y = 0; y < S; ++y) {
      for (int64_t x = 0; x < S; ++x) {
        float acc = 0.0f;
        for (int64_t dy = -1; dy <= 1; ++dy) {
          for (int64_t dx = -1; dx <= 1; ++dx) {
            const int64_t yy = (y + dy + S) % S;
            const int64_t xx = (x + dx + S) % S;
            acc += plane[yy * S + xx];
          }
        }
        oplane[y * S + x] = acc / 9.0f;
      }
    }
  }
  return out;
}

/// Standardise to zero mean / unit variance.
void standardise(Tensor& t) {
  double s = 0.0;
  for (float v : t.flat()) s += v;
  const float mu = static_cast<float>(s / double(t.numel()));
  double var = 0.0;
  for (float v : t.flat()) var += (double(v) - mu) * (double(v) - mu);
  const float sd =
      std::sqrt(static_cast<float>(var / double(t.numel()))) + 1e-8f;
  for (float& v : t.flat()) v = (v - mu) / sd;
}

}  // namespace

SyntheticVision::SyntheticVision(SyntheticVisionConfig cfg)
    : cfg_(cfg) {
  if (cfg_.num_classes < 2 || cfg_.channels < 1 || cfg_.image_size < 4) {
    throw std::invalid_argument("SyntheticVision: degenerate config");
  }
  Rng rng(cfg_.seed);
  // Class prototypes: smooth random fields, standardised.
  prototypes_.reserve(static_cast<size_t>(cfg_.num_classes));
  for (int64_t c = 0; c < cfg_.num_classes; ++c) {
    Rng proto_rng = rng.fork();
    Tensor p = proto_rng.normal_tensor(
        {cfg_.channels, cfg_.image_size, cfg_.image_size});
    p = box_blur(p, cfg_.channels, cfg_.image_size);
    p = box_blur(p, cfg_.channels, cfg_.image_size);
    standardise(p);
    prototypes_.push_back(std::move(p));
  }
  Rng train_rng = rng.fork();
  Rng test_rng = rng.fork();
  train_ = generate_split(cfg_.train_count, train_rng);
  test_ = generate_split(cfg_.test_count, test_rng);
}

Split SyntheticVision::generate_split(int64_t count, Rng& rng) const {
  const int64_t C = cfg_.channels, S = cfg_.image_size;
  Split split;
  split.images = Tensor({count, C, S, S});
  split.labels.resize(static_cast<size_t>(count));
  float* pout = split.images.data();
  for (int64_t n = 0; n < count; ++n) {
    const int64_t cls = rng.randint(0, cfg_.num_classes - 1);
    split.labels[static_cast<size_t>(n)] = cls;
    const Tensor& proto = prototypes_[static_cast<size_t>(cls)];
    const int64_t sy = rng.randint(-cfg_.max_shift, cfg_.max_shift);
    const int64_t sx = rng.randint(-cfg_.max_shift, cfg_.max_shift);
    const float contrast = rng.uniform(0.8f, 1.2f);
    const float brightness = rng.normal(0.0f, 0.1f);
    const float* pp = proto.data();
    float* img = pout + n * C * S * S;
    for (int64_t c = 0; c < C; ++c) {
      for (int64_t y = 0; y < S; ++y) {
        for (int64_t x = 0; x < S; ++x) {
          const int64_t yy = (y + sy + S) % S;
          const int64_t xx = (x + sx + S) % S;
          img[(c * S + y) * S + x] =
              contrast * pp[(c * S + yy) * S + xx] + brightness +
              rng.normal(0.0f, cfg_.noise_sigma);
        }
      }
    }
  }
  return split;
}

const Tensor& SyntheticVision::prototype(int64_t cls) const {
  return prototypes_.at(static_cast<size_t>(cls));
}

}  // namespace ge::data
