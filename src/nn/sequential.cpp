#include "nn/sequential.hpp"

namespace ge::nn {

Module& Sequential::append(std::unique_ptr<Module> m, std::string name) {
  Module& ref = *m;
  if (name.empty()) name = std::to_string(owned_.size());
  register_child(std::move(name), ref);
  owned_.push_back(std::move(m));
  // keep the child's mode in sync with the container
  ref.train(is_training());
  return ref;
}

Tensor Sequential::forward(const Tensor& input) {
  Tensor x = input;
  for (auto& m : owned_) x = (*m)(x);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = owned_.rbegin(); it != owned_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

}  // namespace ge::nn
