// MultiheadSelfAttention over (B, T, D) token tensors.
//
// The Q/K/V and output projections are child Linear modules invoked via
// operator(), so GoldenEye's hook-based emulation instruments them exactly
// like any other LINEAR layer in the network.
#pragma once

#include <memory>

#include "nn/linear.hpp"
#include "nn/module.hpp"

namespace ge::nn {

class MultiheadSelfAttention : public Module {
 public:
  /// embed_dim must be divisible by num_heads.
  MultiheadSelfAttention(int64_t embed_dim, int64_t num_heads, Rng& rng);

  Tensor forward(const Tensor& input) override;   // (B, T, D) -> (B, T, D)
  Tensor backward(const Tensor& grad_out) override;

  int64_t embed_dim() const noexcept { return dim_; }
  int64_t num_heads() const noexcept { return heads_; }

 private:
  int64_t dim_;
  int64_t heads_;
  int64_t head_dim_;
  float scale_;
  std::unique_ptr<Linear> qkv_;
  std::unique_ptr<Linear> proj_;
  // caches (training forward only), laid out (B, H, T, head_dim)
  Tensor q_, k_, v_;
  Tensor attn_;  // (B, H, T, T)
  int64_t cached_B_ = 0, cached_T_ = 0;
};

}  // namespace ge::nn
