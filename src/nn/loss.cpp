#include "nn/loss.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/tensor_ops.hpp"

namespace ge::nn {

namespace {
void check_targets(const Tensor& logits, const std::vector<int64_t>& targets) {
  if (logits.dim() != 2) {
    throw std::invalid_argument("cross entropy: logits must be (N, C)");
  }
  if (static_cast<int64_t>(targets.size()) != logits.size(0)) {
    throw std::invalid_argument("cross entropy: batch size mismatch");
  }
  for (int64_t t : targets) {
    if (t < 0 || t >= logits.size(1)) {
      throw std::invalid_argument("cross entropy: target class out of range");
    }
  }
}
}  // namespace

std::vector<float> CrossEntropyLoss::per_sample(
    const Tensor& logits, const std::vector<int64_t>& targets) {
  check_targets(logits, targets);
  const Tensor logp = ops::log_softmax_lastdim(logits);
  const int64_t N = logits.size(0), C = logits.size(1);
  std::vector<float> out(static_cast<size_t>(N));
  for (int64_t i = 0; i < N; ++i) {
    out[static_cast<size_t>(i)] =
        -logp[i * C + targets[static_cast<size_t>(i)]];
  }
  return out;
}

float CrossEntropyLoss::evaluate(const Tensor& logits,
                                 const std::vector<int64_t>& targets) {
  const auto losses = per_sample(logits, targets);
  double s = 0.0;
  for (float l : losses) s += l;
  return static_cast<float>(s / double(losses.size()));
}

float CrossEntropyLoss::forward(const Tensor& logits,
                                const std::vector<int64_t>& targets) {
  check_targets(logits, targets);
  cached_softmax_ = ops::softmax_lastdim(logits);
  cached_targets_ = targets;
  return evaluate(logits, targets);
}

Tensor CrossEntropyLoss::backward() const {
  if (cached_targets_.empty()) {
    throw std::logic_error("CrossEntropyLoss::backward before forward");
  }
  const int64_t N = cached_softmax_.size(0), C = cached_softmax_.size(1);
  Tensor g = cached_softmax_;
  float* pg = g.data();
  const float inv_n = 1.0f / static_cast<float>(N);
  for (int64_t i = 0; i < N; ++i) {
    pg[i * C + cached_targets_[static_cast<size_t>(i)]] -= 1.0f;
    for (int64_t c = 0; c < C; ++c) pg[i * C + c] *= inv_n;
  }
  return g;
}

float accuracy(const Tensor& logits, const std::vector<int64_t>& targets) {
  check_targets(logits, targets);
  const auto pred = ops::argmax_rows(logits);
  int64_t correct = 0;
  for (size_t i = 0; i < targets.size(); ++i) {
    if (pred[i] == targets[i]) ++correct;
  }
  return static_cast<float>(correct) / static_cast<float>(targets.size());
}

}  // namespace ge::nn
