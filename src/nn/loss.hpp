// Losses and classification metrics.
//
// Cross entropy is central to GoldenEye beyond training: the ΔLoss
// resiliency metric (§IV-C) is the absolute difference of this loss
// between a faulty and a golden inference.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace ge::nn {

/// Softmax cross entropy over logits (N, C) with integer class targets.
class CrossEntropyLoss {
 public:
  /// Mean loss over the batch; caches what backward needs.
  float forward(const Tensor& logits, const std::vector<int64_t>& targets);
  /// d(loss)/d(logits), shape (N, C).
  Tensor backward() const;

  /// Stateless evaluation (no cache) — used by metric code.
  static float evaluate(const Tensor& logits,
                        const std::vector<int64_t>& targets);
  /// Per-sample losses, one per row.
  static std::vector<float> per_sample(const Tensor& logits,
                                       const std::vector<int64_t>& targets);

 private:
  Tensor cached_softmax_;
  std::vector<int64_t> cached_targets_;
};

/// Fraction of rows whose argmax equals the target.
float accuracy(const Tensor& logits, const std::vector<int64_t>& targets);

}  // namespace ge::nn
