// Conv2d: 2-D convolution over NCHW tensors via im2col + GEMM.
#pragma once

#include "nn/module.hpp"
#include "tensor/rng.hpp"
#include "tensor/tensor_ops.hpp"

namespace ge::nn {

class Conv2d : public Module {
 public:
  Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
         int64_t stride, int64_t padding, Rng& rng, bool with_bias = true);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_out) override;

  std::vector<Parameter*> local_parameters() override;

  Parameter& weight() noexcept { return weight_; }
  Parameter* bias() noexcept { return with_bias_ ? &bias_ : nullptr; }
  const ops::Conv2dSpec& spec() const noexcept { return spec_; }
  int64_t in_channels() const noexcept { return in_c_; }
  int64_t out_channels() const noexcept { return out_c_; }

 private:
  /// Inference path for unpadded convolutions: slices input patches as
  /// strided views of the NCHW storage instead of materialising an im2col
  /// matrix. Bitwise identical to the GEMM path (same FP32 MAC order).
  Tensor forward_direct(const Tensor& input, int64_t N, int64_t H, int64_t W,
                        int64_t OH, int64_t OW);

  int64_t in_c_;
  int64_t out_c_;
  bool with_bias_;
  ops::Conv2dSpec spec_;
  Parameter weight_;  // (OC, C, KH, KW)
  Parameter bias_;    // (OC)
  Tensor cached_cols_;  // im2col matrix from the last training forward
  Shape cached_input_shape_;
};

}  // namespace ge::nn
