// Pointwise activations and shape utilities.
#pragma once

#include "nn/module.hpp"

namespace ge::nn {

class ReLU : public Module {
 public:
  ReLU() : Module("ReLU") {}
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  std::vector<uint8_t> mask_;  // 1 where input > 0 (training forward only)
};

/// GELU with the tanh approximation (the variant transformer stacks use).
class GELU : public Module {
 public:
  GELU() : Module("GELU") {}
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  Tensor cached_input_;
};

class Sigmoid : public Module {
 public:
  Sigmoid() : Module("Sigmoid") {}
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  Tensor cached_output_;  // sigmoid' = y (1 - y)
};

class Tanh : public Module {
 public:
  Tanh() : Module("Tanh") {}
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  Tensor cached_output_;  // tanh' = 1 - y^2
};

/// Inverted dropout: scales surviving activations by 1/(1-p) in training,
/// identity in eval. Mask stream is drawn from an internal seeded Rng so
/// training remains reproducible.
class Dropout : public Module {
 public:
  explicit Dropout(float p, uint64_t seed = 0xD0D0);
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_out) override;

  float p() const noexcept { return p_; }

 private:
  float p_;
  uint64_t rng_state_;
  std::vector<uint8_t> mask_;
};

/// Collapse all trailing dims: (N, ...) -> (N, prod(...)).
class Flatten : public Module {
 public:
  Flatten() : Module("Flatten") {}
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  Shape cached_shape_;
};

class Identity : public Module {
 public:
  Identity() : Module("Identity") {}
  Tensor forward(const Tensor& input) override { return input; }
  Tensor backward(const Tensor& grad_out) override { return grad_out; }
};

}  // namespace ge::nn
