#include "nn/optim.hpp"

#include <cmath>

namespace ge::nn {

SGD::SGD(std::vector<Parameter*> params, float lr, float momentum,
         float weight_decay)
    : params_(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.reserve(params_.size());
  for (Parameter* p : params_) velocity_.emplace_back(p->value.shape());
}

void SGD::step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    float* v = velocity_[i].data();
    float* w = p.value.data();
    const float* g = p.grad.cdata();
    const int64_t n = p.value.numel();
    for (int64_t j = 0; j < n; ++j) {
      const float grad = g[j] + weight_decay_ * w[j];
      v[j] = momentum_ * v[j] + grad;
      w[j] -= lr_ * v[j];
    }
  }
}

void SGD::zero_grad() {
  for (Parameter* p : params_) p->zero_grad();
}

Adam::Adam(std::vector<Parameter*> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : params_(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    float* m = m_[i].data();
    float* v = v_[i].data();
    float* w = p.value.data();
    const float* g = p.grad.cdata();
    const int64_t n = p.value.numel();
    for (int64_t j = 0; j < n; ++j) {
      const float grad = g[j] + weight_decay_ * w[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * grad;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * grad * grad;
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      w[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

void Adam::zero_grad() {
  for (Parameter* p : params_) p->zero_grad();
}

}  // namespace ge::nn
