// Normalisation layers: BatchNorm2d (NCHW, running stats) and LayerNorm
// (over the last dimension, as used inside transformer blocks).
#pragma once

#include "nn/module.hpp"

namespace ge::nn {

class BatchNorm2d : public Module {
 public:
  explicit BatchNorm2d(int64_t channels, float eps = 1e-5f,
                       float momentum = 0.1f);

  /// Training mode normalises with batch statistics and updates running
  /// stats; eval mode uses the running statistics.
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_out) override;

  std::vector<Parameter*> local_parameters() override;
  std::vector<Parameter*> local_buffers() override;

 private:
  int64_t channels_;
  float eps_;
  float momentum_;
  Parameter gamma_;
  Parameter beta_;
  Parameter running_mean_;  // buffer
  Parameter running_var_;   // buffer
  // training-forward caches for backward
  Tensor cached_xhat_;
  std::vector<float> cached_inv_std_;
  Shape cached_shape_;
};

class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t normalized_dim, float eps = 1e-5f);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_out) override;

  std::vector<Parameter*> local_parameters() override;

 private:
  int64_t dim_;
  float eps_;
  Parameter gamma_;
  Parameter beta_;
  Tensor cached_xhat_;
  std::vector<float> cached_inv_std_;
  Shape cached_shape_;
};

}  // namespace ge::nn
