// Linear: fully-connected layer, y = x W^T + b.
#pragma once

#include "nn/module.hpp"
#include "tensor/rng.hpp"

namespace ge::nn {

class Linear : public Module {
 public:
  /// Weight (out_features, in_features) Kaiming-initialised from `rng`;
  /// bias zero-initialised (omitted entirely when with_bias = false).
  Linear(int64_t in_features, int64_t out_features, Rng& rng,
         bool with_bias = true);

  /// Input (N, in_features) -> (N, out_features). Higher-rank inputs are
  /// treated as (prod(leading dims), in_features) and reshaped back.
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_out) override;

  std::vector<Parameter*> local_parameters() override;

  int64_t in_features() const noexcept { return in_; }
  int64_t out_features() const noexcept { return out_; }
  Parameter& weight() noexcept { return weight_; }
  Parameter* bias() noexcept { return with_bias_ ? &bias_ : nullptr; }

 private:
  int64_t in_;
  int64_t out_;
  bool with_bias_;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;  // 2-D view of the last forward input
  Shape input_shape_;    // original rank of the last forward input
};

}  // namespace ge::nn
