#include "nn/transformer.hpp"

#include "tensor/tensor_ops.hpp"

namespace ge::nn {

MlpBlock::MlpBlock(int64_t dim, int64_t hidden_dim, Rng& rng)
    : Module("MlpBlock"),
      fc1_(std::make_unique<Linear>(dim, hidden_dim, rng)),
      act_(std::make_unique<GELU>()),
      fc2_(std::make_unique<Linear>(hidden_dim, dim, rng)) {
  register_child("fc1", *fc1_);
  register_child("act", *act_);
  register_child("fc2", *fc2_);
}

Tensor MlpBlock::forward(const Tensor& input) {
  return (*fc2_)((*act_)((*fc1_)(input)));
}

Tensor MlpBlock::backward(const Tensor& grad_out) {
  return fc1_->backward(act_->backward(fc2_->backward(grad_out)));
}

TransformerBlock::TransformerBlock(int64_t dim, int64_t num_heads,
                                   int64_t mlp_hidden, Rng& rng)
    : Module("TransformerBlock"),
      ln1_(std::make_unique<LayerNorm>(dim)),
      attn_(std::make_unique<MultiheadSelfAttention>(dim, num_heads, rng)),
      ln2_(std::make_unique<LayerNorm>(dim)),
      mlp_(std::make_unique<MlpBlock>(dim, mlp_hidden, rng)) {
  register_child("ln1", *ln1_);
  register_child("attn", *attn_);
  register_child("ln2", *ln2_);
  register_child("mlp", *mlp_);
}

Tensor TransformerBlock::forward(const Tensor& input) {
  Tensor h = ops::add(input, (*attn_)((*ln1_)(input)));
  return ops::add(h, (*mlp_)((*ln2_)(h)));
}

Tensor TransformerBlock::backward(const Tensor& grad_out) {
  // y = h + mlp(ln2(h)):  dh = g + ln2.bw(mlp.bw(g))
  Tensor dh = ops::add(grad_out,
                       ln2_->backward(mlp_->backward(grad_out)));
  // h = x + attn(ln1(x)):  dx = dh + ln1.bw(attn.bw(dh))
  return ops::add(dh, ln1_->backward(attn_->backward(dh)));
}

}  // namespace ge::nn
