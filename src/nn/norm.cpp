#include "nn/norm.hpp"

#include <cmath>
#include <stdexcept>

#include "parallel/thread_pool.hpp"

namespace ge::nn {

BatchNorm2d::BatchNorm2d(int64_t channels, float eps, float momentum)
    : Module("BatchNorm2d"),
      channels_(channels),
      eps_(eps),
      momentum_(momentum),
      gamma_("weight", Tensor::ones({channels})),
      beta_("bias", Tensor({channels})),
      running_mean_("running_mean", Tensor({channels})),
      running_var_("running_var", Tensor::ones({channels})) {
  if (channels <= 0) throw std::invalid_argument("BatchNorm2d: channels <= 0");
}

Tensor BatchNorm2d::forward(const Tensor& input) {
  if (input.dim() != 4 || input.size(1) != channels_) {
    throw std::invalid_argument("BatchNorm2d: expected NCHW with C=" +
                                std::to_string(channels_));
  }
  const int64_t N = input.size(0), H = input.size(2), W = input.size(3);
  const int64_t plane = H * W;
  const int64_t m = N * plane;  // samples per channel
  Tensor out(input.shape());
  const float* pin = input.data();
  float* po = out.data();
  const float* pgamma = gamma_.value.cdata();
  const float* pbeta = beta_.value.cdata();

  const bool use_batch_stats = is_training();
  if (use_batch_stats) {
    cached_xhat_ = Tensor(input.shape());
    cached_inv_std_.assign(static_cast<size_t>(channels_), 0.0f);
    cached_shape_ = input.shape();
  }
  // Mutable pointers resolved before the parallel region: a COW detach (if
  // the buffers are shared) must happen once, on this thread — never from
  // concurrent worker chunks.
  float* const pxh_all = use_batch_stats ? cached_xhat_.data() : nullptr;
  float* const prmean = use_batch_stats ? running_mean_.value.data() : nullptr;
  float* const prvar = use_batch_stats ? running_var_.value.data() : nullptr;
  const float* const crmean = running_mean_.value.cdata();
  const float* const crvar = running_var_.value.cdata();
  // Channels are fully independent (stats, running buffers, cached state and
  // output planes are all per-channel), so the channel loop is the parallel
  // axis.
  parallel::parallel_for(
      0, channels_, parallel::grain_for(3 * m), [&](int64_t clo, int64_t chi) {
        for (int64_t c = clo; c < chi; ++c) {
          float mean_c, var_c;
          if (use_batch_stats) {
            double s = 0.0;
            for (int64_t n = 0; n < N; ++n) {
              const float* p = pin + (n * channels_ + c) * plane;
              for (int64_t i = 0; i < plane; ++i) s += p[i];
            }
            mean_c = static_cast<float>(s / double(m));
            double v = 0.0;
            for (int64_t n = 0; n < N; ++n) {
              const float* p = pin + (n * channels_ + c) * plane;
              for (int64_t i = 0; i < plane; ++i) {
                const double d = double(p[i]) - mean_c;
                v += d * d;
              }
            }
            var_c = static_cast<float>(v / double(m));  // biased, as PyTorch
            prmean[c] = (1.0f - momentum_) * prmean[c] + momentum_ * mean_c;
            prvar[c] = (1.0f - momentum_) * prvar[c] + momentum_ * var_c;
          } else {
            mean_c = crmean[c];
            var_c = crvar[c];
          }
          const float inv_std = 1.0f / std::sqrt(var_c + eps_);
          if (use_batch_stats) {
            cached_inv_std_[static_cast<size_t>(c)] = inv_std;
          }
          for (int64_t n = 0; n < N; ++n) {
            const float* p = pin + (n * channels_ + c) * plane;
            float* q = po + (n * channels_ + c) * plane;
            float* xh = use_batch_stats
                            ? pxh_all + (n * channels_ + c) * plane
                            : nullptr;
            for (int64_t i = 0; i < plane; ++i) {
              const float xhat = (p[i] - mean_c) * inv_std;
              if (xh) xh[i] = xhat;
              q[i] = pgamma[c] * xhat + pbeta[c];
            }
          }
        }
      });
  return out;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  if (cached_xhat_.empty()) {
    throw std::logic_error("BatchNorm2d::backward before training forward");
  }
  const int64_t N = cached_shape_[0], H = cached_shape_[2],
                W = cached_shape_[3];
  const int64_t plane = H * W;
  const int64_t m = N * plane;
  Tensor gx(cached_shape_);
  const float* pg = grad_out.data();
  const float* pxh = cached_xhat_.cdata();
  float* pgx = gx.data();
  const float* const pgam = gamma_.value.cdata();
  float* const pggrad = gamma_.grad.data();
  float* const pbgrad = beta_.grad.data();
  // Per-channel like the forward pass: gamma/beta grads are indexed by c,
  // so channel-parallel writes stay disjoint.
  parallel::parallel_for(
      0, channels_, parallel::grain_for(3 * m), [&](int64_t clo, int64_t chi) {
        for (int64_t c = clo; c < chi; ++c) {
          double sum_g = 0.0, sum_gx = 0.0;
          for (int64_t n = 0; n < N; ++n) {
            const int64_t base = (n * channels_ + c) * plane;
            for (int64_t i = 0; i < plane; ++i) {
              sum_g += pg[base + i];
              sum_gx += double(pg[base + i]) * pxh[base + i];
            }
          }
          pggrad[c] += static_cast<float>(sum_gx);
          pbgrad[c] += static_cast<float>(sum_g);
          const float mean_g = static_cast<float>(sum_g / double(m));
          const float mean_gx = static_cast<float>(sum_gx / double(m));
          const float k = pgam[c] * cached_inv_std_[static_cast<size_t>(c)];
          for (int64_t n = 0; n < N; ++n) {
            const int64_t base = (n * channels_ + c) * plane;
            for (int64_t i = 0; i < plane; ++i) {
              pgx[base + i] =
                  k * (pg[base + i] - mean_g - pxh[base + i] * mean_gx);
            }
          }
        }
      });
  return gx;
}

std::vector<Parameter*> BatchNorm2d::local_parameters() {
  return {&gamma_, &beta_};
}

std::vector<Parameter*> BatchNorm2d::local_buffers() {
  return {&running_mean_, &running_var_};
}

LayerNorm::LayerNorm(int64_t normalized_dim, float eps)
    : Module("LayerNorm"),
      dim_(normalized_dim),
      eps_(eps),
      gamma_("weight", Tensor::ones({normalized_dim})),
      beta_("bias", Tensor({normalized_dim})) {
  if (normalized_dim <= 0) throw std::invalid_argument("LayerNorm: dim <= 0");
}

Tensor LayerNorm::forward(const Tensor& input) {
  if (input.size(-1) != dim_) {
    throw std::invalid_argument("LayerNorm: expected last dim " +
                                std::to_string(dim_));
  }
  const int64_t rows = input.numel() / dim_;
  Tensor out(input.shape());
  const bool cache = is_training();
  if (cache) {
    cached_xhat_ = Tensor(input.shape());
    cached_inv_std_.assign(static_cast<size_t>(rows), 0.0f);
    cached_shape_ = input.shape();
  }
  const float* pin = input.data();
  float* po = out.data();
  const float* pgamma = gamma_.value.cdata();
  const float* pbeta = beta_.value.cdata();
  float* const pxh_all = cache ? cached_xhat_.data() : nullptr;
  parallel::parallel_for(
      0, rows, parallel::grain_for(4 * dim_), [&](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          const float* x = pin + r * dim_;
          float* y = po + r * dim_;
          double s = 0.0;
          for (int64_t i = 0; i < dim_; ++i) s += x[i];
          const float mu = static_cast<float>(s / double(dim_));
          double v = 0.0;
          for (int64_t i = 0; i < dim_; ++i) {
            const double d = double(x[i]) - mu;
            v += d * d;
          }
          const float inv_std =
              1.0f / std::sqrt(static_cast<float>(v / double(dim_)) + eps_);
          if (cache) cached_inv_std_[static_cast<size_t>(r)] = inv_std;
          float* xh = cache ? pxh_all + r * dim_ : nullptr;
          for (int64_t i = 0; i < dim_; ++i) {
            const float xhat = (x[i] - mu) * inv_std;
            if (xh) xh[i] = xhat;
            y[i] = pgamma[i] * xhat + pbeta[i];
          }
        }
      });
  return out;
}

Tensor LayerNorm::backward(const Tensor& grad_out) {
  if (cached_xhat_.empty()) {
    throw std::logic_error("LayerNorm::backward before training forward");
  }
  const int64_t rows = cached_xhat_.numel() / dim_;
  Tensor gx(cached_shape_);
  const float* pg = grad_out.data();
  const float* pxh = cached_xhat_.cdata();
  float* pgx = gx.data();
  const float* pgamma = gamma_.value.cdata();
  float* const pggrad = gamma_.grad.data();
  float* const pbgrad = beta_.grad.data();
  // Serial on purpose: every row accumulates into gamma_.grad / beta_.grad,
  // so a row-parallel version would race on the parameter gradients.
  for (int64_t r = 0; r < rows; ++r) {
    const float* g = pg + r * dim_;
    const float* xh = pxh + r * dim_;
    float* out = pgx + r * dim_;
    double sum_gg = 0.0, sum_ggx = 0.0;  // sums of gamma*g and gamma*g*xhat
    for (int64_t i = 0; i < dim_; ++i) {
      const double gg = double(pgamma[i]) * g[i];
      sum_gg += gg;
      sum_ggx += gg * xh[i];
      pggrad[i] += g[i] * xh[i];
      pbgrad[i] += g[i];
    }
    const float mean_gg = static_cast<float>(sum_gg / double(dim_));
    const float mean_ggx = static_cast<float>(sum_ggx / double(dim_));
    const float inv_std = cached_inv_std_[static_cast<size_t>(r)];
    for (int64_t i = 0; i < dim_; ++i) {
      out[i] = inv_std *
               (pgamma[i] * g[i] - mean_gg - xh[i] * mean_ggx);
    }
  }
  return gx;
}

std::vector<Parameter*> LayerNorm::local_parameters() {
  return {&gamma_, &beta_};
}

}  // namespace ge::nn
