#include "nn/module.hpp"

#include <fstream>
#include <stdexcept>

namespace ge::nn {

Tensor Module::backward(const Tensor& /*grad_out*/) {
  throw std::logic_error("backward not implemented for layer kind '" + kind_ +
                         "'");
}

Tensor Module::operator()(const Tensor& input) {
  Tensor x = input;
  for (auto& [handle, hook] : pre_hooks_) hook(*this, x);
  Tensor y = forward(x);
  for (auto& [handle, hook] : post_hooks_) hook(*this, y);
  return y;
}

Module::HookHandle Module::add_forward_hook(Hook h) {
  const HookHandle handle = next_handle_++;
  post_hooks_.emplace_back(handle, std::move(h));
  return handle;
}

Module::HookHandle Module::add_forward_pre_hook(Hook h) {
  const HookHandle handle = next_handle_++;
  pre_hooks_.emplace_back(handle, std::move(h));
  return handle;
}

void Module::remove_hook(HookHandle handle) {
  auto drop = [handle](auto& vec) {
    std::erase_if(vec, [handle](const auto& p) { return p.first == handle; });
  };
  drop(pre_hooks_);
  drop(post_hooks_);
}

void Module::clear_hooks() {
  pre_hooks_.clear();
  post_hooks_.clear();
}

std::vector<Parameter*> Module::parameters() {
  std::vector<Parameter*> out;
  for (Parameter* p : local_parameters()) out.push_back(p);
  for (auto& [name, child] : children_) {
    for (Parameter* p : child->parameters()) out.push_back(p);
  }
  return out;
}

std::vector<std::pair<std::string, Parameter*>> Module::named_parameters() {
  std::vector<std::pair<std::string, Parameter*>> out;
  for (auto& [path, mod] : named_modules()) {
    for (Parameter* p : mod->local_parameters()) {
      out.emplace_back(path.empty() ? p->name : path + "." + p->name, p);
    }
  }
  return out;
}

std::vector<std::pair<std::string, Parameter*>> Module::named_buffers() {
  std::vector<std::pair<std::string, Parameter*>> out;
  for (auto& [path, mod] : named_modules()) {
    for (Parameter* p : mod->local_buffers()) {
      out.emplace_back(path.empty() ? p->name : path + "." + p->name, p);
    }
  }
  return out;
}

std::vector<Parameter*> Module::buffers() {
  std::vector<Parameter*> out;
  for (Parameter* p : local_buffers()) out.push_back(p);
  for (auto& [name, child] : children_) {
    for (Parameter* p : child->buffers()) out.push_back(p);
  }
  return out;
}

void Module::zero_grad() {
  for (Parameter* p : parameters()) p->zero_grad();
}

int64_t Module::parameter_count() {
  int64_t n = 0;
  for (Parameter* p : parameters()) n += p->value.numel();
  return n;
}

void Module::collect_named_modules(
    const std::string& prefix,
    std::vector<std::pair<std::string, Module*>>& out) {
  out.emplace_back(prefix, this);
  for (auto& [name, child] : children_) {
    child->collect_named_modules(prefix.empty() ? name : prefix + "." + name,
                                 out);
  }
}

std::vector<std::pair<std::string, Module*>> Module::named_modules() {
  std::vector<std::pair<std::string, Module*>> out;
  collect_named_modules("", out);
  return out;
}

Module* Module::find_module(const std::string& path) {
  for (auto& [p, m] : named_modules()) {
    if (p == path) return m;
  }
  return nullptr;
}

void Module::train(bool on) {
  training_ = on;
  for (auto& [name, child] : children_) child->train(on);
}

void Module::register_child(std::string name, Module& child) {
  children_.emplace_back(std::move(name), &child);
}

namespace {
constexpr uint32_t kWeightFileMagic = 0x47455731;  // "GEW1"
}

void Module::save_weights(const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("save_weights: cannot open " + path);
  auto params = parameters();
  for (Parameter* b : buffers()) params.push_back(b);
  const auto count = static_cast<uint64_t>(params.size());
  f.write(reinterpret_cast<const char*>(&kWeightFileMagic), sizeof(uint32_t));
  f.write(reinterpret_cast<const char*>(&count), sizeof(uint64_t));
  for (Parameter* p : params) {
    const auto n = static_cast<uint64_t>(p->value.numel());
    f.write(reinterpret_cast<const char*>(&n), sizeof(uint64_t));
    f.write(reinterpret_cast<const char*>(p->value.cdata()),
            static_cast<std::streamsize>(n * sizeof(float)));
  }
  if (!f) throw std::runtime_error("save_weights: write failed for " + path);
}

void Module::load_weights(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("load_weights: cannot open " + path);
  uint32_t magic = 0;
  uint64_t count = 0;
  f.read(reinterpret_cast<char*>(&magic), sizeof(uint32_t));
  f.read(reinterpret_cast<char*>(&count), sizeof(uint64_t));
  auto params = parameters();
  for (Parameter* b : buffers()) params.push_back(b);
  if (!f || magic != kWeightFileMagic ||
      count != static_cast<uint64_t>(params.size())) {
    throw std::runtime_error("load_weights: " + path +
                             " is not a weight file for this model");
  }
  for (Parameter* p : params) {
    uint64_t n = 0;
    f.read(reinterpret_cast<char*>(&n), sizeof(uint64_t));
    if (!f || n != static_cast<uint64_t>(p->value.numel())) {
      throw std::runtime_error("load_weights: shape mismatch for parameter '" +
                               p->name + "'");
    }
    f.read(reinterpret_cast<char*>(p->value.data()),
           static_cast<std::streamsize>(n * sizeof(float)));
  }
  if (!f) throw std::runtime_error("load_weights: truncated file " + path);
}

}  // namespace ge::nn
