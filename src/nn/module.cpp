#include "nn/module.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>
#include <unordered_set>

#include "obs/telemetry.hpp"

namespace ge::nn {

namespace {

/// Active record/replay pass on this thread (campaign trials run one
/// forward per worker thread, so a thread-local needs no plumbing through
/// every composite forward). Null outside record_forward/forward_from.
struct ReplayCtx {
  ReplayPlan* rec = nullptr;        ///< record target (record mode)
  const ReplayPlan* plan = nullptr; ///< replay source (replay mode)
  int64_t fire_enter = 0;  ///< enter index of the fault site's invocation
  int64_t served = 0;      ///< invocations returned from the cache
};

thread_local ReplayCtx* tl_replay = nullptr;

/// RAII (de)activation, exception-safe.
struct ReplayScope {
  explicit ReplayScope(ReplayCtx& ctx) { tl_replay = &ctx; }
  ~ReplayScope() { tl_replay = nullptr; }
};

}  // namespace

int64_t ReplayPlan::cache_bytes() const {
  std::unordered_set<const void*> seen;
  int64_t bytes = 0;
  for (const auto& [mod, rec] : records_) {
    const void* key = rec.output.storage_key();
    if (key == nullptr || !seen.insert(key).second) continue;
    bytes += rec.output.numel() * static_cast<int64_t>(sizeof(float));
  }
  return bytes;
}

bool ReplayPlan::skipped_for(const Module& site, const Module& m) const {
  const auto si = records_.find(&site);
  const auto mi = records_.find(&m);
  if (si == records_.end() || mi == records_.end()) return false;
  return mi->second.exit < si->second.enter;
}

ReplayPlan ReplayPlan::translate(Module& from_root, Module& to_root) const {
  const auto from = from_root.named_modules();
  const auto to = to_root.named_modules();
  if (from.size() != to.size()) {
    throw std::invalid_argument(
        "ReplayPlan::translate: module trees differ in size");
  }
  std::unordered_map<const Module*, Module*> map;
  map.reserve(from.size());
  for (size_t i = 0; i < from.size(); ++i) {
    if (from[i].first != to[i].first) {
      throw std::invalid_argument(
          "ReplayPlan::translate: module path mismatch at '" +
          from[i].first + "' vs '" + to[i].first + "'");
    }
    map.emplace(from[i].second, to[i].second);
  }
  ReplayPlan out;
  out.next_seq_ = next_seq_;
  out.reentered_ = reentered_;
  out.records_.reserve(records_.size());
  for (const auto& [mod, rec] : records_) {
    const auto it = map.find(mod);
    if (it == map.end()) {
      throw std::invalid_argument(
          "ReplayPlan::translate: recorded module is not in the source tree");
    }
    out.records_.emplace(it->second, rec);  // tensor share, O(1)
  }
  return out;
}

void ReplayPlan::clear() {
  records_.clear();
  next_seq_ = 0;
  reentered_ = false;
}

Tensor Module::backward(const Tensor& /*grad_out*/) {
  throw std::logic_error("backward not implemented for layer kind '" + kind_ +
                         "'");
}

Tensor Module::run_forward(const Tensor& input) {
  // Per-module spans exist for the profiler's attribution table (where
  // does an emulated forward spend its time, by layer kind). They are
  // profiling-only: under plain --trace the nullptr name keeps them
  // inert, so trace volume is unchanged from pre-profiler builds.
  obs::Span span("nn", obs::profiling_enabled() ? kind_.c_str() : nullptr);
  Tensor x = input;
  for (auto& [handle, hook] : pre_hooks_) hook(*this, x);
  Tensor y = forward(x);
  for (auto& [handle, hook] : post_hooks_) hook(*this, y);
  return y;
}

Tensor Module::operator()(const Tensor& input) {
  ReplayCtx* rc = tl_replay;
  if (rc == nullptr) return run_forward(input);

  if (rc->plan != nullptr) {
    // Replay: serve any invocation that completed strictly before the
    // fault site entered. Everything else (the site, its subtree, its
    // ancestors, and the whole suffix) recomputes normally.
    const auto it = rc->plan->records_.find(this);
    if (it != rc->plan->records_.end() &&
        it->second.exit < rc->fire_enter) {
      ++rc->served;
      return it->second.output;  // O(1) COW share of the golden buffer
    }
    return run_forward(input);
  }

  // Record: assign this invocation its nesting interval, run normally
  // (children record recursively), then keep an O(1) share of the output.
  ReplayPlan& plan = *rc->rec;
  if (!plan.records_.try_emplace(this).second) {
    // Module ran twice (weight sharing): intervals are ambiguous, so the
    // whole plan is refused by usable(). Keep executing normally.
    plan.reentered_ = true;
  }
  const int64_t enter = plan.next_seq_++;
  Tensor y = run_forward(input);
  // Re-find: child insertions may have rehashed the map since try_emplace.
  ReplayPlan::Record& rec = plan.records_[this];
  rec.enter = enter;
  rec.exit = plan.next_seq_++;
  rec.output = y;
  return y;
}

Tensor Module::record_forward(ReplayPlan& plan, const Tensor& input) {
  if (tl_replay != nullptr) {
    throw std::logic_error(
        "record_forward: a record/replay pass is already active");
  }
  plan.clear();
  ReplayCtx ctx;
  ctx.rec = &plan;
  ReplayScope scope(ctx);
  return (*this)(input);
}

Tensor Module::forward_from(const ReplayPlan& plan, const Module& site,
                            const Tensor& input,
                            int64_t* served_from_cache) {
  if (tl_replay != nullptr) {
    throw std::logic_error(
        "forward_from: a record/replay pass is already active");
  }
  if (!plan.usable()) {
    throw std::invalid_argument(
        "forward_from: plan is unusable (nothing recorded, or a module ran "
        "more than once)");
  }
  const auto it = plan.records_.find(&site);
  if (it == plan.records_.end()) {
    throw std::invalid_argument(
        "forward_from: site was not recorded in this plan");
  }
  ReplayCtx ctx;
  ctx.plan = &plan;
  ctx.fire_enter = it->second.enter;
  Tensor y;
  {
    ReplayScope scope(ctx);
    y = (*this)(input);
  }
  if (served_from_cache != nullptr) *served_from_cache = ctx.served;
  return y;
}

Module::HookHandle Module::add_forward_hook(Hook h) {
  const HookHandle handle = next_handle_++;
  post_hooks_.emplace_back(handle, std::move(h));
  return handle;
}

Module::HookHandle Module::add_forward_pre_hook(Hook h) {
  const HookHandle handle = next_handle_++;
  pre_hooks_.emplace_back(handle, std::move(h));
  return handle;
}

void Module::remove_hook(HookHandle handle) {
  auto drop = [handle](auto& vec) {
    std::erase_if(vec, [handle](const auto& p) { return p.first == handle; });
  };
  drop(pre_hooks_);
  drop(post_hooks_);
}

void Module::clear_hooks() {
  pre_hooks_.clear();
  post_hooks_.clear();
}

std::vector<Parameter*> Module::parameters() {
  std::vector<Parameter*> out;
  for (Parameter* p : local_parameters()) out.push_back(p);
  for (auto& [name, child] : children_) {
    for (Parameter* p : child->parameters()) out.push_back(p);
  }
  return out;
}

std::vector<std::pair<std::string, Parameter*>> Module::named_parameters() {
  std::vector<std::pair<std::string, Parameter*>> out;
  for (auto& [path, mod] : named_modules()) {
    for (Parameter* p : mod->local_parameters()) {
      out.emplace_back(path.empty() ? p->name : path + "." + p->name, p);
    }
  }
  return out;
}

std::vector<std::pair<std::string, Parameter*>> Module::named_buffers() {
  std::vector<std::pair<std::string, Parameter*>> out;
  for (auto& [path, mod] : named_modules()) {
    for (Parameter* p : mod->local_buffers()) {
      out.emplace_back(path.empty() ? p->name : path + "." + p->name, p);
    }
  }
  return out;
}

std::vector<Parameter*> Module::buffers() {
  std::vector<Parameter*> out;
  for (Parameter* p : local_buffers()) out.push_back(p);
  for (auto& [name, child] : children_) {
    for (Parameter* p : child->buffers()) out.push_back(p);
  }
  return out;
}

void Module::zero_grad() {
  for (Parameter* p : parameters()) p->zero_grad();
}

int64_t Module::parameter_count() {
  int64_t n = 0;
  for (Parameter* p : parameters()) n += p->value.numel();
  return n;
}

void Module::collect_named_modules(
    const std::string& prefix,
    std::vector<std::pair<std::string, Module*>>& out) {
  out.emplace_back(prefix, this);
  for (auto& [name, child] : children_) {
    child->collect_named_modules(prefix.empty() ? name : prefix + "." + name,
                                 out);
  }
}

std::vector<std::pair<std::string, Module*>> Module::named_modules() {
  std::vector<std::pair<std::string, Module*>> out;
  collect_named_modules("", out);
  return out;
}

Module* Module::find_module(const std::string& path) {
  for (auto& [p, m] : named_modules()) {
    if (p == path) return m;
  }
  return nullptr;
}

void Module::train(bool on) {
  training_ = on;
  for (auto& [name, child] : children_) child->train(on);
}

void Module::register_child(std::string name, Module& child) {
  children_.emplace_back(std::move(name), &child);
}

namespace {
constexpr uint32_t kWeightFileMagic = 0x47455731;  // "GEW1"
}

void Module::save_weights(const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("save_weights: cannot open " + path);
  auto params = parameters();
  for (Parameter* b : buffers()) params.push_back(b);
  const auto count = static_cast<uint64_t>(params.size());
  f.write(reinterpret_cast<const char*>(&kWeightFileMagic), sizeof(uint32_t));
  f.write(reinterpret_cast<const char*>(&count), sizeof(uint64_t));
  for (Parameter* p : params) {
    const auto n = static_cast<uint64_t>(p->value.numel());
    f.write(reinterpret_cast<const char*>(&n), sizeof(uint64_t));
    f.write(reinterpret_cast<const char*>(p->value.cdata()),
            static_cast<std::streamsize>(n * sizeof(float)));
  }
  if (!f) throw std::runtime_error("save_weights: write failed for " + path);
}

void Module::load_weights(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("load_weights: cannot open " + path);
  uint32_t magic = 0;
  uint64_t count = 0;
  f.read(reinterpret_cast<char*>(&magic), sizeof(uint32_t));
  f.read(reinterpret_cast<char*>(&count), sizeof(uint64_t));
  auto params = parameters();
  for (Parameter* b : buffers()) params.push_back(b);
  if (!f || magic != kWeightFileMagic ||
      count != static_cast<uint64_t>(params.size())) {
    throw std::runtime_error("load_weights: " + path +
                             " is not a weight file for this model");
  }
  for (Parameter* p : params) {
    uint64_t n = 0;
    f.read(reinterpret_cast<char*>(&n), sizeof(uint64_t));
    if (!f || n != static_cast<uint64_t>(p->value.numel())) {
      throw std::runtime_error("load_weights: shape mismatch for parameter '" +
                               p->name + "'");
    }
    f.read(reinterpret_cast<char*>(p->value.data()),
           static_cast<std::streamsize>(n * sizeof(float)));
  }
  if (!f) throw std::runtime_error("load_weights: truncated file " + path);
}

}  // namespace ge::nn
