// Optimizers over a module's parameter set.
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace ge::nn {

/// SGD with classical momentum and decoupled L2 weight decay.
class SGD {
 public:
  SGD(std::vector<Parameter*> params, float lr, float momentum = 0.9f,
      float weight_decay = 0.0f);

  void step();
  void zero_grad();
  void set_lr(float lr) noexcept { lr_ = lr; }
  float lr() const noexcept { return lr_; }

 private:
  std::vector<Parameter*> params_;
  std::vector<Tensor> velocity_;
  float lr_;
  float momentum_;
  float weight_decay_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam {
 public:
  Adam(std::vector<Parameter*> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);

  void step();
  void zero_grad();
  void set_lr(float lr) noexcept { lr_ = lr; }
  float lr() const noexcept { return lr_; }

 private:
  std::vector<Parameter*> params_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  float lr_, beta1_, beta2_, eps_, weight_decay_;
  int64_t t_ = 0;
};

}  // namespace ge::nn
