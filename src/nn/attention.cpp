#include "nn/attention.hpp"

#include <cmath>
#include <stdexcept>

#include "parallel/thread_pool.hpp"
#include "tensor/tensor_ops.hpp"

namespace ge::nn {

MultiheadSelfAttention::MultiheadSelfAttention(int64_t embed_dim,
                                               int64_t num_heads, Rng& rng)
    : Module("MultiheadSelfAttention"),
      dim_(embed_dim),
      heads_(num_heads),
      head_dim_(embed_dim / num_heads),
      scale_(1.0f / std::sqrt(static_cast<float>(embed_dim / num_heads))),
      qkv_(std::make_unique<Linear>(embed_dim, 3 * embed_dim, rng)),
      proj_(std::make_unique<Linear>(embed_dim, embed_dim, rng)) {
  if (embed_dim % num_heads != 0) {
    throw std::invalid_argument(
        "MultiheadSelfAttention: embed_dim % num_heads != 0");
  }
  register_child("qkv", *qkv_);
  register_child("proj", *proj_);
}

namespace {

/// Copy one (T, head_dim) head slice out of a (B, T, 3D) qkv tensor.
/// `which` selects q (0), k (1) or v (2).
void gather_head(const Tensor& qkv, int64_t b, int64_t h, int which,
                 int64_t T, int64_t D, int64_t hd, Tensor& dst) {
  const float* p = qkv.data();
  float* pd = dst.data();
  for (int64_t t = 0; t < T; ++t) {
    const float* row = p + (b * T + t) * 3 * D + which * D + h * hd;
    for (int64_t i = 0; i < hd; ++i) pd[t * hd + i] = row[i];
  }
}

/// Scatter-add one (T, head_dim) gradient back into a (B, T, 3D) buffer.
/// Takes the raw pointer (resolved once, outside the parallel region) so no
/// worker thread touches the shared Tensor handle.
void scatter_head(float* p, int64_t b, int64_t h, int which, int64_t T,
                  int64_t D, int64_t hd, const Tensor& src) {
  const float* ps = src.cdata();
  for (int64_t t = 0; t < T; ++t) {
    float* row = p + (b * T + t) * 3 * D + which * D + h * hd;
    for (int64_t i = 0; i < hd; ++i) row[i] += ps[t * hd + i];
  }
}

}  // namespace

Tensor MultiheadSelfAttention::forward(const Tensor& input) {
  if (input.dim() != 3 || input.size(2) != dim_) {
    throw std::invalid_argument("MultiheadSelfAttention: expected (B, T, " +
                                std::to_string(dim_) + ")");
  }
  const int64_t B = input.size(0), T = input.size(1);
  Tensor qkv = (*qkv_)(input);  // (B, T, 3D), hooks fire on the projection

  const bool cache = is_training();
  if (cache) {
    q_ = Tensor({B, heads_, T, head_dim_});
    k_ = Tensor({B, heads_, T, head_dim_});
    v_ = Tensor({B, heads_, T, head_dim_});
    attn_ = Tensor({B, heads_, T, T});
    cached_B_ = B;
    cached_T_ = T;
  }

  Tensor merged({B, T, dim_});
  // Resolve mutable pointers once, before the parallel region: COW (if any)
  // fires here on one thread, and workers below only use raw pointers into
  // buffers that are unique by construction.
  float* const pm = merged.data();
  float* const pq = cache ? q_.data() : nullptr;
  float* const pk = cache ? k_.data() : nullptr;
  float* const pv = cache ? v_.data() : nullptr;
  float* const pattn = cache ? attn_.data() : nullptr;
  // (b, h) pairs are independent: each writes its own head_dim_ column slice
  // of `merged` and its own cache slices. Scratch tensors live inside the
  // body so concurrent chunks never share them; the inner matmuls run serial
  // inline because we're already in a parallel region.
  parallel::parallel_for(
      0, B * heads_, parallel::grain_for(2 * T * T * head_dim_),
      [&](int64_t lo, int64_t hi) {
        Tensor qh({T, head_dim_}), kh({T, head_dim_}), vh({T, head_dim_});
        for (int64_t bh = lo; bh < hi; ++bh) {
          const int64_t b = bh / heads_;
          const int64_t h = bh % heads_;
          gather_head(qkv, b, h, 0, T, dim_, head_dim_, qh);
          gather_head(qkv, b, h, 1, T, dim_, head_dim_, kh);
          gather_head(qkv, b, h, 2, T, dim_, head_dim_, vh);
          Tensor scores = ops::matmul_bt(qh, kh);  // (T, T)
          ops::mul_scalar_inplace(scores, scale_);
          Tensor attn = ops::softmax_lastdim(scores);
          Tensor out = ops::matmul(attn, vh);  // (T, head_dim)
          // write head output into the merged (B, T, D) tensor
          const float* po = out.cdata();
          for (int64_t t = 0; t < T; ++t) {
            float* row = pm + (b * T + t) * dim_ + h * head_dim_;
            for (int64_t i = 0; i < head_dim_; ++i) {
              row[i] = po[t * head_dim_ + i];
            }
          }
          if (cache) {
            const int64_t base = bh * T * head_dim_;
            std::copy(qh.cdata(), qh.cdata() + T * head_dim_, pq + base);
            std::copy(kh.cdata(), kh.cdata() + T * head_dim_, pk + base);
            std::copy(vh.cdata(), vh.cdata() + T * head_dim_, pv + base);
            std::copy(attn.cdata(), attn.cdata() + T * T, pattn + bh * T * T);
          }
        }
      });
  return (*proj_)(merged);
}

Tensor MultiheadSelfAttention::backward(const Tensor& grad_out) {
  if (attn_.empty()) {
    throw std::logic_error(
        "MultiheadSelfAttention::backward before training forward");
  }
  const int64_t B = cached_B_, T = cached_T_;
  Tensor g_merged = proj_->backward(grad_out);  // (B, T, D)
  Tensor gqkv({B, T, 3 * dim_});

  // Pointers resolved on this thread, before the region (same rationale as
  // in forward()).
  float* const pgq = gqkv.data();
  const float* const pq = q_.cdata();
  const float* const pk = k_.cdata();
  const float* const pv = v_.cdata();
  const float* const pattn_all = attn_.cdata();
  const float* const pm = g_merged.cdata();

  // Same (b, h) independence as the forward pass: each pair scatter-adds
  // into its own disjoint q/k/v slices of gqkv.
  parallel::parallel_for(
      0, B * heads_, parallel::grain_for(4 * T * T * head_dim_),
      [&](int64_t lo, int64_t hi) {
        Tensor gout({T, head_dim_});
        for (int64_t bh = lo; bh < hi; ++bh) {
          const int64_t b = bh / heads_;
          const int64_t h = bh % heads_;
          // slice caches for this (b, h)
          const int64_t base = bh * T * head_dim_;
          Tensor qh({T, head_dim_}), kh({T, head_dim_}), vh({T, head_dim_});
          std::copy(pq + base, pq + base + T * head_dim_, qh.data());
          std::copy(pk + base, pk + base + T * head_dim_, kh.data());
          std::copy(pv + base, pv + base + T * head_dim_, vh.data());
          Tensor attn({T, T});
          std::copy(pattn_all + bh * T * T, pattn_all + (bh + 1) * T * T,
                    attn.data());
          // gradient of this head's output
          float* pg = gout.data();
          for (int64_t t = 0; t < T; ++t) {
            const float* row = pm + (b * T + t) * dim_ + h * head_dim_;
            for (int64_t i = 0; i < head_dim_; ++i) {
              pg[t * head_dim_ + i] = row[i];
            }
          }
          // out = attn @ v
          Tensor d_attn = ops::matmul_bt(gout, vh);  // (T, T)
          Tensor d_v = ops::matmul_at(attn, gout);   // (T, head_dim)
          // softmax backward, row-wise: ds = a * (da - sum(da * a))
          Tensor d_scores({T, T});
          {
            const float* pa = attn.data();
            const float* pda = d_attn.data();
            float* pds = d_scores.data();
            for (int64_t r = 0; r < T; ++r) {
              double dot = 0.0;
              for (int64_t c = 0; c < T; ++c) {
                dot += double(pda[r * T + c]) * pa[r * T + c];
              }
              for (int64_t c = 0; c < T; ++c) {
                pds[r * T + c] = pa[r * T + c] *
                                 (pda[r * T + c] - static_cast<float>(dot));
              }
            }
          }
          ops::mul_scalar_inplace(d_scores, scale_);
          Tensor d_q = ops::matmul(d_scores, kh);     // (T, head_dim)
          Tensor d_k = ops::matmul_at(d_scores, qh);  // (T, head_dim)
          scatter_head(pgq, b, h, 0, T, dim_, head_dim_, d_q);
          scatter_head(pgq, b, h, 1, T, dim_, head_dim_, d_k);
          scatter_head(pgq, b, h, 2, T, dim_, head_dim_, d_v);
        }
      });
  return qkv_->backward(gqkv);
}

}  // namespace ge::nn
