#include "nn/embedding.hpp"

#include <stdexcept>

#include "tensor/tensor_view.hpp"

namespace ge::nn {

PatchEmbed::PatchEmbed(int64_t in_channels, int64_t embed_dim, int64_t patch,
                       Rng& rng)
    : Module("PatchEmbed"),
      dim_(embed_dim),
      proj_(std::make_unique<Conv2d>(in_channels, embed_dim, patch, patch,
                                     /*padding=*/0, rng)) {
  register_child("proj", *proj_);
}

Tensor PatchEmbed::forward(const Tensor& input) {
  Tensor y = (*proj_)(input);  // (B, D, GH, GW)
  cached_conv_shape_ = y.shape();
  const int64_t B = y.size(0), D = y.size(1), G = y.size(2) * y.size(3);
  // (B, D, G) -> (B, G, D) token layout. A single patch grid cell (G == 1)
  // makes the transpose an identity on storage: reshape shares the buffer
  // instead of copying it.
  if (G == 1) return y.reshape({B, G, D});
  Tensor out({B, G, D});
  float* po = out.data();
  for (int64_t b = 0; b < B; ++b) {
    // Batch b's (D, G) block read transposed: shape {G, D}, stride 1 down
    // the patch axis, stride G across embedding lanes.
    const ConstTensorView tile(y, b * D * G, {G, D}, {1, G});
    tile.materialize_into(po + b * G * D);
  }
  return out;
}

Tensor PatchEmbed::backward(const Tensor& grad_out) {
  if (cached_conv_shape_.size() != 4) {
    throw std::logic_error("PatchEmbed::backward before forward");
  }
  const int64_t B = cached_conv_shape_[0], D = cached_conv_shape_[1],
                G = cached_conv_shape_[2] * cached_conv_shape_[3];
  Tensor gconv(cached_conv_shape_);
  const float* pg = grad_out.data();
  float* po = gconv.data();
  for (int64_t b = 0; b < B; ++b) {
    for (int64_t d = 0; d < D; ++d) {
      for (int64_t g = 0; g < G; ++g) {
        po[(b * D + d) * G + g] = pg[(b * G + g) * D + d];
      }
    }
  }
  return proj_->backward(gconv);
}

ClassTokenPosEmbed::ClassTokenPosEmbed(int64_t num_patches, int64_t dim,
                                       Rng& rng)
    : Module("ClassTokenPosEmbed"),
      num_patches_(num_patches),
      dim_(dim),
      cls_("cls_token", rng.normal_tensor({1, dim}, 0.0f, 0.02f)),
      pos_("pos_embed",
           rng.normal_tensor({num_patches + 1, dim}, 0.0f, 0.02f)) {}

Tensor ClassTokenPosEmbed::forward(const Tensor& input) {
  if (input.dim() != 3 || input.size(1) != num_patches_ ||
      input.size(2) != dim_) {
    throw std::invalid_argument("ClassTokenPosEmbed: expected (B, " +
                                std::to_string(num_patches_) + ", " +
                                std::to_string(dim_) + ")");
  }
  const int64_t B = input.size(0), T = num_patches_ + 1;
  Tensor out({B, T, dim_});
  const float* pin = input.data();
  const float* pcls = cls_.value.cdata();
  const float* ppos = pos_.value.cdata();
  float* po = out.data();
  for (int64_t b = 0; b < B; ++b) {
    for (int64_t d = 0; d < dim_; ++d) {
      po[(b * T + 0) * dim_ + d] = pcls[d] + ppos[d];
    }
    for (int64_t t = 1; t < T; ++t) {
      for (int64_t d = 0; d < dim_; ++d) {
        po[(b * T + t) * dim_ + d] =
            pin[(b * num_patches_ + (t - 1)) * dim_ + d] + ppos[t * dim_ + d];
      }
    }
  }
  return out;
}

Tensor ClassTokenPosEmbed::backward(const Tensor& grad_out) {
  const int64_t B = grad_out.size(0), T = num_patches_ + 1;
  Tensor gx({B, num_patches_, dim_});
  const float* pg = grad_out.data();
  float* pgx = gx.data();
  float* const pclsg = cls_.grad.data();
  float* const pposg = pos_.grad.data();
  for (int64_t b = 0; b < B; ++b) {
    for (int64_t d = 0; d < dim_; ++d) {
      pclsg[d] += pg[(b * T + 0) * dim_ + d];
    }
    for (int64_t t = 0; t < T; ++t) {
      for (int64_t d = 0; d < dim_; ++d) {
        pposg[t * dim_ + d] += pg[(b * T + t) * dim_ + d];
      }
    }
    for (int64_t t = 1; t < T; ++t) {
      for (int64_t d = 0; d < dim_; ++d) {
        pgx[(b * num_patches_ + (t - 1)) * dim_ + d] =
            pg[(b * T + t) * dim_ + d];
      }
    }
  }
  return gx;
}

std::vector<Parameter*> ClassTokenPosEmbed::local_parameters() {
  return {&cls_, &pos_};
}

Tensor TakeClassToken::forward(const Tensor& input) {
  if (input.dim() != 3) {
    throw std::invalid_argument("TakeClassToken: expected (B, T, D)");
  }
  cached_shape_ = input.shape();
  const int64_t B = input.size(0), T = input.size(1), D = input.size(2);
  // Single-token input: taking token 0 is the whole tensor — share the
  // storage instead of copying it.
  if (T == 1) return input.reshape({B, D});
  // Token-0 rows as a strided view: unit-stride D runs, one per batch;
  // materialize_into copies whole rows instead of gathering scalars.
  const ConstTensorView cls(input, 0, {B, D}, {T * D, 1});
  Tensor out({B, D});
  cls.materialize_into(out.data());
  return out;
}

Tensor TakeClassToken::backward(const Tensor& grad_out) {
  if (cached_shape_.size() != 3) {
    throw std::logic_error("TakeClassToken::backward before forward");
  }
  const int64_t B = cached_shape_[0], T = cached_shape_[1],
                D = cached_shape_[2];
  Tensor gx(cached_shape_);
  const float* pg = grad_out.data();
  float* po = gx.data();
  for (int64_t b = 0; b < B; ++b) {
    for (int64_t d = 0; d < D; ++d) po[(b * T) * D + d] = pg[b * D + d];
  }
  (void)T;
  return gx;
}

}  // namespace ge::nn
