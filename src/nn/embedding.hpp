// Vision-transformer input embeddings: patchify + class token + positions.
#pragma once

#include <memory>

#include "nn/conv.hpp"
#include "nn/module.hpp"

namespace ge::nn {

/// NCHW image -> (B, T, D) patch tokens via a stride=patch conv (the
/// standard ViT patchify, which also makes it a CONV layer GoldenEye
/// instruments by default).
class PatchEmbed : public Module {
 public:
  PatchEmbed(int64_t in_channels, int64_t embed_dim, int64_t patch, Rng& rng);
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_out) override;

  int64_t embed_dim() const noexcept { return dim_; }

 private:
  int64_t dim_;
  std::unique_ptr<Conv2d> proj_;
  Shape cached_conv_shape_;  // (B, D, GH, GW) of the last forward
};

/// Prepend a learnable class token and add learnable position embeddings:
/// (B, T, D) -> (B, T+1, D).
class ClassTokenPosEmbed : public Module {
 public:
  /// `num_patches` fixes the positional table size (T must match).
  ClassTokenPosEmbed(int64_t num_patches, int64_t dim, Rng& rng);
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_out) override;

  std::vector<Parameter*> local_parameters() override;

 private:
  int64_t num_patches_;
  int64_t dim_;
  Parameter cls_;  // (1, D)
  Parameter pos_;  // (T+1, D)
};

/// Select token 0 of every sequence: (B, T, D) -> (B, D).
class TakeClassToken : public Module {
 public:
  TakeClassToken() : Module("TakeClassToken") {}
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  Shape cached_shape_;
};

}  // namespace ge::nn
