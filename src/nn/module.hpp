// Module: base class of the NN framework — this repo's stand-in for
// torch.nn.Module.
//
// The feature GoldenEye actually depends on is the *forward hook*: a
// callback that observes (and may rewrite, in place) a layer's output
// tensor after `forward` runs. Number-format emulation and fault injection
// are implemented entirely as hooks (src/core/emulator.*), keeping every
// layer format-agnostic — the paper's central design (§III-A).
//
// Invariants:
//  - composite modules must invoke children through operator() (never
//    child.forward() directly) so hooks fire at every layer;
//  - backward() implements the gradient of forward() w.r.t. its input and
//    accumulates parameter gradients; quantisation applied by hooks is
//    intentionally invisible to backward (straight-through estimator, the
//    standard choice for quantised training and what QPyTorch does).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "tensor/tensor.hpp"

namespace ge::nn {

class Module;

/// Record of one forward pass through a module tree: for every submodule
/// invocation, its nesting interval in execution order and its post-hook
/// output tensor (an O(1) copy-on-write share of the activation buffer
/// that forward pass produced — recording copies nothing).
///
/// This is the golden-prefix cache behind campaign suffix-replay
/// (DESIGN.md §10): a fault injected at site S can only perturb state from
/// S onwards, so Module::forward_from serves every invocation that
/// completed strictly before S entered straight from the plan and
/// recomputes only the suffix. Interval comparison — rather than a linear
/// "seed the chain at S" view — is what keeps the skip rule exact for
/// non-sequential graphs: a residual branch or attention side-path that
/// finished before S is served from cache, while any ancestor whose
/// interval contains S (and therefore stitches cached and recomputed
/// tensors together) re-executes its own glue code.
class ReplayPlan {
 public:
  /// True once a record_forward pass filled this plan.
  bool recorded() const noexcept { return next_seq_ > 0; }
  /// False when some module ran more than once in the recorded forward
  /// (weight sharing / module reuse): intervals are then ambiguous and
  /// forward_from refuses the plan. Callers fall back to full forwards.
  bool usable() const noexcept { return recorded() && !reentered_; }
  size_t modules_recorded() const noexcept { return records_.size(); }
  bool contains(const Module& m) const {
    return records_.count(&m) != 0;
  }
  /// Bytes of activation storage the cached outputs keep alive. Nested
  /// shares (a Sequential returning its last child's tensor) count once.
  int64_t cache_bytes() const;
  /// True when forward_from(site) would serve `m` from the cache — i.e. m's
  /// recorded invocation completed strictly before site first entered.
  /// False for unrecorded modules, for site itself, its subtree, its
  /// ancestors, and everything executing after it. Campaigns use this to
  /// check that a companion fault site re-executes during a suffix replay.
  bool skipped_for(const Module& site, const Module& m) const;
  /// Re-key this plan onto a structurally identical module tree (campaign
  /// worker replicas): module pointers map positionally via
  /// named_modules(), cached tensors are shared, not copied. Throws
  /// std::invalid_argument when the trees disagree.
  ReplayPlan translate(Module& from_root, Module& to_root) const;
  void clear();

 private:
  friend class Module;
  struct Record {
    int64_t enter = -1;  ///< pre-order event index at operator() entry
    int64_t exit = -1;   ///< event index after post-hooks ran
    Tensor output;       ///< operator() return value (COW share)
  };
  std::unordered_map<const Module*, Record> records_;
  int64_t next_seq_ = 0;
  bool reentered_ = false;
};

/// A learnable tensor with its gradient accumulator.
struct Parameter {
  std::string name;  ///< local name, e.g. "weight"
  Tensor value;
  Tensor grad;

  Parameter(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}
  void zero_grad() { grad.fill(0.0f); }
};

class Module {
 public:
  /// Callback invoked around forward; may mutate the tensor in place.
  using Hook = std::function<void(Module&, Tensor&)>;
  /// Opaque handle for removing a previously added hook.
  using HookHandle = int64_t;

  explicit Module(std::string kind) : kind_(std::move(kind)) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Layer kind, e.g. "Conv2d", "Linear", "ReLU" (used by the emulator to
  /// pick default instrumentation targets, as the paper defaults to CONV
  /// and LINEAR layers).
  const std::string& kind() const noexcept { return kind_; }

  /// --- computation --------------------------------------------------------
  /// The layer function itself. Call through operator() so hooks fire.
  virtual Tensor forward(const Tensor& input) = 0;
  /// Gradient of forward w.r.t. input; accumulates parameter grads.
  /// Layers that do not need training may keep the default (throws).
  virtual Tensor backward(const Tensor& grad_out);

  /// Run pre-hooks, forward, then post-hooks. This is how parents (and
  /// users) invoke a module.
  Tensor operator()(const Tensor& input);

  /// --- golden-prefix record / replay -------------------------------------
  /// Run this tree's forward while recording every submodule invocation
  /// into `plan` (cleared first). Identical computation and hook firing to
  /// a plain call — recording only takes O(1) output shares on the way.
  /// Must not nest inside another record/replay pass (std::logic_error).
  Tensor record_forward(ReplayPlan& plan, const Tensor& input);

  /// Replay `plan`'s forward with a fault at `site`: every invocation
  /// whose recorded interval completed strictly before `site` entered
  /// returns its recorded output in O(1) — pre-hooks, forward and
  /// post-hooks all skipped — while `site` itself, its subtree, every
  /// ancestor, and everything after re-execute normally (hooks included).
  /// Bitwise identical to a full forward whose state differs from the
  /// recorded pass only at/after `site` (quantisation hooks recompute all
  /// metadata per call, so skipped sites leave no stale state behind; see
  /// DESIGN.md §10). Inference-only: skipped modules do not refresh any
  /// backward caches. `served_from_cache`, when non-null, receives the
  /// number of invocations served from the plan. Throws
  /// std::invalid_argument when the plan is unusable or `site` was never
  /// recorded, std::logic_error when nested in another record/replay.
  Tensor forward_from(const ReplayPlan& plan, const Module& site,
                      const Tensor& input,
                      int64_t* served_from_cache = nullptr);

  /// --- hooks ---------------------------------------------------------------
  HookHandle add_forward_hook(Hook h);
  HookHandle add_forward_pre_hook(Hook h);
  /// Remove one hook by handle; unknown handles are ignored (idempotent).
  void remove_hook(HookHandle handle);
  void clear_hooks();
  int64_t hook_count() const noexcept {
    return static_cast<int64_t>(pre_hooks_.size() + post_hooks_.size());
  }

  /// --- parameters ------------------------------------------------------------
  /// Parameters owned directly by this module (not children).
  virtual std::vector<Parameter*> local_parameters() { return {}; }
  /// Non-learnable persistent state (e.g. BatchNorm running statistics):
  /// saved/loaded with the weights but never touched by optimizers.
  virtual std::vector<Parameter*> local_buffers() { return {}; }
  /// All buffers in the subtree, depth-first.
  std::vector<Parameter*> buffers();
  /// All parameters in the subtree, depth-first, deterministic order.
  std::vector<Parameter*> parameters();
  /// Subtree parameters with dotted names ("stage1.0.conv1.weight").
  std::vector<std::pair<std::string, Parameter*>> named_parameters();
  /// Subtree buffers with dotted names ("bn1.running_mean"); the name-keyed
  /// counterpart ge::io state dicts round-trip through.
  std::vector<std::pair<std::string, Parameter*>> named_buffers();
  void zero_grad();
  /// Total scalar parameter count of the subtree.
  int64_t parameter_count();

  /// --- module tree -------------------------------------------------------------
  /// Direct children in registration order.
  const std::vector<std::pair<std::string, Module*>>& children() const {
    return children_;
  }
  /// This module plus all descendants with dotted path names; the root's
  /// own path is "".
  std::vector<std::pair<std::string, Module*>> named_modules();
  /// Find a descendant by dotted path; nullptr if absent.
  Module* find_module(const std::string& path);

  /// --- train / eval mode ----------------------------------------------------
  void train(bool on = true);
  void eval() { train(false); }
  bool is_training() const noexcept { return training_; }

  /// --- weight persistence ----------------------------------------------------
  /// Serialise all parameters to a flat binary file (shape-checked load).
  void save_weights(const std::string& path);
  /// Throws std::runtime_error on missing file or shape mismatch.
  void load_weights(const std::string& path);

 protected:
  /// Register a child (held by the derived class; base stores a non-owning
  /// pointer for traversal). Call in construction order.
  void register_child(std::string name, Module& child);

 private:
  /// The plain invocation body (pre-hooks, forward, post-hooks) with no
  /// record/replay bookkeeping; operator() dispatches here.
  Tensor run_forward(const Tensor& input);

  void collect_named_modules(const std::string& prefix,
                             std::vector<std::pair<std::string, Module*>>& out);

  std::string kind_;
  bool training_ = false;
  std::vector<std::pair<std::string, Module*>> children_;
  std::vector<std::pair<HookHandle, Hook>> pre_hooks_;
  std::vector<std::pair<HookHandle, Hook>> post_hooks_;
  HookHandle next_handle_ = 1;
};

}  // namespace ge::nn
