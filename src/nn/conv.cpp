#include "nn/conv.hpp"

#include <stdexcept>

#include "obs/telemetry.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/tensor_view.hpp"

namespace ge::nn {

namespace {
ops::Conv2dSpec make_spec(int64_t kernel, int64_t stride, int64_t padding) {
  ops::Conv2dSpec s;
  s.kernel_h = s.kernel_w = kernel;
  s.stride_h = s.stride_w = stride;
  s.pad_h = s.pad_w = padding;
  return s;
}
}  // namespace

Conv2d::Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
               int64_t stride, int64_t padding, Rng& rng, bool with_bias)
    : Module("Conv2d"),
      in_c_(in_channels),
      out_c_(out_channels),
      with_bias_(with_bias),
      spec_(make_spec(kernel, stride, padding)),
      weight_("weight",
              rng.kaiming_normal({out_channels, in_channels, kernel, kernel},
                                 in_channels * kernel * kernel)),
      bias_("bias", Tensor({out_channels})) {
  if (in_channels <= 0 || out_channels <= 0 || kernel <= 0 || stride <= 0 ||
      padding < 0) {
    throw std::invalid_argument("Conv2d: invalid geometry");
  }
}

Tensor Conv2d::forward(const Tensor& input) {
  if (input.dim() != 4 || input.size(1) != in_c_) {
    throw std::invalid_argument("Conv2d: expected NCHW with C=" +
                                std::to_string(in_c_) + ", got " +
                                shape_to_string(input.shape()));
  }
  const int64_t N = input.size(0), H = input.size(2), W = input.size(3);
  const int64_t OH = spec_.out_h(H), OW = spec_.out_w(W);
  const int64_t patch = in_c_ * spec_.kernel_h * spec_.kernel_w;

  // Unpadded inference never needs the im2col gather: every patch is a
  // strided window of the input storage itself. Training keeps the GEMM
  // path (backward consumes cached_cols_), and padded convs would have to
  // skip the zero taps — which changes nothing numerically here (pad taps
  // multiply 0.0f and FP32 addition of +0.0 is an identity on every finite
  // and non-finite MAC result except -0.0 sums, which the gate sidesteps
  // entirely by bitwise-matching the GEMM's tap-for-tap order).
  if (!is_training() && spec_.pad_h == 0 && spec_.pad_w == 0) {
    return forward_direct(input, N, H, W, OH, OW);
  }

  Tensor cols = ops::im2col(input, spec_);                  // (N*OH*OW, patch)
  Tensor wmat = weight_.value.reshape({out_c_, patch});     // (OC, patch)
  Tensor ymat = ops::matmul_bt(cols, wmat);                 // (N*OH*OW, OC)

  // Reorder (n, oh, ow, oc) -> NCHW.
  Tensor out({N, out_c_, OH, OW});
  const float* py = ymat.cdata();
  const float* pb = bias_.value.cdata();
  float* po = out.data();
  // Parallel over (n, oc) planes: each writes a disjoint OH*OW slice.
  parallel::parallel_for(
      0, N * out_c_, parallel::grain_for(OH * OW), [&](int64_t lo, int64_t hi) {
        for (int64_t noc = lo; noc < hi; ++noc) {
          const int64_t n = noc / out_c_;
          const int64_t oc = noc % out_c_;
          const float b = with_bias_ ? pb[oc] : 0.0f;
          float* dst = po + noc * OH * OW;
          const float* src = py + n * OH * OW * out_c_ + oc;
          for (int64_t i = 0; i < OH * OW; ++i) dst[i] = src[i * out_c_] + b;
        }
      });
  if (is_training()) {
    cached_cols_ = std::move(cols);
    cached_input_shape_ = input.shape();
  }
  return out;
}

Tensor Conv2d::forward_direct(const Tensor& input, int64_t N, int64_t H,
                              int64_t W, int64_t OH, int64_t OW) {
  const int64_t KH = spec_.kernel_h, KW = spec_.kernel_w;
  const int64_t SH = spec_.stride_h, SW = spec_.stride_w;
  const int64_t patch = in_c_ * KH * KW;

  // The view pins the input storage and supplies the patch geometry; the
  // kernel walks unit-stride W-rows inside it. Accumulation order is the
  // GEMM path's exactly: one FP32 accumulator per output element, taps in
  // ascending (c, kh, kw) — the im2col row layout — then + bias. That makes
  // the two paths bit-identical, so the prefix-cache/campaign digests do
  // not depend on which one ran.
  ConstTensorView xin(input);
  const float* px = xin.storage();
  const float* pw = weight_.value.cdata();
  const float* pb = bias_.value.cdata();
  Tensor out({N, out_c_, OH, OW});
  float* po = out.data();
  obs::add(obs::Counter::kAllocationsAvoided);  // the skipped cols matrix

  parallel::parallel_for(
      0, N * out_c_, parallel::grain_for(OH * OW * patch),
      [&](int64_t lo, int64_t hi) {
        for (int64_t noc = lo; noc < hi; ++noc) {
          const int64_t n = noc / out_c_;
          const int64_t oc = noc % out_c_;
          const float* wrow = pw + oc * patch;
          const float b = with_bias_ ? pb[oc] : 0.0f;
          float* dst = po + noc * OH * OW;
          for (int64_t oh = 0; oh < OH; ++oh) {
            const int64_t ih0 = oh * SH;
            for (int64_t ow = 0; ow < OW; ++ow) {
              const int64_t iw0 = ow * SW;
              const float* wp = wrow;
              float acc = 0.0f;
              for (int64_t c = 0; c < in_c_; ++c) {
                const float* xc =
                    px + ((n * in_c_ + c) * H + ih0) * W + iw0;
                for (int64_t kh = 0; kh < KH; ++kh) {
                  const float* xrow = xc + kh * W;
                  for (int64_t kw = 0; kw < KW; ++kw) {
                    acc += xrow[kw] * *wp++;
                  }
                }
              }
              dst[oh * OW + ow] = acc + b;
            }
          }
        }
      });
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  if (cached_cols_.empty()) {
    throw std::logic_error("Conv2d::backward before forward (train mode)");
  }
  const int64_t N = cached_input_shape_[0], H = cached_input_shape_[2],
                W = cached_input_shape_[3];
  const int64_t OH = spec_.out_h(H), OW = spec_.out_w(W);
  const int64_t patch = in_c_ * spec_.kernel_h * spec_.kernel_w;

  // NCHW grad -> (N*OH*OW, OC) row layout matching the forward GEMM.
  Tensor gmat({N * OH * OW, out_c_});
  const float* pg = grad_out.data();
  float* pgm = gmat.data();
  parallel::parallel_for(
      0, N * out_c_, parallel::grain_for(OH * OW), [&](int64_t lo, int64_t hi) {
        for (int64_t noc = lo; noc < hi; ++noc) {
          const int64_t n = noc / out_c_;
          const int64_t oc = noc % out_c_;
          const float* src = pg + noc * OH * OW;
          float* dst = pgm + n * OH * OW * out_c_ + oc;
          for (int64_t i = 0; i < OH * OW; ++i) dst[i * out_c_] = src[i];
        }
      });

  // dW = g^T cols ; db = column-sum(g) ; dcols = g Wmat ; dx = col2im(dcols)
  Tensor gw = ops::matmul_at(gmat, cached_cols_);  // (OC, patch)
  ops::add_inplace(weight_.grad,
                   gw.reshape(weight_.value.shape()));
  if (with_bias_) {
    float* pgb = bias_.grad.data();
    const int64_t rows = N * OH * OW;
    for (int64_t r = 0; r < rows; ++r) {
      for (int64_t oc = 0; oc < out_c_; ++oc) {
        pgb[oc] += pgm[r * out_c_ + oc];
      }
    }
  }
  Tensor wmat = weight_.value.reshape({out_c_, patch});
  Tensor gcols = ops::matmul(gmat, wmat);  // (N*OH*OW, patch)
  return ops::col2im(gcols, cached_input_shape_, spec_);
}

std::vector<Parameter*> Conv2d::local_parameters() {
  if (with_bias_) return {&weight_, &bias_};
  return {&weight_};
}

}  // namespace ge::nn
