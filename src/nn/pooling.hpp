// Pooling layers over NCHW tensors.
#pragma once

#include "nn/module.hpp"
#include "tensor/tensor_ops.hpp"

namespace ge::nn {

class MaxPool2d : public Module {
 public:
  MaxPool2d(int64_t kernel, int64_t stride);
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  ops::Conv2dSpec spec_;
  std::vector<int64_t> argmax_;
  Shape cached_input_shape_;
};

class AvgPool2d : public Module {
 public:
  AvgPool2d(int64_t kernel, int64_t stride);
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  ops::Conv2dSpec spec_;
  Shape cached_input_shape_;
};

/// NCHW -> (N, C) by averaging each channel plane.
class GlobalAvgPool : public Module {
 public:
  GlobalAvgPool() : Module("GlobalAvgPool") {}
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  Shape cached_input_shape_;
};

}  // namespace ge::nn
