#include "nn/linear.hpp"

#include <stdexcept>

#include "tensor/tensor_ops.hpp"

namespace ge::nn {

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng,
               bool with_bias)
    : Module("Linear"),
      in_(in_features),
      out_(out_features),
      with_bias_(with_bias),
      weight_("weight", rng.kaiming_normal({out_features, in_features},
                                           in_features)),
      bias_("bias", Tensor({out_features})) {
  if (in_features <= 0 || out_features <= 0) {
    throw std::invalid_argument("Linear: feature counts must be positive");
  }
}

Tensor Linear::forward(const Tensor& input) {
  if (input.size(-1) != in_) {
    throw std::invalid_argument("Linear: expected last dim " +
                                std::to_string(in_) + ", got shape " +
                                shape_to_string(input.shape()));
  }
  input_shape_ = input.shape();
  const int64_t rows = input.numel() / in_;
  Tensor x2d = input.reshape({rows, in_});
  Tensor y = ops::matmul_bt(x2d, weight_.value);
  if (with_bias_) {
    float* py = y.data();
    const float* pb = bias_.value.cdata();
    for (int64_t r = 0; r < rows; ++r) {
      for (int64_t c = 0; c < out_; ++c) py[r * out_ + c] += pb[c];
    }
  }
  if (is_training()) cached_input_ = std::move(x2d);
  Shape out_shape = input_shape_;
  out_shape.back() = out_;
  return y.reshape(std::move(out_shape));
}

Tensor Linear::backward(const Tensor& grad_out) {
  if (cached_input_.empty()) {
    throw std::logic_error("Linear::backward before forward (train mode)");
  }
  const int64_t rows = cached_input_.size(0);
  Tensor g2d = grad_out.reshape({rows, out_});
  // dW += g^T x ; db += column-sum(g) ; dx = g W
  ops::add_inplace(weight_.grad, ops::matmul_at(g2d, cached_input_));
  if (with_bias_) {
    float* pgb = bias_.grad.data();
    const float* pg = g2d.cdata();
    for (int64_t r = 0; r < rows; ++r) {
      for (int64_t c = 0; c < out_; ++c) pgb[c] += pg[r * out_ + c];
    }
  }
  Tensor gx = ops::matmul(g2d, weight_.value);
  Shape in_shape = input_shape_;
  return gx.reshape(std::move(in_shape));
}

std::vector<Parameter*> Linear::local_parameters() {
  if (with_bias_) return {&weight_, &bias_};
  return {&weight_};
}

}  // namespace ge::nn
