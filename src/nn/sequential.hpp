// Sequential: an owning chain of modules applied in order.
#pragma once

#include <memory>

#include "nn/module.hpp"

namespace ge::nn {

class Sequential : public Module {
 public:
  Sequential() : Module("Sequential") {}

  /// Append a module (takes ownership); returns a reference for chaining
  /// configuration at the call site.
  Module& append(std::unique_ptr<Module> m, std::string name = "");

  /// Typed emplace-append: seq.emplace<Linear>(16, 10, rng).
  template <typename M, typename... Args>
  M& emplace(Args&&... args) {
    auto m = std::make_unique<M>(std::forward<Args>(args)...);
    M& ref = *m;
    append(std::move(m));
    return ref;
  }

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_out) override;

  int64_t size() const noexcept {
    return static_cast<int64_t>(owned_.size());
  }

 private:
  std::vector<std::unique_ptr<Module>> owned_;
};

}  // namespace ge::nn
