// Transformer encoder building blocks (pre-norm, DeiT/ViT style).
#pragma once

#include <memory>

#include "nn/activation.hpp"
#include "nn/attention.hpp"
#include "nn/linear.hpp"
#include "nn/norm.hpp"

namespace ge::nn {

/// Two-layer MLP with GELU, the transformer feed-forward block.
class MlpBlock : public Module {
 public:
  MlpBlock(int64_t dim, int64_t hidden_dim, Rng& rng);
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  std::unique_ptr<Linear> fc1_;
  std::unique_ptr<GELU> act_;
  std::unique_ptr<Linear> fc2_;
};

/// Pre-norm encoder block:  x + Attn(LN(x)),  then  h + MLP(LN(h)).
class TransformerBlock : public Module {
 public:
  TransformerBlock(int64_t dim, int64_t num_heads, int64_t mlp_hidden,
                   Rng& rng);
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  std::unique_ptr<LayerNorm> ln1_;
  std::unique_ptr<MultiheadSelfAttention> attn_;
  std::unique_ptr<LayerNorm> ln2_;
  std::unique_ptr<MlpBlock> mlp_;
};

}  // namespace ge::nn
