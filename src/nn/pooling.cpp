#include "nn/pooling.hpp"

#include <stdexcept>

namespace ge::nn {

namespace {
ops::Conv2dSpec pool_spec(int64_t kernel, int64_t stride) {
  if (kernel <= 0 || stride <= 0) {
    throw std::invalid_argument("pooling: kernel and stride must be > 0");
  }
  ops::Conv2dSpec s;
  s.kernel_h = s.kernel_w = kernel;
  s.stride_h = s.stride_w = stride;
  return s;
}
}  // namespace

MaxPool2d::MaxPool2d(int64_t kernel, int64_t stride)
    : Module("MaxPool2d"), spec_(pool_spec(kernel, stride)) {}

Tensor MaxPool2d::forward(const Tensor& input) {
  cached_input_shape_ = input.shape();
  return ops::maxpool2d(input, spec_, is_training() ? &argmax_ : nullptr);
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  if (argmax_.size() != static_cast<size_t>(grad_out.numel())) {
    throw std::logic_error("MaxPool2d::backward before training forward");
  }
  Tensor gx(cached_input_shape_);
  float* po = gx.data();
  const float* pg = grad_out.data();
  for (int64_t i = 0; i < grad_out.numel(); ++i) {
    const int64_t src = argmax_[static_cast<size_t>(i)];
    if (src >= 0) po[src] += pg[i];
  }
  return gx;
}

AvgPool2d::AvgPool2d(int64_t kernel, int64_t stride)
    : Module("AvgPool2d"), spec_(pool_spec(kernel, stride)) {}

Tensor AvgPool2d::forward(const Tensor& input) {
  cached_input_shape_ = input.shape();
  return ops::avgpool2d(input, spec_);
}

Tensor AvgPool2d::backward(const Tensor& grad_out) {
  if (cached_input_shape_.size() != 4) {
    throw std::logic_error("AvgPool2d::backward before forward");
  }
  const int64_t N = cached_input_shape_[0], C = cached_input_shape_[1],
                H = cached_input_shape_[2], W = cached_input_shape_[3];
  const int64_t OH = spec_.out_h(H), OW = spec_.out_w(W);
  const float inv = 1.0f / static_cast<float>(spec_.kernel_h * spec_.kernel_w);
  Tensor gx(cached_input_shape_);
  const float* pg = grad_out.data();
  float* po = gx.data();
  for (int64_t n = 0; n < N; ++n) {
    for (int64_t c = 0; c < C; ++c) {
      for (int64_t oh = 0; oh < OH; ++oh) {
        for (int64_t ow = 0; ow < OW; ++ow) {
          const float g =
              pg[((n * C + c) * OH + oh) * OW + ow] * inv;
          for (int64_t kh = 0; kh < spec_.kernel_h; ++kh) {
            const int64_t ih = oh * spec_.stride_h + kh;
            if (ih >= H) continue;
            for (int64_t kw = 0; kw < spec_.kernel_w; ++kw) {
              const int64_t iw = ow * spec_.stride_w + kw;
              if (iw >= W) continue;
              po[((n * C + c) * H + ih) * W + iw] += g;
            }
          }
        }
      }
    }
  }
  return gx;
}

Tensor GlobalAvgPool::forward(const Tensor& input) {
  cached_input_shape_ = input.shape();
  return ops::global_avgpool(input);
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  if (cached_input_shape_.size() != 4) {
    throw std::logic_error("GlobalAvgPool::backward before forward");
  }
  const int64_t N = cached_input_shape_[0], C = cached_input_shape_[1],
                HW = cached_input_shape_[2] * cached_input_shape_[3];
  const float inv = 1.0f / static_cast<float>(HW);
  Tensor gx(cached_input_shape_);
  const float* pg = grad_out.data();
  float* po = gx.data();
  for (int64_t n = 0; n < N; ++n) {
    for (int64_t c = 0; c < C; ++c) {
      const float g = pg[n * C + c] * inv;
      float* plane = po + (n * C + c) * HW;
      for (int64_t i = 0; i < HW; ++i) plane[i] = g;
    }
  }
  return gx;
}

}  // namespace ge::nn
