#include "nn/activation.hpp"

#include <cmath>
#include <stdexcept>

namespace ge::nn {

Tensor ReLU::forward(const Tensor& input) {
  Tensor out(input.shape());
  const float* pin = input.data();
  float* po = out.data();
  const int64_t n = input.numel();
  const bool cache = is_training();
  if (cache) mask_.assign(static_cast<size_t>(n), 0);
  for (int64_t i = 0; i < n; ++i) {
    const bool pos = pin[i] > 0.0f;
    po[i] = pos ? pin[i] : 0.0f;
    if (cache && pos) mask_[static_cast<size_t>(i)] = 1;
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  if (mask_.size() != static_cast<size_t>(grad_out.numel())) {
    throw std::logic_error("ReLU::backward before training forward");
  }
  Tensor gx(grad_out.shape());
  const float* pg = grad_out.data();
  float* po = gx.data();
  for (int64_t i = 0; i < grad_out.numel(); ++i) {
    po[i] = mask_[static_cast<size_t>(i)] ? pg[i] : 0.0f;
  }
  return gx;
}

namespace {
constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)

float gelu_value(float x) {
  const float inner = kGeluC * (x + 0.044715f * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(inner));
}

float gelu_grad(float x) {
  const float x3 = x * x * x;
  const float inner = kGeluC * (x + 0.044715f * x3);
  const float t = std::tanh(inner);
  const float dinner = kGeluC * (1.0f + 3.0f * 0.044715f * x * x);
  return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * dinner;
}
}  // namespace

Tensor GELU::forward(const Tensor& input) {
  Tensor out(input.shape());
  const float* pin = input.data();
  float* po = out.data();
  for (int64_t i = 0; i < input.numel(); ++i) po[i] = gelu_value(pin[i]);
  if (is_training()) cached_input_ = input;
  return out;
}

Tensor GELU::backward(const Tensor& grad_out) {
  if (cached_input_.empty()) {
    throw std::logic_error("GELU::backward before training forward");
  }
  Tensor gx(grad_out.shape());
  const float* pg = grad_out.data();
  const float* px = cached_input_.cdata();
  float* po = gx.data();
  for (int64_t i = 0; i < grad_out.numel(); ++i) {
    po[i] = pg[i] * gelu_grad(px[i]);
  }
  return gx;
}

Tensor Sigmoid::forward(const Tensor& input) {
  Tensor out(input.shape());
  const float* pin = input.data();
  float* po = out.data();
  for (int64_t i = 0; i < input.numel(); ++i) {
    po[i] = 1.0f / (1.0f + std::exp(-pin[i]));
  }
  if (is_training()) cached_output_ = out;
  return out;
}

Tensor Sigmoid::backward(const Tensor& grad_out) {
  if (cached_output_.empty()) {
    throw std::logic_error("Sigmoid::backward before training forward");
  }
  Tensor gx(grad_out.shape());
  const float* pg = grad_out.data();
  const float* py = cached_output_.cdata();
  float* po = gx.data();
  for (int64_t i = 0; i < grad_out.numel(); ++i) {
    po[i] = pg[i] * py[i] * (1.0f - py[i]);
  }
  return gx;
}

Tensor Tanh::forward(const Tensor& input) {
  Tensor out(input.shape());
  const float* pin = input.data();
  float* po = out.data();
  for (int64_t i = 0; i < input.numel(); ++i) po[i] = std::tanh(pin[i]);
  if (is_training()) cached_output_ = out;
  return out;
}

Tensor Tanh::backward(const Tensor& grad_out) {
  if (cached_output_.empty()) {
    throw std::logic_error("Tanh::backward before training forward");
  }
  Tensor gx(grad_out.shape());
  const float* pg = grad_out.data();
  const float* py = cached_output_.cdata();
  float* po = gx.data();
  for (int64_t i = 0; i < grad_out.numel(); ++i) {
    po[i] = pg[i] * (1.0f - py[i] * py[i]);
  }
  return gx;
}

Dropout::Dropout(float p, uint64_t seed)
    : Module("Dropout"), p_(p), rng_state_(seed) {
  if (p < 0.0f || p >= 1.0f) {
    throw std::invalid_argument("Dropout: p must be in [0, 1)");
  }
}

Tensor Dropout::forward(const Tensor& input) {
  if (!is_training() || p_ == 0.0f) return input;
  // splitmix64 stream: cheap, seedable, state advances across batches
  auto next = [this]() {
    rng_state_ += 0x9E3779B97F4A7C15ull;
    uint64_t z = rng_state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  };
  const float keep = 1.0f - p_;
  const float scale = 1.0f / keep;
  Tensor out(input.shape());
  const float* pin = input.data();
  float* po = out.data();
  mask_.assign(static_cast<size_t>(input.numel()), 0);
  for (int64_t i = 0; i < input.numel(); ++i) {
    const bool live =
        (next() >> 11) * 0x1.0p-53 < keep;  // uniform [0,1) from 53 bits
    if (live) {
      mask_[static_cast<size_t>(i)] = 1;
      po[i] = pin[i] * scale;
    }
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (!is_training() || p_ == 0.0f) return grad_out;
  if (mask_.size() != static_cast<size_t>(grad_out.numel())) {
    throw std::logic_error("Dropout::backward before training forward");
  }
  const float scale = 1.0f / (1.0f - p_);
  Tensor gx(grad_out.shape());
  const float* pg = grad_out.data();
  float* po = gx.data();
  for (int64_t i = 0; i < grad_out.numel(); ++i) {
    po[i] = mask_[static_cast<size_t>(i)] ? pg[i] * scale : 0.0f;
  }
  return gx;
}

Tensor Flatten::forward(const Tensor& input) {
  cached_shape_ = input.shape();
  return input.reshape({input.size(0), -1});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  Shape s = cached_shape_;
  return grad_out.reshape(std::move(s));
}

}  // namespace ge::nn
