// ge::parallel — deterministic thread-pool parallelism for kernels,
// format quantisation, and fault-injection campaigns.
//
// Design contract (the reason this file exists, see DESIGN.md §"Threading
// model & determinism"): parallel_for splits [begin, end) into chunks
// whose boundaries depend ONLY on `grain` — never on the thread count —
// and every chunk computes exactly what the serial loop would compute for
// those indices. Any loop whose chunks write disjoint outputs therefore
// produces bitwise-identical results at 1, 4 or N threads, which keeps
// every experiment in EXPERIMENTS.md reproducible bit-for-bit while
// running as fast as the hardware allows.
//
// The pool is a lazily-initialised process-global: worker count comes from
// the GE_NUM_THREADS environment variable (default: hardware_concurrency)
// and can be overridden at runtime with set_num_threads() (used by the
// determinism tests to compare thread counts inside one process). Nested
// parallel_for calls (a kernel inside an already-parallel campaign trial)
// execute inline on the calling thread, so parallelism never oversubscribes.
#pragma once

#include <cstdint>
#include <functional>

namespace ge::parallel {

/// Effective worker count parallel_for may use (>= 1). First call reads
/// GE_NUM_THREADS (default: hardware_concurrency).
int num_threads();

/// Override the worker count at runtime (clamped to [1, 256]). Threads are
/// spawned lazily on the next parallel loop. Safe to call repeatedly;
/// intended for tests and embedding applications.
void set_num_threads(int n);

/// True while the calling thread is inside a parallel_for body (nested
/// loops run serially inline).
bool in_parallel_region();

/// Chunked parallel loop over the half-open range [begin, end).
/// `fn(lo, hi)` is invoked once per chunk of at most `grain` consecutive
/// indices; chunk boundaries depend only on `grain`. Chunks may run on any
/// thread in any order, so `fn` must write disjoint outputs per index —
/// under that contract results are bitwise identical at any thread count.
/// Exceptions thrown by `fn` are rethrown on the calling thread.
/// Degenerate inputs are safe: an empty range is a no-op, grain <= 0 is
/// treated as 1, and a range smaller than one grain runs inline.
void parallel_for(int64_t begin, int64_t end, int64_t grain,
                  const std::function<void(int64_t, int64_t)>& fn);

/// As parallel_for, but `fn` additionally receives the zero-based slot of
/// the worker executing the chunk (in [0, max_workers)), so callers can
/// index per-worker state (replica models, scratch buffers). At most
/// `max_workers` slots are used (clamped to [1, num_threads()]). Chunk
/// boundaries are unchanged; whether the *slot* assignment matters for
/// determinism is the caller's responsibility.
void parallel_for_workers(int64_t begin, int64_t end, int64_t grain,
                          int max_workers,
                          const std::function<void(int, int64_t, int64_t)>& fn);

/// Chunk grain targeting ~`target_work` scalar operations per chunk given
/// `work_per_item` operations per loop index (both clamped to >= 1).
/// Deterministic: depends only on its arguments, never on machine state.
int64_t grain_for(int64_t work_per_item, int64_t target_work = 32768);

}  // namespace ge::parallel
