#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/telemetry.hpp"

namespace ge::parallel {

namespace {

constexpr int kMaxThreads = 256;

int env_default_threads() {
  if (const char* e = std::getenv("GE_NUM_THREADS")) {
    const int n = std::atoi(e);
    if (n >= 1) return std::min(n, kMaxThreads);
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(std::min<unsigned>(hc, kMaxThreads)) : 1;
}

thread_local bool tls_in_region = false;

/// RAII guard marking the current thread as inside a parallel body.
/// Saves and restores the previous value: a nested inline loop ends while
/// its enclosing region is still active, and clearing the flag outright
/// would let the *next* nested loop take the parallel path and deadlock
/// on run_mutex_.
struct RegionGuard {
  bool prev = tls_in_region;
  RegionGuard() { tls_in_region = true; }
  ~RegionGuard() { tls_in_region = prev; }
};

/// One parallel loop, published to the workers. Worker slot w executes
/// chunks w, w + nw, w + 2*nw, ... (static round-robin over chunks): the
/// assignment spreads chunks evenly, while the chunk boundaries themselves
/// are a function of (begin, grain) only.
struct Job {
  const std::function<void(int, int64_t, int64_t)>* fn = nullptr;
  int64_t begin = 0;
  int64_t end = 0;
  int64_t grain = 1;
  int64_t nchunks = 0;
  int nw = 1;  ///< participating worker slots (main thread is slot 0)
};

class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool* pool = new ThreadPool();  // leaked: workers may
    return *pool;  // outlive static destruction order, never torn down
  }

  int configured_threads() {
    std::lock_guard<std::mutex> lk(config_mutex_);
    return desired_;
  }

  void set_threads(int n) {
    n = std::clamp(n, 1, kMaxThreads);
    // Shrinking retires the excess workers for real (not just caps future
    // jobs): each retired thread unwinds its thread_locals, which flushes
    // its obs span buffer into the trace registry — short-lived workers'
    // events survive in --trace output. Needs a quiescent pool; from
    // inside a parallel region we only record the new target.
    if (!tls_in_region) {
      std::lock_guard<std::mutex> run_lk(run_mutex_);  // no job in flight
      std::lock_guard<std::mutex> lk(config_mutex_);
      desired_ = n;
      const int want_workers = n - 1;
      if (static_cast<int>(workers_.size()) > want_workers) {
        {
          std::lock_guard<std::mutex> jlk(job_mutex_);
          live_slots_ = want_workers;
        }
        job_cv_.notify_all();
        while (static_cast<int>(workers_.size()) > want_workers) {
          workers_.back().join();
          workers_.pop_back();
        }
      }
      return;
    }
    std::lock_guard<std::mutex> lk(config_mutex_);
    desired_ = n;
  }

  void run(int64_t begin, int64_t end, int64_t grain, int max_workers,
           const std::function<void(int, int64_t, int64_t)>& fn) {
    const int64_t n = end - begin;
    if (n <= 0) return;
    if (grain <= 0) grain = 1;
    const int64_t nchunks = (n + grain - 1) / grain;

    int nw = std::min(configured_threads(), std::max(1, max_workers));
    nw = static_cast<int>(std::min<int64_t>(nw, nchunks));

    // Only top-level loops are traced: nested loops run inline inside an
    // already-traced chunk/trial, and a span per nested kernel loop would
    // drown the trace. Telemetry never influences chunking (see the
    // determinism contract above).
    const bool top_level = !tls_in_region;
    if (top_level) obs::add(obs::Counter::kPoolJobs);

    if (nw <= 1 || tls_in_region) {
      // Serial path — same chunk boundaries, slot 0 throughout.
      obs::Span job_span("pool",
                         top_level ? "parallel_for[serial]" : nullptr);
      RegionGuard guard;
      for (int64_t c = 0; c < nchunks; ++c) {
        const int64_t lo = begin + c * grain;
        fn(0, lo, std::min(end, lo + grain));
      }
      return;
    }

    // One top-level loop at a time; nested calls never reach here.
    obs::Span job_span("pool", "parallel_for");
    std::lock_guard<std::mutex> run_lk(run_mutex_);
    ensure_workers(nw - 1);
    Job job;
    {
      std::lock_guard<std::mutex> lk(job_mutex_);
      job_.fn = &fn;
      job_.begin = begin;
      job_.end = end;
      job_.grain = grain;
      job_.nchunks = nchunks;
      job_.nw = nw;
      pending_.store(nw - 1, std::memory_order_relaxed);
      first_error_ = nullptr;
      ++job_id_;
      job = job_;
    }
    job_cv_.notify_all();

    // The calling thread is worker slot 0. Even if it throws, we must wait
    // for the other slots: they hold a reference to the caller's `fn`.
    try {
      run_slot(job, 0);
    } catch (...) {
      std::lock_guard<std::mutex> lk(job_mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lk(job_mutex_);
      done_cv_.wait(lk, [&] {
        return pending_.load(std::memory_order_acquire) == 0;
      });
      if (first_error_) std::rethrow_exception(first_error_);
    }
  }

 private:
  ThreadPool() : desired_(env_default_threads()) {}

  void ensure_workers(int count) {
    std::lock_guard<std::mutex> lk(config_mutex_);
    while (static_cast<int>(workers_.size()) < count) {
      const int slot = static_cast<int>(workers_.size()) + 1;
      uint64_t current_id;
      {
        // A new worker must start past the jobs already published, or it
        // would pick up a completed job whose `fn` is long dead.
        std::lock_guard<std::mutex> jlk(job_mutex_);
        current_id = job_id_;
        live_slots_ = slot;
      }
      workers_.emplace_back(
          [this, slot, current_id] { worker_loop(slot, current_id); });
    }
  }

  void run_slot(const Job& job, int slot) {
    RegionGuard guard;
    for (int64_t c = slot; c < job.nchunks; c += job.nw) {
      const int64_t lo = job.begin + c * job.grain;
      // Chunk spans make pool utilization visible per worker thread in the
      // exported trace; the disabled path costs one branch per chunk.
      obs::Span chunk_span("pool", "chunk");
      obs::add(obs::Counter::kPoolChunks);
      (*job.fn)(slot, lo, std::min(job.end, lo + job.grain));
    }
  }

  void worker_loop(int slot, uint64_t seen) {
    for (;;) {
      Job job;
      {
        std::unique_lock<std::mutex> lk(job_mutex_);
        job_cv_.wait(lk,
                     [&] { return job_id_ != seen || slot > live_slots_; });
        // Retired by set_threads: returning unwinds the thread's locals
        // (flushing its span buffer) before the join() completes.
        if (slot > live_slots_) return;
        seen = job_id_;
        job = job_;
      }
      if (slot < job.nw) {
        try {
          run_slot(job, slot);
        } catch (...) {
          std::lock_guard<std::mutex> lk(job_mutex_);
          if (!first_error_) first_error_ = std::current_exception();
        }
        if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> lk(job_mutex_);
          done_cv_.notify_one();
        }
      }
    }
  }

  std::mutex config_mutex_;
  int desired_ = 1;
  std::vector<std::thread> workers_;

  std::mutex run_mutex_;
  std::mutex job_mutex_;
  std::condition_variable job_cv_;
  std::condition_variable done_cv_;
  Job job_;
  uint64_t job_id_ = 0;
  int live_slots_ = 0;  ///< guarded by job_mutex_; slots above it retire
  std::atomic<int> pending_{0};
  std::exception_ptr first_error_;
};

}  // namespace

int num_threads() { return ThreadPool::instance().configured_threads(); }

void set_num_threads(int n) { ThreadPool::instance().set_threads(n); }

bool in_parallel_region() { return tls_in_region; }

void parallel_for(int64_t begin, int64_t end, int64_t grain,
                  const std::function<void(int64_t, int64_t)>& fn) {
  ThreadPool::instance().run(
      begin, end, grain, kMaxThreads,
      [&fn](int, int64_t lo, int64_t hi) { fn(lo, hi); });
}

void parallel_for_workers(
    int64_t begin, int64_t end, int64_t grain, int max_workers,
    const std::function<void(int, int64_t, int64_t)>& fn) {
  ThreadPool::instance().run(begin, end, grain, max_workers, fn);
}

int64_t grain_for(int64_t work_per_item, int64_t target_work) {
  work_per_item = std::max<int64_t>(1, work_per_item);
  target_work = std::max<int64_t>(1, target_work);
  return std::max<int64_t>(1, target_work / work_per_item);
}

}  // namespace ge::parallel
