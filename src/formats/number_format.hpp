// NumberFormat: the GoldenEye number-system API (paper §III-B).
//
// Every number system implements four pure-virtual methods:
//   1) Tensor    real_to_format_tensor(Tensor)   — bulk quantisation (fast)
//   2) Tensor    format_to_real_tensor(Tensor)   — bulk decode (default: id)
//   3) BitString real_to_format(value)           — scalar encode (slow, exact)
//   4) float     format_to_real(BitString)       — scalar decode
//
// Methods 1/2 are the tensorised fast path used during emulated inference;
// methods 3/4 are the scalar bit-exact path used by the fault injector.
// The emulator's hot path is quantize_tensor_inplace — method 1 expressed
// as an in-place mutation so per-forward quantisation allocates nothing.
//
// Formats additionally expose their *hardware metadata* — state that is
// abstracted away in software but lives in real registers in an
// accelerator (INT scale factor, BFP shared exponents, AFP exponent bias).
// The injector can flip bits inside those registers and re-decode the
// tensor, reproducing the paper's headline capability (§II-B, §IV-C).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/telemetry.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/tensor.hpp"
#include "tensor/tensor_view.hpp"

namespace ge::fmt {

/// A fixed-width bit pattern; bit 0 is the LSB. Width <= 64.
class BitString {
 public:
  BitString() = default;
  BitString(uint64_t bits, int width);

  int width() const noexcept { return width_; }
  uint64_t value() const noexcept { return bits_; }

  bool bit(int i) const;
  void set_bit(int i, bool b);
  void flip_bit(int i);

  /// MSB-first rendering, e.g. "0 0111 101" style without separators.
  std::string to_string() const;

  bool operator==(const BitString& o) const = default;

 private:
  void check_index(int i) const;

  uint64_t bits_ = 0;
  int width_ = 0;
};

/// Description of one hardware metadata register family of a format.
struct MetadataField {
  std::string name;   ///< e.g. "shared_exponent", "scale", "exp_bias"
  int bit_width = 0;  ///< register width in bits
  int64_t count = 0;  ///< number of registers (e.g. one per BFP block)
};

/// Abstract number system. Stateful: converting a tensor may capture
/// hardware metadata (scale/shared exponents/bias) inside the object, so
/// one format instance belongs to one tensor site at a time.
class NumberFormat {
 public:
  NumberFormat(std::string name, int bit_width);
  virtual ~NumberFormat() = default;

  NumberFormat(const NumberFormat&) = default;
  NumberFormat& operator=(const NumberFormat&) = default;

  /// Method 1 — quantise every element of a float32 tensor to the nearest
  /// representable value of this format (result expressed back in float32,
  /// the compute fabric's native type). May capture metadata.
  virtual Tensor real_to_format_tensor(const Tensor& t) = 0;

  /// Method 1, in place — overwrite `t` with its quantised image, with the
  /// same metadata-capture semantics as real_to_format_tensor. This is the
  /// emulator's per-forward hot path: the built-in formats override it to
  /// write through the tensor's own storage with zero allocation. The
  /// default bridges to real_to_format_tensor so third-party formats only
  /// have to implement the classic method; a format that instead writes
  /// real_to_format_tensor as a copy + in-place bridge MUST override this
  /// method too, or the pair recurses.
  virtual void quantize_tensor_inplace(Tensor& t);

  /// Method 1 over a strided window: quantise exactly the elements the
  /// view addresses, treating them as one dense tensor in row-major view
  /// order — metadata-bearing formats capture their registers (scale,
  /// shared exponents, bias) over that element sequence, so
  /// real_to_format_at/format_to_real_at afterwards take *view-linear*
  /// indices. Elements of the owner outside the view are untouched.
  ///
  /// The dense fast path is mandatory and bit-exact: when the view covers
  /// the whole owner in layout order (TensorView::dense_full), every
  /// implementation MUST delegate to quantize_tensor_inplace(owner), so
  /// whole-tensor callers migrating to views cannot perturb pinned
  /// campaign digests. The default handles any format: dense delegation,
  /// else materialize -> quantize -> scatter (quantize_view_gather).
  virtual void quantize_view_inplace(TensorView& v);

  /// Method 2 — decode a format-domain tensor back to real values. The
  /// default is the identity, since method 1 already returns values on the
  /// real axis (the paper's default implementation is a cast to float32).
  virtual Tensor format_to_real_tensor(const Tensor& t) const;

  /// Method 3 — encode one value into its bit pattern under this format.
  virtual BitString real_to_format(float value) const = 0;

  /// Method 4 — decode a bit pattern into the value it represents.
  virtual float format_to_real(const BitString& bits) const = 0;

  /// Scalar encode/decode *in the context of the last converted tensor*:
  /// formats whose per-element coding depends on metadata (BFP block
  /// exponents) override these; the default ignores the index.
  virtual BitString real_to_format_at(float value, int64_t flat_index) const;
  virtual float format_to_real_at(const BitString& bits,
                                  int64_t flat_index) const;

  /// --- hardware metadata ------------------------------------------------
  virtual bool has_metadata() const { return false; }
  /// Register families captured by the last real_to_format_tensor call.
  virtual std::vector<MetadataField> metadata_fields() const { return {}; }
  /// Read register `index` of `field` as raw bits.
  virtual BitString read_metadata(const std::string& field,
                                  int64_t index) const;
  /// Overwrite register `index` of `field` (e.g. after a bit flip).
  virtual void write_metadata(const std::string& field, int64_t index,
                              const BitString& bits);
  /// Re-decode the last converted tensor under the *current* (possibly
  /// corrupted) metadata. Only meaningful when has_metadata().
  virtual Tensor decode_last_tensor() const;

  /// --- dynamic range (Table I) -------------------------------------------
  virtual double abs_max() const = 0;
  /// Smallest representable positive non-zero magnitude.
  virtual double abs_min() const = 0;
  /// 20 * log10(abs_max / abs_min), the paper's Table I metric.
  double dynamic_range_db() const;

  /// --- identity -----------------------------------------------------------
  const std::string& name() const noexcept { return name_; }
  int bit_width() const noexcept { return bit_width_; }
  /// Canonical spec string understood by the registry, e.g. "fp_e4m3".
  virtual std::string spec() const = 0;

  virtual std::unique_ptr<NumberFormat> clone() const = 0;

 protected:
  /// Shared in-place kernel for value-only formats (no tensor-level
  /// metadata): overwrite every element of `t` with `quant(element)`,
  /// chunked across threads. When metrics are on, an O(1) shared snapshot
  /// of `t` is taken first (the mutable access then detaches via
  /// copy-on-write) so record_quantization sees the pre-quantisation
  /// values; with metrics off the path allocates nothing.
  template <typename F>
  void elementwise_inplace(Tensor& t, F&& quant) {
    const int64_t n = t.numel();
    Tensor before;
    if (obs::metrics_enabled()) before = t;
    float* p = t.data();  // any COW detach happens here, single-threaded
    parallel::parallel_for(0, n, 4096, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) p[i] = quant(p[i]);
    });
    if (obs::metrics_enabled()) {
      obs::record_quantization(before.cdata(), p, n, abs_max());
    }
  }

  /// Strided fallback for quantize_view_inplace: gather the view into a
  /// dense scratch, run the format's own tensor kernel (metadata capture
  /// included), scatter back. Correct for every format; the built-in
  /// value-only formats override with a zero-copy strided kernel instead.
  void quantize_view_gather(TensorView& v);

  /// Strided sibling of elementwise_inplace for value-only formats: apply
  /// `quant` to exactly the view's elements, chunked across threads over
  /// the view-linear index space. Bitwise equal to the gather fallback
  /// (quantisation is per-element), with zero allocation when metrics are
  /// off; the metrics path routes through quantize_view_gather so
  /// record_quantization sees dense before/after images.
  template <typename F>
  void view_elementwise_inplace(TensorView& v, F&& quant) {
    if (obs::metrics_enabled()) {
      quantize_view_gather(v);
      return;
    }
    float* p = v.storage();  // any COW detach happens here, single-threaded
    parallel::parallel_for(0, v.numel(), 4096, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        const int64_t s = v.flat_offset(i);
        p[s] = quant(p[s]);
      }
    });
  }

  std::string name_;
  int bit_width_;
};

/// --- shared bit-level helpers (used by several formats and the tests) ----

/// Round-to-nearest-even of x onto the grid {k * step}.
float round_to_step(float x, float step);

/// floor(log2(|x|)) for finite non-zero x.
int floor_log2(float x);

/// 2^e as float (exact for |e| within float range).
float pow2f(int e);

}  // namespace ge::fmt
