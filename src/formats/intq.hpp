// IntFormat: symmetric integer quantisation (INT-N), the first format in
// this library with *hardware metadata*: the FP32 scale factor that maps
// integer codes back to reals lives in a dedicated register in a real
// accelerator, and GoldenEye exposes it to the fault injector (§III-B).
//
// value ≈ code * scale,   code ∈ [-(2^(N-1)-1), 2^(N-1)-1]
// scale = max|x| / (2^(N-1)-1)   (captured per tensor, or user-provided —
// the paper notes INT requires a range, absolving the range detector).
#pragma once

#include <optional>

#include "formats/number_format.hpp"

namespace ge::fmt {

class IntFormat : public NumberFormat {
 public:
  /// bits in [2, 32]. Symmetric quantisation (no zero-point), as used by
  /// the paper's INT rows.
  explicit IntFormat(int bits);

  Tensor real_to_format_tensor(const Tensor& t) override;
  void quantize_tensor_inplace(Tensor& t) override;
  void quantize_view_inplace(TensorView& v) override;
  BitString real_to_format(float value) const override;
  float format_to_real(const BitString& bits) const override;

  /// --- metadata: the scale-factor register --------------------------------
  bool has_metadata() const override { return true; }
  std::vector<MetadataField> metadata_fields() const override;
  BitString read_metadata(const std::string& field,
                          int64_t index) const override;
  void write_metadata(const std::string& field, int64_t index,
                      const BitString& bits) override;
  Tensor decode_last_tensor() const override;

  /// Table-I range semantics: expressed in integer code units (min nonzero
  /// code = 1), matching the paper's 20·log10(max_code) dB values.
  double abs_max() const override;
  double abs_min() const override;

  std::string spec() const override;
  std::unique_ptr<NumberFormat> clone() const override;

  /// Pin the quantisation range (scale = range / max_code) instead of
  /// profiling it from each converted tensor.
  void set_range(float max_abs_value);
  float scale() const noexcept { return scale_; }
  int64_t max_code() const noexcept { return max_code_; }

 private:
  int bits_;
  int64_t max_code_;          // 2^(N-1) - 1
  float scale_ = 1.0f;        // current scale register content
  bool fixed_range_ = false;  // true once set_range() was called
  std::vector<int32_t> last_codes_;  // codes of the last converted tensor
  Shape last_shape_;
};

}  // namespace ge::fmt
