// FormatRegistry: turns a textual format spec into a NumberFormat object.
// This is the command-line surface the paper's DSE wrapper scripts drive
// (§IV-B): every knob (bitwidth, radix, block size, denormals) is
// expressible in the spec string.
//
// Grammar:
//   fp_e<E>m<M>[_nodn][_sat]    parameterised float        e.g. fp_e4m3
//   fxp_1_<I>_<F>               fixed point (sign, int, frac)  fxp_1_3_12
//   int<N>                      symmetric integer quant.       int8
//   bfp_e<E>m<M>_b<B|tensor>    block floating point           bfp_e8m7_b16
//   afp_e<E>m<M>[_dn]           AdaptivFloat                   afp_e4m3
//   posit_<N>_<ES>              posit (future-format demo)     posit_8_1
// Aliases: fp32, fp16, bfloat16, tf32, dlfloat, fp8_e4m3, fp8_e5m2.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "formats/number_format.hpp"

namespace ge::fmt {

/// Create a format from its spec string. Throws std::invalid_argument on
/// an unknown or malformed spec.
std::unique_ptr<NumberFormat> make_format(const std::string& spec);

/// True if `spec` parses (cheap validation for config front ends).
bool is_valid_spec(const std::string& spec);

/// Cached dequantization codebook for value-only formats of <= 16 bits:
/// entry p is format_to_real(BitString(p, width)), so bulk decode becomes a
/// table lookup. Returns nullptr for formats whose decode depends on
/// per-tensor metadata (int, bfp, afp) or that are wider than 16 bits.
/// Built once per spec and shared; the pointer stays valid for the
/// lifetime of the process. Throws std::invalid_argument on a bad spec.
const std::vector<float>* dequant_codebook(const std::string& spec);

/// Bulk codebook decode, in place — the decode counterpart of
/// NumberFormat::quantize_tensor_inplace. Every element of `t` must hold a
/// code point of the format (an integer in [0, 2^bit_width), as produced
/// by real_to_format().value()); it is overwritten with the value that bit
/// pattern represents, chunked across pool workers with zero allocation
/// beyond `t`'s own storage. Returns false (leaving `t` untouched) when no
/// codebook exists for `spec` — metadata-bearing formats (int, bfp, afp)
/// and formats wider than 16 bits decode per tensor, not per table.
/// Throws std::invalid_argument on a bad spec or an out-of-range code.
bool dequantize_codes_inplace(const std::string& spec, Tensor& t);

/// The named aliases this build knows about (for --help output).
std::vector<std::string> known_aliases();

}  // namespace ge::fmt
