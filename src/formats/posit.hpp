// PositFormat: Gustafson's posit arithmetic, "posit_<n>_<es>".
//
// Not part of the paper's five formats — it is this repo's demonstration
// of the paper's "future number format support" claim (Table II): a new
// number system drops in by implementing the four-method NumberFormat API
// and is immediately usable by the emulator, injector, campaigns and DSE
// with zero changes elsewhere.
//
// Posits have tapered precision: a variable-length unary "regime" field
// trades range for fraction bits, giving high accuracy near 1.0 and a
// huge dynamic range, with no Inf (values saturate at +-maxpos) and a
// single NaR pattern.
//
// Implementation: for n <= 16 every non-negative pattern is decoded once
// into a sorted table; quantisation is a binary search with
// round-to-nearest (ties to the even pattern, posit's standard rounding).
// This is exact by construction and fast enough for tensor conversion.
// The table is immutable after construction and shared across all
// PositFormat instances with the same (n, es) — a campaign clones one
// format per layer per replica, and rebuilding 2^(n-1) decoded entries
// per clone dominated construction cost.
#pragma once

#include <memory>

#include "formats/number_format.hpp"

namespace ge::fmt {

class PositFormat : public NumberFormat {
 public:
  /// n in [3, 16], es in [0, 3].
  PositFormat(int n, int es);

  Tensor real_to_format_tensor(const Tensor& t) override;
  void quantize_tensor_inplace(Tensor& t) override;
  void quantize_view_inplace(TensorView& v) override;
  BitString real_to_format(float value) const override;
  float format_to_real(const BitString& bits) const override;

  double abs_max() const override;  // maxpos = useed^(n-2)
  double abs_min() const override;  // minpos = useed^-(n-2)

  std::string spec() const override;
  std::unique_ptr<NumberFormat> clone() const override;

  int es() const noexcept { return es_; }
  /// useed = 2^(2^es), the regime step.
  double useed() const;

  float quantize_value(float x) const;

  /// Decode one raw n-bit pattern (exposed for tests; NaR decodes to NaN).
  static double decode_pattern(uint32_t pattern, int n, int es);

 private:
  /// Immutable decode tables for one (n, es): sorted strictly-positive
  /// values with their (positive) patterns.
  struct Tables {
    std::vector<double> values;
    std::vector<uint32_t> patterns;
  };
  static std::shared_ptr<const Tables> tables_for(int n, int es);

  int n_;
  int es_;
  std::shared_ptr<const Tables> tables_;
};

}  // namespace ge::fmt
