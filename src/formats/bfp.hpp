// BfpFormat: Block Floating Point, "bfp_eXmY_bB".
//
// Values in a block of B elements share one e-bit exponent register (the
// block's maximum exponent); each element then stores only 1 sign bit and
// an m-bit magnitude mantissa. The shared exponent is *hardware metadata*:
// a single bit flip in that register scales every value in the block —
// behaving like a multi-bit flip of a conventional FP tensor, which is
// exactly the effect the paper studies in §IV-C / Fig. 7.
//
//   element value = sign * mag * 2^(se + 1 - m),  mag in [0, 2^m - 1]
//   se = clamp(floor(log2 max|block|), -bias, bias + 1),  bias = 2^(e-1)-1
//
// Deliberately structured per-block implementation (not a fused
// elementwise kernel): it materialises block metadata the way the paper's
// Python BFP path does, which is why BFP shows the Fig. 3 slowdown.
#pragma once

#include "formats/number_format.hpp"

namespace ge::fmt {

class BfpFormat : public NumberFormat {
 public:
  /// exp_bits in [2, 10], man_bits in [1, 23], block_size >= 1. A block
  /// size of 0 means "whole tensor is one block" (per-layer sharing).
  BfpFormat(int exp_bits, int man_bits, int64_t block_size);

  Tensor real_to_format_tensor(const Tensor& t) override;
  void quantize_tensor_inplace(Tensor& t) override;
  void quantize_view_inplace(TensorView& v) override;
  /// Context-free scalar methods use a shared exponent of 0 (documented
  /// limitation: a BFP element's bits alone do not determine its value —
  /// that is the point of metadata). Use the *_at variants after a tensor
  /// conversion for block-true scalar coding.
  BitString real_to_format(float value) const override;
  float format_to_real(const BitString& bits) const override;
  BitString real_to_format_at(float value, int64_t flat_index) const override;
  float format_to_real_at(const BitString& bits,
                          int64_t flat_index) const override;

  /// --- metadata: one shared-exponent register per block --------------------
  bool has_metadata() const override { return true; }
  std::vector<MetadataField> metadata_fields() const override;
  BitString read_metadata(const std::string& field,
                          int64_t index) const override;
  void write_metadata(const std::string& field, int64_t index,
                      const BitString& bits) override;
  Tensor decode_last_tensor() const override;

  double abs_max() const override;
  double abs_min() const override;

  std::string spec() const override;
  std::unique_ptr<NumberFormat> clone() const override;

  int exp_bits() const noexcept { return exp_bits_; }
  int man_bits() const noexcept { return man_bits_; }
  int64_t block_size() const noexcept { return block_size_; }
  int64_t num_blocks() const noexcept {
    return static_cast<int64_t>(shared_exp_.size());
  }
  /// Unbiased shared exponent of block `b` (after the last conversion).
  int shared_exponent(int64_t b) const;

 private:
  int64_t block_of(int64_t flat_index) const;
  float decode_code(int32_t signed_mag, int se) const;

  int exp_bits_;
  int man_bits_;
  int bias_;
  int64_t block_size_;  // 0 = whole tensor
  int64_t effective_block_ = 0;
  std::vector<int> shared_exp_;       // unbiased, one per block
  std::vector<int32_t> last_codes_;   // signed magnitudes of last tensor
  Shape last_shape_;
};

}  // namespace ge::fmt
