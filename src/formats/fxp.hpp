// FxpFormat: signed fixed point, "FxP(1, i, f)" in the paper's notation —
// 1 sign bit, i integer bits, f fractional bits, two's-complement coding.
// The *radix* is the bit position separating integer from fraction (§II-A).
#pragma once

#include "formats/number_format.hpp"

namespace ge::fmt {

class FxpFormat : public NumberFormat {
 public:
  /// int_bits >= 0, frac_bits >= 0, int_bits + frac_bits in [1, 62].
  FxpFormat(int int_bits, int frac_bits);

  Tensor real_to_format_tensor(const Tensor& t) override;
  void quantize_tensor_inplace(Tensor& t) override;
  void quantize_view_inplace(TensorView& v) override;
  BitString real_to_format(float value) const override;
  float format_to_real(const BitString& bits) const override;

  double abs_max() const override;  // |most negative| = 2^int_bits
  double abs_min() const override;  // one LSB = 2^-frac_bits

  std::string spec() const override;
  std::unique_ptr<NumberFormat> clone() const override;

  int int_bits() const noexcept { return int_bits_; }
  int frac_bits() const noexcept { return frac_bits_; }
  /// Radix position (bits below the binary point).
  int radix() const noexcept { return frac_bits_; }

  float quantize_value(float x) const;

 private:
  int int_bits_;
  int frac_bits_;
  int64_t min_code_;  // -2^(i+f)
  int64_t max_code_;  //  2^(i+f) - 1
};

}  // namespace ge::fmt
