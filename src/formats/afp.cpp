#include "formats/afp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/telemetry.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/tensor_ops.hpp"

namespace ge::fmt {

namespace {
std::string afp_name(int e, int m, const AfpFormat::Options& o) {
  std::string s = "afp_e" + std::to_string(e) + "m" + std::to_string(m);
  if (o.denormals) s += "_dn";
  return s;
}
}  // namespace

AfpFormat::AfpFormat(int exp_bits, int man_bits, Options opt)
    : NumberFormat(afp_name(exp_bits, man_bits, opt), 1 + exp_bits + man_bits),
      exp_bits_(exp_bits),
      man_bits_(man_bits),
      opt_(opt),
      standard_bias_((1 << (exp_bits - 1)) - 1),
      bias_offset_(0) {
  if (exp_bits < 2 || exp_bits > 8) {
    throw std::invalid_argument("AfpFormat: exp_bits must be in [2, 8]");
  }
  if (man_bits < 1 || man_bits > 23) {
    throw std::invalid_argument("AfpFormat: man_bits must be in [1, 23]");
  }
}

float AfpFormat::quantize_value(float x) const {
  if (std::isnan(x)) return x;
  const float sign = std::signbit(x) ? -1.0f : 1.0f;
  const float ax = std::fabs(x);
  const float mx = static_cast<float>(abs_max());
  if (std::isinf(x)) return sign * mx;  // AFP has no Inf: saturate
  if (ax == 0.0f) return sign * 0.0f;

  int e_unb = floor_log2(ax);
  if (e_unb < e_min()) {
    if (opt_.denormals) {
      const float step = pow2f(e_min() - man_bits_);
      return sign * round_to_step(ax, step);
    }
    const float min_normal = pow2f(e_min());
    return (ax > min_normal * 0.5f) ? sign * min_normal : sign * 0.0f;
  }
  const float step = pow2f(e_unb - man_bits_);
  float q = round_to_step(ax, step);
  if (q >= pow2f(e_unb + 1)) e_unb += 1;
  if (e_unb > e_max() || q > mx) return sign * mx;  // saturate
  return sign * q;
}

Tensor AfpFormat::real_to_format_tensor(const Tensor& t) {
  Tensor out = t;  // O(1) share; the in-place kernel detaches on write
  quantize_tensor_inplace(out);
  return out;
}

void AfpFormat::quantize_tensor_inplace(Tensor& t) {
  // Adaptive step: move the representable range onto the data, as far as
  // the offset register allows.
  const float data_max = ops::max_abs(t);
  if (data_max > 0.0f && std::isfinite(data_max)) {
    const int e_data = floor_log2(data_max);
    const int desired_bias = ((1 << exp_bits_) - 2) - e_data;
    bias_offset_ = std::clamp(desired_bias - standard_bias_,
                              kOffsetMin, kOffsetMax);
  }
  // Persistent-register fault replay needs the pre-quantisation values, so
  // AFP always captures them (capacity reused across captures); the same
  // buffer doubles as the `before` image for record_quantization.
  const int64_t n = t.numel();
  last_shape_ = t.shape();
  const float* cp = t.cdata();
  last_vals_.assign(cp, cp + n);

  // Metadata (the bias offset) is fixed above in a serial pass; the element
  // loop is then pure per-value work and chunks across threads.
  float* p = t.data();
  parallel::parallel_for(0, n, 4096, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) p[i] = quantize_value(p[i]);
  });
  obs::record_quantization(last_vals_.data(), p, n, abs_max());
}

void AfpFormat::quantize_view_inplace(TensorView& v) {
  if (v.dense_full()) {
    quantize_tensor_inplace(v.owner());
    return;
  }
  // The adaptive bias offset and the persistent-register replay capture
  // (last_vals_) are defined over the view's element sequence; the gather
  // fallback computes both on the dense image and scatters the quantised
  // values back — bitwise what a strided pass would produce, since the
  // bias reduction and per-element rounding see identical values.
  quantize_view_gather(v);
}

BitString AfpFormat::real_to_format(float value) const {
  const float q = quantize_value(value);
  const uint64_t sign = std::signbit(q) ? 1 : 0;
  uint64_t exp_field = 0;
  uint64_t man_field = 0;
  const float aq = std::fabs(q);
  if (aq != 0.0f && !std::isnan(q)) {
    const int e_unb = floor_log2(aq);
    if (e_unb < e_min()) {
      exp_field = 0;  // denormal
      man_field = static_cast<uint64_t>(
          std::llround(aq / pow2f(e_min() - man_bits_)));
    } else {
      exp_field = static_cast<uint64_t>(e_unb + exp_bias());
      const float frac = aq / pow2f(e_unb) - 1.0f;
      man_field =
          static_cast<uint64_t>(std::llround(frac * pow2f(man_bits_)));
    }
  }
  const uint64_t bits =
      (sign << (exp_bits_ + man_bits_)) | (exp_field << man_bits_) | man_field;
  return BitString(bits, bit_width_);
}

float AfpFormat::decode_fields(bool sign, int exp_field, int man_field) const {
  const float s = sign ? -1.0f : 1.0f;
  if (exp_field == 0) {
    if (!opt_.denormals) return s * 0.0f;
    return s * static_cast<float>(man_field) * pow2f(e_min() - man_bits_);
  }
  // All non-zero exponent codes decode as normals (no Inf/NaN in AFP);
  // faulty values stay finite, as in a saturating accelerator datapath.
  const int e_unb = exp_field - exp_bias();
  const float frac = 1.0f + static_cast<float>(man_field) / pow2f(man_bits_);
  return s * frac * pow2f(e_unb);
}

float AfpFormat::format_to_real(const BitString& bits) const {
  if (bits.width() != bit_width_) {
    throw std::invalid_argument("AfpFormat: bitstring width mismatch");
  }
  const uint64_t raw = bits.value();
  const int man_field =
      static_cast<int>(raw & ((uint64_t{1} << man_bits_) - 1));
  const int exp_field = static_cast<int>((raw >> man_bits_) &
                                         ((uint64_t{1} << exp_bits_) - 1));
  const bool sign = (raw >> (exp_bits_ + man_bits_)) & 1;
  return decode_fields(sign, exp_field, man_field);
}

std::vector<MetadataField> AfpFormat::metadata_fields() const {
  return {MetadataField{"exp_bias", kOffsetBits, 1}};
}

BitString AfpFormat::read_metadata(const std::string& field,
                                   int64_t index) const {
  if (field != "exp_bias" || index != 0) {
    throw std::logic_error("AfpFormat: unknown metadata register '" + field +
                           "[" + std::to_string(index) + "]'");
  }
  const uint64_t mask = (uint64_t{1} << kOffsetBits) - 1;
  return BitString(static_cast<uint64_t>(bias_offset_) & mask, kOffsetBits);
}

void AfpFormat::write_metadata(const std::string& field, int64_t index,
                               const BitString& bits) {
  if (field != "exp_bias" || index != 0 || bits.width() != kOffsetBits) {
    throw std::logic_error("AfpFormat: bad metadata write to '" + field + "'");
  }
  // two's-complement decode of the offset register
  const auto raw = static_cast<int>(bits.value());
  const int sign_bit = 1 << (kOffsetBits - 1);
  bias_offset_ = (raw & sign_bit) ? raw - (1 << kOffsetBits) : raw;
}

Tensor AfpFormat::decode_last_tensor() const {
  if (last_vals_.empty()) {
    throw std::logic_error("AfpFormat: no tensor converted yet");
  }
  // Persistent-register fault: the corrupted bias governs both ends of the
  // value lifetime, so the tensor re-materialises as a *re-quantisation*
  // of the original values under the moved representable range (clipping
  // at the new max, flushing below the new min) — see header.
  Tensor out(last_shape_);
  const float* pin = last_vals_.data();
  float* po = out.data();
  const int64_t n = out.numel();
  for (int64_t i = 0; i < n; ++i) po[i] = quantize_value(pin[i]);
  return out;
}

double AfpFormat::abs_max() const {
  return (2.0 - std::ldexp(1.0, -man_bits_)) * std::ldexp(1.0, e_max());
}

double AfpFormat::abs_min() const {
  return opt_.denormals ? std::ldexp(1.0, e_min() - man_bits_)
                        : std::ldexp(1.0, e_min());
}

std::string AfpFormat::spec() const { return name_; }

std::unique_ptr<NumberFormat> AfpFormat::clone() const {
  return std::make_unique<AfpFormat>(*this);
}

}  // namespace ge::fmt
