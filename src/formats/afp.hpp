// AfpFormat: AdaptivFloat (Tambe et al.), "afp_eXmY".
//
// A floating-point format whose exponent bias is *adaptive*: converting a
// tensor measures the tensor's maximum magnitude and shifts the whole
// representable range so the format's largest exponent lands on the data's
// largest exponent ("movable range" in Table I). The chosen bias is
// hardware metadata — a per-tensor register; flipping one of its bits
// rescales every value in the tensor by a power of two (§IV-C).
//
// Hardware model: the register stores the bias as a 5-bit two's-complement
// *offset from the standard IEEE bias* (AdaptivFloat moves the range by a
// small delta, so the stored quantity is the delta — the same economy the
// original hardware exploits).
//
// Fault semantics: unlike BFP's shared exponent (written once with the
// block data and corrupted at *decode* — the paper's "multi-bit flip"
// equivalence), the AFP bias register is consulted by both the quantiser
// and the dequantiser within an inference. A register fault is therefore
// modeled as *persistent*: decode_last_tensor() re-quantises the original
// values under the corrupted bias, so the representable range moves and
// values clip/flush — corruption bounded by the moved range, which is why
// AFP is layer-wise more resilient than BFP except where the value
// distribution is wide (the paper's last-layer exception, §IV-C).
//
// Layout per value: 1 sign + e exponent + m mantissa bits; the top
// exponent code is reserved (no Inf/NaN — conversions saturate), denormals
// optional and off by default, matching the paper's AFP8 Table-I row
// (max 240, min 1.56e-2 at e4m3 with the standard bias).
#pragma once

#include "formats/number_format.hpp"

namespace ge::fmt {

class AfpFormat : public NumberFormat {
 public:
  struct Options {
    bool denormals = false;
  };

  AfpFormat(int exp_bits, int man_bits, Options opt);
  AfpFormat(int exp_bits, int man_bits)
      : AfpFormat(exp_bits, man_bits, Options{}) {}

  Tensor real_to_format_tensor(const Tensor& t) override;
  void quantize_tensor_inplace(Tensor& t) override;
  void quantize_view_inplace(TensorView& v) override;
  BitString real_to_format(float value) const override;
  float format_to_real(const BitString& bits) const override;

  /// --- metadata: the exponent-bias register --------------------------------
  bool has_metadata() const override { return true; }
  std::vector<MetadataField> metadata_fields() const override;
  BitString read_metadata(const std::string& field,
                          int64_t index) const override;
  void write_metadata(const std::string& field, int64_t index,
                      const BitString& bits) override;
  Tensor decode_last_tensor() const override;

  /// Range under the *current* bias (moves with the data; Table I reports
  /// the standard-bias position).
  double abs_max() const override;
  double abs_min() const override;

  std::string spec() const override;
  std::unique_ptr<NumberFormat> clone() const override;

  int exp_bits() const noexcept { return exp_bits_; }
  int man_bits() const noexcept { return man_bits_; }
  /// Effective exponent bias = standard IEEE bias + register offset.
  int exp_bias() const noexcept { return standard_bias_ + bias_offset_; }
  /// Register content (offset from the standard bias).
  int bias_offset() const noexcept { return bias_offset_; }

  /// Register geometry: 5-bit two's complement offset.
  static constexpr int kOffsetBits = 5;
  static constexpr int kOffsetMin = -(1 << (kOffsetBits - 1));
  static constexpr int kOffsetMax = (1 << (kOffsetBits - 1)) - 1;

  float quantize_value(float x) const;

 private:
  int e_min() const noexcept { return 1 - exp_bias(); }
  int e_max() const noexcept {
    return ((1 << exp_bits_) - 2) - exp_bias();
  }
  float decode_fields(bool sign, int exp_field, int man_field) const;

  int exp_bits_;
  int man_bits_;
  Options opt_;
  int standard_bias_;  // 2^(e-1) - 1
  int bias_offset_;    // the metadata register content
  // Pre-quantisation values for persistent-fault replay. A plain vector
  // (not a Tensor) so repeated captures at one site reuse the allocation.
  std::vector<float> last_vals_;
  Shape last_shape_;
};

}  // namespace ge::fmt
