#include "formats/fp.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/telemetry.hpp"
#include "parallel/thread_pool.hpp"

namespace ge::fmt {

namespace {
std::string fp_name(int e, int m, const FloatFormat::Options& o) {
  std::string s = "fp_e" + std::to_string(e) + "m" + std::to_string(m);
  if (!o.denormals) s += "_nodn";
  if (o.saturate_overflow) s += "_sat";
  return s;
}
}  // namespace

FloatFormat::FloatFormat(int exp_bits, int man_bits, Options opt)
    : NumberFormat(fp_name(exp_bits, man_bits, opt), 1 + exp_bits + man_bits),
      exp_bits_(exp_bits),
      man_bits_(man_bits),
      bias_((1 << (exp_bits - 1)) - 1),
      e_min_(1 - bias_),
      e_max_(bias_),
      opt_(opt) {
  if (exp_bits < 2 || exp_bits > 11) {
    throw std::invalid_argument("FloatFormat: exp_bits must be in [2, 11]");
  }
  if (man_bits < 1 || man_bits > 52) {
    throw std::invalid_argument("FloatFormat: man_bits must be in [1, 52]");
  }
}

float FloatFormat::quantize_value(float x) const {
  if (std::isnan(x)) return x;
  const float sign = std::signbit(x) ? -1.0f : 1.0f;
  float ax = std::fabs(x);
  const float mx = static_cast<float>(abs_max());
  if (std::isinf(x) || ax > mx) {
    // Overflow handling happens after rounding below; Inf handled here.
    if (std::isinf(x)) {
      return opt_.saturate_overflow
                 ? sign * mx
                 : x;
    }
  }
  if (ax == 0.0f) return sign * 0.0f;

  int e_unb = floor_log2(ax);
  if (e_unb < e_min_) {
    if (opt_.denormals) {
      const float step = pow2f(e_min_ - man_bits_);
      const float q = round_to_step(ax, step);
      return sign * q;  // q may round up into the smallest normal; fine
    }
    // No denormals: nearest of {0, min_normal} with ties to zero (even).
    const float min_normal = pow2f(e_min_);
    return (ax > min_normal * 0.5f) ? sign * min_normal : sign * 0.0f;
  }

  float step = pow2f(e_unb - man_bits_);
  float q = round_to_step(ax, step);
  if (q >= pow2f(e_unb + 1)) e_unb += 1;  // rounding bumped the exponent
  if (e_unb > e_max_) {
    if (q > mx) {
      return opt_.saturate_overflow
                 ? sign * mx
                 : sign * std::numeric_limits<float>::infinity();
    }
  }
  return sign * q;
}

Tensor FloatFormat::real_to_format_tensor(const Tensor& t) {
  Tensor out = t;  // O(1) share; the in-place kernel detaches on write
  quantize_tensor_inplace(out);
  return out;
}

void FloatFormat::quantize_tensor_inplace(Tensor& t) {
  // Fast tensorised path: one fused in-place pass, no bitstring
  // materialisation. Value-only format (no tensor-level metadata), so
  // elements quantize independently and the loop chunks across threads.
  elementwise_inplace(t, [this](float x) { return quantize_value(x); });
}

void FloatFormat::quantize_view_inplace(TensorView& v) {
  if (v.dense_full()) {
    quantize_tensor_inplace(v.owner());
    return;
  }
  view_elementwise_inplace(v, [this](float x) { return quantize_value(x); });
}

BitString FloatFormat::real_to_format(float value) const {
  const float q = quantize_value(value);
  const uint64_t sign = std::signbit(q) ? 1 : 0;
  const uint64_t exp_all_ones = (uint64_t{1} << exp_bits_) - 1;
  uint64_t exp_field = 0;
  uint64_t man_field = 0;
  const float aq = std::fabs(q);
  if (std::isnan(q)) {
    exp_field = exp_all_ones;
    man_field = uint64_t{1} << (man_bits_ - 1);  // quiet-NaN style payload
  } else if (std::isinf(q)) {
    exp_field = exp_all_ones;
  } else if (aq == 0.0f) {
    // all-zero fields
  } else {
    int e_unb = floor_log2(aq);
    if (e_unb < e_min_) {
      // denormal: value = man * 2^(e_min - m)
      exp_field = 0;
      man_field = static_cast<uint64_t>(
          std::llround(aq / pow2f(e_min_ - man_bits_)));
    } else {
      exp_field = static_cast<uint64_t>(e_unb + bias_);
      const float frac = aq / pow2f(e_unb) - 1.0f;  // in [0, 1)
      man_field =
          static_cast<uint64_t>(std::llround(frac * pow2f(man_bits_)));
    }
  }
  const uint64_t bits =
      (sign << (exp_bits_ + man_bits_)) | (exp_field << man_bits_) | man_field;
  return BitString(bits, bit_width_);
}

float FloatFormat::format_to_real(const BitString& bits) const {
  if (bits.width() != bit_width_) {
    throw std::invalid_argument("FloatFormat: bitstring width mismatch");
  }
  const uint64_t raw = bits.value();
  const uint64_t man_mask = (uint64_t{1} << man_bits_) - 1;
  const uint64_t exp_mask = (uint64_t{1} << exp_bits_) - 1;
  const uint64_t man_field = raw & man_mask;
  const uint64_t exp_field = (raw >> man_bits_) & exp_mask;
  const bool sign = (raw >> (exp_bits_ + man_bits_)) & 1;
  const float s = sign ? -1.0f : 1.0f;

  if (exp_field == exp_mask) {
    if (man_field == 0) return s * std::numeric_limits<float>::infinity();
    return std::numeric_limits<float>::quiet_NaN();
  }
  if (exp_field == 0) {
    if (!opt_.denormals) return s * 0.0f;  // denormals disabled: reads as 0
    return s * static_cast<float>(man_field) * pow2f(e_min_ - man_bits_);
  }
  const int e_unb = static_cast<int>(exp_field) - bias_;
  const float frac =
      1.0f + static_cast<float>(man_field) / pow2f(man_bits_);
  return s * frac * pow2f(e_unb);
}

double FloatFormat::abs_max() const {
  return (2.0 - std::ldexp(1.0, -man_bits_)) * std::ldexp(1.0, e_max_);
}

double FloatFormat::abs_min() const {
  return opt_.denormals ? std::ldexp(1.0, e_min_ - man_bits_)
                        : std::ldexp(1.0, e_min_);
}

std::string FloatFormat::spec() const { return name_; }

std::unique_ptr<NumberFormat> FloatFormat::clone() const {
  return std::make_unique<FloatFormat>(*this);
}

}  // namespace ge::fmt
