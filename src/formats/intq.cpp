#include "formats/intq.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "obs/telemetry.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/tensor_ops.hpp"

namespace ge::fmt {

IntFormat::IntFormat(int bits)
    : NumberFormat("int" + std::to_string(bits), bits),
      bits_(bits),
      max_code_((int64_t{1} << (bits - 1)) - 1) {
  if (bits < 2 || bits > 32) {
    throw std::invalid_argument("IntFormat: bits must be in [2, 32]");
  }
}

void IntFormat::set_range(float max_abs_value) {
  if (!(max_abs_value > 0.0f)) {
    throw std::invalid_argument("IntFormat::set_range: need positive range");
  }
  scale_ = max_abs_value / static_cast<float>(max_code_);
  fixed_range_ = true;
}

Tensor IntFormat::real_to_format_tensor(const Tensor& t) {
  Tensor out = t;  // O(1) share; the in-place kernel detaches on write
  quantize_tensor_inplace(out);
  return out;
}

void IntFormat::quantize_tensor_inplace(Tensor& t) {
  if (!fixed_range_) {
    const float mx = ops::max_abs(t);
    scale_ = (mx > 0.0f) ? mx / static_cast<float>(max_code_) : 1.0f;
  }
  const int64_t n = t.numel();
  last_shape_ = t.shape();
  last_codes_.assign(static_cast<size_t>(n), 0);
  Tensor before;
  if (obs::metrics_enabled()) before = t;  // O(1) pre-quant snapshot via COW
  float* p = t.data();
  const float inv = 1.0f / scale_;
  const auto cmin = static_cast<float>(-max_code_);
  const auto cmax = static_cast<float>(max_code_);
  // The scale (tensor metadata) is fixed above; the element loop only does
  // disjoint writes to `t` and `last_codes_`, so it parallelizes cleanly.
  parallel::parallel_for(0, n, 4096, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float code = std::clamp(std::nearbyintf(p[i] * inv), cmin, cmax);
      last_codes_[static_cast<size_t>(i)] = static_cast<int32_t>(code);
      p[i] = code * scale_;
    }
  });
  if (obs::metrics_enabled()) {
    // abs_max() is in code units for INT; the real-domain edge is code*scale.
    obs::record_quantization(before.cdata(), p, n,
                             static_cast<double>(max_code_) * scale_);
  }
}

void IntFormat::quantize_view_inplace(TensorView& v) {
  if (v.dense_full()) {
    quantize_tensor_inplace(v.owner());
    return;
  }
  if (obs::metrics_enabled()) {
    // record_quantization wants dense before/after images: take the gather
    // path (bitwise equal — the scale reduction and the element rounding
    // see the same values in the same order either way).
    quantize_view_gather(v);
    return;
  }
  // Zero-copy strided kernel. The scale (tensor metadata) and the code
  // register file are captured over the view-linear element sequence, so
  // real_to_format_at / format_to_real_at afterwards take view indices.
  if (!fixed_range_) {
    const float mx = ops::max_abs(v.as_const());
    scale_ = (mx > 0.0f) ? mx / static_cast<float>(max_code_) : 1.0f;
  }
  const int64_t n = v.numel();
  last_shape_ = v.shape();
  last_codes_.assign(static_cast<size_t>(n), 0);
  float* p = v.storage();
  const float inv = 1.0f / scale_;
  const auto cmin = static_cast<float>(-max_code_);
  const auto cmax = static_cast<float>(max_code_);
  parallel::parallel_for(0, n, 4096, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const int64_t s = v.flat_offset(i);
      const float code = std::clamp(std::nearbyintf(p[s] * inv), cmin, cmax);
      last_codes_[static_cast<size_t>(i)] = static_cast<int32_t>(code);
      p[s] = code * scale_;
    }
  });
}

BitString IntFormat::real_to_format(float value) const {
  const float code = std::clamp(std::nearbyintf(value / scale_),
                                static_cast<float>(-max_code_),
                                static_cast<float>(max_code_));
  const auto icode = static_cast<int64_t>(code);
  const uint64_t mask = (uint64_t{1} << bits_) - 1;
  return BitString(static_cast<uint64_t>(icode) & mask, bits_);
}

float IntFormat::format_to_real(const BitString& bits) const {
  if (bits.width() != bits_) {
    throw std::invalid_argument("IntFormat: bitstring width mismatch");
  }
  uint64_t raw = bits.value();
  const uint64_t sign_bit = uint64_t{1} << (bits_ - 1);
  int64_t code;
  if (raw & sign_bit) {
    code = static_cast<int64_t>(raw | ~((sign_bit << 1) - 1));
  } else {
    code = static_cast<int64_t>(raw);
  }
  return static_cast<float>(code) * scale_;
}

std::vector<MetadataField> IntFormat::metadata_fields() const {
  return {MetadataField{"scale", 32, 1}};
}

BitString IntFormat::read_metadata(const std::string& field,
                                   int64_t index) const {
  if (field != "scale" || index != 0) {
    throw std::logic_error("IntFormat: unknown metadata register '" + field +
                           "[" + std::to_string(index) + "]'");
  }
  return BitString(std::bit_cast<uint32_t>(scale_), 32);
}

void IntFormat::write_metadata(const std::string& field, int64_t index,
                               const BitString& bits) {
  if (field != "scale" || index != 0 || bits.width() != 32) {
    throw std::logic_error("IntFormat: bad metadata write to '" + field + "'");
  }
  scale_ = std::bit_cast<float>(static_cast<uint32_t>(bits.value()));
}

Tensor IntFormat::decode_last_tensor() const {
  if (last_codes_.empty()) {
    throw std::logic_error("IntFormat: no tensor converted yet");
  }
  Tensor out(last_shape_);
  float* po = out.data();
  for (size_t i = 0; i < last_codes_.size(); ++i) {
    po[static_cast<int64_t>(i)] =
        static_cast<float>(last_codes_[i]) * scale_;
  }
  return out;
}

double IntFormat::abs_max() const { return static_cast<double>(max_code_); }

double IntFormat::abs_min() const { return 1.0; }

std::string IntFormat::spec() const { return name_; }

std::unique_ptr<NumberFormat> IntFormat::clone() const {
  return std::make_unique<IntFormat>(*this);
}

}  // namespace ge::fmt
