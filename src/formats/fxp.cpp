#include "formats/fxp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/telemetry.hpp"
#include "parallel/thread_pool.hpp"

namespace ge::fmt {

FxpFormat::FxpFormat(int int_bits, int frac_bits)
    : NumberFormat(
          "fxp_1_" + std::to_string(int_bits) + "_" + std::to_string(frac_bits),
          1 + int_bits + frac_bits),
      int_bits_(int_bits),
      frac_bits_(frac_bits) {
  if (int_bits < 0 || frac_bits < 0 || int_bits + frac_bits < 1 ||
      int_bits + frac_bits > 62) {
    throw std::invalid_argument("FxpFormat: need 1 <= i+f <= 62, i,f >= 0");
  }
  const int data_bits = int_bits_ + frac_bits_;
  min_code_ = -(int64_t{1} << data_bits);
  max_code_ = (int64_t{1} << data_bits) - 1;
}

float FxpFormat::quantize_value(float x) const {
  if (std::isnan(x)) return x;
  const double scaled = double(x) * std::ldexp(1.0, frac_bits_);
  double code = std::nearbyint(scaled);
  code = std::clamp(code, double(min_code_), double(max_code_));
  return static_cast<float>(code * std::ldexp(1.0, -frac_bits_));
}

Tensor FxpFormat::real_to_format_tensor(const Tensor& t) {
  Tensor out = t;  // O(1) share; the in-place kernel detaches on write
  quantize_tensor_inplace(out);
  return out;
}

void FxpFormat::quantize_tensor_inplace(Tensor& t) {
  // Value-only format: elements quantize independently (see FloatFormat).
  elementwise_inplace(t, [this](float x) { return quantize_value(x); });
}

void FxpFormat::quantize_view_inplace(TensorView& v) {
  if (v.dense_full()) {
    quantize_tensor_inplace(v.owner());
    return;
  }
  view_elementwise_inplace(v, [this](float x) { return quantize_value(x); });
}

BitString FxpFormat::real_to_format(float value) const {
  const double scaled = double(value) * std::ldexp(1.0, frac_bits_);
  double code = std::nearbyint(scaled);
  code = std::clamp(code, double(min_code_), double(max_code_));
  // Two's-complement over bit_width_ bits.
  const auto icode = static_cast<int64_t>(code);
  const uint64_t mask = (bit_width_ >= 64)
                            ? ~uint64_t{0}
                            : ((uint64_t{1} << bit_width_) - 1);
  return BitString(static_cast<uint64_t>(icode) & mask, bit_width_);
}

float FxpFormat::format_to_real(const BitString& bits) const {
  if (bits.width() != bit_width_) {
    throw std::invalid_argument("FxpFormat: bitstring width mismatch");
  }
  uint64_t raw = bits.value();
  // Sign-extend from bit_width_ bits.
  const uint64_t sign_bit = uint64_t{1} << (bit_width_ - 1);
  int64_t code;
  if (raw & sign_bit) {
    code = static_cast<int64_t>(raw | ~((sign_bit << 1) - 1));
  } else {
    code = static_cast<int64_t>(raw);
  }
  return static_cast<float>(double(code) * std::ldexp(1.0, -frac_bits_));
}

double FxpFormat::abs_max() const { return std::ldexp(1.0, int_bits_); }

double FxpFormat::abs_min() const { return std::ldexp(1.0, -frac_bits_); }

std::string FxpFormat::spec() const { return name_; }

std::unique_ptr<NumberFormat> FxpFormat::clone() const {
  return std::make_unique<FxpFormat>(*this);
}

}  // namespace ge::fmt
