#include "formats/posit.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ge::fmt {

PositFormat::PositFormat(int n, int es)
    : NumberFormat("posit_" + std::to_string(n) + "_" + std::to_string(es),
                   n),
      n_(n),
      es_(es) {
  if (n < 3 || n > 16) {
    throw std::invalid_argument("PositFormat: n must be in [3, 16]");
  }
  if (es < 0 || es > 3) {
    throw std::invalid_argument("PositFormat: es must be in [0, 3]");
  }
  // Positive patterns are 0x0001 .. 0x7FFF... (sign bit clear, nonzero);
  // their decoded values are strictly increasing with the pattern — a
  // defining property of posits — so the table is sorted for free.
  const uint32_t count = uint32_t{1} << (n - 1);
  pos_values_.reserve(count - 1);
  pos_patterns_.reserve(count - 1);
  for (uint32_t p = 1; p < count; ++p) {
    pos_values_.push_back(decode_pattern(p, n, es));
    pos_patterns_.push_back(p);
  }
}

double PositFormat::decode_pattern(uint32_t pattern, int n, int es) {
  const uint32_t mask = (uint32_t{1} << n) - 1;
  pattern &= mask;
  if (pattern == 0) return 0.0;
  const uint32_t nar = uint32_t{1} << (n - 1);
  if (pattern == nar) return std::numeric_limits<double>::quiet_NaN();

  double sign = 1.0;
  if (pattern & nar) {
    sign = -1.0;
    pattern = (~pattern + 1) & mask;  // two's complement negate
  }
  // regime: run of identical bits after the sign position
  int i = n - 2;  // index of the first regime bit
  const int first = (pattern >> i) & 1;
  int run = 0;
  while (i >= 0 && ((pattern >> i) & 1) == static_cast<uint32_t>(first)) {
    ++run;
    --i;
  }
  --i;  // skip the regime terminator bit (if present)
  const int k = first ? (run - 1) : -run;

  // exponent: up to es bits
  int e = 0;
  for (int b = 0; b < es; ++b) {
    e <<= 1;
    if (i >= 0) {
      e |= (pattern >> i) & 1;
      --i;
    }
  }
  // fraction: remaining bits
  double frac = 1.0;
  double w = 0.5;
  while (i >= 0) {
    if ((pattern >> i) & 1) frac += w;
    w *= 0.5;
    --i;
  }
  const double scale = std::ldexp(1.0, k * (1 << es) + e);
  return sign * scale * frac;
}

float PositFormat::quantize_value(float x) const {
  if (std::isnan(x)) return x;
  if (x == 0.0f) return 0.0f;
  const double ax = std::fabs(x);
  const double sign = std::signbit(x) ? -1.0 : 1.0;
  // saturation: posits never round past maxpos / below minpos to zero
  if (ax >= pos_values_.back()) {
    return static_cast<float>(sign * pos_values_.back());
  }
  if (ax <= pos_values_.front()) {
    return static_cast<float>(sign * pos_values_.front());
  }
  const auto it =
      std::lower_bound(pos_values_.begin(), pos_values_.end(), ax);
  const size_t hi = static_cast<size_t>(it - pos_values_.begin());
  const size_t lo = hi - 1;
  const double dlo = ax - pos_values_[lo];
  const double dhi = pos_values_[hi] - ax;
  size_t pick;
  if (dlo < dhi) {
    pick = lo;
  } else if (dhi < dlo) {
    pick = hi;
  } else {
    // tie: round to the even pattern (posit standard)
    pick = (pos_patterns_[lo] & 1) == 0 ? lo : hi;
  }
  return static_cast<float>(sign * pos_values_[pick]);
}

Tensor PositFormat::real_to_format_tensor(const Tensor& t) {
  Tensor out(t.shape());
  const float* pin = t.data();
  float* po = out.data();
  const int64_t n = t.numel();
  for (int64_t i = 0; i < n; ++i) po[i] = quantize_value(pin[i]);
  return out;
}

BitString PositFormat::real_to_format(float value) const {
  if (std::isnan(value)) {
    return BitString(uint64_t{1} << (n_ - 1), n_);  // NaR
  }
  const float q = quantize_value(value);
  if (q == 0.0f) return BitString(0, n_);
  const double aq = std::fabs(q);
  const auto it =
      std::lower_bound(pos_values_.begin(), pos_values_.end(), aq);
  if (it == pos_values_.end() || *it != aq) {
    throw std::logic_error("PositFormat: quantised value not in table");
  }
  uint32_t pattern =
      pos_patterns_[static_cast<size_t>(it - pos_values_.begin())];
  if (q < 0.0f) {
    const uint32_t mask = (uint32_t{1} << n_) - 1;
    pattern = (~pattern + 1) & mask;
  }
  return BitString(pattern, n_);
}

float PositFormat::format_to_real(const BitString& bits) const {
  if (bits.width() != n_) {
    throw std::invalid_argument("PositFormat: bitstring width mismatch");
  }
  return static_cast<float>(
      decode_pattern(static_cast<uint32_t>(bits.value()), n_, es_));
}

double PositFormat::abs_max() const { return pos_values_.back(); }

double PositFormat::abs_min() const { return pos_values_.front(); }

double PositFormat::useed() const { return std::ldexp(1.0, 1 << es_); }

std::string PositFormat::spec() const { return name_; }

std::unique_ptr<NumberFormat> PositFormat::clone() const {
  return std::make_unique<PositFormat>(*this);
}

}  // namespace ge::fmt
