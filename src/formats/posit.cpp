#include "formats/posit.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <mutex>
#include <stdexcept>

#include "obs/telemetry.hpp"
#include "parallel/thread_pool.hpp"

namespace ge::fmt {

std::shared_ptr<const PositFormat::Tables> PositFormat::tables_for(int n,
                                                                   int es) {
  static std::mutex mu;
  static std::map<std::pair<int, int>, std::shared_ptr<const Tables>> cache;
  std::lock_guard<std::mutex> lk(mu);
  auto& slot = cache[{n, es}];
  if (!slot) {
    // Positive patterns are 0x0001 .. 0x7FFF... (sign bit clear, nonzero);
    // their decoded values are strictly increasing with the pattern — a
    // defining property of posits — so the table is sorted for free.
    auto t = std::make_shared<Tables>();
    const uint32_t count = uint32_t{1} << (n - 1);
    t->values.reserve(count - 1);
    t->patterns.reserve(count - 1);
    for (uint32_t p = 1; p < count; ++p) {
      t->values.push_back(decode_pattern(p, n, es));
      t->patterns.push_back(p);
    }
    slot = std::move(t);
  }
  return slot;
}

PositFormat::PositFormat(int n, int es)
    : NumberFormat("posit_" + std::to_string(n) + "_" + std::to_string(es),
                   n),
      n_(n),
      es_(es) {
  if (n < 3 || n > 16) {
    throw std::invalid_argument("PositFormat: n must be in [3, 16]");
  }
  if (es < 0 || es > 3) {
    throw std::invalid_argument("PositFormat: es must be in [0, 3]");
  }
  tables_ = tables_for(n, es);
}

double PositFormat::decode_pattern(uint32_t pattern, int n, int es) {
  const uint32_t mask = (uint32_t{1} << n) - 1;
  pattern &= mask;
  if (pattern == 0) return 0.0;
  const uint32_t nar = uint32_t{1} << (n - 1);
  if (pattern == nar) return std::numeric_limits<double>::quiet_NaN();

  double sign = 1.0;
  if (pattern & nar) {
    sign = -1.0;
    pattern = (~pattern + 1) & mask;  // two's complement negate
  }
  // regime: run of identical bits after the sign position
  int i = n - 2;  // index of the first regime bit
  const int first = (pattern >> i) & 1;
  int run = 0;
  while (i >= 0 && ((pattern >> i) & 1) == static_cast<uint32_t>(first)) {
    ++run;
    --i;
  }
  --i;  // skip the regime terminator bit (if present)
  const int k = first ? (run - 1) : -run;

  // exponent: up to es bits
  int e = 0;
  for (int b = 0; b < es; ++b) {
    e <<= 1;
    if (i >= 0) {
      e |= (pattern >> i) & 1;
      --i;
    }
  }
  // fraction: remaining bits
  double frac = 1.0;
  double w = 0.5;
  while (i >= 0) {
    if ((pattern >> i) & 1) frac += w;
    w *= 0.5;
    --i;
  }
  const double scale = std::ldexp(1.0, k * (1 << es) + e);
  return sign * scale * frac;
}

float PositFormat::quantize_value(float x) const {
  if (std::isnan(x)) return x;
  if (x == 0.0f) return 0.0f;
  const auto& vals = tables_->values;
  const double ax = std::fabs(x);
  const double sign = std::signbit(x) ? -1.0 : 1.0;
  // saturation: posits never round past maxpos / below minpos to zero
  if (ax >= vals.back()) {
    return static_cast<float>(sign * vals.back());
  }
  if (ax <= vals.front()) {
    return static_cast<float>(sign * vals.front());
  }
  const auto it = std::lower_bound(vals.begin(), vals.end(), ax);
  const size_t hi = static_cast<size_t>(it - vals.begin());
  const size_t lo = hi - 1;
  const double dlo = ax - vals[lo];
  const double dhi = vals[hi] - ax;
  size_t pick;
  if (dlo < dhi) {
    pick = lo;
  } else if (dhi < dlo) {
    pick = hi;
  } else {
    // tie: round to the even pattern (posit standard)
    pick = (tables_->patterns[lo] & 1) == 0 ? lo : hi;
  }
  return static_cast<float>(sign * vals[pick]);
}

Tensor PositFormat::real_to_format_tensor(const Tensor& t) {
  Tensor out = t;  // O(1) share; the in-place kernel detaches on write
  quantize_tensor_inplace(out);
  return out;
}

void PositFormat::quantize_tensor_inplace(Tensor& t) {
  // Value-only format: elements quantize independently (table lookups are
  // read-only), so the loop chunks across threads.
  elementwise_inplace(t, [this](float x) { return quantize_value(x); });
}

void PositFormat::quantize_view_inplace(TensorView& v) {
  if (v.dense_full()) {
    quantize_tensor_inplace(v.owner());
    return;
  }
  view_elementwise_inplace(v, [this](float x) { return quantize_value(x); });
}

BitString PositFormat::real_to_format(float value) const {
  if (std::isnan(value)) {
    return BitString(uint64_t{1} << (n_ - 1), n_);  // NaR
  }
  const float q = quantize_value(value);
  if (q == 0.0f) return BitString(0, n_);
  const double aq = std::fabs(q);
  const auto& vals = tables_->values;
  const auto it = std::lower_bound(vals.begin(), vals.end(), aq);
  if (it == vals.end() || *it != aq) {
    throw std::logic_error("PositFormat: quantised value not in table");
  }
  uint32_t pattern = tables_->patterns[static_cast<size_t>(it - vals.begin())];
  if (q < 0.0f) {
    const uint32_t mask = (uint32_t{1} << n_) - 1;
    pattern = (~pattern + 1) & mask;
  }
  return BitString(pattern, n_);
}

float PositFormat::format_to_real(const BitString& bits) const {
  if (bits.width() != n_) {
    throw std::invalid_argument("PositFormat: bitstring width mismatch");
  }
  return static_cast<float>(
      decode_pattern(static_cast<uint32_t>(bits.value()), n_, es_));
}

double PositFormat::abs_max() const { return tables_->values.back(); }

double PositFormat::abs_min() const { return tables_->values.front(); }

double PositFormat::useed() const { return std::ldexp(1.0, 1 << es_); }

std::string PositFormat::spec() const { return name_; }

std::unique_ptr<NumberFormat> PositFormat::clone() const {
  return std::make_unique<PositFormat>(*this);
}

}  // namespace ge::fmt
