// FloatFormat: parameterised IEEE-754-style floating point, "eXmY".
//
// One class covers the whole named-FP family of the paper (§II-A): FP32 =
// e8m23, FP16 = e5m10, bfloat16 = e8m7, TensorFloat = e8m10, DLFloat =
// e6m9, FP8 = e4m3, and the low-bit points the use cases sweep (e2m5, ...).
// The top exponent code is reserved for Inf/NaN (IEEE semantics) and
// denormals can be disabled ("w/o DN" rows of Table I).
#pragma once

#include "formats/number_format.hpp"

namespace ge::fmt {

class FloatFormat : public NumberFormat {
 public:
  struct Options {
    bool denormals = true;          ///< support subnormal numbers
    bool saturate_overflow = false; ///< overflow clamps to abs_max instead of Inf
  };

  /// exp_bits in [2, 11], man_bits in [1, 52].
  FloatFormat(int exp_bits, int man_bits, Options opt);
  FloatFormat(int exp_bits, int man_bits)
      : FloatFormat(exp_bits, man_bits, Options{}) {}

  /// --- the GoldenEye 4-method API ---------------------------------------
  Tensor real_to_format_tensor(const Tensor& t) override;
  void quantize_tensor_inplace(Tensor& t) override;
  void quantize_view_inplace(TensorView& v) override;
  BitString real_to_format(float value) const override;
  float format_to_real(const BitString& bits) const override;

  /// --- range ---------------------------------------------------------------
  double abs_max() const override;
  double abs_min() const override;

  std::string spec() const override;
  std::unique_ptr<NumberFormat> clone() const override;

  /// --- format parameters ------------------------------------------------
  int exp_bits() const noexcept { return exp_bits_; }
  int man_bits() const noexcept { return man_bits_; }
  int bias() const noexcept { return bias_; }
  bool denormals() const noexcept { return opt_.denormals; }

  /// Quantise one value to the nearest representable (float fast path; the
  /// scalar bitstring methods agree with this exactly — tested).
  float quantize_value(float x) const;

 private:
  int exp_bits_;
  int man_bits_;
  int bias_;   // 2^(e-1) - 1
  int e_min_;  // minimum normal (unbiased) exponent = 1 - bias
  int e_max_;  // maximum normal (unbiased) exponent = bias (top code reserved)
  Options opt_;
};

}  // namespace ge::fmt
