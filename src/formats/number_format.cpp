#include "formats/number_format.hpp"

#include <cmath>
#include <stdexcept>

namespace ge::fmt {

BitString::BitString(uint64_t bits, int width) : bits_(bits), width_(width) {
  if (width < 0 || width > 64) {
    throw std::invalid_argument("BitString: width must be in [0, 64]");
  }
  if (width < 64) bits_ &= (uint64_t{1} << width) - 1;
}

void BitString::check_index(int i) const {
  if (i < 0 || i >= width_) {
    throw std::out_of_range("BitString: bit " + std::to_string(i) +
                            " out of range for width " +
                            std::to_string(width_));
  }
}

bool BitString::bit(int i) const {
  check_index(i);
  return (bits_ >> i) & 1;
}

void BitString::set_bit(int i, bool b) {
  check_index(i);
  if (b) {
    bits_ |= (uint64_t{1} << i);
  } else {
    bits_ &= ~(uint64_t{1} << i);
  }
}

void BitString::flip_bit(int i) {
  check_index(i);
  bits_ ^= (uint64_t{1} << i);
}

std::string BitString::to_string() const {
  std::string s;
  s.reserve(static_cast<size_t>(width_));
  for (int i = width_ - 1; i >= 0; --i) s.push_back(bit(i) ? '1' : '0');
  return s;
}

NumberFormat::NumberFormat(std::string name, int bit_width)
    : name_(std::move(name)), bit_width_(bit_width) {
  if (bit_width <= 0 || bit_width > 64) {
    throw std::invalid_argument("NumberFormat: bit_width must be in [1, 64]");
  }
}

Tensor NumberFormat::format_to_real_tensor(const Tensor& t) const {
  return t;  // values are already held as float32 reals on the fabric
}

void NumberFormat::quantize_tensor_inplace(Tensor& t) {
  t = real_to_format_tensor(t);
}

void NumberFormat::quantize_view_inplace(TensorView& v) {
  if (v.dense_full()) {
    quantize_tensor_inplace(v.owner());
    return;
  }
  quantize_view_gather(v);
}

void NumberFormat::quantize_view_gather(TensorView& v) {
  Tensor tmp = v.materialize();
  quantize_tensor_inplace(tmp);
  v.assign_from(tmp);
}

BitString NumberFormat::real_to_format_at(float value,
                                          int64_t /*flat_index*/) const {
  return real_to_format(value);
}

float NumberFormat::format_to_real_at(const BitString& bits,
                                      int64_t /*flat_index*/) const {
  return format_to_real(bits);
}

BitString NumberFormat::read_metadata(const std::string& field,
                                      int64_t /*index*/) const {
  throw std::logic_error("format '" + name_ + "' has no metadata field '" +
                         field + "'");
}

void NumberFormat::write_metadata(const std::string& field, int64_t /*index*/,
                                  const BitString& /*bits*/) {
  throw std::logic_error("format '" + name_ + "' has no metadata field '" +
                         field + "'");
}

Tensor NumberFormat::decode_last_tensor() const {
  throw std::logic_error("format '" + name_ +
                         "' does not retain tensor state (no metadata)");
}

double NumberFormat::dynamic_range_db() const {
  const double mn = abs_min();
  if (mn <= 0.0) return 0.0;
  return 20.0 * std::log10(abs_max() / mn);
}

float round_to_step(float x, float step) {
  // nearbyint obeys the current rounding mode; the default (and the mode
  // this library assumes) is round-to-nearest-even, matching IEEE-754.
  return static_cast<float>(std::nearbyint(x / step)) * step;
}

int floor_log2(float x) {
  int e = 0;
  const float m = std::frexp(std::fabs(x), &e);  // |x| = m * 2^e, m in [0.5,1)
  (void)m;
  return e - 1;
}

float pow2f(int e) { return std::ldexp(1.0f, e); }

}  // namespace ge::fmt
