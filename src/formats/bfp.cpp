#include "formats/bfp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/telemetry.hpp"
#include "parallel/thread_pool.hpp"

namespace ge::fmt {

namespace {
std::string bfp_name(int e, int m, int64_t b) {
  return "bfp_e" + std::to_string(e) + "m" + std::to_string(m) + "_b" +
         (b == 0 ? std::string("tensor") : std::to_string(b));
}
}  // namespace

BfpFormat::BfpFormat(int exp_bits, int man_bits, int64_t block_size)
    : NumberFormat(bfp_name(exp_bits, man_bits, block_size),
                   1 + man_bits),  // per-element storage; exponent amortised
      exp_bits_(exp_bits),
      man_bits_(man_bits),
      bias_((1 << (exp_bits - 1)) - 1),
      block_size_(block_size) {
  if (exp_bits < 2 || exp_bits > 10) {
    throw std::invalid_argument("BfpFormat: exp_bits must be in [2, 10]");
  }
  if (man_bits < 1 || man_bits > 23) {
    throw std::invalid_argument("BfpFormat: man_bits must be in [1, 23]");
  }
  if (block_size < 0) {
    throw std::invalid_argument("BfpFormat: block_size must be >= 0");
  }
}

int64_t BfpFormat::block_of(int64_t flat_index) const {
  if (effective_block_ <= 0) {
    throw std::logic_error("BfpFormat: no tensor converted yet");
  }
  return flat_index / effective_block_;
}

float BfpFormat::decode_code(int32_t signed_mag, int se) const {
  return std::ldexp(static_cast<float>(signed_mag), se + 1 - man_bits_);
}

Tensor BfpFormat::real_to_format_tensor(const Tensor& t) {
  Tensor out = t;  // O(1) share; the in-place kernel detaches on write
  quantize_tensor_inplace(out);
  return out;
}

void BfpFormat::quantize_tensor_inplace(Tensor& t) {
  const int64_t n = t.numel();
  effective_block_ = (block_size_ == 0) ? n : block_size_;
  const int64_t nblocks = (n + effective_block_ - 1) / effective_block_;
  shared_exp_.assign(static_cast<size_t>(nblocks), -bias_);
  last_codes_.assign(static_cast<size_t>(n), 0);
  last_shape_ = t.shape();

  Tensor before;
  if (obs::metrics_enabled()) before = t;  // O(1) pre-quant snapshot via COW
  float* p = t.data();
  const int se_min = -bias_;
  const int se_max = ((1 << exp_bits_) - 1) - bias_;
  const auto max_mag = static_cast<float>((1 << man_bits_) - 1);

  // Blocks are independent: each owns one shared-exponent register and a
  // disjoint code/output slice, so the block loop is the parallel axis.
  // In-place is safe: pass 1 reads the whole block before pass 2 writes it.
  parallel::parallel_for(
      0, nblocks, parallel::grain_for(2 * effective_block_),
      [&](int64_t blo, int64_t bhi) {
        for (int64_t b = blo; b < bhi; ++b) {
          const int64_t lo = b * effective_block_;
          const int64_t hi = std::min(n, lo + effective_block_);
          // Pass 1: the block's maximum exponent -> shared-exponent register.
          float block_max = 0.0f;
          for (int64_t i = lo; i < hi; ++i) {
            block_max = std::max(block_max, std::fabs(p[i]));
          }
          int se = se_min;
          if (block_max > 0.0f && !std::isnan(block_max)) {
            se = std::clamp(floor_log2(block_max), se_min, se_max);
          }
          shared_exp_[static_cast<size_t>(b)] = se;
          // Pass 2: quantise each element against the shared exponent.
          // Scaling uses ldexp, not 1/step: for deeply negative shared
          // exponents (an all-zero block under a wide-e format)
          // 2^-(se+1-m) overflows float and 0 * inf would poison the
          // block with NaNs.
          const int shift = se + 1 - man_bits_;
          for (int64_t i = lo; i < hi; ++i) {
            const float x = p[i];
            float mag = std::nearbyintf(std::ldexp(std::fabs(x), -shift));
            mag = std::min(mag, max_mag);
            const float code = std::signbit(x) ? -mag : mag;
            last_codes_[static_cast<size_t>(i)] = static_cast<int32_t>(code);
            p[i] = std::ldexp(code, shift);
          }
        }
      });
  if (obs::metrics_enabled()) {
    // Block-local saturation (a block's max-mantissa clamp) is below the
    // format-wide abs_max, so this undercounts per-block clamping; the
    // counter tracks format-range saturation only.
    obs::record_quantization(before.cdata(), p, n, abs_max());
  }
}

void BfpFormat::quantize_view_inplace(TensorView& v) {
  if (v.dense_full()) {
    quantize_tensor_inplace(v.owner());
    return;
  }
  // Blocks are defined over the *view-linear* element sequence (block b =
  // view elements [b*B, (b+1)*B)), exactly as a materialized copy would
  // block them — so gather -> tensor kernel -> scatter IS the strided
  // semantics, and shared_exp_/last_codes_ afterwards answer view-indexed
  // real_to_format_at / format_to_real_at queries.
  quantize_view_gather(v);
}

BitString BfpFormat::real_to_format(float value) const {
  // Context-free: shared exponent 0 (see header).
  const float step = pow2f(1 - man_bits_);
  float mag = std::nearbyintf(std::fabs(value) / step);
  mag = std::min(mag, static_cast<float>((1 << man_bits_) - 1));
  const uint64_t sign = std::signbit(value) ? 1 : 0;
  return BitString((sign << man_bits_) | static_cast<uint64_t>(mag),
                   bit_width_);
}

float BfpFormat::format_to_real(const BitString& bits) const {
  if (bits.width() != bit_width_) {
    throw std::invalid_argument("BfpFormat: bitstring width mismatch");
  }
  const uint64_t raw = bits.value();
  const uint64_t mag = raw & ((uint64_t{1} << man_bits_) - 1);
  const bool sign = (raw >> man_bits_) & 1;
  const float v = decode_code(static_cast<int32_t>(mag), 0);
  return sign ? -v : v;
}

BitString BfpFormat::real_to_format_at(float value, int64_t flat_index) const {
  const int se = shared_exp_.at(static_cast<size_t>(block_of(flat_index)));
  float mag =
      std::nearbyintf(std::ldexp(std::fabs(value), -(se + 1 - man_bits_)));
  mag = std::min(mag, static_cast<float>((1 << man_bits_) - 1));
  const uint64_t sign = std::signbit(value) ? 1 : 0;
  return BitString((sign << man_bits_) | static_cast<uint64_t>(mag),
                   bit_width_);
}

float BfpFormat::format_to_real_at(const BitString& bits,
                                   int64_t flat_index) const {
  if (bits.width() != bit_width_) {
    throw std::invalid_argument("BfpFormat: bitstring width mismatch");
  }
  const int se = shared_exp_.at(static_cast<size_t>(block_of(flat_index)));
  const uint64_t raw = bits.value();
  const uint64_t mag = raw & ((uint64_t{1} << man_bits_) - 1);
  const bool sign = (raw >> man_bits_) & 1;
  const float v = decode_code(static_cast<int32_t>(mag), se);
  return sign ? -v : v;
}

std::vector<MetadataField> BfpFormat::metadata_fields() const {
  return {MetadataField{"shared_exponent", exp_bits_,
                        static_cast<int64_t>(shared_exp_.size())}};
}

BitString BfpFormat::read_metadata(const std::string& field,
                                   int64_t index) const {
  if (field != "shared_exponent" || index < 0 ||
      index >= static_cast<int64_t>(shared_exp_.size())) {
    throw std::logic_error("BfpFormat: unknown metadata register '" + field +
                           "[" + std::to_string(index) + "]'");
  }
  const int stored = shared_exp_[static_cast<size_t>(index)] + bias_;
  return BitString(static_cast<uint64_t>(stored), exp_bits_);
}

void BfpFormat::write_metadata(const std::string& field, int64_t index,
                               const BitString& bits) {
  if (field != "shared_exponent" || index < 0 ||
      index >= static_cast<int64_t>(shared_exp_.size()) ||
      bits.width() != exp_bits_) {
    throw std::logic_error("BfpFormat: bad metadata write to '" + field + "'");
  }
  shared_exp_[static_cast<size_t>(index)] =
      static_cast<int>(bits.value()) - bias_;
}

Tensor BfpFormat::decode_last_tensor() const {
  if (last_codes_.empty()) {
    throw std::logic_error("BfpFormat: no tensor converted yet");
  }
  Tensor out(last_shape_);
  float* po = out.data();
  const int64_t n = out.numel();
  for (int64_t i = 0; i < n; ++i) {
    const int se = shared_exp_[static_cast<size_t>(i / effective_block_)];
    po[i] = decode_code(last_codes_[static_cast<size_t>(i)], se);
  }
  return out;
}

double BfpFormat::abs_max() const {
  const int se_max = ((1 << exp_bits_) - 1) - bias_;
  const double max_mag = (1 << man_bits_) - 1;
  return max_mag * std::ldexp(1.0, se_max + 1 - man_bits_);
}

double BfpFormat::abs_min() const {
  const int se_min = -bias_;
  return std::ldexp(1.0, se_min + 1 - man_bits_);
}

int BfpFormat::shared_exponent(int64_t b) const {
  return shared_exp_.at(static_cast<size_t>(b));
}

std::string BfpFormat::spec() const { return name_; }

std::unique_ptr<NumberFormat> BfpFormat::clone() const {
  return std::make_unique<BfpFormat>(*this);
}

}  // namespace ge::fmt
