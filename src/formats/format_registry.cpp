#include "formats/format_registry.hpp"

#include <charconv>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "formats/afp.hpp"
#include "formats/bfp.hpp"
#include "formats/fp.hpp"
#include "formats/fxp.hpp"
#include "formats/intq.hpp"
#include "formats/posit.hpp"
#include "obs/telemetry.hpp"

namespace ge::fmt {

namespace {

/// Parse a decimal integer at the front of `s`, advancing it.
bool eat_int(std::string_view& s, int64_t& out) {
  const auto* begin = s.data();
  const auto* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc{} || ptr == begin) return false;
  s.remove_prefix(static_cast<size_t>(ptr - begin));
  return true;
}

bool eat(std::string_view& s, std::string_view token) {
  if (s.substr(0, token.size()) != token) return false;
  s.remove_prefix(token.size());
  return true;
}

std::string resolve_alias(const std::string& spec) {
  if (spec == "fp32") return "fp_e8m23";
  if (spec == "fp16" || spec == "half") return "fp_e5m10";
  if (spec == "bfloat16" || spec == "bfloat") return "fp_e8m7";
  if (spec == "tf32" || spec == "tensorfloat") return "fp_e8m10";
  if (spec == "dlfloat") return "fp_e6m9";
  if (spec == "fp8_e4m3") return "fp_e4m3";
  if (spec == "fp8_e5m2") return "fp_e5m2";
  return spec;
}

std::unique_ptr<NumberFormat> parse(const std::string& full_spec) {
  const std::string resolved = resolve_alias(full_spec);
  std::string_view s = resolved;

  if (eat(s, "fp_e")) {
    int64_t e = 0, m = 0;
    if (!eat_int(s, e) || !eat(s, "m") || !eat_int(s, m)) return nullptr;
    FloatFormat::Options opt;
    while (!s.empty()) {
      if (eat(s, "_nodn")) {
        opt.denormals = false;
      } else if (eat(s, "_sat")) {
        opt.saturate_overflow = true;
      } else {
        return nullptr;
      }
    }
    return std::make_unique<FloatFormat>(static_cast<int>(e),
                                         static_cast<int>(m), opt);
  }

  if (eat(s, "fxp_1_")) {
    int64_t i = 0, f = 0;
    if (!eat_int(s, i) || !eat(s, "_") || !eat_int(s, f) || !s.empty()) {
      return nullptr;
    }
    return std::make_unique<FxpFormat>(static_cast<int>(i),
                                       static_cast<int>(f));
  }

  if (eat(s, "int")) {
    int64_t n = 0;
    if (!eat_int(s, n) || !s.empty()) return nullptr;
    return std::make_unique<IntFormat>(static_cast<int>(n));
  }

  if (eat(s, "bfp_e")) {
    int64_t e = 0, m = 0, b = 0;
    if (!eat_int(s, e) || !eat(s, "m") || !eat_int(s, m) || !eat(s, "_b")) {
      return nullptr;
    }
    if (eat(s, "tensor")) {
      b = 0;
    } else if (!eat_int(s, b)) {
      return nullptr;
    }
    if (!s.empty()) return nullptr;
    return std::make_unique<BfpFormat>(static_cast<int>(e),
                                       static_cast<int>(m), b);
  }

  if (eat(s, "posit_")) {
    int64_t n = 0, es = 0;
    if (!eat_int(s, n) || !eat(s, "_") || !eat_int(s, es) || !s.empty()) {
      return nullptr;
    }
    return std::make_unique<PositFormat>(static_cast<int>(n),
                                         static_cast<int>(es));
  }

  if (eat(s, "afp_e")) {
    int64_t e = 0, m = 0;
    if (!eat_int(s, e) || !eat(s, "m") || !eat_int(s, m)) return nullptr;
    AfpFormat::Options opt;
    if (eat(s, "_dn")) opt.denormals = true;
    if (!s.empty()) return nullptr;
    return std::make_unique<AfpFormat>(static_cast<int>(e),
                                       static_cast<int>(m), opt);
  }

  return nullptr;
}

}  // namespace

std::unique_ptr<NumberFormat> make_format(const std::string& spec) {
  // Per-spec prototype cache: campaigns construct one format per layer per
  // replica from the same handful of spec strings, so parse once and clone.
  // Prototypes are never used for conversion, so clones carry no tensor
  // state. Thread-safe: replica setup may run from pool workers.
  static std::mutex mu;
  static std::unordered_map<std::string, std::unique_ptr<NumberFormat>> cache;
  {
    std::lock_guard<std::mutex> lk(mu);
    const auto it = cache.find(spec);
    if (it != cache.end()) {
      obs::add(obs::Counter::kFormatCacheHits);
      return it->second->clone();
    }
  }
  obs::add(obs::Counter::kFormatCacheMisses);
  auto f = parse(spec);
  if (!f) {
    throw std::invalid_argument("make_format: unknown format spec '" + spec +
                                "'");
  }
  std::lock_guard<std::mutex> lk(mu);
  auto& slot = cache[spec];
  if (!slot) slot = f->clone();
  return f;
}

const std::vector<float>* dequant_codebook(const std::string& spec) {
  static std::mutex mu;
  static std::unordered_map<std::string, std::unique_ptr<std::vector<float>>>
      cache;
  std::lock_guard<std::mutex> lk(mu);
  const auto it = cache.find(spec);
  if (it != cache.end()) return it->second.get();

  auto f = parse(spec);
  if (!f) {
    throw std::invalid_argument("dequant_codebook: unknown format spec '" +
                                spec + "'");
  }
  auto& slot = cache[spec];
  // Only value-only formats decode context-free: any format with hardware
  // metadata registers (INT scale, BFP shared exponents, AFP bias offset)
  // decodes differently per tensor, so a static codebook would be wrong.
  if (f->bit_width() > 16 || !f->metadata_fields().empty()) {
    return nullptr;  // slot stays null and future lookups short-circuit
  }
  const uint64_t count = uint64_t{1} << f->bit_width();
  auto table = std::make_unique<std::vector<float>>();
  table->reserve(static_cast<size_t>(count));
  for (uint64_t p = 0; p < count; ++p) {
    table->push_back(f->format_to_real(BitString(p, f->bit_width())));
  }
  slot = std::move(table);
  return slot.get();
}

bool dequantize_codes_inplace(const std::string& spec, Tensor& t) {
  const std::vector<float>* table = dequant_codebook(spec);
  if (table == nullptr) return false;
  const auto size = static_cast<int64_t>(table->size());
  const int64_t n = t.numel();
  // Validate before mutating: a throw must leave `t` untouched, and the
  // read-only pass keeps the failure path out of the parallel region.
  const float* in = t.cdata();
  for (int64_t i = 0; i < n; ++i) {
    const auto code = static_cast<int64_t>(in[i]);
    if (in[i] != static_cast<float>(code) || code < 0 || code >= size) {
      throw std::invalid_argument(
          "dequantize_codes_inplace: element " + std::to_string(i) + " (" +
          std::to_string(in[i]) + ") is not a code point of '" + spec + "'");
    }
  }
  const float* lut = table->data();
  float* p = t.data();  // any COW detach happens here, single-threaded
  parallel::parallel_for(0, n, 4096, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      p[i] = lut[static_cast<size_t>(p[i])];
    }
  });
  return true;
}

bool is_valid_spec(const std::string& spec) {
  try {
    return parse(spec) != nullptr;
  } catch (const std::invalid_argument&) {
    return false;  // parsed but parameters out of range
  }
}

std::vector<std::string> known_aliases() {
  return {"fp32",    "fp16",     "half", "bfloat16", "bfloat",
          "tf32",    "dlfloat",  "fp8_e4m3", "fp8_e5m2"};
}

}  // namespace ge::fmt
