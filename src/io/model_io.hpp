// Model checkpoints (.gec): a "META" section naming the architecture plus
// name-keyed state-dict sections for parameters ("SDIC") and buffers
// ("BUFS"), round-tripped through Module::named_parameters /
// named_buffers. Loading is strict — the on-disk name set and every shape
// must match the target model exactly — so a checkpoint can never be
// silently grafted onto the wrong architecture, and a loaded model
// evaluates bitwise-identically to the one that was saved.
#pragma once

#include <string>

#include "io/container.hpp"
#include "nn/module.hpp"

namespace ge::io {

/// Architecture echo stored next to the weights.
struct ModelMeta {
  std::string model_name;      ///< factory name, e.g. "tiny_resnet"
  int64_t parameter_count = 0; ///< total scalars, a cheap sanity check
};

/// Write `model`'s full state (parameters + buffers) to `path`.
void save_model(const std::string& path, nn::Module& model,
                const std::string& model_name);

/// Read only the META section of a model checkpoint (cheap validation
/// before constructing the architecture). Throws IoError on a non-model
/// container.
ModelMeta read_model_meta(const std::string& path);

/// Load `path` into `model`. Every named parameter and buffer must match
/// by name and shape, in both directions; throws IoError otherwise (with
/// the first offending name in the message). Returns the stored meta.
ModelMeta load_model(const std::string& path, nn::Module& model);

}  // namespace ge::io
