#include "io/container.hpp"

#include <array>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

namespace ge::io {

namespace {

const std::array<uint32_t, 256>& crc_table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t crc32(const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = crc_table()[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// --- ByteWriter ------------------------------------------------------------

void ByteWriter::u32(uint32_t v) {
  for (int i = 0; i < 4; ++i) bytes_.push_back(uint8_t(v >> (8 * i)));
}

void ByteWriter::u64(uint64_t v) {
  for (int i = 0; i < 8; ++i) bytes_.push_back(uint8_t(v >> (8 * i)));
}

void ByteWriter::f32(float v) {
  uint32_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u32(bits);
}

void ByteWriter::f64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void ByteWriter::str(const std::string& s) {
  u64(s.size());
  raw(s.data(), s.size());
}

void ByteWriter::raw(const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  bytes_.insert(bytes_.end(), p, p + n);
}

// --- ByteReader ------------------------------------------------------------

void ByteReader::require(size_t n) const {
  if (remaining() < n) {
    throw IoError(context_ + ": truncated data (need " + std::to_string(n) +
                  " bytes, " + std::to_string(remaining()) + " remain)");
  }
}

uint8_t ByteReader::u8() {
  require(1);
  return bytes_[pos_++];
}

uint32_t ByteReader::u32() {
  require(4);
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= uint32_t(bytes_[pos_++]) << (8 * i);
  return v;
}

uint32_t ByteReader::peek_u32() const {
  require(4);
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= uint32_t(bytes_[pos_ + i]) << (8 * i);
  return v;
}

uint64_t ByteReader::u64() {
  require(8);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= uint64_t(bytes_[pos_++]) << (8 * i);
  return v;
}

float ByteReader::f32() {
  const uint32_t bits = u32();
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

double ByteReader::f64() {
  const uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string ByteReader::str() {
  const uint64_t n = u64();
  require(n);
  std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_),
                static_cast<size_t>(n));
  pos_ += static_cast<size_t>(n);
  return s;
}

void ByteReader::raw(void* out, size_t n) {
  require(n);
  std::memcpy(out, bytes_.data() + pos_, n);
  pos_ += n;
}

// --- Container -------------------------------------------------------------

void Container::add(const std::string& tag, std::vector<uint8_t> payload) {
  if (tag.size() != 4) {
    throw IoError("section tag '" + tag + "' must be 4 characters");
  }
  sections_.push_back(Section{tag, std::move(payload)});
}

const Section* Container::find(const std::string& tag) const {
  for (const Section& s : sections_) {
    if (s.tag == tag) return &s;
  }
  return nullptr;
}

const Section& Container::require(const std::string& tag,
                                  const std::string& context) const {
  const Section* s = find(tag);
  if (s == nullptr) {
    throw IoError(context + ": missing '" + tag + "' section");
  }
  return *s;
}

void save_file(const std::string& path, const Container& c) {
  ByteWriter w;
  w.raw(kMagic, sizeof(kMagic));
  w.u32(kSchemaVersion);
  w.u32(static_cast<uint32_t>(c.sections().size()));
  for (const Section& s : c.sections()) {
    w.raw(s.tag.data(), 4);
    w.u64(s.payload.size());
    w.u32(crc32(s.payload.data(), s.payload.size()));
    w.raw(s.payload.data(), s.payload.size());
  }

  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) throw IoError(path + ": cannot open for writing");
    f.write(reinterpret_cast<const char*>(w.bytes().data()),
            static_cast<std::streamsize>(w.bytes().size()));
    if (!f) {
      std::remove(tmp.c_str());
      throw IoError(path + ": write failed");
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    throw IoError(path + ": rename failed (" + ec.message() + ")");
  }
}

Container load_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw IoError(path + ": cannot open");
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(f)),
                             std::istreambuf_iterator<char>());
  if (!f.good() && !f.eof()) throw IoError(path + ": read failed");

  ByteReader r(bytes, path);
  char magic[4];
  r.raw(magic, 4);
  if (std::memcmp(magic, kMagic, 4) != 0) {
    throw IoError(path + ": not a GoldenEye container (bad magic)");
  }
  const uint32_t version = r.u32();
  if (version < kMinSchemaVersion || version > kSchemaVersion) {
    throw IoError(path + ": unsupported schema version " +
                  std::to_string(version) + " (this build reads " +
                  std::to_string(kMinSchemaVersion) + ".." +
                  std::to_string(kSchemaVersion) + ")");
  }
  const uint32_t count = r.u32();
  Container c;
  c.set_version(version);
  for (uint32_t i = 0; i < count; ++i) {
    char tag[4];
    r.raw(tag, 4);
    const uint64_t size = r.u64();
    const uint32_t want_crc = r.u32();
    r.require(size);
    std::vector<uint8_t> payload(static_cast<size_t>(size));
    r.raw(payload.data(), payload.size());
    const uint32_t got_crc = crc32(payload.data(), payload.size());
    if (got_crc != want_crc) {
      throw IoError(path + ": CRC mismatch in section '" +
                    std::string(tag, 4) + "' (file is corrupt)");
    }
    c.add(std::string(tag, 4), std::move(payload));
  }
  if (!r.at_end()) {
    throw IoError(path + ": trailing bytes after last section");
  }
  return c;
}

}  // namespace ge::io
