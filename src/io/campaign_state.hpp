// Campaign checkpoint/shard files: a core::CampaignProgress in a "CAMP"
// container section. The struct itself lives in core/campaign.hpp (it is
// campaign state first, a file second); this unit only moves it between
// memory and bytes, so ge_io depends on the core *headers* but never on
// ge_core code.
//
// CAMP payload layout (little-endian; see container.hpp for the framing):
//   str format_spec, u8 site, u8 error_model, i64 injections_per_layer,
//   u32 num_bits, u64 seed, u32 shards, u32 shard_index,
//   str model_name, i64 eval_samples, f32 golden_accuracy,
//   u64 golden_digest (FNV-1a over golden logit bytes),
//   u64 layer count, then per layer:
//     u64 site_index, str path, u64 trials,
//     trials * u8 done flag,
//     trials * outcome {i64 mismatched_samples, f32 mismatch_rate,
//                       f32 delta_loss, f32 max_delta_loss, u8 sdc}
//
// Evolution rule: in container v2+ files, writers may append new fields
// after this layout; readers decode what they know and skip the rest
// (v1 files stay strict — trailing bytes there are corruption).
#pragma once

#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "io/container.hpp"

namespace ge::io {

std::vector<uint8_t> encode_campaign_progress(
    const core::CampaignProgress& progress);
core::CampaignProgress decode_campaign_progress(ByteReader& r);

/// Write `progress` as a .gec campaign file (atomic tmp+rename). Bumps
/// the checkpoint_writes counter and records an "io"/"checkpoint_write"
/// span. Throws IoError on I/O failure.
void save_campaign_progress(const std::string& path,
                            const core::CampaignProgress& progress);

/// Parse a campaign .gec file (magic/version/CRC-checked). Throws IoError
/// on a missing, corrupt, or non-campaign file.
core::CampaignProgress load_campaign_progress(const std::string& path);

}  // namespace ge::io
