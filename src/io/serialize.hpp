// ge::io typed payload codecs: tensors, name-keyed state dicts, and Rng
// stream state. These are the building blocks model_io and campaign_state
// assemble into .gec sections; each encode_x/decode_x pair is a strict
// round trip (decode(encode(x)) reproduces x bitwise).
//
// Wire formats (all little-endian, see container.hpp):
//   tensor     u8 dtype (1 = f32), u32 rank, i64 dim..., f32 payload
//   state dict u64 count, then per entry: str name, tensor
//   rng        u64 construction seed, str mt19937_64 engine state
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "io/container.hpp"
#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace ge::io {

/// One dtype so far; the tag exists so future formats (f16 payloads,
/// quantised code streams) can extend the container without a version bump.
inline constexpr uint8_t kDtypeF32 = 1;

/// Append `t` (shape + raw FP32 payload) to `w`. Handles every shape the
/// Tensor class can hold: 0-d scalars, empty dims, reshape-shared storage.
void encode_tensor(ByteWriter& w, const Tensor& t);

/// Decode one tensor; throws IoError on a bad dtype, negative extent,
/// or truncated payload.
Tensor decode_tensor(ByteReader& r);

/// Name -> tensor pairs, in order (Module::named_parameters order for
/// model state; decode preserves it).
using StateDict = std::vector<std::pair<std::string, Tensor>>;

void encode_state_dict(ByteWriter& w, const StateDict& dict);
StateDict decode_state_dict(ByteReader& r);

/// Full Rng stream state: the construction seed (which child() streams
/// derive from) plus the exact mt19937_64 engine position, so a restored
/// generator continues the draw sequence where the saved one stopped.
void encode_rng(ByteWriter& w, const Rng& rng);
Rng decode_rng(ByteReader& r);

}  // namespace ge::io
