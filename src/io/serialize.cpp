#include "io/serialize.hpp"

#include <sstream>

namespace ge::io {

namespace {

// A believable rank bound: anything larger is a corrupt count, not a
// tensor this codebase could have produced.
constexpr uint32_t kMaxRank = 64;

}  // namespace

void encode_tensor(ByteWriter& w, const Tensor& t) {
  w.u8(kDtypeF32);
  w.u32(static_cast<uint32_t>(t.dim()));
  for (int64_t e : t.shape()) w.i64(e);
  if (t.numel() > 0) {
    w.raw(t.cdata(), static_cast<size_t>(t.numel()) * sizeof(float));
  }
}

Tensor decode_tensor(ByteReader& r) {
  const uint8_t dtype = r.u8();
  if (dtype != kDtypeF32) {
    throw IoError(r.context() + ": unknown tensor dtype " +
                  std::to_string(dtype));
  }
  const uint32_t rank = r.u32();
  if (rank > kMaxRank) {
    throw IoError(r.context() + ": implausible tensor rank " +
                  std::to_string(rank));
  }
  Shape shape(rank);
  int64_t n = 1;
  for (uint32_t d = 0; d < rank; ++d) {
    shape[d] = r.i64();
    // Reject negative extents and element-count overflow here, with
    // checked arithmetic: shape_numel's plain multiply would be UB on a
    // corrupt file's absurd extents.
    if (shape[d] < 0 || __builtin_mul_overflow(n, shape[d], &n)) {
      throw IoError(r.context() + ": corrupt tensor shape");
    }
  }
  // Bound n by the payload actually present before allocating: dividing
  // remaining() (instead of multiplying n) cannot wrap, so a crafted
  // extent like 2^62 is rejected here rather than reaching the allocator.
  if (static_cast<uint64_t>(n) > r.remaining() / sizeof(float)) {
    throw IoError(r.context() + ": truncated or corrupt tensor payload");
  }
  Tensor t(std::move(shape));
  if (n > 0) r.raw(t.data(), static_cast<size_t>(n) * sizeof(float));
  return t;
}

void encode_state_dict(ByteWriter& w, const StateDict& dict) {
  w.u64(dict.size());
  for (const auto& [name, tensor] : dict) {
    w.str(name);
    encode_tensor(w, tensor);
  }
}

StateDict decode_state_dict(ByteReader& r) {
  const uint64_t count = r.u64();
  // Each entry consumes at least its name length field plus the tensor
  // header, so a lying count fails fast instead of reserving memory.
  StateDict dict;
  for (uint64_t i = 0; i < count; ++i) {
    std::string name = r.str();
    Tensor t = decode_tensor(r);
    dict.emplace_back(std::move(name), std::move(t));
  }
  return dict;
}

void encode_rng(ByteWriter& w, const Rng& rng) {
  w.u64(rng.seed());
  std::ostringstream os;
  os << rng.engine();
  w.str(os.str());
}

Rng decode_rng(ByteReader& r) {
  const uint64_t seed = r.u64();
  const std::string state = r.str();
  Rng rng(seed);
  std::istringstream is(state);
  is >> rng.engine();
  if (!is) {
    throw IoError(r.context() + ": corrupt rng engine state");
  }
  return rng;
}

}  // namespace ge::io
