#include "io/model_io.hpp"

#include "io/serialize.hpp"
#include "obs/telemetry.hpp"

namespace ge::io {

namespace {

constexpr const char* kMetaTag = "META";
constexpr const char* kParamsTag = "SDIC";
constexpr const char* kBuffersTag = "BUFS";

std::vector<uint8_t> encode_entries(
    const std::vector<std::pair<std::string, nn::Parameter*>>& entries) {
  ByteWriter w;
  StateDict dict;
  dict.reserve(entries.size());
  for (const auto& [name, param] : entries) {
    dict.emplace_back(name, param->value);  // O(1) storage share
  }
  encode_state_dict(w, dict);
  return w.take();
}

/// Assign `dict` onto `entries` by name, strict in both directions.
void apply_entries(
    const StateDict& dict,
    const std::vector<std::pair<std::string, nn::Parameter*>>& entries,
    const std::string& path, const char* what) {
  if (dict.size() != entries.size()) {
    throw IoError(path + ": " + what + " count mismatch (file has " +
                  std::to_string(dict.size()) + ", model has " +
                  std::to_string(entries.size()) + ")");
  }
  // Enumeration order is deterministic (depth-first registration), so a
  // matching architecture yields the same name sequence; comparing in
  // order also catches reordered/renamed layers.
  for (size_t i = 0; i < dict.size(); ++i) {
    const auto& [name, tensor] = dict[i];
    const auto& [want_name, param] = entries[i];
    if (name != want_name) {
      throw IoError(path + ": " + what + " name mismatch at index " +
                    std::to_string(i) + " ('" + name + "' in file, '" +
                    want_name + "' in model)");
    }
    if (tensor.shape() != param->value.shape()) {
      throw IoError(path + ": shape mismatch for '" + name + "' (" +
                    shape_to_string(tensor.shape()) + " in file, " +
                    shape_to_string(param->value.shape()) + " in model)");
    }
    param->value = tensor;  // O(1) share of the decoded storage
  }
}

}  // namespace

void save_model(const std::string& path, nn::Module& model,
                const std::string& model_name) {
  obs::Span span("io", "model_save", path);
  Container c;
  ByteWriter meta;
  meta.str(model_name);
  meta.i64(model.parameter_count());
  c.add(kMetaTag, meta.take());
  c.add(kParamsTag, encode_entries(model.named_parameters()));
  c.add(kBuffersTag, encode_entries(model.named_buffers()));
  save_file(path, c);
}

ModelMeta read_model_meta(const std::string& path) {
  const Container c = load_file(path);
  const Section& meta = c.require(kMetaTag, path);
  ByteReader r(meta.payload, path);
  ModelMeta out;
  out.model_name = r.str();
  out.parameter_count = r.i64();
  return out;
}

ModelMeta load_model(const std::string& path, nn::Module& model) {
  obs::Span span("io", "model_load", path);
  const Container c = load_file(path);
  const Section& meta = c.require(kMetaTag, path);
  ByteReader mr(meta.payload, path);
  ModelMeta out;
  out.model_name = mr.str();
  out.parameter_count = mr.i64();
  if (out.parameter_count != model.parameter_count()) {
    throw IoError(path + ": parameter count mismatch (file has " +
                  std::to_string(out.parameter_count) + " scalars, model has " +
                  std::to_string(model.parameter_count()) + ")");
  }

  ByteReader pr(c.require(kParamsTag, path).payload, path);
  apply_entries(decode_state_dict(pr), model.named_parameters(), path,
                "parameter");
  ByteReader br(c.require(kBuffersTag, path).payload, path);
  apply_entries(decode_state_dict(br), model.named_buffers(), path, "buffer");
  return out;
}

}  // namespace ge::io
