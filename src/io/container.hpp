// ge::io — the .gec binary container underpinning all GoldenEye
// persistence: model checkpoints, campaign checkpoints/shards, and any
// future worker hand-off state.
//
// File layout (every multi-byte integer little-endian, regardless of host
// endianness — encoding is shift-based, never memcpy-of-struct):
//
//   offset 0   4 bytes   magic "GEC1"
//          4   u32       schema version (kSchemaVersion)
//          8   u32       section count
//         12   sections, back to back:
//                4 bytes  tag (ASCII, e.g. "TENS", "SDIC", "CAMP")
//                u64      payload byte length
//                u32      CRC32 (IEEE) of the payload bytes
//                payload
//
// Every read path is paranoid: magic/version/section bounds/CRC are all
// checked, and any violation throws IoError with a path-qualified message
// — a corrupt or truncated file is always a diagnosed error (the CLI maps
// IoError to exit 2), never UB. Writers go through save_file(), which
// writes "<path>.tmp" and renames it into place so a killed process never
// leaves a half-written file under the final name.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace ge::io {

/// Persistence failure (unreadable, corrupt, or mismatched file). The CLI
/// treats these as diagnosed user-input errors: message to stderr, exit 2.
struct IoError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Version written by this build. Readers accept kMinSchemaVersion..
/// kSchemaVersion and reject anything newer: old files keep loading
/// forever, while a file from a future build fails with a clear message
/// instead of being misparsed. Section decoders gate their own
/// evolution on Container::version() (e.g. v2 CAMP payloads may carry
/// trailing fields that v2+ readers skip).
///
/// v1  PR 4 container + strict CAMP payload
/// v2  CAMP decoders tolerate unknown trailing payload fields
inline constexpr uint32_t kSchemaVersion = 2;
inline constexpr uint32_t kMinSchemaVersion = 1;
/// "GEC1" as on-disk bytes.
inline constexpr char kMagic[4] = {'G', 'E', 'C', '1'};

/// CRC32 (IEEE 802.3, reflected) of `n` bytes. crc32("123456789") is the
/// standard check value 0xCBF43926.
uint32_t crc32(const void* data, size_t n);

// --- byte-level encoding ---------------------------------------------------

/// Append-only little-endian byte sink for section payloads.
class ByteWriter {
 public:
  void u8(uint8_t v) { bytes_.push_back(v); }
  void u32(uint32_t v);
  void u64(uint64_t v);
  void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }
  void f32(float v);
  void f64(double v);
  /// u64 length prefix + raw bytes.
  void str(const std::string& s);
  void raw(const void* data, size_t n);

  const std::vector<uint8_t>& bytes() const noexcept { return bytes_; }
  std::vector<uint8_t> take() noexcept { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

/// Bounds-checked little-endian reader over one section payload. Every
/// overrun throws IoError("truncated ..."), so a short or lying length
/// field can never read out of bounds.
class ByteReader {
 public:
  /// `context` prefixes error messages (typically the file path).
  ByteReader(std::span<const uint8_t> bytes, std::string context)
      : bytes_(bytes), context_(std::move(context)) {}

  uint8_t u8();
  uint32_t u32();
  uint64_t u64();
  int64_t i64() { return static_cast<int64_t>(u64()); }
  float f32();
  double f64();
  std::string str();
  /// Copy `n` raw bytes into `out`.
  void raw(void* out, size_t n);
  /// Read a u32 without consuming it — for tagged optional trailing
  /// fields, where the tag must be inspected before deciding to decode.
  uint32_t peek_u32() const;

  size_t remaining() const noexcept { return bytes_.size() - pos_; }
  bool at_end() const noexcept { return pos_ == bytes_.size(); }
  const std::string& context() const noexcept { return context_; }

  /// Throw IoError unless at least `n` bytes remain — used before bulk
  /// resizes so a corrupt count cannot trigger a huge allocation.
  void require(size_t n) const;

 private:
  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
  std::string context_;
};

// --- container -------------------------------------------------------------

struct Section {
  std::string tag;  ///< exactly 4 ASCII characters
  std::vector<uint8_t> payload;
};

/// In-memory .gec file being assembled; save_file() serialises it.
class Container {
 public:
  void add(const std::string& tag, std::vector<uint8_t> payload);

  const std::vector<Section>& sections() const noexcept { return sections_; }
  /// First section with `tag`; nullptr when absent.
  const Section* find(const std::string& tag) const;
  /// As find(), but a missing section is an IoError mentioning `context`.
  const Section& require(const std::string& tag,
                         const std::string& context) const;

  /// Schema version this container was loaded from (kSchemaVersion for
  /// containers assembled in memory). Section decoders use it to gate
  /// version-dependent payload features.
  uint32_t version() const noexcept { return version_; }
  void set_version(uint32_t v) noexcept { version_ = v; }

 private:
  std::vector<Section> sections_;
  uint32_t version_ = kSchemaVersion;
};

/// Serialise to `path` atomically: write "<path>.tmp", fsync-free rename
/// into place. Throws IoError on any I/O failure.
void save_file(const std::string& path, const Container& c);

/// Parse `path`, validating magic, version, section bounds and every
/// section's CRC32. Throws IoError describing the first violation.
Container load_file(const std::string& path);

}  // namespace ge::io
