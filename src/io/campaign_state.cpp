#include "io/campaign_state.hpp"

#include "obs/telemetry.hpp"

namespace ge::io {

namespace {

constexpr const char* kCampaignTag = "CAMP";

// Believable bound on per-layer trial counts: a corrupt count must fail
// fast, not size gigabyte vectors. Each stored trial occupies >= 21
// payload bytes, so honest files stay far below this.
constexpr uint64_t kMaxTrials = uint64_t{1} << 32;

// Trailing-field tag for CampaignProgress::sites_per_trial ("SPT1").
// Fields appended after the original CAMP layout must be tagged: the v2
// skip rule lets old readers ignore them, and the tag lets this reader
// tell its own field apart from arbitrary unknown trailing data (which is
// skipped, leaving the default).
constexpr uint32_t kSitesPerTrialTag = 0x53505431;

// Trailing-field tag for the error-model-zoo knobs ("EMZ1"): f64 ber +
// u32 burst_len. Written after the SPT1 field; same skip semantics.
constexpr uint32_t kErrorModelZooTag = 0x454D5A31;

void encode_outcome(ByteWriter& w, const core::FaultOutcome& o) {
  w.i64(o.mismatched_samples);
  w.f32(o.mismatch_rate);
  w.f32(o.delta_loss);
  w.f32(o.max_delta_loss);
  w.u8(o.sdc ? 1 : 0);
}

core::FaultOutcome decode_outcome(ByteReader& r) {
  core::FaultOutcome o;
  o.mismatched_samples = r.i64();
  o.mismatch_rate = r.f32();
  o.delta_loss = r.f32();
  o.max_delta_loss = r.f32();
  o.sdc = r.u8() != 0;
  return o;
}

}  // namespace

std::vector<uint8_t> encode_campaign_progress(
    const core::CampaignProgress& p) {
  ByteWriter w;
  w.str(p.format_spec);
  w.u8(static_cast<uint8_t>(p.site));
  w.u8(static_cast<uint8_t>(p.model));
  w.i64(p.injections_per_layer);
  w.u32(static_cast<uint32_t>(p.num_bits));
  w.u64(p.seed);
  w.u32(static_cast<uint32_t>(p.shards));
  w.u32(static_cast<uint32_t>(p.shard_index));
  w.str(p.model_name);
  w.i64(p.eval_samples);
  w.f32(p.golden_accuracy);
  w.u64(p.golden_digest);
  w.u64(p.layers.size());
  for (const core::LayerProgress& l : p.layers) {
    w.u64(l.site_index);
    w.str(l.path);
    w.u64(l.done.size());
    w.raw(l.done.data(), l.done.size());
    for (const core::FaultOutcome& o : l.outcomes) encode_outcome(w, o);
  }
  w.u32(kSitesPerTrialTag);
  w.u32(static_cast<uint32_t>(p.sites_per_trial));
  w.u32(kErrorModelZooTag);
  w.f64(p.ber);
  w.u32(static_cast<uint32_t>(p.burst_len));
  return w.take();
}

core::CampaignProgress decode_campaign_progress(ByteReader& r) {
  core::CampaignProgress p;
  p.format_spec = r.str();
  const uint8_t site = r.u8();
  if (site > static_cast<uint8_t>(core::InjectionSite::kMetadata)) {
    throw IoError(r.context() + ": corrupt injection site tag");
  }
  p.site = static_cast<core::InjectionSite>(site);
  const uint8_t model = r.u8();
  if (model > static_cast<uint8_t>(core::ErrorModel::kChannel)) {
    throw IoError(r.context() + ": corrupt error model tag");
  }
  p.model = static_cast<core::ErrorModel>(model);
  p.injections_per_layer = r.i64();
  p.num_bits = static_cast<int>(r.u32());
  p.seed = r.u64();
  p.shards = static_cast<int>(r.u32());
  p.shard_index = static_cast<int>(r.u32());
  p.model_name = r.str();
  p.eval_samples = r.i64();
  p.golden_accuracy = r.f32();
  p.golden_digest = r.u64();
  const uint64_t layer_count = r.u64();
  for (uint64_t i = 0; i < layer_count; ++i) {
    core::LayerProgress l;
    l.site_index = r.u64();
    l.path = r.str();
    const uint64_t trials = r.u64();
    if (trials > kMaxTrials) {
      throw IoError(r.context() + ": implausible trial count " +
                    std::to_string(trials));
    }
    r.require(static_cast<size_t>(trials));  // before sizing any vector
    l.done.resize(static_cast<size_t>(trials));
    r.raw(l.done.data(), l.done.size());
    for (uint8_t& flag : l.done) {
      if (flag > 1) {
        throw IoError(r.context() + ": corrupt trial completion flag");
      }
    }
    l.outcomes.reserve(static_cast<size_t>(trials));
    for (uint64_t t = 0; t < trials; ++t) {
      l.outcomes.push_back(decode_outcome(r));
    }
    p.layers.push_back(std::move(l));
  }
  // Tagged trailing field (absent in files written before it existed, and
  // shorter than a tag+value in the forward-compat junk drill): only a
  // matching tag claims the bytes. A mismatching u32 is unknown trailing
  // data — consumed or not, parsing stops here and the skip rule covers it.
  if (r.remaining() >= 8 && r.u32() == kSitesPerTrialTag) {
    const uint32_t spt = r.u32();
    if (spt < 1) {
      throw IoError(r.context() + ": corrupt sites_per_trial");
    }
    p.sites_per_trial = static_cast<int>(spt);
    // Next tagged field, introduced after SPT1; files older than it (or
    // with unknown data here) leave the zoo knobs at their defaults.
    if (r.remaining() >= 16 && r.u32() == kErrorModelZooTag) {
      p.ber = r.f64();
      p.burst_len = static_cast<int>(r.u32());
      if (!(p.ber >= 0.0 && p.ber <= 1.0) || p.burst_len < 1) {
        throw IoError(r.context() + ": corrupt error-model-zoo field");
      }
    }
  }
  return p;
}

void save_campaign_progress(const std::string& path,
                            const core::CampaignProgress& progress) {
  obs::Span span("io", "checkpoint_write", path);
  Container c;
  c.add(kCampaignTag, encode_campaign_progress(progress));
  save_file(path, c);
  obs::add(obs::Counter::kCheckpointWrites);
}

core::CampaignProgress load_campaign_progress(const std::string& path) {
  const Container c = load_file(path);
  const Section& s = c.require(kCampaignTag, path);
  ByteReader r(s.payload, path);
  core::CampaignProgress p = decode_campaign_progress(r);
  // Version-gated forward compatibility (ROADMAP "schema evolution"): from
  // container v2 on, CAMP payloads may grow trailing fields that newer
  // writers append and this reader does not know — skip them. v1 files
  // predate the rule, so leftovers there still mean corruption.
  if (!r.at_end() && c.version() < 2) {
    throw IoError(path + ": trailing bytes in campaign section");
  }
  return p;
}

}  // namespace ge::io
