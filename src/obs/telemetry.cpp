#include "obs/telemetry.hpp"

#include "obs/histogram.hpp"
#include "obs/profiler.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>

namespace ge::obs {

namespace detail {
std::atomic<bool> g_tracing_enabled{false};
std::atomic<bool> g_metrics_enabled{false};
std::atomic<bool> g_profiling_enabled{false};
std::atomic<uint64_t> g_counters[static_cast<int>(Counter::kCount)] = {};
}  // namespace detail

namespace {

/// Cap per thread: a runaway tracing session degrades to dropped spans
/// (counted in kSpansDropped) instead of unbounded memory growth.
constexpr size_t kMaxEventsPerThread = size_t{1} << 20;

/// Span buffer owned by one thread. Only the owning thread appends;
/// the registry reads it during collect_trace(), which the contract
/// restricts to quiescent moments (outside parallel regions).
struct ThreadBuffer {
  int tid = 0;
  std::vector<TraceEvent> events;
};

struct Registry {
  std::mutex mu;  // guards the buffer list and gauges, never the fast path
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  /// Events flushed from exited threads' buffers (see TlsRetire): a
  /// short-lived pool worker's spans survive here until clear_trace().
  std::vector<TraceEvent> retired;
  int next_tid = 0;
  std::map<std::string, double> gauge_map;
  std::map<std::string, QuantErrorSummary> layer_quant;
  std::string process_label = "goldeneye";
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: worker threads may record
  return *r;                            // past static destruction order
}

thread_local ThreadBuffer* tls_buffer = nullptr;
thread_local bool tls_buffer_retired = false;

/// Thread-exit flush: moves the dying thread's events into the registry's
/// retired list and frees its buffer, so a retired pool worker's trace is
/// never lost and the buffer list does not grow per short-lived thread.
struct TlsRetire {
  ThreadBuffer* buf = nullptr;
  ~TlsRetire() {
    tls_buffer_retired = true;
    if (buf == nullptr) return;
    Registry& r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    r.retired.insert(r.retired.end(),
                     std::make_move_iterator(buf->events.begin()),
                     std::make_move_iterator(buf->events.end()));
    for (auto it = r.buffers.begin(); it != r.buffers.end(); ++it) {
      if (it->get() == buf) {
        r.buffers.erase(it);
        break;
      }
    }
    tls_buffer = nullptr;
  }
};

ThreadBuffer& thread_buffer() {
  if (tls_buffer == nullptr) {
    auto buf = std::make_unique<ThreadBuffer>();
    Registry& r = registry();
    {
      std::lock_guard<std::mutex> lk(r.mu);
      buf->tid = r.next_tid++;
      tls_buffer = buf.get();
      r.buffers.push_back(std::move(buf));
    }
    if (!tls_buffer_retired) {
      // Flush-on-exit guard. A span recorded *after* the guard already ran
      // (thread_local teardown) gets a fresh registry-owned buffer with no
      // guard instead — never a second construction of a destroyed one.
      thread_local TlsRetire retire;
      retire.buf = tls_buffer;
    }
  }
  return *tls_buffer;
}

std::atomic<int> g_log_level{0};

// --- distributed-trace identity --------------------------------------------

thread_local TraceContext tls_trace_ctx;

/// splitmix64: cheap, well-mixed 64-bit hash for id generation. Telemetry
/// identity only — never touches RNG streams used by trials.
uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Per-process salt in the high 32 bits of every span id, so ids minted by
/// separate processes (server, workers) stay distinct in a merged trace.
uint64_t span_salt() {
  static const uint64_t salt =
      mix64(static_cast<uint64_t>(::getpid()) * 0x10001ull ^
            static_cast<uint64_t>(
                std::chrono::system_clock::now().time_since_epoch().count()))
      << 32;
  return salt;
}

uint64_t next_span_id() {
  static std::atomic<uint64_t> counter{0};
  // Low 32 bits count, high 32 bits salt; +1 keeps the id nonzero even for
  // the (absurd) case of a zero salt wrapping around.
  return span_salt() | ((counter.fetch_add(1, std::memory_order_relaxed) + 1) &
                        0xffffffffull);
}

int64_t process_start_steady_ns() {
  static const int64_t start = now_ns();
  return start;
}

// Touch the start timestamp at static-init time so uptime measures from
// process start, not from the first scrape.
[[maybe_unused]] const int64_t g_process_start_anchor =
    process_start_steady_ns();

}  // namespace

TraceContext current_trace_context() noexcept { return tls_trace_ctx; }

TraceContextScope::TraceContextScope(TraceContext ctx) : prev_(tls_trace_ctx) {
  tls_trace_ctx = ctx;
}

TraceContextScope::~TraceContextScope() { tls_trace_ctx = prev_; }

uint64_t make_trace_id() {
  static std::atomic<uint64_t> counter{0};
  uint64_t id = 0;
  do {
    id = mix64(static_cast<uint64_t>(unix_now_ns()) ^
               (static_cast<uint64_t>(::getpid()) << 40) ^
               counter.fetch_add(1, std::memory_order_relaxed));
  } while (id == 0);
  return id;
}

int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void set_tracing_enabled(bool on) {
  detail::g_tracing_enabled.store(on, std::memory_order_relaxed);
}

void set_metrics_enabled(bool on) {
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

void set_profiling_enabled(bool on) {
  detail::g_profiling_enabled.store(on, std::memory_order_relaxed);
}

// --- spans -----------------------------------------------------------------

void Span::begin(const char* category, const char* name, const char* detail) {
  category_ = category;
  name_ = name;
  base_len_ = static_cast<uint32_t>(name_.size());
  if (detail != nullptr) {
    name_ += '(';
    name_ += detail;
    name_ += ')';
  }
  // Both flags are captured here: a span born while only one sink was on
  // stays consistent for its whole lifetime even if flags flip mid-scope.
  trace_ = tracing_enabled();
  profile_ = profiling_enabled();
  if (trace_ && tls_trace_ctx.active()) {
    // Under a trace context: mint an id, parent under the innermost span,
    // and become the context for spans nested inside this one.
    trace_id_ = tls_trace_ctx.trace_id;
    parent_span_id_ = tls_trace_ctx.span_id;
    span_id_ = next_span_id();
    ctx_prev_ = tls_trace_ctx;
    tls_trace_ctx = TraceContext{trace_id_, span_id_};
    ctx_pushed_ = true;
  }
  if (profile_) detail::profile_span_begin();
  start_ns_ = now_ns();  // stamped last: excludes the setup above
}

void Span::end() {
  const int64_t dur = now_ns() - start_ns_;
  if (ctx_pushed_) tls_trace_ctx = ctx_prev_;
  // Profile first (it must pop the frame the begin pushed), trace second.
  if (profile_) detail::profile_span_end(category_, name_, base_len_, dur);
  if (!trace_) return;
  ThreadBuffer& buf = thread_buffer();
  if (buf.events.size() >= kMaxEventsPerThread) {
    // The span cap is accounting, not control flow — always count drops so
    // a truncated trace is detectable even when metrics are off.
    detail::g_counters[static_cast<int>(Counter::kSpansDropped)].fetch_add(
        1, std::memory_order_relaxed);
    return;
  }
  TraceEvent e{std::move(name_), category_, buf.tid, start_ns_, dur};
  e.trace_id = trace_id_;
  e.span_id = span_id_;
  e.parent_span_id = parent_span_id_;
  buf.events.push_back(std::move(e));
}

void record_span(const char* category, const std::string& name,
                 int64_t start_ns, int64_t dur_ns) {
  if (!tracing_enabled()) return;
  ThreadBuffer& buf = thread_buffer();
  if (buf.events.size() >= kMaxEventsPerThread) {
    detail::g_counters[static_cast<int>(Counter::kSpansDropped)].fetch_add(
        1, std::memory_order_relaxed);
    return;
  }
  TraceEvent e{name, category, buf.tid, start_ns, dur_ns};
  if (tls_trace_ctx.active()) {
    e.trace_id = tls_trace_ctx.trace_id;
    e.span_id = next_span_id();
    e.parent_span_id = tls_trace_ctx.span_id;
  }
  buf.events.push_back(std::move(e));
}

std::vector<TraceEvent> collect_trace() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  std::vector<TraceEvent> out;
  out.insert(out.end(), r.retired.begin(), r.retired.end());
  for (const auto& buf : r.buffers) {
    out.insert(out.end(), buf->events.begin(), buf->events.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_ns < b.start_ns;
                   });
  return out;
}

void clear_trace() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  for (auto& buf : r.buffers) buf->events.clear();
  r.retired.clear();
}

size_t trace_event_count() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  size_t n = r.retired.size();
  for (const auto& buf : r.buffers) n += buf->events.size();
  return n;
}

namespace {

void append_json_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

void set_trace_process_label(const std::string& label) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  r.process_label = label;
}

std::string chrome_trace_json() {
  const auto events = collect_trace();
  std::string label;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    label = r.process_label;
  }
  // Steady→unix offset sampled back-to-back at export time: `trace --merge`
  // adds it to every ts to put all processes on the shared unix timeline.
  const int64_t epoch_unix_ns = unix_now_ns() - now_ns();
  char num[64];
  // One event per line so the merge reader (core/trace_merge.cpp) can scan
  // flat records without a full JSON parser; still valid JSON throughout.
  std::string out = "{\"traceEvents\":[\n";
  out += "{\"name\":\"goldeneye_trace_meta\",\"cat\":\"meta\",\"ph\":\"M\","
         "\"pid\":1,\"tid\":0,\"process_label\":\"";
  append_json_escaped(out, label);
  std::snprintf(num, sizeof(num), "\",\"epoch_unix_ns\":%lld",
                static_cast<long long>(epoch_unix_ns));
  out += num;
  out += '}';
  for (const auto& e : events) {
    out += ",\n";
    out += "{\"name\":\"";
    append_json_escaped(out, e.name);
    out += "\",\"cat\":\"";
    append_json_escaped(out, e.category);
    // Complete event ("X"): timestamps in microseconds, duration likewise.
    out += "\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    std::snprintf(num, sizeof(num), "%d", e.tid);
    out += num;
    std::snprintf(num, sizeof(num), ",\"ts\":%.3f",
                  static_cast<double>(e.start_ns) / 1000.0);
    out += num;
    std::snprintf(num, sizeof(num), ",\"dur\":%.3f",
                  static_cast<double>(e.dur_ns) / 1000.0);
    out += num;
    if (e.trace_id != 0) {
      // 64-bit ids ride as hex strings: JSON numbers lose precision past
      // 2^53 and Chrome ignores unknown string fields.
      std::snprintf(num, sizeof(num), ",\"trace_id\":\"%016llx\"",
                    static_cast<unsigned long long>(e.trace_id));
      out += num;
      std::snprintf(num, sizeof(num), ",\"span_id\":\"%016llx\"",
                    static_cast<unsigned long long>(e.span_id));
      out += num;
      std::snprintf(num, sizeof(num), ",\"parent_span_id\":\"%016llx\"",
                    static_cast<unsigned long long>(e.parent_span_id));
      out += num;
    }
    out += '}';
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool write_chrome_trace(const std::string& path) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << chrome_trace_json() << '\n';
  return static_cast<bool>(f);
}

// --- counters --------------------------------------------------------------

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kElementsQuantized: return "elements_quantized";
    case Counter::kSaturations: return "saturations";
    case Counter::kNanInputs: return "nan_inputs";
    case Counter::kInfInputs: return "inf_inputs";
    case Counter::kInjections: return "injections";
    case Counter::kTrials: return "trials";
    case Counter::kFormatCacheHits: return "format_cache_hits";
    case Counter::kFormatCacheMisses: return "format_cache_misses";
    case Counter::kPoolJobs: return "pool_jobs";
    case Counter::kPoolChunks: return "pool_chunks";
    case Counter::kSpansDropped: return "spans_dropped";
    case Counter::kAllocationsAvoided: return "allocations_avoided";
    case Counter::kCowCopies: return "cow_copies";
    case Counter::kCowBytes: return "cow_bytes";
    case Counter::kArenaReuses: return "arena_reuses";
    case Counter::kArenaEvictions: return "arena_evictions";
    case Counter::kCheckpointWrites: return "checkpoint_writes";
    case Counter::kCampaignResumes: return "campaign_resumes";
    case Counter::kPrefixCacheHits: return "prefix_cache_hits";
    case Counter::kSuffixLayersSkipped: return "suffix_layers_skipped";
    case Counter::kPrefixCacheBytes: return "prefix_cache_bytes";
    // Prometheus: sanitize() + "_total" render these as ge_net_requests_total
    // et al. — the names promised in docs/serving.md.
    case Counter::kNetRequests: return "net_requests";
    case Counter::kNetLeasesGranted: return "net_leases_granted";
    case Counter::kNetLeaseReclaims: return "net_lease_reclaims";
    case Counter::kNetFramesSent: return "net_frames_sent";
    case Counter::kNetFramesReceived: return "net_frames_received";
    case Counter::kNetLeaseStragglers: return "lease_stragglers";
    case Counter::kCount: break;
  }
  return "unknown";
}

uint64_t counter_value(Counter c) {
  return detail::g_counters[static_cast<int>(c)].load(
      std::memory_order_relaxed);
}

void reset_counters() {
  for (auto& c : detail::g_counters) c.store(0, std::memory_order_relaxed);
}

// --- gauges ----------------------------------------------------------------

void set_gauge(const std::string& name, double value) {
  if (!metrics_enabled()) return;
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  r.gauge_map[name] = value;
}

std::vector<std::pair<std::string, double>> gauges() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  return {r.gauge_map.begin(), r.gauge_map.end()};
}

void reset_gauges() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  r.gauge_map.clear();
}

// --- quantization statistics -----------------------------------------------

void record_quantization(const float* before, const float* after, int64_t n,
                         double abs_max) {
  if (!metrics_enabled() || n <= 0) return;
  const float mx = static_cast<float>(abs_max);
  uint64_t sat = 0, nan = 0, inf = 0;
  for (int64_t i = 0; i < n; ++i) {
    const float in = before[i];
    const float out = after[i];
    if (std::isnan(in)) {
      ++nan;
      continue;
    }
    if (std::isinf(in)) {
      ++inf;
      continue;
    }
    // Saturation: the output clamped at the representable edge, or a finite
    // input overflowed to Inf (non-saturating FP overflow).
    if (std::isinf(out) || (std::fabs(out) >= mx && std::fabs(in) > mx)) {
      ++sat;
    }
  }
  add(Counter::kElementsQuantized, static_cast<uint64_t>(n));
  if (sat) add(Counter::kSaturations, sat);
  if (nan) add(Counter::kNanInputs, nan);
  if (inf) add(Counter::kInfInputs, inf);
}

void record_layer_quant_error(const std::string& layer, const float* before,
                              const float* after, int64_t n, double abs_max) {
  if (!metrics_enabled() || n <= 0) return;
  const float mx = static_cast<float>(abs_max);
  QuantErrorSummary local;
  local.elements = static_cast<uint64_t>(n);
  for (int64_t i = 0; i < n; ++i) {
    const float in = before[i];
    const float out = after[i];
    if (!std::isfinite(in) || !std::isfinite(out)) {
      if (std::isinf(out) && std::isfinite(in)) ++local.saturated;
      continue;
    }
    const double err = std::fabs(static_cast<double>(in) - out);
    local.sum_abs_err += err;
    local.max_abs_err = std::max(local.max_abs_err, err);
    if (std::fabs(out) >= mx && std::fabs(in) > mx) ++local.saturated;
  }
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  QuantErrorSummary& s = r.layer_quant[layer];
  s.elements += local.elements;
  s.saturated += local.saturated;
  s.sum_abs_err += local.sum_abs_err;
  s.max_abs_err = std::max(s.max_abs_err, local.max_abs_err);
}

std::vector<std::pair<std::string, QuantErrorSummary>> layer_quant_summaries() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  return {r.layer_quant.begin(), r.layer_quant.end()};
}

void reset_layer_quant_summaries() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  r.layer_quant.clear();
}

void reset_all() {
  reset_counters();
  reset_gauges();
  reset_layer_quant_summaries();
  reset_histograms();
  reset_profile();
  clear_trace();
}

// --- build / process identity ----------------------------------------------

#ifndef GE_BUILD_VERSION
#define GE_BUILD_VERSION "dev"
#endif
#ifndef GE_BUILD_COMMIT
#define GE_BUILD_COMMIT "unknown"
#endif

const char* build_version() { return GE_BUILD_VERSION; }

const char* build_commit() { return GE_BUILD_COMMIT; }

double uptime_seconds() {
  return static_cast<double>(now_ns() - process_start_steady_ns()) / 1e9;
}

int64_t unix_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// --- logging ---------------------------------------------------------------

void set_log_level(int level) {
  g_log_level.store(level, std::memory_order_relaxed);
}

int log_level() { return g_log_level.load(std::memory_order_relaxed); }

void log(int level, const std::string& msg) {
  if (level > log_level()) return;
  std::fprintf(stderr, "[ge] %s\n", msg.c_str());
}

}  // namespace ge::obs
