// ge::obs::RunLog — schema-versioned structured run reports as JSONL.
//
// One JSON object per line; every record carries {"schema": N, "type": T}.
// Record types the stack emits (see docs/observability.md for a jq tour):
//   run_header       command, model, format, seed, threads, samples, resumed
//   trial            one row per campaign trial: layer, site, bit, golden
//                    vs faulty top-1, ΔLoss, SDC class  (schema 2)
//   heartbeat        live campaign progress: done/total, trials/sec, ETA
//                    (schema 2)
//   campaign_layer   one row per instrumented layer (matches stdout table)
//   campaign_summary golden accuracy + network mean ΔLoss
//   dse_node         one row per DSE probe, in visit order
//   dse_summary      selected spec / bitwidth / accuracy
//   accuracy_result  baseline + emulated accuracy
//   layer_quant      per-layer quantization-error summary (metrics)
//   histogram        merged obs::Histogram summary: count/sum/min/max +
//                    p50/p95/p99  (schema 2)
//   span_stat        one row per profiled (span, format, layer) key:
//                    count, total/self ns, min/max/p50/p99, and hardware
//                    counters when perf_event_open is available (schema 2)
//   metrics          final counter/gauge snapshot
//   bench_case       one row per benchmark case (bench/harness.hpp)
//   service          fleet-health observation from the serve daemon:
//                    {"kind": "lease_straggler" | "lease_reclaimed" |
//                    ...}, campaign id and kind-specific fields (schema 2)
//
// Schema history: v1 = PR 2 record set; v2 adds trial / heartbeat /
// histogram records and the run_header `resumed` field. Later schema-2
// additions stay additive: span_stat rows, the heartbeat
// rss_bytes/arena_bytes fields, and the serve daemon's service rows.
// Consumers should select on `type` and ignore unknown fields, so v1
// readers keep working.
//
// JSONL because campaign-scale runs are append-only streams: a crashed or
// interrupted run still leaves every completed row parseable — and a
// resumed run can reopen its report in append mode (OpenMode::kAppend)
// and continue the same stream.
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>

namespace ge::obs {

/// Minimal JSON object builder: flat string/number/bool fields, rendered
/// in insertion order. Numbers use shortest round-trip formatting.
class JsonObject {
 public:
  JsonObject& str(const char* key, const std::string& value);
  JsonObject& num(const char* key, double value);
  JsonObject& num(const char* key, int64_t value);
  JsonObject& num(const char* key, uint64_t value);
  JsonObject& num(const char* key, int value) {
    return num(key, static_cast<int64_t>(value));
  }
  JsonObject& boolean(const char* key, bool value);
  /// Splice a pre-rendered JSON value (object/array) under `key`.
  JsonObject& raw(const char* key, const std::string& json);

  /// The rendered object, e.g. {"a":1,"b":"x"}.
  std::string render() const;

 private:
  void begin_field(const char* key);
  std::string body_;
};

std::string json_escape(const std::string& s);

/// Append-mode JSONL sink. All writes go through event(); each event is
/// one line, flushed immediately so partial runs stay readable.
class RunLog {
 public:
  static constexpr int kSchemaVersion = 2;

  /// kTruncate starts a fresh report; kAppend continues an existing one
  /// (the resume path — prior rows are part of the same campaign).
  enum class OpenMode { kTruncate, kAppend };

  /// Opens `path` for writing. ok() reports failure; a failed RunLog
  /// swallows writes instead of throwing mid-experiment.
  explicit RunLog(const std::string& path,
                  OpenMode mode = OpenMode::kTruncate);
  /// Writes into a caller-owned stream (tests).
  explicit RunLog(std::ostream& os);
  ~RunLog();

  RunLog(const RunLog&) = delete;
  RunLog& operator=(const RunLog&) = delete;

  bool ok() const { return out_ != nullptr && out_->good(); }

  /// Write one record. The {"schema", "type"} fields are prepended; the
  /// remaining fields come from `fields`.
  void event(const char* type, const JsonObject& fields);

  /// Append one already-rendered JSONL record verbatim (no schema/type
  /// head). Used by `goldeneye submit` to splice rows streamed from the
  /// campaign server into the local --report byte-for-byte, so a served
  /// report diffs clean against an offline one.
  void raw_line(const std::string& line);

  /// Write the standard final snapshot: one "layer_quant" row per
  /// instrumented layer, one "histogram" row per registered histogram,
  /// one "span_stat" row per profiled span key, plus one "metrics" row
  /// with every counter and gauge (values read from ge::obs telemetry).
  void metrics_snapshot();

 private:
  std::unique_ptr<std::ostream> owned_;
  std::ostream* out_ = nullptr;
};

}  // namespace ge::obs
