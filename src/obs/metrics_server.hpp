// obs::MetricsServer — a minimal HTTP/1.1 responder serving the live
// telemetry state (counters, gauges, histograms) in Prometheus text
// exposition format, so a fleet of campaign shards can be scraped while
// running. Bound to 127.0.0.1 only; one short-lived connection at a time
// (a scrape is one GET). The server thread only *reads* telemetry, so a
// scrape can never perturb results — same contract as the rest of
// ge::obs.
#pragma once

#include <atomic>
#include <string>
#include <thread>

namespace ge::obs {

/// Render every counter (`ge_<name>_total`), gauge (`ge_<name>`), and
/// histogram (`ge_<name>_bucket{le=...}` / `_sum` / `_count`) as
/// Prometheus text exposition format 0.0.4. Names are sanitised to
/// [a-zA-Z0-9_]; histogram buckets are cumulative and only emitted where
/// the count increases (plus the mandatory +Inf bucket).
std::string render_prometheus();

class MetricsServer {
 public:
  /// Bind 127.0.0.1:port and start the serving thread. port 0 picks an
  /// ephemeral port (see port()). On failure ok() is false and
  /// last_error() describes why — the server never throws.
  explicit MetricsServer(int port);
  ~MetricsServer();  ///< stops the thread and closes the socket

  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;

  bool ok() const noexcept { return listen_fd_ >= 0; }
  int port() const noexcept { return port_; }
  const std::string& last_error() const noexcept { return error_; }

 private:
  void serve();

  int listen_fd_ = -1;
  int port_ = 0;
  std::string error_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace ge::obs
