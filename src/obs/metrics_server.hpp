// obs::MetricsServer — a minimal HTTP/1.1 responder serving the live
// telemetry state (counters, gauges, histograms) in Prometheus text
// exposition format, so a fleet of campaign shards can be scraped while
// running. Built on the shared ge::net socket utility (net/socket.hpp);
// bound to 127.0.0.1 only. Each poll wake drains the whole accept backlog
// (scrapes are short-lived GETs answered back to back), so concurrent
// scrapers no longer serialise at one connection per 100ms poll tick. The
// server thread only *reads* telemetry, so a scrape can never perturb
// results — same contract as the rest of ge::obs.
//
// Routes: `GET /status` returns the live JSON introspection snapshot
// (render_status_json); every other path serves the Prometheus page.
// Responses always carry Content-Length + Connection: close, so scrapers
// never depend on EOF framing.
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <thread>

#include "net/socket.hpp"

namespace ge::obs {

/// Render every counter (`ge_<name>_total`), gauge (`ge_<name>`), and
/// histogram (`ge_<name>_bucket{le=...}` / `_sum` / `_count`) as
/// Prometheus text exposition format 0.0.4, prefixed by the build-identity
/// pair `ge_build_info{version=,commit=} 1` and `ge_uptime_seconds`. Names
/// are sanitised to [a-zA-Z0-9_]; histogram buckets are cumulative and only
/// emitted where the count increases (plus the mandatory +Inf bucket).
std::string render_prometheus();

/// Register a callback that renders a JSON object describing live
/// application state (the campaign server's queue/lease/worker tables).
/// `GET /status` splices its output into the snapshot under "server".
/// Pass nullptr to deregister; the setter blocks until any in-flight
/// /status render finishes, so the provider may safely capture state that
/// dies right after deregistration. obs stays ignorant of ge::net — the
/// dependency points the other way via this hook.
void set_status_source(std::function<std::string()> fn);

/// The `/status` JSON snapshot: build info, uptime, straggler count, plus
/// the registered status source's object (if any) under "server".
std::string render_status_json();

class MetricsServer {
 public:
  /// Bind 127.0.0.1:port and start the serving thread. port 0 picks an
  /// ephemeral port (see port()). On failure ok() is false and
  /// last_error() describes why — the server never throws.
  explicit MetricsServer(int port);
  ~MetricsServer();  ///< stops the thread and closes the socket

  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;

  bool ok() const noexcept { return listen_.valid(); }
  int port() const noexcept { return port_; }
  const std::string& last_error() const noexcept { return error_; }

 private:
  void serve();

  net::Socket listen_;
  int port_ = 0;
  std::string error_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace ge::obs
