// ge::obs profiler — always-on span aggregation, hardware-counter
// attribution and memory watermarks (DESIGN.md §8, docs/observability.md).
//
// Tracing answers "what happened when"; the profiler answers "where did
// the time go". While profiling is enabled, every obs::Span folds its
// duration into a per-(category, span, format, layer) statistics entry —
// count, total and *self* time (children subtracted via a per-thread
// frame stack), min/max, and a log-bucketed duration histogram for
// p50/p99 — instead of (or in addition to) pushing a trace event. The
// aggregate is bounded by the number of distinct keys, so profiling a
// million-trial campaign costs a few KB, not a million events.
//
// Same contract as the rest of ge::obs:
//  1. Zero cost when disabled: one relaxed atomic load per span.
//  2. Recording only reads program state — results are bitwise identical
//     with profiling on or off (test_determinism pins the digests).
//  3. The fast path is per-thread: entries hold relaxed atomics, and a
//     thread-local key cache makes the steady-state record lock-free.
//
// Top-level spans (frame-stack depth 0) additionally diff the calling
// thread's perf_event group (obs/perf_counters.hpp) so cycles /
// instructions / cache-misses attach to the outermost unit of work.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/telemetry.hpp"

namespace ge::obs {

/// RAII: enables span profiling, restoring the previous state on
/// destruction. Composes with TelemetryScope (tracing and profiling are
/// independent: a span can aggregate without being traced).
struct ProfilingScope {
  bool prev = profiling_enabled();
  explicit ProfilingScope(bool on) { set_profiling_enabled(on); }
  ~ProfilingScope() { set_profiling_enabled(prev); }
  ProfilingScope(const ProfilingScope&) = delete;
  ProfilingScope& operator=(const ProfilingScope&) = delete;
};

/// RAII attribution context: spans ending inside the scope aggregate
/// under (format, layer) in addition to their own name. The campaign
/// trial loop sets the format spec, the emulator hook sets the layer
/// path; nesting restores the outer attribution on destruction.
///
/// Declare an AttrScope *before* the Span it should attribute — C++
/// destroys in reverse order, so the attribution is still live when the
/// span ends. No-op (no copies, no TLS writes) while profiling is off.
class AttrScope {
 public:
  AttrScope(const std::string& format, const std::string& layer);
  ~AttrScope();
  AttrScope(const AttrScope&) = delete;
  AttrScope& operator=(const AttrScope&) = delete;

 private:
  bool active_ = false;
  std::string prev_format_;
  std::string prev_layer_;
};

/// Merged statistics for one (category, span, format, layer) key.
/// Durations in nanoseconds; quantiles in microseconds (the histogram's
/// recording unit, exact to <= 1/16 relative width).
struct SpanStats {
  std::string category;
  std::string name;    ///< base span name, without the "(detail)" suffix
  std::string format;  ///< AttrScope format spec ("" outside a scope)
  std::string layer;   ///< AttrScope layer path ("" outside a scope)
  uint64_t count = 0;
  uint64_t total_ns = 0;
  uint64_t self_ns = 0;  ///< total minus time inside nested profiled spans
  int64_t min_ns = 0;
  int64_t max_ns = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  // Hardware-counter deltas, summed over the key's *top-level* span
  // instances (perf_samples of them). 0/absent when unavailable.
  uint64_t perf_samples = 0;
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t cache_misses = 0;
};

/// Snapshot of every profiled key with count > 0, sorted by self time
/// (descending), ties by key. Exact when no thread is recording.
std::vector<SpanStats> profile_snapshot();

/// Zero every aggregate (keys stay registered; thread caches stay valid).
void reset_profile();

// --- memory watermarks -----------------------------------------------------

/// One sample of the process's memory posture. rss via /proc/self/statm
/// (0 where that does not exist), peak_rss via getrusage, arena bytes from
/// ge::arena's live accounting, cow/prefix bytes from the counters.
struct MemoryWatermarks {
  uint64_t rss_bytes = 0;
  uint64_t peak_rss_bytes = 0;
  uint64_t arena_live_bytes = 0;
  uint64_t arena_peak_bytes = 0;
  uint64_t cow_bytes = 0;           ///< Counter::kCowBytes
  uint64_t prefix_cache_bytes = 0;  ///< Counter::kPrefixCacheBytes
};

/// Sample the watermarks and (when metrics are enabled) publish them as
/// mem.* gauges. Pure read of program state — safe anywhere, any thread.
MemoryWatermarks sample_memory();

/// Current process RSS in bytes (0 when unknown).
uint64_t process_rss_bytes();

// --- flamegraph export -----------------------------------------------------

/// Fold trace events into flamegraph-compatible collapsed stacks:
/// "root;child;leaf <self_us>" per line, aggregated over all threads,
/// sorted lexically. Nesting is reconstructed per thread from the span
/// intervals, so feed it collect_trace() output (a tracing run) — or
/// merged cross-process events with process-unique tids, as
/// core/trace_merge.cpp does for `goldeneye trace --merge --flame`.
std::string collapsed_stacks(const std::vector<TraceEvent>& events);

namespace detail {

// Called by Span (telemetry.cpp) — not part of the public surface.
void profile_span_begin();
void profile_span_end(const char* category, const std::string& name,
                      size_t base_len, int64_t dur_ns);

/// Arena registration hook: ge::arena (which links *against* ge_obs)
/// installs its live/peak byte accessors at static-init time so
/// sample_memory() can read them without an obs -> tensor dependency.
void set_arena_stats_source(uint64_t (*live_bytes)(),
                            uint64_t (*peak_bytes)());

}  // namespace detail

}  // namespace ge::obs
