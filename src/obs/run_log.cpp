#include "obs/run_log.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "obs/histogram.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"

namespace ge::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonObject::begin_field(const char* key) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += json_escape(key);
  body_ += "\":";
}

JsonObject& JsonObject::str(const char* key, const std::string& value) {
  begin_field(key);
  body_ += '"';
  body_ += json_escape(value);
  body_ += '"';
  return *this;
}

JsonObject& JsonObject::num(const char* key, double value) {
  begin_field(key);
  // JSON has no NaN/Inf: map them to null so every line stays parseable.
  if (!std::isfinite(value)) {
    body_ += "null";
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  body_ += buf;
  return *this;
}

JsonObject& JsonObject::num(const char* key, int64_t value) {
  begin_field(key);
  body_ += std::to_string(value);
  return *this;
}

JsonObject& JsonObject::num(const char* key, uint64_t value) {
  begin_field(key);
  body_ += std::to_string(value);
  return *this;
}

JsonObject& JsonObject::boolean(const char* key, bool value) {
  begin_field(key);
  body_ += value ? "true" : "false";
  return *this;
}

JsonObject& JsonObject::raw(const char* key, const std::string& json) {
  begin_field(key);
  body_ += json;
  return *this;
}

std::string JsonObject::render() const { return "{" + body_ + "}"; }

RunLog::RunLog(const std::string& path, OpenMode mode)
    : owned_(std::make_unique<std::ofstream>(
          path, mode == OpenMode::kAppend ? std::ios::app : std::ios::trunc)) {
  if (owned_->good()) out_ = owned_.get();
}

RunLog::RunLog(std::ostream& os) : out_(&os) {}

RunLog::~RunLog() = default;

void RunLog::event(const char* type, const JsonObject& fields) {
  if (!ok()) return;
  JsonObject head;
  head.num("schema", static_cast<int64_t>(kSchemaVersion)).str("type", type);
  const std::string head_json = head.render();
  const std::string body_json = fields.render();
  // Merge {head} + {fields} into one flat object.
  std::string line = head_json.substr(0, head_json.size() - 1);
  if (body_json.size() > 2) {
    line += ',';
    line += body_json.substr(1);
  } else {
    line += '}';
  }
  *out_ << line << '\n';
  out_->flush();
}

void RunLog::raw_line(const std::string& line) {
  if (!ok()) return;
  *out_ << line << '\n';
  out_->flush();
}

void RunLog::metrics_snapshot() {
  if (!ok()) return;
  for (const auto& [layer, s] : layer_quant_summaries()) {
    JsonObject row;
    row.str("layer", layer)
        .num("elements", s.elements)
        .num("mean_abs_err", s.mean_abs_err())
        .num("max_abs_err", s.max_abs_err)
        .num("saturation_rate", s.saturation_rate());
    event("layer_quant", row);
  }
  for (const auto& h : histogram_snapshots()) {
    if (h.count == 0) continue;  // registered but unused this run
    JsonObject row;
    row.str("name", h.name)
        .num("count", h.count)
        .num("sum", h.sum)
        .num("min", h.min)
        .num("max", h.max)
        .num("p50", h.quantile(0.50))
        .num("p95", h.quantile(0.95))
        .num("p99", h.quantile(0.99));
    event("histogram", row);
  }
  for (const auto& s : profile_snapshot()) {
    JsonObject row;
    row.str("span", s.name)
        .str("category", s.category)
        .str("format", s.format)
        .str("layer", s.layer)
        .num("count", s.count)
        .num("total_ns", s.total_ns)
        .num("self_ns", s.self_ns)
        .num("min_ns", s.min_ns)
        .num("max_ns", s.max_ns)
        .num("p50_us", s.p50_us)
        .num("p99_us", s.p99_us);
    if (s.perf_samples > 0) {
      row.num("perf_samples", s.perf_samples)
          .num("cycles", s.cycles)
          .num("instructions", s.instructions)
          .num("cache_misses", s.cache_misses);
    }
    event("span_stat", row);
  }
  JsonObject counters;
  for (int i = 0; i < static_cast<int>(Counter::kCount); ++i) {
    const auto c = static_cast<Counter>(i);
    counters.num(counter_name(c), counter_value(c));
  }
  JsonObject gauges_obj;
  for (const auto& [name, value] : gauges()) {
    gauges_obj.num(name.c_str(), value);
  }
  JsonObject row;
  row.raw("counters", counters.render()).raw("gauges", gauges_obj.render());
  event("metrics", row);
}

}  // namespace ge::obs
