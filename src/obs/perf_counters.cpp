#include "obs/perf_counters.hpp"

#include <atomic>
#include <cstring>
#include <mutex>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace ge::obs::perf {

namespace {

// Availability is a process-wide verdict: the first thread to try decides
// (all threads share the same privileges), so later threads can skip the
// syscalls entirely when the first attempt failed.
//  0 = untried, 1 = ok, 2 = failed
std::atomic<int> g_status{0};
std::atomic<bool> g_enabled{true};
std::mutex g_note_mu;
std::string& note_storage() {
  static std::string* s = new std::string("untried");
  return *s;
}

void set_note(const std::string& n) {
  std::lock_guard<std::mutex> lk(g_note_mu);
  note_storage() = n;
}

#if defined(__linux__)

long sys_perf_event_open(struct perf_event_attr* attr, pid_t pid, int cpu,
                         int group_fd, unsigned long flags) {
  return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

/// The calling thread's counter group. fds are closed when the thread
/// exits (the thread_local destructor); the group counts continuously
/// from open, so Sample diffs are monotone.
struct ThreadGroup {
  int fds[3] = {-1, -1, -1};  // cycles (leader), instructions, cache-misses
  bool ok = false;

  ThreadGroup() {
    if (g_status.load(std::memory_order_relaxed) == 2) return;
    static const uint64_t kConfigs[3] = {PERF_COUNT_HW_CPU_CYCLES,
                                         PERF_COUNT_HW_INSTRUCTIONS,
                                         PERF_COUNT_HW_CACHE_MISSES};
    for (int i = 0; i < 3; ++i) {
      struct perf_event_attr attr;
      std::memset(&attr, 0, sizeof(attr));
      attr.type = PERF_TYPE_HARDWARE;
      attr.size = sizeof(attr);
      attr.config = kConfigs[i];
      attr.disabled = (i == 0) ? 1 : 0;  // leader starts the whole group
      attr.exclude_kernel = 1;           // works at perf_event_paranoid <= 2
      attr.exclude_hv = 1;
      attr.read_format = PERF_FORMAT_GROUP;
      const int group = (i == 0) ? -1 : fds[0];
      const long fd = sys_perf_event_open(&attr, /*pid=*/0, /*cpu=*/-1,
                                          group, /*flags=*/0);
      if (fd < 0) {
        const int err = errno;
        close_all();
        g_status.store(2, std::memory_order_relaxed);
        std::string why = "perf_event_open: ";
        why += std::strerror(err);
        if (err == EACCES || err == EPERM) {
          why += " (check /proc/sys/kernel/perf_event_paranoid)";
        }
        set_note(why);
        return;
      }
      fds[i] = static_cast<int>(fd);
    }
    if (ioctl(fds[0], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP) != 0 ||
        ioctl(fds[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP) != 0) {
      close_all();
      g_status.store(2, std::memory_order_relaxed);
      set_note("perf_event ioctl failed");
      return;
    }
    ok = true;
    g_status.store(1, std::memory_order_relaxed);
    set_note("ok");
  }

  ~ThreadGroup() { close_all(); }

  void close_all() {
    for (int& fd : fds) {
      if (fd >= 0) close(fd);
      fd = -1;
    }
    ok = false;
  }
};

ThreadGroup& thread_group() {
  thread_local ThreadGroup g;
  return g;
}

#endif  // __linux__

}  // namespace

Sample read() {
  Sample s;
  if (!g_enabled.load(std::memory_order_relaxed)) return s;
#if defined(__linux__)
  ThreadGroup& g = thread_group();
  if (!g.ok) return s;
  // PERF_FORMAT_GROUP: one read() returns every member coherently, in
  // the order the group was built.
  struct {
    uint64_t nr;
    uint64_t values[3];
  } data;
  const ssize_t n = ::read(g.fds[0], &data, sizeof(data));
  if (n != static_cast<ssize_t>(sizeof(data)) || data.nr != 3) return s;
  s.cycles = data.values[0];
  s.instructions = data.values[1];
  s.cache_misses = data.values[2];
  s.valid = true;
#else
  if (g_status.load(std::memory_order_relaxed) == 0) {
    g_status.store(2, std::memory_order_relaxed);
    set_note("not built for Linux (perf_event_open unavailable)");
  }
#endif
  return s;
}

void set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

bool available() { return g_status.load(std::memory_order_relaxed) == 1; }

std::string availability_note() {
  std::lock_guard<std::mutex> lk(g_note_mu);
  return note_storage();
}

}  // namespace ge::obs::perf
