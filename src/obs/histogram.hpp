// obs::Histogram — lock-free, mergeable value distributions for the
// telemetry layer (counters count, gauges sample, histograms keep the
// whole shape: trial latency, per-trial ΔLoss, bit-position tallies).
//
// Same contract as the rest of ge::obs (DESIGN.md §8):
//  1. Zero cost when disabled — record() starts with the relaxed
//     metrics_enabled() load and returns; no clock, lock, or allocation.
//  2. Recording never perturbs results — histograms only read the values
//     they are handed.
//  3. The fast path is per-thread: each thread owns one shard per
//     histogram (found via a thread-local table, registered once with a
//     lock-free push), so record() touches no shared cache line. Reads
//     (snapshot / quantile) merge the shards; exact totals require a
//     quiescent moment, like collect_trace().
//
// Bucketing is log-scaled with 16 linear sub-buckets per octave
// (power-of-two range), so quantile() is exact to one sub-bucket
// (<= 1/16 relative width). Integers below 32 land in sub-buckets of
// width <= 1 — bit positions and other small-integer tallies are exact.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/telemetry.hpp"

namespace ge::obs {

class Histogram {
 public:
  /// Linear sub-buckets per power-of-two octave.
  static constexpr int kSubBuckets = 16;
  /// Octave range: values in [2^kMinExp, 2^kMaxExp) get log buckets.
  static constexpr int kMinExp = -44;  // ~5.7e-14
  static constexpr int kMaxExp = 44;   // ~1.8e13
  /// Dense bucket layout: [0] v <= 0 (and NaN), [1] positive underflow,
  /// [2 ..] the log buckets, [last] overflow (v >= 2^kMaxExp).
  static constexpr int kNumBuckets =
      2 + (kMaxExp - kMinExp) * kSubBuckets + 1;

  /// Merged read-side view of one histogram.
  struct Snapshot {
    std::string name;
    uint64_t count = 0;  ///< sum over buckets (self-consistent for quantile)
    double sum = 0.0;
    double min = 0.0;  ///< 0 when empty
    double max = 0.0;
    std::vector<uint64_t> buckets;  ///< size kNumBuckets

    /// Value at quantile q in [0, 1] (nearest-rank over buckets). Returns
    /// the lower bound of the selected bucket: exact for small integers,
    /// within one sub-bucket (<= 1/16 relative) otherwise. 0 when empty.
    double quantile(double q) const;
    double mean() const {
      return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
  };

  explicit Histogram(std::string name, size_t id)
      : name_(std::move(name)), id_(id) {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  const std::string& name() const noexcept { return name_; }

  /// Record one value. No-op unless metrics are enabled. Lock-free and
  /// wait-free after the calling thread's first record into this
  /// histogram (which registers a shard under the registry mutex).
  void record(double v) noexcept {
    if (!metrics_enabled()) return;
    record_always(v);
  }

  /// Merge all per-thread shards into one view. Exact when no thread is
  /// concurrently recording; a best-effort snapshot otherwise.
  Snapshot snapshot() const;

  /// Bucket index for a value (see the layout above).
  static int bucket_index(double v) noexcept;
  /// Inclusive lower bound of a bucket (0.0 for the two leading buckets).
  static double bucket_lower(int index) noexcept;
  /// Exclusive upper bound of a bucket (+inf for the overflow bucket).
  static double bucket_upper(int index) noexcept;

 private:
  friend void reset_histograms();

  /// One thread's counts. Single writer (the owning thread); readers only
  /// load, so every access is a relaxed atomic — no RMW contention.
  struct Shard {
    std::atomic<uint64_t> counts[kNumBuckets] = {};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{0.0};
    std::atomic<double> max{0.0};
    std::atomic<uint64_t> nonempty{0};  ///< 0 until the first record
    Shard* next = nullptr;  ///< intrusive list, linked once, never unlinked
  };

  void record_always(double v) noexcept;
  Shard& shard();
  /// Per-thread shard table, indexed by histogram id. Grows on demand;
  /// entries are set once. The shards themselves are owned by the
  /// histograms' intrusive lists and outlive the thread.
  static std::vector<Shard*>& tls_shards();

  std::string name_;
  size_t id_ = 0;  ///< dense registry index, keys the thread-local table
  std::atomic<Shard*> shards_{nullptr};
};

/// Find-or-create the named histogram. The returned reference is stable
/// for the process lifetime (the registry is leaked, like the span
/// registry, so worker threads may record during static destruction).
Histogram& histogram(const std::string& name);

/// Merged snapshots of every registered histogram, sorted by name.
std::vector<Histogram::Snapshot> histogram_snapshots();

/// Zero every histogram's counts (shards stay registered). Call at
/// quiescent moments only, like reset_counters().
void reset_histograms();

}  // namespace ge::obs
