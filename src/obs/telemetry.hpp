// ge::obs — telemetry for the GoldenEye stack: tracing spans, metric
// counters/gauges, and per-layer quantization-error summaries.
//
// Design contract (see DESIGN.md §"Observability"):
//
//  1. Zero cost when disabled. Every instrumentation entry point starts
//     with a relaxed atomic load of an enabled flag and returns
//     immediately when telemetry is off: no clock reads, no allocation,
//     no locking. Hot loops (format quantisation, pool chunks) pay one
//     predictable branch.
//  2. Telemetry only *reads* program state. It never feeds back into RNG
//     streams, chunk partitioning, or any computed value, so results are
//     bitwise identical with tracing/metrics on or off
//     (tests/test_determinism.cpp covers this).
//  3. Spans are recorded into per-thread buffers owned by a process-wide
//     registry: the recording fast path takes no lock and touches no
//     shared cache line. Export (collect_trace / write_chrome_trace) must
//     run outside parallel regions — after campaigns, not during.
//
// Tracing exports Chrome trace_event JSON ("ph":"X" complete events),
// loadable in chrome://tracing or https://ui.perfetto.dev.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ge::obs {

// --- enable switches -------------------------------------------------------

namespace detail {
extern std::atomic<bool> g_tracing_enabled;
extern std::atomic<bool> g_metrics_enabled;
extern std::atomic<bool> g_profiling_enabled;
}  // namespace detail

/// True while span recording is on (set via set_tracing_enabled or the
/// CLI's --trace flag / GE_TRACE env variable).
inline bool tracing_enabled() noexcept {
  return detail::g_tracing_enabled.load(std::memory_order_relaxed);
}

/// True while counter/gauge/quant-error recording is on.
inline bool metrics_enabled() noexcept {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

/// True while span aggregation (obs/profiler.hpp) is on: spans fold
/// count/total/self-time statistics into the profile registry instead of
/// (or in addition to) pushing trace events.
inline bool profiling_enabled() noexcept {
  return detail::g_profiling_enabled.load(std::memory_order_relaxed);
}

void set_tracing_enabled(bool on);
void set_metrics_enabled(bool on);
void set_profiling_enabled(bool on);

/// RAII: enables tracing and/or metrics, restoring the previous state on
/// destruction (used by the CLI and by tests).
struct TelemetryScope {
  bool prev_tracing = tracing_enabled();
  bool prev_metrics = metrics_enabled();
  TelemetryScope(bool tracing, bool metrics) {
    set_tracing_enabled(tracing);
    set_metrics_enabled(metrics);
  }
  ~TelemetryScope() {
    set_tracing_enabled(prev_tracing);
    set_metrics_enabled(prev_metrics);
  }
  TelemetryScope(const TelemetryScope&) = delete;
  TelemetryScope& operator=(const TelemetryScope&) = delete;
};

// --- tracing ---------------------------------------------------------------

/// One completed span. Times come from std::chrono::steady_clock,
/// nanoseconds since an arbitrary process-wide epoch.
struct TraceEvent {
  std::string name;
  const char* category = "";  ///< static string: "emulator", "pool", ...
  int tid = 0;                ///< registry-assigned dense thread id
  int64_t start_ns = 0;
  int64_t dur_ns = 0;
  // Distributed-trace identity. All zero for spans recorded outside a
  // trace context (the common, single-process case).
  uint64_t trace_id = 0;        ///< request identity, propagated on the wire
  uint64_t span_id = 0;         ///< this span (process-salted, unique)
  uint64_t parent_span_id = 0;  ///< enclosing span (0 = trace root)
};

// --- distributed trace context ---------------------------------------------
//
// A trace context is a (trace_id, span_id) pair carried across process
// boundaries by ge::net (a tagged trailing field on campaign specs). While
// a context is installed on a thread, every Span recorded there allocates a
// span id and parents itself under the innermost enclosing span, so the
// per-process traces merge into one tree (`goldeneye trace --merge`).

/// Identity propagated across threads and processes. trace_id == 0 means
/// "no context": spans record without ids, exactly as before.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;  ///< parent for spans opened under this context
  bool active() const noexcept { return trace_id != 0; }
};

/// The calling thread's current context ({0,0} when none is installed).
TraceContext current_trace_context() noexcept;

/// RAII: installs `ctx` as the calling thread's trace context, restoring
/// the previous one on destruction. Used at propagation boundaries (session
/// threads, the executor, worker lease loops); plain nested Spans maintain
/// the context automatically in between.
class TraceContextScope {
 public:
  explicit TraceContextScope(TraceContext ctx);
  ~TraceContextScope();
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext prev_;
};

/// Fresh nonzero trace id (mixed from wall clock / pid / a counter, so ids
/// from concurrent submitters don't collide). Telemetry-only: never feeds
/// back into seeds or trial scheduling.
uint64_t make_trace_id();

/// RAII tracing scope. Construction stamps the start time, destruction
/// records the completed event into the calling thread's buffer and/or
/// folds the duration into the profiler aggregate (obs/profiler.hpp),
/// per the tracing/profiling flags captured at construction. Nesting
/// works naturally (inner spans close first). `category` must be a string
/// literal (stored by pointer); `name` may be dynamic. A nullptr `name`
/// makes the span inert — the idiom for conditionally-traced scopes.
class Span {
 public:
  Span(const char* category, const char* name) {
    if (name != nullptr && (tracing_enabled() || profiling_enabled())) {
      begin(category, name, nullptr);
    }
  }
  /// Name rendered as "name(detail)", e.g. "site(conv1)". The profiler
  /// aggregates by the base name only (details are unbounded-cardinality;
  /// AttrScope carries the layer attribution instead).
  Span(const char* category, const char* name, const std::string& detail) {
    if (tracing_enabled() || profiling_enabled()) {
      begin(category, name, detail.c_str());
    }
  }
  ~Span() {
    if (start_ns_ >= 0) end();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// This span's identity — {trace_id, own span id} when the span opened
  /// under an active trace context, {0,0} otherwise. Callers that ship the
  /// context over the wire (ge::net submit) read it from here.
  TraceContext context() const noexcept { return TraceContext{trace_id_, span_id_}; }

 private:
  void begin(const char* category, const char* name, const char* detail);
  void end();

  int64_t start_ns_ = -1;  ///< -1 = telemetry was off at construction
  std::string name_;
  const char* category_ = "";
  uint32_t base_len_ = 0;  ///< name_ length before the "(detail)" suffix
  bool trace_ = false;     ///< tracing was on at begin
  bool profile_ = false;   ///< profiling was on at begin
  bool ctx_pushed_ = false;  ///< installed itself as the thread's context
  uint64_t trace_id_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_span_id_ = 0;
  TraceContext ctx_prev_;  ///< restored at end() when ctx_pushed_
};

/// Nanoseconds on the steady clock (the span timebase), for callers that
/// compute derived rates (trials/sec) themselves.
int64_t now_ns();

/// Snapshot of all completed spans across all threads, sorted by start
/// time. Call outside parallel regions only.
std::vector<TraceEvent> collect_trace();

/// Drop all recorded spans (buffers stay registered).
void clear_trace();

/// Spans recorded so far (cheap sum over thread buffers; approximate while
/// threads are still recording).
size_t trace_event_count();

/// Record an already-measured interval as a completed span, parented under
/// the calling thread's trace context (ids allocated as for Span). For
/// durations whose endpoints live on different threads — e.g. the server's
/// queue-wait, stamped at enqueue and closed when the executor picks the
/// campaign up. No-op unless tracing is enabled.
void record_span(const char* category, const std::string& name,
                 int64_t start_ns, int64_t dur_ns);

/// Label embedded in this process's trace export so `trace --merge` can
/// name the process row ("serve", "worker", ...). Default "goldeneye".
void set_trace_process_label(const std::string& label);

/// Chrome trace_event JSON for the current trace ({"traceEvents": [...]}).
/// One event per line; the first event is a `ph:"M"` metadata record
/// carrying the process label and the steady→unix epoch offset that
/// `trace --merge` uses to align timelines from different processes.
std::string chrome_trace_json();

/// Write chrome_trace_json() to `path`. Returns false on I/O failure.
bool write_chrome_trace(const std::string& path);

// --- counters --------------------------------------------------------------

/// Fixed process-wide counters for the hot paths. Keep in sync with
/// counter_name() in telemetry.cpp.
enum class Counter : int {
  kElementsQuantized = 0,  ///< elements through real_to_format_tensor
  kSaturations,            ///< clamped/overflowed during quantization
  kNanInputs,              ///< NaN inputs seen by quantization
  kInfInputs,              ///< +-Inf inputs seen by quantization
  kInjections,             ///< faults armed (value, weight or metadata)
  kTrials,                 ///< campaign trials completed
  kFormatCacheHits,        ///< registry prototype cache hits
  kFormatCacheMisses,      ///< registry prototype cache misses (parses)
  kPoolJobs,               ///< top-level parallel_for invocations
  kPoolChunks,             ///< chunks executed on pool workers
  kSpansDropped,           ///< spans discarded by the per-thread cap
  kAllocationsAvoided,     ///< tensor copies satisfied by storage sharing
  kCowCopies,              ///< shared storage detached by a mutable access
  kCowBytes,               ///< bytes duplicated by those detaches
  kArenaReuses,            ///< storage blocks recycled from a thread arena
  kArenaEvictions,         ///< cached blocks dropped by the freelist cap
  kCheckpointWrites,       ///< campaign checkpoint files written (ge::io)
  kCampaignResumes,        ///< campaigns continued from a checkpoint
  kPrefixCacheHits,        ///< trials executed as a suffix replay
  kSuffixLayersSkipped,    ///< module invocations served from the cache
  kPrefixCacheBytes,       ///< golden activation bytes kept by the cache
  kNetRequests,            ///< campaign-service requests accepted (ge::net)
  kNetLeasesGranted,       ///< trial-range leases handed to workers
  kNetLeaseReclaims,       ///< leases reclaimed (worker died or timed out)
  kNetFramesSent,          ///< protocol frames written to sockets
  kNetFramesReceived,      ///< protocol frames read from sockets
  kNetLeaseStragglers,     ///< live leases flagged below the fleet median
  kCount
};

/// Stable snake_case name for report keys, e.g. "elements_quantized".
const char* counter_name(Counter c);

namespace detail {
extern std::atomic<uint64_t> g_counters[static_cast<int>(Counter::kCount)];
}  // namespace detail

/// Add `n` to a counter; no-op unless metrics are enabled.
inline void add(Counter c, uint64_t n = 1) noexcept {
  if (!metrics_enabled()) return;
  detail::g_counters[static_cast<int>(c)].fetch_add(n,
                                                    std::memory_order_relaxed);
}

uint64_t counter_value(Counter c);
void reset_counters();

// --- gauges ----------------------------------------------------------------

/// Set a named gauge (last-write-wins double, e.g. "campaign.trials_per_sec").
/// No-op unless metrics are enabled.
void set_gauge(const std::string& name, double value);
std::vector<std::pair<std::string, double>> gauges();
void reset_gauges();

// --- quantization statistics -----------------------------------------------

/// Scan a bulk-quantisation result and bump the quantization counters:
/// elements, NaN/Inf inputs, and saturation events (|out| clamped at the
/// format's abs_max, or overflowed to Inf from a finite input). Called by
/// every NumberFormat::real_to_format_tensor; no-op unless metrics are
/// enabled, so the extra pass costs nothing in normal runs.
void record_quantization(const float* before, const float* after, int64_t n,
                         double abs_max);

/// Per-layer quantization-error aggregate, accumulated across every
/// emulated forward pass through the layer's activation hook.
struct QuantErrorSummary {
  uint64_t elements = 0;
  uint64_t saturated = 0;      ///< |after| landed on the format's abs_max
  double sum_abs_err = 0.0;    ///< sum |before - after| (finite pairs)
  double max_abs_err = 0.0;
  double mean_abs_err() const {
    return elements > 0 ? sum_abs_err / static_cast<double>(elements) : 0.0;
  }
  double saturation_rate() const {
    return elements > 0
               ? static_cast<double>(saturated) / static_cast<double>(elements)
               : 0.0;
  }
};

/// Accumulate |before - after| stats for one emulated activation tensor at
/// `layer`. Thread-safe; no-op unless metrics are enabled.
void record_layer_quant_error(const std::string& layer, const float* before,
                              const float* after, int64_t n, double abs_max);

/// Snapshot of per-layer summaries, sorted by layer path.
std::vector<std::pair<std::string, QuantErrorSummary>> layer_quant_summaries();
void reset_layer_quant_summaries();

/// Reset counters, gauges, per-layer summaries, histograms, profiler
/// aggregates and the trace in one call (the CLI does this at the start
/// of every telemetry-enabled invocation).
void reset_all();

/// Zero the profiler's span aggregates (defined in obs/profiler.cpp; the
/// full profiler API lives in obs/profiler.hpp).
void reset_profile();

// --- build / process identity ----------------------------------------------

/// Version string baked in at configure time (GE_BUILD_VERSION), "dev" in
/// ad-hoc builds. Rendered as the ge_build_info{version=...} label.
const char* build_version();

/// Short git commit baked in at configure time (GE_BUILD_COMMIT),
/// "unknown" outside a git checkout.
const char* build_commit();

/// Seconds since this process initialised telemetry (static init) — the
/// ge_uptime_seconds gauge.
double uptime_seconds();

/// Nanoseconds on CLOCK_REALTIME (the unix epoch). Paired with now_ns()
/// this yields the steady→unix offset used to align traces across
/// processes on the same machine.
int64_t unix_now_ns();

// --- logging ---------------------------------------------------------------

/// Verbosity for log(): 0 = silent (default), 1 = progress, 2 = debug.
void set_log_level(int level);
int log_level();

/// Write "[ge] msg" to stderr when `level` <= log_level().
void log(int level, const std::string& msg);

}  // namespace ge::obs
