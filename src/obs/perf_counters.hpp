// ge::obs::perf — a thin perf_event_open wrapper for the profiler.
//
// One counter group per thread (cycles leader + instructions +
// cache-misses, read atomically with PERF_FORMAT_GROUP), opened lazily on
// the thread's first read(). Everything degrades gracefully: on non-Linux
// builds, in containers that mask the syscall (ENOSYS/EPERM), or under a
// restrictive perf_event_paranoid, read() returns an invalid Sample and
// the profiler simply reports no hardware counters. Opening, reading and
// failing never throw and never log — the profiler is the only consumer
// and renders availability_note() for humans.
#pragma once

#include <cstdint>
#include <string>

namespace ge::obs::perf {

/// One reading of the calling thread's counter group. Values are
/// cumulative since the group was opened; callers diff two samples.
struct Sample {
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t cache_misses = 0;
  bool valid = false;
};

/// Read the calling thread's counter group, opening it on first use.
/// Returns an invalid Sample when hardware counters are unavailable.
Sample read();

/// Process-wide opt-out (`goldeneye profile --perf off`): while disabled,
/// read() returns an invalid Sample without opening or touching any
/// counter group. Default on.
void set_enabled(bool on);

/// True once any thread has successfully opened a counter group; false
/// after a failed attempt. Unknown (false) before the first read().
bool available();

/// Human-readable availability: "ok", or why counters are off
/// ("perf_event_open: Permission denied (perf_event_paranoid?)",
/// "not built for Linux", ...). Stable after the first read() attempt.
std::string availability_note();

}  // namespace ge::obs::perf
