#include "obs/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <mutex>

#include "obs/telemetry.hpp"

namespace ge::obs {

namespace {

struct HistRegistry {
  std::mutex mu;
  std::vector<std::unique_ptr<Histogram>> hists;  ///< id = index, stable
  std::map<std::string, size_t> by_name;
};

HistRegistry& hist_registry() {
  static HistRegistry* r = new HistRegistry();  // leaked: threads may record
  return *r;                                    // past static destruction
}

}  // namespace

std::vector<Histogram::Shard*>& Histogram::tls_shards() {
  thread_local std::vector<Shard*> shards;
  return shards;
}

int Histogram::bucket_index(double v) noexcept {
  if (!(v > 0.0)) return 0;  // <= 0, -0.0, and NaN
  int exp = 0;
  const double frac = std::frexp(v, &exp);  // v = frac * 2^exp, frac [0.5,1)
  const int octave = exp - 1;               // v in [2^octave, 2^(octave+1))
  if (octave < kMinExp) return 1;
  if (octave >= kMaxExp) return kNumBuckets - 1;
  const int sub = std::min(
      kSubBuckets - 1,
      static_cast<int>((frac - 0.5) * 2.0 * kSubBuckets));
  return 2 + (octave - kMinExp) * kSubBuckets + sub;
}

double Histogram::bucket_lower(int index) noexcept {
  if (index <= 1) return 0.0;
  if (index >= kNumBuckets - 1) return std::ldexp(1.0, kMaxExp);
  const int rel = index - 2;
  const int octave = kMinExp + rel / kSubBuckets;
  const int sub = rel % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets, octave);
}

double Histogram::bucket_upper(int index) noexcept {
  if (index <= 0) return 0.0;
  if (index == 1) return std::ldexp(1.0, kMinExp);
  if (index >= kNumBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  const int rel = index - 2;
  const int octave = kMinExp + rel / kSubBuckets;
  const int sub = rel % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub + 1) / kSubBuckets, octave);
}

Histogram::Shard& Histogram::shard() {
  auto& table = tls_shards();
  if (table.size() <= id_) table.resize(id_ + 1, nullptr);
  Shard* s = table[id_];
  if (s == nullptr) {
    s = new Shard();  // owned by the intrusive list below, never freed
    Shard* head = shards_.load(std::memory_order_acquire);
    do {
      s->next = head;
    } while (!shards_.compare_exchange_weak(head, s,
                                            std::memory_order_release,
                                            std::memory_order_acquire));
    table[id_] = s;
  }
  return *s;
}

void Histogram::record_always(double v) noexcept {
  Shard& s = shard();
  s.counts[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  // Single writer per shard: plain load-modify-store on the relaxed
  // atomics is race-free and keeps readers tear-free.
  s.sum.store(s.sum.load(std::memory_order_relaxed) + v,
              std::memory_order_relaxed);
  if (s.nonempty.load(std::memory_order_relaxed) == 0) {
    s.min.store(v, std::memory_order_relaxed);
    s.max.store(v, std::memory_order_relaxed);
    s.nonempty.store(1, std::memory_order_relaxed);
  } else {
    if (v < s.min.load(std::memory_order_relaxed)) {
      s.min.store(v, std::memory_order_relaxed);
    }
    if (v > s.max.load(std::memory_order_relaxed)) {
      s.max.store(v, std::memory_order_relaxed);
    }
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.name = name_;
  snap.buckets.assign(kNumBuckets, 0);
  bool any = false;
  for (const Shard* s = shards_.load(std::memory_order_acquire); s != nullptr;
       s = s->next) {
    for (int b = 0; b < kNumBuckets; ++b) {
      snap.buckets[static_cast<size_t>(b)] +=
          s->counts[b].load(std::memory_order_relaxed);
    }
    snap.sum += s->sum.load(std::memory_order_relaxed);
    if (s->nonempty.load(std::memory_order_relaxed) != 0) {
      const double lo = s->min.load(std::memory_order_relaxed);
      const double hi = s->max.load(std::memory_order_relaxed);
      snap.min = any ? std::min(snap.min, lo) : lo;
      snap.max = any ? std::max(snap.max, hi) : hi;
      any = true;
    }
  }
  // count from the buckets themselves, so quantile() always walks a
  // self-consistent total even mid-recording.
  for (uint64_t c : snap.buckets) snap.count += c;
  return snap;
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // nearest-rank: the smallest bucket whose cumulative count reaches
  // ceil(q * count) (at least 1).
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::ceil(q * static_cast<double>(count))));
  uint64_t cum = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    cum += buckets[b];
    if (cum >= rank) return bucket_lower(static_cast<int>(b));
  }
  return bucket_lower(kNumBuckets - 1);
}

Histogram& histogram(const std::string& name) {
  HistRegistry& r = hist_registry();
  std::lock_guard<std::mutex> lk(r.mu);
  const auto it = r.by_name.find(name);
  if (it != r.by_name.end()) return *r.hists[it->second];
  const size_t id = r.hists.size();
  r.hists.push_back(std::make_unique<Histogram>(name, id));
  r.by_name.emplace(name, id);
  return *r.hists[id];
}

std::vector<Histogram::Snapshot> histogram_snapshots() {
  HistRegistry& r = hist_registry();
  std::lock_guard<std::mutex> lk(r.mu);
  std::vector<Histogram::Snapshot> out;
  out.reserve(r.by_name.size());
  for (const auto& [name, id] : r.by_name) {  // map order: sorted by name
    out.push_back(r.hists[id]->snapshot());
  }
  return out;
}

void reset_histograms() {
  HistRegistry& r = hist_registry();
  std::lock_guard<std::mutex> lk(r.mu);
  for (const auto& h : r.hists) {
    for (Histogram::Shard* s = h->shards_.load(std::memory_order_acquire);
         s != nullptr; s = s->next) {
      for (auto& c : s->counts) c.store(0, std::memory_order_relaxed);
      s->sum.store(0.0, std::memory_order_relaxed);
      s->min.store(0.0, std::memory_order_relaxed);
      s->max.store(0.0, std::memory_order_relaxed);
      s->nonempty.store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace ge::obs
