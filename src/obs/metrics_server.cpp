#include "obs/metrics_server.hpp"

#include <cstdio>

#include "obs/histogram.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"

namespace ge::obs {

namespace {

/// Prometheus metric names: [a-zA-Z_][a-zA-Z0-9_]*. Dots and anything
/// else become underscores ("campaign.trials_per_sec" ->
/// "ge_campaign_trials_per_sec").
std::string sanitize(const std::string& name) {
  std::string out = "ge_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

/// Prometheus label values: backslash, double quote, and newline must be
/// escaped (span names carry layer paths and format specs verbatim).
std::string escape_label(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// The shared {span=,category=,format=,layer=} label set for the
/// ge_span_* family.
std::string span_labels(const SpanStats& s) {
  return "{span=\"" + escape_label(s.name) + "\",category=\"" +
         escape_label(s.category) + "\",format=\"" + escape_label(s.format) +
         "\",layer=\"" + escape_label(s.layer) + "\"}";
}

}  // namespace

std::string render_prometheus() {
  std::string out;
  for (int i = 0; i < static_cast<int>(Counter::kCount); ++i) {
    const auto c = static_cast<Counter>(i);
    const std::string name = sanitize(counter_name(c)) + "_total";
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(counter_value(c)) + "\n";
  }
  for (const auto& [name, value] : gauges()) {
    const std::string n = sanitize(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " ";
    append_double(out, value);
    out += "\n";
  }
  for (const auto& snap : histogram_snapshots()) {
    const std::string n = sanitize(snap.name);
    out += "# TYPE " + n + " histogram\n";
    uint64_t cum = 0;
    for (size_t b = 0; b < snap.buckets.size(); ++b) {
      if (snap.buckets[b] == 0) continue;  // cumulative value unchanged
      cum += snap.buckets[b];
      out += n + "_bucket{le=\"";
      append_double(out, Histogram::bucket_upper(static_cast<int>(b)));
      out += "\"} " + std::to_string(cum) + "\n";
    }
    out += n + "_bucket{le=\"+Inf\"} " + std::to_string(snap.count) + "\n";
    out += n + "_sum ";
    append_double(out, snap.sum);
    out += "\n" + n + "_count " + std::to_string(snap.count) + "\n";
  }
  // Profiler attribution: one labeled series set per (span, format,
  // layer) key. Empty when profiling is off — scrapers see the same page
  // as pre-profiler builds.
  const auto spans = profile_snapshot();
  if (!spans.empty()) {
    out += "# TYPE ge_span_count counter\n";
    for (const auto& s : spans) {
      out += "ge_span_count" + span_labels(s) + " " +
             std::to_string(s.count) + "\n";
    }
    out += "# TYPE ge_span_seconds_total counter\n";
    for (const auto& s : spans) {
      out += "ge_span_seconds_total" + span_labels(s) + " ";
      append_double(out, static_cast<double>(s.total_ns) * 1e-9);
      out += "\n";
    }
    out += "# TYPE ge_span_self_seconds_total counter\n";
    for (const auto& s : spans) {
      out += "ge_span_self_seconds_total" + span_labels(s) + " ";
      append_double(out, static_cast<double>(s.self_ns) * 1e-9);
      out += "\n";
    }
  }
  return out;
}

MetricsServer::MetricsServer(int port) {
  net::ListenResult lr = net::listen_loopback(port);
  if (!lr.sock.valid()) {
    error_ = lr.error;
    return;
  }
  listen_ = std::move(lr.sock);
  port_ = lr.port;
  thread_ = std::thread([this] { serve(); });
}

MetricsServer::~MetricsServer() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
}

void MetricsServer::serve() {
  while (!stop_.load(std::memory_order_relaxed)) {
    net::Socket conn = net::accept_connection(listen_, /*timeout_ms=*/100);
    // Drain the whole backlog per wake: with several scrapers (or a
    // dashboard refresh burst) the old one-accept-per-poll loop served at
    // most 10 connections/sec; here every pending scrape is answered
    // back to back before the next poll sleep.
    while (conn.valid()) {
      // Drain the request line + headers (best effort; the path does not
      // matter — every GET gets the metrics page).
      char req[4096];
      (void)conn.recv_some(req, sizeof(req));
      const std::string body = render_prometheus();
      std::string resp =
          "HTTP/1.1 200 OK\r\n"
          "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
          "Content-Length: " +
          std::to_string(body.size()) +
          "\r\n"
          "Connection: close\r\n\r\n" +
          body;
      (void)conn.send_all(resp.data(), resp.size());
      conn = net::accept_connection(listen_, /*timeout_ms=*/0);
    }
  }
}

}  // namespace ge::obs
