#include "obs/metrics_server.hpp"

#include <cstdio>
#include <mutex>
#include <utility>

#include "obs/histogram.hpp"
#include "obs/profiler.hpp"
#include "obs/run_log.hpp"
#include "obs/telemetry.hpp"

namespace ge::obs {

namespace {

/// The /status application hook. Guarded by a mutex held across the
/// callback invocation, so set_status_source(nullptr) doubles as a barrier:
/// once it returns, no scrape is still inside the old provider.
std::mutex g_status_mu;
std::function<std::string()> g_status_source;

/// Prometheus metric names: [a-zA-Z_][a-zA-Z0-9_]*. Dots and anything
/// else become underscores ("campaign.trials_per_sec" ->
/// "ge_campaign_trials_per_sec").
std::string sanitize(const std::string& name) {
  std::string out = "ge_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

/// Prometheus label values: backslash, double quote, and newline must be
/// escaped (span names carry layer paths and format specs verbatim).
std::string escape_label(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// The shared {span=,category=,format=,layer=} label set for the
/// ge_span_* family.
std::string span_labels(const SpanStats& s) {
  return "{span=\"" + escape_label(s.name) + "\",category=\"" +
         escape_label(s.category) + "\",format=\"" + escape_label(s.format) +
         "\",layer=\"" + escape_label(s.layer) + "\"}";
}

}  // namespace

void set_status_source(std::function<std::string()> fn) {
  std::lock_guard<std::mutex> lk(g_status_mu);
  g_status_source = std::move(fn);
}

std::string render_status_json() {
  JsonObject o;
  o.str("version", build_version());
  o.str("commit", build_commit());
  o.num("uptime_seconds", uptime_seconds());
  o.num("lease_stragglers", counter_value(Counter::kNetLeaseStragglers));
  {
    std::lock_guard<std::mutex> lk(g_status_mu);
    if (g_status_source) o.raw("server", g_status_source());
  }
  return o.render();
}

std::string render_prometheus() {
  std::string out;
  // Build identity first: constant-valued info gauge plus process uptime,
  // so a scraper can tell *what* is exporting before reading counters.
  out += "# TYPE ge_build_info gauge\n";
  out += "ge_build_info{version=\"" + escape_label(build_version()) +
         "\",commit=\"" + escape_label(build_commit()) + "\"} 1\n";
  out += "# TYPE ge_uptime_seconds gauge\nge_uptime_seconds ";
  append_double(out, uptime_seconds());
  out += "\n";
  for (int i = 0; i < static_cast<int>(Counter::kCount); ++i) {
    const auto c = static_cast<Counter>(i);
    const std::string name = sanitize(counter_name(c)) + "_total";
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(counter_value(c)) + "\n";
  }
  for (const auto& [name, value] : gauges()) {
    const std::string n = sanitize(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " ";
    append_double(out, value);
    out += "\n";
  }
  for (const auto& snap : histogram_snapshots()) {
    const std::string n = sanitize(snap.name);
    out += "# TYPE " + n + " histogram\n";
    uint64_t cum = 0;
    for (size_t b = 0; b < snap.buckets.size(); ++b) {
      if (snap.buckets[b] == 0) continue;  // cumulative value unchanged
      cum += snap.buckets[b];
      out += n + "_bucket{le=\"";
      append_double(out, Histogram::bucket_upper(static_cast<int>(b)));
      out += "\"} " + std::to_string(cum) + "\n";
    }
    out += n + "_bucket{le=\"+Inf\"} " + std::to_string(snap.count) + "\n";
    out += n + "_sum ";
    append_double(out, snap.sum);
    out += "\n" + n + "_count " + std::to_string(snap.count) + "\n";
  }
  // Profiler attribution: one labeled series set per (span, format,
  // layer) key. Empty when profiling is off — scrapers see the same page
  // as pre-profiler builds.
  const auto spans = profile_snapshot();
  if (!spans.empty()) {
    out += "# TYPE ge_span_count counter\n";
    for (const auto& s : spans) {
      out += "ge_span_count" + span_labels(s) + " " +
             std::to_string(s.count) + "\n";
    }
    out += "# TYPE ge_span_seconds_total counter\n";
    for (const auto& s : spans) {
      out += "ge_span_seconds_total" + span_labels(s) + " ";
      append_double(out, static_cast<double>(s.total_ns) * 1e-9);
      out += "\n";
    }
    out += "# TYPE ge_span_self_seconds_total counter\n";
    for (const auto& s : spans) {
      out += "ge_span_self_seconds_total" + span_labels(s) + " ";
      append_double(out, static_cast<double>(s.self_ns) * 1e-9);
      out += "\n";
    }
  }
  return out;
}

MetricsServer::MetricsServer(int port) {
  net::ListenResult lr = net::listen_loopback(port);
  if (!lr.sock.valid()) {
    error_ = lr.error;
    return;
  }
  listen_ = std::move(lr.sock);
  port_ = lr.port;
  thread_ = std::thread([this] { serve(); });
}

MetricsServer::~MetricsServer() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
}

void MetricsServer::serve() {
  while (!stop_.load(std::memory_order_relaxed)) {
    net::Socket conn = net::accept_connection(listen_, /*timeout_ms=*/100);
    // Drain the whole backlog per wake: with several scrapers (or a
    // dashboard refresh burst) the old one-accept-per-poll loop served at
    // most 10 connections/sec; here every pending scrape is answered
    // back to back before the next poll sleep.
    while (conn.valid()) {
      // Read the request line + headers (best effort, one recv — scrape
      // requests are tiny) and route on the path: /status returns the live
      // JSON snapshot, everything else the Prometheus page.
      char req[4096];
      const ssize_t n = conn.recv_some(req, sizeof(req) - 1);
      std::string path = "/";
      if (n > 0) {
        req[n] = '\0';
        const std::string line(req);
        // "GET <path> HTTP/1.1": path is the second token.
        const size_t sp1 = line.find(' ');
        const size_t sp2 =
            sp1 == std::string::npos ? std::string::npos
                                     : line.find_first_of(" \r\n", sp1 + 1);
        if (sp1 != std::string::npos && sp2 != std::string::npos) {
          path = line.substr(sp1 + 1, sp2 - sp1 - 1);
        }
      }
      const bool status = path == "/status" || path.rfind("/status?", 0) == 0;
      const std::string body =
          status ? render_status_json() + "\n" : render_prometheus();
      const char* content_type =
          status ? "application/json; charset=utf-8"
                 : "text/plain; version=0.0.4; charset=utf-8";
      std::string resp = "HTTP/1.1 200 OK\r\nContent-Type: ";
      resp += content_type;
      resp +=
          "\r\nContent-Length: " + std::to_string(body.size()) +
          "\r\nConnection: close\r\n\r\n" + body;
      (void)conn.send_all(resp.data(), resp.size());
      conn = net::accept_connection(listen_, /*timeout_ms=*/0);
    }
  }
}

}  // namespace ge::obs
