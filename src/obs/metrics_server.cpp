#include "obs/metrics_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/histogram.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"

namespace ge::obs {

namespace {

/// Prometheus metric names: [a-zA-Z_][a-zA-Z0-9_]*. Dots and anything
/// else become underscores ("campaign.trials_per_sec" ->
/// "ge_campaign_trials_per_sec").
std::string sanitize(const std::string& name) {
  std::string out = "ge_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

/// Prometheus label values: backslash, double quote, and newline must be
/// escaped (span names carry layer paths and format specs verbatim).
std::string escape_label(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// The shared {span=,category=,format=,layer=} label set for the
/// ge_span_* family.
std::string span_labels(const SpanStats& s) {
  return "{span=\"" + escape_label(s.name) + "\",category=\"" +
         escape_label(s.category) + "\",format=\"" + escape_label(s.format) +
         "\",layer=\"" + escape_label(s.layer) + "\"}";
}

}  // namespace

std::string render_prometheus() {
  std::string out;
  for (int i = 0; i < static_cast<int>(Counter::kCount); ++i) {
    const auto c = static_cast<Counter>(i);
    const std::string name = sanitize(counter_name(c)) + "_total";
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(counter_value(c)) + "\n";
  }
  for (const auto& [name, value] : gauges()) {
    const std::string n = sanitize(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " ";
    append_double(out, value);
    out += "\n";
  }
  for (const auto& snap : histogram_snapshots()) {
    const std::string n = sanitize(snap.name);
    out += "# TYPE " + n + " histogram\n";
    uint64_t cum = 0;
    for (size_t b = 0; b < snap.buckets.size(); ++b) {
      if (snap.buckets[b] == 0) continue;  // cumulative value unchanged
      cum += snap.buckets[b];
      out += n + "_bucket{le=\"";
      append_double(out, Histogram::bucket_upper(static_cast<int>(b)));
      out += "\"} " + std::to_string(cum) + "\n";
    }
    out += n + "_bucket{le=\"+Inf\"} " + std::to_string(snap.count) + "\n";
    out += n + "_sum ";
    append_double(out, snap.sum);
    out += "\n" + n + "_count " + std::to_string(snap.count) + "\n";
  }
  // Profiler attribution: one labeled series set per (span, format,
  // layer) key. Empty when profiling is off — scrapers see the same page
  // as pre-profiler builds.
  const auto spans = profile_snapshot();
  if (!spans.empty()) {
    out += "# TYPE ge_span_count counter\n";
    for (const auto& s : spans) {
      out += "ge_span_count" + span_labels(s) + " " +
             std::to_string(s.count) + "\n";
    }
    out += "# TYPE ge_span_seconds_total counter\n";
    for (const auto& s : spans) {
      out += "ge_span_seconds_total" + span_labels(s) + " ";
      append_double(out, static_cast<double>(s.total_ns) * 1e-9);
      out += "\n";
    }
    out += "# TYPE ge_span_self_seconds_total counter\n";
    for (const auto& s : spans) {
      out += "ge_span_self_seconds_total" + span_labels(s) + " ";
      append_double(out, static_cast<double>(s.self_ns) * 1e-9);
      out += "\n";
    }
  }
  return out;
}

MetricsServer::MetricsServer(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    error_ = std::string("bind 127.0.0.1:") + std::to_string(port) + ": " +
             std::strerror(errno);
    ::close(fd);
    return;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    error_ = std::string("getsockname: ") + std::strerror(errno);
    ::close(fd);
    return;
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  thread_ = std::thread([this] { serve(); });
}

MetricsServer::~MetricsServer() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void MetricsServer::serve() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int n = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (n <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    // Drain the request line + headers (best effort; the path does not
    // matter — every GET gets the metrics page).
    char req[4096];
    (void)::recv(conn, req, sizeof(req), 0);
    const std::string body = render_prometheus();
    std::string resp =
        "HTTP/1.1 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
        "Content-Length: " +
        std::to_string(body.size()) +
        "\r\n"
        "Connection: close\r\n\r\n" +
        body;
    size_t off = 0;
    while (off < resp.size()) {
      const ssize_t w = ::send(conn, resp.data() + off, resp.size() - off, 0);
      if (w <= 0) break;
      off += static_cast<size_t>(w);
    }
    ::close(conn);
  }
}

}  // namespace ge::obs
