#include "obs/profiler.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <unordered_map>

#include "obs/histogram.hpp"
#include "obs/perf_counters.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif
#if defined(__linux__)
#include <unistd.h>

#include <cstdio>
#endif

namespace ge::obs {

namespace {

/// One aggregate per (category, span, format, layer) key. All fields are
/// relaxed atomics: recording threads only add, the snapshot only loads,
/// and exactness is only promised at quiescent moments — the same deal
/// as obs::Histogram shards. Entries are created once under the registry
/// mutex and never destroyed (thread-local caches keep raw pointers).
struct ProfEntry {
  std::string category;
  std::string name;
  std::string format;
  std::string layer;
  std::atomic<uint64_t> count{0};
  std::atomic<uint64_t> total_ns{0};
  std::atomic<uint64_t> self_ns{0};
  std::atomic<int64_t> min_ns{INT64_MAX};
  std::atomic<int64_t> max_ns{0};
  /// Span durations in µs, bucketed with the histogram's log layout so
  /// snapshot() can reuse Histogram::Snapshot::quantile. Deliberately
  /// *not* a registry obs::Histogram: profiler keys are dynamic and must
  /// not pollute the /metrics histogram namespace.
  std::atomic<uint64_t> buckets[Histogram::kNumBuckets] = {};
  std::atomic<uint64_t> perf_samples{0};
  std::atomic<uint64_t> cycles{0};
  std::atomic<uint64_t> instructions{0};
  std::atomic<uint64_t> cache_misses{0};
};

struct ProfRegistry {
  std::mutex mu;
  std::unordered_map<std::string, std::unique_ptr<ProfEntry>> map;
};

ProfRegistry& prof_registry() {
  static ProfRegistry* r = new ProfRegistry();  // leaked, like the span
  return *r;                                    // registry: threads may
}                                               // record during shutdown

/// An open profiled span on the calling thread's frame stack. child_ns
/// accumulates the durations of directly nested profiled spans, so the
/// owner's self time is dur - child_ns. Top-level frames carry the perf
/// reading taken at begin.
struct Frame {
  int64_t child_ns = 0;
  bool top = false;
  perf::Sample perf0;
};

struct TlsState {
  std::vector<Frame> frames;
  std::string attr_format;
  std::string attr_layer;
  std::unordered_map<std::string, ProfEntry*> cache;
  std::string key_scratch;  // reused so steady-state lookup is alloc-free
};

// Raw-pointer + holder pattern (same as the arena's thread cache): after
// the holder's destructor has run, late spans on a dying thread see
// nullptr and skip profiling instead of touching a destroyed map.
thread_local TlsState* tls_ptr = nullptr;
thread_local bool tls_dead = false;

struct TlsHolder {
  TlsState state;
  TlsHolder() { tls_ptr = &state; }
  ~TlsHolder() {
    tls_ptr = nullptr;
    tls_dead = true;
  }
};

TlsState* tls_state() {
  if (tls_ptr == nullptr && !tls_dead) {
    thread_local TlsHolder holder;
    (void)holder;
  }
  return tls_ptr;
}

ProfEntry& entry_for(TlsState& t, const char* category,
                     const std::string& name, size_t base_len) {
  std::string& k = t.key_scratch;
  k.assign(category);
  k += '\x1f';
  k.append(name, 0, base_len);
  k += '\x1f';
  k += t.attr_format;
  k += '\x1f';
  k += t.attr_layer;
  const auto it = t.cache.find(k);
  if (it != t.cache.end()) return *it->second;

  ProfRegistry& r = prof_registry();
  std::lock_guard<std::mutex> lk(r.mu);
  std::unique_ptr<ProfEntry>& slot = r.map[k];
  if (slot == nullptr) {
    slot = std::make_unique<ProfEntry>();
    slot->category = category;
    slot->name = name.substr(0, base_len);
    slot->format = t.attr_format;
    slot->layer = t.attr_layer;
  }
  t.cache.emplace(k, slot.get());
  return *slot;
}

void atomic_min(std::atomic<int64_t>& a, int64_t v) {
  int64_t cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<int64_t>& a, int64_t v) {
  int64_t cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::atomic<uint64_t (*)()> g_arena_live_bytes{nullptr};
std::atomic<uint64_t (*)()> g_arena_peak_bytes{nullptr};

}  // namespace

namespace detail {

void profile_span_begin() {
  TlsState* t = tls_state();
  if (t == nullptr) return;
  Frame f;
  f.top = t->frames.empty();
  if (f.top) f.perf0 = perf::read();
  t->frames.push_back(f);
}

void profile_span_end(const char* category, const std::string& name,
                      size_t base_len, int64_t dur_ns) {
  TlsState* t = tls_state();
  if (t == nullptr) return;
  bool top = false;
  perf::Sample p0;
  int64_t child_ns = 0;
  if (!t->frames.empty()) {
    const Frame& f = t->frames.back();
    top = f.top;
    p0 = f.perf0;
    child_ns = f.child_ns;
    t->frames.pop_back();
    if (!t->frames.empty()) t->frames.back().child_ns += dur_ns;
  }
  ProfEntry& e = entry_for(*t, category, name, base_len);
  const int64_t self_ns =
      dur_ns > child_ns ? dur_ns - child_ns : 0;  // clock skew guard
  e.count.fetch_add(1, std::memory_order_relaxed);
  e.total_ns.fetch_add(static_cast<uint64_t>(std::max<int64_t>(dur_ns, 0)),
                       std::memory_order_relaxed);
  e.self_ns.fetch_add(static_cast<uint64_t>(self_ns),
                      std::memory_order_relaxed);
  atomic_min(e.min_ns, dur_ns);
  atomic_max(e.max_ns, dur_ns);
  const int bucket =
      Histogram::bucket_index(static_cast<double>(dur_ns) / 1000.0);
  e.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  if (top) {
    const perf::Sample p1 = perf::read();
    if (p0.valid && p1.valid) {
      e.perf_samples.fetch_add(1, std::memory_order_relaxed);
      e.cycles.fetch_add(p1.cycles - p0.cycles, std::memory_order_relaxed);
      e.instructions.fetch_add(p1.instructions - p0.instructions,
                               std::memory_order_relaxed);
      e.cache_misses.fetch_add(p1.cache_misses - p0.cache_misses,
                               std::memory_order_relaxed);
    }
  }
}

void set_arena_stats_source(uint64_t (*live_bytes)(),
                            uint64_t (*peak_bytes)()) {
  g_arena_live_bytes.store(live_bytes, std::memory_order_relaxed);
  g_arena_peak_bytes.store(peak_bytes, std::memory_order_relaxed);
}

}  // namespace detail

// --- attribution -----------------------------------------------------------

AttrScope::AttrScope(const std::string& format, const std::string& layer) {
  if (!profiling_enabled()) return;
  TlsState* t = tls_state();
  if (t == nullptr) return;
  active_ = true;
  prev_format_ = t->attr_format;
  prev_layer_ = t->attr_layer;
  // An empty component inherits the enclosing scope's value, so a hook
  // that only knows the layer path keeps the campaign's format spec.
  if (!format.empty()) t->attr_format = format;
  if (!layer.empty()) t->attr_layer = layer;
}

AttrScope::~AttrScope() {
  if (!active_) return;
  TlsState* t = tls_ptr;
  if (t == nullptr) return;
  t->attr_format = std::move(prev_format_);
  t->attr_layer = std::move(prev_layer_);
}

// --- snapshot / reset ------------------------------------------------------

std::vector<SpanStats> profile_snapshot() {
  ProfRegistry& r = prof_registry();
  std::lock_guard<std::mutex> lk(r.mu);
  std::vector<SpanStats> out;
  out.reserve(r.map.size());
  for (const auto& [key, e] : r.map) {
    SpanStats s;
    s.category = e->category;
    s.name = e->name;
    s.format = e->format;
    s.layer = e->layer;
    s.count = e->count.load(std::memory_order_relaxed);
    if (s.count == 0) continue;
    s.total_ns = e->total_ns.load(std::memory_order_relaxed);
    s.self_ns = e->self_ns.load(std::memory_order_relaxed);
    s.min_ns = e->min_ns.load(std::memory_order_relaxed);
    s.max_ns = e->max_ns.load(std::memory_order_relaxed);
    if (s.min_ns == INT64_MAX) s.min_ns = 0;
    // Quantiles via the shared histogram bucket math; the view's count is
    // the bucket sum so it is self-consistent under concurrent recording.
    Histogram::Snapshot hs;
    hs.buckets.resize(Histogram::kNumBuckets);
    uint64_t n = 0;
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      hs.buckets[i] = e->buckets[i].load(std::memory_order_relaxed);
      n += hs.buckets[i];
    }
    hs.count = n;
    s.p50_us = hs.quantile(0.5);
    s.p99_us = hs.quantile(0.99);
    s.perf_samples = e->perf_samples.load(std::memory_order_relaxed);
    s.cycles = e->cycles.load(std::memory_order_relaxed);
    s.instructions = e->instructions.load(std::memory_order_relaxed);
    s.cache_misses = e->cache_misses.load(std::memory_order_relaxed);
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(), [](const SpanStats& a, const SpanStats& b) {
    if (a.self_ns != b.self_ns) return a.self_ns > b.self_ns;
    return std::tie(a.category, a.name, a.format, a.layer) <
           std::tie(b.category, b.name, b.format, b.layer);
  });
  return out;
}

void reset_profile() {
  ProfRegistry& r = prof_registry();
  std::lock_guard<std::mutex> lk(r.mu);
  // Zero in place: thread-local caches hold raw ProfEntry pointers, so
  // entries must never be destroyed, only reset.
  for (auto& [key, e] : r.map) {
    e->count.store(0, std::memory_order_relaxed);
    e->total_ns.store(0, std::memory_order_relaxed);
    e->self_ns.store(0, std::memory_order_relaxed);
    e->min_ns.store(INT64_MAX, std::memory_order_relaxed);
    e->max_ns.store(0, std::memory_order_relaxed);
    for (auto& b : e->buckets) b.store(0, std::memory_order_relaxed);
    e->perf_samples.store(0, std::memory_order_relaxed);
    e->cycles.store(0, std::memory_order_relaxed);
    e->instructions.store(0, std::memory_order_relaxed);
    e->cache_misses.store(0, std::memory_order_relaxed);
  }
}

// --- memory watermarks -----------------------------------------------------

uint64_t process_rss_bytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long total = 0, resident = 0;
  const int n = std::fscanf(f, "%llu %llu", &total, &resident);
  std::fclose(f);
  if (n != 2) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  return resident * static_cast<uint64_t>(page > 0 ? page : 4096);
#else
  return 0;
#endif
}

MemoryWatermarks sample_memory() {
  MemoryWatermarks m;
  m.rss_bytes = process_rss_bytes();
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    // ru_maxrss is KB on Linux, bytes on macOS.
#if defined(__APPLE__)
    m.peak_rss_bytes = static_cast<uint64_t>(ru.ru_maxrss);
#else
    m.peak_rss_bytes = static_cast<uint64_t>(ru.ru_maxrss) * 1024;
#endif
  }
#endif
  if (auto* live = g_arena_live_bytes.load(std::memory_order_relaxed)) {
    m.arena_live_bytes = live();
  }
  if (auto* peak = g_arena_peak_bytes.load(std::memory_order_relaxed)) {
    m.arena_peak_bytes = peak();
  }
  m.cow_bytes = counter_value(Counter::kCowBytes);
  m.prefix_cache_bytes = counter_value(Counter::kPrefixCacheBytes);
  // set_gauge is itself metrics-gated, so a dark sample stays a pure read.
  set_gauge("mem.rss_bytes", static_cast<double>(m.rss_bytes));
  set_gauge("mem.peak_rss_bytes", static_cast<double>(m.peak_rss_bytes));
  set_gauge("mem.arena_live_bytes", static_cast<double>(m.arena_live_bytes));
  set_gauge("mem.arena_peak_bytes", static_cast<double>(m.arena_peak_bytes));
  set_gauge("mem.cow_bytes", static_cast<double>(m.cow_bytes));
  set_gauge("mem.prefix_cache_bytes",
            static_cast<double>(m.prefix_cache_bytes));
  return m;
}

// --- flamegraph export -----------------------------------------------------

std::string collapsed_stacks(const std::vector<TraceEvent>& events) {
  // Group per thread, then reconstruct nesting from the intervals: within
  // one thread spans strictly nest (RAII), so sorting by start time (ties:
  // longer span first — the parent) lets a simple stack walk recover the
  // call tree and each span's self time.
  std::map<int, std::vector<const TraceEvent*>> by_tid;
  for (const TraceEvent& e : events) by_tid[e.tid].push_back(&e);

  std::map<std::string, int64_t> folded;  // "a;b;c" -> self ns
  for (auto& [tid, list] : by_tid) {
    std::sort(list.begin(), list.end(),
              [](const TraceEvent* a, const TraceEvent* b) {
                if (a->start_ns != b->start_ns) {
                  return a->start_ns < b->start_ns;
                }
                return a->dur_ns > b->dur_ns;
              });
    struct Open {
      const TraceEvent* ev;
      int64_t child_ns = 0;
    };
    std::vector<Open> stack;
    std::string path;  // ';'-joined names of `stack`
    auto fold_top = [&] {
      const Open top = stack.back();
      stack.pop_back();
      const int64_t self = std::max<int64_t>(top.ev->dur_ns - top.child_ns, 0);
      folded[path] += self;
      path.resize(path.size() - top.ev->name.size());
      if (!path.empty()) path.pop_back();  // trailing ';'
      if (!stack.empty()) stack.back().child_ns += top.ev->dur_ns;
    };
    for (const TraceEvent* e : list) {
      while (!stack.empty() &&
             stack.back().ev->start_ns + stack.back().ev->dur_ns <=
                 e->start_ns) {
        fold_top();
      }
      if (!path.empty()) path += ';';
      path += e->name;
      stack.push_back(Open{e});
    }
    while (!stack.empty()) fold_top();
  }

  std::string out;
  char num[32];
  for (const auto& [stack_path, self_ns] : folded) {
    if (self_ns <= 0) continue;
    out += stack_path;
    std::snprintf(num, sizeof(num), " %lld\n",
                  static_cast<long long>(self_ns / 1000));
    out += num;
  }
  return out;
}

}  // namespace ge::obs
