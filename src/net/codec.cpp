#include "net/codec.hpp"

#include <span>

#include "io/container.hpp"
#include "net/frame.hpp"

namespace ge::net {

namespace {

/// ByteReader over a frame payload whose IoError overruns are re-thrown
/// as NetError: a short payload is a protocol violation, not a file bug.
template <typename Fn>
auto decode_payload(const std::vector<uint8_t>& payload,
                    const std::string& context, Fn fn) {
  io::ByteReader r(std::span<const uint8_t>(payload), context);
  try {
    return fn(r);
  } catch (const io::IoError& e) {
    throw NetError(e.what());
  }
}

// Nested-message helpers: a length-prefixed blob, so the outer decoder can
// skip a spec it does not understand and the inner decoder gets its own
// trailing-tolerance scope.
void put_blob(io::ByteWriter& w, const std::vector<uint8_t>& blob) {
  w.u64(blob.size());
  w.raw(blob.data(), blob.size());
}

std::vector<uint8_t> get_blob(io::ByteReader& r) {
  uint64_t n = r.u64();
  r.require(n);
  std::vector<uint8_t> blob(n);
  if (n > 0) r.raw(blob.data(), n);
  return blob;
}

CampaignSpecMsg read_campaign_spec(io::ByteReader& r) {
  CampaignSpecMsg m;
  m.model_name = r.str();
  m.epochs = r.i64();
  m.samples = r.i64();
  m.format_spec = r.str();
  m.site = r.u8();
  m.error_model = r.u8();
  m.injections_per_layer = r.i64();
  m.seed = r.u64();
  m.sites_per_trial = static_cast<int32_t>(r.u32());
  m.ber = r.f64();
  m.burst_len = static_cast<int32_t>(r.u32());
  m.prefix_cache = r.u8();
  // Optional tagged trailing field: trace context. A payload that ends
  // here (old peer) or whose tail is some other future field decodes with
  // trace_id = 0 — the untraced default. Remaining bytes after the tag
  // stay ignorable for the *next* extension.
  if (r.remaining() >= 20 && r.peek_u32() == kTraceTag) {
    r.u32();  // consume the tag
    m.trace_id = r.u64();
    m.parent_span_id = r.u64();
  }
  // Trailing bytes: fields from a newer peer — ignored by design.
  return m;
}

}  // namespace

std::vector<uint8_t> encode_hello(const HelloMsg& m) {
  io::ByteWriter w;
  w.u8(m.role);
  w.str(m.client);
  return w.take();
}

HelloMsg decode_hello(const std::vector<uint8_t>& payload,
                      const std::string& context) {
  return decode_payload(payload, context, [&](io::ByteReader& r) {
    HelloMsg m;
    m.role = r.u8();
    if (m.role > HelloMsg::kRoleWorker) {
      throw NetError(context + ": unknown hello role " +
                     std::to_string(m.role));
    }
    m.client = r.str();
    return m;
  });
}

std::vector<uint8_t> encode_campaign_spec(const CampaignSpecMsg& m) {
  io::ByteWriter w;
  w.str(m.model_name);
  w.i64(m.epochs);
  w.i64(m.samples);
  w.str(m.format_spec);
  w.u8(m.site);
  w.u8(m.error_model);
  w.i64(m.injections_per_layer);
  w.u64(m.seed);
  w.u32(static_cast<uint32_t>(m.sites_per_trial));
  w.f64(m.ber);
  w.u32(static_cast<uint32_t>(m.burst_len));
  w.u8(m.prefix_cache);
  // Trace context rides as a tagged trailing field, and only when set:
  // untraced specs stay byte-identical to the PR 9 encoding.
  if (m.trace_id != 0) {
    w.u32(kTraceTag);
    w.u64(m.trace_id);
    w.u64(m.parent_span_id);
  }
  return w.take();
}

CampaignSpecMsg decode_campaign_spec(const std::vector<uint8_t>& payload,
                                     const std::string& context) {
  return decode_payload(payload, context, read_campaign_spec);
}

std::vector<uint8_t> encode_lease_grant(const LeaseGrantMsg& m) {
  io::ByteWriter w;
  w.u64(m.campaign_id);
  w.u64(m.lease_id);
  w.u64(m.lo);
  w.u64(m.hi);
  w.u32(m.heartbeat_ms);
  put_blob(w, encode_campaign_spec(m.spec));
  return w.take();
}

LeaseGrantMsg decode_lease_grant(const std::vector<uint8_t>& payload,
                                 const std::string& context) {
  return decode_payload(payload, context, [&](io::ByteReader& r) {
    LeaseGrantMsg m;
    m.campaign_id = r.u64();
    m.lease_id = r.u64();
    m.lo = r.u64();
    m.hi = r.u64();
    m.heartbeat_ms = r.u32();
    std::vector<uint8_t> spec = get_blob(r);
    m.spec = decode_campaign_spec(spec, context);
    return m;
  });
}

std::vector<uint8_t> encode_lease_result(const LeaseResultMsg& m) {
  io::ByteWriter w;
  w.u64(m.campaign_id);
  w.u64(m.lease_id);
  put_blob(w, m.progress);
  return w.take();
}

LeaseResultMsg decode_lease_result(const std::vector<uint8_t>& payload,
                                   const std::string& context) {
  return decode_payload(payload, context, [&](io::ByteReader& r) {
    LeaseResultMsg m;
    m.campaign_id = r.u64();
    m.lease_id = r.u64();
    m.progress = get_blob(r);
    return m;
  });
}

std::vector<uint8_t> encode_heartbeat(const HeartbeatMsg& m) {
  io::ByteWriter w;
  w.u64(m.campaign_id);
  w.u64(m.lease_id);
  return w.take();
}

HeartbeatMsg decode_heartbeat(const std::vector<uint8_t>& payload,
                              const std::string& context) {
  return decode_payload(payload, context, [&](io::ByteReader& r) {
    HeartbeatMsg m;
    m.campaign_id = r.u64();
    m.lease_id = r.u64();
    return m;
  });
}

std::vector<uint8_t> encode_done(const DoneMsg& m) {
  io::ByteWriter w;
  w.u64(m.digest);
  w.f32(m.golden_accuracy);
  w.str(m.summary);
  return w.take();
}

DoneMsg decode_done(const std::vector<uint8_t>& payload,
                    const std::string& context) {
  return decode_payload(payload, context, [&](io::ByteReader& r) {
    DoneMsg m;
    m.digest = r.u64();
    m.golden_accuracy = r.f32();
    m.summary = r.str();
    return m;
  });
}

std::vector<uint8_t> encode_error(const ErrorMsg& m) {
  io::ByteWriter w;
  w.str(m.message);
  return w.take();
}

ErrorMsg decode_error(const std::vector<uint8_t>& payload,
                      const std::string& context) {
  return decode_payload(payload, context, [&](io::ByteReader& r) {
    ErrorMsg m;
    m.message = r.str();
    return m;
  });
}

std::vector<uint8_t> encode_checkpointed(const CheckpointedMsg& m) {
  io::ByteWriter w;
  w.str(m.path);
  w.i64(m.completed_trials);
  w.i64(m.total_trials);
  return w.take();
}

CheckpointedMsg decode_checkpointed(const std::vector<uint8_t>& payload,
                                    const std::string& context) {
  return decode_payload(payload, context, [&](io::ByteReader& r) {
    CheckpointedMsg m;
    m.path = r.str();
    m.completed_trials = r.i64();
    m.total_trials = r.i64();
    return m;
  });
}

}  // namespace ge::net
