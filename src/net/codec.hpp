// ge::net message codec — typed payloads for the campaign-service frames
// (net/frame.hpp), encoded with io::ByteWriter/ByteReader so the wire
// format shares the .gec little-endian discipline.
//
// Forward-compat rule (same as v2 CAMP payloads): every decoder reads the
// fields it knows and ignores trailing bytes, so a newer peer may append
// fields without breaking this reader. Nested messages (the CampaignSpec
// inside a LeaseGrant) are length-prefixed blobs so the rule applies at
// every nesting level. Decode failures throw net::NetError naming the
// caller's context — a lying peer is a diagnosed error, never UB
// (ByteReader bounds-checks every read).
//
// Frame type -> payload message:
//   kHello         HelloMsg
//   kSubmit        CampaignSpecMsg
//   kLogRow        raw UTF-8 JSONL line (no codec; bytes are the message)
//   kDone          DoneMsg
//   kError         ErrorMsg
//   kLeaseRequest  (empty)
//   kLeaseGrant    LeaseGrantMsg
//   kLeaseResult   LeaseResultMsg
//   kHeartbeat     HeartbeatMsg
//   kNoWork        (empty)
//   kShutdown      (empty)
//   kCheckpointed  CheckpointedMsg
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ge::net {

/// Client handshake, first frame on every connection.
struct HelloMsg {
  static constexpr uint8_t kRoleSubmit = 0;
  static constexpr uint8_t kRoleWorker = 1;
  uint8_t role = kRoleSubmit;
  std::string client;  ///< free-form identity for server logs
};

/// Everything the server (or a leased worker) needs to reconstruct a
/// campaign bitwise: the CLI-level campaign parameters. Model weights are
/// NOT shipped — both sides call models::ensure_trained against their
/// cache dir, and deterministic synthetic training plus the golden-digest
/// tripwire in merge/resume guarantee (or detect) weight agreement.
struct CampaignSpecMsg {
  std::string model_name = "simple_cnn";
  int64_t epochs = 6;
  int64_t samples = 16;
  std::string format_spec;
  uint8_t site = 0;         ///< core::InjectionSite as wire byte
  uint8_t error_model = 0;  ///< core::ErrorModel as wire byte
  int64_t injections_per_layer = 50;
  uint64_t seed = 1234;
  int32_t sites_per_trial = 1;
  double ber = 0.0;
  int32_t burst_len = 2;
  uint8_t prefix_cache = 1;
  // Distributed-trace context, carried as a *tagged trailing field*
  // (kTraceTag + two u64s) after the fields above: PR 9 decoders ignore it
  // as trailing bytes, and this decoder treats its absence as "no context"
  // — forward and backward compatible by construction. Zero = untraced.
  // Telemetry-only: never feeds seeds, chunking, or any computed value.
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
};

/// Marker for the optional trace-context trailing field on
/// CampaignSpecMsg ("GTRC" little-endian). A 4-byte magic plus the
/// remaining-length check make a stray trailing blob from some other
/// future field vanishingly unlikely to alias it.
constexpr uint32_t kTraceTag = 0x43525447u;

/// Server -> worker: run trials [lo,hi) of this campaign. The lease_id is
/// echoed in heartbeats and the result; a reclaimed lease's id is dead and
/// its late result is discarded.
struct LeaseGrantMsg {
  uint64_t campaign_id = 0;
  uint64_t lease_id = 0;
  uint64_t lo = 0;
  uint64_t hi = 0;
  uint32_t heartbeat_ms = 0;  ///< renew at least this often or be reclaimed
  CampaignSpecMsg spec;
};

/// Worker -> server: the finished lease's CampaignProgress, serialized
/// with io::encode_campaign_progress (the CAMP payload bytes).
struct LeaseResultMsg {
  uint64_t campaign_id = 0;
  uint64_t lease_id = 0;
  std::vector<uint8_t> progress;
};

struct HeartbeatMsg {
  uint64_t campaign_id = 0;
  uint64_t lease_id = 0;
};

/// Server -> submit client: campaign complete.
struct DoneMsg {
  uint64_t digest = 0;  ///< campaign_digest(finalize_campaign(...))
  float golden_accuracy = 0.0f;
  std::string summary;  ///< the offline CLI's stdout table, verbatim
};

struct ErrorMsg {
  std::string message;
};

/// Server -> submit client: daemon drained before this campaign finished;
/// partial progress was checkpointed to `path` (resumable offline).
struct CheckpointedMsg {
  std::string path;
  int64_t completed_trials = 0;
  int64_t total_trials = 0;
};

std::vector<uint8_t> encode_hello(const HelloMsg& m);
HelloMsg decode_hello(const std::vector<uint8_t>& payload,
                      const std::string& context);

std::vector<uint8_t> encode_campaign_spec(const CampaignSpecMsg& m);
CampaignSpecMsg decode_campaign_spec(const std::vector<uint8_t>& payload,
                                     const std::string& context);

std::vector<uint8_t> encode_lease_grant(const LeaseGrantMsg& m);
LeaseGrantMsg decode_lease_grant(const std::vector<uint8_t>& payload,
                                 const std::string& context);

std::vector<uint8_t> encode_lease_result(const LeaseResultMsg& m);
LeaseResultMsg decode_lease_result(const std::vector<uint8_t>& payload,
                                   const std::string& context);

std::vector<uint8_t> encode_heartbeat(const HeartbeatMsg& m);
HeartbeatMsg decode_heartbeat(const std::vector<uint8_t>& payload,
                              const std::string& context);

std::vector<uint8_t> encode_done(const DoneMsg& m);
DoneMsg decode_done(const std::vector<uint8_t>& payload,
                    const std::string& context);

std::vector<uint8_t> encode_error(const ErrorMsg& m);
ErrorMsg decode_error(const std::vector<uint8_t>& payload,
                      const std::string& context);

std::vector<uint8_t> encode_checkpointed(const CheckpointedMsg& m);
CheckpointedMsg decode_checkpointed(const std::vector<uint8_t>& payload,
                                    const std::string& context);

}  // namespace ge::net
