#include "net/client.hpp"

#include <atomic>
#include <chrono>
#include <iomanip>
#include <optional>
#include <thread>

#include "core/json_scan.hpp"
#include "io/campaign_state.hpp"
#include "net/session.hpp"
#include "obs/run_log.hpp"
#include "obs/telemetry.hpp"

namespace ge::net {

namespace {

FrameChannel connect_channel(const std::string& host, int port,
                             const std::string& what) {
  std::string error;
  Socket sock = connect_to(host, port, &error);
  if (!sock.valid()) {
    throw NetError(what + ": " + error);
  }
  return FrameChannel(std::move(sock), what);
}

void sleep_ms_interruptible(int ms, const std::atomic<bool>& stop) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (!stop.load(std::memory_order_relaxed) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

/// At --log-level >= 1, render a streamed heartbeat row as a progress
/// line: the server's trials/s + ETA, shown on the submit terminal that
/// would otherwise stay silent for the whole campaign.
void maybe_print_progress(const std::string& row, std::ostream& err) {
  if (obs::log_level() < 1) return;
  if (row.find("\"type\":\"heartbeat\"") == std::string::npos) return;
  const auto rec = core::jsonscan::parse_record(row);
  if (!rec.has_value()) return;
  const auto done = core::jsonscan::get_num(*rec, "done");
  const auto total = core::jsonscan::get_num(*rec, "total");
  const auto tps = core::jsonscan::get_num(*rec, "trials_per_sec");
  const auto eta = core::jsonscan::get_num(*rec, "eta_seconds");
  if (!done.has_value() || !total.has_value()) return;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "submit: %lld/%lld trials, %.1f trials/s, eta %.1fs",
                static_cast<long long>(*done), static_cast<long long>(*total),
                tps.value_or(0.0), eta.value_or(0.0));
  err << buf << "\n";
}

}  // namespace

int run_submit(const SubmitOptions& opts, obs::RunLog* report,
               std::ostream& out, std::ostream& err) {
  // Root of the distributed trace. With tracing off the context stays
  // {0,0}: the spec encodes byte-identically to an untraced submit and
  // every downstream span records id-free, exactly as before.
  obs::TraceContextScope trace_scope(obs::TraceContext{
      obs::tracing_enabled() ? obs::make_trace_id() : 0, 0});
  obs::Span root_span("net", "submit", opts.spec.format_spec);

  FrameChannel chan = connect_channel(opts.host, opts.port, "submit");
  chan.send(FrameType::kHello,
            encode_hello({HelloMsg::kRoleSubmit, opts.client_name}));
  CampaignSpecMsg spec = opts.spec;
  const obs::TraceContext ctx = root_span.context();
  spec.trace_id = ctx.trace_id;
  spec.parent_span_id = ctx.span_id;
  chan.send(FrameType::kSubmit, encode_campaign_spec(spec));

  for (;;) {
    std::optional<Frame> f = chan.recv();
    if (!f.has_value()) {
      err << "submit: server closed the connection before the campaign "
             "resolved\n";
      return 1;
    }
    switch (f->type) {
      case FrameType::kLogRow: {
        const std::string row(f->payload.begin(), f->payload.end());
        if (report != nullptr) report->raw_line(row);
        maybe_print_progress(row, err);
        break;
      }
      case FrameType::kDone: {
        const DoneMsg done = decode_done(f->payload, chan.context());
        out << done.summary;
        out << "campaign digest: 0x" << std::hex << done.digest << std::dec
            << "\n";
        return 0;
      }
      case FrameType::kCheckpointed: {
        const CheckpointedMsg cp =
            decode_checkpointed(f->payload, chan.context());
        // Graceful drain, resumable offline — mirrors the offline CLI's
        // incomplete-shard exit: progress reported, exit 0.
        out << "campaign progress: " << cp.completed_trials << "/"
            << cp.total_trials << " trials (server drained)\n";
        out << "progress saved: " << cp.path << "\n";
        return 0;
      }
      case FrameType::kError: {
        const ErrorMsg e = decode_error(f->payload, chan.context());
        err << "submit: server error: " << e.message << "\n";
        return 1;
      }
      default:
        throw NetError(chan.context() + ": unexpected " +
                       std::string(frame_type_name(f->type)) + " frame");
    }
  }
}

int run_worker(const WorkerOptions& opts, std::ostream& out,
               std::ostream& err) {
  FrameChannel chan = connect_channel(opts.host, opts.port, "worker");
  chan.send(FrameType::kHello,
            encode_hello({HelloMsg::kRoleWorker, opts.client_name}));

  // One prepared campaign kept warm across consecutive leases of the same
  // campaign (model load + golden probe are the expensive parts).
  std::optional<std::pair<uint64_t, PreparedCampaign>> cached;
  int64_t executed = 0;
  int64_t dropped = 0;
  int64_t stalled = 0;
  auto last_work = std::chrono::steady_clock::now();

  for (;;) {
    chan.send(FrameType::kLeaseRequest, {});
    std::optional<Frame> f = chan.recv();
    if (!f.has_value()) {
      err << "worker: server closed the connection\n";
      return 1;
    }
    switch (f->type) {
      case FrameType::kNoWork: {
        if (opts.idle_timeout_ms > 0 &&
            std::chrono::steady_clock::now() - last_work >
                std::chrono::milliseconds(opts.idle_timeout_ms)) {
          out << "worker: idle, exiting after " << executed << " leases\n";
          return 0;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(opts.poll_ms));
        break;
      }
      case FrameType::kShutdown: {
        out << "worker: server draining, exiting after " << executed
            << " leases\n";
        return 0;
      }
      case FrameType::kError: {
        const ErrorMsg e = decode_error(f->payload, chan.context());
        err << "worker: server error: " << e.message << "\n";
        return 1;
      }
      case FrameType::kLeaseGrant: {
        const LeaseGrantMsg grant =
            decode_lease_grant(f->payload, chan.context());
        last_work = std::chrono::steady_clock::now();

        if (opts.stall_leases > 0) {
          // Drill mode: hold the grant without heartbeating and keep the
          // connection open. The server cannot see an EOF, so the lease
          // must die the slow way — straggler flag, then expiry reclaim.
          ++stalled;
          out << "worker: stalling lease " << grant.lease_id << " ["
              << grant.lo << "," << grant.hi << ")\n";
          if (stalled >= opts.stall_leases) {
            for (;;) {
              bool timed_out = false;
              std::optional<Frame> g = chan.recv_wait(250, &timed_out);
              if (timed_out) continue;
              if (!g.has_value() || g->type == FrameType::kShutdown) {
                out << "worker: stalled " << stalled
                    << " lease(s) until shutdown\n";
                return 0;
              }
              // anything else (a late grant) stays unanswered — stuck
            }
          }
          break;
        }

        if (opts.drop_leases > 0) {
          // Drill mode: hold the grant, never run it, and once enough
          // grants are held, die abruptly. The server must notice the
          // EOF and reclaim every held range.
          ++dropped;
          out << "worker: dropping lease " << grant.lease_id << " ["
              << grant.lo << "," << grant.hi << ")\n";
          if (dropped >= opts.drop_leases) {
            out << "worker: dying with " << dropped << " leases held\n";
            return 0;
          }
          break;
        }

        // Join the campaign's distributed trace: the grant's spec carries
        // the submit client's context, so this lease's spans (and every
        // campaign/pool span recorded while it runs) parent under the
        // same root as the server's execute span.
        obs::TraceContextScope trace_ctx(obs::TraceContext{
            grant.spec.trace_id, grant.spec.parent_span_id});
        obs::Span lease_span("net", "worker_lease",
                             std::to_string(grant.lo) + "-" +
                                 std::to_string(grant.hi));

        if (!cached.has_value() || cached->first != grant.campaign_id) {
          cached.emplace(grant.campaign_id,
                         prepare_campaign(grant.spec, opts.cache_dir));
        }
        PreparedCampaign& prep = cached->second;

        // Renew the lease while the trials run; the campaign thread owns
        // the channel reads, the heartbeat thread only sends (the channel
        // serializes writers).
        std::atomic<bool> hb_stop{false};
        std::thread hb([&] {
          const int interval =
              std::max<int>(1, static_cast<int>(grant.heartbeat_ms));
          for (;;) {
            sleep_ms_interruptible(interval, hb_stop);
            if (hb_stop.load(std::memory_order_relaxed)) return;
            try {
              chan.send(FrameType::kHeartbeat,
                        encode_heartbeat(
                            {grant.campaign_id, grant.lease_id}));
            } catch (const NetError&) {
              return;  // server gone; the main loop will find out too
            }
          }
        });

        int rc = 0;
        try {
          LineFrameStream row_stream(chan);
          obs::RunLog row_log(row_stream);
          core::CampaignRunOptions ropts;
          ropts.model_name = grant.spec.model_name;
          ropts.eval_samples = grant.spec.samples;
          ropts.lease_lo = static_cast<int64_t>(grant.lo);
          ropts.lease_hi = static_cast<int64_t>(grant.hi);
          ropts.run_log = &row_log;
          core::CampaignProgress part = core::run_campaign_trials(
              *prep.trained.model, prep.batch, prep.cfg, ropts);
          LeaseResultMsg res;
          res.campaign_id = grant.campaign_id;
          res.lease_id = grant.lease_id;
          res.progress = io::encode_campaign_progress(part);
          chan.send(FrameType::kLeaseResult, encode_lease_result(res));
          ++executed;
          out << "worker: completed lease " << grant.lease_id << " ["
              << grant.lo << "," << grant.hi << ")\n";
        } catch (...) {
          hb_stop.store(true, std::memory_order_relaxed);
          hb.join();
          throw;
        }
        hb_stop.store(true, std::memory_order_relaxed);
        hb.join();
        if (opts.max_leases > 0 && executed >= opts.max_leases) {
          out << "worker: lease budget reached, exiting after " << executed
              << " leases\n";
          return rc;
        }
        break;
      }
      default:
        throw NetError(chan.context() + ": unexpected " +
                       std::string(frame_type_name(f->type)) + " frame");
    }
  }
}

}  // namespace ge::net
