// ge::net session plumbing shared by the server and the clients:
//
//  - FrameChannel: one connection with a serialized writer. Several
//    threads write frames to the same socket (the executor streaming
//    trial rows while worker-forwarders splice in theirs; a worker's
//    campaign thread racing its heartbeat thread), so sends take a mutex.
//    Reads don't: every channel has exactly one reader thread.
//  - LineFrameStream: an ostream whose every '\n'-terminated line leaves
//    as one kLogRow frame. Wrapping it in obs::RunLog(std::ostream&)
//    turns run_campaign_trials' report stream into live row streaming —
//    the rows on the wire are the exact bytes an offline --report run
//    would have written.
//  - prepare_campaign: CampaignSpecMsg -> ready-to-run model, batch and
//    CampaignConfig. The spec's trace context rides along untouched:
//    callers that want their spans in the submit client's trace install
//    an obs::TraceContextScope from spec.trace_id/parent_span_id first
//    (telemetry only — results are bitwise independent of tracing).
//    The server's executor and every worker call this
//    against their own cache dir; deterministic synthetic training makes
//    the weights bitwise identical across processes, and the
//    golden-digest check in merge_campaign_progress turns any divergence
//    into a diagnosed error instead of silently mixed statistics.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <streambuf>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "data/dataloader.hpp"
#include "models/model_factory.hpp"
#include "net/codec.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"

namespace ge::net {

/// One protocol connection: single reader thread, any number of writers.
class FrameChannel {
 public:
  FrameChannel(Socket sock, std::string context)
      : sock_(std::move(sock)), context_(std::move(context)) {}

  /// Thread-safe frame write; throws NetError when the peer is gone.
  void send(FrameType type, std::vector<uint8_t> payload);
  /// Single-reader frame read; nullopt on clean EOF.
  std::optional<Frame> recv();
  /// As recv(), but gives up after `timeout_ms` with *timed_out = true —
  /// the polling form server session threads use so a blocked read can
  /// never outlive a shutdown request.
  std::optional<Frame> recv_wait(int timeout_ms, bool* timed_out);

  const std::string& context() const noexcept { return context_; }
  bool valid() const noexcept { return sock_.valid(); }
  /// Close the socket out from under any blocked reader (shutdown path).
  void shutdown();

 private:
  std::mutex send_mu_;
  Socket sock_;
  std::string context_;
};

/// std::streambuf turning each completed line into a kLogRow frame.
class LineFrameBuf : public std::streambuf {
 public:
  explicit LineFrameBuf(FrameChannel& chan) : chan_(&chan) {}

 protected:
  int overflow(int ch) override;
  std::streamsize xsputn(const char* s, std::streamsize n) override;

 private:
  void emit_line();

  FrameChannel* chan_;
  std::string line_;
};

/// The ostream face of LineFrameBuf (what obs::RunLog wraps).
class LineFrameStream : public std::ostream {
 public:
  explicit LineFrameStream(FrameChannel& chan)
      : std::ostream(&buf_), buf_(chan) {}

 private:
  LineFrameBuf buf_;
};

/// A campaign reconstructed from its wire spec: trained model, evaluation
/// batch, and the CampaignConfig (with replica factory) ready for
/// run_campaign_trials.
struct PreparedCampaign {
  models::TrainedModel trained;
  data::Batch batch;
  core::CampaignConfig cfg;
  int64_t total_trials = 0;  ///< campaigned layers * injections_per_layer
};

/// Validate `spec` and build the campaign exactly as `goldeneye campaign`
/// would (same model cache contract, same replica factory, same batch
/// slice). Throws NetError on an invalid spec — bad format string, out of
/// range site/error-model byte, unknown model name.
PreparedCampaign prepare_campaign(const CampaignSpecMsg& spec,
                                  const std::string& cache_dir);

/// The offline CLI's stdout report for a finished campaign (layer table,
/// accuracies, digest line) rendered to a string — the kDone summary the
/// submit client prints verbatim.
std::string render_campaign_summary(const CampaignSpecMsg& spec,
                                    const core::CampaignResult& result);

}  // namespace ge::net
