// ge::net clients: `goldeneye submit` (send a campaign, stream its rows,
// print the digest) and `goldeneye worker` (lease trial ranges from a
// server and execute them). Both connect to a `goldeneye serve` daemon
// over the frame protocol (net/frame.hpp).
//
// Failure mapping matches the CLI conventions: a bad server address, a
// dead connection, or a protocol violation throws NetError (exit 2, like
// io::IoError — diagnosed input/environment errors); a server-reported
// campaign failure returns 1.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "net/codec.hpp"

namespace ge::obs {
class RunLog;
}  // namespace ge::obs

namespace ge::net {

struct SubmitOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  CampaignSpecMsg spec;
  std::string client_name = "submit";
};

/// Submit one campaign and block until it resolves. Streamed rows go
/// verbatim into `report` (borrowed, may be null) — the same bytes an
/// offline `campaign --report` run would write. On kDone prints the
/// server's summary plus the standard "campaign digest: 0x..." line and
/// returns 0; on kCheckpointed prints the checkpoint path and returns 0;
/// on kError prints the message and returns 1.
int run_submit(const SubmitOptions& opts, obs::RunLog* report,
               std::ostream& out, std::ostream& err);

struct WorkerOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string cache_dir = "/tmp/goldeneye_model_cache";
  std::string client_name = "worker";
  /// Exit 0 after executing this many leases (0 = keep going).
  int64_t max_leases = 0;
  /// Fault drill: accept this many grants, execute none of them, then
  /// drop the connection — a deterministic "worker killed mid-lease" for
  /// tests and CI (the server must reclaim the abandoned ranges).
  int64_t drop_leases = 0;
  /// Fault drill: accept this many grants and then hang — connection
  /// open, no heartbeats, no results — until the server shuts down. The
  /// lease must expire server-side (straggler flag, then timeout
  /// reclaim), unlike drop_leases where the EOF reclaims it at once.
  int64_t stall_leases = 0;
  /// Idle poll interval between kNoWork responses.
  int poll_ms = 200;
  /// Exit 0 after this long with no grantable work (0 = wait forever).
  int idle_timeout_ms = 0;
};

/// Lease-and-execute loop. Returns 0 on a clean exit (kShutdown,
/// max_leases, idle timeout, or a completed drop_leases drill), 1 when
/// the server reported an error or vanished mid-protocol.
int run_worker(const WorkerOptions& opts, std::ostream& out,
               std::ostream& err);

}  // namespace ge::net
