// ge::net::LeaseTable — work-stealing partition of one campaign's trial
// space. The trial space [0, total) is cut into fixed-size chunks; any
// executor (the server's own, or a remote worker) leases the next chunk,
// runs it via run_campaign_trials{lease_lo, lease_hi}, and returns the
// resulting CampaignProgress part. Because every trial is a pure function
// of (seed, site index, trial index), it does not matter who runs which
// chunk or in what order — the merged parts are bitwise identical to an
// unpartitioned run (the same argument as static shards, DESIGN.md §9).
//
// Fault tolerance: each lease carries a deadline. A worker renews it by
// heartbeating; a worker that dies (EOF on its connection) or goes silent
// past the deadline has its range reclaimed — pushed back to the front of
// the queue so recovery work starts immediately. A reclaimed lease's id
// is dead: a late result for it is discarded (complete() returns false),
// which keeps merged done sets disjoint even when a presumed-dead worker
// was merely slow.
//
// Time is injected (now_ns parameters) rather than read from a clock, so
// tests drive expiry deterministically. Thread-safe: server session
// threads grant/heartbeat/complete concurrently with the executor.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace ge::net {

struct Lease {
  uint64_t id = 0;
  int64_t lo = 0;
  int64_t hi = 0;
};

/// One lease as exposed to introspection (/status) and completion
/// accounting: identity plus who holds it and how fresh it is.
struct LeaseInfo {
  uint64_t id = 0;
  int64_t lo = 0;
  int64_t hi = 0;
  std::string worker;              ///< holder identity ("" = local executor)
  int64_t age_ns = 0;              ///< now - grant time
  int64_t since_heartbeat_ns = 0;  ///< now - last renewal (grant if none)
  bool expires = false;            ///< carries a deadline (remote worker)
  bool straggler = false;          ///< flagged by flag_stragglers()
};

class LeaseTable {
 public:
  /// Start a new campaign: trial space [0, total), handed out in chunks
  /// of `chunk` trials (the final chunk may be short).
  void reset(int64_t total, int64_t chunk);

  /// Lease the next available range. The lease expires at
  /// now_ns + timeout_ns unless renewed; timeout_ns <= 0 means the lease
  /// never expires (the server's own executor cannot die separately).
  /// `worker` names the holder for introspection/straggler accounting.
  /// Returns false when no range is currently available — either all
  /// trials are leased out or done.
  bool grant(int64_t now_ns, int64_t timeout_ns, Lease* out,
             const std::string& worker = "");

  /// Renew a live lease's deadline (and heartbeat freshness). False when
  /// the id is unknown — already completed, or reclaimed (the worker
  /// should drop the work).
  bool heartbeat(uint64_t id, int64_t now_ns, int64_t timeout_ns);

  /// Mark a lease's range as done. False when the id was reclaimed or
  /// never existed: the caller must DISCARD the result, its range has
  /// been (or will be) re-run by someone else. When now_ns > 0 the
  /// lease's (trials / wall seconds) joins the fleet throughput samples
  /// that flag_stragglers() takes its median over; `done` (optional)
  /// receives the completed lease's row.
  bool complete(uint64_t id, int64_t now_ns = 0, LeaseInfo* done = nullptr);

  /// Abandon a live lease immediately (worker connection died). Its range
  /// goes back to the front of the queue. False when the id is unknown.
  bool abandon(uint64_t id);

  /// Reclaim every lease whose deadline passed; ranges go back to the
  /// front of the queue. Returns how many were reclaimed.
  int reclaim_expired(int64_t now_ns);

  /// True once every trial range has been completed.
  bool all_done() const;
  /// Trials in ranges not yet leased (or reclaimed back).
  int64_t unleased_trials() const;
  /// Currently outstanding (live) leases.
  int64_t live_leases() const;
  /// Trials in the campaign (reset()'s total).
  int64_t total_trials() const;
  /// Trials in completed ranges so far.
  int64_t completed_trials() const;

  /// Every live lease as an introspection row, ages computed against
  /// `now_ns`. Order is grant order (stable for /status rendering).
  std::vector<LeaseInfo> snapshot(int64_t now_ns) const;

  /// Completed-lease throughput samples (trials/sec) recorded by
  /// complete(), in completion order.
  std::vector<double> throughput_samples() const;

  /// Straggler sweep: flag every live *expiring* lease whose implied
  /// throughput upper bound ((hi-lo) / age so far) has fallen below
  /// `fraction` × the median completed-lease throughput. A lease slower
  /// than that bound cannot finish at a fleet-typical rate no matter what
  /// it does next — age alone convicts it. Needs >= 2 completed samples
  /// (a median of one lease punishes the second); fraction <= 0 disables.
  /// Returns only *newly* flagged rows (each lease is counted once in
  /// Counter::kNetLeaseStragglers); already-flagged leases stay flagged
  /// for snapshot() until completed or reclaimed.
  std::vector<LeaseInfo> flag_stragglers(int64_t now_ns, double fraction);

 private:
  struct Live {
    Lease lease;
    int64_t deadline_ns = 0;  ///< 0 = never expires
    std::string worker;
    int64_t granted_ns = 0;
    int64_t last_heartbeat_ns = 0;
    bool straggler = false;
  };

  LeaseInfo info_locked(const Live& lv, int64_t now_ns) const;

  mutable std::mutex mu_;
  std::deque<Lease> queue_;  ///< unleased ranges, front = next grant
  std::vector<Live> live_;
  uint64_t next_id_ = 1;
  int64_t total_ = 0;
  int64_t completed_ = 0;
  std::vector<double> tps_samples_;  ///< completed-lease trials/sec
};

}  // namespace ge::net
