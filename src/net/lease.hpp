// ge::net::LeaseTable — work-stealing partition of one campaign's trial
// space. The trial space [0, total) is cut into fixed-size chunks; any
// executor (the server's own, or a remote worker) leases the next chunk,
// runs it via run_campaign_trials{lease_lo, lease_hi}, and returns the
// resulting CampaignProgress part. Because every trial is a pure function
// of (seed, site index, trial index), it does not matter who runs which
// chunk or in what order — the merged parts are bitwise identical to an
// unpartitioned run (the same argument as static shards, DESIGN.md §9).
//
// Fault tolerance: each lease carries a deadline. A worker renews it by
// heartbeating; a worker that dies (EOF on its connection) or goes silent
// past the deadline has its range reclaimed — pushed back to the front of
// the queue so recovery work starts immediately. A reclaimed lease's id
// is dead: a late result for it is discarded (complete() returns false),
// which keeps merged done sets disjoint even when a presumed-dead worker
// was merely slow.
//
// Time is injected (now_ns parameters) rather than read from a clock, so
// tests drive expiry deterministically. Thread-safe: server session
// threads grant/heartbeat/complete concurrently with the executor.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace ge::net {

struct Lease {
  uint64_t id = 0;
  int64_t lo = 0;
  int64_t hi = 0;
};

class LeaseTable {
 public:
  /// Start a new campaign: trial space [0, total), handed out in chunks
  /// of `chunk` trials (the final chunk may be short).
  void reset(int64_t total, int64_t chunk);

  /// Lease the next available range. The lease expires at
  /// now_ns + timeout_ns unless renewed; timeout_ns <= 0 means the lease
  /// never expires (the server's own executor cannot die separately).
  /// Returns false when no range is currently available — either all
  /// trials are leased out or done.
  bool grant(int64_t now_ns, int64_t timeout_ns, Lease* out);

  /// Renew a live lease's deadline. False when the id is unknown —
  /// already completed, or reclaimed (the worker should drop the work).
  bool heartbeat(uint64_t id, int64_t now_ns, int64_t timeout_ns);

  /// Mark a lease's range as done. False when the id was reclaimed or
  /// never existed: the caller must DISCARD the result, its range has
  /// been (or will be) re-run by someone else.
  bool complete(uint64_t id);

  /// Abandon a live lease immediately (worker connection died). Its range
  /// goes back to the front of the queue. False when the id is unknown.
  bool abandon(uint64_t id);

  /// Reclaim every lease whose deadline passed; ranges go back to the
  /// front of the queue. Returns how many were reclaimed.
  int reclaim_expired(int64_t now_ns);

  /// True once every trial range has been completed.
  bool all_done() const;
  /// Trials in ranges not yet leased (or reclaimed back).
  int64_t unleased_trials() const;
  /// Currently outstanding (live) leases.
  int64_t live_leases() const;

 private:
  struct Live {
    Lease lease;
    int64_t deadline_ns = 0;  ///< 0 = never expires
  };

  mutable std::mutex mu_;
  std::deque<Lease> queue_;  ///< unleased ranges, front = next grant
  std::vector<Live> live_;
  uint64_t next_id_ = 1;
  int64_t total_ = 0;
  int64_t completed_ = 0;
};

}  // namespace ge::net
