#include "net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace ge::net {

namespace {

std::string errno_message() { return std::strerror(errno); }

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

int Socket::release() noexcept {
  int fd = fd_;
  fd_ = -1;
  return fd;
}

bool Socket::send_all(const void* data, size_t n) const {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    ssize_t sent = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (sent == 0) return false;
    p += sent;
    n -= static_cast<size_t>(sent);
  }
  return true;
}

bool Socket::recv_all(void* data, size_t n) const {
  char* p = static_cast<char*>(data);
  while (n > 0) {
    ssize_t got = ::recv(fd_, p, n, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;  // orderly EOF before n bytes
    p += got;
    n -= static_cast<size_t>(got);
  }
  return true;
}

ssize_t Socket::recv_some(void* data, size_t n) const {
  for (;;) {
    ssize_t got = ::recv(fd_, data, n, 0);
    if (got < 0 && errno == EINTR) continue;
    return got;
  }
}

int Socket::wait_readable(int timeout_ms) const {
  struct pollfd pfd;
  pfd.fd = fd_;
  pfd.events = POLLIN;
  pfd.revents = 0;
  for (;;) {
    int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0 && errno == EINTR) continue;
    return rc < 0 ? -1 : (rc > 0 ? 1 : 0);
  }
}

ListenResult listen_loopback(int port, int backlog) {
  ListenResult r;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    r.error = "socket: " + errno_message();
    return r;
  }
  Socket sock(fd);

  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    r.error = "bind 127.0.0.1:" + std::to_string(port) + ": " +
              errno_message();
    return r;
  }
  if (::listen(fd, backlog) != 0) {
    r.error = "listen: " + errno_message();
    return r;
  }

  // Recover the kernel-assigned port when the caller asked for 0.
  struct sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound), &len) !=
      0) {
    r.error = "getsockname: " + errno_message();
    return r;
  }
  r.port = static_cast<int>(ntohs(bound.sin_port));
  r.sock = std::move(sock);
  return r;
}

Socket accept_connection(const Socket& listener, int timeout_ms) {
  // The listener fd is blocking, so accept() may only be called once poll
  // has reported a pending connection — that includes the timeout-0 drain
  // case (poll with timeout 0 is an immediate readiness check). Calling
  // accept() on an empty backlog would block forever.
  int rc = listener.wait_readable(timeout_ms);
  if (rc <= 0) return Socket();
  for (;;) {
    int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd < 0 && errno == EINTR) continue;
    return fd < 0 ? Socket() : Socket(fd);
  }
}

Socket connect_to(const std::string& host, int port, std::string* error) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = "socket: " + errno_message();
    return Socket();
  }
  Socket sock(fd);

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error) *error = "invalid IPv4 address: " + host;
    return Socket();
  }
  for (;;) {
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      break;
    }
    if (errno == EINTR) continue;
    if (error) {
      *error = "connect " + host + ":" + std::to_string(port) + ": " +
               errno_message();
    }
    return Socket();
  }
  return sock;
}

}  // namespace ge::net
