#include "net/server.hpp"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <span>
#include <thread>

#include "io/campaign_state.hpp"
#include "io/container.hpp"
#include "obs/run_log.hpp"
#include "obs/telemetry.hpp"

namespace ge::net {

namespace {

int64_t now_ns() { return obs::now_ns(); }

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace

Server::Server(const ServeOptions& opts, obs::RunLog* log)
    : opts_(opts), log_(log) {
  ListenResult lr = listen_loopback(opts_.port);
  if (!lr.sock.valid()) {
    error_ = lr.error;
    return;
  }
  listen_ = std::move(lr.sock);
  port_ = lr.port;
}

Server::~Server() = default;

void Server::log_event(const char* type, const std::string& detail,
                       uint64_t campaign_id, int64_t a, int64_t b) {
  if (log_ == nullptr) return;
  std::lock_guard<std::mutex> lock(log_mu_);
  obs::JsonObject row;
  row.str("detail", detail);
  if (campaign_id != 0) row.num("campaign", campaign_id);
  if (a >= 0) row.num("a", a);
  if (b >= 0) row.num("b", b);
  row.num("active_sessions",
          static_cast<int64_t>(active_sessions_.load(std::memory_order_relaxed)));
  log_->event(type, row);
}

std::shared_ptr<Server::Campaign> Server::active_campaign() {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

int Server::run() {
  if (!ok()) return 1;
  obs::log(1, "serve: listening on 127.0.0.1:" + std::to_string(port_));
  std::thread executor([this] { executor_loop(); });

  while (!stop_.load(std::memory_order_relaxed)) {
    Socket conn = accept_connection(listen_, /*timeout_ms=*/100);
    if (!conn.valid()) continue;
    obs::add(obs::Counter::kNetRequests);
    std::lock_guard<std::mutex> lock(threads_mu_);
    session_threads_.emplace_back(
        [this](Socket s) { session_thread(std::move(s)); }, std::move(conn));
  }

  // Drain: the executor finishes (or checkpoints) the active campaign and
  // refuses the queue; then session threads notice shutdown_sessions_ on
  // their next poll tick and wind down.
  executor.join();
  shutdown_sessions_.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    for (std::thread& t : session_threads_) t.join();
  }
  log_event("serve_exit", "graceful shutdown", 0, served_);
  obs::log(1, "serve: drained, exiting");
  return 0;
}

void Server::session_thread(Socket sock) {
  active_sessions_.fetch_add(1, std::memory_order_relaxed);
  obs::set_gauge("net.active_sessions",
                 static_cast<double>(active_sessions_.load()));
  auto chan = std::make_shared<FrameChannel>(
      std::move(sock), "serve: client connection");
  try {
    // Handshake: first frame must be a hello naming the peer's role.
    bool timed_out = false;
    std::optional<Frame> f;
    while (!shutdown_sessions_.load(std::memory_order_relaxed)) {
      f = chan->recv_wait(100, &timed_out);
      if (!timed_out) break;
    }
    if (f.has_value() && f->type == FrameType::kHello) {
      const HelloMsg hello = decode_hello(f->payload, chan->context());
      log_event("session_start",
                hello.role == HelloMsg::kRoleWorker ? "worker" : "submit");
      if (hello.role == HelloMsg::kRoleWorker) {
        serve_worker(chan, hello.client);
      } else {
        serve_submit(chan, hello.client);
      }
    }
  } catch (const std::exception& e) {
    // A lying or vanished peer only costs its own session.
    obs::log(1, std::string("serve: session error: ") + e.what());
    log_event("session_error", e.what());
  }
  active_sessions_.fetch_sub(1, std::memory_order_relaxed);
  obs::set_gauge("net.active_sessions",
                 static_cast<double>(active_sessions_.load()));
  log_event("session_end", "");
}

void Server::serve_submit(std::shared_ptr<FrameChannel> chan,
                          const std::string& who) {
  bool timed_out = false;
  std::optional<Frame> f;
  do {
    f = chan->recv_wait(100, &timed_out);
    if (shutdown_sessions_.load(std::memory_order_relaxed)) return;
  } while (timed_out);
  if (!f.has_value()) return;  // client left before submitting
  if (f->type != FrameType::kSubmit) {
    chan->send(FrameType::kError,
               encode_error({"expected a submit frame, got " +
                             std::string(frame_type_name(f->type))}));
    return;
  }
  if (stop_.load(std::memory_order_relaxed)) {
    chan->send(FrameType::kError,
               encode_error({"server is draining; resubmit later"}));
    return;
  }

  auto c = std::make_shared<Campaign>();
  c->spec = decode_campaign_spec(f->payload, chan->context());
  // The executor co-owns the channel: even if this session thread exits
  // first (client closed early), the executor's sends hit a live object
  // and fail cleanly instead of touching freed memory.
  c->chan = chan;
  {
    std::lock_guard<std::mutex> lock(mu_);
    c->id = next_campaign_id_++;
    queue_.push_back(c);
  }
  cv_.notify_all();
  log_event("campaign_queued", c->spec.format_spec + " " + who, c->id);

  // Hold the connection open until the peer closes it (it does so after
  // kDone / kError / kCheckpointed) or the server winds down.
  for (;;) {
    f = chan->recv_wait(100, &timed_out);
    if (!timed_out) break;  // EOF or a stray frame — either way, done
    if (shutdown_sessions_.load(std::memory_order_relaxed)) break;
  }
}

void Server::serve_worker(std::shared_ptr<FrameChannel> chan,
                          const std::string& who) {
  // Leases this connection currently holds; abandoned if the worker dies.
  std::vector<std::pair<std::shared_ptr<Campaign>, uint64_t>> held;
  const auto abandon_all = [&] {
    for (auto& [campaign, lease_id] : held) {
      if (campaign->leases.abandon(lease_id)) {
        log_event("lease_abandoned", who, campaign->id,
                  static_cast<int64_t>(lease_id));
      }
    }
    held.clear();
  };
  const int64_t timeout_ns =
      static_cast<int64_t>(opts_.lease_timeout_ms) * 1000000;

  // Any exit — clean, EOF, or a protocol violation — returns this
  // worker's outstanding ranges to the queue on the way out.
  try {
  for (;;) {
    if (shutdown_sessions_.load(std::memory_order_relaxed)) {
      abandon_all();
      try {
        chan->send(FrameType::kShutdown, {});
      } catch (const NetError&) {
      }
      return;
    }
    bool timed_out = false;
    std::optional<Frame> f = chan->recv_wait(100, &timed_out);
    if (timed_out) continue;
    if (!f.has_value()) {
      // Worker disconnected (or was killed): its leases go straight back
      // to the queue — the crash-recovery path the CI drill exercises.
      abandon_all();
      return;
    }

    switch (f->type) {
      case FrameType::kLeaseRequest: {
        std::shared_ptr<Campaign> c = active_campaign();
        Lease l;
        if (c != nullptr && c->leases.grant(now_ns(), timeout_ns, &l)) {
          LeaseGrantMsg grant;
          grant.campaign_id = c->id;
          grant.lease_id = l.id;
          grant.lo = static_cast<uint64_t>(l.lo);
          grant.hi = static_cast<uint64_t>(l.hi);
          grant.heartbeat_ms = static_cast<uint32_t>(
              std::max(1, opts_.lease_timeout_ms / 3));
          grant.spec = c->spec;
          held.emplace_back(c, l.id);
          obs::add(obs::Counter::kNetLeasesGranted);
          log_event("lease_grant", who, c->id, l.lo, l.hi);
          chan->send(FrameType::kLeaseGrant, encode_lease_grant(grant));
        } else if (stop_.load(std::memory_order_relaxed)) {
          chan->send(FrameType::kShutdown, {});
          return;
        } else {
          chan->send(FrameType::kNoWork, {});
        }
        break;
      }
      case FrameType::kHeartbeat: {
        const HeartbeatMsg hb = decode_heartbeat(f->payload, chan->context());
        std::shared_ptr<Campaign> c = active_campaign();
        if (c != nullptr && c->id == hb.campaign_id) {
          c->leases.heartbeat(hb.lease_id, now_ns(), timeout_ns);
        }
        break;
      }
      case FrameType::kLeaseResult: {
        const LeaseResultMsg res =
            decode_lease_result(f->payload, chan->context());
        held.erase(std::remove_if(held.begin(), held.end(),
                                  [&](const auto& h) {
                                    return h.second == res.lease_id;
                                  }),
                   held.end());
        std::shared_ptr<Campaign> c = active_campaign();
        if (c == nullptr || c->id != res.campaign_id) break;
        io::ByteReader r(std::span<const uint8_t>(res.progress),
                         chan->context());
        core::CampaignProgress part;
        try {
          part = io::decode_campaign_progress(r);
        } catch (const io::IoError& e) {
          throw NetError(e.what());
        }
        // complete() is the reclaim gate: false means this lease expired
        // and its range was re-leased — a duplicate result that would
        // break merge's disjointness, so it is dropped.
        if (c->leases.complete(res.lease_id)) {
          std::lock_guard<std::mutex> lock(c->mu);
          c->parts.push_back(std::move(part));
          log_event("lease_result", who, c->id,
                    static_cast<int64_t>(res.lease_id));
        } else {
          log_event("lease_result_stale", who, c->id,
                    static_cast<int64_t>(res.lease_id));
        }
        break;
      }
      case FrameType::kLogRow: {
        // Forward the worker's trial rows to whoever submitted the active
        // campaign; a vanished submit client just drops them.
        std::shared_ptr<Campaign> c = active_campaign();
        if (c != nullptr) {
          try {
            c->chan->send(FrameType::kLogRow, std::move(f->payload));
          } catch (const NetError&) {
          }
        }
        break;
      }
      default:
        throw NetError(chan->context() + ": unexpected " +
                       std::string(frame_type_name(f->type)) +
                       " frame from a worker");
    }
  }
  } catch (...) {
    abandon_all();
    throw;
  }
}

void Server::executor_loop() {
  for (;;) {
    std::shared_ptr<Campaign> c;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(100), [&] {
        return !queue_.empty() || stop_.load(std::memory_order_relaxed);
      });
      if (queue_.empty()) {
        if (stop_.load(std::memory_order_relaxed)) break;
        continue;
      }
      if (stop_.load(std::memory_order_relaxed)) break;
      c = queue_.front();
      queue_.pop_front();
      active_ = c;
    }
    execute(c);
    {
      std::lock_guard<std::mutex> lock(mu_);
      active_.reset();
    }
    ++served_;
    if (opts_.max_campaigns > 0 && served_ >= opts_.max_campaigns) {
      stop_.store(true, std::memory_order_relaxed);
      break;
    }
  }
  // Whatever is still queued was accepted before the stop request but
  // never started: refuse it explicitly rather than leaving clients hung.
  std::deque<std::shared_ptr<Campaign>> leftover;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftover.swap(queue_);
  }
  for (const auto& c : leftover) {
    try {
      c->chan->send(FrameType::kError,
                    encode_error({"server drained before this campaign "
                                  "started; resubmit"}));
    } catch (const NetError&) {
    }
    log_event("campaign_refused", "drain", c->id);
  }
}

core::CampaignProgress Server::merge_parts(
    const std::shared_ptr<Campaign>& c) {
  std::vector<core::CampaignProgress> parts;
  {
    std::lock_guard<std::mutex> lock(c->mu);
    parts = c->parts;
  }
  // Lease parts all carry shards=1/shard_index=0; merge only needs the
  // parts to be distinguishable, so relabel each with its position.
  for (size_t i = 0; i < parts.size(); ++i) {
    parts[i].shard_index = static_cast<int>(i);
  }
  return core::merge_campaign_progress(parts);
}

void Server::checkpoint_campaign(const std::shared_ptr<Campaign>& c) {
  bool have_parts = false;
  {
    std::lock_guard<std::mutex> lock(c->mu);
    have_parts = !c->parts.empty();
  }
  if (!have_parts) {
    c->chan->send(FrameType::kError,
                  encode_error({"server drained before any trials of this "
                                "campaign completed; resubmit"}));
    log_event("campaign_refused", "drain timeout, no progress", c->id);
    return;
  }
  const core::CampaignProgress merged = merge_parts(c);
  CheckpointedMsg msg;
  msg.path = opts_.checkpoint_dir + "/campaign_" + std::to_string(c->id) +
             ".gec";
  msg.completed_trials = merged.completed_trials();
  msg.total_trials = merged.total_trials();
  io::save_campaign_progress(msg.path, merged);
  c->chan->send(FrameType::kCheckpointed, encode_checkpointed(msg));
  log_event("campaign_checkpointed", msg.path, c->id, msg.completed_trials,
            msg.total_trials);
}

void Server::execute(const std::shared_ptr<Campaign>& c) {
  log_event("campaign_start", c->spec.format_spec, c->id);
  try {
    PreparedCampaign prep = prepare_campaign(c->spec, opts_.cache_dir);
    const int64_t chunk =
        opts_.lease_chunk > 0
            ? opts_.lease_chunk
            : std::max<int64_t>(1, (prep.total_trials + 7) / 8);
    c->leases.reset(prep.total_trials, chunk);

    // Rows stream through the submit channel as they are produced. If the
    // client disconnects mid-campaign the stream goes bad (badbit — the
    // ostream layer swallows the NetError) and RunLog stops writing; the
    // campaign itself keeps running to completion.
    LineFrameStream row_stream(*c->chan);
    obs::RunLog row_log(row_stream);

    int64_t drain_deadline = 0;
    bool checkpointed = false;
    while (!c->leases.all_done()) {
      c->leases.reclaim_expired(now_ns());
      if (stop_.load(std::memory_order_relaxed) &&
          opts_.drain_timeout_ms > 0) {
        if (drain_deadline == 0) {
          drain_deadline =
              now_ns() + static_cast<int64_t>(opts_.drain_timeout_ms) * 1000000;
          log_event("campaign_draining", "", c->id);
        } else if (now_ns() >= drain_deadline) {
          checkpoint_campaign(c);
          checkpointed = true;
          break;
        }
      }

      Lease l;
      // The executor is a lease holder like any worker — just one whose
      // lease never expires (it cannot die separately from the server).
      if (c->leases.grant(now_ns(), /*timeout_ns=*/0, &l)) {
        core::CampaignRunOptions ropts;
        ropts.model_name = c->spec.model_name;
        ropts.eval_samples = c->spec.samples;
        ropts.lease_lo = l.lo;
        ropts.lease_hi = l.hi;
        ropts.run_log = &row_log;
        core::CampaignProgress part = core::run_campaign_trials(
            *prep.trained.model, prep.batch, prep.cfg, ropts);
        c->leases.complete(l.id);
        std::lock_guard<std::mutex> lock(c->mu);
        c->parts.push_back(std::move(part));
      } else {
        // Everything is leased out to workers: wait for results (or for a
        // reclaim to put a range back on the queue).
        sleep_ms(20);
      }
    }
    if (checkpointed) return;

    const core::CampaignProgress merged = merge_parts(c);
    const core::CampaignResult result = core::finalize_campaign(merged);
    DoneMsg done;
    done.digest = core::campaign_digest(result);
    done.golden_accuracy = result.golden_accuracy;
    done.summary = render_campaign_summary(c->spec, result);
    c->chan->send(FrameType::kDone, encode_done(done));
    log_event("campaign_done", c->spec.format_spec, c->id,
              merged.completed_trials(), merged.total_trials());
  } catch (const NetError& e) {
    // Bad spec, or the submit client vanished at the final send. Best
    // effort: tell the client, keep the daemon alive.
    try {
      c->chan->send(FrameType::kError, encode_error({e.what()}));
    } catch (const NetError&) {
    }
    log_event("campaign_error", e.what(), c->id);
  } catch (const std::exception& e) {
    try {
      c->chan->send(FrameType::kError, encode_error({e.what()}));
    } catch (const NetError&) {
    }
    log_event("campaign_error", e.what(), c->id);
  }
}

namespace {

std::atomic<Server*> g_signal_server{nullptr};

void handle_stop_signal(int) {
  Server* s = g_signal_server.load(std::memory_order_relaxed);
  if (s != nullptr) s->request_stop();
}

}  // namespace

int run_serve(const ServeOptions& opts, obs::RunLog* log, std::ostream& err) {
  Server server(opts, log);
  if (!server.ok()) {
    err << "serve: " << server.last_error() << "\n";
    return 1;
  }
  err << "serve: listening on 127.0.0.1:" << server.port() << "\n";

  g_signal_server.store(&server, std::memory_order_relaxed);
  struct sigaction sa;
  sa.sa_handler = handle_stop_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: interrupt blocking calls promptly
  struct sigaction old_int, old_term;
  sigaction(SIGINT, &sa, &old_int);
  sigaction(SIGTERM, &sa, &old_term);

  const int code = server.run();

  sigaction(SIGINT, &old_int, nullptr);
  sigaction(SIGTERM, &old_term, nullptr);
  g_signal_server.store(nullptr, std::memory_order_relaxed);
  return code;
}

}  // namespace ge::net
