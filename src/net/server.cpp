#include "net/server.hpp"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <span>
#include <thread>

#include "io/campaign_state.hpp"
#include "io/container.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics_server.hpp"
#include "obs/run_log.hpp"
#include "obs/telemetry.hpp"

namespace ge::net {

namespace {

int64_t now_ns() { return obs::now_ns(); }

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Straggler sweeps are cheap but run from heartbeat handlers and the
/// executor's poll loop; once per 250ms fleet-wide is plenty.
constexpr int64_t kStragglerSweepIntervalNs = 250 * 1000000ll;

/// Nearest-rank quantile over an unsorted copy (small /status sample sets).
double sample_quantile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  const size_t idx = std::min(
      v.size() - 1, static_cast<size_t>(q * static_cast<double>(v.size())));
  std::nth_element(v.begin(), v.begin() + static_cast<ptrdiff_t>(idx),
                   v.end());
  return v[static_cast<ptrdiff_t>(idx)];
}

}  // namespace

Server::Server(const ServeOptions& opts, obs::RunLog* log)
    : opts_(opts), log_(log) {
  ListenResult lr = listen_loopback(opts_.port);
  if (!lr.sock.valid()) {
    error_ = lr.error;
    return;
  }
  listen_ = std::move(lr.sock);
  port_ = lr.port;
}

Server::~Server() = default;

void Server::log_event(const char* type, const std::string& detail,
                       uint64_t campaign_id, int64_t a, int64_t b) {
  if (log_ == nullptr) return;
  std::lock_guard<std::mutex> lock(log_mu_);
  obs::JsonObject row;
  row.str("detail", detail);
  if (campaign_id != 0) row.num("campaign", campaign_id);
  if (a >= 0) row.num("a", a);
  if (b >= 0) row.num("b", b);
  row.num("active_sessions",
          static_cast<int64_t>(active_sessions_.load(std::memory_order_relaxed)));
  log_->event(type, row);
}

void Server::log_service_event(const char* kind, const std::string& detail,
                               uint64_t campaign_id, int64_t a, int64_t b) {
  if (log_ == nullptr) return;
  std::lock_guard<std::mutex> lock(log_mu_);
  obs::JsonObject row;
  row.str("kind", kind);
  row.str("detail", detail);
  if (campaign_id != 0) row.num("campaign", campaign_id);
  if (a >= 0) row.num("a", a);
  if (b >= 0) row.num("b", b);
  log_->event("service", row);
}

void Server::note_lease_complete(const LeaseInfo& info) {
  const std::string name = info.worker.empty() ? "local" : info.worker;
  const double secs = static_cast<double>(info.age_ns) / 1e9;
  const double tps =
      secs > 0.0 ? static_cast<double>(info.hi - info.lo) / secs : 0.0;
  {
    std::lock_guard<std::mutex> lock(wstats_mu_);
    WorkerStats& ws = worker_stats_[name];
    ws.leases += 1;
    ws.trials += info.hi - info.lo;
    if (secs > 0.0) {
      ws.busy_seconds += secs;
      // Recent-window samples back the /status per-worker quantiles; the
      // cap keeps a long-lived daemon's map bounded.
      if (ws.tps.size() >= 128) ws.tps.erase(ws.tps.begin());
      ws.tps.push_back(tps);
    }
  }
  if (tps > 0.0) obs::histogram("net.worker_trials_per_sec").record(tps);
}

void Server::straggler_sweep(const std::shared_ptr<Campaign>& c) {
  if (opts_.straggler_fraction <= 0.0 || c == nullptr) return;
  const int64_t now = now_ns();
  int64_t last = c->straggler_check_ns.load(std::memory_order_relaxed);
  if (now - last < kStragglerSweepIntervalNs) return;
  if (!c->straggler_check_ns.compare_exchange_strong(
          last, now, std::memory_order_relaxed)) {
    return;  // another thread is sweeping this window
  }
  for (const LeaseInfo& li :
       c->leases.flag_stragglers(now, opts_.straggler_fraction)) {
    log_service_event("lease_straggler", li.worker, c->id,
                      static_cast<int64_t>(li.id), li.lo);
    obs::log(1, "serve: lease " + std::to_string(li.id) + " [" +
                    std::to_string(li.lo) + "," + std::to_string(li.hi) +
                    ") on '" + li.worker + "' flagged as straggler");
  }
}

std::string Server::status_json() {
  const int64_t now = now_ns();
  std::shared_ptr<Campaign> active;
  std::vector<std::shared_ptr<Campaign>> queued;
  {
    std::lock_guard<std::mutex> lock(mu_);
    active = active_;
    queued.assign(queue_.begin(), queue_.end());
  }

  obs::JsonObject o;
  o.num("queue_depth", static_cast<int64_t>(queued.size()));
  o.num("active_sessions",
        static_cast<int64_t>(active_sessions_.load(std::memory_order_relaxed)));
  o.num("served_campaigns", served_.load(std::memory_order_relaxed));

  std::string campaigns = "[";
  std::string leases = "[";
  bool first = true;
  const auto campaign_row = [&](const std::shared_ptr<Campaign>& c,
                                const char* state, int64_t position) {
    obs::JsonObject row;
    row.num("id", c->id);
    row.str("state", state);
    if (position >= 0) row.num("queue_position", position);
    row.str("format", c->spec.format_spec);
    row.str("submitter", c->submitter);
    row.num("completed_trials", c->leases.completed_trials());
    row.num("total_trials", c->leases.total_trials());
    row.num("age_seconds",
            c->enqueue_ns > 0
                ? static_cast<double>(now - c->enqueue_ns) / 1e9
                : 0.0);
    if (!first) campaigns += ',';
    first = false;
    campaigns += row.render();
  };
  if (active != nullptr) campaign_row(active, "active", -1);
  for (size_t i = 0; i < queued.size(); ++i) {
    campaign_row(queued[i], "queued", static_cast<int64_t>(i));
  }
  campaigns += ']';

  if (active != nullptr) {
    bool lease_first = true;
    for (const LeaseInfo& li : active->leases.snapshot(now)) {
      obs::JsonObject row;
      row.num("id", li.id);
      row.num("campaign", active->id);
      row.num("lo", li.lo);
      row.num("hi", li.hi);
      row.str("worker", li.worker.empty() ? "local" : li.worker);
      row.num("age_seconds", static_cast<double>(li.age_ns) / 1e9);
      row.num("since_heartbeat_seconds",
              static_cast<double>(li.since_heartbeat_ns) / 1e9);
      row.boolean("expires", li.expires);
      row.boolean("straggler", li.straggler);
      if (!lease_first) leases += ',';
      lease_first = false;
      leases += row.render();
    }
  }
  leases += ']';

  std::string workers = "[";
  {
    std::lock_guard<std::mutex> lock(wstats_mu_);
    bool wfirst = true;
    for (const auto& [name, ws] : worker_stats_) {
      obs::JsonObject row;
      row.str("name", name);
      row.num("leases_completed", ws.leases);
      row.num("trials", ws.trials);
      row.num("busy_seconds", ws.busy_seconds);
      obs::JsonObject hist;
      hist.num("count", static_cast<int64_t>(ws.tps.size()));
      double sum = 0.0;
      for (double v : ws.tps) sum += v;
      hist.num("mean",
               ws.tps.empty() ? 0.0
                              : sum / static_cast<double>(ws.tps.size()));
      hist.num("p50", sample_quantile(ws.tps, 0.5));
      hist.num("p90", sample_quantile(ws.tps, 0.9));
      row.raw("trials_per_sec", hist.render());
      if (!wfirst) workers += ',';
      wfirst = false;
      workers += row.render();
    }
  }
  workers += ']';

  o.raw("campaigns", campaigns);
  o.raw("leases", leases);
  o.raw("workers", workers);
  return o.render();
}

std::shared_ptr<Server::Campaign> Server::active_campaign() {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

int Server::run() {
  if (!ok()) return 1;
  obs::log(1, "serve: listening on 127.0.0.1:" + std::to_string(port_));
  // Expose the live queue/lease/worker tables to GET /status for the
  // lifetime of the serve loop; set_status_source(nullptr) below blocks
  // until any in-flight scrape has left status_json().
  obs::set_status_source([this] { return status_json(); });
  std::thread executor([this] { executor_loop(); });

  while (!stop_.load(std::memory_order_relaxed)) {
    Socket conn = accept_connection(listen_, /*timeout_ms=*/100);
    if (!conn.valid()) continue;
    obs::add(obs::Counter::kNetRequests);
    std::lock_guard<std::mutex> lock(threads_mu_);
    session_threads_.emplace_back(
        [this](Socket s) { session_thread(std::move(s)); }, std::move(conn));
  }

  // Drain: the executor finishes (or checkpoints) the active campaign and
  // refuses the queue; then session threads notice shutdown_sessions_ on
  // their next poll tick and wind down.
  executor.join();
  shutdown_sessions_.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    for (std::thread& t : session_threads_) t.join();
  }
  obs::set_status_source(nullptr);
  log_event("serve_exit", "graceful shutdown", 0,
            served_.load(std::memory_order_relaxed));
  obs::log(1, "serve: drained, exiting");
  return 0;
}

void Server::session_thread(Socket sock) {
  active_sessions_.fetch_add(1, std::memory_order_relaxed);
  obs::set_gauge("net.active_sessions",
                 static_cast<double>(active_sessions_.load()));
  auto chan = std::make_shared<FrameChannel>(
      std::move(sock), "serve: client connection");
  try {
    // Handshake: first frame must be a hello naming the peer's role.
    bool timed_out = false;
    std::optional<Frame> f;
    while (!shutdown_sessions_.load(std::memory_order_relaxed)) {
      f = chan->recv_wait(100, &timed_out);
      if (!timed_out) break;
    }
    if (f.has_value() && f->type == FrameType::kHello) {
      const HelloMsg hello = decode_hello(f->payload, chan->context());
      log_event("session_start",
                hello.role == HelloMsg::kRoleWorker ? "worker" : "submit");
      if (hello.role == HelloMsg::kRoleWorker) {
        serve_worker(chan, hello.client);
      } else {
        serve_submit(chan, hello.client);
      }
    }
  } catch (const std::exception& e) {
    // A lying or vanished peer only costs its own session.
    obs::log(1, std::string("serve: session error: ") + e.what());
    log_event("session_error", e.what());
  }
  active_sessions_.fetch_sub(1, std::memory_order_relaxed);
  obs::set_gauge("net.active_sessions",
                 static_cast<double>(active_sessions_.load()));
  log_event("session_end", "");
}

void Server::serve_submit(std::shared_ptr<FrameChannel> chan,
                          const std::string& who) {
  bool timed_out = false;
  std::optional<Frame> f;
  do {
    f = chan->recv_wait(100, &timed_out);
    if (shutdown_sessions_.load(std::memory_order_relaxed)) return;
  } while (timed_out);
  if (!f.has_value()) return;  // client left before submitting
  if (f->type != FrameType::kSubmit) {
    chan->send(FrameType::kError,
               encode_error({"expected a submit frame, got " +
                             std::string(frame_type_name(f->type))}));
    return;
  }
  if (stop_.load(std::memory_order_relaxed)) {
    chan->send(FrameType::kError,
               encode_error({"server is draining; resubmit later"}));
    return;
  }

  auto c = std::make_shared<Campaign>();
  c->spec = decode_campaign_spec(f->payload, chan->context());
  // The executor co-owns the channel: even if this session thread exits
  // first (client closed early), the executor's sends hit a live object
  // and fail cleanly instead of touching freed memory.
  c->chan = chan;
  c->submitter = who;
  c->enqueue_ns = now_ns();
  {
    std::lock_guard<std::mutex> lock(mu_);
    c->id = next_campaign_id_++;
    queue_.push_back(c);
  }
  cv_.notify_all();
  log_event("campaign_queued", c->spec.format_spec + " " + who, c->id);

  // The session span is a direct child of the client's propagated submit
  // span: it covers the whole held-open connection, so the merged trace
  // shows how long this campaign occupied a server session slot.
  obs::TraceContextScope trace_ctx(
      obs::TraceContext{c->spec.trace_id, c->spec.parent_span_id});
  obs::Span session_span("net", "server_session", who);

  // Hold the connection open until the peer closes it (it does so after
  // kDone / kError / kCheckpointed) or the server winds down.
  for (;;) {
    f = chan->recv_wait(100, &timed_out);
    if (!timed_out) break;  // EOF or a stray frame — either way, done
    if (shutdown_sessions_.load(std::memory_order_relaxed)) break;
  }
}

void Server::serve_worker(std::shared_ptr<FrameChannel> chan,
                          const std::string& who) {
  // Leases this connection currently holds; abandoned if the worker dies.
  std::vector<std::pair<std::shared_ptr<Campaign>, uint64_t>> held;
  const auto abandon_all = [&] {
    for (auto& [campaign, lease_id] : held) {
      if (campaign->leases.abandon(lease_id)) {
        log_event("lease_abandoned", who, campaign->id,
                  static_cast<int64_t>(lease_id));
      }
    }
    held.clear();
  };
  const int64_t timeout_ns =
      static_cast<int64_t>(opts_.lease_timeout_ms) * 1000000;

  // Any exit — clean, EOF, or a protocol violation — returns this
  // worker's outstanding ranges to the queue on the way out.
  try {
  for (;;) {
    if (shutdown_sessions_.load(std::memory_order_relaxed)) {
      abandon_all();
      try {
        chan->send(FrameType::kShutdown, {});
      } catch (const NetError&) {
      }
      return;
    }
    bool timed_out = false;
    std::optional<Frame> f = chan->recv_wait(100, &timed_out);
    if (timed_out) continue;
    if (!f.has_value()) {
      // Worker disconnected (or was killed): its leases go straight back
      // to the queue — the crash-recovery path the CI drill exercises.
      abandon_all();
      return;
    }

    switch (f->type) {
      case FrameType::kLeaseRequest: {
        std::shared_ptr<Campaign> c = active_campaign();
        Lease l;
        if (c != nullptr && c->leases.grant(now_ns(), timeout_ns, &l, who)) {
          // The grant span parents under the propagated submit context;
          // the spec inside the grant carries the same context onward, so
          // the worker's lease spans join the same tree.
          obs::TraceContextScope trace_ctx(
              obs::TraceContext{c->spec.trace_id, c->spec.parent_span_id});
          obs::Span grant_span("net", "lease_grant", who);
          LeaseGrantMsg grant;
          grant.campaign_id = c->id;
          grant.lease_id = l.id;
          grant.lo = static_cast<uint64_t>(l.lo);
          grant.hi = static_cast<uint64_t>(l.hi);
          grant.heartbeat_ms = static_cast<uint32_t>(
              std::max(1, opts_.lease_timeout_ms / 3));
          grant.spec = c->spec;
          held.emplace_back(c, l.id);
          obs::add(obs::Counter::kNetLeasesGranted);
          log_event("lease_grant", who, c->id, l.lo, l.hi);
          chan->send(FrameType::kLeaseGrant, encode_lease_grant(grant));
        } else if (stop_.load(std::memory_order_relaxed)) {
          chan->send(FrameType::kShutdown, {});
          return;
        } else {
          chan->send(FrameType::kNoWork, {});
        }
        break;
      }
      case FrameType::kHeartbeat: {
        const HeartbeatMsg hb = decode_heartbeat(f->payload, chan->context());
        std::shared_ptr<Campaign> c = active_campaign();
        if (c != nullptr && c->id == hb.campaign_id) {
          c->leases.heartbeat(hb.lease_id, now_ns(), timeout_ns);
          // Heartbeats arrive at a steady fleet-wide cadence — a natural
          // (rate-limited) place to compare leases against the median.
          straggler_sweep(c);
        }
        break;
      }
      case FrameType::kLeaseResult: {
        const LeaseResultMsg res =
            decode_lease_result(f->payload, chan->context());
        held.erase(std::remove_if(held.begin(), held.end(),
                                  [&](const auto& h) {
                                    return h.second == res.lease_id;
                                  }),
                   held.end());
        std::shared_ptr<Campaign> c = active_campaign();
        if (c == nullptr || c->id != res.campaign_id) break;
        io::ByteReader r(std::span<const uint8_t>(res.progress),
                         chan->context());
        core::CampaignProgress part;
        try {
          part = io::decode_campaign_progress(r);
        } catch (const io::IoError& e) {
          throw NetError(e.what());
        }
        // complete() is the reclaim gate: false means this lease expired
        // and its range was re-leased — a duplicate result that would
        // break merge's disjointness, so it is dropped.
        LeaseInfo done_info;
        if (c->leases.complete(res.lease_id, now_ns(), &done_info)) {
          note_lease_complete(done_info);
          std::lock_guard<std::mutex> lock(c->mu);
          c->parts.push_back(std::move(part));
          log_event("lease_result", who, c->id,
                    static_cast<int64_t>(res.lease_id));
        } else {
          log_event("lease_result_stale", who, c->id,
                    static_cast<int64_t>(res.lease_id));
        }
        break;
      }
      case FrameType::kLogRow: {
        // Forward the worker's trial rows to whoever submitted the active
        // campaign; a vanished submit client just drops them.
        std::shared_ptr<Campaign> c = active_campaign();
        if (c != nullptr) {
          try {
            c->chan->send(FrameType::kLogRow, std::move(f->payload));
          } catch (const NetError&) {
          }
        }
        break;
      }
      default:
        throw NetError(chan->context() + ": unexpected " +
                       std::string(frame_type_name(f->type)) +
                       " frame from a worker");
    }
  }
  } catch (...) {
    abandon_all();
    throw;
  }
}

void Server::executor_loop() {
  for (;;) {
    std::shared_ptr<Campaign> c;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(100), [&] {
        return !queue_.empty() || stop_.load(std::memory_order_relaxed);
      });
      if (queue_.empty()) {
        if (stop_.load(std::memory_order_relaxed)) break;
        continue;
      }
      if (stop_.load(std::memory_order_relaxed)) break;
      c = queue_.front();
      queue_.pop_front();
      active_ = c;
    }
    execute(c);
    {
      std::lock_guard<std::mutex> lock(mu_);
      active_.reset();
    }
    ++served_;
    if (opts_.max_campaigns > 0 && served_ >= opts_.max_campaigns) {
      stop_.store(true, std::memory_order_relaxed);
      break;
    }
  }
  // Whatever is still queued was accepted before the stop request but
  // never started: refuse it explicitly rather than leaving clients hung.
  std::deque<std::shared_ptr<Campaign>> leftover;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftover.swap(queue_);
  }
  for (const auto& c : leftover) {
    try {
      c->chan->send(FrameType::kError,
                    encode_error({"server drained before this campaign "
                                  "started; resubmit"}));
    } catch (const NetError&) {
    }
    log_event("campaign_refused", "drain", c->id);
  }
}

core::CampaignProgress Server::merge_parts(
    const std::shared_ptr<Campaign>& c) {
  std::vector<core::CampaignProgress> parts;
  {
    std::lock_guard<std::mutex> lock(c->mu);
    parts = c->parts;
  }
  // Lease parts all carry shards=1/shard_index=0; merge only needs the
  // parts to be distinguishable, so relabel each with its position.
  for (size_t i = 0; i < parts.size(); ++i) {
    parts[i].shard_index = static_cast<int>(i);
  }
  return core::merge_campaign_progress(parts);
}

void Server::checkpoint_campaign(const std::shared_ptr<Campaign>& c) {
  bool have_parts = false;
  {
    std::lock_guard<std::mutex> lock(c->mu);
    have_parts = !c->parts.empty();
  }
  if (!have_parts) {
    c->chan->send(FrameType::kError,
                  encode_error({"server drained before any trials of this "
                                "campaign completed; resubmit"}));
    log_event("campaign_refused", "drain timeout, no progress", c->id);
    return;
  }
  const core::CampaignProgress merged = merge_parts(c);
  CheckpointedMsg msg;
  msg.path = opts_.checkpoint_dir + "/campaign_" + std::to_string(c->id) +
             ".gec";
  msg.completed_trials = merged.completed_trials();
  msg.total_trials = merged.total_trials();
  io::save_campaign_progress(msg.path, merged);
  c->chan->send(FrameType::kCheckpointed, encode_checkpointed(msg));
  log_event("campaign_checkpointed", msg.path, c->id, msg.completed_trials,
            msg.total_trials);
}

void Server::execute(const std::shared_ptr<Campaign>& c) {
  log_event("campaign_start", c->spec.format_spec, c->id);
  // Install the submit client's propagated context for the whole
  // execution: queue_wait and execute become siblings under the client's
  // root span, and every campaign/pool span recorded on this thread nests
  // under execute automatically.
  obs::TraceContextScope trace_ctx(
      obs::TraceContext{c->spec.trace_id, c->spec.parent_span_id});
  if (c->enqueue_ns > 0) {
    // Queue wait was measured across threads (stamped at enqueue on the
    // session thread, closed here), so it is recorded, not scoped.
    obs::record_span("net", "queue_wait", c->enqueue_ns,
                     now_ns() - c->enqueue_ns);
  }
  obs::Span exec_span("net", "execute", "campaign_" + std::to_string(c->id));
  try {
    PreparedCampaign prep = prepare_campaign(c->spec, opts_.cache_dir);
    const int64_t chunk =
        opts_.lease_chunk > 0
            ? opts_.lease_chunk
            : std::max<int64_t>(1, (prep.total_trials + 7) / 8);
    c->leases.reset(prep.total_trials, chunk);

    // Rows stream through the submit channel as they are produced. If the
    // client disconnects mid-campaign the stream goes bad (badbit — the
    // ostream layer swallows the NetError) and RunLog stops writing; the
    // campaign itself keeps running to completion.
    LineFrameStream row_stream(*c->chan);
    obs::RunLog row_log(row_stream);

    int64_t drain_deadline = 0;
    bool checkpointed = false;
    while (!c->leases.all_done()) {
      const int reclaimed = c->leases.reclaim_expired(now_ns());
      if (reclaimed > 0) {
        log_service_event("lease_reclaimed", "expired", c->id, reclaimed);
      }
      straggler_sweep(c);
      if (stop_.load(std::memory_order_relaxed) &&
          opts_.drain_timeout_ms > 0) {
        if (drain_deadline == 0) {
          drain_deadline =
              now_ns() + static_cast<int64_t>(opts_.drain_timeout_ms) * 1000000;
          log_event("campaign_draining", "", c->id);
        } else if (now_ns() >= drain_deadline) {
          checkpoint_campaign(c);
          checkpointed = true;
          break;
        }
      }

      Lease l;
      // The executor is a lease holder like any worker — just one whose
      // lease never expires (it cannot die separately from the server).
      if (c->leases.grant(now_ns(), /*timeout_ns=*/0, &l)) {
        obs::Span lease_span("net", "lease_execute",
                             std::to_string(l.lo) + "-" + std::to_string(l.hi));
        core::CampaignRunOptions ropts;
        ropts.model_name = c->spec.model_name;
        ropts.eval_samples = c->spec.samples;
        ropts.lease_lo = l.lo;
        ropts.lease_hi = l.hi;
        ropts.run_log = &row_log;
        core::CampaignProgress part = core::run_campaign_trials(
            *prep.trained.model, prep.batch, prep.cfg, ropts);
        LeaseInfo done_info;
        c->leases.complete(l.id, now_ns(), &done_info);
        note_lease_complete(done_info);
        std::lock_guard<std::mutex> lock(c->mu);
        c->parts.push_back(std::move(part));
      } else {
        // Everything is leased out to workers: wait for results (or for a
        // reclaim to put a range back on the queue).
        sleep_ms(20);
      }
    }
    if (checkpointed) return;

    const core::CampaignProgress merged = merge_parts(c);
    const core::CampaignResult result = core::finalize_campaign(merged);
    DoneMsg done;
    done.digest = core::campaign_digest(result);
    done.golden_accuracy = result.golden_accuracy;
    done.summary = render_campaign_summary(c->spec, result);
    c->chan->send(FrameType::kDone, encode_done(done));
    log_event("campaign_done", c->spec.format_spec, c->id,
              merged.completed_trials(), merged.total_trials());
  } catch (const NetError& e) {
    // Bad spec, or the submit client vanished at the final send. Best
    // effort: tell the client, keep the daemon alive.
    try {
      c->chan->send(FrameType::kError, encode_error({e.what()}));
    } catch (const NetError&) {
    }
    log_event("campaign_error", e.what(), c->id);
  } catch (const std::exception& e) {
    try {
      c->chan->send(FrameType::kError, encode_error({e.what()}));
    } catch (const NetError&) {
    }
    log_event("campaign_error", e.what(), c->id);
  }
}

namespace {

std::atomic<Server*> g_signal_server{nullptr};

void handle_stop_signal(int) {
  Server* s = g_signal_server.load(std::memory_order_relaxed);
  if (s != nullptr) s->request_stop();
}

}  // namespace

int run_serve(const ServeOptions& opts, obs::RunLog* log, std::ostream& err) {
  Server server(opts, log);
  if (!server.ok()) {
    err << "serve: " << server.last_error() << "\n";
    return 1;
  }
  err << "serve: listening on 127.0.0.1:" << server.port() << "\n";

  g_signal_server.store(&server, std::memory_order_relaxed);
  struct sigaction sa;
  sa.sa_handler = handle_stop_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: interrupt blocking calls promptly
  struct sigaction old_int, old_term;
  sigaction(SIGINT, &sa, &old_int);
  sigaction(SIGTERM, &sa, &old_term);

  const int code = server.run();

  sigaction(SIGINT, &old_int, nullptr);
  sigaction(SIGTERM, &old_term, nullptr);
  g_signal_server.store(nullptr, std::memory_order_relaxed);
  return code;
}

}  // namespace ge::net
