// ge::net::Server — the `goldeneye serve` campaign daemon.
//
// Thread structure (DESIGN.md §11):
//   accept loop   (run() caller)  poll/accept; one session thread per
//                                 connection; refuses work while draining
//   session threads               speak the frame protocol with one peer:
//                                 submit clients enqueue campaigns, worker
//                                 clients lease trial ranges / return
//                                 results / forward their trial rows
//   executor thread               pops campaigns FIFO, runs them on the
//                                 in-process pool chunk by chunk (itself a
//                                 lease holder), merges worker parts, and
//                                 streams rows + the final digest to the
//                                 submitting client
//
// Campaigns execute one at a time (FIFO); within a campaign, work is
// stolen freely between the local executor and any number of remote
// workers via the LeaseTable. Every result path funnels through
// merge_campaign_progress, so the served digest is bitwise identical to
// an offline run no matter who ran what.
//
// Shutdown: request_stop() (SIGINT/SIGTERM in the CLI) stops accepting,
// refuses queued-but-unstarted campaigns with kError, and lets the active
// campaign drain. With drain_timeout_ms > 0, a campaign still unfinished
// at the deadline is checkpointed via the CAMP codec and the client gets
// kCheckpointed (resumable offline with `campaign --resume`). Exit is
// always 0 on a signal — a drained daemon is a successful daemon.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "net/lease.hpp"
#include "net/session.hpp"
#include "net/socket.hpp"

namespace ge::obs {
class RunLog;
}  // namespace ge::obs

namespace ge::net {

struct ServeOptions {
  int port = 0;  ///< 0 = ephemeral (see Server::port())
  std::string cache_dir = "/tmp/goldeneye_model_cache";
  /// Directory drained campaigns checkpoint into (campaign_<id>.gec).
  std::string checkpoint_dir = "/tmp";
  /// Trials per lease; 0 = auto (total/8, at least 1).
  int64_t lease_chunk = 0;
  /// A worker lease not heartbeat within this window is reclaimed.
  int lease_timeout_ms = 5000;
  /// After request_stop(): checkpoint the active campaign if it has not
  /// finished within this budget. 0 = drain to completion however long.
  int drain_timeout_ms = 0;
  /// Stop after completing this many campaigns (tests/CI; 0 = forever).
  int64_t max_campaigns = 0;
  /// Straggler threshold: a live worker lease whose implied throughput
  /// bound falls below this fraction of the fleet's median completed-lease
  /// throughput is flagged in /status, counted in ge_lease_stragglers_total
  /// and logged as a schema-v2 "service" event. <= 0 disables the sweep.
  double straggler_fraction = 0.5;
};

class Server {
 public:
  /// Binds 127.0.0.1:port immediately. On failure ok() is false and
  /// last_error() says why; run() then returns 1. `log` (borrowed, may be
  /// null) receives session/lease lifecycle events.
  Server(const ServeOptions& opts, obs::RunLog* log);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  bool ok() const noexcept { return listen_.valid(); }
  const std::string& last_error() const noexcept { return error_; }
  int port() const noexcept { return port_; }

  /// Serve until request_stop(); returns the process exit code.
  int run();

  /// Begin graceful shutdown. Async-signal-safe (only flips an atomic;
  /// every internal wait polls it at >= 10 Hz).
  void request_stop() noexcept { stop_.store(true, std::memory_order_relaxed); }

 private:
  /// One campaign in flight (or queued): the submit connection, the lease
  /// table partitioning its trial space, and the result parts mailbox.
  struct Campaign {
    uint64_t id = 0;
    CampaignSpecMsg spec;
    std::shared_ptr<FrameChannel> chan;
    LeaseTable leases;
    std::mutex mu;
    std::vector<core::CampaignProgress> parts;
    std::string submitter;   ///< hello identity, for /status
    int64_t enqueue_ns = 0;  ///< queue-wait span start (steady clock)
    /// Last straggler sweep (rate limit; sweeps run on session threads
    /// and the executor, whoever gets there first).
    std::atomic<int64_t> straggler_check_ns{0};
  };

  /// Per-holder lease accounting behind /status ("local" = the executor).
  struct WorkerStats {
    int64_t leases = 0;
    int64_t trials = 0;
    double busy_seconds = 0.0;   ///< sum of completed-lease wall time
    std::vector<double> tps;     ///< recent per-lease trials/sec samples
  };

  void session_thread(Socket sock);
  void serve_submit(std::shared_ptr<FrameChannel> chan,
                    const std::string& who);
  void serve_worker(std::shared_ptr<FrameChannel> chan,
                    const std::string& who);
  void executor_loop();
  void execute(const std::shared_ptr<Campaign>& c);
  void checkpoint_campaign(const std::shared_ptr<Campaign>& c);
  /// Merge c->parts (relabelled with distinct shard indices) into one
  /// progress; parts must be non-empty.
  core::CampaignProgress merge_parts(const std::shared_ptr<Campaign>& c);

  std::shared_ptr<Campaign> active_campaign();
  void log_event(const char* type, const std::string& detail,
                 uint64_t campaign_id = 0, int64_t a = -1, int64_t b = -1);
  /// Schema-v2 "service" event: {"type":"service","kind":...}. Operational
  /// observations about the fleet (stragglers, reclaims) rather than
  /// session lifecycle.
  void log_service_event(const char* kind, const std::string& detail,
                         uint64_t campaign_id = 0, int64_t a = -1,
                         int64_t b = -1);
  /// Fold a completed lease into the per-worker throughput stats.
  void note_lease_complete(const LeaseInfo& info);
  /// Rate-limited straggler pass over the active campaign's lease table.
  void straggler_sweep(const std::shared_ptr<Campaign>& c);
  /// The /status "server" object (registered with obs::set_status_source
  /// while run() is live).
  std::string status_json();

  ServeOptions opts_;
  obs::RunLog* log_ = nullptr;
  std::mutex log_mu_;  ///< RunLog::event is not itself thread-safe

  Socket listen_;
  int port_ = 0;
  std::string error_;

  std::atomic<bool> stop_{false};
  /// Set after the executor exits: session threads wind down their polls.
  std::atomic<bool> shutdown_sessions_{false};
  std::atomic<int> active_sessions_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Campaign>> queue_;
  std::shared_ptr<Campaign> active_;
  uint64_t next_campaign_id_ = 1;
  std::atomic<int64_t> served_{0};

  std::mutex wstats_mu_;
  std::map<std::string, WorkerStats> worker_stats_;

  std::mutex threads_mu_;
  std::vector<std::thread> session_threads_;
};

/// CLI entry: run a Server with SIGINT/SIGTERM wired to request_stop().
/// Prints the bound port to `err` (like --metrics-port). Returns the
/// process exit code.
int run_serve(const ServeOptions& opts, obs::RunLog* log, std::ostream& err);

}  // namespace ge::net
