// ge::net socket utility — the one place in the tree that talks to the
// BSD socket API. Everything network-facing (obs::MetricsServer, the
// campaign service daemon, its clients) builds on these helpers so the
// bind/accept/partial-read/partial-write pitfalls are solved exactly once.
//
// Scope rules:
//  - Servers bind 127.0.0.1 only. The campaign protocol carries no
//    authentication, so it must never listen on a routable interface;
//    "remote" workers reach a server through an ssh tunnel or equivalent.
//  - All sends use MSG_NOSIGNAL: a peer that disappears mid-write surfaces
//    as an error return, never as a process-killing SIGPIPE.
//  - Nothing here throws. Failures are encoded in return values (invalid
//    Socket, false, -1) with errno describing why; the framing layer above
//    (net/frame.hpp) turns them into diagnosed NetError exceptions.
#pragma once

#include <cstddef>
#include <string>
#include <sys/types.h>

namespace ge::net {

/// Owning file-descriptor wrapper (move-only; close on destruction).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }
  /// Close now (also done by the destructor). Safe to call repeatedly.
  void close() noexcept;
  /// Give up ownership without closing (hand-off to another wrapper).
  int release() noexcept;

  /// Write exactly `n` bytes (looping over short writes, MSG_NOSIGNAL).
  /// False on any error — the connection is then unusable.
  bool send_all(const void* data, size_t n) const;
  /// Read exactly `n` bytes (looping over short reads). False on EOF or
  /// error before `n` bytes arrived.
  bool recv_all(void* data, size_t n) const;
  /// One recv() call: >0 bytes read, 0 on orderly EOF, -1 on error.
  ssize_t recv_some(void* data, size_t n) const;

  /// Block until the socket is readable. Returns 1 when readable, 0 on
  /// timeout, -1 on error. timeout_ms < 0 waits forever.
  int wait_readable(int timeout_ms) const;

 private:
  int fd_ = -1;
};

/// A bound+listening loopback socket plus the port it actually landed on
/// (`port` resolves the ephemeral-port case). On failure `sock` is invalid
/// and `error` says why.
struct ListenResult {
  Socket sock;
  int port = 0;
  std::string error;
};

/// Bind 127.0.0.1:`port` (0 = kernel-assigned ephemeral port) and listen
/// with the given backlog. SO_REUSEADDR is set so restarts do not trip
/// over TIME_WAIT.
ListenResult listen_loopback(int port, int backlog = 16);

/// Accept one pending connection, waiting up to `timeout_ms` for one to
/// arrive (< 0 = forever). Returns an invalid Socket on timeout or error.
/// Callers draining a backlog should loop with timeout 0 until invalid.
Socket accept_connection(const Socket& listener, int timeout_ms);

/// Connect to `host`:`port` (numeric IPv4 only, e.g. "127.0.0.1"). On
/// failure the Socket is invalid and *error (if non-null) says why.
Socket connect_to(const std::string& host, int port, std::string* error);

}  // namespace ge::net
