// ge::net framing — length-prefixed frames with per-frame CRC32, the wire
// analogue of the .gec section format (see src/io/container.hpp). Every
// multi-byte integer is little-endian, encoded shift-by-shift exactly like
// io::ByteWriter, so the two codecs share test discipline: the frame tests
// in tests/test_net.cpp run the same every-prefix-truncation and
// every-bit-CRC-corruption sweeps as tests/test_io.cpp.
//
// Frame layout (header 21 bytes, then payload):
//
//   offset 0   4 bytes   magic "GEF1"
//          4   u32       protocol version (kProtocolVersion)
//          8   u8        frame type (FrameType)
//          9   u64       payload byte length (<= kMaxPayload)
//         17   u32       CRC32 (IEEE) of the payload bytes
//         21   payload
//
// Versioning follows the .gec rule: readers accept kMinProtocolVersion..
// kProtocolVersion and reject anything newer; payload decoders
// (net/codec.hpp) read the fields they know and ignore trailing bytes, so
// a newer peer may append tagged fields without breaking older readers.
// The trace-context field on campaign specs (codec.hpp kTraceTag) is the
// canonical example: older decoders see it as an ignorable tail, newer
// ones recover the submit client's trace identity from it.
// The length field is validated against kMaxPayload BEFORE any allocation,
// so a corrupt or hostile length can never trigger a huge allocation.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/socket.hpp"

namespace ge::net {

/// Wire-protocol failure (connection lost, corrupt frame, version
/// mismatch, protocol violation). The CLI maps NetError to exit 2, same
/// as io::IoError: a bad peer or dead server is a diagnosed error.
struct NetError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Version spoken by this build; readers accept kMinProtocolVersion..
/// kProtocolVersion.
///
/// v1  PR 9 initial protocol
inline constexpr uint32_t kProtocolVersion = 1;
inline constexpr uint32_t kMinProtocolVersion = 1;
/// "GEF1" as wire bytes.
inline constexpr char kFrameMagic[4] = {'G', 'E', 'F', '1'};
/// Hard payload cap — far above any real message (largest is a serialized
/// CampaignProgress part) yet small enough that a corrupt length field is
/// rejected before allocation.
inline constexpr uint64_t kMaxPayload = 16ull * 1024 * 1024;
/// Bytes before the payload: magic + version + type + length + crc.
inline constexpr size_t kFrameHeaderSize = 4 + 4 + 1 + 8 + 4;

enum class FrameType : uint8_t {
  kHello = 1,         ///< client -> server: role + protocol handshake
  kSubmit = 2,        ///< submit client -> server: CampaignSpec
  kLogRow = 3,        ///< one schema-v2 RunLog JSONL line (no trailing \n)
  kDone = 4,          ///< server -> submit: digest + summary, session over
  kError = 5,         ///< either way: diagnosed failure message
  kLeaseRequest = 6,  ///< worker -> server: give me a trial range
  kLeaseGrant = 7,    ///< server -> worker: campaign spec + [lo,hi)
  kLeaseResult = 8,   ///< worker -> server: serialized CampaignProgress
  kHeartbeat = 9,     ///< worker -> server: lease still being worked
  kNoWork = 10,       ///< server -> worker: nothing leasable right now
  kShutdown = 11,     ///< server -> worker: draining, disconnect
  kCheckpointed = 12, ///< server -> submit: drained to checkpoint `path`
};

/// Human-readable frame-type name for logs and error messages.
const char* frame_type_name(FrameType t);

struct Frame {
  FrameType type = FrameType::kError;
  std::vector<uint8_t> payload;
};

/// Serialise header+payload into a wire-ready byte string.
std::vector<uint8_t> encode_frame(const Frame& f);

/// Parse one complete frame from `bytes` (which must be exactly one
/// frame). Validates magic, version range, length cap, and payload CRC;
/// throws NetError naming `context` on the first violation.
Frame decode_frame(const std::vector<uint8_t>& bytes,
                   const std::string& context);

/// Write one frame to the socket. Throws NetError when the connection
/// drops mid-write.
void send_frame(const Socket& sock, const Frame& f,
                const std::string& context);
inline void send_frame(const Socket& sock, FrameType type,
                       std::vector<uint8_t> payload,
                       const std::string& context) {
  send_frame(sock, Frame{type, std::move(payload)}, context);
}

/// Read one frame from the socket, validating as decode_frame() does.
/// Returns nullopt on clean EOF at a frame boundary (peer closed);
/// throws NetError on mid-frame EOF or any validation failure.
std::optional<Frame> recv_frame(const Socket& sock,
                                const std::string& context);

}  // namespace ge::net
