#include "net/frame.hpp"

#include <cstring>

#include "io/container.hpp"

namespace ge::net {

namespace {

// Little-endian scalar helpers matching io::ByteWriter/ByteReader encoding.
void put_u32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(uint8_t(v >> (8 * i)));
}

void put_u64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(uint8_t(v >> (8 * i)));
}

uint32_t get_u32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= uint32_t(p[i]) << (8 * i);
  return v;
}

uint64_t get_u64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= uint64_t(p[i]) << (8 * i);
  return v;
}

// Validate the fixed-size header; returns payload length via out-params.
// Shared by decode_frame (in-memory) and recv_frame (socket) so both paths
// reject bad frames identically.
void check_header(const uint8_t* h, const std::string& context,
                  FrameType* type, uint64_t* payload_len, uint32_t* crc) {
  if (std::memcmp(h, kFrameMagic, 4) != 0) {
    throw NetError(context + ": bad frame magic");
  }
  uint32_t version = get_u32(h + 4);
  if (version < kMinProtocolVersion || version > kProtocolVersion) {
    throw NetError(context + ": unsupported protocol version " +
                   std::to_string(version) + " (this build speaks " +
                   std::to_string(kMinProtocolVersion) + ".." +
                   std::to_string(kProtocolVersion) + ")");
  }
  uint8_t t = h[8];
  if (t < uint8_t(FrameType::kHello) || t > uint8_t(FrameType::kCheckpointed)) {
    throw NetError(context + ": unknown frame type " + std::to_string(t));
  }
  *type = FrameType(t);
  *payload_len = get_u64(h + 9);
  if (*payload_len > kMaxPayload) {
    throw NetError(context + ": frame payload length " +
                   std::to_string(*payload_len) + " exceeds cap " +
                   std::to_string(kMaxPayload));
  }
  *crc = get_u32(h + 17);
}

void check_crc(const std::vector<uint8_t>& payload, uint32_t expect,
               const std::string& context) {
  uint32_t actual = io::crc32(payload.data(), payload.size());
  if (actual != expect) {
    throw NetError(context + ": frame CRC mismatch");
  }
}

}  // namespace

const char* frame_type_name(FrameType t) {
  switch (t) {
    case FrameType::kHello: return "hello";
    case FrameType::kSubmit: return "submit";
    case FrameType::kLogRow: return "log_row";
    case FrameType::kDone: return "done";
    case FrameType::kError: return "error";
    case FrameType::kLeaseRequest: return "lease_request";
    case FrameType::kLeaseGrant: return "lease_grant";
    case FrameType::kLeaseResult: return "lease_result";
    case FrameType::kHeartbeat: return "heartbeat";
    case FrameType::kNoWork: return "no_work";
    case FrameType::kShutdown: return "shutdown";
    case FrameType::kCheckpointed: return "checkpointed";
  }
  return "?";
}

std::vector<uint8_t> encode_frame(const Frame& f) {
  std::vector<uint8_t> out;
  out.reserve(kFrameHeaderSize + f.payload.size());
  out.insert(out.end(), kFrameMagic, kFrameMagic + 4);
  put_u32(out, kProtocolVersion);
  out.push_back(uint8_t(f.type));
  put_u64(out, f.payload.size());
  put_u32(out, io::crc32(f.payload.data(), f.payload.size()));
  out.insert(out.end(), f.payload.begin(), f.payload.end());
  return out;
}

Frame decode_frame(const std::vector<uint8_t>& bytes,
                   const std::string& context) {
  if (bytes.size() < kFrameHeaderSize) {
    throw NetError(context + ": truncated frame header (" +
                   std::to_string(bytes.size()) + " of " +
                   std::to_string(kFrameHeaderSize) + " bytes)");
  }
  Frame f;
  uint64_t payload_len = 0;
  uint32_t crc = 0;
  check_header(bytes.data(), context, &f.type, &payload_len, &crc);
  if (bytes.size() != kFrameHeaderSize + payload_len) {
    throw NetError(context + ": frame length mismatch (header says " +
                   std::to_string(payload_len) + " payload bytes, have " +
                   std::to_string(bytes.size() - kFrameHeaderSize) + ")");
  }
  f.payload.assign(bytes.begin() + kFrameHeaderSize, bytes.end());
  check_crc(f.payload, crc, context);
  return f;
}

void send_frame(const Socket& sock, const Frame& f,
                const std::string& context) {
  std::vector<uint8_t> wire = encode_frame(f);
  if (!sock.send_all(wire.data(), wire.size())) {
    throw NetError(context + ": connection lost sending " +
                   std::string(frame_type_name(f.type)) + " frame");
  }
}

std::optional<Frame> recv_frame(const Socket& sock,
                                const std::string& context) {
  uint8_t header[kFrameHeaderSize];
  // Distinguish clean EOF (no bytes at all) from a mid-header cut: read the
  // first byte separately, then require the rest.
  ssize_t first = sock.recv_some(header, 1);
  if (first == 0) return std::nullopt;
  if (first < 0) throw NetError(context + ": connection error");
  if (!sock.recv_all(header + 1, kFrameHeaderSize - 1)) {
    throw NetError(context + ": connection lost mid frame header");
  }
  Frame f;
  uint64_t payload_len = 0;
  uint32_t crc = 0;
  check_header(header, context, &f.type, &payload_len, &crc);
  f.payload.resize(payload_len);
  if (payload_len > 0 && !sock.recv_all(f.payload.data(), payload_len)) {
    throw NetError(context + ": connection lost mid " +
                   std::string(frame_type_name(f.type)) + " payload");
  }
  check_crc(f.payload, crc, context);
  return f;
}

}  // namespace ge::net
