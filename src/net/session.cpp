#include "net/session.hpp"

#include <iomanip>
#include <sstream>

#include "core/injector.hpp"
#include "formats/format_registry.hpp"
#include "obs/telemetry.hpp"

namespace ge::net {

void FrameChannel::send(FrameType type, std::vector<uint8_t> payload) {
  std::lock_guard<std::mutex> lock(send_mu_);
  send_frame(sock_, Frame{type, std::move(payload)}, context_);
  obs::add(obs::Counter::kNetFramesSent);
}

std::optional<Frame> FrameChannel::recv() {
  std::optional<Frame> f = recv_frame(sock_, context_);
  if (f.has_value()) obs::add(obs::Counter::kNetFramesReceived);
  return f;
}

std::optional<Frame> FrameChannel::recv_wait(int timeout_ms, bool* timed_out) {
  const int rc = sock_.wait_readable(timeout_ms);
  if (rc == 0) {
    *timed_out = true;
    return std::nullopt;
  }
  *timed_out = false;
  if (rc < 0) throw NetError(context_ + ": poll failed");
  return recv();
}

void FrameChannel::shutdown() { sock_.close(); }

int LineFrameBuf::overflow(int ch) {
  if (ch == traits_type::eof()) return 0;
  if (ch == '\n') {
    emit_line();
  } else {
    line_.push_back(static_cast<char>(ch));
  }
  return ch;
}

std::streamsize LineFrameBuf::xsputn(const char* s, std::streamsize n) {
  for (std::streamsize i = 0; i < n; ++i) {
    if (s[i] == '\n') {
      emit_line();
    } else {
      line_.push_back(s[i]);
    }
  }
  return n;
}

void LineFrameBuf::emit_line() {
  chan_->send(FrameType::kLogRow,
              std::vector<uint8_t>(line_.begin(), line_.end()));
  line_.clear();
}

PreparedCampaign prepare_campaign(const CampaignSpecMsg& spec,
                                  const std::string& cache_dir) {
  // Same validation the campaign CLI applies to its flags: a bad spec is
  // a diagnosed protocol-level error, never a crash deep in the stack.
  if (!fmt::is_valid_spec(spec.format_spec)) {
    throw NetError("campaign spec: bad format '" + spec.format_spec + "'");
  }
  if (spec.site > static_cast<uint8_t>(core::InjectionSite::kMetadata)) {
    throw NetError("campaign spec: unknown injection site byte " +
                   std::to_string(spec.site));
  }
  if (spec.error_model > static_cast<uint8_t>(core::ErrorModel::kChannel)) {
    throw NetError("campaign spec: unknown error model byte " +
                   std::to_string(spec.error_model));
  }
  if (spec.injections_per_layer < 1) {
    throw NetError("campaign spec: injections_per_layer must be >= 1");
  }
  if (spec.samples < 1) {
    throw NetError("campaign spec: samples must be >= 1");
  }
  if (spec.epochs < 1) {
    throw NetError("campaign spec: epochs must be >= 1");
  }
  if (spec.sites_per_trial < 1) {
    throw NetError("campaign spec: sites_per_trial must be >= 1");
  }
  if (spec.burst_len < 1) {
    throw NetError("campaign spec: burst_len must be >= 1");
  }

  core::CampaignConfig cfg;
  cfg.format_spec = spec.format_spec;
  cfg.site = static_cast<core::InjectionSite>(spec.site);
  cfg.model = static_cast<core::ErrorModel>(spec.error_model);
  cfg.injections_per_layer = spec.injections_per_layer;
  cfg.seed = spec.seed;
  cfg.sites_per_trial = spec.sites_per_trial;
  cfg.ber = spec.ber;
  cfg.burst_len = spec.burst_len;
  cfg.use_prefix_cache = spec.prefix_cache != 0;
  if (cfg.model == core::ErrorModel::kBerUniform &&
      !(cfg.ber > 0.0 && cfg.ber <= 1.0)) {
    throw NetError("campaign spec: error model 'ber' requires ber in (0, 1]");
  }
  if (cfg.ber < 0.0 || cfg.ber > 1.0) {
    throw NetError("campaign spec: ber must be in [0, 1]");
  }
  if (core::is_zoo_model(cfg.model) &&
      cfg.site != core::InjectionSite::kActivationValue) {
    throw NetError("campaign spec: error model '" +
                   std::string(core::to_string(cfg.model)) +
                   "' requires the activation-value site");
  }

  PreparedCampaign out;
  data::SyntheticVision data{data::SyntheticVisionConfig{}};
  models::TrainConfig tc;
  tc.epochs = spec.epochs;
  try {
    out.trained = models::ensure_trained(spec.model_name, data, cache_dir, tc);
  } catch (const std::exception& e) {
    throw NetError("campaign spec: cannot prepare model '" +
                   spec.model_name + "': " + e.what());
  }
  out.batch = data::take(data.test(), 0, spec.samples);
  const std::string model_name = spec.model_name;
  cfg.make_replica = [model_name]() {
    return models::make_model(model_name, data::SyntheticVisionConfig{}, 0);
  };
  out.total_trials =
      core::count_campaign_layers(*out.trained.model, cfg) *
      cfg.injections_per_layer;
  out.cfg = std::move(cfg);
  return out;
}

std::string render_campaign_summary(const CampaignSpecMsg& spec,
                                    const core::CampaignResult& result) {
  std::ostringstream out;
  out << "campaign: " << spec.format_spec << " site="
      << core::to_string(static_cast<core::InjectionSite>(spec.site))
      << " error-model="
      << core::to_string(static_cast<core::ErrorModel>(spec.error_model))
      << " injections/layer=" << spec.injections_per_layer << "\n";
  out << "clean emulated accuracy: " << result.golden_accuracy << "\n";
  out << std::left << std::setw(28) << "layer" << std::right << std::setw(12)
      << "mean dLoss" << std::setw(10) << "SDC" << "\n";
  for (const auto& l : result.layers) {
    out << std::left << std::setw(28) << l.layer << std::right
        << std::setw(12) << std::fixed << std::setprecision(5)
        << l.mean_delta_loss << std::setw(9) << l.sdc_count << "/"
        << l.injections << "\n";
  }
  out.unsetf(std::ios::fixed);
  out << "network mean dLoss: " << result.network_mean_delta_loss() << "\n";
  return out.str();
}

}  // namespace ge::net
