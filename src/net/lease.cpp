#include "net/lease.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/telemetry.hpp"

namespace ge::net {

void LeaseTable::reset(int64_t total, int64_t chunk) {
  if (total < 0 || chunk < 1) {
    throw std::invalid_argument(
        "LeaseTable::reset: total must be >= 0 and chunk >= 1");
  }
  std::lock_guard<std::mutex> lock(mu_);
  queue_.clear();
  live_.clear();
  total_ = total;
  completed_ = 0;
  for (int64_t lo = 0; lo < total; lo += chunk) {
    queue_.push_back(Lease{0, lo, std::min(lo + chunk, total)});
  }
}

bool LeaseTable::grant(int64_t now_ns, int64_t timeout_ns, Lease* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) return false;
  Lease l = queue_.front();
  queue_.pop_front();
  l.id = next_id_++;
  live_.push_back(Live{l, timeout_ns > 0 ? now_ns + timeout_ns : 0});
  *out = l;
  return true;
}

bool LeaseTable::heartbeat(uint64_t id, int64_t now_ns, int64_t timeout_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Live& lv : live_) {
    if (lv.lease.id == id) {
      if (lv.deadline_ns != 0 && timeout_ns > 0) {
        lv.deadline_ns = now_ns + timeout_ns;
      }
      return true;
    }
  }
  return false;
}

bool LeaseTable::complete(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < live_.size(); ++i) {
    if (live_[i].lease.id == id) {
      completed_ += live_[i].lease.hi - live_[i].lease.lo;
      live_.erase(live_.begin() + static_cast<ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

bool LeaseTable::abandon(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < live_.size(); ++i) {
    if (live_[i].lease.id == id) {
      Lease l = live_[i].lease;
      l.id = 0;
      // Front of the queue: recovery work is the oldest work, run it next.
      queue_.push_front(l);
      live_.erase(live_.begin() + static_cast<ptrdiff_t>(i));
      obs::add(obs::Counter::kNetLeaseReclaims);
      return true;
    }
  }
  return false;
}

int LeaseTable::reclaim_expired(int64_t now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  int reclaimed = 0;
  for (size_t i = 0; i < live_.size();) {
    if (live_[i].deadline_ns != 0 && live_[i].deadline_ns <= now_ns) {
      Lease l = live_[i].lease;
      l.id = 0;
      queue_.push_front(l);
      live_.erase(live_.begin() + static_cast<ptrdiff_t>(i));
      obs::add(obs::Counter::kNetLeaseReclaims);
      ++reclaimed;
    } else {
      ++i;
    }
  }
  return reclaimed;
}

bool LeaseTable::all_done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_ == total_;
}

int64_t LeaseTable::unleased_trials() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t n = 0;
  for (const Lease& l : queue_) n += l.hi - l.lo;
  return n;
}

int64_t LeaseTable::live_leases() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(live_.size());
}

}  // namespace ge::net
