#include "net/lease.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/telemetry.hpp"

namespace ge::net {

void LeaseTable::reset(int64_t total, int64_t chunk) {
  if (total < 0 || chunk < 1) {
    throw std::invalid_argument(
        "LeaseTable::reset: total must be >= 0 and chunk >= 1");
  }
  std::lock_guard<std::mutex> lock(mu_);
  queue_.clear();
  live_.clear();
  total_ = total;
  completed_ = 0;
  tps_samples_.clear();
  for (int64_t lo = 0; lo < total; lo += chunk) {
    queue_.push_back(Lease{0, lo, std::min(lo + chunk, total)});
  }
}

bool LeaseTable::grant(int64_t now_ns, int64_t timeout_ns, Lease* out,
                       const std::string& worker) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) return false;
  Lease l = queue_.front();
  queue_.pop_front();
  l.id = next_id_++;
  Live lv;
  lv.lease = l;
  lv.deadline_ns = timeout_ns > 0 ? now_ns + timeout_ns : 0;
  lv.worker = worker;
  lv.granted_ns = now_ns;
  lv.last_heartbeat_ns = now_ns;
  live_.push_back(std::move(lv));
  *out = l;
  return true;
}

bool LeaseTable::heartbeat(uint64_t id, int64_t now_ns, int64_t timeout_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Live& lv : live_) {
    if (lv.lease.id == id) {
      if (lv.deadline_ns != 0 && timeout_ns > 0) {
        lv.deadline_ns = now_ns + timeout_ns;
      }
      lv.last_heartbeat_ns = now_ns;
      return true;
    }
  }
  return false;
}

bool LeaseTable::complete(uint64_t id, int64_t now_ns, LeaseInfo* done) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < live_.size(); ++i) {
    if (live_[i].lease.id == id) {
      const Live& lv = live_[i];
      completed_ += lv.lease.hi - lv.lease.lo;
      if (done != nullptr) *done = info_locked(lv, now_ns);
      if (now_ns > lv.granted_ns) {
        const double secs =
            static_cast<double>(now_ns - lv.granted_ns) / 1e9;
        tps_samples_.push_back(
            static_cast<double>(lv.lease.hi - lv.lease.lo) / secs);
      }
      live_.erase(live_.begin() + static_cast<ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

bool LeaseTable::abandon(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < live_.size(); ++i) {
    if (live_[i].lease.id == id) {
      Lease l = live_[i].lease;
      l.id = 0;
      // Front of the queue: recovery work is the oldest work, run it next.
      queue_.push_front(l);
      live_.erase(live_.begin() + static_cast<ptrdiff_t>(i));
      obs::add(obs::Counter::kNetLeaseReclaims);
      return true;
    }
  }
  return false;
}

int LeaseTable::reclaim_expired(int64_t now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  int reclaimed = 0;
  for (size_t i = 0; i < live_.size();) {
    if (live_[i].deadline_ns != 0 && live_[i].deadline_ns <= now_ns) {
      Lease l = live_[i].lease;
      l.id = 0;
      queue_.push_front(l);
      live_.erase(live_.begin() + static_cast<ptrdiff_t>(i));
      obs::add(obs::Counter::kNetLeaseReclaims);
      ++reclaimed;
    } else {
      ++i;
    }
  }
  return reclaimed;
}

bool LeaseTable::all_done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_ == total_;
}

int64_t LeaseTable::unleased_trials() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t n = 0;
  for (const Lease& l : queue_) n += l.hi - l.lo;
  return n;
}

int64_t LeaseTable::live_leases() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(live_.size());
}

int64_t LeaseTable::total_trials() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

int64_t LeaseTable::completed_trials() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_;
}

LeaseInfo LeaseTable::info_locked(const Live& lv, int64_t now_ns) const {
  LeaseInfo info;
  info.id = lv.lease.id;
  info.lo = lv.lease.lo;
  info.hi = lv.lease.hi;
  info.worker = lv.worker;
  info.age_ns = std::max<int64_t>(0, now_ns - lv.granted_ns);
  info.since_heartbeat_ns = std::max<int64_t>(0, now_ns - lv.last_heartbeat_ns);
  info.expires = lv.deadline_ns != 0;
  info.straggler = lv.straggler;
  return info;
}

std::vector<LeaseInfo> LeaseTable::snapshot(int64_t now_ns) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LeaseInfo> out;
  out.reserve(live_.size());
  for (const Live& lv : live_) out.push_back(info_locked(lv, now_ns));
  return out;
}

std::vector<double> LeaseTable::throughput_samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tps_samples_;
}

std::vector<LeaseInfo> LeaseTable::flag_stragglers(int64_t now_ns,
                                                   double fraction) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LeaseInfo> newly;
  if (fraction <= 0.0 || tps_samples_.size() < 2) return newly;
  std::vector<double> samples = tps_samples_;
  const size_t mid = samples.size() / 2;
  std::nth_element(samples.begin(), samples.begin() + mid, samples.end());
  const double median = samples[mid];
  if (median <= 0.0) return newly;
  for (Live& lv : live_) {
    if (lv.deadline_ns == 0 || lv.straggler) continue;
    const double secs = static_cast<double>(now_ns - lv.granted_ns) / 1e9;
    if (secs <= 0.0) continue;
    const double bound_tps =
        static_cast<double>(lv.lease.hi - lv.lease.lo) / secs;
    if (bound_tps < fraction * median) {
      lv.straggler = true;
      obs::add(obs::Counter::kNetLeaseStragglers);
      newly.push_back(info_locked(lv, now_ns));
    }
  }
  return newly;
}

}  // namespace ge::net
