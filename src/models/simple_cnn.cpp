#include "models/simple_cnn.hpp"

#include "nn/activation.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/norm.hpp"
#include "nn/pooling.hpp"

namespace ge::models {

SimpleCnn::SimpleCnn(int64_t in_channels, int64_t num_classes, Rng& rng)
    : Module("SimpleCnn"), body_(std::make_unique<nn::Sequential>()) {
  body_->emplace<nn::Conv2d>(in_channels, 16, 3, 1, 1, rng);
  body_->emplace<nn::BatchNorm2d>(16);
  body_->emplace<nn::ReLU>();
  body_->emplace<nn::MaxPool2d>(2, 2);
  body_->emplace<nn::Conv2d>(16, 32, 3, 1, 1, rng);
  body_->emplace<nn::BatchNorm2d>(32);
  body_->emplace<nn::ReLU>();
  body_->emplace<nn::MaxPool2d>(2, 2);
  body_->emplace<nn::Conv2d>(32, 64, 3, 1, 1, rng);
  body_->emplace<nn::BatchNorm2d>(64);
  body_->emplace<nn::ReLU>();
  body_->emplace<nn::GlobalAvgPool>();
  body_->emplace<nn::Linear>(64, num_classes, rng);
  register_child("body", *body_);
}

Tensor SimpleCnn::forward(const Tensor& input) { return (*body_)(input); }

Tensor SimpleCnn::backward(const Tensor& grad_out) {
  return body_->backward(grad_out);
}

}  // namespace ge::models
