#include "models/tiny_resnet.hpp"

#include <stdexcept>

#include "tensor/tensor_ops.hpp"

namespace ge::models {

BasicBlock::BasicBlock(int64_t in_channels, int64_t out_channels,
                       int64_t stride, Rng& rng)
    : Module("BasicBlock"),
      projected_(stride != 1 || in_channels != out_channels),
      conv1_(std::make_unique<nn::Conv2d>(in_channels, out_channels, 3,
                                          stride, 1, rng, false)),
      bn1_(std::make_unique<nn::BatchNorm2d>(out_channels)),
      relu1_(std::make_unique<nn::ReLU>()),
      conv2_(std::make_unique<nn::Conv2d>(out_channels, out_channels, 3, 1, 1,
                                          rng, false)),
      bn2_(std::make_unique<nn::BatchNorm2d>(out_channels)) {
  register_child("conv1", *conv1_);
  register_child("bn1", *bn1_);
  register_child("relu1", *relu1_);
  register_child("conv2", *conv2_);
  register_child("bn2", *bn2_);
  if (projected_) {
    proj_conv_ = std::make_unique<nn::Conv2d>(in_channels, out_channels, 1,
                                              stride, 0, rng, false);
    proj_bn_ = std::make_unique<nn::BatchNorm2d>(out_channels);
    register_child("proj_conv", *proj_conv_);
    register_child("proj_bn", *proj_bn_);
  }
}

Tensor BasicBlock::forward(const Tensor& input) {
  Tensor main = (*bn2_)((*conv2_)((*relu1_)((*bn1_)((*conv1_)(input)))));
  Tensor skip =
      projected_ ? (*proj_bn_)((*proj_conv_)(input)) : input;
  Tensor sum = ops::add(main, skip);
  // final ReLU (kept inline so we own its mask for backward)
  const int64_t n = sum.numel();
  if (is_training()) out_mask_.assign(static_cast<size_t>(n), 0);
  float* p = sum.data();
  for (int64_t i = 0; i < n; ++i) {
    if (p[i] > 0.0f) {
      if (is_training()) out_mask_[static_cast<size_t>(i)] = 1;
    } else {
      p[i] = 0.0f;
    }
  }
  return sum;
}

Tensor BasicBlock::backward(const Tensor& grad_out) {
  if (out_mask_.size() != static_cast<size_t>(grad_out.numel())) {
    throw std::logic_error("BasicBlock::backward before training forward");
  }
  Tensor g = grad_out;
  float* pg = g.data();
  for (int64_t i = 0; i < g.numel(); ++i) {
    if (!out_mask_[static_cast<size_t>(i)]) pg[i] = 0.0f;
  }
  Tensor g_main = conv1_->backward(
      bn1_->backward(relu1_->backward(conv2_->backward(bn2_->backward(g)))));
  Tensor g_skip =
      projected_ ? proj_conv_->backward(proj_bn_->backward(g)) : g;
  return ops::add(g_main, g_skip);
}

TinyResNet::TinyResNet(int64_t in_channels, int64_t num_classes, Rng& rng,
                       int64_t width, int64_t blocks_per_stage)
    : Module("TinyResNet"),
      stem_conv_(std::make_unique<nn::Conv2d>(in_channels, width, 3, 1, 1,
                                              rng, false)),
      stem_bn_(std::make_unique<nn::BatchNorm2d>(width)),
      stem_relu_(std::make_unique<nn::ReLU>()),
      pool_(std::make_unique<nn::GlobalAvgPool>()),
      head_(std::make_unique<nn::Linear>(width * 4, num_classes, rng)) {
  register_child("stem_conv", *stem_conv_);
  register_child("stem_bn", *stem_bn_);
  register_child("stem_relu", *stem_relu_);
  int64_t in_c = width;
  int64_t block_id = 0;
  for (int stage = 0; stage < 3; ++stage) {
    const int64_t out_c = width << stage;
    for (int64_t b = 0; b < blocks_per_stage; ++b) {
      const int64_t stride = (stage > 0 && b == 0) ? 2 : 1;
      auto block = std::make_unique<BasicBlock>(in_c, out_c, stride, rng);
      register_child("block" + std::to_string(block_id++), *block);
      blocks_.push_back(std::move(block));
      in_c = out_c;
    }
  }
  register_child("pool", *pool_);
  register_child("head", *head_);
}

Tensor TinyResNet::forward(const Tensor& input) {
  Tensor x = (*stem_relu_)((*stem_bn_)((*stem_conv_)(input)));
  for (auto& b : blocks_) x = (*b)(x);
  return (*head_)((*pool_)(x));
}

Tensor TinyResNet::backward(const Tensor& grad_out) {
  Tensor g = pool_->backward(head_->backward(grad_out));
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return stem_conv_->backward(stem_bn_->backward(stem_relu_->backward(g)));
}

}  // namespace ge::models
