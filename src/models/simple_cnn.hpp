// SimpleCnn: a compact conv-bn-relu stack for the synthetic vision task.
#pragma once

#include <memory>

#include "nn/sequential.hpp"
#include "tensor/rng.hpp"

namespace ge::models {

class SimpleCnn : public nn::Module {
 public:
  SimpleCnn(int64_t in_channels, int64_t num_classes, Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  std::unique_ptr<nn::Sequential> body_;
};

}  // namespace ge::models
