// Model factory + training loop + trained-weight caching.
//
// Benchmarks and examples need *trained* models (format sensitivity is
// only meaningful on real weight/activation distributions). Training the
// tiny zoo takes seconds-to-minutes on CPU; ensure_trained() trains once
// and caches weights on disk keyed by (model, dataset seed) so repeated
// bench runs are fast and deterministic.
#pragma once

#include <memory>
#include <string>

#include "data/synthetic.hpp"
#include "nn/module.hpp"

namespace ge::models {

/// Known names: "mlp", "simple_cnn", "tiny_resnet", "tiny_deit".
std::unique_ptr<nn::Module> make_model(const std::string& name,
                                       const data::SyntheticVisionConfig& data_cfg,
                                       uint64_t seed);

std::vector<std::string> model_names();

struct TrainConfig {
  int64_t epochs = 6;
  int64_t batch_size = 32;
  float lr = 3e-3f;
  float weight_decay = 1e-4f;
  uint64_t seed = 7;
  bool verbose = false;
};

struct TrainResult {
  float final_train_loss = 0.0f;
  float test_accuracy = 0.0f;
};

/// Adam training on the synthetic train split; returns final metrics.
TrainResult train_model(nn::Module& model, const data::SyntheticVision& data,
                        const TrainConfig& cfg);

/// Test-set top-1 accuracy, evaluated in batches.
float evaluate_accuracy(nn::Module& model, const data::Split& split,
                        int64_t batch_size = 64);

/// Build `name`, then load cached weights from `cache_dir` if present,
/// else train and cache. Returns the model and its test accuracy.
struct TrainedModel {
  std::unique_ptr<nn::Module> model;
  float test_accuracy = 0.0f;
};
TrainedModel ensure_trained(const std::string& name,
                            const data::SyntheticVision& data,
                            const std::string& cache_dir,
                            const TrainConfig& cfg = {});

}  // namespace ge::models
