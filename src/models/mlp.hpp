// MLP: flatten + fully-connected stack; the smallest model in the zoo
// (used heavily by unit tests).
#pragma once

#include <memory>

#include "nn/sequential.hpp"
#include "tensor/rng.hpp"

namespace ge::models {

class Mlp : public nn::Module {
 public:
  Mlp(int64_t input_dim, std::vector<int64_t> hidden, int64_t num_classes,
      Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  std::unique_ptr<nn::Sequential> body_;
};

}  // namespace ge::models
