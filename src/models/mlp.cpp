#include "models/mlp.hpp"

#include "nn/activation.hpp"
#include "nn/linear.hpp"

namespace ge::models {

Mlp::Mlp(int64_t input_dim, std::vector<int64_t> hidden, int64_t num_classes,
         Rng& rng)
    : Module("Mlp"), body_(std::make_unique<nn::Sequential>()) {
  body_->emplace<nn::Flatten>();
  int64_t d = input_dim;
  for (int64_t h : hidden) {
    body_->emplace<nn::Linear>(d, h, rng);
    body_->emplace<nn::ReLU>();
    d = h;
  }
  body_->emplace<nn::Linear>(d, num_classes, rng);
  register_child("body", *body_);
}

Tensor Mlp::forward(const Tensor& input) { return (*body_)(input); }

Tensor Mlp::backward(const Tensor& grad_out) {
  return body_->backward(grad_out);
}

}  // namespace ge::models
