// TinyDeiT: a small DeiT/ViT-style vision transformer — this repo's
// stand-in for the paper's DeiT-tiny/DeiT-base (patchify conv, class
// token + learned positions, pre-norm encoder blocks, classification off
// the class token).
#pragma once

#include <memory>

#include "nn/embedding.hpp"
#include "nn/norm.hpp"
#include "nn/transformer.hpp"

namespace ge::models {

class TinyDeit : public nn::Module {
 public:
  struct Config {
    int64_t image_size = 16;
    int64_t in_channels = 3;
    int64_t patch = 4;
    int64_t dim = 48;
    int64_t heads = 4;
    int64_t mlp_ratio = 2;
    int64_t depth = 3;
    int64_t num_classes = 10;
  };

  TinyDeit(Config cfg, Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_out) override;

  const Config& config() const noexcept { return cfg_; }

 private:
  Config cfg_;
  std::unique_ptr<nn::PatchEmbed> patch_;
  std::unique_ptr<nn::ClassTokenPosEmbed> embed_;
  std::vector<std::unique_ptr<nn::TransformerBlock>> blocks_;
  std::unique_ptr<nn::LayerNorm> norm_;
  std::unique_ptr<nn::TakeClassToken> take_cls_;
  std::unique_ptr<nn::Linear> head_;
};

}  // namespace ge::models
