#include "models/model_factory.hpp"

#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "data/dataloader.hpp"
#include "models/mlp.hpp"
#include "models/simple_cnn.hpp"
#include "models/tiny_deit.hpp"
#include "models/tiny_resnet.hpp"
#include "nn/loss.hpp"
#include "nn/optim.hpp"
#include "obs/telemetry.hpp"

namespace ge::models {

std::unique_ptr<nn::Module> make_model(
    const std::string& name, const data::SyntheticVisionConfig& data_cfg,
    uint64_t seed) {
  Rng rng(seed);
  const int64_t C = data_cfg.channels;
  const int64_t S = data_cfg.image_size;
  const int64_t classes = data_cfg.num_classes;
  if (name == "mlp") {
    return std::make_unique<Mlp>(C * S * S, std::vector<int64_t>{128, 64},
                                 classes, rng);
  }
  if (name == "simple_cnn") {
    return std::make_unique<SimpleCnn>(C, classes, rng);
  }
  if (name == "tiny_resnet") {
    // width 8 keeps CPU training time reasonable while preserving the
    // 8/16/32 channel ladder and residual structure
    return std::make_unique<TinyResNet>(C, classes, rng, /*width=*/8);
  }
  if (name == "tiny_deit") {
    TinyDeit::Config cfg;
    cfg.image_size = S;
    cfg.in_channels = C;
    cfg.num_classes = classes;
    return std::make_unique<TinyDeit>(cfg, rng);
  }
  throw std::invalid_argument("make_model: unknown model '" + name + "'");
}

std::vector<std::string> model_names() {
  return {"mlp", "simple_cnn", "tiny_resnet", "tiny_deit"};
}

TrainResult train_model(nn::Module& model, const data::SyntheticVision& data,
                        const TrainConfig& cfg) {
  obs::Span train_span("train", "train_model");
  model.train(true);
  nn::Adam opt(model.parameters(), cfg.lr, 0.9f, 0.999f, 1e-8f,
               cfg.weight_decay);
  data::DataLoader loader(data.train(), cfg.batch_size, /*shuffle=*/true,
                          cfg.seed);
  nn::CrossEntropyLoss loss;
  TrainResult result;
  for (int64_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    obs::Span epoch_span("train", "epoch");
    loader.reset();
    double epoch_loss = 0.0;
    for (int64_t b = 0; b < loader.batch_count(); ++b) {
      const data::Batch batch = loader.batch(b);
      opt.zero_grad();
      Tensor logits = model(batch.images);
      const float l = loss.forward(logits, batch.labels);
      model.backward(loss.backward());
      opt.step();
      epoch_loss += l;
    }
    result.final_train_loss =
        static_cast<float>(epoch_loss / double(loader.batch_count()));
    if (cfg.verbose) {
      std::printf("  epoch %lld/%lld: train loss %.4f\n",
                  static_cast<long long>(epoch + 1),
                  static_cast<long long>(cfg.epochs),
                  result.final_train_loss);
    }
  }
  model.eval();
  result.test_accuracy = evaluate_accuracy(model, data.test());
  return result;
}

float evaluate_accuracy(nn::Module& model, const data::Split& split,
                        int64_t batch_size) {
  model.eval();
  data::DataLoader loader(split, batch_size);
  int64_t correct = 0;
  for (int64_t b = 0; b < loader.batch_count(); ++b) {
    const data::Batch batch = loader.batch(b);
    Tensor logits = model(batch.images);
    const float acc = nn::accuracy(logits, batch.labels);
    correct += static_cast<int64_t>(
        acc * static_cast<float>(batch.labels.size()) + 0.5f);
  }
  return static_cast<float>(correct) / static_cast<float>(split.size());
}

TrainedModel ensure_trained(const std::string& name,
                            const data::SyntheticVision& data,
                            const std::string& cache_dir,
                            const TrainConfig& cfg) {
  TrainedModel out;
  out.model = make_model(name, data.config(), /*seed=*/42);
  std::filesystem::create_directories(cache_dir);
  const std::string path = cache_dir + "/" + name + "_seed" +
                           std::to_string(data.config().seed) + ".gew";
  if (std::filesystem::exists(path)) {
    out.model->load_weights(path);
    out.model->eval();
    out.test_accuracy = evaluate_accuracy(*out.model, data.test());
    return out;
  }
  const TrainResult r = train_model(*out.model, data, cfg);
  out.model->save_weights(path);
  out.test_accuracy = r.test_accuracy;
  return out;
}

}  // namespace ge::models
