#include "models/tiny_deit.hpp"

#include <stdexcept>

#include "nn/linear.hpp"

namespace ge::models {

TinyDeit::TinyDeit(Config cfg, Rng& rng) : Module("TinyDeit"), cfg_(cfg) {
  if (cfg.image_size % cfg.patch != 0) {
    throw std::invalid_argument("TinyDeit: image_size % patch != 0");
  }
  const int64_t grid = cfg.image_size / cfg.patch;
  const int64_t num_patches = grid * grid;
  patch_ = std::make_unique<nn::PatchEmbed>(cfg.in_channels, cfg.dim,
                                            cfg.patch, rng);
  embed_ = std::make_unique<nn::ClassTokenPosEmbed>(num_patches, cfg.dim, rng);
  register_child("patch", *patch_);
  register_child("embed", *embed_);
  for (int64_t i = 0; i < cfg.depth; ++i) {
    auto block = std::make_unique<nn::TransformerBlock>(
        cfg.dim, cfg.heads, cfg.dim * cfg.mlp_ratio, rng);
    register_child("block" + std::to_string(i), *block);
    blocks_.push_back(std::move(block));
  }
  norm_ = std::make_unique<nn::LayerNorm>(cfg.dim);
  take_cls_ = std::make_unique<nn::TakeClassToken>();
  head_ = std::make_unique<nn::Linear>(cfg.dim, cfg.num_classes, rng);
  register_child("norm", *norm_);
  register_child("take_cls", *take_cls_);
  register_child("head", *head_);
}

Tensor TinyDeit::forward(const Tensor& input) {
  Tensor x = (*embed_)((*patch_)(input));
  for (auto& b : blocks_) x = (*b)(x);
  return (*head_)((*take_cls_)((*norm_)(x)));
}

Tensor TinyDeit::backward(const Tensor& grad_out) {
  Tensor g = norm_->backward(
      take_cls_->backward(head_->backward(grad_out)));
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return patch_->backward(embed_->backward(g));
}

}  // namespace ge::models
