// TinyResNet: a residual CNN in the CIFAR-ResNet style — this repo's
// stand-in for the paper's ResNet18/ResNet50 (same layer vocabulary:
// conv-bn-relu basic blocks with identity/projection skips, global average
// pooling, linear classifier).
#pragma once

#include <memory>

#include "nn/activation.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/norm.hpp"
#include "nn/pooling.hpp"

namespace ge::models {

/// conv-bn-relu-conv-bn plus skip (projection when the shape changes),
/// with a final ReLU on the sum.
class BasicBlock : public nn::Module {
 public:
  BasicBlock(int64_t in_channels, int64_t out_channels, int64_t stride,
             Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  bool projected_;
  std::unique_ptr<nn::Conv2d> conv1_;
  std::unique_ptr<nn::BatchNorm2d> bn1_;
  std::unique_ptr<nn::ReLU> relu1_;
  std::unique_ptr<nn::Conv2d> conv2_;
  std::unique_ptr<nn::BatchNorm2d> bn2_;
  std::unique_ptr<nn::Conv2d> proj_conv_;  // only when projected_
  std::unique_ptr<nn::BatchNorm2d> proj_bn_;
  std::vector<uint8_t> out_mask_;  // final-ReLU mask (training forward)
};

class TinyResNet : public nn::Module {
 public:
  /// width = base channel count (16 gives the classic 16/32/64 ladder).
  TinyResNet(int64_t in_channels, int64_t num_classes, Rng& rng,
             int64_t width = 16, int64_t blocks_per_stage = 2);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  std::unique_ptr<nn::Conv2d> stem_conv_;
  std::unique_ptr<nn::BatchNorm2d> stem_bn_;
  std::unique_ptr<nn::ReLU> stem_relu_;
  std::vector<std::unique_ptr<BasicBlock>> blocks_;
  std::unique_ptr<nn::GlobalAvgPool> pool_;
  std::unique_ptr<nn::Linear> head_;
};

}  // namespace ge::models
