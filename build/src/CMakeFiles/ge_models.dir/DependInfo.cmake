
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/mlp.cpp" "src/CMakeFiles/ge_models.dir/models/mlp.cpp.o" "gcc" "src/CMakeFiles/ge_models.dir/models/mlp.cpp.o.d"
  "/root/repo/src/models/model_factory.cpp" "src/CMakeFiles/ge_models.dir/models/model_factory.cpp.o" "gcc" "src/CMakeFiles/ge_models.dir/models/model_factory.cpp.o.d"
  "/root/repo/src/models/simple_cnn.cpp" "src/CMakeFiles/ge_models.dir/models/simple_cnn.cpp.o" "gcc" "src/CMakeFiles/ge_models.dir/models/simple_cnn.cpp.o.d"
  "/root/repo/src/models/tiny_deit.cpp" "src/CMakeFiles/ge_models.dir/models/tiny_deit.cpp.o" "gcc" "src/CMakeFiles/ge_models.dir/models/tiny_deit.cpp.o.d"
  "/root/repo/src/models/tiny_resnet.cpp" "src/CMakeFiles/ge_models.dir/models/tiny_resnet.cpp.o" "gcc" "src/CMakeFiles/ge_models.dir/models/tiny_resnet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ge_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ge_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ge_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
