file(REMOVE_RECURSE
  "CMakeFiles/ge_models.dir/models/mlp.cpp.o"
  "CMakeFiles/ge_models.dir/models/mlp.cpp.o.d"
  "CMakeFiles/ge_models.dir/models/model_factory.cpp.o"
  "CMakeFiles/ge_models.dir/models/model_factory.cpp.o.d"
  "CMakeFiles/ge_models.dir/models/simple_cnn.cpp.o"
  "CMakeFiles/ge_models.dir/models/simple_cnn.cpp.o.d"
  "CMakeFiles/ge_models.dir/models/tiny_deit.cpp.o"
  "CMakeFiles/ge_models.dir/models/tiny_deit.cpp.o.d"
  "CMakeFiles/ge_models.dir/models/tiny_resnet.cpp.o"
  "CMakeFiles/ge_models.dir/models/tiny_resnet.cpp.o.d"
  "libge_models.a"
  "libge_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ge_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
