# Empty dependencies file for ge_models.
# This may be replaced when dependencies are built.
