file(REMOVE_RECURSE
  "libge_models.a"
)
