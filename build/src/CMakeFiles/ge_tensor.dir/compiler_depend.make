# Empty compiler generated dependencies file for ge_tensor.
# This may be replaced when dependencies are built.
