file(REMOVE_RECURSE
  "CMakeFiles/ge_tensor.dir/tensor/rng.cpp.o"
  "CMakeFiles/ge_tensor.dir/tensor/rng.cpp.o.d"
  "CMakeFiles/ge_tensor.dir/tensor/tensor.cpp.o"
  "CMakeFiles/ge_tensor.dir/tensor/tensor.cpp.o.d"
  "CMakeFiles/ge_tensor.dir/tensor/tensor_ops.cpp.o"
  "CMakeFiles/ge_tensor.dir/tensor/tensor_ops.cpp.o.d"
  "libge_tensor.a"
  "libge_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ge_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
