file(REMOVE_RECURSE
  "libge_tensor.a"
)
