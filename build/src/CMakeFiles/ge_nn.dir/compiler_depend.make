# Empty compiler generated dependencies file for ge_nn.
# This may be replaced when dependencies are built.
