file(REMOVE_RECURSE
  "libge_nn.a"
)
