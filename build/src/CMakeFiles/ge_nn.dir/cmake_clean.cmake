file(REMOVE_RECURSE
  "CMakeFiles/ge_nn.dir/nn/activation.cpp.o"
  "CMakeFiles/ge_nn.dir/nn/activation.cpp.o.d"
  "CMakeFiles/ge_nn.dir/nn/attention.cpp.o"
  "CMakeFiles/ge_nn.dir/nn/attention.cpp.o.d"
  "CMakeFiles/ge_nn.dir/nn/conv.cpp.o"
  "CMakeFiles/ge_nn.dir/nn/conv.cpp.o.d"
  "CMakeFiles/ge_nn.dir/nn/embedding.cpp.o"
  "CMakeFiles/ge_nn.dir/nn/embedding.cpp.o.d"
  "CMakeFiles/ge_nn.dir/nn/linear.cpp.o"
  "CMakeFiles/ge_nn.dir/nn/linear.cpp.o.d"
  "CMakeFiles/ge_nn.dir/nn/loss.cpp.o"
  "CMakeFiles/ge_nn.dir/nn/loss.cpp.o.d"
  "CMakeFiles/ge_nn.dir/nn/module.cpp.o"
  "CMakeFiles/ge_nn.dir/nn/module.cpp.o.d"
  "CMakeFiles/ge_nn.dir/nn/norm.cpp.o"
  "CMakeFiles/ge_nn.dir/nn/norm.cpp.o.d"
  "CMakeFiles/ge_nn.dir/nn/optim.cpp.o"
  "CMakeFiles/ge_nn.dir/nn/optim.cpp.o.d"
  "CMakeFiles/ge_nn.dir/nn/pooling.cpp.o"
  "CMakeFiles/ge_nn.dir/nn/pooling.cpp.o.d"
  "CMakeFiles/ge_nn.dir/nn/sequential.cpp.o"
  "CMakeFiles/ge_nn.dir/nn/sequential.cpp.o.d"
  "CMakeFiles/ge_nn.dir/nn/transformer.cpp.o"
  "CMakeFiles/ge_nn.dir/nn/transformer.cpp.o.d"
  "libge_nn.a"
  "libge_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ge_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
