
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activation.cpp" "src/CMakeFiles/ge_nn.dir/nn/activation.cpp.o" "gcc" "src/CMakeFiles/ge_nn.dir/nn/activation.cpp.o.d"
  "/root/repo/src/nn/attention.cpp" "src/CMakeFiles/ge_nn.dir/nn/attention.cpp.o" "gcc" "src/CMakeFiles/ge_nn.dir/nn/attention.cpp.o.d"
  "/root/repo/src/nn/conv.cpp" "src/CMakeFiles/ge_nn.dir/nn/conv.cpp.o" "gcc" "src/CMakeFiles/ge_nn.dir/nn/conv.cpp.o.d"
  "/root/repo/src/nn/embedding.cpp" "src/CMakeFiles/ge_nn.dir/nn/embedding.cpp.o" "gcc" "src/CMakeFiles/ge_nn.dir/nn/embedding.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/CMakeFiles/ge_nn.dir/nn/linear.cpp.o" "gcc" "src/CMakeFiles/ge_nn.dir/nn/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/CMakeFiles/ge_nn.dir/nn/loss.cpp.o" "gcc" "src/CMakeFiles/ge_nn.dir/nn/loss.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "src/CMakeFiles/ge_nn.dir/nn/module.cpp.o" "gcc" "src/CMakeFiles/ge_nn.dir/nn/module.cpp.o.d"
  "/root/repo/src/nn/norm.cpp" "src/CMakeFiles/ge_nn.dir/nn/norm.cpp.o" "gcc" "src/CMakeFiles/ge_nn.dir/nn/norm.cpp.o.d"
  "/root/repo/src/nn/optim.cpp" "src/CMakeFiles/ge_nn.dir/nn/optim.cpp.o" "gcc" "src/CMakeFiles/ge_nn.dir/nn/optim.cpp.o.d"
  "/root/repo/src/nn/pooling.cpp" "src/CMakeFiles/ge_nn.dir/nn/pooling.cpp.o" "gcc" "src/CMakeFiles/ge_nn.dir/nn/pooling.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "src/CMakeFiles/ge_nn.dir/nn/sequential.cpp.o" "gcc" "src/CMakeFiles/ge_nn.dir/nn/sequential.cpp.o.d"
  "/root/repo/src/nn/transformer.cpp" "src/CMakeFiles/ge_nn.dir/nn/transformer.cpp.o" "gcc" "src/CMakeFiles/ge_nn.dir/nn/transformer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ge_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
