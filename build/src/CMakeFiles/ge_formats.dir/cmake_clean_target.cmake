file(REMOVE_RECURSE
  "libge_formats.a"
)
