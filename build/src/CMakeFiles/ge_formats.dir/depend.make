# Empty dependencies file for ge_formats.
# This may be replaced when dependencies are built.
