file(REMOVE_RECURSE
  "CMakeFiles/ge_formats.dir/formats/afp.cpp.o"
  "CMakeFiles/ge_formats.dir/formats/afp.cpp.o.d"
  "CMakeFiles/ge_formats.dir/formats/bfp.cpp.o"
  "CMakeFiles/ge_formats.dir/formats/bfp.cpp.o.d"
  "CMakeFiles/ge_formats.dir/formats/format_registry.cpp.o"
  "CMakeFiles/ge_formats.dir/formats/format_registry.cpp.o.d"
  "CMakeFiles/ge_formats.dir/formats/fp.cpp.o"
  "CMakeFiles/ge_formats.dir/formats/fp.cpp.o.d"
  "CMakeFiles/ge_formats.dir/formats/fxp.cpp.o"
  "CMakeFiles/ge_formats.dir/formats/fxp.cpp.o.d"
  "CMakeFiles/ge_formats.dir/formats/intq.cpp.o"
  "CMakeFiles/ge_formats.dir/formats/intq.cpp.o.d"
  "CMakeFiles/ge_formats.dir/formats/number_format.cpp.o"
  "CMakeFiles/ge_formats.dir/formats/number_format.cpp.o.d"
  "CMakeFiles/ge_formats.dir/formats/posit.cpp.o"
  "CMakeFiles/ge_formats.dir/formats/posit.cpp.o.d"
  "libge_formats.a"
  "libge_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ge_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
