
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/formats/afp.cpp" "src/CMakeFiles/ge_formats.dir/formats/afp.cpp.o" "gcc" "src/CMakeFiles/ge_formats.dir/formats/afp.cpp.o.d"
  "/root/repo/src/formats/bfp.cpp" "src/CMakeFiles/ge_formats.dir/formats/bfp.cpp.o" "gcc" "src/CMakeFiles/ge_formats.dir/formats/bfp.cpp.o.d"
  "/root/repo/src/formats/format_registry.cpp" "src/CMakeFiles/ge_formats.dir/formats/format_registry.cpp.o" "gcc" "src/CMakeFiles/ge_formats.dir/formats/format_registry.cpp.o.d"
  "/root/repo/src/formats/fp.cpp" "src/CMakeFiles/ge_formats.dir/formats/fp.cpp.o" "gcc" "src/CMakeFiles/ge_formats.dir/formats/fp.cpp.o.d"
  "/root/repo/src/formats/fxp.cpp" "src/CMakeFiles/ge_formats.dir/formats/fxp.cpp.o" "gcc" "src/CMakeFiles/ge_formats.dir/formats/fxp.cpp.o.d"
  "/root/repo/src/formats/intq.cpp" "src/CMakeFiles/ge_formats.dir/formats/intq.cpp.o" "gcc" "src/CMakeFiles/ge_formats.dir/formats/intq.cpp.o.d"
  "/root/repo/src/formats/number_format.cpp" "src/CMakeFiles/ge_formats.dir/formats/number_format.cpp.o" "gcc" "src/CMakeFiles/ge_formats.dir/formats/number_format.cpp.o.d"
  "/root/repo/src/formats/posit.cpp" "src/CMakeFiles/ge_formats.dir/formats/posit.cpp.o" "gcc" "src/CMakeFiles/ge_formats.dir/formats/posit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ge_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
