file(REMOVE_RECURSE
  "libge_data.a"
)
