# Empty compiler generated dependencies file for ge_data.
# This may be replaced when dependencies are built.
