file(REMOVE_RECURSE
  "CMakeFiles/ge_data.dir/data/dataloader.cpp.o"
  "CMakeFiles/ge_data.dir/data/dataloader.cpp.o.d"
  "CMakeFiles/ge_data.dir/data/synthetic.cpp.o"
  "CMakeFiles/ge_data.dir/data/synthetic.cpp.o.d"
  "libge_data.a"
  "libge_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ge_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
