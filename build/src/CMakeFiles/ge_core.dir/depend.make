# Empty dependencies file for ge_core.
# This may be replaced when dependencies are built.
