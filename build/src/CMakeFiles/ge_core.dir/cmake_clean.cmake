file(REMOVE_RECURSE
  "CMakeFiles/ge_core.dir/core/campaign.cpp.o"
  "CMakeFiles/ge_core.dir/core/campaign.cpp.o.d"
  "CMakeFiles/ge_core.dir/core/cli.cpp.o"
  "CMakeFiles/ge_core.dir/core/cli.cpp.o.d"
  "CMakeFiles/ge_core.dir/core/dse.cpp.o"
  "CMakeFiles/ge_core.dir/core/dse.cpp.o.d"
  "CMakeFiles/ge_core.dir/core/emulator.cpp.o"
  "CMakeFiles/ge_core.dir/core/emulator.cpp.o.d"
  "CMakeFiles/ge_core.dir/core/goldeneye.cpp.o"
  "CMakeFiles/ge_core.dir/core/goldeneye.cpp.o.d"
  "CMakeFiles/ge_core.dir/core/injector.cpp.o"
  "CMakeFiles/ge_core.dir/core/injector.cpp.o.d"
  "CMakeFiles/ge_core.dir/core/metrics.cpp.o"
  "CMakeFiles/ge_core.dir/core/metrics.cpp.o.d"
  "CMakeFiles/ge_core.dir/core/range_detector.cpp.o"
  "CMakeFiles/ge_core.dir/core/range_detector.cpp.o.d"
  "libge_core.a"
  "libge_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ge_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
