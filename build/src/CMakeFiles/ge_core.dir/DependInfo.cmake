
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/campaign.cpp" "src/CMakeFiles/ge_core.dir/core/campaign.cpp.o" "gcc" "src/CMakeFiles/ge_core.dir/core/campaign.cpp.o.d"
  "/root/repo/src/core/cli.cpp" "src/CMakeFiles/ge_core.dir/core/cli.cpp.o" "gcc" "src/CMakeFiles/ge_core.dir/core/cli.cpp.o.d"
  "/root/repo/src/core/dse.cpp" "src/CMakeFiles/ge_core.dir/core/dse.cpp.o" "gcc" "src/CMakeFiles/ge_core.dir/core/dse.cpp.o.d"
  "/root/repo/src/core/emulator.cpp" "src/CMakeFiles/ge_core.dir/core/emulator.cpp.o" "gcc" "src/CMakeFiles/ge_core.dir/core/emulator.cpp.o.d"
  "/root/repo/src/core/goldeneye.cpp" "src/CMakeFiles/ge_core.dir/core/goldeneye.cpp.o" "gcc" "src/CMakeFiles/ge_core.dir/core/goldeneye.cpp.o.d"
  "/root/repo/src/core/injector.cpp" "src/CMakeFiles/ge_core.dir/core/injector.cpp.o" "gcc" "src/CMakeFiles/ge_core.dir/core/injector.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/CMakeFiles/ge_core.dir/core/metrics.cpp.o" "gcc" "src/CMakeFiles/ge_core.dir/core/metrics.cpp.o.d"
  "/root/repo/src/core/range_detector.cpp" "src/CMakeFiles/ge_core.dir/core/range_detector.cpp.o" "gcc" "src/CMakeFiles/ge_core.dir/core/range_detector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ge_formats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ge_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ge_models.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ge_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ge_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
