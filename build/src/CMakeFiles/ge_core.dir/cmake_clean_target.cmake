file(REMOVE_RECURSE
  "libge_core.a"
)
