file(REMOVE_RECURSE
  "CMakeFiles/train_with_formats.dir/train_with_formats.cpp.o"
  "CMakeFiles/train_with_formats.dir/train_with_formats.cpp.o.d"
  "train_with_formats"
  "train_with_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_with_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
