# Empty dependencies file for train_with_formats.
# This may be replaced when dependencies are built.
