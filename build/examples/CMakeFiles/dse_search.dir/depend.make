# Empty dependencies file for dse_search.
# This may be replaced when dependencies are built.
