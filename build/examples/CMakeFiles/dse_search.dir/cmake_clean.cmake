file(REMOVE_RECURSE
  "CMakeFiles/dse_search.dir/dse_search.cpp.o"
  "CMakeFiles/dse_search.dir/dse_search.cpp.o.d"
  "dse_search"
  "dse_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dse_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
