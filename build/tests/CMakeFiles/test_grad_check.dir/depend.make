# Empty dependencies file for test_grad_check.
# This may be replaced when dependencies are built.
