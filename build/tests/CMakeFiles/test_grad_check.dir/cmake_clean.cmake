file(REMOVE_RECURSE
  "CMakeFiles/test_grad_check.dir/test_grad_check.cpp.o"
  "CMakeFiles/test_grad_check.dir/test_grad_check.cpp.o.d"
  "test_grad_check"
  "test_grad_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grad_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
