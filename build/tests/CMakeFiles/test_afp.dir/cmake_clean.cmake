file(REMOVE_RECURSE
  "CMakeFiles/test_afp.dir/test_afp.cpp.o"
  "CMakeFiles/test_afp.dir/test_afp.cpp.o.d"
  "test_afp"
  "test_afp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_afp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
