# Empty dependencies file for test_afp.
# This may be replaced when dependencies are built.
