file(REMOVE_RECURSE
  "CMakeFiles/test_range_detector.dir/test_range_detector.cpp.o"
  "CMakeFiles/test_range_detector.dir/test_range_detector.cpp.o.d"
  "test_range_detector"
  "test_range_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_range_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
