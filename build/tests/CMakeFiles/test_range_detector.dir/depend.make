# Empty dependencies file for test_range_detector.
# This may be replaced when dependencies are built.
