file(REMOVE_RECURSE
  "CMakeFiles/test_models_data.dir/test_models_data.cpp.o"
  "CMakeFiles/test_models_data.dir/test_models_data.cpp.o.d"
  "test_models_data"
  "test_models_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_models_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
