# Empty dependencies file for test_models_data.
# This may be replaced when dependencies are built.
