# Empty compiler generated dependencies file for test_model_structure.
# This may be replaced when dependencies are built.
