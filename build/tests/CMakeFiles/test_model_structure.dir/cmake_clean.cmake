file(REMOVE_RECURSE
  "CMakeFiles/test_model_structure.dir/test_model_structure.cpp.o"
  "CMakeFiles/test_model_structure.dir/test_model_structure.cpp.o.d"
  "test_model_structure"
  "test_model_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
