# Empty dependencies file for test_campaign_metrics.
# This may be replaced when dependencies are built.
