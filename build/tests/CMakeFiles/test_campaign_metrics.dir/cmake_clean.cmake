file(REMOVE_RECURSE
  "CMakeFiles/test_campaign_metrics.dir/test_campaign_metrics.cpp.o"
  "CMakeFiles/test_campaign_metrics.dir/test_campaign_metrics.cpp.o.d"
  "test_campaign_metrics"
  "test_campaign_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_campaign_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
