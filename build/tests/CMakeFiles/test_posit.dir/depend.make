# Empty dependencies file for test_posit.
# This may be replaced when dependencies are built.
