file(REMOVE_RECURSE
  "CMakeFiles/test_posit.dir/test_posit.cpp.o"
  "CMakeFiles/test_posit.dir/test_posit.cpp.o.d"
  "test_posit"
  "test_posit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_posit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
