# Empty compiler generated dependencies file for test_fxp_int.
# This may be replaced when dependencies are built.
