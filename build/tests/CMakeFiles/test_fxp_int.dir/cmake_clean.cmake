file(REMOVE_RECURSE
  "CMakeFiles/test_fxp_int.dir/test_fxp_int.cpp.o"
  "CMakeFiles/test_fxp_int.dir/test_fxp_int.cpp.o.d"
  "test_fxp_int"
  "test_fxp_int.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fxp_int.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
