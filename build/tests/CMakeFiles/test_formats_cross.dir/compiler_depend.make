# Empty compiler generated dependencies file for test_formats_cross.
# This may be replaced when dependencies are built.
