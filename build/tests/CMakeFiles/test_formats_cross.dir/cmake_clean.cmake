file(REMOVE_RECURSE
  "CMakeFiles/test_formats_cross.dir/test_formats_cross.cpp.o"
  "CMakeFiles/test_formats_cross.dir/test_formats_cross.cpp.o.d"
  "test_formats_cross"
  "test_formats_cross.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_formats_cross.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
