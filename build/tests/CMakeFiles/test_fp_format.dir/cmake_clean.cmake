file(REMOVE_RECURSE
  "CMakeFiles/test_fp_format.dir/test_fp_format.cpp.o"
  "CMakeFiles/test_fp_format.dir/test_fp_format.cpp.o.d"
  "test_fp_format"
  "test_fp_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fp_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
