# Empty dependencies file for test_fp_format.
# This may be replaced when dependencies are built.
