# Empty compiler generated dependencies file for goldeneye_cli.
# This may be replaced when dependencies are built.
