file(REMOVE_RECURSE
  "CMakeFiles/goldeneye_cli.dir/goldeneye_cli.cpp.o"
  "CMakeFiles/goldeneye_cli.dir/goldeneye_cli.cpp.o.d"
  "goldeneye_cli"
  "goldeneye_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goldeneye_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
