file(REMOVE_RECURSE
  "CMakeFiles/bench_error_models.dir/bench_error_models.cpp.o"
  "CMakeFiles/bench_error_models.dir/bench_error_models.cpp.o.d"
  "bench_error_models"
  "bench_error_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_error_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
