# Empty compiler generated dependencies file for bench_error_models.
# This may be replaced when dependencies are built.
