file(REMOVE_RECURSE
  "CMakeFiles/bench_delta_loss_convergence.dir/bench_delta_loss_convergence.cpp.o"
  "CMakeFiles/bench_delta_loss_convergence.dir/bench_delta_loss_convergence.cpp.o.d"
  "bench_delta_loss_convergence"
  "bench_delta_loss_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_delta_loss_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
