# Empty dependencies file for bench_delta_loss_convergence.
# This may be replaced when dependencies are built.
