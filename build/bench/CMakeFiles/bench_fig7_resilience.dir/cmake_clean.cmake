file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_resilience.dir/bench_fig7_resilience.cpp.o"
  "CMakeFiles/bench_fig7_resilience.dir/bench_fig7_resilience.cpp.o.d"
  "bench_fig7_resilience"
  "bench_fig7_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
