# Empty dependencies file for bench_fig7_resilience.
# This may be replaced when dependencies are built.
