file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hooks.dir/bench_ablation_hooks.cpp.o"
  "CMakeFiles/bench_ablation_hooks.dir/bench_ablation_hooks.cpp.o.d"
  "bench_ablation_hooks"
  "bench_ablation_hooks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hooks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
