# Empty compiler generated dependencies file for bench_ablation_hooks.
# This may be replaced when dependencies are built.
