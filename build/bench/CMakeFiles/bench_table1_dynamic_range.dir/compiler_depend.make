# Empty compiler generated dependencies file for bench_table1_dynamic_range.
# This may be replaced when dependencies are built.
