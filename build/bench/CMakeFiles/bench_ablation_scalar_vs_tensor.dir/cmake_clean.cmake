file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_scalar_vs_tensor.dir/bench_ablation_scalar_vs_tensor.cpp.o"
  "CMakeFiles/bench_ablation_scalar_vs_tensor.dir/bench_ablation_scalar_vs_tensor.cpp.o.d"
  "bench_ablation_scalar_vs_tensor"
  "bench_ablation_scalar_vs_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_scalar_vs_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
