# Empty dependencies file for bench_ablation_scalar_vs_tensor.
# This may be replaced when dependencies are built.
