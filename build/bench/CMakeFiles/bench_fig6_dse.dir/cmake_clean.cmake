file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_dse.dir/bench_fig6_dse.cpp.o"
  "CMakeFiles/bench_fig6_dse.dir/bench_fig6_dse.cpp.o.d"
  "bench_fig6_dse"
  "bench_fig6_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
