# Empty dependencies file for bench_fig6_dse.
# This may be replaced when dependencies are built.
