// ge::obs profiler (obs/profiler.cpp): span aggregation correctness
// (count/total/self with nesting), AttrScope keying and inheritance,
// the zero-cost-when-disabled contract, reset semantics, memory
// watermarks, graceful perf_event fallback, and collapsed-stack folding.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/perf_counters.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"
#include "parallel/thread_pool.hpp"

namespace ge::obs {
namespace {

struct ThreadGuard {
  int saved = parallel::num_threads();
  ~ThreadGuard() { parallel::set_num_threads(saved); }
};

void spin_for_us(int64_t us) {
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::microseconds(us);
  while (std::chrono::steady_clock::now() < until) {
  }
}

const SpanStats* find(const std::vector<SpanStats>& stats,
                      const std::string& category, const std::string& name,
                      const std::string& format = "",
                      const std::string& layer = "") {
  for (const auto& s : stats) {
    if (s.category == category && s.name == name && s.format == format &&
        s.layer == layer) {
      return &s;
    }
  }
  return nullptr;
}

TEST(Profiler, AggregatesCountTotalAndSelfAcrossNestedSpans) {
  ProfilingScope prof(/*on=*/true);
  reset_profile();
  for (int i = 0; i < 3; ++i) {
    Span outer("prof_test", "outer");
    spin_for_us(200);
    {
      Span inner("prof_test", "inner");
      spin_for_us(200);
    }
  }
  const auto stats = profile_snapshot();
  const SpanStats* outer = find(stats, "prof_test", "outer");
  const SpanStats* inner = find(stats, "prof_test", "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 3u);
  EXPECT_EQ(inner->count, 3u);
  // outer's total covers both spins; its *self* excludes inner's time
  EXPECT_GE(outer->total_ns, inner->total_ns);
  EXPECT_EQ(outer->self_ns, outer->total_ns - inner->total_ns);
  EXPECT_GT(outer->self_ns, 0u);
  EXPECT_GE(outer->max_ns, outer->min_ns);
  EXPECT_GT(outer->min_ns, 0);
  EXPECT_GT(outer->p50_us, 0.0);
  EXPECT_GE(outer->p99_us, outer->p50_us);
  reset_profile();
}

TEST(Profiler, DetailSuffixFoldsIntoBaseName) {
  // Span("cat", "name", "detail") traces as "name(detail)" but must
  // aggregate under the bounded base key "name".
  ProfilingScope prof(/*on=*/true);
  reset_profile();
  { Span a("prof_test", "site", "conv1"); }
  { Span b("prof_test", "site", "conv2"); }
  const auto stats = profile_snapshot();
  const SpanStats* s = find(stats, "prof_test", "site");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 2u);
  EXPECT_EQ(find(stats, "prof_test", "site(conv1)"), nullptr);
  reset_profile();
}

TEST(Profiler, AttrScopeKeysByFormatAndLayerAndInheritsEmpty) {
  ProfilingScope prof(/*on=*/true);
  reset_profile();
  {
    AttrScope campaign("int8", "");
    { Span s("prof_test", "trial"); }  // inherits layer "" from campaign
    {
      AttrScope site("", "conv1");  // empty format inherits "int8"
      Span s("prof_test", "trial");
    }
  }
  { Span s("prof_test", "trial"); }  // outside any scope
  const auto stats = profile_snapshot();
  const SpanStats* plain = find(stats, "prof_test", "trial");
  const SpanStats* fmt = find(stats, "prof_test", "trial", "int8", "");
  const SpanStats* both = find(stats, "prof_test", "trial", "int8", "conv1");
  ASSERT_NE(plain, nullptr);
  ASSERT_NE(fmt, nullptr);
  ASSERT_NE(both, nullptr);
  EXPECT_EQ(plain->count, 1u);
  EXPECT_EQ(fmt->count, 1u);
  EXPECT_EQ(both->count, 1u);
  reset_profile();
}

TEST(Profiler, DisabledProfilingRecordsNothing) {
  ProfilingScope prof(/*on=*/false);
  reset_profile();
  {
    AttrScope attr("int8", "conv1");
    Span s("prof_test", "dark");
  }
  EXPECT_TRUE(profile_snapshot().empty());
}

TEST(Profiler, SpanBornDarkStaysDarkWhenProfilingTurnsOn) {
  ProfilingScope prof(/*on=*/false);
  reset_profile();
  {
    Span s("prof_test", "born-dark");
    set_profiling_enabled(true);
  }
  EXPECT_TRUE(profile_snapshot().empty());
  set_profiling_enabled(false);
}

TEST(Profiler, ResetZeroesAggregatesButKeysKeepWorking) {
  ProfilingScope prof(/*on=*/true);
  reset_profile();
  { Span s("prof_test", "again"); }
  ASSERT_FALSE(profile_snapshot().empty());
  reset_profile();
  EXPECT_TRUE(profile_snapshot().empty());  // count==0 rows are skipped
  { Span s("prof_test", "again"); }
  const auto stats = profile_snapshot();
  const SpanStats* s = find(stats, "prof_test", "again");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 1u);
  reset_profile();
}

TEST(Profiler, AggregationIsExactUnderThreadPool) {
  ThreadGuard tg;
  parallel::set_num_threads(4);
  ProfilingScope prof(/*on=*/true);
  reset_profile();
  constexpr int64_t kN = 4096;
  std::atomic<int64_t> sink{0};
  parallel::parallel_for(0, kN, 16, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      Span s("prof_test", "unit");
      sink.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(sink.load(), kN);
  const auto stats = profile_snapshot();
  const SpanStats* s = find(stats, "prof_test", "unit");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, static_cast<uint64_t>(kN));
  EXPECT_GE(s->total_ns, s->self_ns);
  reset_profile();
}

TEST(Profiler, SnapshotSortsBySelfTimeDescending) {
  ProfilingScope prof(/*on=*/true);
  reset_profile();
  {
    Span slow("prof_test", "slow");
    spin_for_us(2000);
  }
  {
    Span fast("prof_test", "fast");
    spin_for_us(50);
  }
  const auto stats = profile_snapshot();
  ASSERT_GE(stats.size(), 2u);
  for (size_t i = 1; i < stats.size(); ++i) {
    EXPECT_GE(stats[i - 1].self_ns, stats[i].self_ns);
  }
  EXPECT_EQ(stats[0].name, "slow");
  reset_profile();
}

TEST(Profiler, MemoryWatermarksReportProcessAndArenaState) {
  const MemoryWatermarks mem = sample_memory();
#ifdef __linux__
  EXPECT_GT(mem.rss_bytes, 0u);
  EXPECT_GT(mem.peak_rss_bytes, 0u);
  EXPECT_GT(process_rss_bytes(), 0u);
#endif
  // arena accessors are registered at static init; peak >= live always
  EXPECT_GE(mem.arena_peak_bytes, mem.arena_live_bytes);
}

TEST(Profiler, PerfCountersDegradeGracefully) {
  // Whether or not perf_event_open works in this environment, the API
  // must not crash and must say why when unavailable.
  if (!perf::available()) {
    EXPECT_FALSE(perf::availability_note().empty());
    const perf::Sample s = perf::read();
    EXPECT_FALSE(s.valid);
  }
  perf::set_enabled(false);
  EXPECT_FALSE(perf::read().valid);  // disabled reads are invalid, not UB
  perf::set_enabled(true);
  // profiled spans still aggregate time with perf disabled or absent
  ProfilingScope prof(/*on=*/true);
  reset_profile();
  { Span s("prof_test", "no-perf"); }
  const auto stats = profile_snapshot();
  ASSERT_NE(find(stats, "prof_test", "no-perf"), nullptr);
  reset_profile();
}

TEST(Profiler, CollapsedStacksFoldNestingWithSelfTimes) {
  std::vector<TraceEvent> events;
  auto ev = [](const char* name, int tid, int64_t start_us, int64_t dur_us) {
    TraceEvent e;
    e.name = name;
    e.category = "t";
    e.tid = tid;
    e.start_ns = start_us * 1000;
    e.dur_ns = dur_us * 1000;
    return e;
  };
  // thread 0: root [0,100) containing child [10,40); thread 1: its own
  // root [0,50). Self time: root=70us, root;child=30us, other=50us.
  events.push_back(ev("root", 0, 0, 100));
  events.push_back(ev("child", 0, 10, 30));
  events.push_back(ev("other", 1, 0, 50));
  const std::string folded = collapsed_stacks(events);
  EXPECT_NE(folded.find("root 70\n"), std::string::npos) << folded;
  EXPECT_NE(folded.find("root;child 30\n"), std::string::npos) << folded;
  EXPECT_NE(folded.find("other 50\n"), std::string::npos) << folded;
  // lexically sorted lines
  EXPECT_LT(folded.find("other 50"), folded.find("root 70"));
}

TEST(Profiler, CollapsedStacksMergeRepeatedStacks) {
  std::vector<TraceEvent> events;
  for (int i = 0; i < 3; ++i) {
    TraceEvent e;
    e.name = "leaf";
    e.category = "t";
    e.tid = 0;
    e.start_ns = i * 10'000;
    e.dur_ns = 2'000;  // 2 us each
    events.push_back(e);
  }
  const std::string folded = collapsed_stacks(events);
  EXPECT_EQ(folded, "leaf 6\n");
}

}  // namespace
}  // namespace ge::obs
