// DSE heuristic: node budget, ladder structure, pass/fail logic, and the
// GoldenEye facade plus Table I/II helpers.
#include <gtest/gtest.h>

#include <cmath>

#include "core/dse.hpp"
#include "core/goldeneye.hpp"
#include "formats/format_registry.hpp"
#include "data/synthetic.hpp"
#include "models/model_factory.hpp"

namespace ge::core {
namespace {

struct Fixture {
  data::SyntheticVision data;
  models::TrainedModel trained;

  Fixture()
      : data([] {
          data::SyntheticVisionConfig cfg;
          cfg.train_count = 512;
          cfg.test_count = 128;
          return cfg;
        }()),
        trained([this] {
          models::TrainConfig tc;
          tc.epochs = 4;
          return models::ensure_trained("mlp", data, "/tmp/ge_dse_cache", tc);
        }()) {}
};

TEST(DseLadders, AllFamiliesHaveDescendingWidths) {
  for (const char* family : {"fp", "fxp", "int", "bfp", "afp", "posit"}) {
    const auto ladder = bitwidth_ladder(family);
    ASSERT_GE(ladder.size(), 4u) << family;
    for (size_t i = 1; i < ladder.size(); ++i) {
      EXPECT_LT(ladder[i].first, ladder[i - 1].first) << family;
    }
  }
  EXPECT_THROW(bitwidth_ladder("unum"), std::invalid_argument);
}

TEST(DseLadders, AllSpecsParse) {
  for (const char* family : {"fp", "fxp", "int", "bfp", "afp", "posit"}) {
    for (const auto& [w, spec] : bitwidth_ladder(family)) {
      EXPECT_TRUE(fmt::is_valid_spec(spec)) << spec;
    }
  }
}

TEST(Dse, RespectsNodeBudget) {
  Fixture f;
  const auto batch = data::take(f.data.test(), 0, 64);
  for (const char* family : {"fp", "fxp", "int", "bfp", "afp", "posit"}) {
    DseConfig cfg;
    cfg.family = family;
    const DseResult r = run_dse(*f.trained.model, batch, cfg);
    EXPECT_LE(static_cast<int>(r.nodes.size()), cfg.max_nodes) << family;
    EXPECT_GE(r.nodes.size(), 1u) << family;
  }
}

TEST(Dse, NodesAreSequentiallyNumbered) {
  Fixture f;
  const auto batch = data::take(f.data.test(), 0, 64);
  DseConfig cfg;
  cfg.family = "fp";
  const DseResult r = run_dse(*f.trained.model, batch, cfg);
  for (size_t i = 0; i < r.nodes.size(); ++i) {
    EXPECT_EQ(r.nodes[i].id, static_cast<int>(i) + 1);
  }
}

TEST(Dse, BestSpecPassesThreshold) {
  Fixture f;
  const auto batch = data::take(f.data.test(), 0, 64);
  DseConfig cfg;
  cfg.family = "fp";
  cfg.accuracy_drop_threshold = 0.05f;
  const DseResult r = run_dse(*f.trained.model, batch, cfg);
  ASSERT_FALSE(r.best_spec.empty());
  EXPECT_GE(r.best_accuracy, r.baseline_accuracy - 0.05f - 1e-6f);
  EXPECT_GT(r.passing_nodes(), 0);
}

TEST(Dse, LooseThresholdFindsNarrowerFormats) {
  Fixture f;
  const auto batch = data::take(f.data.test(), 0, 64);
  DseConfig tight;
  tight.family = "int";
  tight.accuracy_drop_threshold = 0.002f;
  DseConfig loose = tight;
  loose.accuracy_drop_threshold = 0.40f;
  const DseResult rt = run_dse(*f.trained.model, batch, tight);
  const DseResult rl = run_dse(*f.trained.model, batch, loose);
  EXPECT_LE(rl.best_bitwidth, rt.best_bitwidth);
}

TEST(Dse, ImpossibleThresholdStopsAtRoot) {
  Fixture f;
  const auto batch = data::take(f.data.test(), 0, 64);
  DseConfig cfg;
  cfg.family = "int";
  cfg.accuracy_drop_threshold = -1.0f;  // nothing can beat baseline + 1.0
  const DseResult r = run_dse(*f.trained.model, batch, cfg);
  EXPECT_EQ(r.nodes.size(), 1u);  // root fails, family rejected
  EXPECT_FALSE(r.nodes[0].pass);
  EXPECT_TRUE(r.best_spec.empty());
}

TEST(Facade, AccuracyHelpers) {
  Fixture f;
  GoldenEye ge(*f.trained.model, f.data);
  const float base = ge.baseline_accuracy(64);
  EXPECT_NEAR(base, ge.format_accuracy("fp_e8m23", 64), 1e-6f);
  EXPECT_GT(base, 0.3f);
}

TEST(Facade, InstrumentedLayers) {
  Fixture f;
  GoldenEye ge(*f.trained.model, f.data);
  const auto layers = ge.instrumented_layers("fp_e5m10");
  EXPECT_EQ(layers.size(), 3u);  // Mlp: 3 Linear layers
}

TEST(Facade, CampaignAndDsePassthrough) {
  Fixture f;
  GoldenEye ge(*f.trained.model, f.data);
  CampaignConfig cc;
  cc.format_spec = "int8";
  cc.injections_per_layer = 2;
  const auto cr = ge.campaign(cc, 8);
  EXPECT_EQ(cr.layers.size(), 3u);
  DseConfig dc;
  dc.family = "int";
  const auto dr = ge.dse(dc, 32);
  EXPECT_GE(dr.nodes.size(), 1u);
}

TEST(Table1, MatchesPaperValues) {
  const auto rows = table1_rows();
  ASSERT_EQ(rows.size(), 12u);
  // spot-check the anchor rows of the paper's Table I
  EXPECT_EQ(rows[0].label, "FP32 w/ DN");
  EXPECT_NEAR(rows[0].range_db, 1667.71, 0.5);
  EXPECT_NEAR(rows[1].range_db, 1529.23, 0.5);
  EXPECT_NEAR(rows[2].abs_max, 32768.0, 1e-6);
  EXPECT_NEAR(rows[3].range_db, 240.82, 0.5);   // FP16 w/ DN
  EXPECT_NEAR(rows[8].range_db, 42.08, 0.05);   // INT8
  EXPECT_NEAR(rows[10].abs_max, 240.0, 1e-9);   // FP8 e4m3
  EXPECT_NEAR(rows[11].range_db, 83.73, 0.05);  // AFP8
}

TEST(Table2, GoldenEyeColumnIsComplete) {
  const auto feats = table2_features();
  ASSERT_EQ(feats.size(), 10u);
  for (const auto& f : feats) {
    EXPECT_TRUE(f.goldeneye) << f.feature;  // the tool supports everything
  }
  // the differentiators: metadata injection and delta-loss are unique
  EXPECT_FALSE(feats[7].pytorchfi);
  EXPECT_FALSE(feats[7].qpytorch);
  EXPECT_FALSE(feats[9].pytorchfi);
}

}  // namespace
}  // namespace ge::core
