// Seeded RNG: reproducibility is the backbone of every experiment here.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/rng.hpp"

namespace ge {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform(), b.uniform());
    EXPECT_EQ(a.randint(0, 1000), b.randint(0, 1000));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.randint(0, 1 << 30) == b.randint(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform(-2.0f, 5.0f);
    EXPECT_GE(v, -2.0f);
    EXPECT_LT(v, 5.0f);
  }
}

TEST(Rng, RandintInclusiveBounds) {
  Rng rng(8);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.randint(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalTensorStatistics) {
  Rng rng(9);
  Tensor t = rng.normal_tensor({10000}, 1.0f, 2.0f);
  double mean = 0.0;
  for (float v : t.flat()) mean += v;
  mean /= t.numel();
  double var = 0.0;
  for (float v : t.flat()) var += (v - mean) * (v - mean);
  var /= t.numel();
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, KaimingScalesWithFanIn) {
  Rng rng(10);
  Tensor t = rng.kaiming_normal({20000}, 50);
  double var = 0.0;
  for (float v : t.flat()) var += double(v) * v;
  var /= t.numel();
  EXPECT_NEAR(var, 2.0 / 50.0, 0.01);
}

TEST(Rng, XavierRespectsBound) {
  Rng rng(11);
  const float bound = std::sqrt(6.0f / (30 + 40));
  Tensor t = rng.xavier_uniform({5000}, 30, 40);
  for (float v : t.flat()) {
    EXPECT_GE(v, -bound);
    EXPECT_LE(v, bound);
  }
}

TEST(Rng, ForkIsDeterministicAndDecoupled) {
  Rng a(5), b(5);
  Rng fa = a.fork();
  Rng fb = b.fork();
  EXPECT_EQ(fa.uniform(), fb.uniform());  // same parent state -> same child
  // child stream differs from the parent's continued stream
  EXPECT_NE(fa.uniform(), a.uniform());
}

}  // namespace
}  // namespace ge
