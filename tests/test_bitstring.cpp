// BitString: the bit-pattern currency of the scalar format API and the
// fault injector.
#include <gtest/gtest.h>

#include "formats/number_format.hpp"

namespace ge::fmt {
namespace {

TEST(BitString, ConstructionMasksToWidth) {
  BitString b(0xFF, 4);
  EXPECT_EQ(b.value(), 0xFu);
  EXPECT_EQ(b.width(), 4);
}

TEST(BitString, WidthBoundsChecked) {
  EXPECT_THROW(BitString(0, -1), std::invalid_argument);
  EXPECT_THROW(BitString(0, 65), std::invalid_argument);
  EXPECT_NO_THROW(BitString(~uint64_t{0}, 64));
}

TEST(BitString, BitReadsLsbFirst) {
  BitString b(0b1010, 4);
  EXPECT_FALSE(b.bit(0));
  EXPECT_TRUE(b.bit(1));
  EXPECT_FALSE(b.bit(2));
  EXPECT_TRUE(b.bit(3));
}

TEST(BitString, SetAndFlip) {
  BitString b(0, 8);
  b.set_bit(3, true);
  EXPECT_EQ(b.value(), 8u);
  b.flip_bit(3);
  EXPECT_EQ(b.value(), 0u);
  b.flip_bit(0);
  EXPECT_EQ(b.value(), 1u);
  b.set_bit(0, false);
  EXPECT_EQ(b.value(), 0u);
}

TEST(BitString, FlipTwiceIsIdentity) {
  for (int bit = 0; bit < 16; ++bit) {
    BitString b(0xBEEF, 16);
    const uint64_t before = b.value();
    b.flip_bit(bit);
    EXPECT_NE(b.value(), before);
    b.flip_bit(bit);
    EXPECT_EQ(b.value(), before);
  }
}

TEST(BitString, IndexOutOfRangeThrows) {
  BitString b(0, 4);
  EXPECT_THROW(b.bit(4), std::out_of_range);
  EXPECT_THROW(b.bit(-1), std::out_of_range);
  EXPECT_THROW(b.flip_bit(4), std::out_of_range);
  EXPECT_THROW(b.set_bit(5, true), std::out_of_range);
}

TEST(BitString, ToStringIsMsbFirst) {
  EXPECT_EQ(BitString(0b0110, 4).to_string(), "0110");
  EXPECT_EQ(BitString(1, 3).to_string(), "001");
}

TEST(BitString, EqualityIncludesWidth) {
  EXPECT_EQ(BitString(3, 4), BitString(3, 4));
  EXPECT_FALSE(BitString(3, 4) == BitString(3, 5));
}

TEST(Helpers, FloorLog2) {
  EXPECT_EQ(floor_log2(1.0f), 0);
  EXPECT_EQ(floor_log2(1.5f), 0);
  EXPECT_EQ(floor_log2(2.0f), 1);
  EXPECT_EQ(floor_log2(0.5f), -1);
  EXPECT_EQ(floor_log2(0.49f), -2);
  EXPECT_EQ(floor_log2(-8.0f), 3);  // uses |x|
}

TEST(Helpers, Pow2f) {
  EXPECT_EQ(pow2f(0), 1.0f);
  EXPECT_EQ(pow2f(10), 1024.0f);
  EXPECT_EQ(pow2f(-3), 0.125f);
}

TEST(Helpers, RoundToStepIsNearestEven) {
  EXPECT_EQ(round_to_step(0.5f, 1.0f), 0.0f);   // tie -> even
  EXPECT_EQ(round_to_step(1.5f, 1.0f), 2.0f);   // tie -> even
  EXPECT_EQ(round_to_step(0.75f, 0.5f), 1.0f);  // tie at 1.5 steps -> 2 steps? no: 0.75/0.5=1.5 -> 2 -> 1.0
  EXPECT_EQ(round_to_step(1.3f, 1.0f), 1.0f);
  EXPECT_EQ(round_to_step(-1.5f, 1.0f), -2.0f);
}

}  // namespace
}  // namespace ge::fmt
