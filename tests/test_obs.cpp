// ge::obs telemetry: span recording/nesting, counter atomicity under the
// thread pool, quantization-error summaries, JSONL schema, and Chrome
// trace validity (checked with a minimal JSON parser, below). Also pins
// the zero-cost-when-disabled contract: a dark run records nothing.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/metrics_server.hpp"
#include "obs/profiler.hpp"
#include "obs/run_log.hpp"
#include "obs/telemetry.hpp"
#include "parallel/thread_pool.hpp"

namespace ge::obs {
namespace {

// --- minimal JSON syntax checker -------------------------------------------
// Recursive-descent validator: accepts objects/arrays/strings/numbers/
// true/false/null. Good enough to prove the exporters emit parseable JSON
// without pulling in a JSON library.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing '"'
    return true;
  }

  bool number() {
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* lit) {
    const std::string l(lit);
    if (s_.compare(pos_, l.size(), l) != 0) return false;
    pos_ += l.size();
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

struct ThreadGuard {
  int saved = parallel::num_threads();
  ~ThreadGuard() { parallel::set_num_threads(saved); }
};

// --- tracing ---------------------------------------------------------------

TEST(ObsTrace, SpansNestAndRecordDurations) {
  TelemetryScope scope(/*tracing=*/true, /*metrics=*/false);
  clear_trace();
  {
    Span outer("test", "outer");
    { Span inner("test", "inner", "detail"); }
  }
  const auto events = collect_trace();
  ASSERT_EQ(events.size(), 2u);
  // sorted by start time: outer starts first, closes last
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].name, "inner(detail)");
  EXPECT_STREQ(events[0].category, "test");
  EXPECT_LE(events[0].start_ns, events[1].start_ns);
  EXPECT_GE(events[0].start_ns + events[0].dur_ns,
            events[1].start_ns + events[1].dur_ns);
  clear_trace();
}

TEST(ObsTrace, DisabledTracingRecordsNothing) {
  TelemetryScope scope(/*tracing=*/false, /*metrics=*/false);
  clear_trace();
  {
    Span s("test", "invisible");
    Span d("test", "also-invisible", "x");
  }
  EXPECT_EQ(trace_event_count(), 0u);
}

TEST(ObsTrace, InertSpanWithNullName) {
  TelemetryScope scope(/*tracing=*/true, /*metrics=*/false);
  clear_trace();
  { Span s("test", nullptr); }
  EXPECT_EQ(trace_event_count(), 0u);
  clear_trace();
}

TEST(ObsTrace, SpanEnabledMidScopeDoesNotRecordHalfEvent) {
  // A span constructed while tracing is off must stay inert even if
  // tracing turns on before its destructor runs.
  TelemetryScope scope(/*tracing=*/false, /*metrics=*/false);
  clear_trace();
  {
    Span s("test", "born-dark");
    set_tracing_enabled(true);
  }
  EXPECT_EQ(trace_event_count(), 0u);
  set_tracing_enabled(false);
  clear_trace();
}

TEST(ObsTrace, ChromeTraceJsonIsValidAndCarriesEvents) {
  TelemetryScope scope(/*tracing=*/true, /*metrics=*/false);
  clear_trace();
  {
    Span a("alpha", "one");
    Span b("beta", "two", "p");
  }
  const std::string json = chrome_trace_json();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"two(p)\""), std::string::npos);
  clear_trace();
}

TEST(ObsTrace, PoolSpansAppearUnderParallelFor) {
  ThreadGuard tg;
  parallel::set_num_threads(4);
  TelemetryScope scope(/*tracing=*/true, /*metrics=*/false);
  clear_trace();
  std::atomic<int64_t> sink{0};
  parallel::parallel_for(0, 1024, 64, [&](int64_t lo, int64_t hi) {
    sink.fetch_add(hi - lo, std::memory_order_relaxed);
  });
  const auto events = collect_trace();
  EXPECT_EQ(sink.load(), 1024);
  bool saw_job = false, saw_chunk = false;
  for (const auto& e : events) {
    if (e.name == "parallel_for" || e.name == "parallel_for[serial]") {
      saw_job = true;
    }
    if (e.name == "chunk") saw_chunk = true;
  }
  EXPECT_TRUE(saw_job);
  EXPECT_TRUE(saw_chunk);
  clear_trace();
}

// --- counters --------------------------------------------------------------

TEST(ObsCounters, AtomicUnderParallelFor) {
  ThreadGuard tg;
  parallel::set_num_threads(4);
  TelemetryScope scope(/*tracing=*/false, /*metrics=*/true);
  reset_counters();
  const uint64_t before = counter_value(Counter::kInjections);
  parallel::parallel_for(0, 10000, 16, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) add(Counter::kInjections);
  });
  EXPECT_EQ(counter_value(Counter::kInjections), before + 10000);
  reset_counters();
}

TEST(ObsCounters, DisabledMetricsCountNothing) {
  TelemetryScope scope(/*tracing=*/false, /*metrics=*/false);
  reset_counters();
  add(Counter::kTrials, 42);
  EXPECT_EQ(counter_value(Counter::kTrials), 0u);
}

TEST(ObsCounters, NamesAreStableSnakeCase) {
  EXPECT_STREQ(counter_name(Counter::kElementsQuantized),
               "elements_quantized");
  EXPECT_STREQ(counter_name(Counter::kSpansDropped), "spans_dropped");
}

TEST(ObsGauges, LastWriteWins) {
  TelemetryScope scope(/*tracing=*/false, /*metrics=*/true);
  reset_gauges();
  set_gauge("x.rate", 1.0);
  set_gauge("x.rate", 2.5);
  const auto gs = gauges();
  ASSERT_EQ(gs.size(), 1u);
  EXPECT_EQ(gs[0].first, "x.rate");
  EXPECT_EQ(gs[0].second, 2.5);
  reset_gauges();
}

// --- quantization statistics -----------------------------------------------

TEST(ObsQuant, RecordQuantizationCountsSaturationNanInf) {
  TelemetryScope scope(/*tracing=*/false, /*metrics=*/true);
  reset_counters();
  const float kInf = std::numeric_limits<float>::infinity();
  const float kNan = std::numeric_limits<float>::quiet_NaN();
  // format with abs_max 4: in 8.0 clamps to 4.0; in 1.0 passes through
  const float before[] = {1.0f, 8.0f, -16.0f, kNan, kInf};
  const float after[] = {1.0f, 4.0f, -4.0f, kNan, 4.0f};
  record_quantization(before, after, 5, 4.0);
  EXPECT_EQ(counter_value(Counter::kElementsQuantized), 5u);
  // NaN/Inf inputs are classified as such, not as saturations
  EXPECT_EQ(counter_value(Counter::kSaturations), 2u);
  EXPECT_EQ(counter_value(Counter::kNanInputs), 1u);
  EXPECT_EQ(counter_value(Counter::kInfInputs), 1u);
  reset_counters();
}

TEST(ObsQuant, LayerSummaryMathAndMerge) {
  TelemetryScope scope(/*tracing=*/false, /*metrics=*/true);
  reset_layer_quant_summaries();
  const float b1[] = {1.0f, 2.0f};
  const float a1[] = {0.5f, 2.0f};  // errors 0.5, 0
  const float b2[] = {10.0f};
  const float a2[] = {4.0f};  // clamped at abs_max=4; error 6
  record_layer_quant_error("net.fc1", b1, a1, 2, 4.0);
  record_layer_quant_error("net.fc1", b2, a2, 1, 4.0);
  const auto sums = layer_quant_summaries();
  ASSERT_EQ(sums.size(), 1u);
  EXPECT_EQ(sums[0].first, "net.fc1");
  const QuantErrorSummary& s = sums[0].second;
  EXPECT_EQ(s.elements, 3u);
  EXPECT_EQ(s.saturated, 1u);
  EXPECT_DOUBLE_EQ(s.sum_abs_err, 6.5);
  EXPECT_DOUBLE_EQ(s.max_abs_err, 6.0);
  EXPECT_DOUBLE_EQ(s.mean_abs_err(), 6.5 / 3.0);
  EXPECT_DOUBLE_EQ(s.saturation_rate(), 1.0 / 3.0);
  reset_layer_quant_summaries();
}

// --- JSONL run log ---------------------------------------------------------

TEST(ObsRunLog, JsonObjectRendersTypedFields) {
  JsonObject o;
  o.str("s", "a\"b\\c\n")
      .num("d", 1.5)
      .num("i", int64_t{-7})
      .num("u", uint64_t{9})
      .boolean("t", true)
      .raw("nested", "{\"x\":1}");
  const std::string j = o.render();
  JsonChecker checker(j);
  EXPECT_TRUE(checker.valid()) << j;
  EXPECT_NE(j.find("\"s\":\"a\\\"b\\\\c\\n\""), std::string::npos);
  EXPECT_NE(j.find("\"i\":-7"), std::string::npos);
  EXPECT_NE(j.find("\"nested\":{\"x\":1}"), std::string::npos);
}

TEST(ObsRunLog, NonFiniteNumbersBecomeNull) {
  JsonObject o;
  o.num("inf", std::numeric_limits<double>::infinity())
      .num("nan", std::numeric_limits<double>::quiet_NaN());
  const std::string j = o.render();
  JsonChecker checker(j);
  EXPECT_TRUE(checker.valid()) << j;
  EXPECT_NE(j.find("\"inf\":null"), std::string::npos);
  EXPECT_NE(j.find("\"nan\":null"), std::string::npos);
}

TEST(ObsRunLog, EventLinesCarrySchemaAndType) {
  std::ostringstream os;
  RunLog log(os);
  ASSERT_TRUE(log.ok());
  JsonObject row;
  row.str("layer", "conv1").num("sdc", int64_t{3});
  log.event("campaign_layer", row);
  log.event("campaign_layer", JsonObject().str("layer", "conv2"));
  // two lines, each independently valid JSON with the schema head
  std::istringstream lines(os.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    ++count;
    JsonChecker checker(line);
    EXPECT_TRUE(checker.valid()) << line;
    EXPECT_EQ(line.find("{\"schema\":2,\"type\":\"campaign_layer\""), 0u)
        << line;
  }
  EXPECT_EQ(count, 2);
}

TEST(ObsRunLog, MetricsSnapshotEmitsLayerQuantAndCounters) {
  TelemetryScope scope(/*tracing=*/false, /*metrics=*/true);
  reset_all();
  add(Counter::kTrials, 5);
  set_gauge("campaign.trials_per_sec", 123.0);
  const float b[] = {2.0f};
  const float a[] = {1.0f};
  record_layer_quant_error("net.conv1", b, a, 1, 8.0);

  std::ostringstream os;
  RunLog log(os);
  log.metrics_snapshot();
  const std::string text = os.str();
  EXPECT_NE(text.find("\"type\":\"layer_quant\""), std::string::npos);
  EXPECT_NE(text.find("\"net.conv1\""), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"metrics\""), std::string::npos);
  EXPECT_NE(text.find("\"trials\":5"), std::string::npos);
  EXPECT_NE(text.find("\"campaign.trials_per_sec\":123"), std::string::npos);
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    JsonChecker checker(line);
    EXPECT_TRUE(checker.valid()) << line;
  }
  reset_all();
}

TEST(ObsRunLog, BadPathReportsNotOk) {
  RunLog log("/nonexistent-dir/deep/report.jsonl");
  EXPECT_FALSE(log.ok());
  log.event("run_header", JsonObject().str("x", "y"));  // must not throw
}

TEST(ObsRunLog, AppendModeContinuesExistingReport) {
  const std::string path = "/tmp/ge_obs_append.jsonl";
  std::remove(path.c_str());
  {
    RunLog log(path);
    log.event("run_header", JsonObject().str("command", "campaign"));
  }
  {
    RunLog log(path, RunLog::OpenMode::kAppend);
    ASSERT_TRUE(log.ok());
    log.event("trial", JsonObject().num("trial", int64_t{0}));
  }
  std::ifstream f(path);
  const std::string all((std::istreambuf_iterator<char>(f)),
                        std::istreambuf_iterator<char>());
  // the resumed stream keeps the first run's rows
  EXPECT_NE(all.find("\"type\":\"run_header\""), std::string::npos);
  EXPECT_NE(all.find("\"type\":\"trial\""), std::string::npos);
  {
    RunLog log(path);  // default mode truncates — a fresh report
    log.event("metrics", JsonObject());
  }
  std::ifstream f2(path);
  const std::string all2((std::istreambuf_iterator<char>(f2)),
                         std::istreambuf_iterator<char>());
  EXPECT_EQ(all2.find("run_header"), std::string::npos);
  std::remove(path.c_str());
}

// --- histograms ------------------------------------------------------------

TEST(ObsHistogram, SmallIntegersLandInExactBuckets) {
  TelemetryScope scope(/*tracing=*/false, /*metrics=*/true);
  reset_all();
  Histogram& h = histogram("test.bits");
  for (int b = 0; b < 32; ++b) h.record(static_cast<double>(b));
  const auto snap = h.snapshot();
  ASSERT_EQ(snap.count, 32u);
  EXPECT_EQ(snap.min, 0.0);
  EXPECT_EQ(snap.max, 31.0);
  // every bit position below 32 owns a distinct bucket whose lower bound
  // is the integer itself, so bucketed quantiles are exact for bit tallies
  for (int b = 1; b < 31; ++b) {
    EXPECT_NE(Histogram::bucket_index(static_cast<double>(b)),
              Histogram::bucket_index(static_cast<double>(b + 1)))
        << b;
  }
  for (int b = 0; b < 32; ++b) {
    const double q = static_cast<double>(b + 1) / 32.0;  // rank b+1
    EXPECT_EQ(snap.quantile(q), static_cast<double>(b)) << b;
  }
  reset_all();
}

TEST(ObsHistogram, QuantileMatchesSortedOracleWithinOneBucket) {
  TelemetryScope scope(/*tracing=*/false, /*metrics=*/true);
  reset_all();
  Histogram& h = histogram("test.oracle");
  std::vector<double> vals;
  uint64_t state = 12345;
  for (int i = 0; i < 2000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const double u =
        static_cast<double>(state >> 11) / static_cast<double>(1ULL << 53);
    const double v = std::exp(u * 10.0 - 2.0);  // spread over ~14 octaves
    vals.push_back(v);
    h.record(v);
  }
  std::sort(vals.begin(), vals.end());
  const auto snap = h.snapshot();
  for (double q : {0.50, 0.95, 0.99}) {
    const size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(vals.size())));
    const double oracle = vals[rank - 1];
    const double got = snap.quantile(q);
    // nearest-rank over buckets: the reported value is the lower bound of
    // the bucket holding the oracle value
    EXPECT_EQ(Histogram::bucket_index(got), Histogram::bucket_index(oracle))
        << "q=" << q;
    EXPECT_LE(got, oracle);
    EXPECT_GT(Histogram::bucket_upper(Histogram::bucket_index(got)), oracle);
  }
  reset_all();
}

TEST(ObsHistogram, ShardMergeIdenticalAcrossThreadCounts) {
  ThreadGuard tg;
  TelemetryScope scope(/*tracing=*/false, /*metrics=*/true);
  reset_all();
  // Integer-valued samples: per-shard partial sums are exact in double,
  // so the merged snapshot must be bitwise identical at any thread count.
  const auto run_with = [](int threads, const char* name) {
    parallel::set_num_threads(threads);
    Histogram& h = histogram(name);
    parallel::parallel_for(0, 4096, 16, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        h.record(static_cast<double>(i % 97));
      }
    });
    return h.snapshot();
  };
  const auto a = run_with(1, "test.merge_t1");
  const auto b = run_with(4, "test.merge_t4");
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.buckets, b.buckets);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.quantile(0.5), b.quantile(0.5));
  EXPECT_EQ(a.quantile(0.99), b.quantile(0.99));
  reset_all();
}

TEST(ObsHistogram, DisabledMetricsRecordNothing) {
  TelemetryScope scope(/*tracing=*/false, /*metrics=*/false);
  Histogram& h = histogram("test.dark");
  h.record(5.0);
  EXPECT_EQ(h.snapshot().count, 0u);
}

TEST(ObsHistogram, ResetZeroesCountsButKeepsRegistration) {
  TelemetryScope scope(/*tracing=*/false, /*metrics=*/true);
  reset_all();
  Histogram& h = histogram("test.reset");
  h.record(3.0);
  h.record(7.0);
  EXPECT_EQ(h.snapshot().count, 2u);
  reset_histograms();
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0.0);
  EXPECT_EQ(snap.quantile(0.5), 0.0);
  h.record(1.0);  // the shard table survives the reset
  EXPECT_EQ(h.snapshot().count, 1u);
  reset_all();
}

TEST(ObsHistogram, SnapshotRowsAppearInMetricsSnapshot) {
  TelemetryScope scope(/*tracing=*/false, /*metrics=*/true);
  reset_all();
  histogram("test.snapshot_row").record(0.25);
  histogram("test.snapshot_row").record(4.0);
  std::ostringstream os;
  RunLog log(os);
  log.metrics_snapshot();
  const std::string text = os.str();
  EXPECT_NE(text.find("\"type\":\"histogram\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"test.snapshot_row\""), std::string::npos);
  EXPECT_NE(text.find("\"count\":2"), std::string::npos);
  // registered-but-unused histograms emit no row
  (void)histogram("test.snapshot_unused");
  std::ostringstream os2;
  RunLog log2(os2);
  log2.metrics_snapshot();
  EXPECT_EQ(os2.str().find("test.snapshot_unused"), std::string::npos);
  reset_all();
}

// --- metrics server --------------------------------------------------------

TEST(ObsMetricsServer, ServesPrometheusTextOnEphemeralPort) {
  TelemetryScope scope(/*tracing=*/false, /*metrics=*/true);
  reset_all();
  add(Counter::kTrials, 7);
  set_gauge("campaign.trials_done", 7.0);
  histogram("test.server_hist").record(2.0);

  MetricsServer server(/*port=*/0);
  ASSERT_TRUE(server.ok()) << server.last_error();
  ASSERT_GT(server.port(), 0);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server.port()));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char req[] = "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_GT(::send(fd, req, sizeof(req) - 1, 0), 0);
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    resp.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(resp.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(resp.find("# TYPE ge_trials_total counter"), std::string::npos);
  EXPECT_NE(resp.find("ge_trials_total 7"), std::string::npos);
  EXPECT_NE(resp.find("ge_campaign_trials_done 7"), std::string::npos);
  EXPECT_NE(resp.find("# TYPE ge_test_server_hist histogram"),
            std::string::npos);
  EXPECT_NE(resp.find("ge_test_server_hist_count 1"), std::string::npos);
  EXPECT_NE(resp.find("ge_test_server_hist_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  reset_all();
}

TEST(ObsTrace, WorkerSpansSurviveThreadRetirement) {
  // Shrinking the pool joins workers; their thread-local span buffers must
  // be flushed into the global trace on exit, not dropped with the thread.
  ThreadGuard tg;
  parallel::set_num_threads(4);
  TelemetryScope scope(/*tracing=*/true, /*metrics=*/false);
  clear_trace();
  std::atomic<int64_t> sink{0};
  parallel::parallel_for(0, 2048, 32, [&](int64_t lo, int64_t hi) {
    sink.fetch_add(hi - lo, std::memory_order_relaxed);
  });
  EXPECT_EQ(sink.load(), 2048);
  parallel::set_num_threads(1);  // retires the workers
  const auto events = collect_trace();
  size_t chunks = 0;
  std::vector<int> chunk_tids;
  for (const auto& e : events) {
    if (e.name == "chunk") {
      ++chunks;
      chunk_tids.push_back(e.tid);
    }
  }
  EXPECT_GE(chunks, 2048u / 32u);
  // chunks ran on more than one (now-retired) worker thread and survived
  std::sort(chunk_tids.begin(), chunk_tids.end());
  chunk_tids.erase(std::unique(chunk_tids.begin(), chunk_tids.end()),
                   chunk_tids.end());
  EXPECT_GE(chunk_tids.size(), 2u);
  clear_trace();
}

namespace {

std::string http_get(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string req = "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n";
  if (::send(fd, req.data(), req.size(), 0) <= 0) {
    ::close(fd);
    return {};
  }
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    resp.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return resp;
}

}  // namespace

TEST(ObsMetricsServer, ConcurrentScrapesDuringActiveCampaignAreComplete) {
  // Several scrapers hammer /metrics while spans and counters are being
  // recorded: every response must be a complete, untorn rendering whose
  // body length matches its Content-Length header.
  TelemetryScope scope(/*tracing=*/false, /*metrics=*/true);
  ProfilingScope prof(/*on=*/true);
  reset_all();

  MetricsServer server(/*port=*/0);
  ASSERT_TRUE(server.ok()) << server.last_error();
  ASSERT_GT(server.port(), 0);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      AttrScope attr("int8", "conv1");
      Span s("scrape_test", "work");
      add(Counter::kTrials);
      set_gauge("campaign.trials_done",
                static_cast<double>(counter_value(Counter::kTrials)));
      histogram("scrape_test.delta").record(0.5);
    }
  });

  constexpr int kScrapers = 4;
  constexpr int kGetsPerScraper = 8;
  std::atomic<int> bad{0};
  std::vector<std::thread> scrapers;
  scrapers.reserve(kScrapers);
  for (int t = 0; t < kScrapers; ++t) {
    scrapers.emplace_back([&] {
      for (int i = 0; i < kGetsPerScraper; ++i) {
        const std::string resp = http_get(server.port(), "/metrics");
        if (resp.find("HTTP/1.1 200 OK") != 0) {
          bad.fetch_add(1);
          continue;
        }
        const size_t hdr_end = resp.find("\r\n\r\n");
        const size_t cl = resp.find("Content-Length: ");
        if (hdr_end == std::string::npos || cl == std::string::npos ||
            cl > hdr_end) {
          bad.fetch_add(1);
          continue;
        }
        const size_t want =
            static_cast<size_t>(std::strtoull(resp.c_str() + cl + 16,
                                              nullptr, 10));
        const std::string body = resp.substr(hdr_end + 4);
        if (body.size() != want ||
            body.find("# TYPE ge_trials_total counter") ==
                std::string::npos) {
          bad.fetch_add(1);
        }
      }
    });
  }
  for (auto& s : scrapers) s.join();
  stop.store(true, std::memory_order_relaxed);
  writer.join();

  EXPECT_EQ(bad.load(), 0);
  // the writer recorded profiled spans; at least one late scrape would have
  // seen them, and the snapshot must agree
  const auto spans = profile_snapshot();
  bool saw = false;
  for (const auto& s : spans) {
    if (s.category == "scrape_test" && s.name == "work" &&
        s.format == "int8" && s.layer == "conv1") {
      saw = true;
    }
  }
  EXPECT_TRUE(saw);
  reset_all();
}

TEST(ObsMetricsServer, PortConflictIsDiagnosedNotFatal) {
  MetricsServer first(/*port=*/0);
  ASSERT_TRUE(first.ok()) << first.last_error();
  MetricsServer second(first.port());  // same port: bind must fail
  EXPECT_FALSE(second.ok());
  EXPECT_NE(second.last_error().find("bind"), std::string::npos);
}

TEST(ObsMetricsServer, ResponsesCarryContentLengthAndCloseTheConnection) {
  // Regression: every response must carry Content-Length and close the
  // connection afterwards — a scraper that trusts HTTP/1.1 keep-alive
  // semantics must not hang waiting for more bytes. The recv loop in
  // http_get runs to EOF, so a matching body length proves both halves.
  TelemetryScope scope(/*tracing=*/false, /*metrics=*/true);
  reset_all();
  add(Counter::kTrials, 3);
  MetricsServer server(/*port=*/0);
  ASSERT_TRUE(server.ok()) << server.last_error();
  for (const std::string path : {"/metrics", "/status", "/nonsense"}) {
    const std::string resp = http_get(server.port(), path);
    ASSERT_EQ(resp.find("HTTP/1.1 200 OK"), 0u) << path;
    EXPECT_NE(resp.find("Connection: close"), std::string::npos) << path;
    const size_t hdr_end = resp.find("\r\n\r\n");
    const size_t cl = resp.find("Content-Length: ");
    ASSERT_NE(hdr_end, std::string::npos) << path;
    ASSERT_NE(cl, std::string::npos) << path;
    ASSERT_LT(cl, hdr_end) << path;
    const size_t want = static_cast<size_t>(
        std::strtoull(resp.c_str() + cl + 16, nullptr, 10));
    EXPECT_EQ(resp.substr(hdr_end + 4).size(), want) << path;
  }
  reset_all();
}

TEST(ObsMetricsServer, StatusEndpointServesJsonSnapshot) {
  TelemetryScope scope(/*tracing=*/false, /*metrics=*/true);
  reset_all();
  MetricsServer server(/*port=*/0);
  ASSERT_TRUE(server.ok()) << server.last_error();

  const auto body_of = [](const std::string& resp) {
    const size_t hdr_end = resp.find("\r\n\r\n");
    return hdr_end == std::string::npos ? std::string()
                                        : resp.substr(hdr_end + 4);
  };

  // Bare process: build identity + uptime, no "server" object (nothing is
  // registered), and the whole thing is valid JSON.
  std::string resp = http_get(server.port(), "/status");
  EXPECT_NE(resp.find("application/json"), std::string::npos);
  std::string body = body_of(resp);
  EXPECT_TRUE(JsonChecker(body).valid()) << body;
  EXPECT_NE(body.find("\"version\":\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"commit\":\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"uptime_seconds\":"), std::string::npos) << body;
  EXPECT_NE(body.find("\"lease_stragglers\":0"), std::string::npos) << body;
  EXPECT_EQ(body.find("\"server\""), std::string::npos) << body;

  // With a registered source the snapshot splices its JSON verbatim.
  set_status_source([] {
    return std::string("{\"queue_depth\":2,\"leases\":[]}");
  });
  body = body_of(http_get(server.port(), "/status"));
  EXPECT_TRUE(JsonChecker(body).valid()) << body;
  EXPECT_NE(body.find("\"server\":{\"queue_depth\":2,\"leases\":[]}"),
            std::string::npos)
      << body;

  // Deregistration is a barrier: afterwards no scrape can be running the
  // old callback, and the object disappears from the snapshot.
  set_status_source(nullptr);
  body = body_of(http_get(server.port(), "/status"));
  EXPECT_EQ(body.find("\"server\""), std::string::npos) << body;
  reset_all();
}

TEST(ObsMetricsServer, PrometheusCarriesBuildInfoAndUptime) {
  TelemetryScope scope(/*tracing=*/false, /*metrics=*/true);
  reset_all();
  ASSERT_NE(build_version()[0], '\0');
  ASSERT_NE(build_commit()[0], '\0');
  MetricsServer server(/*port=*/0);
  ASSERT_TRUE(server.ok()) << server.last_error();
  const std::string resp = http_get(server.port(), "/metrics");
  EXPECT_NE(resp.find("# TYPE ge_build_info gauge"), std::string::npos);
  EXPECT_NE(resp.find("ge_build_info{version=\"" +
                      std::string(build_version()) + "\",commit=\"" +
                      std::string(build_commit()) + "\"} 1"),
            std::string::npos)
      << resp;
  EXPECT_NE(resp.find("# TYPE ge_uptime_seconds gauge"), std::string::npos);
  EXPECT_NE(resp.find("ge_uptime_seconds "), std::string::npos);
  EXPECT_GT(uptime_seconds(), 0.0);
  reset_all();
}

// --- distributed trace context ---------------------------------------------

TEST(ObsTrace, TraceContextPropagatesThroughSpanTree) {
  TelemetryScope scope(/*tracing=*/true, /*metrics=*/false);
  clear_trace();
  const uint64_t trace = make_trace_id();
  ASSERT_NE(trace, 0u);
  EXPECT_NE(make_trace_id(), trace);  // ids are unique, not a constant
  {
    TraceContextScope ctx(TraceContext{trace, 0});
    Span root("t", "root");
    EXPECT_EQ(root.context().trace_id, trace);
    EXPECT_NE(root.context().span_id, 0u);
    Span child("t", "child");
    (void)child;
  }
  {
    Span outside("t", "outside");  // no context: records untraced
    (void)outside;
  }
  const auto events = collect_trace();
  const TraceEvent* root = nullptr;
  const TraceEvent* child = nullptr;
  const TraceEvent* outside = nullptr;
  for (const auto& e : events) {
    if (e.name == "root") root = &e;
    if (e.name == "child") child = &e;
    if (e.name == "outside") outside = &e;
  }
  ASSERT_NE(root, nullptr);
  ASSERT_NE(child, nullptr);
  ASSERT_NE(outside, nullptr);
  EXPECT_EQ(root->trace_id, trace);
  EXPECT_EQ(root->parent_span_id, 0u);  // trace root: parent is the context's
  ASSERT_NE(root->span_id, 0u);
  EXPECT_EQ(child->trace_id, trace);
  EXPECT_EQ(child->parent_span_id, root->span_id);  // nests via thread-local
  EXPECT_NE(child->span_id, root->span_id);
  EXPECT_EQ(outside->trace_id, 0u);
  EXPECT_EQ(outside->span_id, 0u);
  clear_trace();
}

TEST(ObsTrace, RecordSpanJoinsTheCurrentContext) {
  TelemetryScope scope(/*tracing=*/true, /*metrics=*/false);
  clear_trace();
  const uint64_t trace = make_trace_id();
  {
    TraceContextScope ctx(TraceContext{trace, 77});
    record_span("t", "retro", now_ns() - 1000, 1000);
  }
  record_span("t", "untraced", now_ns() - 1000, 1000);
  const auto events = collect_trace();
  ASSERT_EQ(events.size(), 2u);
  const bool retro_first = events[0].name == "retro";
  const TraceEvent& retro = retro_first ? events[0] : events[1];
  const TraceEvent& untraced = retro_first ? events[1] : events[0];
  EXPECT_EQ(retro.trace_id, trace);
  EXPECT_EQ(retro.parent_span_id, 77u);
  EXPECT_NE(retro.span_id, 0u);
  EXPECT_EQ(untraced.trace_id, 0u);
  clear_trace();
}

TEST(ObsTrace, ChromeTraceCarriesProcessLabelEpochAndHexIds) {
  TelemetryScope scope(/*tracing=*/true, /*metrics=*/false);
  clear_trace();
  set_trace_process_label("unit_test");
  {
    TraceContextScope ctx(TraceContext{0x1234, 0});
    Span s("t", "traced");
    (void)s;
  }
  const std::string json = chrome_trace_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"process_label\":\"unit_test\""), std::string::npos);
  EXPECT_NE(json.find("\"epoch_unix_ns\":"), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":\"0000000000001234\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"span_id\":\""), std::string::npos);
  EXPECT_NE(json.find("\"parent_span_id\":\"0000000000000000\""),
            std::string::npos);
  set_trace_process_label("goldeneye");
  clear_trace();
}

TEST(ObsTrace, DisabledTracingLeavesSpansContextFree) {
  // With tracing off a Span must not consume ids or install a context —
  // the zero-cost contract extends to the distributed-trace machinery.
  TelemetryScope scope(/*tracing=*/false, /*metrics=*/false);
  TraceContextScope ctx(TraceContext{make_trace_id(), 0});
  Span s("t", "dark");
  EXPECT_EQ(s.context().trace_id, 0u);
  EXPECT_EQ(s.context().span_id, 0u);
}

}  // namespace
}  // namespace ge::obs
