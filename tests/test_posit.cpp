// PositFormat conformance — and the proof of the "future number format
// support" claim: a format added after the fact works with the emulator,
// injector and campaign engine unchanged.
#include <gtest/gtest.h>

#include <cmath>

#include "core/campaign.hpp"
#include "data/dataloader.hpp"
#include "formats/format_registry.hpp"
#include "formats/posit.hpp"
#include "models/model_factory.hpp"
#include "tensor/rng.hpp"

namespace ge::fmt {
namespace {

TEST(Posit, RejectsBadParameters) {
  EXPECT_THROW(PositFormat(2, 1), std::invalid_argument);
  EXPECT_THROW(PositFormat(17, 1), std::invalid_argument);
  EXPECT_THROW(PositFormat(8, -1), std::invalid_argument);
  EXPECT_THROW(PositFormat(8, 4), std::invalid_argument);
}

TEST(Posit, KnownDecodings_P8es0) {
  // classic posit(8,0) anchor values
  EXPECT_EQ(PositFormat::decode_pattern(0x00, 8, 0), 0.0);
  EXPECT_EQ(PositFormat::decode_pattern(0x40, 8, 0), 1.0);   // 0100 0000
  EXPECT_EQ(PositFormat::decode_pattern(0x60, 8, 0), 2.0);   // 0110 0000
  EXPECT_EQ(PositFormat::decode_pattern(0x20, 8, 0), 0.5);   // 0010 0000
  EXPECT_EQ(PositFormat::decode_pattern(0x50, 8, 0), 1.5);
  EXPECT_EQ(PositFormat::decode_pattern(0x7F, 8, 0), 64.0);  // maxpos
  EXPECT_TRUE(std::isnan(PositFormat::decode_pattern(0x80, 8, 0)));
  // negative: two's complement of 1.0 -> -1.0
  EXPECT_EQ(PositFormat::decode_pattern(0xC0, 8, 0), -1.0);
}

TEST(Posit, KnownDecodings_P8es1) {
  // useed = 4; maxpos = 4^6 = 4096
  PositFormat f(8, 1);
  EXPECT_EQ(f.useed(), 4.0);
  EXPECT_EQ(f.abs_max(), 4096.0);
  EXPECT_NEAR(f.abs_min(), 1.0 / 4096.0, 1e-12);
  EXPECT_EQ(PositFormat::decode_pattern(0x40, 8, 1), 1.0);
}

TEST(Posit, MaxposMinposMatchFormula) {
  for (int es = 0; es <= 2; ++es) {
    for (int n : {6, 8, 12, 16}) {
      PositFormat f(n, es);
      const double useed = std::ldexp(1.0, 1 << es);
      EXPECT_DOUBLE_EQ(f.abs_max(), std::pow(useed, n - 2))
          << "n=" << n << " es=" << es;
      EXPECT_NEAR(f.abs_min(), std::pow(useed, -(n - 2)), 1e-300);
    }
  }
}

TEST(Posit, SaturatesInsteadOfOverflowOrUnderflow) {
  PositFormat f(8, 0);
  EXPECT_EQ(f.quantize_value(1e10f), 64.0f);
  EXPECT_EQ(f.quantize_value(-1e10f), -64.0f);
  // posits never underflow to zero
  EXPECT_EQ(f.quantize_value(1e-10f), static_cast<float>(1.0 / 64.0));
  EXPECT_EQ(f.quantize_value(0.0f), 0.0f);
}

TEST(Posit, TaperedPrecisionIsFinestNearOne) {
  // relative quantisation error near 1.0 must beat error near maxpos/8
  PositFormat f(8, 1);
  Rng rng(5);
  double err_near_one = 0.0, err_far = 0.0;
  for (int i = 0; i < 200; ++i) {
    const float a = rng.uniform(1.0f, 2.0f);
    err_near_one += std::fabs(f.quantize_value(a) - a) / a;
    const float b = rng.uniform(256.0f, 512.0f);
    err_far += std::fabs(f.quantize_value(b) - b) / b;
  }
  EXPECT_LT(err_near_one, err_far * 0.5);
}

TEST(Posit, EncodeDecodeRoundTrip) {
  PositFormat f(8, 1);
  Rng rng(6);
  for (int i = 0; i < 500; ++i) {
    const float q = f.quantize_value(rng.normal(0.0f, 10.0f));
    EXPECT_EQ(f.format_to_real(f.real_to_format(q)), q);
  }
}

TEST(Posit, NegationIsTwosComplement) {
  PositFormat f(8, 0);
  const BitString pos = f.real_to_format(1.5f);
  const BitString neg = f.real_to_format(-1.5f);
  const uint32_t negated = (~static_cast<uint32_t>(pos.value()) + 1) & 0xFF;
  EXPECT_EQ(neg.value(), negated);
}

TEST(Posit, NaRHandling) {
  PositFormat f(8, 1);
  const BitString nar = f.real_to_format(std::nanf(""));
  EXPECT_EQ(nar.value(), 0x80u);
  EXPECT_TRUE(std::isnan(f.format_to_real(nar)));
}

class PositGrid : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(PositGrid, MonotoneIdempotentSymmetric) {
  const auto [n, es] = GetParam();
  PositFormat f(n, es);
  Rng rng(7 + n + es);
  std::vector<float> xs;
  for (int i = 0; i < 300; ++i) xs.push_back(rng.normal(0.0f, 8.0f));
  std::sort(xs.begin(), xs.end());
  float prev = -1e30f;
  for (float x : xs) {
    const float q = f.quantize_value(x);
    EXPECT_GE(q, prev);
    EXPECT_EQ(f.quantize_value(q), q);
    EXPECT_EQ(f.quantize_value(-x), -q);
    prev = q;
  }
}

TEST_P(PositGrid, DecodedTableIsStrictlyIncreasing) {
  const auto [n, es] = GetParam();
  double prev = 0.0;
  const uint32_t count = uint32_t{1} << (n - 1);
  for (uint32_t p = 1; p < count; ++p) {
    const double v = PositFormat::decode_pattern(p, n, es);
    EXPECT_GT(v, prev) << "pattern " << p;
    prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, PositGrid,
                         ::testing::Values(std::pair{6, 0}, std::pair{8, 0},
                                           std::pair{8, 1}, std::pair{8, 2},
                                           std::pair{12, 1},
                                           std::pair{16, 1}),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param.first) +
                                  "es" + std::to_string(info.param.second);
                         });

TEST(Posit, RegistryIntegration) {
  auto f = make_format("posit_8_1");
  EXPECT_EQ(f->bit_width(), 8);
  EXPECT_EQ(f->spec(), "posit_8_1");
  EXPECT_FALSE(f->has_metadata());
  EXPECT_THROW(make_format("posit_8"), std::invalid_argument);
  EXPECT_THROW(make_format("posit_99_1"), std::invalid_argument);
}

TEST(Posit, WorksEndToEndWithEmulatorAndCampaign) {
  // The future-format claim: posit was added without touching core/.
  data::SyntheticVisionConfig cfg;
  cfg.train_count = 16;
  cfg.test_count = 32;
  data::SyntheticVision data(cfg);
  auto model = ge::models::make_model("mlp", cfg, 1);
  model->eval();
  const auto batch = data::take(data.test(), 0, 8);
  const float acc = core::emulated_accuracy(*model, batch.images,
                                            batch.labels, "posit_16_1");
  EXPECT_GE(acc, 0.0f);
  core::CampaignConfig cc;
  cc.format_spec = "posit_8_1";
  cc.injections_per_layer = 2;
  const auto r = core::run_campaign(*model, batch, cc);
  EXPECT_EQ(r.layers.size(), 3u);
}

}  // namespace
}  // namespace ge::fmt
