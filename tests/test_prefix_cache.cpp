// Golden-prefix cache (DESIGN.md §10): ReplayPlan record/translate and
// Module::forward_from suffix replay. The acceptance bar everywhere is
// bitwise equality with a full forward — the cache is a speed knob, never
// a numerics knob. Campaign-level digest pinning lives in
// test_determinism.cpp; this file covers the replay engine's edges: first
// and last sites, residual (DAG) models, armed faults of all three kinds,
// COW protection of the cached golden tensors, and the unusable-plan
// fallback for module reuse.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "core/campaign.hpp"
#include "core/emulator.hpp"
#include "core/injector.hpp"
#include "data/synthetic.hpp"
#include "models/model_factory.hpp"
#include "nn/linear.hpp"
#include "nn/module.hpp"
#include "nn/sequential.hpp"
#include "obs/telemetry.hpp"

namespace ge::core {
namespace {

// Faulty outputs can legitimately carry NaN (an exponent-field flip), and
// float == says NaN != NaN even for identical bits — compare the raw bit
// patterns, which is the actual proof obligation.
bool bitwise_equal(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  const auto fa = a.cflat();
  const auto fb = b.cflat();
  return std::memcmp(fa.data(), fb.data(), fa.size() * sizeof(float)) == 0;
}

data::SyntheticVisionConfig small_cfg() {
  data::SyntheticVisionConfig cfg;
  cfg.train_count = 16;
  cfg.test_count = 32;
  return cfg;
}

struct Fixture {
  data::SyntheticVision data;
  std::unique_ptr<nn::Module> model;
  data::Batch batch;

  explicit Fixture(const std::string& name = "simple_cnn")
      : data(small_cfg()),
        model(models::make_model(name, data.config(), 3)),
        batch(data::take(data.test(), 0, 4)) {
    model->eval();
  }
};

// --- ReplayPlan basics -----------------------------------------------------

TEST(ReplayPlan, RecordsEveryModuleOnce) {
  Fixture f;
  nn::ReplayPlan plan;
  const Tensor recorded = f.model->record_forward(plan, f.batch.images);
  const Tensor plain = (*f.model)(f.batch.images);
  EXPECT_TRUE(recorded.equals(plain));  // recording never changes numerics
  EXPECT_TRUE(plan.recorded());
  EXPECT_TRUE(plan.usable());
  EXPECT_EQ(plan.modules_recorded(), f.model->named_modules().size());
  EXPECT_GT(plan.cache_bytes(), 0);
  plan.clear();
  EXPECT_FALSE(plan.recorded());
}

TEST(ReplayPlan, UnusableWhenAModuleRunsTwice) {
  // Weight sharing: a root that invokes the same child twice makes the
  // nesting intervals ambiguous, so the whole plan must refuse replay.
  struct Twice : nn::Module {
    nn::Linear lin;
    explicit Twice(Rng rng) : Module("Twice"), lin(4, 4, rng) {
      register_child("lin", lin);
    }
    Tensor forward(const Tensor& x) override { return lin(lin(x)); }
  };
  Rng rng(5);
  Twice model(rng);
  nn::ReplayPlan plan;
  (void)model.record_forward(plan, Tensor({2, 4}));
  EXPECT_TRUE(plan.recorded());
  EXPECT_FALSE(plan.usable());
  EXPECT_THROW((void)model.forward_from(plan, model.lin, Tensor({2, 4})),
               std::invalid_argument);
}

TEST(ReplayPlan, ForwardFromRejectsUnrecordedSiteAndNesting) {
  Fixture f;
  nn::ReplayPlan plan;
  (void)f.model->record_forward(plan, f.batch.images);
  Rng rng(6);
  nn::Linear stranger(4, 4, rng);
  EXPECT_THROW((void)f.model->forward_from(plan, stranger, f.batch.images),
               std::invalid_argument);
  nn::ReplayPlan empty;
  EXPECT_THROW(
      (void)f.model->forward_from(empty, *f.model, f.batch.images),
      std::invalid_argument);
}

TEST(ReplayPlan, TranslateRequiresIdenticalTrees) {
  Fixture f;
  nn::ReplayPlan plan;
  (void)f.model->record_forward(plan, f.batch.images);
  auto twin = models::make_model("simple_cnn", small_cfg(), 0);
  const nn::ReplayPlan tplan = plan.translate(*f.model, *twin);
  EXPECT_EQ(tplan.modules_recorded(), plan.modules_recorded());
  EXPECT_TRUE(tplan.usable());
  auto other = models::make_model("mlp", small_cfg(), 0);
  EXPECT_THROW((void)plan.translate(*f.model, *other),
               std::invalid_argument);
}

// --- suffix replay under faults --------------------------------------------
//
// The core equivalence: with a fault armed at site S, forward_from(S) must
// be bitwise identical to a full forward with the same fault — for every
// instrumented site of the model, including the first (nothing cached
// before it) and the last (everything before it served from the cache).

void expect_replay_matches_full(const std::string& model_name,
                                InjectionSite inj_site,
                                const std::string& format_spec) {
  Fixture f(model_name);
  EmulatorConfig ecfg;
  ecfg.format_spec = format_spec;
  Emulator emu(*f.model, ecfg);
  Injector inj(emu, /*seed=*/99);
  ASSERT_GT(emu.sites().size(), 1u);

  nn::ReplayPlan plan;
  (void)f.model->record_forward(plan, f.batch.images);
  ASSERT_TRUE(plan.usable());

  const Rng base(41);
  for (size_t li = 0; li < emu.sites().size(); ++li) {
    const LayerSite& site = emu.sites()[li];
    if (inj_site == InjectionSite::kMetadata &&
        !site.act_format->has_metadata()) {
      continue;
    }
    InjectionSpec spec;
    spec.layer_path = site.path;
    spec.site = inj_site;

    inj.arm(spec, base.child(li));
    const Tensor full = (*f.model)(f.batch.images);
    inj.disarm();

    inj.arm(spec, base.child(li));
    int64_t served = -1;
    const Tensor replay =
        f.model->forward_from(plan, *site.module, f.batch.images, &served);
    inj.disarm();

    EXPECT_TRUE(bitwise_equal(full, replay))
        << model_name << " site " << li << " (" << site.path << ")";
    EXPECT_GE(served, 0) << site.path;
    if (li > 0) {
      // any site after the first has at least its predecessors cached
      EXPECT_GT(served, 0) << site.path;
    }
  }
}

TEST(SuffixReplay, ActivationFaultsBitwiseEqualSimpleCnn) {
  expect_replay_matches_full("simple_cnn", InjectionSite::kActivationValue,
                             "fp_e5m10");
}

TEST(SuffixReplay, ActivationFaultsBitwiseEqualResidualModel) {
  // tiny_resnet's skip connections are the DAG case: ancestors of the
  // fault site must re-run their residual adds while completed branches
  // are served from the cache.
  expect_replay_matches_full("tiny_resnet", InjectionSite::kActivationValue,
                             "fp_e5m10");
}

TEST(SuffixReplay, MetadataFaultsBitwiseEqual) {
  expect_replay_matches_full("simple_cnn", InjectionSite::kMetadata,
                             "bfp_e5m5_b16");
}

TEST(SuffixReplay, WeightFaultsBitwiseEqual) {
  expect_replay_matches_full("simple_cnn", InjectionSite::kWeightValue,
                             "int8");
}

TEST(SuffixReplay, LastSiteReplaysFullPrefix) {
  Fixture f;
  EmulatorConfig ecfg;
  ecfg.format_spec = "fp_e5m10";
  Emulator emu(*f.model, ecfg);
  nn::ReplayPlan plan;
  (void)f.model->record_forward(plan, f.batch.images);
  const LayerSite& last = emu.sites().back();
  int64_t served = 0;
  const Tensor replay =
      f.model->forward_from(plan, *last.module, f.batch.images, &served);
  const Tensor full = (*f.model)(f.batch.images);
  EXPECT_TRUE(full.equals(replay));
  // Every module that completed before the last site entered is served.
  size_t expected = 0;
  for (const auto& [path, mod] : f.model->named_modules()) {
    if (plan.skipped_for(*last.module, *mod)) ++expected;
  }
  EXPECT_EQ(static_cast<size_t>(served), expected);
  EXPECT_GT(served, 0);
}

TEST(SuffixReplay, CachedGoldenTensorsSurviveCorruptingTrials) {
  // COW protection: a weight-corrupting trial detaches a private copy and
  // disarm() re-shares the frozen snapshot, so after any number of trials
  // a replay still reproduces the recorded golden output bitwise.
  Fixture f;
  EmulatorConfig ecfg;
  ecfg.format_spec = "int8";
  Emulator emu(*f.model, ecfg);
  Injector inj(emu, 7);
  nn::ReplayPlan plan;
  const Tensor golden = f.model->record_forward(plan, f.batch.images);

  const Rng base(13);
  for (int t = 0; t < 4; ++t) {
    InjectionSpec spec;
    spec.layer_path = emu.sites().front().path;
    spec.site = InjectionSite::kWeightValue;
    inj.arm(spec, base.child(static_cast<uint64_t>(t)));
    (void)f.model->forward_from(plan, *emu.sites().front().module,
                                f.batch.images);
    inj.disarm();
  }
  // replay from the last site after all that corruption: the prefix comes
  // from the cache and must still be the golden bits
  const Tensor again = f.model->forward_from(
      plan, *emu.sites().back().module, f.batch.images);
  EXPECT_TRUE(again.equals(golden));
  const Tensor full = (*f.model)(f.batch.images);
  EXPECT_TRUE(full.equals(golden));
}

// --- campaign-level integration --------------------------------------------

TEST(PrefixCacheCampaign, CountersRecordReplays) {
  Fixture f;
  CampaignConfig cfg;
  cfg.format_spec = "fp_e5m10";
  cfg.injections_per_layer = 3;
  cfg.seed = 21;
  obs::TelemetryScope scope(/*tracing=*/false, /*metrics=*/true);
  obs::reset_all();
  const CampaignResult r = run_campaign(*f.model, f.batch, cfg);
  EXPECT_GT(r.layers.size(), 0u);
  const uint64_t trials = obs::counter_value(obs::Counter::kTrials);
  EXPECT_GT(trials, 0u);
  // every trial replayed, and all but the first layer's skipped something
  EXPECT_EQ(obs::counter_value(obs::Counter::kPrefixCacheHits), trials);
  EXPECT_GT(obs::counter_value(obs::Counter::kSuffixLayersSkipped), 0u);
  EXPECT_GT(obs::counter_value(obs::Counter::kPrefixCacheBytes), 0u);
  obs::reset_all();
}

TEST(PrefixCacheCampaign, CacheOffRunsFullForwards) {
  Fixture f;
  CampaignConfig cfg;
  cfg.format_spec = "fp_e5m10";
  cfg.injections_per_layer = 2;
  cfg.seed = 21;
  cfg.use_prefix_cache = false;
  obs::TelemetryScope scope(/*tracing=*/false, /*metrics=*/true);
  obs::reset_all();
  (void)run_campaign(*f.model, f.batch, cfg);
  EXPECT_EQ(obs::counter_value(obs::Counter::kPrefixCacheHits), 0u);
  EXPECT_EQ(obs::counter_value(obs::Counter::kSuffixLayersSkipped), 0u);
  EXPECT_EQ(obs::counter_value(obs::Counter::kPrefixCacheBytes), 0u);
  obs::reset_all();
}

TEST(PrefixCacheCampaign, MultiSiteArmsCompanionFaults) {
  // k=3 trials carry the primary plus up to two companions at strictly
  // later sites; the injector reports every applied fault in records().
  Fixture f;
  EmulatorConfig ecfg;
  ecfg.format_spec = "fp_e5m10";
  Emulator emu(*f.model, ecfg);
  Injector inj(emu, 3);
  ASSERT_GE(emu.sites().size(), 3u);
  std::vector<InjectionSpec> specs;
  for (size_t li = 0; li < 3; ++li) {
    InjectionSpec s;
    s.layer_path = emu.sites()[li].path;
    specs.push_back(std::move(s));
  }
  inj.arm_multi(specs, Rng(17));
  (void)(*f.model)(f.batch.images);
  EXPECT_TRUE(inj.fired());
  ASSERT_EQ(inj.records().size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(inj.records()[i].layer_path, emu.sites()[i].path);
  }
  EXPECT_EQ(inj.last_record()->layer_path, emu.sites()[0].path);
  inj.disarm();
  EXPECT_FALSE(inj.fired());
  // duplicate layers are rejected up front
  specs[1] = specs[0];
  EXPECT_THROW(inj.arm_multi(specs, Rng(17)), std::invalid_argument);
}

TEST(PrefixCacheCampaign, SitesPerTrialRoundTripsThroughProgress) {
  Fixture f;
  CampaignConfig cfg;
  cfg.format_spec = "fp_e5m10";
  cfg.injections_per_layer = 2;
  cfg.sites_per_trial = 2;
  CampaignProgress prog =
      run_campaign_trials(*f.model, f.batch, cfg, {});
  EXPECT_EQ(prog.sites_per_trial, 2);
  // resume validation rejects a mismatching sites_per_trial
  CampaignConfig other = cfg;
  other.sites_per_trial = 3;
  CampaignRunOptions opts;
  opts.resume_from = &prog;
  EXPECT_THROW((void)run_campaign_trials(*f.model, f.batch, other, opts),
               std::exception);
}

}  // namespace
}  // namespace ge::core
