// Checkpointed / sharded campaigns (DESIGN.md §9): any partition of the
// trial index space — across checkpoint/resume boundaries, shards, or
// both — must reassemble into statistics bitwise identical to one
// uninterrupted run. These tests exercise the library surface;
// test_determinism.cpp pins the digests and test_cli.cpp drives the same
// machinery through the command line.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <vector>

#include "core/campaign.hpp"
#include "data/synthetic.hpp"
#include "io/campaign_state.hpp"
#include "models/model_factory.hpp"
#include "parallel/thread_pool.hpp"

namespace ge::core {
namespace {

struct ThreadGuard {
  int saved = parallel::num_threads();
  ~ThreadGuard() { parallel::set_num_threads(saved); }
};

data::SyntheticVisionConfig small_cfg() {
  data::SyntheticVisionConfig cfg;
  cfg.train_count = 16;
  cfg.test_count = 64;
  return cfg;
}

struct Fixture {
  data::SyntheticVision data;
  std::unique_ptr<nn::Module> model;
  data::Batch batch;

  Fixture()
      : data(small_cfg()),
        model(models::make_model("simple_cnn", data.config(), 3)),
        batch(data::take(data.test(), 0, 8)) {
    model->eval();
  }
};

CampaignConfig campaign_cfg() {
  CampaignConfig cfg;
  cfg.format_spec = "fp_e5m10";
  cfg.injections_per_layer = 6;
  cfg.seed = 77;
  cfg.make_replica = [] {
    return models::make_model("simple_cnn", small_cfg(), 0);
  };
  return cfg;
}

std::string tmp_path(const std::string& name) {
  return "/tmp/ge_test_campaign_io_" + name + ".gec";
}

// --- progress bookkeeping --------------------------------------------------

TEST(CampaignProgressTest, TrialCountsAndCompleteness) {
  CampaignProgress p;
  p.layers.resize(2);
  p.layers[0].done = {1, 0, 1};
  p.layers[0].outcomes.resize(3);
  p.layers[1].done = {0, 0, 0};
  p.layers[1].outcomes.resize(3);
  EXPECT_EQ(p.completed_trials(), 2);
  EXPECT_EQ(p.total_trials(), 6);
  EXPECT_FALSE(p.complete());
  EXPECT_EQ(owned_trials_remaining(p), 4);
  p.shards = 3;
  p.shard_index = 1;  // owns trial index 1 of each layer
  EXPECT_EQ(owned_trials_remaining(p), 2);
}

TEST(CampaignProgressTest, FinalizeRejectsIncompleteProgress) {
  CampaignProgress p;
  p.layers.resize(1);
  p.layers[0].done = {1, 0};
  p.layers[0].outcomes.resize(2);
  EXPECT_THROW(finalize_campaign(p), std::invalid_argument);
}

// --- serialization ---------------------------------------------------------

TEST(CampaignStateIo, ProgressFileRoundTripsBitwise) {
  ThreadGuard guard;
  parallel::set_num_threads(2);
  Fixture f;
  const std::string path = tmp_path("roundtrip");
  CampaignRunOptions opts;
  opts.shards = 2;
  opts.shard_index = 1;
  opts.model_name = "simple_cnn";
  opts.eval_samples = 8;
  const CampaignProgress prog =
      run_campaign_trials(*f.model, f.batch, campaign_cfg(), opts);
  io::save_campaign_progress(path, prog);
  const CampaignProgress back = io::load_campaign_progress(path);
  // Bitwise equality via the canonical byte encoding.
  EXPECT_EQ(io::encode_campaign_progress(back),
            io::encode_campaign_progress(prog));
  std::remove(path.c_str());
}

TEST(CampaignStateIo, CorruptProgressFileIsDiagnosed) {
  const std::string path = tmp_path("corrupt");
  CampaignProgress p;
  p.format_spec = "int8";
  p.layers.resize(1);
  p.layers[0].path = "l";
  p.layers[0].done = {1};
  p.layers[0].outcomes.resize(1);
  io::save_campaign_progress(path, p);
  // Flip a payload byte: the CRC must reject the file.
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(-3, std::ios::end);
  f.put('\xFF');
  f.close();
  EXPECT_THROW(io::load_campaign_progress(path), io::IoError);
  std::remove(path.c_str());
}

TEST(CampaignStateIo, ForwardCompatSkipsUnknownTrailingFields) {
  // Evolution rule (campaign_state.hpp): in container v2+ a writer may
  // append new fields after the known CAMP layout, and this build decodes
  // what it knows and skips the rest. The same bytes stamped v1 are
  // corruption — v1 decoding stays strict.
  const std::string path = tmp_path("futurefields");
  CampaignProgress p;
  p.format_spec = "int8";
  p.layers.resize(1);
  p.layers[0].path = "l";
  p.layers[0].done = {1};
  p.layers[0].outcomes.resize(1);
  std::vector<uint8_t> payload = io::encode_campaign_progress(p);
  payload.insert(payload.end(), {0xDE, 0xAD, 0xBE, 0xEF});  // a future field
  io::Container c;
  c.add("CAMP", payload);
  io::save_file(path, c);  // written at the current (v2) schema
  const CampaignProgress back = io::load_campaign_progress(path);
  EXPECT_EQ(io::encode_campaign_progress(back),
            io::encode_campaign_progress(p));

  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(4);  // version u32 lives right after the magic; not CRC'd
    f.put('\x01');
  }
  EXPECT_THROW(io::load_campaign_progress(path), io::IoError);
  std::remove(path.c_str());
}

// --- shard / resume / merge bitwise identity -------------------------------

TEST(CampaignShards, MergedShardsMatchSingleProcessBitwise) {
  ThreadGuard guard;
  const CampaignConfig cfg = campaign_cfg();
  for (int threads : {1, 4}) {
    parallel::set_num_threads(threads);
    Fixture single;
    const CampaignResult want = run_campaign(*single.model, single.batch, cfg);

    std::vector<CampaignProgress> parts;
    for (int i = 0; i < 3; ++i) {
      Fixture f;  // fresh model per "process"
      CampaignRunOptions opts;
      opts.shards = 3;
      opts.shard_index = i;
      parts.push_back(run_campaign_trials(*f.model, f.batch, cfg, opts));
      EXPECT_FALSE(parts.back().complete());
      EXPECT_EQ(owned_trials_remaining(parts.back()), 0);
    }
    const CampaignProgress merged = merge_campaign_progress(parts);
    EXPECT_TRUE(merged.complete());
    const CampaignResult got = finalize_campaign(merged);
    EXPECT_EQ(campaign_digest(got), campaign_digest(want))
        << "threads=" << threads;
  }
}

TEST(CampaignResume, InterruptedRunResumesBitwise) {
  ThreadGuard guard;
  const CampaignConfig cfg = campaign_cfg();
  const std::string path = tmp_path("resume");
  for (int threads : {1, 4}) {
    parallel::set_num_threads(threads);
    Fixture single;
    const CampaignResult want = run_campaign(*single.model, single.batch, cfg);

    // First process: checkpoint every 2 trials, die mid-campaign.
    Fixture first;
    CampaignRunOptions opts;
    opts.checkpoint_every = 2;
    opts.checkpoint_path = path;
    opts.abort_after = 7;  // mid-layer, mid-block
    const CampaignProgress partial =
        run_campaign_trials(*first.model, first.batch, cfg, opts);
    EXPECT_FALSE(partial.complete());

    // Second process: load the file the first one left behind.
    Fixture second;
    const CampaignProgress saved = io::load_campaign_progress(path);
    EXPECT_EQ(saved.completed_trials(), partial.completed_trials());
    CampaignRunOptions ropts;
    ropts.checkpoint_every = 2;
    ropts.checkpoint_path = path;
    ropts.resume_from = &saved;
    const CampaignProgress full =
        run_campaign_trials(*second.model, second.batch, cfg, ropts);
    EXPECT_TRUE(full.complete());
    EXPECT_EQ(campaign_digest(finalize_campaign(full)), campaign_digest(want))
        << "threads=" << threads;
    std::remove(path.c_str());
  }
}

TEST(CampaignResume, ResumingACompleteRunIsANoOp) {
  ThreadGuard guard;
  parallel::set_num_threads(2);
  const CampaignConfig cfg = campaign_cfg();
  Fixture f;
  const CampaignProgress done =
      run_campaign_trials(*f.model, f.batch, cfg, {});
  CampaignRunOptions opts;
  opts.resume_from = &done;
  const CampaignProgress again =
      run_campaign_trials(*f.model, f.batch, cfg, opts);
  EXPECT_EQ(campaign_digest(finalize_campaign(again)),
            campaign_digest(finalize_campaign(done)));
}

TEST(CampaignResume, MismatchedCheckpointIsRejected) {
  ThreadGuard guard;
  parallel::set_num_threads(2);
  Fixture f;
  const CampaignProgress done =
      run_campaign_trials(*f.model, f.batch, campaign_cfg(), {});

  {
    CampaignConfig other = campaign_cfg();
    other.seed = 78;  // different trial streams
    CampaignRunOptions opts;
    opts.resume_from = &done;
    EXPECT_THROW(run_campaign_trials(*f.model, f.batch, other, opts),
                 io::IoError);
  }
  {
    CampaignConfig other = campaign_cfg();
    other.format_spec = "int8";
    CampaignRunOptions opts;
    opts.resume_from = &done;
    EXPECT_THROW(run_campaign_trials(*f.model, f.batch, other, opts),
                 io::IoError);
  }
  {
    // Same config, different model weights: the golden logit digest is the
    // tripwire (accuracy alone can tie on a small batch).
    auto other_model = models::make_model("simple_cnn", small_cfg(), 123);
    other_model->eval();
    CampaignRunOptions opts;
    opts.resume_from = &done;
    EXPECT_THROW(
        run_campaign_trials(*other_model, f.batch, campaign_cfg(), opts),
        io::IoError);
  }
}

TEST(CampaignMerge, RejectsDuplicateAndOverlappingShards) {
  ThreadGuard guard;
  parallel::set_num_threads(2);
  const CampaignConfig cfg = campaign_cfg();
  Fixture f;
  CampaignRunOptions opts;
  opts.shards = 2;
  opts.shard_index = 0;
  const CampaignProgress shard0 =
      run_campaign_trials(*f.model, f.batch, cfg, opts);

  // Same shard twice: duplicate index.
  EXPECT_THROW(merge_campaign_progress({shard0, shard0}), io::IoError);

  // Disguised duplicate: different claimed index, overlapping done set.
  CampaignProgress forged = shard0;
  forged.shard_index = 1;
  EXPECT_THROW(merge_campaign_progress({shard0, forged}), io::IoError);

  // Mismatched config echo.
  CampaignProgress other = shard0;
  other.shard_index = 1;
  other.seed = 99;
  EXPECT_THROW(merge_campaign_progress({shard0, other}), io::IoError);

  EXPECT_THROW(merge_campaign_progress({}), std::invalid_argument);
}

TEST(CampaignMerge, PartialMergeCanBeResumedToCompletion) {
  // Merge shard 0 of 2 only, then finish the remaining trials by resuming
  // the merged (re-labelled unsharded) progress — the escape hatch for a
  // shard that never came back.
  ThreadGuard guard;
  parallel::set_num_threads(2);
  const CampaignConfig cfg = campaign_cfg();
  Fixture single;
  const CampaignResult want = run_campaign(*single.model, single.batch, cfg);

  Fixture f;
  CampaignRunOptions opts;
  opts.shards = 2;
  opts.shard_index = 0;
  const CampaignProgress shard0 =
      run_campaign_trials(*f.model, f.batch, cfg, opts);
  const CampaignProgress merged = merge_campaign_progress({shard0});
  EXPECT_FALSE(merged.complete());
  EXPECT_EQ(merged.shards, 1);  // re-labelled: now owns every trial

  Fixture g;
  CampaignRunOptions ropts;
  ropts.resume_from = &merged;
  const CampaignProgress full =
      run_campaign_trials(*g.model, g.batch, cfg, ropts);
  EXPECT_TRUE(full.complete());
  EXPECT_EQ(campaign_digest(finalize_campaign(full)), campaign_digest(want));
}

TEST(CampaignRunOptionsTest, InvalidOptionsAreRejected) {
  Fixture f;
  const CampaignConfig cfg = campaign_cfg();
  {
    CampaignRunOptions opts;
    opts.shards = 2;
    opts.shard_index = 2;
    EXPECT_THROW(run_campaign_trials(*f.model, f.batch, cfg, opts),
                 std::invalid_argument);
  }
  {
    CampaignRunOptions opts;
    opts.checkpoint_every = 2;  // no checkpoint_path
    EXPECT_THROW(run_campaign_trials(*f.model, f.batch, cfg, opts),
                 std::invalid_argument);
  }
  {
    CampaignRunOptions opts;
    opts.abort_after = 1;  // no checkpoint_path
    EXPECT_THROW(run_campaign_trials(*f.model, f.batch, cfg, opts),
                 std::invalid_argument);
  }
}

}  // namespace
}  // namespace ge::core
