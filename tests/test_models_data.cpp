// Dataset determinism/learnability and model-zoo behaviour.
#include <gtest/gtest.h>

#include <filesystem>

#include "data/dataloader.hpp"
#include "data/synthetic.hpp"
#include "models/model_factory.hpp"
#include "nn/loss.hpp"

namespace ge {
namespace {

data::SyntheticVisionConfig small_config() {
  data::SyntheticVisionConfig cfg;
  cfg.train_count = 256;
  cfg.test_count = 128;
  return cfg;
}

TEST(SyntheticVision, DeterministicForSameSeed) {
  data::SyntheticVision a(small_config());
  data::SyntheticVision b(small_config());
  EXPECT_TRUE(a.train().images.equals(b.train().images));
  EXPECT_EQ(a.train().labels, b.train().labels);
}

TEST(SyntheticVision, DifferentSeedsDiffer) {
  auto cfg = small_config();
  data::SyntheticVision a(cfg);
  cfg.seed = 999;
  data::SyntheticVision b(cfg);
  EXPECT_FALSE(a.train().images.equals(b.train().images));
}

TEST(SyntheticVision, ShapesAndLabelRange) {
  auto cfg = small_config();
  data::SyntheticVision d(cfg);
  EXPECT_EQ(d.train().images.shape(),
            (Shape{cfg.train_count, cfg.channels, cfg.image_size,
                   cfg.image_size}));
  EXPECT_EQ(d.test().size(), cfg.test_count);
  for (int64_t l : d.train().labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, cfg.num_classes);
  }
}

TEST(SyntheticVision, AllClassesPresent) {
  data::SyntheticVision d(small_config());
  std::vector<int> counts(10, 0);
  for (int64_t l : d.train().labels) ++counts[static_cast<size_t>(l)];
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST(SyntheticVision, PrototypesAreStandardised) {
  data::SyntheticVision d(small_config());
  for (int64_t c = 0; c < 10; ++c) {
    const Tensor& p = d.prototype(c);
    double mean = 0.0;
    for (float v : p.flat()) mean += v;
    mean /= p.numel();
    EXPECT_NEAR(mean, 0.0, 1e-4);
  }
}

TEST(SyntheticVision, RejectsDegenerateConfig) {
  data::SyntheticVisionConfig cfg;
  cfg.num_classes = 1;
  EXPECT_THROW(data::SyntheticVision{cfg}, std::invalid_argument);
}

TEST(DataLoader, CoversWholeSplitOnce) {
  data::SyntheticVision d(small_config());
  data::DataLoader loader(d.train(), 50);
  EXPECT_EQ(loader.batch_count(), 6);  // 256 / 50 -> 6 (last short)
  int64_t total = 0;
  for (int64_t b = 0; b < loader.batch_count(); ++b) {
    total += loader.batch(b).images.size(0);
  }
  EXPECT_EQ(total, 256);
  EXPECT_THROW(loader.batch(6), std::out_of_range);
}

TEST(DataLoader, ShuffleIsSeededAndPermutes) {
  data::SyntheticVision d(small_config());
  data::DataLoader a(d.train(), 256, true, 5);
  data::DataLoader b(d.train(), 256, true, 5);
  EXPECT_EQ(a.batch(0).labels, b.batch(0).labels);
  data::DataLoader c(d.train(), 256, false);
  EXPECT_NE(a.batch(0).labels, c.batch(0).labels);  // shuffled vs natural
}

TEST(DataLoader, TakeExtractsContiguousRange) {
  data::SyntheticVision d(small_config());
  const auto b = data::take(d.test(), 10, 5);
  EXPECT_EQ(b.images.size(0), 5);
  EXPECT_EQ(b.labels[0], d.test().labels[10]);
  EXPECT_THROW(data::take(d.test(), 125, 10), std::out_of_range);
}

TEST(ModelFactory, KnowsAllModels) {
  auto cfg = small_config();
  for (const auto& name : models::model_names()) {
    auto m = models::make_model(name, cfg, 1);
    ASSERT_NE(m, nullptr) << name;
    Tensor logits = (*m)(data::take(data::SyntheticVision(cfg).test(), 0, 2)
                             .images);
    EXPECT_EQ(logits.shape(), (Shape{2, 10})) << name;
  }
  EXPECT_THROW(models::make_model("alexnet", cfg, 1), std::invalid_argument);
}

TEST(ModelFactory, SameSeedSameInit) {
  auto cfg = small_config();
  auto a = models::make_model("mlp", cfg, 7);
  auto b = models::make_model("mlp", cfg, 7);
  EXPECT_TRUE(a->parameters()[0]->value.equals(b->parameters()[0]->value));
}

TEST(Training, MlpLearnsTheTask) {
  auto cfg = small_config();
  cfg.train_count = 1024;
  data::SyntheticVision d(cfg);
  auto m = models::make_model("mlp", cfg, 2);
  models::TrainConfig tc;
  tc.epochs = 8;
  const auto r = models::train_model(*m, d, tc);
  EXPECT_GT(r.test_accuracy, 0.4f);  // well above the 10% chance floor
  EXPECT_LT(r.final_train_loss, 1.8f);
}

TEST(Training, EnsureTrainedCachesWeights) {
  auto cfg = small_config();
  data::SyntheticVision d(cfg);
  const std::string dir = "/tmp/ge_test_cache";
  std::filesystem::remove_all(dir);
  models::TrainConfig tc;
  tc.epochs = 2;
  auto first = models::ensure_trained("mlp", d, dir, tc);
  auto second = models::ensure_trained("mlp", d, dir, tc);  // from cache
  EXPECT_NEAR(first.test_accuracy, second.test_accuracy, 1e-6f);
  EXPECT_TRUE(first.model->parameters()[0]->value.equals(
      second.model->parameters()[0]->value));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ge
