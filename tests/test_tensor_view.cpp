// TensorView contract (DESIGN.md §5): strided views over COW storage.
//
// The load-bearing properties, each pinned here:
//  - geometry: flat_offset is the row-major (offset, shape, strides) map,
//    with full validation at construction;
//  - COW-through-view: a ConstTensorView observes capture-time values
//    forever; a TensorView's first write detaches a shared owner exactly
//    once and never corrupts the other share; reads never detach;
//  - quantize_view_inplace: for EVERY format family, quantizing a strided
//    view in place is elementwise identical to materializing the view,
//    quantizing the dense copy, and scattering it back — and elements
//    outside the view are untouched. (For metadata formats the view-linear
//    element sequence *defines* the block/capture semantics, which is
//    exactly what the materialized copy presents.)
//  - dense_full delegation: a whole-tensor view routes to the tensor
//    kernel bitwise — the emulator hook depends on this.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "formats/format_registry.hpp"
#include "obs/telemetry.hpp"
#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"
#include "tensor/tensor_view.hpp"

namespace ge {
namespace {

// One spec per family: value-only, scaled, and metadata formats.
const std::vector<std::string> kSpecs = {
    "fp_e4m3", "fxp_1_4_3", "int8", "posit_8_1", "bfp_e5m5_b16", "afp_e4m3",
};

Tensor filled(int64_t n, uint64_t seed) {
  Rng rng(seed);
  Tensor t({n});
  float* p = t.data();
  for (int64_t i = 0; i < n; ++i) {
    // Magnitude spread wide enough to exercise every format's rounding and
    // clamping paths, signs mixed, an exact zero in every buffer.
    p[i] = rng.normal(0.0f, 1.0f) * std::pow(2.0f, rng.uniform(-6.0f, 4.0f));
  }
  p[n / 2] = 0.0f;
  return t;
}

// --- geometry --------------------------------------------------------------

TEST(ViewGeometry, DenseStridesAreRowMajor) {
  EXPECT_EQ(dense_strides({2, 3, 4}), (std::vector<int64_t>{12, 4, 1}));
  EXPECT_EQ(dense_strides({5}), (std::vector<int64_t>{1}));
}

TEST(ViewGeometry, FlatOffsetMapsRowMajorOrder) {
  Tensor t = filled(64, 1);
  // 3x4 window starting at 5, walking strides {10, 2}: element (r, c) lives
  // at 5 + 10r + 2c.
  const ConstTensorView v(t, 5, {3, 4}, {10, 2});
  EXPECT_EQ(v.numel(), 12);
  EXPECT_FALSE(v.contiguous());
  for (int64_t r = 0; r < 3; ++r) {
    for (int64_t c = 0; c < 4; ++c) {
      const int64_t i = r * 4 + c;
      EXPECT_EQ(v.flat_offset(i), 5 + 10 * r + 2 * c);
      EXPECT_EQ(v[i], t.cdata()[5 + 10 * r + 2 * c]);
    }
  }
}

TEST(ViewGeometry, ContiguousAndDenseFullDetection) {
  Tensor t = filled(24, 2);
  EXPECT_TRUE(ConstTensorView(t, 4, {2, 5}, {5, 1}).contiguous());
  EXPECT_FALSE(ConstTensorView(t, 4, {2, 5}, {10, 1}).contiguous());

  TensorView whole(t);
  EXPECT_TRUE(whole.dense_full());
  TensorView offset_run(t, 1, {23}, {1});
  EXPECT_FALSE(offset_run.dense_full());  // contiguous but not full
  TensorView prefix(t, 0, {20}, {1});
  EXPECT_FALSE(prefix.dense_full());  // full-start but not every element
}

TEST(ViewGeometry, ConstructionValidatesReachableRange) {
  Tensor t = filled(10, 3);
  // Last reachable index 2 + 2*4 + 1*1 = 11 > 9.
  EXPECT_THROW(ConstTensorView(t, 2, {3, 2}, {4, 1}), std::invalid_argument);
  EXPECT_THROW(ConstTensorView(t, -1, {2}, {1}), std::invalid_argument);
  EXPECT_THROW(ConstTensorView(t, 0, {2}, {-1}), std::invalid_argument);
  EXPECT_THROW(ConstTensorView(t, 0, {2, 2}, {1}), std::invalid_argument);
  EXPECT_NO_THROW(ConstTensorView(t, 2, {3, 2}, {3, 1}));  // last = 9
  EXPECT_THROW(TensorView(t, 0, {11}, {1}), std::invalid_argument);
}

TEST(ViewGeometry, MaterializeGathersViewOrder) {
  Tensor t = filled(40, 4);
  const ConstTensorView v(t, 3, {4, 3}, {9, 2});
  const Tensor m = v.materialize();
  ASSERT_EQ(m.shape(), (Shape{4, 3}));
  for (int64_t i = 0; i < v.numel(); ++i) {
    EXPECT_EQ(m.cdata()[i], v[i]);
  }
}

// --- COW semantics ---------------------------------------------------------

TEST(ViewCow, ConstViewPinsCaptureTimeValues) {
  Tensor t = filled(16, 5);
  const float at3 = t.cdata()[3];
  const ConstTensorView v(t, 0, {16}, {1});
  // The owner's write detaches the OWNER; the view keeps the old block.
  t.data()[3] = 999.0f;
  EXPECT_EQ(v[3], at3);
  EXPECT_EQ(t.cdata()[3], 999.0f);
}

TEST(ViewCow, MutableWriteDetachesSharedOwnerOnce) {
  obs::TelemetryScope metrics(false, true);  // counters are metrics-gated
  Tensor t = filled(16, 6);
  const Tensor original = t;  // O(1) share
  TensorView v(t, 2, {4}, {3});
  const uint64_t cow_before = obs::counter_value(obs::Counter::kCowCopies);
  v[0] = 42.0f;
  v[1] = 43.0f;  // second write must not copy again
  EXPECT_EQ(obs::counter_value(obs::Counter::kCowCopies), cow_before + 1);
  EXPECT_FALSE(t.shares_storage_with(original));
  EXPECT_EQ(t.cdata()[2], 42.0f);
  EXPECT_EQ(t.cdata()[5], 43.0f);
  // The other share observes the pristine capture-time buffer.
  EXPECT_TRUE(original.equals(filled(16, 6)));
}

TEST(ViewCow, ReadsNeverDetach) {
  Tensor t = filled(16, 7);
  const Tensor original = t;
  TensorView v(t, 0, {8}, {2});
  float sum = 0.0f;
  for (int64_t i = 0; i < v.numel(); ++i) sum += v.read(i);
  (void)sum;
  (void)v.cstorage();
  EXPECT_TRUE(t.shares_storage_with(original));
}

TEST(ViewCow, AssignFromScattersOnlyViewElements) {
  Tensor t = filled(20, 8);
  const Tensor before = t.clone();
  TensorView v(t, 1, {3, 2}, {6, 3});
  Tensor src({3, 2});
  for (int64_t i = 0; i < 6; ++i) src.data()[i] = 100.0f + i;
  v.assign_from(src);
  for (int64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(t.cdata()[v.flat_offset(i)], 100.0f + i);
  }
  int64_t untouched = 0;
  for (int64_t s = 0; s < 20; ++s) {
    bool in_view = false;
    for (int64_t i = 0; i < 6; ++i) in_view |= (v.flat_offset(i) == s);
    if (!in_view) {
      EXPECT_EQ(t.cdata()[s], before.cdata()[s]) << "storage index " << s;
      ++untouched;
    }
  }
  EXPECT_EQ(untouched, 14);
}

// --- quantize_view_inplace ------------------------------------------------

// A random non-overlapping 2-D window: shape {4, 8} (32 elements — a
// multiple of the bfp block so every spec can quantize it), inner stride
// s2 >= 1, outer stride >= 8*s2 so no storage index repeats.
struct RandomWindow {
  int64_t offset;
  Shape shape{4, 8};
  std::vector<int64_t> strides;
  int64_t span;  // minimal storage size
};

RandomWindow random_window(Rng& rng) {
  RandomWindow w;
  const int64_t s2 = rng.randint(1, 3);
  const int64_t s1 = 8 * s2 + rng.randint(0, 5);
  w.offset = rng.randint(0, 7);
  w.strides = {s1, s2};
  w.span = w.offset + 3 * s1 + 7 * s2 + 1;
  return w;
}

TEST(ViewQuant, StridedViewMatchesMaterializedCopyAllFormats) {
  for (const auto& spec : kSpecs) {
    Rng rng(0x5eedULL);
    for (int trial = 0; trial < 8; ++trial) {
      const RandomWindow w = random_window(rng);
      Tensor t = filled(w.span + 8, 100 + trial);
      const Tensor before = t.clone();

      // Reference: materialize the pre-quantization view, quantize the
      // dense copy with a fresh instance (registers are per-instance).
      Tensor ref = ConstTensorView(t, w.offset, w.shape, w.strides)
                       .materialize();
      fmt::make_format(spec)->quantize_tensor_inplace(ref);

      TensorView v(t, w.offset, w.shape, w.strides);
      fmt::make_format(spec)->quantize_view_inplace(v);

      for (int64_t i = 0; i < v.numel(); ++i) {
        EXPECT_EQ(v.read(i), ref.cdata()[i])
            << spec << " trial " << trial << " element " << i;
      }
      // Everything outside the window is bitwise untouched.
      for (int64_t s = 0; s < t.numel(); ++s) {
        bool in_view = false;
        for (int64_t i = 0; i < v.numel() && !in_view; ++i) {
          in_view = (v.flat_offset(i) == s);
        }
        if (!in_view) {
          EXPECT_EQ(t.cdata()[s], before.cdata()[s])
              << spec << " trial " << trial << " storage " << s;
        }
      }
    }
  }
}

TEST(ViewQuant, DenseFullViewDelegatesBitwise) {
  // The emulator hook addresses whole activation tensors as views; the
  // dense fast path must route to the tensor kernel so classic campaign
  // digests cannot depend on which entry point ran.
  for (const auto& spec : kSpecs) {
    Tensor via_view = filled(64, 9);
    Tensor via_tensor = via_view.clone();
    TensorView v(via_view);
    ASSERT_TRUE(v.dense_full());
    fmt::make_format(spec)->quantize_view_inplace(v);
    fmt::make_format(spec)->quantize_tensor_inplace(via_tensor);
    EXPECT_TRUE(via_view.equals(via_tensor)) << spec;
  }
}

TEST(ViewQuant, SharedStorageDetachesAndPreservesSource) {
  for (const auto& spec : kSpecs) {
    Tensor t = filled(48, 10);
    const Tensor original = t;  // O(1) share
    TensorView v(t, 0, {32}, {1});
    fmt::make_format(spec)->quantize_view_inplace(v);
    EXPECT_FALSE(t.shares_storage_with(original)) << spec;
    EXPECT_TRUE(original.equals(filled(48, 10)))
        << spec << ": view quantization wrote through a shared buffer";
  }
}

// --- injection region factories -------------------------------------------

TEST(ViewRegions, Rank4ChannelIsTheFeatureMapAcrossBatch) {
  Tensor t = filled(2 * 3 * 4 * 5, 11);
  t = t.reshape({2, 3, 4, 5});
  EXPECT_EQ(channel_count(t), 3);
  TensorView c1 = channel_view(t, 1);
  EXPECT_EQ(c1.numel(), 2 * 4 * 5);
  // (n, hw) -> storage ((n*C + 1)*HW + hw).
  for (int64_t n = 0; n < 2; ++n) {
    for (int64_t hw = 0; hw < 20; ++hw) {
      EXPECT_EQ(c1.flat_offset(n * 20 + hw), (n * 3 + 1) * 20 + hw);
    }
  }
  EXPECT_THROW(channel_view(t, 3), std::invalid_argument);
}

TEST(ViewRegions, Rank3ChannelIsAnEmbeddingLane) {
  Tensor t = filled(2 * 5 * 7, 12);
  t = t.reshape({2, 5, 7});
  EXPECT_EQ(channel_count(t), 7);
  TensorView lane = channel_view(t, 4);
  EXPECT_EQ(lane.numel(), 2 * 5);
  for (int64_t bt = 0; bt < 10; ++bt) {
    EXPECT_EQ(lane.flat_offset(bt), bt * 7 + 4);
  }
}

TEST(ViewRegions, RowsAreContiguousLastDimRuns) {
  Tensor t = filled(3 * 4 * 2 * 6, 13);
  t = t.reshape({3, 4, 2, 6});
  EXPECT_EQ(row_count(t), 3 * 4 * 2);
  TensorView r = row_view(t, 5);
  EXPECT_EQ(r.numel(), 6);
  EXPECT_TRUE(r.contiguous());
  EXPECT_EQ(r.flat_offset(0), 5 * 6);
  EXPECT_THROW(row_view(t, 24), std::invalid_argument);

  Tensor m = filled(4 * 9, 14);
  m = m.reshape({4, 9});
  EXPECT_EQ(channel_count(m), 9);
  EXPECT_EQ(row_count(m), 4);
  EXPECT_EQ(channel_view(m, 2).flat_offset(3), 3 * 9 + 2);
  EXPECT_EQ(row_view(m, 3).flat_offset(1), 3 * 9 + 1);
}

}  // namespace
}  // namespace ge
