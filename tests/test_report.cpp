// `goldeneye report` rendering (core/report.cpp): the JSONL scanner, the
// merged trial set, and the determinism contract — the rendered bytes are
// a pure function of the deduplicated trial set, so shards of one
// campaign and the single-process run print identical reports.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "io/container.hpp"

namespace ge::core {
namespace {

std::string tmp_path(const std::string& name) {
  return "/tmp/ge_test_report_" + name + ".jsonl";
}

void write_file(const std::string& path,
                const std::vector<std::string>& lines) {
  std::ofstream f(path, std::ios::trunc);
  ASSERT_TRUE(f.good()) << path;
  for (const auto& line : lines) f << line << "\n";
}

struct Rendered {
  std::string out;
  std::string err;
};

Rendered render(const std::vector<std::string>& paths) {
  std::ostringstream out, err;
  render_campaign_report(paths, out, err);
  return {out.str(), err.str()};
}

const char* kHeader =
    "{\"schema\":2,\"type\":\"run_header\",\"format\":\"int8\","
    "\"model\":\"mlp\",\"seed\":5,\"samples\":8}";

std::string trial(int site, int t, const std::string& layer, int bit,
                  double delta, const std::string& cls) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"schema\":2,\"type\":\"trial\",\"layer\":\"%s\","
                "\"site_index\":%d,\"trial\":%d,\"bit\":%d,"
                "\"delta_loss\":%.6g,\"max_delta_loss\":%.6g,"
                "\"class\":\"%s\"}",
                layer.c_str(), site, t, bit, delta, delta, cls.c_str());
  return buf;
}

std::vector<std::string> fixture_trials() {
  return {
      trial(0, 0, "fc1", 0, 0.5, "sdc"),
      trial(0, 1, "fc1", 1, 0.25, "benign"),
      trial(0, 2, "fc1", 2, 0.0, "masked"),
      trial(0, 3, "fc1", 3, 1.5, "sdc"),
      trial(1, 0, "fc2", 0, 0.0, "masked"),
      trial(1, 1, "fc2", 0, 0.0, "masked"),
      trial(1, 2, "fc2", 1, 0.0, "masked"),
      trial(1, 3, "fc2", 1, 0.0, "masked"),
  };
}

TEST(Report, RendersTablesFromTrialStream) {
  const std::string path = tmp_path("tables");
  auto lines = fixture_trials();
  lines.insert(lines.begin(), kHeader);
  write_file(path, lines);

  const Rendered r = render({path});
  EXPECT_NE(r.out.find("campaign report"), std::string::npos);
  EXPECT_NE(r.out.find("format: int8  model: mlp  seed: 5  samples: 8"),
            std::string::npos);
  EXPECT_NE(r.out.find("trials: 8  layers: 2"), std::string::npos);
  EXPECT_NE(r.out.find("layer vulnerability"), std::string::npos);
  EXPECT_NE(r.out.find("fc1"), std::string::npos);
  EXPECT_NE(r.out.find("fc2"), std::string::npos);
  EXPECT_NE(r.out.find("50.0%"), std::string::npos);   // fc1: 2 SDC of 4
  EXPECT_NE(r.out.find("0.0%"), std::string::npos);    // fc2: none
  EXPECT_NE(r.out.find("dLoss distribution"), std::string::npos);
  EXPECT_NE(r.out.find("[2^-1, 2^0)"), std::string::npos);  // the 0.5 trial
  EXPECT_NE(r.out.find("SDC heatmap"), std::string::npos);
  // fc1 over bits 0..3: SDC, benign, masked, SDC -> '#', '.', '.', '#'
  const std::string fc1_row = "fc1" + std::string(26, ' ') + "#..#";
  EXPECT_NE(r.out.find(fc1_row), std::string::npos) << r.out;
  // per-file accounting goes to stderr, never into the rendered bytes
  EXPECT_NE(r.err.find("9 of 9 records used"), std::string::npos) << r.err;
  std::remove(path.c_str());
}

TEST(Report, ShardedFilesRenderByteIdenticalToSingleFile) {
  const std::string single = tmp_path("single");
  auto lines = fixture_trials();
  lines.insert(lines.begin(), kHeader);
  write_file(single, lines);

  // Shards: interleaved trial subsets, each with its own header, listed
  // out of order — the merged set is keyed, so none of that may show.
  const auto all = fixture_trials();
  const std::vector<std::string> shard_paths = {
      tmp_path("shard0"), tmp_path("shard1"), tmp_path("shard2")};
  std::vector<std::vector<std::string>> shards(3);
  for (size_t i = 0; i < all.size(); ++i) {
    shards[i % 3].push_back(all[i]);
  }
  for (size_t i = 0; i < 3; ++i) {
    shards[i].insert(shards[i].begin(), kHeader);
    write_file(shard_paths[i], shards[i]);
  }

  const Rendered want = render({single});
  const Rendered got = render({shard_paths[2], shard_paths[0],
                               shard_paths[1]});
  EXPECT_EQ(got.out, want.out);

  std::remove(single.c_str());
  for (const auto& p : shard_paths) std::remove(p.c_str());
}

TEST(Report, DuplicateTrialKeysDedupeLastWins) {
  // Re-running a shard appends a fresh copy of its trials (append-mode
  // resume); the report must count each (site_index, trial) once, taking
  // the latest record.
  const std::string path = tmp_path("dedupe");
  write_file(path, {kHeader, trial(0, 0, "fc1", 2, 0.0, "masked"),
                    trial(0, 0, "fc1", 2, 0.75, "sdc")});
  const Rendered r = render({path});
  EXPECT_NE(r.out.find("trials: 1  layers: 1"), std::string::npos);
  EXPECT_NE(r.out.find("100.0%"), std::string::npos);  // the sdc copy won
  std::remove(path.c_str());
}

TEST(Report, MixedCampaignHeadersAreDiagnosed) {
  const std::string a = tmp_path("mix_a");
  const std::string b = tmp_path("mix_b");
  write_file(a, {kHeader, trial(0, 0, "fc1", 0, 0.1, "sdc")});
  write_file(b, {"{\"schema\":2,\"type\":\"run_header\",\"format\":\"int8\","
                 "\"model\":\"mlp\",\"seed\":6,\"samples\":8}",
                 trial(0, 1, "fc1", 1, 0.2, "sdc")});
  EXPECT_THROW(render({a, b}), io::IoError);
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(Report, NoTrialRecordsRendersNoteNotError) {
  // An empty campaign is a legitimate input: the render succeeds with an
  // explicit "no trials" note (the CLI then exits 0). Unreadable files
  // stay hard IoErrors.
  const std::string path = tmp_path("empty");
  write_file(path, {kHeader});
  const Rendered r = render({path});
  EXPECT_NE(r.out.find("no trial records"), std::string::npos);
  EXPECT_THROW(render({"/tmp/ge_test_report_no_such.jsonl"}), io::IoError);
  std::remove(path.c_str());
}

TEST(Report, UnparseableAndUnknownLinesAreSkippedNotFatal) {
  // Forward compatibility with future record types and resilience to a
  // torn final line: junk is counted on stderr, never aborts the render.
  const std::string path = tmp_path("junk");
  write_file(path, {kHeader,
                    "{\"schema\":3,\"type\":\"hologram\",\"x\":[1,{\"y\":2}]}",
                    trial(0, 0, "fc1", 0, 0.1, "sdc"),
                    "{\"type\":\"trial\",\"layer\":\"fc1\",\"site_index\":0",
                    "not json at all"});
  const Rendered r = render({path});
  EXPECT_NE(r.out.find("trials: 1  layers: 1"), std::string::npos);
  EXPECT_NE(r.err.find("skipped 2 unparseable record(s)"), std::string::npos)
      << r.err;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ge::core
