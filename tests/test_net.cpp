// ge::net service layer: frame codec hardening (the same every-prefix
// truncation and every-bit corruption sweeps tests/test_io.cpp runs
// against the .gec container), message codec round trips with the
// forward-compat trailing-field rule, LeaseTable fault-tolerance
// semantics under an injected clock, lease partitioning of the campaign
// trial space, and a full loopback serve/submit/worker exercise asserting
// the served digest is bitwise identical to an offline run.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/campaign.hpp"
#include "io/campaign_state.hpp"
#include "net/client.hpp"
#include "net/codec.hpp"
#include "net/frame.hpp"
#include "net/lease.hpp"
#include "net/server.hpp"
#include "net/session.hpp"
#include "net/socket.hpp"
#include "obs/metrics_server.hpp"
#include "obs/run_log.hpp"
#include "obs/telemetry.hpp"
#include "parallel/thread_pool.hpp"

namespace ge::net {
namespace {

struct ThreadGuard {
  int saved = parallel::num_threads();
  ~ThreadGuard() { parallel::set_num_threads(saved); }
};

// --- framing ---------------------------------------------------------------

Frame sample_frame() {
  Frame f;
  f.type = FrameType::kLogRow;
  f.payload = {'h', 'e', 'l', 'l', 'o', ' ', 0x00, 0xff, 0x7f};
  return f;
}

TEST(FrameCodec, RoundTripsTypeAndPayload) {
  const Frame f = sample_frame();
  const std::vector<uint8_t> wire = encode_frame(f);
  ASSERT_EQ(wire.size(), kFrameHeaderSize + f.payload.size());
  const Frame back = decode_frame(wire, "test");
  EXPECT_EQ(back.type, f.type);
  EXPECT_EQ(back.payload, f.payload);
}

TEST(FrameCodec, EmptyPayloadRoundTrips) {
  const Frame back =
      decode_frame(encode_frame({FrameType::kLeaseRequest, {}}), "test");
  EXPECT_EQ(back.type, FrameType::kLeaseRequest);
  EXPECT_TRUE(back.payload.empty());
}

TEST(FrameCodec, EveryPrefixTruncationIsRejected) {
  const std::vector<uint8_t> wire = encode_frame(sample_frame());
  for (size_t len = 0; len < wire.size(); ++len) {
    std::vector<uint8_t> cut(wire.begin(), wire.begin() + len);
    EXPECT_THROW(decode_frame(cut, "trunc"), NetError) << "prefix " << len;
  }
}

TEST(FrameCodec, EveryBitCorruptionIsRejected) {
  // Flip every bit of every byte except the frame-type byte (offset 8):
  // the type is a routing tag, not payload — a flip there may land on
  // another *valid* type, which the CRC deliberately does not cover
  // (headers are validated structurally, like the .gec section table).
  const std::vector<uint8_t> wire = encode_frame(sample_frame());
  for (size_t byte = 0; byte < wire.size(); ++byte) {
    if (byte == 8) continue;
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> bad = wire;
      bad[byte] = uint8_t(bad[byte] ^ (1u << bit));
      EXPECT_THROW(decode_frame(bad, "corrupt"), NetError)
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(FrameCodec, OutOfRangeTypeByteIsRejected) {
  std::vector<uint8_t> wire = encode_frame(sample_frame());
  for (const uint8_t t : {uint8_t{0}, uint8_t{13}, uint8_t{200}}) {
    wire[8] = t;
    EXPECT_THROW(decode_frame(wire, "type"), NetError) << int(t);
  }
}

TEST(FrameCodec, OversizedLengthIsRejectedBeforeAllocation) {
  // A corrupt/hostile length field just over the cap must be rejected by
  // the header check; the payload is never allocated or read.
  std::vector<uint8_t> wire = encode_frame({FrameType::kHello, {}});
  const uint64_t huge = kMaxPayload + 1;
  for (int i = 0; i < 8; ++i) wire[9 + i] = uint8_t(huge >> (8 * i));
  try {
    decode_frame(wire, "huge");
    FAIL() << "oversized length accepted";
  } catch (const NetError& e) {
    EXPECT_NE(std::string(e.what()).find("exceeds cap"), std::string::npos);
  }
}

TEST(FrameCodec, NewerProtocolVersionIsRejected) {
  std::vector<uint8_t> wire = encode_frame(sample_frame());
  const uint32_t newer = kProtocolVersion + 1;
  for (int i = 0; i < 4; ++i) wire[4 + i] = uint8_t(newer >> (8 * i));
  try {
    decode_frame(wire, "ver");
    FAIL() << "newer version accepted";
  } catch (const NetError& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported protocol version"),
              std::string::npos);
  }
  for (int i = 0; i < 4; ++i) wire[4 + i] = 0;  // version 0 (pre-history)
  EXPECT_THROW(decode_frame(wire, "ver0"), NetError);
}

TEST(FrameSocket, RecvDistinguishesCleanEofFromMidFrameCut) {
  ListenResult lr = listen_loopback(0);
  ASSERT_TRUE(lr.sock.valid()) << lr.error;

  const std::vector<uint8_t> wire = encode_frame(sample_frame());
  // Clean EOF: peer closes at a frame boundary -> nullopt, no throw.
  {
    std::string error;
    Socket client = connect_to("127.0.0.1", lr.port, &error);
    ASSERT_TRUE(client.valid()) << error;
    Socket server = accept_connection(lr.sock, 1000);
    ASSERT_TRUE(server.valid());
    ASSERT_TRUE(client.send_all(wire.data(), wire.size()));
    client.close();
    std::optional<Frame> f = recv_frame(server, "eof");
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->payload, sample_frame().payload);
    EXPECT_FALSE(recv_frame(server, "eof").has_value());
  }
  // Mid-frame cut: peer dies partway through -> diagnosed NetError.
  {
    std::string error;
    Socket client = connect_to("127.0.0.1", lr.port, &error);
    ASSERT_TRUE(client.valid()) << error;
    Socket server = accept_connection(lr.sock, 1000);
    ASSERT_TRUE(server.valid());
    ASSERT_TRUE(client.send_all(wire.data(), wire.size() - 3));
    client.close();
    EXPECT_THROW(recv_frame(server, "cut"), NetError);
  }
}

TEST(FrameSocket, DrainAcceptReturnsImmediatelyOnEmptyBacklog) {
  // timeout 0 is the backlog-drain contract: an empty backlog must yield
  // an invalid Socket at once, never a blocking accept(). A regression
  // here deadlocks the MetricsServer serve loop (and anything else that
  // drains after a wake), so pin it with a wall-clock bound.
  ListenResult lr = listen_loopback(0);
  ASSERT_TRUE(lr.sock.valid()) << lr.error;
  const auto t0 = std::chrono::steady_clock::now();
  Socket none = accept_connection(lr.sock, /*timeout_ms=*/0);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_FALSE(none.valid());
  EXPECT_LT(elapsed, std::chrono::seconds(5));

  // With a queued connection the same call must still hand it over.
  std::string error;
  Socket client = connect_to("127.0.0.1", lr.port, &error);
  ASSERT_TRUE(client.valid()) << error;
  ASSERT_TRUE(client.wait_readable(0) >= 0);
  Socket pending = accept_connection(lr.sock, /*timeout_ms=*/1000);
  EXPECT_TRUE(pending.valid());
  EXPECT_FALSE(accept_connection(lr.sock, /*timeout_ms=*/0).valid());
}

// --- message codec ---------------------------------------------------------

CampaignSpecMsg sample_spec() {
  CampaignSpecMsg s;
  s.model_name = "simple_cnn";
  s.epochs = 2;
  s.samples = 8;
  s.format_spec = "fp_e4m3";
  s.site = 0;
  s.error_model = 0;
  s.injections_per_layer = 3;
  s.seed = 99;
  s.sites_per_trial = 2;
  s.ber = 0.25;
  s.burst_len = 4;
  s.prefix_cache = 1;
  return s;
}

TEST(MessageCodec, CampaignSpecRoundTrips) {
  const CampaignSpecMsg s = sample_spec();
  const CampaignSpecMsg b =
      decode_campaign_spec(encode_campaign_spec(s), "test");
  EXPECT_EQ(b.model_name, s.model_name);
  EXPECT_EQ(b.epochs, s.epochs);
  EXPECT_EQ(b.samples, s.samples);
  EXPECT_EQ(b.format_spec, s.format_spec);
  EXPECT_EQ(b.site, s.site);
  EXPECT_EQ(b.error_model, s.error_model);
  EXPECT_EQ(b.injections_per_layer, s.injections_per_layer);
  EXPECT_EQ(b.seed, s.seed);
  EXPECT_EQ(b.sites_per_trial, s.sites_per_trial);
  EXPECT_EQ(b.ber, s.ber);
  EXPECT_EQ(b.burst_len, s.burst_len);
  EXPECT_EQ(b.prefix_cache, s.prefix_cache);
}

TEST(MessageCodec, TrailingFieldsAreIgnoredForwardCompat) {
  // The .gec forward-compat rule on the wire: a newer peer may append
  // fields; this reader takes what it knows and ignores the rest.
  std::vector<uint8_t> payload = encode_campaign_spec(sample_spec());
  payload.insert(payload.end(), {0xde, 0xad, 0xbe, 0xef, 0x01});
  const CampaignSpecMsg b = decode_campaign_spec(payload, "compat");
  EXPECT_EQ(b.format_spec, "fp_e4m3");
  EXPECT_EQ(b.seed, 99u);

  // Same rule holds one nesting level down (the spec blob in a grant).
  LeaseGrantMsg g;
  g.campaign_id = 7;
  g.lease_id = 3;
  g.lo = 10;
  g.hi = 20;
  g.heartbeat_ms = 1500;
  g.spec = sample_spec();
  std::vector<uint8_t> gp = encode_lease_grant(g);
  gp.push_back(0x55);
  const LeaseGrantMsg gb = decode_lease_grant(gp, "compat");
  EXPECT_EQ(gb.campaign_id, 7u);
  EXPECT_EQ(gb.lo, 10u);
  EXPECT_EQ(gb.hi, 20u);
  EXPECT_EQ(gb.heartbeat_ms, 1500u);
  EXPECT_EQ(gb.spec.format_spec, "fp_e4m3");
}

TEST(MessageCodec, TraceContextRidesAsTaggedTrailingField) {
  CampaignSpecMsg s = sample_spec();
  s.trace_id = 0x1122334455667788ull;
  s.parent_span_id = 0x99aabbccddeeff01ull;
  const std::vector<uint8_t> traced = encode_campaign_spec(s);
  const CampaignSpecMsg b = decode_campaign_spec(traced, "trace");
  EXPECT_EQ(b.trace_id, s.trace_id);
  EXPECT_EQ(b.parent_span_id, s.parent_span_id);
  EXPECT_EQ(b.format_spec, s.format_spec);

  // Untraced specs encode byte-identically to the pre-trace wire format:
  // the tag (+16 id bytes) is appended only when a trace is active, so a
  // digest pinned against an older peer cannot move.
  const std::vector<uint8_t> plain = encode_campaign_spec(sample_spec());
  ASSERT_EQ(plain.size() + 20, traced.size());
  EXPECT_TRUE(std::equal(plain.begin(), plain.end(), traced.begin()));
  const CampaignSpecMsg pb = decode_campaign_spec(plain, "plain");
  EXPECT_EQ(pb.trace_id, 0u);
  EXPECT_EQ(pb.parent_span_id, 0u);

  // A 20-byte tail that is not the tag stays forward-compat junk — it
  // must never be misread as a trace context.
  std::vector<uint8_t> junk = plain;
  junk.insert(junk.end(), 20, 0x5a);
  const CampaignSpecMsg jb = decode_campaign_spec(junk, "junk");
  EXPECT_EQ(jb.trace_id, 0u);
  EXPECT_EQ(jb.parent_span_id, 0u);

  // The context survives one nesting level down (the spec blob in a lease
  // grant), which is how workers join the submit client's trace.
  LeaseGrantMsg g;
  g.campaign_id = 7;
  g.lease_id = 3;
  g.lo = 10;
  g.hi = 20;
  g.heartbeat_ms = 1500;
  g.spec = s;
  const LeaseGrantMsg gb = decode_lease_grant(encode_lease_grant(g), "nest");
  EXPECT_EQ(gb.spec.trace_id, s.trace_id);
  EXPECT_EQ(gb.spec.parent_span_id, s.parent_span_id);
}

TEST(MessageCodec, TracedSpecEveryPrefixTruncationIsSafe) {
  CampaignSpecMsg s = sample_spec();
  s.trace_id = 0xfeedfacecafebeefull;
  s.parent_span_id = 0x0123456789abcdefull;
  const std::vector<uint8_t> payload = encode_campaign_spec(s);
  for (size_t len = 0; len < payload.size(); ++len) {
    std::vector<uint8_t> cut(payload.begin(), payload.begin() + len);
    // Every prefix either throws (a fixed field is cut) or decodes with
    // the trace context dropped to zero (an incomplete tag is an
    // ignorable tail, never a partial read).
    try {
      const CampaignSpecMsg b = decode_campaign_spec(cut, "trunc");
      EXPECT_EQ(b.trace_id, 0u) << "prefix " << len;
      EXPECT_EQ(b.parent_span_id, 0u) << "prefix " << len;
    } catch (const NetError&) {
    }
  }
  const CampaignSpecMsg full = decode_campaign_spec(payload, "full");
  EXPECT_EQ(full.trace_id, s.trace_id);
  EXPECT_EQ(full.parent_span_id, s.parent_span_id);
}

TEST(MessageCodec, TracedSpecFrameEveryBitCorruptionIsRejected) {
  // The CRC sweep from the frame tests, re-run over a payload that ends in
  // the trace tag: no payload bit flip (tag, ids, or anything before them)
  // may slip through the frame check.
  CampaignSpecMsg s = sample_spec();
  s.trace_id = 0x1111111111111111ull;
  s.parent_span_id = 0x2222222222222222ull;
  const std::vector<uint8_t> wire =
      encode_frame({FrameType::kSubmit, encode_campaign_spec(s)});
  for (size_t byte = kFrameHeaderSize; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> bad = wire;
      bad[byte] = uint8_t(bad[byte] ^ (1u << bit));
      EXPECT_THROW(decode_frame(bad, "corrupt"), NetError)
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(MessageCodec, TruncatedPayloadIsDiagnosed) {
  const std::vector<uint8_t> payload = encode_campaign_spec(sample_spec());
  for (size_t len = 0; len < payload.size(); len += 3) {
    std::vector<uint8_t> cut(payload.begin(), payload.begin() + len);
    EXPECT_THROW(decode_campaign_spec(cut, "trunc"), NetError) << len;
  }
}

TEST(MessageCodec, ControlMessagesRoundTrip) {
  const HelloMsg h = decode_hello(
      encode_hello({HelloMsg::kRoleWorker, "w1"}), "t");
  EXPECT_EQ(h.role, HelloMsg::kRoleWorker);
  EXPECT_EQ(h.client, "w1");

  LeaseResultMsg lr;
  lr.campaign_id = 4;
  lr.lease_id = 9;
  lr.progress = {1, 2, 3, 0, 255};
  const LeaseResultMsg lb = decode_lease_result(encode_lease_result(lr), "t");
  EXPECT_EQ(lb.campaign_id, 4u);
  EXPECT_EQ(lb.lease_id, 9u);
  EXPECT_EQ(lb.progress, lr.progress);

  const HeartbeatMsg hb = decode_heartbeat(encode_heartbeat({8, 2}), "t");
  EXPECT_EQ(hb.campaign_id, 8u);
  EXPECT_EQ(hb.lease_id, 2u);

  DoneMsg d;
  d.digest = 0xabcdef0123456789ull;
  d.golden_accuracy = 0.875f;
  d.summary = "layer table\n";
  const DoneMsg db = decode_done(encode_done(d), "t");
  EXPECT_EQ(db.digest, d.digest);
  EXPECT_EQ(db.golden_accuracy, d.golden_accuracy);
  EXPECT_EQ(db.summary, d.summary);

  const ErrorMsg e = decode_error(encode_error({"boom"}), "t");
  EXPECT_EQ(e.message, "boom");

  CheckpointedMsg c;
  c.path = "/tmp/x.gec";
  c.completed_trials = 5;
  c.total_trials = 12;
  const CheckpointedMsg cb = decode_checkpointed(encode_checkpointed(c), "t");
  EXPECT_EQ(cb.path, c.path);
  EXPECT_EQ(cb.completed_trials, 5);
  EXPECT_EQ(cb.total_trials, 12);
}

// --- lease table -----------------------------------------------------------

TEST(LeaseTable, GrantsChunksInOrderWithShortTail) {
  LeaseTable t;
  t.reset(10, 4);  // [0,4) [4,8) [8,10)
  EXPECT_EQ(t.unleased_trials(), 10);
  Lease a, b, c, d;
  ASSERT_TRUE(t.grant(0, 0, &a));
  ASSERT_TRUE(t.grant(0, 0, &b));
  ASSERT_TRUE(t.grant(0, 0, &c));
  EXPECT_FALSE(t.grant(0, 0, &d));  // nothing left
  EXPECT_EQ(a.lo, 0);
  EXPECT_EQ(a.hi, 4);
  EXPECT_EQ(b.lo, 4);
  EXPECT_EQ(b.hi, 8);
  EXPECT_EQ(c.lo, 8);
  EXPECT_EQ(c.hi, 10);
  EXPECT_EQ(t.live_leases(), 3);
  EXPECT_TRUE(t.complete(a.id));
  EXPECT_TRUE(t.complete(b.id));
  EXPECT_FALSE(t.all_done());
  EXPECT_TRUE(t.complete(c.id));
  EXPECT_TRUE(t.all_done());
}

TEST(LeaseTable, ExpiryReclaimsAndStaleResultIsDiscarded) {
  LeaseTable t;
  t.reset(6, 6);
  Lease a;
  ASSERT_TRUE(t.grant(/*now=*/1000, /*timeout=*/500, &a));
  EXPECT_EQ(t.reclaim_expired(1400), 0);  // deadline 1500 not yet passed
  EXPECT_EQ(t.reclaim_expired(1600), 1);
  EXPECT_EQ(t.live_leases(), 0);
  EXPECT_EQ(t.unleased_trials(), 6);
  // The dead lease id must not be able to complete: its range has been
  // requeued and will be re-run; accepting the late result would double
  // count trials (merge would reject the overlapping done sets).
  EXPECT_FALSE(t.complete(a.id));
  EXPECT_FALSE(t.heartbeat(a.id, 1700, 500));
  Lease b;
  ASSERT_TRUE(t.grant(2000, 500, &b));
  EXPECT_NE(b.id, a.id);
  EXPECT_EQ(b.lo, a.lo);
  EXPECT_EQ(b.hi, a.hi);
  EXPECT_TRUE(t.complete(b.id));
  EXPECT_TRUE(t.all_done());
}

TEST(LeaseTable, HeartbeatExtendsTheDeadline) {
  LeaseTable t;
  t.reset(4, 4);
  Lease a;
  ASSERT_TRUE(t.grant(0, 1000, &a));
  EXPECT_TRUE(t.heartbeat(a.id, 900, 1000));  // new deadline 1900
  EXPECT_EQ(t.reclaim_expired(1500), 0);
  EXPECT_EQ(t.reclaim_expired(2000), 1);
}

TEST(LeaseTable, NonExpiringLeaseSurvivesAnyClock) {
  LeaseTable t;
  t.reset(4, 4);
  Lease a;
  ASSERT_TRUE(t.grant(0, /*timeout_ns=*/0, &a));  // the executor's own lease
  EXPECT_EQ(t.reclaim_expired(INT64_MAX), 0);
  EXPECT_TRUE(t.complete(a.id));
}

TEST(LeaseTable, AbandonedRangeIsRequeuedAtTheFront) {
  LeaseTable t;
  t.reset(9, 3);  // [0,3) [3,6) [6,9)
  Lease a, b;
  ASSERT_TRUE(t.grant(0, 0, &a));
  ASSERT_TRUE(t.grant(0, 0, &b));
  EXPECT_TRUE(t.abandon(a.id));
  EXPECT_FALSE(t.abandon(a.id));  // already gone
  // Recovery work starts immediately: the abandoned range is granted
  // before the never-touched tail chunk.
  Lease c;
  ASSERT_TRUE(t.grant(0, 0, &c));
  EXPECT_EQ(c.lo, a.lo);
  EXPECT_EQ(c.hi, a.hi);
}

// --- lease partitioning of the campaign trial space ------------------------

constexpr const char* kCacheDir = "/tmp/ge_test_net_cache";

CampaignSpecMsg e2e_spec() {
  CampaignSpecMsg s;
  s.model_name = "simple_cnn";
  s.epochs = 2;
  s.samples = 8;
  s.format_spec = "fp_e4m3";
  s.injections_per_layer = 3;
  s.seed = 99;
  return s;
}

uint64_t offline_digest(const CampaignSpecMsg& spec) {
  PreparedCampaign prep = prepare_campaign(spec, kCacheDir);
  core::CampaignRunOptions opts;
  opts.model_name = spec.model_name;
  opts.eval_samples = spec.samples;
  const core::CampaignProgress prog = core::run_campaign_trials(
      *prep.trained.model, prep.batch, prep.cfg, opts);
  return core::campaign_digest(core::finalize_campaign(prog));
}

TEST(LeasePartition, ArbitraryPartitionMergesBitwiseIdentical) {
  ThreadGuard guard;
  parallel::set_num_threads(2);
  const CampaignSpecMsg spec = e2e_spec();
  PreparedCampaign prep = prepare_campaign(spec, kCacheDir);
  ASSERT_GT(prep.total_trials, 4);

  // Uneven three-way cut of the global trial index space.
  const int64_t t = prep.total_trials;
  const std::vector<std::pair<int64_t, int64_t>> cuts = {
      {0, 1}, {1, t / 2}, {t / 2, t}};
  std::vector<core::CampaignProgress> parts;
  for (const auto& [lo, hi] : cuts) {
    core::CampaignRunOptions opts;
    opts.model_name = spec.model_name;
    opts.eval_samples = spec.samples;
    opts.lease_lo = lo;
    opts.lease_hi = hi;
    parts.push_back(core::run_campaign_trials(*prep.trained.model, prep.batch,
                                              prep.cfg, opts));
    EXPECT_EQ(parts.back().completed_trials(), hi - lo);
  }
  // Same relabelling the server's merge path uses: each part becomes one
  // shard of a single logical run.
  for (size_t i = 0; i < parts.size(); ++i) {
    parts[i].shards = static_cast<int>(parts.size());
    parts[i].shard_index = static_cast<int>(i);
  }
  const core::CampaignProgress merged = core::merge_campaign_progress(parts);
  EXPECT_TRUE(merged.complete());
  EXPECT_EQ(core::campaign_digest(core::finalize_campaign(merged)),
            offline_digest(spec));
}

TEST(LeasePartition, BoundsAreValidated) {
  const CampaignSpecMsg spec = e2e_spec();
  PreparedCampaign prep = prepare_campaign(spec, kCacheDir);
  core::CampaignRunOptions opts;
  opts.lease_lo = 0;
  opts.lease_hi = prep.total_trials + 1;  // beyond the trial space
  EXPECT_THROW(core::run_campaign_trials(*prep.trained.model, prep.batch,
                                         prep.cfg, opts),
               std::invalid_argument);
  opts.lease_lo = 5;
  opts.lease_hi = 3;  // inverted
  EXPECT_THROW(core::run_campaign_trials(*prep.trained.model, prep.batch,
                                         prep.cfg, opts),
               std::invalid_argument);
}

// --- loopback end to end ---------------------------------------------------

uint64_t parse_digest(const std::string& out) {
  const std::string needle = "campaign digest: 0x";
  const size_t pos = out.find(needle);
  EXPECT_NE(pos, std::string::npos) << out;
  if (pos == std::string::npos) return 0;
  return std::stoull(out.substr(pos + needle.size()), nullptr, 16);
}

/// All "trial" rows of a JSONL stream, sorted (lease execution order is
/// nondeterministic across runs; the row *set* is not).
std::vector<std::string> trial_rows(const std::string& jsonl) {
  std::vector<std::string> rows;
  std::istringstream in(jsonl);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"type\":\"trial\"") != std::string::npos) {
      rows.push_back(line);
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

struct ServedRun {
  int code = 0;
  std::string out;
  std::string report;
};

/// Spin up an in-process server, submit `spec`, and return the client's
/// stdout + spliced report. Extra client threads (workers) run alongside.
ServedRun serve_and_submit(const CampaignSpecMsg& spec, ServeOptions sopts,
                           std::ostream* server_log_stream = nullptr,
                           std::function<void(int)> extra = {}) {
  sopts.cache_dir = kCacheDir;
  sopts.max_campaigns = 1;
  std::unique_ptr<obs::RunLog> slog;
  if (server_log_stream != nullptr) {
    slog = std::make_unique<obs::RunLog>(*server_log_stream);
  }
  Server server(sopts, slog.get());
  EXPECT_TRUE(server.ok()) << server.last_error();
  std::thread serve([&] { server.run(); });

  std::thread extra_thread;
  if (extra) extra_thread = std::thread([&] { extra(server.port()); });

  ServedRun r;
  std::ostringstream out, err, report_stream;
  obs::RunLog report(report_stream);
  SubmitOptions sub;
  sub.port = server.port();
  sub.spec = spec;
  r.code = run_submit(sub, &report, out, err);
  r.out = out.str() + err.str();
  r.report = report_stream.str();

  serve.join();
  if (extra_thread.joinable()) extra_thread.join();
  return r;
}

TEST(ServeLoopback, ServedDigestMatchesOfflineAtOneAndFourThreads) {
  ThreadGuard guard;
  const CampaignSpecMsg spec = e2e_spec();

  parallel::set_num_threads(1);
  const uint64_t offline1 = offline_digest(spec);
  std::ostringstream offline_report_stream;
  {
    obs::RunLog offline_log(offline_report_stream);
    PreparedCampaign prep = prepare_campaign(spec, kCacheDir);
    core::CampaignRunOptions opts;
    opts.model_name = spec.model_name;
    opts.eval_samples = spec.samples;
    opts.run_log = &offline_log;
    core::run_campaign_trials(*prep.trained.model, prep.batch, prep.cfg, opts);
  }

  const ServedRun r1 = serve_and_submit(spec, ServeOptions{});
  ASSERT_EQ(r1.code, 0) << r1.out;
  EXPECT_EQ(parse_digest(r1.out), offline1);

  parallel::set_num_threads(4);
  const ServedRun r4 = serve_and_submit(spec, ServeOptions{});
  ASSERT_EQ(r4.code, 0) << r4.out;
  EXPECT_EQ(parse_digest(r4.out), offline1);

  // The streamed rows are the exact bytes an offline --report run writes
  // (sorted: chunked execution reorders rows, never alters them).
  const auto offline_rows = trial_rows(offline_report_stream.str());
  ASSERT_FALSE(offline_rows.empty());
  EXPECT_EQ(trial_rows(r1.report), offline_rows);
  EXPECT_EQ(trial_rows(r4.report), offline_rows);
}

TEST(ServeLoopback, WorkerExecutesLeasesAndDigestStillMatches) {
  ThreadGuard guard;
  parallel::set_num_threads(2);
  CampaignSpecMsg spec = e2e_spec();
  spec.prefix_cache = 0;  // slower trials widen the lease-stealing window
  const uint64_t offline = offline_digest(spec);

  ServeOptions sopts;
  sopts.lease_chunk = 1;
  std::ostringstream worker_out, worker_err;
  const ServedRun r = serve_and_submit(
      spec, sopts, nullptr, [&](int port) {
        WorkerOptions w;
        w.port = port;
        w.cache_dir = kCacheDir;
        w.poll_ms = 10;
        w.idle_timeout_ms = 30000;  // backstop; kShutdown arrives first
        run_worker(w, worker_out, worker_err);
      });
  ASSERT_EQ(r.code, 0) << r.out;
  EXPECT_EQ(parse_digest(r.out), offline);
}

TEST(ServeLoopback, KilledWorkerLeaseIsReclaimedAndDigestStillMatches) {
  ThreadGuard guard;
  parallel::set_num_threads(2);
  CampaignSpecMsg spec = e2e_spec();
  spec.prefix_cache = 0;
  const uint64_t offline = offline_digest(spec);

  ServeOptions sopts;
  sopts.lease_chunk = 1;
  std::ostringstream slog, worker_out, worker_err;
  const ServedRun r = serve_and_submit(
      spec, sopts, &slog, [&](int port) {
        WorkerOptions w;
        w.port = port;
        w.cache_dir = kCacheDir;
        w.poll_ms = 10;
        w.drop_leases = 1;  // accept one grant, run nothing, drop the link
        run_worker(w, worker_out, worker_err);
      });
  ASSERT_EQ(r.code, 0) << r.out;
  EXPECT_EQ(parse_digest(r.out), offline);
  // The drill must actually have exercised the reclaim path: the worker
  // died holding a granted range, and the server logged the abandonment.
  EXPECT_NE(worker_out.str().find("dying with 1 leases held"),
            std::string::npos)
      << worker_out.str();
  EXPECT_NE(slog.str().find("lease_abandoned"), std::string::npos)
      << slog.str();
}

std::string http_get(int port, const std::string& path) {
  std::string error;
  Socket s = connect_to("127.0.0.1", port, &error);
  if (!s.valid()) return {};
  const std::string req = "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n";
  if (!s.send_all(req.data(), req.size())) return {};
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = s.recv_some(buf, sizeof(buf))) > 0) {
    resp.append(buf, static_cast<size_t>(n));
  }
  return resp;
}

TEST(ServeLoopback, TracedCampaignsKeepDigestsAndFormOneTracePerCampaign) {
  // The full introspection stack on at once — tracing, metrics, /status
  // scrapes racing the campaign — must not move a single result bit, and
  // the recorded spans must form exactly one trace per submitted campaign
  // rooted at the submit client.
  ThreadGuard guard;
  CampaignSpecMsg spec = e2e_spec();
  spec.prefix_cache = 0;
  parallel::set_num_threads(1);
  const uint64_t offline = offline_digest(spec);

  obs::TelemetryScope scope(/*tracing=*/true, /*metrics=*/true);
  obs::reset_all();
  obs::clear_trace();
  obs::MetricsServer msrv(/*port=*/0);
  ASSERT_TRUE(msrv.ok()) << msrv.last_error();

  // Campaign 1: single-threaded executor-only path.
  const ServedRun r1 = serve_and_submit(spec, ServeOptions{});
  ASSERT_EQ(r1.code, 0) << r1.out;
  EXPECT_EQ(parse_digest(r1.out), offline);

  // Campaign 2: four threads + a worker stealing leases, with /status
  // hammered concurrently for the whole run.
  parallel::set_num_threads(4);
  ServeOptions sopts;
  sopts.lease_chunk = 1;
  std::atomic<bool> stop{false};
  std::atomic<bool> saw_server{false};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string resp = http_get(msrv.port(), "/status");
      if (resp.find("\"server\":{") != std::string::npos &&
          resp.find("\"queue_depth\":") != std::string::npos) {
        saw_server.store(true, std::memory_order_relaxed);
      }
    }
  });
  std::ostringstream worker_out, worker_err;
  const ServedRun r2 = serve_and_submit(spec, sopts, nullptr, [&](int port) {
    WorkerOptions w;
    w.port = port;
    w.cache_dir = kCacheDir;
    w.poll_ms = 10;
    w.idle_timeout_ms = 30000;
    run_worker(w, worker_out, worker_err);
  });
  stop.store(true, std::memory_order_relaxed);
  scraper.join();
  ASSERT_EQ(r2.code, 0) << r2.out;
  EXPECT_EQ(parse_digest(r2.out), offline);
  // At least one scrape landed while the daemon had its status source
  // registered (the campaign runs for far longer than one scrape loop).
  EXPECT_TRUE(saw_server.load());

  // Everything ran in-process under one trace registry, so the merged
  // event set is exactly what `trace --merge` would reconstruct: one root
  // per campaign, each with the server-side spans as descendants.
  const auto events = obs::collect_trace();
  std::vector<const obs::TraceEvent*> roots;
  for (const auto& e : events) {
    if (e.trace_id != 0 && e.parent_span_id == 0) roots.push_back(&e);
  }
  ASSERT_EQ(roots.size(), 2u);
  EXPECT_NE(roots[0]->trace_id, roots[1]->trace_id);
  for (const obs::TraceEvent* root : roots) {
    EXPECT_EQ(root->name.rfind("submit", 0), 0u) << root->name;
    ASSERT_NE(root->span_id, 0u);
    int sessions = 0, executes = 0, leases = 0, queue_waits = 0;
    for (const auto& e : events) {
      if (e.trace_id != root->trace_id || &e == root) continue;
      // every non-root traced span hangs off some parent in the tree
      EXPECT_NE(e.parent_span_id, 0u) << e.name;
      if (e.name.rfind("server_session", 0) == 0) ++sessions;
      if (e.name.rfind("execute", 0) == 0) ++executes;
      if (e.name.rfind("queue_wait", 0) == 0) ++queue_waits;
      if (e.name.rfind("worker_lease", 0) == 0 ||
          e.name.rfind("lease_execute", 0) == 0) {
        ++leases;
      }
    }
    EXPECT_EQ(sessions, 1) << "trace " << root->trace_id;
    EXPECT_EQ(executes, 1) << "trace " << root->trace_id;
    EXPECT_EQ(queue_waits, 1) << "trace " << root->trace_id;
    EXPECT_GE(leases, 1) << "trace " << root->trace_id;
  }
  obs::clear_trace();
  obs::reset_all();
}

TEST(ServeLoopback, SubmitAgainstDeadPortIsDiagnosed) {
  // Bind-then-close to obtain a port with nothing listening.
  int port = 0;
  {
    ListenResult lr = listen_loopback(0);
    ASSERT_TRUE(lr.sock.valid());
    port = lr.port;
  }
  SubmitOptions sub;
  sub.port = port;
  sub.spec = e2e_spec();
  std::ostringstream out, err;
  EXPECT_THROW(run_submit(sub, nullptr, out, err), NetError);
}

TEST(ServeLoopback, InvalidSpecIsRefusedWithServerError) {
  ServeOptions sopts;
  sopts.cache_dir = kCacheDir;
  sopts.max_campaigns = 1;
  Server server(sopts, nullptr);
  ASSERT_TRUE(server.ok()) << server.last_error();
  std::thread serve([&] { server.run(); });

  CampaignSpecMsg bad = e2e_spec();
  bad.format_spec = "not_a_format";
  SubmitOptions sub;
  sub.port = server.port();
  sub.spec = bad;
  std::ostringstream out, err;
  EXPECT_EQ(run_submit(sub, nullptr, out, err), 1);
  EXPECT_NE(err.str().find("server error"), std::string::npos) << err.str();
  serve.join();
}

}  // namespace
}  // namespace ge::net
