// Tensor substrate: construction, shape algebra, access, invariants.
#include <gtest/gtest.h>

#include <stdexcept>

#include "tensor/tensor.hpp"

namespace ge {
namespace {

TEST(Shape, NumelOfEmptyShapeIsOne) { EXPECT_EQ(shape_numel({}), 1); }

TEST(Shape, NumelMultipliesExtents) {
  EXPECT_EQ(shape_numel({2, 3, 4}), 24);
  EXPECT_EQ(shape_numel({7}), 7);
  EXPECT_EQ(shape_numel({5, 0, 3}), 0);
}

TEST(Shape, NegativeExtentThrows) {
  EXPECT_THROW(shape_numel({2, -1}), std::invalid_argument);
}

TEST(Shape, ToStringFormatsBrackets) {
  EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]");
  EXPECT_EQ(shape_to_string({}), "[]");
}

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.numel(), 0);
  EXPECT_TRUE(t.empty());
}

TEST(Tensor, ShapeConstructorZeroFills) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.dim(), 2);
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, DataConstructorChecksSize) {
  EXPECT_NO_THROW(Tensor({2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, OfMakesRank1) {
  Tensor t = Tensor::of({1.5f, -2.0f, 3.0f});
  ASSERT_EQ(t.dim(), 1);
  EXPECT_EQ(t.size(0), 3);
  EXPECT_EQ(t[1], -2.0f);
}

TEST(Tensor, FullAndOnes) {
  EXPECT_EQ(Tensor::ones({3})[2], 1.0f);
  EXPECT_EQ(Tensor::full({2, 2}, -7.0f)[3], -7.0f);
}

TEST(Tensor, ArangeCounts) {
  Tensor t = Tensor::arange(5);
  for (int64_t i = 0; i < 5; ++i) EXPECT_EQ(t[i], static_cast<float>(i));
}

TEST(Tensor, SizeSupportsNegativeDims) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.size(-1), 4);
  EXPECT_EQ(t.size(-3), 2);
  EXPECT_THROW(t.size(3), std::out_of_range);
  EXPECT_THROW(t.size(-4), std::out_of_range);
}

TEST(Tensor, AtUsesRowMajorOrder) {
  Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
  EXPECT_EQ(t.at({0, 0}), 0.0f);
  EXPECT_EQ(t.at({0, 2}), 2.0f);
  EXPECT_EQ(t.at({1, 0}), 3.0f);
  EXPECT_EQ(t.at({1, 2}), 5.0f);
}

TEST(Tensor, AtChecksRankAndBounds) {
  Tensor t({2, 3});
  EXPECT_THROW(t.at({0}), std::invalid_argument);
  EXPECT_THROW(t.at({2, 0}), std::out_of_range);
  EXPECT_THROW(t.at({0, 3}), std::out_of_range);
}

TEST(Tensor, AtIsWritable) {
  Tensor t({2, 2});
  t.at({1, 1}) = 9.0f;
  EXPECT_EQ(t[3], 9.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
  Tensor r = t.reshape({3, 2});
  EXPECT_EQ(r.at({2, 1}), 5.0f);
  EXPECT_EQ(r.numel(), 6);
}

TEST(Tensor, ReshapeInfersMinusOne) {
  Tensor t({2, 6});
  EXPECT_EQ(t.reshape({4, -1}).size(1), 3);
  EXPECT_EQ(t.reshape({-1}).size(0), 12);
}

TEST(Tensor, ReshapeRejectsBadShapes) {
  Tensor t({2, 3});
  EXPECT_THROW(t.reshape({4, 2}), std::invalid_argument);
  EXPECT_THROW(t.reshape({-1, -1}), std::invalid_argument);
  EXPECT_THROW(t.reshape({5, -1}), std::invalid_argument);
}

TEST(Tensor, CloneIsDeep) {
  Tensor t({2}, {1, 2});
  Tensor c = t.clone();
  c[0] = 100.0f;
  EXPECT_EQ(t[0], 1.0f);
}

TEST(Tensor, EqualsAndAllclose) {
  Tensor a({2}, {1.0f, 2.0f});
  Tensor b({2}, {1.0f, 2.0f});
  Tensor c({2}, {1.0f, 2.0000005f});
  Tensor d({1, 2}, {1.0f, 2.0f});
  EXPECT_TRUE(a.equals(b));
  EXPECT_FALSE(a.equals(c));
  EXPECT_TRUE(a.allclose(c, 1e-5f));
  EXPECT_FALSE(a.allclose(d));  // shape differs
}

TEST(Tensor, FillOverwritesEverything) {
  Tensor t({3, 3});
  t.fill(2.5f);
  for (float v : t.flat()) EXPECT_EQ(v, 2.5f);
}

TEST(Tensor, OffsetOfMatchesAt) {
  Tensor t({2, 3, 4});
  const int64_t idx[] = {1, 2, 3};
  EXPECT_EQ(t.offset_of(idx), 1 * 12 + 2 * 4 + 3);
}

}  // namespace
}  // namespace ge
