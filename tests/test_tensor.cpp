// Tensor substrate: construction, shape algebra, access, invariants —
// plus the arena freelist's sizing policy (bounded, bucketed, LRU).
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/telemetry.hpp"
#include "tensor/arena.hpp"
#include "tensor/tensor.hpp"

namespace ge {
namespace {

TEST(Shape, NumelOfEmptyShapeIsOne) { EXPECT_EQ(shape_numel({}), 1); }

TEST(Shape, NumelMultipliesExtents) {
  EXPECT_EQ(shape_numel({2, 3, 4}), 24);
  EXPECT_EQ(shape_numel({7}), 7);
  EXPECT_EQ(shape_numel({5, 0, 3}), 0);
}

TEST(Shape, NegativeExtentThrows) {
  EXPECT_THROW(shape_numel({2, -1}), std::invalid_argument);
}

TEST(Shape, ToStringFormatsBrackets) {
  EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]");
  EXPECT_EQ(shape_to_string({}), "[]");
}

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.numel(), 0);
  EXPECT_TRUE(t.empty());
}

TEST(Tensor, ShapeConstructorZeroFills) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.dim(), 2);
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, DataConstructorChecksSize) {
  EXPECT_NO_THROW(Tensor({2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, OfMakesRank1) {
  Tensor t = Tensor::of({1.5f, -2.0f, 3.0f});
  ASSERT_EQ(t.dim(), 1);
  EXPECT_EQ(t.size(0), 3);
  EXPECT_EQ(t[1], -2.0f);
}

TEST(Tensor, FullAndOnes) {
  EXPECT_EQ(Tensor::ones({3})[2], 1.0f);
  EXPECT_EQ(Tensor::full({2, 2}, -7.0f)[3], -7.0f);
}

TEST(Tensor, ArangeCounts) {
  Tensor t = Tensor::arange(5);
  for (int64_t i = 0; i < 5; ++i) EXPECT_EQ(t[i], static_cast<float>(i));
}

TEST(Tensor, SizeSupportsNegativeDims) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.size(-1), 4);
  EXPECT_EQ(t.size(-3), 2);
  EXPECT_THROW(t.size(3), std::out_of_range);
  EXPECT_THROW(t.size(-4), std::out_of_range);
}

TEST(Tensor, AtUsesRowMajorOrder) {
  Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
  EXPECT_EQ(t.at({0, 0}), 0.0f);
  EXPECT_EQ(t.at({0, 2}), 2.0f);
  EXPECT_EQ(t.at({1, 0}), 3.0f);
  EXPECT_EQ(t.at({1, 2}), 5.0f);
}

TEST(Tensor, AtChecksRankAndBounds) {
  Tensor t({2, 3});
  EXPECT_THROW(t.at({0}), std::invalid_argument);
  EXPECT_THROW(t.at({2, 0}), std::out_of_range);
  EXPECT_THROW(t.at({0, 3}), std::out_of_range);
}

TEST(Tensor, AtIsWritable) {
  Tensor t({2, 2});
  t.at({1, 1}) = 9.0f;
  EXPECT_EQ(t[3], 9.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
  Tensor r = t.reshape({3, 2});
  EXPECT_EQ(r.at({2, 1}), 5.0f);
  EXPECT_EQ(r.numel(), 6);
}

TEST(Tensor, ReshapeInfersMinusOne) {
  Tensor t({2, 6});
  EXPECT_EQ(t.reshape({4, -1}).size(1), 3);
  EXPECT_EQ(t.reshape({-1}).size(0), 12);
}

TEST(Tensor, ReshapeRejectsBadShapes) {
  Tensor t({2, 3});
  EXPECT_THROW(t.reshape({4, 2}), std::invalid_argument);
  EXPECT_THROW(t.reshape({-1, -1}), std::invalid_argument);
  EXPECT_THROW(t.reshape({5, -1}), std::invalid_argument);
}

TEST(Tensor, CloneIsDeep) {
  Tensor t({2}, {1, 2});
  Tensor c = t.clone();
  c[0] = 100.0f;
  EXPECT_EQ(t[0], 1.0f);
}

TEST(Tensor, EqualsAndAllclose) {
  Tensor a({2}, {1.0f, 2.0f});
  Tensor b({2}, {1.0f, 2.0f});
  Tensor c({2}, {1.0f, 2.0000005f});
  Tensor d({1, 2}, {1.0f, 2.0f});
  EXPECT_TRUE(a.equals(b));
  EXPECT_FALSE(a.equals(c));
  EXPECT_TRUE(a.allclose(c, 1e-5f));
  EXPECT_FALSE(a.allclose(d));  // shape differs
}

TEST(Tensor, FillOverwritesEverything) {
  Tensor t({3, 3});
  t.fill(2.5f);
  for (float v : t.flat()) EXPECT_EQ(v, 2.5f);
}

TEST(Tensor, OffsetOfMatchesAt) {
  Tensor t({2, 3, 4});
  const int64_t idx[] = {1, 2, 3};
  EXPECT_EQ(t.offset_of(idx), 1 * 12 + 2 * 4 + 3);
}

// --- copy-on-write semantics ----------------------------------------------
// A copy is an O(1) storage share; the buffer is duplicated only by the
// first mutable access while shared. Observable behaviour stays pure value
// semantics — these tests pin the sharing/detach protocol itself.

TEST(TensorCow, CopySharesStorage) {
  Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
  Tensor c = t;
  EXPECT_TRUE(c.shares_storage_with(t));
  Tensor cl = t.clone();
  EXPECT_TRUE(cl.shares_storage_with(t));
}

TEST(TensorCow, ConstReadsNeverDetach) {
  Tensor t({4}, {1, 2, 3, 4});
  Tensor c = t;
  // cdata()/cflat()/const operator[] are the read paths hot loops use; a
  // read must never pay for a copy.
  EXPECT_EQ(c.cdata()[2], 3.0f);
  EXPECT_EQ(c.cflat()[0], 1.0f);
  EXPECT_EQ(std::as_const(c)[3], 4.0f);
  EXPECT_TRUE(c.equals(t));
  EXPECT_TRUE(c.shares_storage_with(t));
}

TEST(TensorCow, MutableAccessDetachesSharedStorage) {
  Tensor t({3}, {1, 2, 3});
  Tensor c = t;
  float* p = c.data();  // first mutable access while shared: detach
  EXPECT_FALSE(c.shares_storage_with(t));
  p[0] = 50.0f;
  EXPECT_EQ(t[0], 1.0f);
  EXPECT_EQ(c[0], 50.0f);
}

TEST(TensorCow, MutableAccessWhileUniqueKeepsStorage) {
  Tensor t({3}, {1, 2, 3});
  const float* before = t.cdata();
  t[1] = 9.0f;            // unique owner: no detach
  t.flat()[2] = 10.0f;    // still unique
  EXPECT_EQ(t.cdata(), before);
  EXPECT_EQ(t[1], 9.0f);
  EXPECT_EQ(t[2], 10.0f);
}

TEST(TensorCow, ReshapeSharesStorage) {
  Tensor t({2, 6});
  Tensor r = t.reshape({3, 4});
  EXPECT_TRUE(r.shares_storage_with(t));
  r[0] = 1.0f;  // writing the view must not leak into the source
  EXPECT_EQ(t[0], 0.0f);
  EXPECT_FALSE(r.shares_storage_with(t));
}

TEST(TensorCow, FillDetachesSharedStorage) {
  Tensor t({4});
  Tensor c = t;
  c.fill(3.0f);
  EXPECT_EQ(t[0], 0.0f);
  EXPECT_EQ(c[0], 3.0f);
  EXPECT_FALSE(c.shares_storage_with(t));
}

TEST(TensorCow, AssignmentReplacesAndShares) {
  Tensor a({2}, {1, 2});
  Tensor b({3}, {7, 8, 9});
  a = b;
  EXPECT_TRUE(a.shares_storage_with(b));
  EXPECT_EQ(a.numel(), 3);
  EXPECT_EQ(a[2], 9.0f);
}

TEST(TensorCow, ChainOfCopiesDetachIndependently) {
  Tensor a({2}, {1, 2});
  Tensor b = a;
  Tensor c = b;
  b[0] = 10.0f;  // detaches b; a and c still share
  EXPECT_TRUE(c.shares_storage_with(a));
  EXPECT_FALSE(b.shares_storage_with(a));
  EXPECT_EQ(a[0], 1.0f);
  EXPECT_EQ(b[0], 10.0f);
  EXPECT_EQ(c[0], 1.0f);
}

// --- reshape edge cases ----------------------------------------------------

TEST(Tensor, ReshapeMinusOneWithZeroSizedDimThrows) {
  // 0 elements / 0-sized known extent: the inferred extent is ambiguous
  // (any value satisfies the product), so reshape must reject it.
  Tensor t({0, 3});
  EXPECT_THROW(t.reshape({0, -1}), std::invalid_argument);
  EXPECT_NO_THROW(t.reshape({3, 0}));  // fully explicit zero shape is fine
}

TEST(Tensor, ReshapeEmptyTensorExplicitShapes) {
  Tensor t({0});
  Tensor r = t.reshape({2, 0});
  EXPECT_EQ(r.numel(), 0);
  EXPECT_EQ(r.dim(), 2);
}

// --- debug bounds assert ---------------------------------------------------

#ifndef NDEBUG
TEST(TensorDeathTest, FlatIndexOutOfRangeAssertsInDebug) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Tensor t({2}, {1, 2});
  EXPECT_DEATH((void)t[2], "out of range");
  EXPECT_DEATH((void)t[-1], "out of range");
  EXPECT_DEATH((void)std::as_const(t)[2], "out of range");
}
#endif

// --- arena freelist sizing policy ------------------------------------------
// A long DSE sweep over many distinct shapes must not grow a thread's
// cache without bound: per-class and global caps evict LRU-first, and
// every cap-driven free is visible as the arena_evictions counter.

TEST(Arena, SameSizeClassIsCappedPerBucket) {
  arena::clear_thread_cache();
  {
    std::vector<std::shared_ptr<arena::Block>> held;
    for (int i = 0; i < 20; ++i) held.push_back(arena::alloc(100));
  }  // all 20 released into one size class
  EXPECT_LE(arena::thread_cache_blocks(), 6u);
  EXPECT_GE(arena::thread_cache_blocks(), 1u);
  arena::clear_thread_cache();
}

TEST(Arena, ManyDistinctSizesHitTheGlobalCap) {
  arena::clear_thread_cache();
  {
    std::vector<std::shared_ptr<arena::Block>> held;
    for (size_t c = 0; c < 20; ++c) {
      for (int i = 0; i < 4; ++i) {
        held.push_back(arena::alloc(size_t{1} << c));
      }
    }
  }  // 80 blocks over 20 size classes released
  EXPECT_LE(arena::thread_cache_blocks(), 32u);
  EXPECT_GT(arena::thread_cache_blocks(), 0u);
  arena::clear_thread_cache();
}

TEST(Arena, CapDrivenFreesBumpTheEvictionsCounter) {
  obs::TelemetryScope scope(/*tracing=*/false, /*metrics=*/true);
  obs::reset_all();
  arena::clear_thread_cache();
  {
    std::vector<std::shared_ptr<arena::Block>> held;
    for (int i = 0; i < 40; ++i) held.push_back(arena::alloc(64));
  }
  EXPECT_GT(obs::counter_value(obs::Counter::kArenaEvictions), 0u);
  arena::clear_thread_cache();
  obs::reset_all();
}

TEST(Arena, OversizeBlocksAreNeitherCachedNorCountedAsEvictions) {
  obs::TelemetryScope scope(/*tracing=*/false, /*metrics=*/true);
  obs::reset_all();
  arena::clear_thread_cache();
  { auto big = arena::alloc((size_t{1} << 24) + 1); }
  EXPECT_EQ(arena::thread_cache_blocks(), 0u);
  EXPECT_EQ(obs::counter_value(obs::Counter::kArenaEvictions), 0u);
  obs::reset_all();
}

TEST(Arena, OversizeRequestWithWarmCacheReusesABlockSafely) {
  // Regression: a request beyond the largest size class used to start the
  // fallback scan past the end of the bucket array (OOB read under ASan).
  // It must instead reuse any cached block, growing it to fit.
  arena::clear_thread_cache();
  { auto small = arena::alloc(64, 7.0f); }
  ASSERT_GE(arena::thread_cache_blocks(), 1u);
  {
    auto big = arena::alloc((size_t{1} << 25) + 1, 3.0f);
    EXPECT_EQ(big->size(), (size_t{1} << 25) + 1);
    EXPECT_EQ((*big)[size_t{1} << 25], 3.0f);
  }
  // Oversize blocks are freed on release, never cached.
  EXPECT_EQ(arena::thread_cache_blocks(), 0u);
  arena::clear_thread_cache();
}

TEST(Arena, RecycledBlocksComeBackMostRecentlyUsedFirst) {
  // LRU within a class: the block released last is the one handed back
  // first (it is the warmest in cache terms).
  arena::clear_thread_cache();
  float* first_data = nullptr;
  float* second_data = nullptr;
  {
    auto a = arena::alloc(256);
    first_data = a->data();
  }
  {
    auto b = arena::alloc(256);  // reuses the block just released
    EXPECT_EQ(b->data(), first_data);
    second_data = b->data();
  }
  EXPECT_EQ(second_data, first_data);
  arena::clear_thread_cache();
}

}  // namespace
}  // namespace ge
