// CLI front end: argument handling, command dispatch, error paths. Model
// commands use tiny configs via the fast "range/features/formats" paths
// plus one real accuracy invocation against a cached model.
#include <gtest/gtest.h>

#include <sstream>

#include "core/cli.hpp"

namespace ge::core {
namespace {

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult run(std::vector<std::string> args) {
  std::ostringstream out, err;
  const int code = run_cli(args, out, err);
  return {code, out.str(), err.str()};
}

TEST(Cli, EmptyArgsPrintUsage) {
  const auto r = run({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("usage:"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  const auto r = run({"explode"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, MalformedOptionsFail) {
  EXPECT_EQ(run({"range", "--format"}).code, 2);     // missing value
  EXPECT_EQ(run({"range", "stray"}).code, 2);        // positional arg
  EXPECT_EQ(run({"range", "-f", "fp16"}).code, 2);   // single dash
}

TEST(Cli, RangeCommandPrintsTableOneRow) {
  const auto r = run({"range", "--format", "fp_e4m3"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("abs max: 240"), std::string::npos);
  EXPECT_NE(r.out.find("dB"), std::string::npos);
}

TEST(Cli, RangeRejectsBadFormat) {
  const auto r = run({"range", "--format", "garbage"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("bad or missing"), std::string::npos);
}

TEST(Cli, FeaturesListsTableTwo) {
  const auto r = run({"features"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("Block Floating Point"), std::string::npos);
  EXPECT_NE(r.out.find("[x]"), std::string::npos);
}

TEST(Cli, FormatsPrintsGrammarAndAliases) {
  const auto r = run({"formats"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("posit_<N>_<ES>"), std::string::npos);
  EXPECT_NE(r.out.find("bfloat16"), std::string::npos);
}

TEST(Cli, AccuracyRejectsMissingFormat) {
  const auto r = run({"accuracy", "--model", "mlp"});
  EXPECT_EQ(r.code, 2);
}

TEST(Cli, CampaignValidatesSiteAndErrorModel) {
  EXPECT_EQ(run({"campaign", "--format", "int8", "--site", "nowhere"}).code,
            2);
  EXPECT_EQ(run({"campaign", "--format", "int8", "--error-model", "zap"})
                .code,
            2);
  EXPECT_EQ(run({"campaign", "--format", "bogus"}).code, 2);
}

TEST(Cli, DseRejectsUnknownFamily) {
  const auto r = run({"dse", "--family", "unum", "--model", "mlp",
                      "--epochs", "1", "--cache", "/tmp/ge_cli_cache",
                      "--samples", "16"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown family"), std::string::npos);
}

TEST(Cli, AccuracyEndToEnd) {
  // trains a 1-epoch mlp into a private cache; asserts sane output shape
  const auto r = run({"accuracy", "--model", "mlp", "--format", "int8",
                      "--epochs", "1", "--cache", "/tmp/ge_cli_cache",
                      "--samples", "32"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("baseline:"), std::string::npos);
  EXPECT_NE(r.out.find("accuracy:"), std::string::npos);
}

TEST(Cli, CampaignEndToEnd) {
  const auto r = run({"campaign", "--model", "mlp", "--format",
                      "bfp_e5m5_b16", "--site", "metadata", "--injections",
                      "2", "--epochs", "1", "--cache", "/tmp/ge_cli_cache",
                      "--samples", "8"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("network mean dLoss"), std::string::npos);
}

TEST(Cli, CampaignStuckAtErrorModelEndToEnd) {
  const auto r = run({"campaign", "--model", "mlp", "--format", "int8",
                      "--error-model", "sa1", "--injections", "2",
                      "--epochs", "1", "--cache", "/tmp/ge_cli_cache",
                      "--samples", "8"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("error-model=sa1"), std::string::npos);
}

}  // namespace
}  // namespace ge::core
